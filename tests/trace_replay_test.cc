#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/trace_replay.h"
#include "src/sim/workload.h"

namespace optimus {
namespace {

TEST(TraceReplayTest, RoundTripPreservesWorkload) {
  WorkloadConfig config;
  config.num_jobs = 12;
  Rng rng(5);
  const std::vector<JobSpec> original = GenerateWorkload(config, &rng);

  std::ostringstream os;
  WriteWorkloadCsv(original, os);

  std::istringstream is(os.str());
  std::vector<JobSpec> restored;
  std::string error;
  ASSERT_TRUE(ReadWorkloadCsv(is, TraceReplayOptions{}, &restored, &error)) << error;
  ASSERT_EQ(restored.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].id, original[i].id);
    EXPECT_EQ(restored[i].model, original[i].model);
    EXPECT_EQ(restored[i].mode, original[i].mode);
    EXPECT_DOUBLE_EQ(restored[i].arrival_time_s, original[i].arrival_time_s);
    EXPECT_DOUBLE_EQ(restored[i].convergence_delta, original[i].convergence_delta);
    EXPECT_DOUBLE_EQ(restored[i].dataset_scale, original[i].dataset_scale);
    EXPECT_EQ(restored[i].patience, original[i].patience);
    EXPECT_EQ(restored[i].max_ps, original[i].max_ps);
    EXPECT_EQ(restored[i].max_workers, original[i].max_workers);
  }
}

TEST(TraceReplayTest, SortsByArrival) {
  std::istringstream is(
      "job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers\n"
      "0,ResNet-50,sync,500,0.02,3,0.01,16,16\n"
      "1,CNN-rand,async,100,0.03,3,0.1,16,16\n");
  std::vector<JobSpec> jobs;
  std::string error;
  ASSERT_TRUE(ReadWorkloadCsv(is, TraceReplayOptions{}, &jobs, &error)) << error;
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, 1);  // earlier arrival first
  EXPECT_EQ(jobs[1].id, 0);
}

TEST(TraceReplayTest, AppliesDemandOptions) {
  std::istringstream is(
      "job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers\n"
      "0,DSSM,sync,0,0.02,3,0.01,8,8\n");
  TraceReplayOptions options;
  options.worker_demand = Resources(4, 20, 1, 0.5);
  std::vector<JobSpec> jobs;
  std::string error;
  ASSERT_TRUE(ReadWorkloadCsv(is, options, &jobs, &error)) << error;
  EXPECT_DOUBLE_EQ(jobs[0].worker_demand.cpu(), 4);
  EXPECT_DOUBLE_EQ(jobs[0].worker_demand.gpu(), 1);
}

TEST(TraceReplayTest, RejectsMissingHeader) {
  std::istringstream is("0,ResNet-50,sync,0,0.02,3,0.01,16,16\n");
  std::vector<JobSpec> jobs;
  std::string error;
  EXPECT_FALSE(ReadWorkloadCsv(is, TraceReplayOptions{}, &jobs, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
  EXPECT_TRUE(jobs.empty());
}

TEST(TraceReplayTest, RejectsUnknownModel) {
  std::istringstream is(
      "job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers\n"
      "0,GPT-7,sync,0,0.02,3,0.01,16,16\n");
  std::vector<JobSpec> jobs;
  std::string error;
  EXPECT_FALSE(ReadWorkloadCsv(is, TraceReplayOptions{}, &jobs, &error));
  EXPECT_NE(error.find("unknown model"), std::string::npos);
}

TEST(TraceReplayTest, RejectsBadMode) {
  std::istringstream is(
      "job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers\n"
      "0,DSSM,halfsync,0,0.02,3,0.01,16,16\n");
  std::vector<JobSpec> jobs;
  std::string error;
  EXPECT_FALSE(ReadWorkloadCsv(is, TraceReplayOptions{}, &jobs, &error));
  EXPECT_NE(error.find("unknown mode"), std::string::npos);
}

TEST(TraceReplayTest, RejectsWrongFieldCount) {
  std::istringstream is(
      "job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers\n"
      "0,DSSM,sync,0,0.02\n");
  std::vector<JobSpec> jobs;
  std::string error;
  EXPECT_FALSE(ReadWorkloadCsv(is, TraceReplayOptions{}, &jobs, &error));
  EXPECT_NE(error.find("9 fields"), std::string::npos);
}

TEST(TraceReplayTest, RejectsOutOfRangeValues) {
  std::istringstream is(
      "job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers\n"
      "0,DSSM,sync,0,-0.02,3,0.01,16,16\n");
  std::vector<JobSpec> jobs;
  std::string error;
  EXPECT_FALSE(ReadWorkloadCsv(is, TraceReplayOptions{}, &jobs, &error));
  EXPECT_NE(error.find("out-of-range"), std::string::npos);
}

TEST(TraceReplayTest, SkipsEmptyLines) {
  std::istringstream is(
      "job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers\n"
      "\n"
      "0,DSSM,sync,0,0.02,3,0.01,16,16\n"
      "\n");
  std::vector<JobSpec> jobs;
  std::string error;
  ASSERT_TRUE(ReadWorkloadCsv(is, TraceReplayOptions{}, &jobs, &error)) << error;
  EXPECT_EQ(jobs.size(), 1u);
}

}  // namespace
}  // namespace optimus
