#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/convergence_model.h"
#include "src/perfmodel/preprocess.h"
#include "src/perfmodel/sampler.h"
#include "src/perfmodel/speed_model.h"
#include "src/pserver/comm_model.h"

namespace optimus {
namespace {

TEST(PreprocessTest, OutlierIsReplacedByNeighbourAverage) {
  std::vector<LossSample> samples;
  for (int i = 0; i < 20; ++i) {
    samples.push_back({static_cast<double>(i), 1.0 - 0.01 * i});
  }
  samples[10].loss = 50.0;  // a wild spike
  const std::vector<LossSample> cleaned = RemoveOutliers(samples, 5);
  EXPECT_LT(cleaned[10].loss, 2.0);
  // Non-outliers untouched.
  EXPECT_DOUBLE_EQ(cleaned[3].loss, samples[3].loss);
}

TEST(PreprocessTest, SmoothCurveUntouched) {
  std::vector<LossSample> samples;
  for (int i = 0; i < 30; ++i) {
    samples.push_back({static_cast<double>(i), 2.0 / (1.0 + 0.3 * i) + 0.1});
  }
  const std::vector<LossSample> cleaned = RemoveOutliers(samples, 5);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(cleaned[i].loss, samples[i].loss) << i;
  }
}

TEST(PreprocessTest, NormalizeScalesToUnitMax) {
  std::vector<LossSample> samples = {{0, 8.0}, {1, 4.0}, {2, 2.0}};
  const double factor = NormalizeLosses(&samples);
  EXPECT_DOUBLE_EQ(factor, 8.0);
  EXPECT_DOUBLE_EQ(samples[0].loss, 1.0);
  EXPECT_DOUBLE_EQ(samples[2].loss, 0.25);
}

TEST(PreprocessTest, NormalizeEmptyIsSafe) {
  std::vector<LossSample> samples;
  EXPECT_DOUBLE_EQ(NormalizeLosses(&samples), 1.0);
}

TEST(PreprocessTest, DownsamplePreservesShapeAndBounds) {
  std::vector<LossSample> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back({static_cast<double>(i), 1.0 / (1.0 + i)});
  }
  const std::vector<LossSample> down = Downsample(samples, 100);
  EXPECT_LE(down.size(), 100u);
  EXPECT_GE(down.size(), 90u);
  // Monotone decreasing input stays monotone after bucket averaging.
  for (size_t i = 1; i < down.size(); ++i) {
    EXPECT_LT(down[i].loss, down[i - 1].loss);
    EXPECT_GT(down[i].step, down[i - 1].step);
  }
  // Short inputs are passed through.
  EXPECT_EQ(Downsample(down, 1000).size(), down.size());
}

class ConvergenceModelTest : public ::testing::Test {
 protected:
  // Feeds `num_epochs` epochs of noisy loss samples from a model's
  // ground-truth curve into a convergence model. The paper collects a loss
  // point after every step; we sample a representative 20 points per epoch.
  static void FeedEpochs(const LossCurve& curve, int num_epochs, ConvergenceModel* model,
                         Rng* rng) {
    const int64_t spe = curve.steps_per_epoch();
    const int per_epoch = 20;
    for (int e = 0; e < num_epochs; ++e) {
      for (int i = 1; i <= per_epoch; ++i) {
        const int64_t step = e * spe + i * spe / per_epoch;
        model->AddSample(static_cast<double>(step), curve.SampleLossAtStep(step, rng));
      }
    }
  }
};

TEST_F(ConvergenceModelTest, RecoversCurveFromNoisySamples) {
  const ModelSpec& spec = FindModel("Seq2Seq");
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve curve(spec.loss, spe);
  ConvergenceModel model;
  Rng rng(31);
  FeedEpochs(curve, 40, &model, &rng);
  ASSERT_TRUE(model.Fit());

  // Predicted losses should track the true curve within a few percent over
  // the observed range and extrapolate sensibly beyond it.
  for (int e : {5, 20, 40, 60}) {
    const double truth = curve.TrueLossAtEpoch(e);
    const double pred = model.PredictLoss(static_cast<double>(e * spe));
    EXPECT_NEAR(pred, truth, 0.08 * truth) << "epoch " << e;
  }
}

TEST_F(ConvergenceModelTest, PredictsConvergenceEpochNearGroundTruth) {
  for (const char* name : {"Seq2Seq", "ResNet-50", "ResNext-110"}) {
    SCOPED_TRACE(name);
    const ModelSpec& spec = FindModel(name);
    const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
    LossCurve curve(spec.loss, spe);
    const double delta = 0.02;
    const int patience = 3;
    const int64_t truth = curve.EpochsToConverge(delta, patience);

    ConvergenceModel model;
    Rng rng(37);
    // Observe roughly the first half of training.
    FeedEpochs(curve, static_cast<int>(truth / 2), &model, &rng);
    ASSERT_TRUE(model.Fit());
    const int64_t predicted = model.PredictTotalEpochs(delta, patience, spe);
    const double err =
        std::abs(static_cast<double>(predicted - truth)) / static_cast<double>(truth);
    EXPECT_LT(err, 0.25) << "predicted " << predicted << " truth " << truth;
  }
}

TEST_F(ConvergenceModelTest, PredictionImprovesWithProgress) {
  // Fig 6: the error of the estimated total epoch count shrinks as training
  // progresses.
  const ModelSpec& spec = FindModel("ResNext-110");
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve curve(spec.loss, spe);
  const double delta = 0.02;
  const int patience = 3;
  const int64_t truth = curve.EpochsToConverge(delta, patience);

  ConvergenceModel model;
  Rng rng(41);
  double early_err = 0.0;
  double late_err = 0.0;
  const int early_epochs = std::max<int>(4, static_cast<int>(truth / 10));
  FeedEpochs(curve, early_epochs, &model, &rng);
  if (model.Fit()) {
    early_err = std::abs(static_cast<double>(
                    model.PredictTotalEpochs(delta, patience, spe) - truth)) /
                static_cast<double>(truth);
  }
  FeedEpochs(curve, static_cast<int>(truth), &model, &rng);  // up to ~2x truth total
  ASSERT_TRUE(model.Fit());
  late_err = std::abs(static_cast<double>(
                 model.PredictTotalEpochs(delta, patience, spe) - truth)) /
             static_cast<double>(truth);
  EXPECT_LE(late_err, early_err + 0.05);
  EXPECT_LT(late_err, 0.15);
}

TEST_F(ConvergenceModelTest, RemainingEpochsDecreasesAndHitsZero) {
  const ModelSpec& spec = FindModel("DSSM");
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve curve(spec.loss, spe);
  ConvergenceModel model;
  Rng rng(43);
  FeedEpochs(curve, 30, &model, &rng);
  ASSERT_TRUE(model.Fit());
  const double at_5 = model.PredictRemainingEpochs(5.0 * spe, 0.02, 3, spe);
  const double at_20 = model.PredictRemainingEpochs(20.0 * spe, 0.02, 3, spe);
  EXPECT_GT(at_5, at_20);
  const double far_future = model.PredictRemainingEpochs(1e7 * spe, 0.02, 3, spe);
  EXPECT_DOUBLE_EQ(far_future, 0.0);
}

TEST_F(ConvergenceModelTest, IgnoresInvalidSamples) {
  ConvergenceModel model;
  model.AddSample(1.0, std::nan(""));
  model.AddSample(2.0, -1.0);
  model.AddSample(3.0, 0.0);
  EXPECT_EQ(model.num_samples(), 0u);
}

TEST_F(ConvergenceModelTest, ResetClearsState) {
  const ModelSpec& spec = FindModel("CNN-rand");
  LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
  ConvergenceModel model;
  Rng rng(47);
  FeedEpochs(curve, 20, &model, &rng);
  ASSERT_TRUE(model.Fit());
  model.Reset();
  EXPECT_FALSE(model.fitted());
  EXPECT_EQ(model.num_samples(), 0u);
}

TEST_F(ConvergenceModelTest, TooFewSamplesDoesNotFit) {
  ConvergenceModel model;
  model.AddSample(1.0, 1.0);
  model.AddSample(2.0, 0.9);
  EXPECT_FALSE(model.Fit());
  EXPECT_FALSE(model.fitted());
}

// ---------------------------------------------------------------------------
// Speed model
// ---------------------------------------------------------------------------

class SpeedModelTest : public ::testing::Test {
 protected:
  // Ground-truth oracle from the communication model, with optional noise.
  static SpeedOracle MakeOracle(const ModelSpec& model, TrainingMode mode,
                                double noise_sd, Rng* rng) {
    return [&model, mode, noise_sd, rng](int p, int w) {
      StepTimeInputs in;
      in.model = &model;
      in.mode = mode;
      in.num_ps = p;
      in.num_workers = w;
      CommConfig config;
      double speed = TrainingSpeed(in, config);
      if (noise_sd > 0.0 && rng != nullptr) {
        speed *= rng->LogNormalFactor(noise_sd);
      }
      return speed;
    };
  }

  static double MeanAbsRelError(const SpeedModel& model, const SpeedOracle& truth,
                                int max_p, int max_w) {
    double sum = 0.0;
    int count = 0;
    for (int p = 1; p <= max_p; p += 2) {
      for (int w = 1; w <= max_w; w += 2) {
        const double t = truth(p, w);
        const double e = model.Estimate(p, w);
        sum += std::abs(e - t) / t;
        ++count;
      }
    }
    return sum / count;
  }
};

TEST_F(SpeedModelTest, SyncFitsGroundTruthClosely) {
  const ModelSpec& spec = FindModel("ResNet-50");
  SpeedOracle oracle = MakeOracle(spec, TrainingMode::kSync, 0.0, nullptr);
  SpeedModel model(TrainingMode::kSync, spec.default_sync_batch);
  for (int p = 2; p <= 20; p += 3) {
    for (int w = 2; w <= 20; w += 3) {
      model.AddSample(p, w, oracle(p, w));
    }
  }
  ASSERT_TRUE(model.Fit());
  EXPECT_LT(MeanAbsRelError(model, oracle, 20, 20), 0.10);
}

TEST_F(SpeedModelTest, AsyncFitsGroundTruthClosely) {
  const ModelSpec& spec = FindModel("ResNet-50");
  SpeedOracle oracle = MakeOracle(spec, TrainingMode::kAsync, 0.0, nullptr);
  SpeedModel model(TrainingMode::kAsync, 0);
  for (int p = 2; p <= 20; p += 3) {
    for (int w = 2; w <= 20; w += 3) {
      model.AddSample(p, w, oracle(p, w));
    }
  }
  ASSERT_TRUE(model.Fit());
  EXPECT_LT(MeanAbsRelError(model, oracle, 20, 20), 0.10);
}

TEST_F(SpeedModelTest, TenSamplesReachTenPercentError) {
  // Fig 8: ~10 (p, w) samples suffice for <10% speed-estimation error.
  const ModelSpec& spec = FindModel("ResNet-50");
  Rng noise(51);
  SpeedOracle noisy = MakeOracle(spec, TrainingMode::kSync, 0.02, &noise);
  SpeedOracle truth = MakeOracle(spec, TrainingMode::kSync, 0.0, nullptr);
  SpeedModel model(TrainingMode::kSync, spec.default_sync_batch);
  Rng rng(53);
  InitializeSpeedModel(&model, noisy, /*count=*/10, /*max_ps=*/20, /*max_workers=*/20,
                       &rng);
  ASSERT_TRUE(model.fitted());
  EXPECT_LT(MeanAbsRelError(model, truth, 20, 20), 0.12);
}

TEST_F(SpeedModelTest, ThetaNonNegativeAndResidualSmall) {
  const ModelSpec& spec = FindModel("Seq2Seq");
  SpeedOracle oracle = MakeOracle(spec, TrainingMode::kSync, 0.0, nullptr);
  SpeedModel model(TrainingMode::kSync, spec.default_sync_batch);
  for (int p = 1; p <= 16; p += 2) {
    for (int w = 1; w <= 16; w += 2) {
      model.AddSample(p, w, oracle(p, w));
    }
  }
  ASSERT_TRUE(model.Fit());
  ASSERT_EQ(model.theta().size(), 5u);
  for (double t : model.theta()) {
    EXPECT_GE(t, 0.0);
  }
  // The ground truth includes a batch-efficiency floor outside the Eqn-4
  // family, so the fit is not exact — but it stays within a few percent.
  EXPECT_LT(MeanAbsRelError(model, oracle, 16, 16), 0.08);
}

TEST_F(SpeedModelTest, MoreSamplesReduceError) {
  // Fig 8's diminishing-return shape: error(5 samples) >= error(30 samples).
  const ModelSpec& spec = FindModel("ResNet-50");
  Rng noise1(55);
  Rng noise2(55);
  SpeedOracle noisy1 = MakeOracle(spec, TrainingMode::kSync, 0.05, &noise1);
  SpeedOracle noisy2 = MakeOracle(spec, TrainingMode::kSync, 0.05, &noise2);
  SpeedOracle truth = MakeOracle(spec, TrainingMode::kSync, 0.0, nullptr);

  SpeedModel few(TrainingMode::kSync, spec.default_sync_batch);
  Rng rng1(57);
  InitializeSpeedModel(&few, noisy1, 5, 20, 20, &rng1);
  SpeedModel many(TrainingMode::kSync, spec.default_sync_batch);
  Rng rng2(57);
  InitializeSpeedModel(&many, noisy2, 30, 20, 20, &rng2);

  ASSERT_TRUE(few.fitted());
  ASSERT_TRUE(many.fitted());
  EXPECT_LE(MeanAbsRelError(many, truth, 20, 20),
            MeanAbsRelError(few, truth, 20, 20) + 0.03);
}

TEST_F(SpeedModelTest, RejectsInvalidSamples) {
  SpeedModel model(TrainingMode::kAsync, 0);
  model.AddSample(1, 1, 0.0);
  model.AddSample(1, 1, -5.0);
  model.AddSample(1, 1, std::nan(""));
  EXPECT_EQ(model.num_samples(), 0u);
  EXPECT_FALSE(model.Fit());
}

TEST(SamplerTest, PairsAreDistinctAndInRange) {
  Rng rng(61);
  const auto pairs = SelectSamplePairs(10, 12, 18, &rng);
  EXPECT_EQ(pairs.size(), 10u);
  for (const auto& [p, w] : pairs) {
    EXPECT_GE(p, 1);
    EXPECT_LE(p, 12);
    EXPECT_GE(w, 1);
    EXPECT_LE(w, 18);
  }
  // std::set semantics guarantee distinctness; double-check anyway.
  for (size_t i = 0; i < pairs.size(); ++i) {
    for (size_t j = i + 1; j < pairs.size(); ++j) {
      EXPECT_TRUE(pairs[i] != pairs[j]);
    }
  }
}

TEST(SamplerTest, CountClampedToGridSize) {
  Rng rng(63);
  const auto pairs = SelectSamplePairs(100, 3, 3, &rng);
  EXPECT_EQ(pairs.size(), 9u);
}

}  // namespace
}  // namespace optimus
