// Tests for the scenario engine: the JSON reader, the workload generator
// suite, cluster topology specs, scenario-v1 parsing/validation, the
// SchedulerRegistry, and the sweep engine's thread-count determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "src/sched/scheduler_registry.h"
#include "src/sim/experiment.h"
#include "src/workload/generators.h"
#include "src/workload/json.h"
#include "src/workload/scenario.h"
#include "src/workload/sweep.h"

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalarsArraysObjects) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"a": 1.5, "b": "x", "c": [true, null, -3], "d": {"e": 2}})", "t", &v,
      &error))
      << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Keys(), (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_DOUBLE_EQ(v.Find("a")->AsDouble(), 1.5);
  EXPECT_EQ(v.Find("b")->AsString(), "x");
  const auto& arr = v.Find("c")->AsArray();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].AsBool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].AsInt(), -3);
  EXPECT_EQ(v.Find("d")->Find("e")->AsInt(), 2);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, ReportsPositionOnError) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\n  \"a\": [1, 2,]\n}", "f.json", &v, &error));
  EXPECT_NE(error.find("f.json:2"), std::string::npos) << error;
}

TEST(JsonTest, RejectsDuplicateKeysAndTrailingGarbage) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson(R"({"seed": 1, "seed": 2})", "t", &v, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_FALSE(ParseJson(R"({"a": 1} extra)", "t", &v, &error));
}

TEST(JsonTest, DecodesEscapes) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(R"({"s": "a\n\t\"A"})", "t", &v, &error)) << error;
  EXPECT_EQ(v.Find("s")->AsString(), "a\n\t\"A");
}

// ---------------------------------------------------------------------------
// Workload generators
// ---------------------------------------------------------------------------

TEST(GeneratorsTest, JobsAreSortedDeterministicAndSeedSensitive) {
  WorkloadSpec spec;
  spec.num_jobs = 24;
  spec.arrivals.kind = ArrivalSpec::Kind::kPoisson;
  Rng rng_a(123);
  Rng rng_b(123);
  Rng rng_c(124);
  const std::vector<JobSpec> a = GenerateJobs(spec, &rng_a);
  const std::vector<JobSpec> b = GenerateJobs(spec, &rng_b);
  const std::vector<JobSpec> c = GenerateJobs(spec, &rng_c);
  ASSERT_EQ(a.size(), 24u);
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_time_s, b[i].arrival_time_s);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].convergence_delta, b[i].convergence_delta);
    if (i > 0) {
      EXPECT_LE(a[i - 1].arrival_time_s, a[i].arrival_time_s);
    }
    any_difference |= a[i].arrival_time_s != c[i].arrival_time_s;
  }
  EXPECT_TRUE(any_difference) << "different seeds must give different arrivals";
}

TEST(GeneratorsTest, ArrivalKindsProduceNondecreasingTimes) {
  for (const ArrivalSpec::Kind kind :
       {ArrivalSpec::Kind::kUniform, ArrivalSpec::Kind::kPoisson,
        ArrivalSpec::Kind::kBursty, ArrivalSpec::Kind::kDiurnal}) {
    WorkloadSpec spec;
    spec.num_jobs = 40;
    spec.arrivals.kind = kind;
    Rng rng(7);
    const std::vector<JobSpec> jobs = GenerateJobs(spec, &rng);
    for (size_t i = 1; i < jobs.size(); ++i) {
      EXPECT_LE(jobs[i - 1].arrival_time_s, jobs[i].arrival_time_s)
          << ArrivalKindName(kind);
    }
  }
}

TEST(GeneratorsTest, ParetoSizesAreCappedAndSpread) {
  WorkloadSpec spec;
  spec.num_jobs = 64;
  spec.sizes.kind = JobSizeSpec::Kind::kPareto;
  spec.sizes.pareto_alpha = 1.1;
  spec.sizes.pareto_cap = 4.0;
  spec.sizes.target_steps_per_epoch = 0;  // multiplier only
  Rng rng(9);
  const std::vector<JobSpec> jobs = GenerateJobs(spec, &rng);
  std::set<double> scales;
  for (const JobSpec& job : jobs) {
    EXPECT_GE(job.dataset_scale, 1.0);
    EXPECT_LE(job.dataset_scale, 4.0 + 1e-12);
    scales.insert(job.dataset_scale);
  }
  EXPECT_GT(scales.size(), 32u) << "heavy-tail draws should rarely collide";
}

TEST(GeneratorsTest, ModelMixCyclesThenSamplesWeights) {
  WorkloadSpec spec;
  spec.num_jobs = 10;
  spec.models.names = {"ResNet-50", "Seq2Seq"};
  spec.models.weights = {0.0, 1.0};
  Rng rng(5);
  const std::vector<JobSpec> jobs = GenerateJobs(spec, &rng);
  // cycle_first covers the mix once, then zero-weight models never reappear.
  EXPECT_EQ(jobs[0].model->name, "ResNet-50");
  for (size_t i = 2; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].model->name, "Seq2Seq") << i;
  }
}

TEST(GeneratorsTest, ValidateNamesTheField) {
  WorkloadSpec spec;
  spec.num_jobs = 0;
  spec.models.names = {"no-such-model"};
  std::vector<std::string> errors;
  EXPECT_FALSE(spec.Validate(&errors));
  ASSERT_GE(errors.size(), 2u);
  EXPECT_NE(errors[0].find("num_jobs"), std::string::npos);
  bool found_model_error = false;
  for (const std::string& e : errors) {
    found_model_error |= e.find("no-such-model") != std::string::npos;
  }
  EXPECT_TRUE(found_model_error);
}

// ---------------------------------------------------------------------------
// Cluster topology
// ---------------------------------------------------------------------------

ClusterSpec TwoClassCluster() {
  ClusterSpec cluster;
  cluster.testbed = false;
  cluster.classes = {{"cpu", 5, Resources(16, 80, 0, 1)},
                     {"gpu", 3, Resources(8, 48, 2, 1)}};
  cluster.rack_size = 3;
  return cluster;
}

TEST(ClusterSpecTest, BuildsClassBlocksAndRacks) {
  const ClusterSpec cluster = TwoClassCluster();
  EXPECT_EQ(cluster.NumServers(), 8);
  EXPECT_EQ(cluster.NumRacks(), 3);
  EXPECT_EQ(cluster.RackRange(0), (std::pair<int, int>{0, 2}));
  EXPECT_EQ(cluster.RackRange(2), (std::pair<int, int>{6, 7}));  // short rack
  const std::vector<Server> servers = cluster.Build();
  ASSERT_EQ(servers.size(), 8u);
  EXPECT_EQ(servers[0].capacity().cpu(), 16);
  EXPECT_EQ(servers[5].capacity().gpu(), 2);  // first gpu-class server
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(servers[i].id(), i);
  }
}

TEST(ClusterSpecTest, TestbedIgnoresRackSizeZero) {
  ClusterSpec cluster;
  EXPECT_EQ(cluster.NumServers(), 13);
  EXPECT_EQ(cluster.NumRacks(), 1);
  EXPECT_EQ(cluster.RackRange(0), (std::pair<int, int>{0, 12}));
}

TEST(ClusterSpecTest, ValidateCatchesBadClasses) {
  ClusterSpec cluster;
  cluster.testbed = false;
  cluster.classes = {{"", 0, Resources(0, 0, -1, 0)}};
  std::vector<std::string> errors;
  EXPECT_FALSE(cluster.Validate(&errors));
  EXPECT_GE(errors.size(), 4u);
}

TEST(ClusterSpecTest, RackReferenceExpansion) {
  const ClusterSpec cluster = TwoClassCluster();
  std::string expanded;
  std::string error;
  ASSERT_TRUE(ExpandRackReferences("rack@100:rack=1,recover=200", cluster,
                                   &expanded, &error))
      << error;
  EXPECT_EQ(expanded, "rack@100:servers=3-5,recover=200");
  // Out-of-range rack and missing index fail with messages.
  EXPECT_FALSE(ExpandRackReferences("rack@100:rack=9", cluster, &expanded, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
  EXPECT_FALSE(ExpandRackReferences("rack@100:rack=", cluster, &expanded, &error));
  // The event name "rack@" itself is not a reference.
  ASSERT_TRUE(ExpandRackReferences("rack@100:servers=0-2", cluster, &expanded,
                                   &error));
  EXPECT_EQ(expanded, "rack@100:servers=0-2");
}

// ---------------------------------------------------------------------------
// Scenario DSL
// ---------------------------------------------------------------------------

constexpr char kValidScenario[] = R"({
  "schema": "scenario-v1",
  "name": "unit",
  "description": "unit-test scenario",
  "seed": 9,
  "repeats": 2,
  "policies": ["optimus", "drf"],
  "workload": {
    "jobs": 6,
    "arrivals": {"kind": "poisson", "rate_per_interval": 2.0},
    "sizes": {"kind": "lognormal", "lognormal_sigma": 0.5, "target_steps_per_epoch": 20},
    "mode": "sync",
    "max_workers": 8
  },
  "cluster": {
    "classes": [{"name": "std", "count": 6, "cpu": 16, "memory_gb": 80, "gpu": 0, "bandwidth_gbps": 1}],
    "rack_size": 2
  },
  "faults": {"plan": "rack@3600:rack=1,recover=7200"},
  "knobs": {"interval_s": 300.0, "stragglers": 0.05, "oracle": true}
})";

TEST(ScenarioTest, ParsesValidScenario) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(ParseScenario(kValidScenario, "unit.json", &spec, &error)) << error;
  EXPECT_EQ(spec.name, "unit");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.repeats, 2);
  EXPECT_EQ(spec.policies, (std::vector<std::string>{"optimus", "drf"}));
  EXPECT_EQ(spec.workload.num_jobs, 6);
  EXPECT_EQ(spec.workload.arrivals.kind, ArrivalSpec::Kind::kPoisson);
  EXPECT_EQ(spec.workload.sizes.kind, JobSizeSpec::Kind::kLognormal);
  EXPECT_EQ(spec.workload.forced_mode, TrainingMode::kSync);
  EXPECT_EQ(spec.workload.max_workers, 8);
  EXPECT_FALSE(spec.cluster.testbed);
  EXPECT_EQ(spec.cluster.NumServers(), 6);
  EXPECT_DOUBLE_EQ(spec.sim.interval_s, 300.0);
  // The workload inherits the knob interval when arrivals.interval_s is
  // not given explicitly.
  EXPECT_DOUBLE_EQ(spec.workload.arrivals.interval_s, 300.0);
  EXPECT_DOUBLE_EQ(spec.sim.straggler.injection_prob_per_interval, 0.05);
  EXPECT_TRUE(spec.sim.oracle_estimates);
  // The rack reference expanded against the 2-per-rack layout.
  ASSERT_EQ(spec.sim.fault.plan.outages.size(), 1u);
  EXPECT_EQ(spec.sim.fault.plan.outages[0].servers, (std::vector<int>{2, 3}));
}

TEST(ScenarioTest, UnknownKeysAreRejectedEverywhere) {
  const struct {
    const char* json;
    const char* needle;
  } cases[] = {
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus", "bogus": 1})",
       "unknown key \"bogus\""},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "workload": {"arrivals": {"kindd": "poisson"}}})",
       "unknown key \"kindd\""},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "knobs": {"interval": 300}})",
       "unknown key \"interval\""},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "cluster": {"classes": [{"name": "a", "count": 1, "cpu": 1,
                                    "memory_gb": 1, "gpus": 1}]}})",
       "unknown key \"gpus\""},
  };
  for (const auto& c : cases) {
    ScenarioSpec spec;
    std::string error;
    EXPECT_FALSE(ParseScenario(c.json, "t", &spec, &error)) << c.json;
    EXPECT_NE(error.find(c.needle), std::string::npos) << error;
  }
}

TEST(ScenarioTest, DiagnosticsCarrySourcePositions) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_FALSE(ParseScenario(
      "{\n  \"schema\": \"scenario-v1\",\n  \"name\": \"x\",\n  \"policy\": "
      "\"optimus\",\n  \"mystery\": 1\n}",
      "pos.json", &spec, &error));
  EXPECT_NE(error.find("pos.json:5"), std::string::npos) << error;
}

TEST(ScenarioTest, ShardsKnobRangeCheckedAgainstCluster) {
  // shards ranges over [1, server count]; violations carry the knob's own
  // source position and the allowed range.
  const char* kTemplate =
      "{\n  \"schema\": \"scenario-v1\",\n  \"name\": \"x\",\n"
      "  \"policy\": \"optimus\",\n"
      "  \"cluster\": {\"classes\": [{\"name\": \"a\", \"count\": 4,"
      " \"cpu\": 16, \"memory_gb\": 80, \"gpu\": 0, \"bandwidth_gbps\": 1}]},\n"
      "  \"knobs\": {\"shards\": %d}\n}";
  char buf[1024];
  ScenarioSpec spec;
  std::string error;

  std::snprintf(buf, sizeof(buf), kTemplate, 9);
  EXPECT_FALSE(ParseScenario(buf, "shards.json", &spec, &error));
  EXPECT_NE(error.find("shards.json:6"), std::string::npos) << error;
  EXPECT_NE(error.find("knobs.shards"), std::string::npos) << error;
  EXPECT_NE(error.find("[1, 4]"), std::string::npos) << error;

  std::snprintf(buf, sizeof(buf), kTemplate, 0);
  EXPECT_FALSE(ParseScenario(buf, "shards.json", &spec, &error));
  EXPECT_NE(error.find("[1, 4]"), std::string::npos) << error;

  std::snprintf(buf, sizeof(buf), kTemplate, 4);
  EXPECT_TRUE(ParseScenario(buf, "shards.json", &spec, &error)) << error;
  EXPECT_EQ(spec.sim.shards, 4);
}

TEST(ScenarioTest, MakeSimConfigCarriesRackLayoutToShards) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(ParseScenario(kValidScenario, "t", &spec, &error)) << error;
  // Shard boundaries align to the scenario's racks: the cluster's rack_size
  // rides into the per-cell SimulatorConfig.
  const SimulatorConfig config = spec.MakeSimConfig("optimus");
  EXPECT_EQ(config.rack_size, 2);
  EXPECT_EQ(config.shards, 1);  // default: unsharded
}

TEST(ScenarioTest, SchemaAndPolicyRequired) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(ParseScenario(R"({"name": "x", "policy": "optimus"})", "t",
                             &spec, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  EXPECT_FALSE(ParseScenario(R"({"schema": "scenario-v1", "name": "x"})", "t",
                             &spec, &error));
  EXPECT_NE(error.find("policies"), std::string::npos);
  EXPECT_FALSE(ParseScenario(
      R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
          "policies": ["drf"]})",
      "t", &spec, &error));
  EXPECT_NE(error.find("not both"), std::string::npos);
  // Unregistered policies are named along with the registered set.
  EXPECT_FALSE(ParseScenario(
      R"({"schema": "scenario-v1", "name": "x", "policy": "nope"})", "t", &spec,
      &error));
  EXPECT_NE(error.find("unknown policy 'nope'"), std::string::npos) << error;
  EXPECT_NE(error.find("optimus"), std::string::npos) << error;
}

TEST(ScenarioTest, TypeMismatchesAreDiagnosed) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(ParseScenario(
      R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
          "seed": "forty-two"})",
      "t", &spec, &error));
  EXPECT_NE(error.find("expected an integer"), std::string::npos) << error;
  EXPECT_FALSE(ParseScenario(
      R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
          "repeats": 2.5})",
      "t", &spec, &error));
  EXPECT_NE(error.find("non-integral"), std::string::npos) << error;
}

TEST(ScenarioTest, NetworkBlockParsesAndDefaultsToFlat) {
  ScenarioSpec spec;
  std::string error;
  // No network block: the flat (exact-compat) model.
  ASSERT_TRUE(ParseScenario(kValidScenario, "t", &spec, &error)) << error;
  EXPECT_EQ(spec.sim.net.model, NetworkConfig::Model::kFlat);

  ASSERT_TRUE(ParseScenario(
      R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
          "network": {"model": "contention", "nic_bps": 125e6,
                      "oversubscription": 4.0}})",
      "t", &spec, &error))
      << error;
  EXPECT_EQ(spec.sim.net.model, NetworkConfig::Model::kContention);
  EXPECT_DOUBLE_EQ(spec.sim.net.nic_bps, 125e6);
  EXPECT_DOUBLE_EQ(spec.sim.net.oversubscription, 4.0);
}

TEST(ScenarioTest, NetworkBlockErrorsCarryPositions) {
  const struct {
    const char* json;
    const char* needle;
  } cases[] = {
      {"{\n  \"schema\": \"scenario-v1\",\n  \"name\": \"x\",\n"
       "  \"policy\": \"optimus\",\n"
       "  \"network\": {\"oversubscription\": 0.5}\n}",
       "net.json:5"},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "network": {"oversubscription": 0.5}})",
       "network.oversubscription: must be >= 1"},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "network": {"model": "fat-tree"}})",
       "unknown network model \"fat-tree\""},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "network": {"oversub": 4.0}})",
       "unknown key \"oversub\""},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "network": {"nic_bps": -1}})",
       "network.nic_bps: must be a finite number > 0"},
  };
  for (const auto& c : cases) {
    ScenarioSpec spec;
    std::string error;
    EXPECT_FALSE(ParseScenario(c.json, "net.json", &spec, &error)) << c.json;
    EXPECT_NE(error.find(c.needle), std::string::npos) << error;
  }
}

TEST(ScenarioTest, CommArchitectureParsesAndValidates) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(ParseScenario(
      R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
          "workload": {"comm": "allreduce"}})",
      "t", &spec, &error))
      << error;
  EXPECT_EQ(spec.workload.comm, CommMode::kAllReduce);

  const struct {
    const char* json;
    const char* needle;
  } cases[] = {
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "workload": {"comm": "ring"}})",
       "unknown comm architecture \"ring\""},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "workload": {"comm": "allreduce", "mode": "async"}})",
       "allreduce jobs are always synchronous"},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "workload": {"comm": "allreduce",
                        "ps_demand": {"cpu": 4, "memory_gb": 8}}})",
       "run no PS tasks"},
      {R"({"schema": "scenario-v1", "name": "x", "policy": "optimus",
           "workload": {"allreduce_fraction": 1.5}})",
       "allreduce_fraction"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(ParseScenario(c.json, "t", &spec, &error)) << c.json;
    EXPECT_NE(error.find(c.needle), std::string::npos) << error;
  }
}

TEST(ScenarioTest, SeedRoundTripReplaysIdenticalJobs) {
  ScenarioSpec a;
  ScenarioSpec b;
  std::string error;
  ASSERT_TRUE(ParseScenario(kValidScenario, "t", &a, &error)) << error;
  ASSERT_TRUE(ParseScenario(kValidScenario, "t", &b, &error)) << error;
  for (int repeat = 0; repeat < 2; ++repeat) {
    const std::vector<JobSpec> jobs_a = a.JobsForRepeat(repeat);
    const std::vector<JobSpec> jobs_b = b.JobsForRepeat(repeat);
    ASSERT_EQ(jobs_a.size(), jobs_b.size());
    for (size_t i = 0; i < jobs_a.size(); ++i) {
      EXPECT_EQ(jobs_a[i].arrival_time_s, jobs_b[i].arrival_time_s);
      EXPECT_EQ(jobs_a[i].model, jobs_b[i].model);
      EXPECT_EQ(jobs_a[i].dataset_scale, jobs_b[i].dataset_scale);
    }
  }
  // Different repeats draw different workloads.
  EXPECT_NE(a.JobsForRepeat(0)[0].arrival_time_s,
            a.JobsForRepeat(1)[0].arrival_time_s);
}

TEST(ScenarioTest, MakeSimConfigAppliesPolicyPerCell) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(ParseScenario(kValidScenario, "t", &spec, &error)) << error;
  const SimulatorConfig optimus = spec.MakeSimConfig("optimus", 0);
  EXPECT_EQ(optimus.policy, "optimus");
  EXPECT_TRUE(optimus.use_paa);
  EXPECT_EQ(optimus.seed, 9u);
  const SimulatorConfig drf = spec.MakeSimConfig("drf", 1);
  EXPECT_EQ(drf.policy, "drf");
  EXPECT_EQ(drf.allocator, AllocatorPolicy::kDrf);
  EXPECT_FALSE(drf.use_paa);
  EXPECT_EQ(drf.seed, 10u);
  // Shared knobs survive the policy application.
  EXPECT_DOUBLE_EQ(drf.interval_s, 300.0);
  EXPECT_TRUE(drf.oracle_estimates);
}

// ---------------------------------------------------------------------------
// SchedulerRegistry
// ---------------------------------------------------------------------------

TEST(SchedulerRegistryTest, EveryRegisteredPolicyConstructs) {
  const std::vector<std::string> names = SchedulerRegistry::Global().Names();
  ASSERT_GE(names.size(), 6u);
  // Canonical built-ins, in registration order (the rack-aware Theorem-1
  // variant registers right after the policy it refines).
  EXPECT_EQ(names[0], "optimus");
  EXPECT_EQ(names[1], "optimus_rack");
  EXPECT_EQ(names[2], "drf");
  EXPECT_EQ(names[3], "tetris");
  EXPECT_EQ(names[4], "fifo");
  EXPECT_EQ(names[5], "srtf");
  for (const std::string& name : names) {
    const SchedulerPolicyInfo* info = SchedulerRegistry::Global().Find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(info->display_name.empty()) << name;
    EXPECT_FALSE(info->description.empty()) << name;
    OptimusAllocRoundStats stats;
    EXPECT_NE(SchedulerRegistry::Global().Create(name, &stats), nullptr) << name;
    SimulatorConfig config;
    std::string error;
    ASSERT_TRUE(ApplySchedulerPolicy(name, &config, &error)) << error;
    EXPECT_EQ(config.policy, name);
    EXPECT_EQ(config.allocator, info->allocator_family);
    EXPECT_EQ(config.placement, info->placement);
  }
}

TEST(SchedulerRegistryTest, UnknownPolicyNamesTheRegisteredSet) {
  EXPECT_EQ(SchedulerRegistry::Global().Find("nope"), nullptr);
  OptimusAllocRoundStats stats;
  EXPECT_EQ(SchedulerRegistry::Global().Create("nope", &stats), nullptr);
  const std::string message =
      SchedulerRegistry::Global().UnknownPolicyMessage("nope");
  EXPECT_NE(message.find("'nope'"), std::string::npos);
  for (const std::string& name : SchedulerRegistry::Global().Names()) {
    EXPECT_NE(message.find(name), std::string::npos) << message;
  }
  SimulatorConfig config;
  std::string error;
  EXPECT_FALSE(ApplySchedulerPolicy("nope", &config, &error));
  EXPECT_EQ(error, message);
}

TEST(SchedulerRegistryTest, RegisterRejectsDuplicatesAndIncompleteInfos) {
  SchedulerPolicyInfo dup;
  dup.name = "optimus";
  dup.SetFactory([](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
    return nullptr;
  });
  EXPECT_FALSE(SchedulerRegistry::Global().Register(std::move(dup)));
  SchedulerPolicyInfo unnamed;
  unnamed.SetFactory([](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
    return nullptr;
  });
  EXPECT_FALSE(SchedulerRegistry::Global().Register(std::move(unnamed)));
  SchedulerPolicyInfo no_factory;
  no_factory.name = "no-factory";
  EXPECT_FALSE(SchedulerRegistry::Global().Register(std::move(no_factory)));
}

// ---------------------------------------------------------------------------
// Sweep determinism
// ---------------------------------------------------------------------------

ScenarioSpec SmallScenario(const std::string& name, uint64_t seed,
                           ArrivalSpec::Kind arrivals) {
  ScenarioSpec spec;
  spec.name = name;
  spec.seed = seed;
  spec.repeats = 2;
  spec.policies = {"optimus", "drf"};
  spec.workload.num_jobs = 5;
  spec.workload.arrivals.kind = arrivals;
  spec.workload.sizes.target_steps_per_epoch = 20;
  spec.sim.straggler.injection_prob_per_interval = 0.12;
  return spec;
}

TEST(SweepTest, MergedReportIsBitwiseIdenticalAcrossThreadCounts) {
  const std::vector<ScenarioSpec> scenarios = {
      SmallScenario("det_a", 3, ArrivalSpec::Kind::kUniform),
      SmallScenario("det_b", 4, ArrivalSpec::Kind::kPoisson),
  };
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions wide;
  wide.threads = 8;
  const SweepResult a = RunSweep(scenarios, serial);
  const SweepResult b = RunSweep(scenarios, wide);
  EXPECT_EQ(MergedSweepJson(scenarios, a), MergedSweepJson(scenarios, b));
  ASSERT_EQ(a.cells.size(), 4u);
  ASSERT_EQ(b.cells.size(), 4u);
  for (size_t i = 0; i < a.cells.size(); ++i) {
    // The per-cell optimus-run-report-v1 bytes must match too (profiling
    // metrics are excluded from the capture).
    EXPECT_EQ(a.cells[i].run_report, b.cells[i].run_report) << i;
    EXPECT_FALSE(a.cells[i].run_report.empty()) << i;
    EXPECT_EQ(a.cells[i].audit_violations, 0) << i;
  }
  // Baseline normalization: the first policy of each scenario is 1.0.
  EXPECT_DOUBLE_EQ(a.cells[0].jct_vs_baseline, 1.0);
  EXPECT_DOUBLE_EQ(a.cells[2].jct_vs_baseline, 1.0);
}

TEST(SweepTest, CellGridIsScenarioMajor) {
  const std::vector<ScenarioSpec> scenarios = {
      SmallScenario("grid_a", 3, ArrivalSpec::Kind::kUniform),
      SmallScenario("grid_b", 4, ArrivalSpec::Kind::kUniform),
  };
  SweepOptions options;
  options.threads = 2;
  options.capture_run_reports = false;
  const SweepResult result = RunSweep(scenarios, options);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].scenario, "grid_a");
  EXPECT_EQ(result.cells[0].policy, "optimus");
  EXPECT_EQ(result.cells[1].scenario, "grid_a");
  EXPECT_EQ(result.cells[1].policy, "drf");
  EXPECT_EQ(result.cells[2].scenario, "grid_b");
  EXPECT_EQ(result.cells[3].policy, "drf");
  for (const SweepCellResult& cell : result.cells) {
    EXPECT_TRUE(cell.run_report.empty());
    EXPECT_EQ(cell.repeats, 2);
    EXPECT_GT(cell.avg_jct_mean, 0.0);
  }
}

}  // namespace
}  // namespace optimus
