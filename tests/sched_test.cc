#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/sched/baseline_allocators.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/sched/scheduler.h"

namespace optimus {
namespace {

// A simple concave speed function: f improves with both p and w but with
// diminishing returns, peaking inside the grid.
SpeedEstimate ConcaveSpeed(double scale = 1.0) {
  return [scale](int p, int w) {
    const double t = 4.0 / w + 1.0 + 0.8 * w / p + 0.05 * w + 0.05 * p;
    return scale / t;
  };
}

SchedJob MakeJob(int id, double remaining_epochs, SpeedEstimate speed,
                 double cpu_per_task = 5.0) {
  SchedJob job;
  job.job_id = id;
  job.worker_demand = Resources(cpu_per_task, 10, 0, 0.2);
  job.ps_demand = Resources(cpu_per_task, 10, 0, 0.2);
  job.remaining_epochs = remaining_epochs;
  job.speed = std::move(speed);
  job.max_ps = 16;
  job.max_workers = 16;
  return job;
}

Resources Capacity(double cpu) { return Resources(cpu, 10000, 0, 1000); }

// ---------------------------------------------------------------------------
// OptimusAllocator
// ---------------------------------------------------------------------------

TEST(OptimusAllocatorTest, SeedsEveryJobWithOneWorkerOnePs) {
  OptimusAllocator allocator;
  std::vector<SchedJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(MakeJob(i, 10.0, ConcaveSpeed()));
  }
  // Capacity for exactly the seeds (4 jobs x 2 tasks x 5 cpu).
  AllocationMap result = allocator.Allocate(jobs, Capacity(40));
  ASSERT_EQ(result.size(), 4u);
  for (const auto& [id, alloc] : result) {
    EXPECT_EQ(alloc.num_ps, 1);
    EXPECT_EQ(alloc.num_workers, 1);
  }
}

TEST(OptimusAllocatorTest, RespectsCapacity) {
  OptimusAllocator allocator;
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, ConcaveSpeed()),
                                MakeJob(1, 20.0, ConcaveSpeed())};
  const double cpu = 65.0;  // 13 tasks
  AllocationMap result = allocator.Allocate(jobs, Capacity(cpu));
  double used = 0.0;
  for (const auto& [id, alloc] : result) {
    used += 5.0 * (alloc.num_ps + alloc.num_workers);
  }
  EXPECT_LE(used, cpu + 1e-9);
  // Work-hungry concave speeds should drive usage close to capacity.
  EXPECT_GE(used, cpu - 10.0);
}

TEST(OptimusAllocatorTest, LargerJobGetsMoreResources) {
  // Same speed function; job 1 has 10x the remaining work, so its marginal
  // gains (Eqn 9 scales with Q) dominate.
  OptimusAllocator allocator;
  std::vector<SchedJob> jobs = {MakeJob(0, 2.0, ConcaveSpeed()),
                                MakeJob(1, 20.0, ConcaveSpeed())};
  AllocationMap result = allocator.Allocate(jobs, Capacity(100));
  const int tasks0 = result[0].num_ps + result[0].num_workers;
  const int tasks1 = result[1].num_ps + result[1].num_workers;
  EXPECT_GT(tasks1, tasks0);
}

TEST(OptimusAllocatorTest, StopsAtNonPositiveMarginalGain) {
  // Speed independent of resources: no gain from extra tasks, so every job
  // stays at its (1, 1) seed even with abundant capacity.
  OptimusAllocator allocator;
  SpeedEstimate flat = [](int, int) { return 1.0; };
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, flat), MakeJob(1, 10.0, flat)};
  AllocationMap result = allocator.Allocate(jobs, Capacity(1000));
  for (const auto& [id, alloc] : result) {
    EXPECT_EQ(alloc.num_ps, 1);
    EXPECT_EQ(alloc.num_workers, 1);
  }
}

TEST(OptimusAllocatorTest, LazyHeapDropsStaleCandidates) {
  // Every grant moves a job's allocation and re-pushes both kinds with fresh
  // gains, so the superseded entries must surface as stale drops. With two
  // competing jobs and plenty of capacity the greedy interleaves grants,
  // guaranteeing stale pops.
  OptimusAllocRoundStats stats;
  OptimusAllocator allocator(OptimusAllocatorOptions{0.0, &stats});
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, ConcaveSpeed()),
                                MakeJob(1, 20.0, ConcaveSpeed())};
  allocator.Allocate(jobs, Capacity(100));
  EXPECT_GT(stats.grants, 0);
  EXPECT_GT(stats.stale_drops, 0);
  // Every pop is exactly one of: grant, stale drop, unfittable drop.
  EXPECT_EQ(stats.pops, stats.grants + stats.stale_drops + stats.unfittable_drops);
}

TEST(OptimusAllocatorTest, UnfittableKindIsDroppedWhileOtherKindFills) {
  // PS tasks are cheaper than workers and the speed gains favor parameter
  // servers, so the greedy keeps granting PSes until the worker candidate no
  // longer fits the shrunken capacity: it must be dropped (not wedge the
  // heap) while the PS side keeps filling.
  OptimusAllocRoundStats stats;
  OptimusAllocator allocator(OptimusAllocatorOptions{0.0, &stats});
  SchedJob job;
  job.job_id = 0;
  job.worker_demand = Resources(5, 10, 0, 0.2);
  job.ps_demand = Resources(3, 10, 0, 0.2);
  job.remaining_epochs = 10.0;
  // Improves strongly with p, only faintly with w: PS gains dominate but the
  // worker candidate stays positive (so it gets pushed, then popped).
  job.speed = [](int p, int w) {
    return 1.0 / (4.0 / p + 0.2 / w + 0.05 * p + 0.05 * w);
  };
  job.max_ps = 16;
  job.max_workers = 16;

  // Seed (1 PS, 1 worker) costs 8 CPUs; the remaining 6 fit two more PSes
  // (3 each) but never another worker (5).
  AllocationMap result = allocator.Allocate({job}, Capacity(14.0));
  EXPECT_EQ(result[0].num_workers, 1);
  EXPECT_EQ(result[0].num_ps, 3);
  EXPECT_GE(stats.unfittable_drops, 1);
  EXPECT_EQ(stats.pops, stats.grants + stats.stale_drops + stats.unfittable_drops);
}

TEST(OptimusAllocatorTest, PrefersWorkerOrPsByGain) {
  // Speed that only improves with workers: all additional tasks should be
  // workers.
  OptimusAllocator allocator;
  SpeedEstimate worker_only = [](int /*p*/, int w) { return 1.0 - 1.0 / (1.0 + w); };
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, worker_only)};
  AllocationMap result = allocator.Allocate(jobs, Capacity(60));
  EXPECT_EQ(result[0].num_ps, 1);
  EXPECT_GT(result[0].num_workers, 1);
}

TEST(OptimusAllocatorTest, RespectsPerJobCaps) {
  OptimusAllocator allocator;
  SchedJob job = MakeJob(0, 100.0, ConcaveSpeed());
  job.max_ps = 2;
  job.max_workers = 3;
  AllocationMap result = allocator.Allocate({job}, Capacity(1000));
  EXPECT_LE(result[0].num_ps, 2);
  EXPECT_LE(result[0].num_workers, 3);
}

TEST(OptimusAllocatorTest, PriorityFactorDampsYoungJob) {
  // Two identical jobs, one with a damped priority: the damped one must not
  // receive more tasks than the other.
  OptimusAllocator allocator;
  SchedJob a = MakeJob(0, 10.0, ConcaveSpeed());
  SchedJob b = MakeJob(1, 10.0, ConcaveSpeed());
  b.priority_factor = 0.5;
  AllocationMap result = allocator.Allocate({a, b}, Capacity(90));
  const int tasks_a = result[0].num_ps + result[0].num_workers;
  const int tasks_b = result[1].num_ps + result[1].num_workers;
  EXPECT_GE(tasks_a, tasks_b);
}

TEST(OptimusAllocatorTest, ZeroRemainingWorkGetsOnlySeed) {
  OptimusAllocator allocator;
  std::vector<SchedJob> jobs = {MakeJob(0, 0.0, ConcaveSpeed()),
                                MakeJob(1, 10.0, ConcaveSpeed())};
  AllocationMap result = allocator.Allocate(jobs, Capacity(100));
  EXPECT_EQ(result[0].num_ps + result[0].num_workers, 2);
  EXPECT_GT(result[1].num_ps + result[1].num_workers, 2);
}

TEST(OptimusAllocatorTest, DeterministicAcrossCalls) {
  OptimusAllocator allocator;
  std::vector<SchedJob> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(MakeJob(i, 5.0 + i, ConcaveSpeed(1.0 + 0.1 * i)));
  }
  AllocationMap a = allocator.Allocate(jobs, Capacity(200));
  AllocationMap b = allocator.Allocate(jobs, Capacity(200));
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [id, alloc] : a) {
    EXPECT_TRUE(alloc == b[id]) << "job " << id;
  }
}

// ---------------------------------------------------------------------------
// DrfAllocator
// ---------------------------------------------------------------------------

TEST(DrfAllocatorTest, EqualJobsGetEqualShares) {
  DrfAllocator allocator;
  std::vector<SchedJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(MakeJob(i, 10.0 * (i + 1), ConcaveSpeed()));
  }
  AllocationMap result = allocator.Allocate(jobs, Capacity(200));  // 40 tasks
  // Equal demands => equal units regardless of job size (DRF is size-blind).
  ASSERT_EQ(result.size(), 4u);
  int reference = result[0].num_workers;
  for (const auto& [id, alloc] : result) {
    EXPECT_EQ(alloc.num_workers, alloc.num_ps);  // 1:1 ratio
    EXPECT_NEAR(alloc.num_workers, reference, 1);
  }
}

TEST(DrfAllocatorTest, SmallerDemandJobGetsMoreUnits) {
  // DRF equalizes dominant shares: a job with half the per-task demand gets
  // about twice the units.
  DrfAllocator allocator;
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, ConcaveSpeed(), /*cpu=*/10.0),
                                MakeJob(1, 10.0, ConcaveSpeed(), /*cpu=*/5.0)};
  AllocationMap result = allocator.Allocate(jobs, Capacity(120));
  EXPECT_GT(result[1].num_workers, result[0].num_workers);
}

TEST(DrfAllocatorTest, WorkConservingUpToCaps) {
  DrfAllocator allocator;
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, ConcaveSpeed())};
  AllocationMap result = allocator.Allocate(jobs, Capacity(1000));
  // One job, plenty of room: fills to its cap even though speed saturates.
  EXPECT_EQ(result[0].num_workers, 16);
  EXPECT_EQ(result[0].num_ps, 16);
}

// ---------------------------------------------------------------------------
// TetrisAllocator
// ---------------------------------------------------------------------------

TEST(TetrisAllocatorTest, ShortJobServedFirst) {
  TetrisAllocator allocator;
  // Job 0 is 100x longer than job 1; under tight capacity the short job gets
  // the larger share.
  std::vector<SchedJob> jobs = {MakeJob(0, 100.0, ConcaveSpeed()),
                                MakeJob(1, 1.0, ConcaveSpeed())};
  AllocationMap result = allocator.Allocate(jobs, Capacity(60));  // 12 tasks
  const int tasks0 = result.count(0) ? result[0].num_ps + result[0].num_workers : 0;
  const int tasks1 = result.count(1) ? result[1].num_ps + result[1].num_workers : 0;
  EXPECT_GT(tasks1, tasks0);
}

TEST(TetrisAllocatorTest, OneToOneRatio) {
  TetrisAllocator allocator;
  std::vector<SchedJob> jobs = {MakeJob(0, 5.0, ConcaveSpeed())};
  AllocationMap result = allocator.Allocate(jobs, Capacity(100));
  ASSERT_TRUE(result.count(0));
  EXPECT_EQ(result[0].num_ps, result[0].num_workers);
}

TEST(TetrisAllocatorTest, StopsAtSpeedKnee) {
  // A speed function that is flat beyond 3 units: Tetris should not allocate
  // far past the knee even with huge capacity.
  TetrisAllocator allocator;
  SpeedEstimate knee = [](int p, int w) {
    const int u = std::min(p, w);
    return u <= 3 ? static_cast<double>(u) : 3.0 + 0.001 * (u - 3);
  };
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, knee)};
  AllocationMap result = allocator.Allocate(jobs, Capacity(1000));
  EXPECT_LE(result[0].num_workers, 5);
}

TEST(TetrisAllocatorTest, LeftoverCapacityIsNotWasted) {
  TetrisAllocator allocator;
  std::vector<SchedJob> jobs = {MakeJob(0, 1.0, ConcaveSpeed()),
                                MakeJob(1, 50.0, ConcaveSpeed())};
  AllocationMap result = allocator.Allocate(jobs, Capacity(300));
  // Even the long job gets resources once the short one saturates.
  ASSERT_TRUE(result.count(1));
  EXPECT_GE(result[1].num_workers, 1);
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

std::vector<Server> Uniform(int n, double cpu) {
  return BuildUniformCluster(n, Resources(cpu, 1000, 0, 10));
}

PlacementJobInput PJob(int id, int p, int w, double cpu = 5.0) {
  PlacementJobInput job;
  job.job_id = id;
  job.alloc = {p, w};
  job.worker_demand = Resources(cpu, 10, 0, 0.1);
  job.ps_demand = Resources(cpu, 10, 0, 0.1);
  return job;
}

TEST(PlacementTest, OptimusPacksOntoFewestServers) {
  // 2 PS + 2 workers at 5 cpu each fit on a single 20-cpu server.
  PlacementResult result =
      PlaceJobs(PlacementPolicy::kOptimusPack, {PJob(0, 2, 2)}, Uniform(4, 20));
  ASSERT_TRUE(result.placements.count(0));
  const JobPlacement& p = result.placements[0];
  int servers_used = 0;
  for (size_t s = 0; s < p.workers_per_server.size(); ++s) {
    if (p.workers_per_server[s] + p.ps_per_server[s] > 0) {
      ++servers_used;
    }
  }
  EXPECT_EQ(servers_used, 1);
}

TEST(PlacementTest, OptimusSpreadsEvenlyWhenMultipleServersNeeded) {
  // 4 PS + 4 workers at 5 cpu = 40 cpu; servers hold 20 cpu each => 2 servers
  // with 2 PS + 2 workers each (Theorem 1).
  PlacementResult result =
      PlaceJobs(PlacementPolicy::kOptimusPack, {PJob(0, 4, 4)}, Uniform(4, 20));
  ASSERT_TRUE(result.placements.count(0));
  const JobPlacement& p = result.placements[0];
  for (size_t s = 0; s < p.workers_per_server.size(); ++s) {
    const int total = p.workers_per_server[s] + p.ps_per_server[s];
    EXPECT_TRUE(total == 0 || total == 4) << "server " << s;
    if (total == 4) {
      EXPECT_EQ(p.workers_per_server[s], 2);
      EXPECT_EQ(p.ps_per_server[s], 2);
    }
  }
}

TEST(PlacementTest, CountsMatchAllocation) {
  for (PlacementPolicy policy :
       {PlacementPolicy::kOptimusPack, PlacementPolicy::kLoadBalance,
        PlacementPolicy::kTetrisPack}) {
    SCOPED_TRACE(PlacementPolicyName(policy));
    PlacementResult result =
        PlaceJobs(policy, {PJob(0, 3, 5), PJob(1, 2, 2)}, Uniform(6, 20));
    for (int id : {0, 1}) {
      ASSERT_TRUE(result.placements.count(id));
      const JobPlacement& p = result.placements[id];
      const Allocation want = id == 0 ? Allocation{3, 5} : Allocation{2, 2};
      EXPECT_EQ(p.TotalPs(), want.num_ps);
      EXPECT_EQ(p.TotalWorkers(), want.num_workers);
      EXPECT_TRUE(result.effective_alloc[id] == want);
    }
  }
}

TEST(PlacementTest, RespectsServerCapacity) {
  for (PlacementPolicy policy :
       {PlacementPolicy::kOptimusPack, PlacementPolicy::kLoadBalance,
        PlacementPolicy::kTetrisPack}) {
    SCOPED_TRACE(PlacementPolicyName(policy));
    std::vector<PlacementJobInput> jobs;
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(PJob(i, 2, 2));
    }
    PlacementResult result = PlaceJobs(policy, jobs, Uniform(4, 20));
    // 4 jobs x 4 tasks x 5 cpu = 80 cpu = total capacity: per-server loads
    // must never exceed 4 tasks.
    std::vector<int> per_server(4, 0);
    for (const auto& [id, p] : result.placements) {
      for (size_t s = 0; s < p.workers_per_server.size(); ++s) {
        per_server[s] += p.workers_per_server[s] + p.ps_per_server[s];
      }
    }
    for (int c : per_server) {
      EXPECT_LE(c, 4);
    }
  }
}

TEST(PlacementTest, ShrinkToFitReducesOversizedJob) {
  // 8+8 tasks cannot fit on 2 small servers; shrink-to-fit should find a
  // smaller allocation rather than pausing the job.
  PlacementResult result =
      PlaceJobs(PlacementPolicy::kOptimusPack, {PJob(0, 8, 8)}, Uniform(2, 20));
  ASSERT_TRUE(result.placements.count(0));
  const Allocation eff = result.effective_alloc[0];
  EXPECT_LT(eff.num_workers, 8);
  EXPECT_GE(eff.num_workers, 1);
  EXPECT_EQ(result.unplaced.size(), 0u);
}

TEST(PlacementTest, WithoutShrinkOversizedJobIsUnplaced) {
  PlacementResult result = PlaceJobs(PlacementPolicy::kOptimusPack, {PJob(0, 8, 8)},
                                     Uniform(2, 20), /*shrink_to_fit=*/false);
  EXPECT_EQ(result.placements.size(), 0u);
  ASSERT_EQ(result.unplaced.size(), 1u);
  EXPECT_EQ(result.unplaced[0], 0);
}

TEST(PlacementTest, LoadBalanceSpreadsTasks) {
  PlacementResult result =
      PlaceJobs(PlacementPolicy::kLoadBalance, {PJob(0, 2, 2)}, Uniform(4, 20));
  ASSERT_TRUE(result.placements.count(0));
  const JobPlacement& p = result.placements[0];
  int servers_used = 0;
  for (size_t s = 0; s < p.workers_per_server.size(); ++s) {
    if (p.workers_per_server[s] + p.ps_per_server[s] > 0) {
      ++servers_used;
    }
  }
  EXPECT_EQ(servers_used, 4);  // one task per server
}

TEST(PlacementTest, TetrisPacksTightly) {
  // Pre-load one server so it has exactly the needed space: tightest-fit
  // should use it instead of opening empty servers.
  std::vector<Server> servers = Uniform(3, 20);
  servers[1].Allocate(Resources(10, 100, 0, 1));
  PlacementResult result =
      PlaceJobs(PlacementPolicy::kTetrisPack, {PJob(0, 1, 1)}, servers);
  ASSERT_TRUE(result.placements.count(0));
  const JobPlacement& p = result.placements[0];
  EXPECT_EQ(p.workers_per_server[1] + p.ps_per_server[1], 2);
}

TEST(PlacementTest, SmallestJobPlacedFirstAvoidsStarvation) {
  // One huge job and one tiny job compete for a small cluster; the tiny job
  // must be placed.
  PlacementResult result = PlaceJobs(PlacementPolicy::kOptimusPack,
                                     {PJob(0, 6, 6), PJob(1, 1, 1)}, Uniform(2, 20));
  EXPECT_TRUE(result.placements.count(1));
}

TEST(PlacementTest, HeterogeneousServersHandled) {
  // Mixed 16-cpu and 8-cpu servers (the paper's testbed shape): a (4, 4) job
  // with 5-cpu tasks must use the capacity-aware spread.
  std::vector<Server> servers;
  servers.emplace_back(0, Resources(16, 80, 0, 1));
  servers.emplace_back(1, Resources(16, 80, 0, 1));
  servers.emplace_back(2, Resources(8, 48, 0, 1));
  servers.emplace_back(3, Resources(8, 48, 0, 1));
  PlacementResult result =
      PlaceJobs(PlacementPolicy::kOptimusPack, {PJob(0, 4, 4)}, servers);
  ASSERT_TRUE(result.placements.count(0));
  EXPECT_TRUE(result.effective_alloc[0] == (Allocation{4, 4}));
}

TEST(PlacementTest, InactiveJobsSkipped) {
  PlacementResult result = PlaceJobs(PlacementPolicy::kOptimusPack,
                                     {PJob(0, 0, 0), PJob(1, 1, 1)}, Uniform(2, 20));
  EXPECT_FALSE(result.placements.count(0));
  EXPECT_TRUE(result.placements.count(1));
  EXPECT_TRUE(result.unplaced.empty());
}

}  // namespace
}  // namespace optimus
