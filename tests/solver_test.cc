#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/matrix.h"
#include "src/solver/nnls.h"

namespace optimus {
namespace {

TEST(MatrixTest, TimesAndTransposeTimes) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Vector x = {1.0, 1.0, 1.0};
  Vector ax = a.Times(x);
  EXPECT_DOUBLE_EQ(ax[0], 6.0);
  EXPECT_DOUBLE_EQ(ax[1], 15.0);

  Vector v = {1.0, 1.0};
  Vector atv = a.TransposeTimes(v);
  EXPECT_DOUBLE_EQ(atv[0], 5.0);
  EXPECT_DOUBLE_EQ(atv[1], 7.0);
  EXPECT_DOUBLE_EQ(atv[2], 9.0);
}

TEST(MatrixTest, GramIsSymmetric) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  a(2, 0) = 5;
  a(2, 1) = 6;
  Matrix g = a.Gram();
  EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
  EXPECT_DOUBLE_EQ(g(0, 0), 1 + 9 + 25);
  EXPECT_DOUBLE_EQ(g(1, 1), 4 + 16 + 36);
}

TEST(MatrixTest, SelectColumns) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Matrix s = a.SelectColumns({2, 0});
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3);
  EXPECT_DOUBLE_EQ(s(0, 1), 1);
  EXPECT_DOUBLE_EQ(s(1, 0), 6);
}

TEST(SolveSpdTest, SolvesDiagonalSystem) {
  Matrix m(2, 2);
  m(0, 0) = 2.0;
  m(1, 1) = 4.0;
  Vector b = {2.0, 8.0};
  Vector x;
  ASSERT_TRUE(SolveSpd(m, b, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(SolveLeastSquaresTest, RecoversExactSolution) {
  // y = 2*x1 + 3*x2 on 4 points.
  Matrix a(4, 2);
  Vector b(4);
  const double xs[4][2] = {{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = xs[i][0];
    a(i, 1) = xs[i][1];
    b[i] = 2 * xs[i][0] + 3 * xs[i][1];
  }
  Vector x;
  ASSERT_TRUE(SolveLeastSquares(a, b, &x));
  EXPECT_NEAR(x[0], 2.0, 1e-8);
  EXPECT_NEAR(x[1], 3.0, 1e-8);
  EXPECT_NEAR(ResidualSumOfSquares(a, x, b), 0.0, 1e-10);
}

TEST(NnlsTest, MatchesUnconstrainedWhenSolutionPositive) {
  Matrix a(5, 2);
  Vector b(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = i + 1.0;
    a(i, 1) = 1.0;
    b[i] = 1.5 * (i + 1.0) + 0.7;
  }
  NnlsResult result = SolveNnls(a, b);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.5, 1e-8);
  EXPECT_NEAR(result.x[1], 0.7, 1e-8);
  EXPECT_NEAR(result.residual_sum_of_squares, 0.0, 1e-10);
}

TEST(NnlsTest, ClampsNegativeComponentToZero) {
  // Unconstrained solution would have a negative coefficient for column 1:
  // b = 2*col0 - 1*col1. NNLS must zero x[1] and refit.
  Matrix a(6, 2);
  Vector b(6);
  Rng rng(11);
  for (int i = 0; i < 6; ++i) {
    a(i, 0) = rng.Uniform(0, 1);
    a(i, 1) = rng.Uniform(0, 1);
    b[i] = 2.0 * a(i, 0) - 1.0 * a(i, 1);
  }
  NnlsResult result = SolveNnls(a, b);
  ASSERT_TRUE(result.converged);
  EXPECT_GE(result.x[0], 0.0);
  EXPECT_DOUBLE_EQ(result.x[1], 0.0);
}

TEST(NnlsTest, ZeroRhsGivesZeroSolution) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(1, 1) = 1;
  a(2, 0) = 1;
  Vector b = {0.0, 0.0, 0.0};
  NnlsResult result = SolveNnls(a, b);
  ASSERT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.x[0], 0.0);
  EXPECT_DOUBLE_EQ(result.x[1], 0.0);
}

TEST(NnlsTest, AllSolutionsNonNegativeProperty) {
  // Property: for random problems, NNLS never returns a negative entry and
  // never beats the unconstrained optimum.
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t rows = 8;
    const size_t cols = 4;
    Matrix a(rows, cols);
    Vector b(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        a(r, c) = rng.Normal(0.0, 1.0);
      }
      b[r] = rng.Normal(0.0, 1.0);
    }
    NnlsResult result = SolveNnls(a, b);
    for (double v : result.x) {
      EXPECT_GE(v, 0.0);
    }
    Vector unconstrained;
    if (SolveLeastSquares(a, b, &unconstrained)) {
      const double rss_unc = ResidualSumOfSquares(a, unconstrained, b);
      EXPECT_GE(result.residual_sum_of_squares, rss_unc - 1e-8);
    }
    // The zero vector is always feasible, so NNLS can never do worse than it.
    const double rss_zero = Dot(b, b);
    EXPECT_LE(result.residual_sum_of_squares, rss_zero + 1e-8);
  }
}

TEST(NnlsTest, RecoversNonNegativeGroundTruth) {
  // Property: when the ground truth is non-negative and the system is
  // overdetermined and noiseless, NNLS recovers it.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t rows = 30;
    const size_t cols = 3;
    Matrix a(rows, cols);
    Vector truth = {rng.Uniform(0, 5), rng.Uniform(0, 5), rng.Uniform(0, 5)};
    Vector b(rows, 0.0);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        a(r, c) = rng.Uniform(0.1, 2.0);
        b[r] += a(r, c) * truth[c];
      }
    }
    NnlsResult result = SolveNnls(a, b);
    ASSERT_TRUE(result.converged);
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_NEAR(result.x[c], truth[c], 1e-6) << "trial " << trial << " col " << c;
    }
  }
}

TEST(DotTest, Basic) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

}  // namespace
}  // namespace optimus
