#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/models/param_blocks.h"

namespace optimus {
namespace {

TEST(ModelZooTest, HasNineTable1Models) {
  const auto& zoo = GetModelZoo();
  ASSERT_EQ(zoo.size(), 9u);
  EXPECT_EQ(zoo[0].name, "ResNext-110");
  EXPECT_EQ(zoo[1].name, "ResNet-50");
  EXPECT_EQ(zoo.back().name, "DeepSpeech2");
}

TEST(ModelZooTest, Table1MetadataMatchesPaper) {
  const ModelSpec& resnet = FindModel("ResNet-50");
  EXPECT_DOUBLE_EQ(resnet.params_millions, 25.0);
  EXPECT_EQ(resnet.dataset, "ILSVRC2012-ImageNet");
  EXPECT_EQ(resnet.dataset_examples, 1313788);
  EXPECT_EQ(resnet.network, NetworkType::kCnn);
  EXPECT_EQ(resnet.num_param_blocks, 157);

  const ModelSpec& ds2 = FindModel("DeepSpeech2");
  EXPECT_DOUBLE_EQ(ds2.params_millions, 38.0);
  EXPECT_EQ(ds2.network, NetworkType::kRnn);
  EXPECT_EQ(ds2.dataset_examples, 45000);

  const ModelSpec& cnn = FindModel("CNN-rand");
  EXPECT_EQ(cnn.dataset, "MR");
  EXPECT_EQ(cnn.dataset_examples, 10662);
}

TEST(ModelZooTest, AllSpecsAreInternallyValid) {
  for (const ModelSpec& spec : GetModelZoo()) {
    SCOPED_TRACE(spec.name);
    EXPECT_GT(spec.params_millions, 0.0);
    EXPECT_GT(spec.dataset_examples, 0);
    EXPECT_GT(spec.default_sync_batch, 0);
    EXPECT_GT(spec.default_async_minibatch, 0);
    EXPECT_GT(spec.compute.fwd_time_per_example_s, 0.0);
    EXPECT_GT(spec.compute.back_time_s, 0.0);
    EXPECT_GT(spec.compute.update_time_full_s, 0.0);
    EXPECT_GT(spec.loss.c0, 0.0);
    EXPECT_GT(spec.loss.c1, 0.0);
    EXPECT_GE(spec.loss.c2, 0.0);
    EXPECT_GT(spec.num_param_blocks, 0);
    EXPECT_EQ(spec.ParamBytes(), spec.TotalParams() * 4);
  }
}

TEST(ModelZooTest, StepsPerEpoch) {
  const ModelSpec& resnet = FindModel("ResNet-50");
  EXPECT_EQ(resnet.StepsPerEpoch(128), 1313788 / 128);
  // Tiny dataset with huge batch still yields at least one step.
  ModelSpec small = resnet;
  small.dataset_examples = 10;
  EXPECT_EQ(small.StepsPerEpoch(128), 1);
}

TEST(LossCurveTest, MonotonicallyDecreasingToFloor) {
  const ModelSpec& spec = FindModel("Seq2Seq");
  LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
  double prev = curve.TrueLossAtEpoch(0);
  for (int e = 1; e <= 200; ++e) {
    const double cur = curve.TrueLossAtEpoch(e);
    EXPECT_LT(cur, prev);
    EXPECT_GT(cur, spec.loss.c2);
    prev = cur;
  }
}

TEST(LossCurveTest, StepAndEpochViewsAgree) {
  const ModelSpec& spec = FindModel("ResNext-110");
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve curve(spec.loss, spe);
  EXPECT_DOUBLE_EQ(curve.TrueLossAtStep(spe * 3), curve.TrueLossAtEpoch(3.0));
}

TEST(LossCurveTest, NoisySamplesCenterOnTrueCurve) {
  const ModelSpec& spec = FindModel("ResNet-50");
  LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
  Rng rng(21);
  double sum = 0.0;
  const int n = 4000;
  const int64_t step = 100;
  for (int i = 0; i < n; ++i) {
    const double sample = curve.SampleLossAtStep(step, &rng);
    EXPECT_GT(sample, 0.0);
    sum += sample;
  }
  EXPECT_NEAR(sum / n, curve.TrueLossAtStep(step), 0.01 * curve.TrueLossAtStep(step));
}

TEST(LossCurveTest, ConvergenceEpochsDecreaseWithLooserThreshold) {
  for (const ModelSpec& spec : GetModelZoo()) {
    SCOPED_TRACE(spec.name);
    LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
    const int64_t tight = curve.EpochsToConverge(0.01, 3);
    const int64_t loose = curve.EpochsToConverge(0.05, 3);
    EXPECT_LE(loose, tight);
    // Production-style models should converge within tens-to-hundreds of
    // epochs, not instantly and not never.
    EXPECT_GE(tight, 3);
    EXPECT_LE(tight, 1000);
  }
}

TEST(LossCurveTest, AccuracyIsBoundedAndIncreasing) {
  const ModelSpec& spec = FindModel("ResNext-110");
  LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
  double prev = curve.TrainAccuracyAtEpoch(0);
  for (int e = 1; e <= 100; ++e) {
    const double acc = curve.TrainAccuracyAtEpoch(e);
    EXPECT_GE(acc, prev);
    EXPECT_LE(acc, spec.loss.max_accuracy + 1e-12);
    prev = acc;
  }
}

TEST(LossCurveTest, ValidationTracksTrainingWithGap) {
  const ModelSpec& spec = FindModel("Inception-BN");
  LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
  for (int e = 0; e <= 50; e += 10) {
    EXPECT_GT(curve.ValidationLossAtEpoch(e), curve.TrueLossAtEpoch(e));
    EXPECT_LT(curve.ValidationAccuracyAtEpoch(e), curve.TrainAccuracyAtEpoch(e) + 1e-12);
  }
}

TEST(LossCurveTest, LearningRateDropIsContinuousAndAccelerates) {
  const ModelSpec& spec = FindModel("ResNet-50");
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve base(spec.loss, spe);
  LearningRateDrop drop{.epoch = 30.0, .c0 = 2.0, .c2 = spec.loss.c2 * 0.5};
  LossCurve dropped(spec.loss, spe, drop);

  // Continuous at the drop point.
  EXPECT_NEAR(dropped.TrueLossAtEpoch(30.0), base.TrueLossAtEpoch(30.0), 1e-9);
  // Before the drop the curves agree; after, the dropped curve is lower.
  EXPECT_DOUBLE_EQ(dropped.TrueLossAtEpoch(10.0), base.TrueLossAtEpoch(10.0));
  EXPECT_LT(dropped.TrueLossAtEpoch(60.0), base.TrueLossAtEpoch(60.0));
}

TEST(ParamBlocksTest, ExactCountAndSum) {
  for (const ModelSpec& spec : GetModelZoo()) {
    SCOPED_TRACE(spec.name);
    const ParamBlockSizes blocks = GenerateParamBlocks(spec);
    EXPECT_EQ(static_cast<int>(blocks.size()), spec.num_param_blocks);
    const int64_t sum = std::accumulate(blocks.begin(), blocks.end(), int64_t{0});
    EXPECT_EQ(sum, spec.TotalParams());
    for (int64_t b : blocks) {
      EXPECT_GE(b, 1);
    }
  }
}

TEST(ParamBlocksTest, Deterministic) {
  const ModelSpec& spec = FindModel("ResNet-50");
  EXPECT_EQ(GenerateParamBlocks(spec), GenerateParamBlocks(spec));
}

TEST(ParamBlocksTest, ResNet50HasTenOverMillionBlocks) {
  // Table 3's MXNet baseline slices blocks above 10^6 params; with 10 PSes it
  // reports 247 total requests for 157 blocks => exactly 10 sliced blocks.
  const ParamBlockSizes blocks = GenerateParamBlocks(FindModel("ResNet-50"));
  const int over_million = static_cast<int>(
      std::count_if(blocks.begin(), blocks.end(), [](int64_t b) { return b >= 1000000; }));
  EXPECT_EQ(over_million, 10);
}

TEST(ParamBlocksTest, SkewedDistribution) {
  // Property: in every model, the largest block dwarfs the smallest (realistic
  // layer-size skew that the PS balancing experiments rely on).
  for (const ModelSpec& spec : GetModelZoo()) {
    SCOPED_TRACE(spec.name);
    const ParamBlockSizes blocks = GenerateParamBlocks(spec);
    const int64_t largest = *std::max_element(blocks.begin(), blocks.end());
    const int64_t smallest = *std::min_element(blocks.begin(), blocks.end());
    if (blocks.size() >= 10) {
      EXPECT_GT(largest, smallest * 20);
    }
  }
}

}  // namespace
}  // namespace optimus
