// ThreadPool (src/common/threadpool.h): task execution, ParallelFor index
// coverage, inline mode, and OPTIMUS_THREADS parsing.

#include <atomic>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/threadpool.h"

namespace optimus {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, InlinePoolRunsTasksImmediately) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);  // no threads spawned
  int count = 0;                     // no atomic needed: everything is inline
  pool.Submit([&count] { ++count; });
  EXPECT_EQ(count, 1);
  pool.Wait();
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(static_cast<int64_t>(hits.size()),
                   [&hits](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForWithMoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&hits](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndNegativeAreNoOps) {
  ThreadPool pool(2);
  int count = 0;
  pool.ParallelFor(0, [&count](int64_t) { ++count; });
  pool.ParallelFor(-5, [&count](int64_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 3; ++wave) {
    pool.ParallelFor(50, [&count](int64_t) { ++count; });
  }
  EXPECT_EQ(count.load(), 150);
}

TEST(DefaultThreadCountTest, ParsesEnvironment) {
  ASSERT_EQ(setenv("OPTIMUS_THREADS", "6", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), 6);

  ASSERT_EQ(setenv("OPTIMUS_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), 1);

  ASSERT_EQ(setenv("OPTIMUS_THREADS", "0", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), 1);

  ASSERT_EQ(unsetenv("OPTIMUS_THREADS"), 0);
  EXPECT_EQ(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace optimus
