// Seeded mutation fuzz of the strict position-tracking JSON reader
// (src/workload/json.h) — the parser every scenario file and every service
// request line goes through. The contract under fuzz:
//
//   1. ParseJson never crashes, hangs, or corrupts memory on any byte soup —
//      it returns false with a diagnostic instead.
//   2. Every rejection carries a 1-based "<source>:<line>:<col>:" position.
//   3. Duplicate object keys are always rejected.
//   4. Nesting depth is bounded (kMaxDepth in json.cc), so adversarial
//      "[[[[…" input fails cleanly instead of overflowing the stack.
//
// The fuzzer is deterministic: a fixed Rng seed drives byte flips, inserts,
// deletes, truncations, and splices over a corpus of valid seed documents,
// so a failure reproduces exactly and can be bisected.

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/workload/json.h"

namespace optimus {
namespace {

// Valid seed documents covering every value type, escapes, unicode, nested
// containers, and the shapes the scenario DSL / service protocol actually
// use. Mutations start from these so the fuzz explores the near-valid
// frontier where parser bugs live, not just random bytes.
const std::vector<std::string>& SeedCorpus() {
  static const std::vector<std::string> corpus = {
      R"({})",
      R"([])",
      R"(null)",
      R"(true)",
      R"(-12.5e-3)",
      R"("plain string")",
      R"({"op": "submit", "id": 7, "model": "ResNet-50", "arrival_s": 120.5})",
      R"({"op": "what_if", "mode": "async", "max_workers": 8, "t_s": 1e9})",
      R"({"schema": "scenario-v1", "seed": 7, "policies": ["optimus", "srtf"]})",
      R"({"a": [1, 2, [3, [4, {"b": null}]]], "c": {"d": {"e": false}}})",
      R"({"esc": "line\nbreak \"quoted\" tab\t back\\slash é€"})",
      R"([0, -1, 2.5, 1e10, 1E-10, 0.125, 123456789012345])",
      "{\n  \"multi\": [\n    1,\n    2\n  ],\n  \"line\": true\n}",
  };
  return corpus;
}

// "<source>:<line>:<col>:" with 1-based positive numbers. Parsed by hand —
// no <regex> needed for a fixed prefix shape.
bool HasPositionPrefix(const std::string& error, const std::string& source) {
  const std::string prefix = source + ":";
  if (error.compare(0, prefix.size(), prefix) != 0) return false;
  size_t i = prefix.size();
  auto read_positive_int = [&](char terminator) {
    size_t digits = 0;
    long value = 0;
    while (i < error.size() && std::isdigit(static_cast<unsigned char>(error[i]))) {
      value = value * 10 + (error[i] - '0');
      ++digits;
      ++i;
    }
    if (digits == 0 || value < 1) return false;
    if (i >= error.size() || error[i] != terminator) return false;
    ++i;
    return true;
  };
  return read_positive_int(':') && read_positive_int(':');
}

// One fuzz probe: parse must terminate and either succeed or produce a
// positioned diagnostic. Returns so callers can also count outcomes.
bool Probe(const std::string& input) {
  JsonValue value;
  std::string error;
  const bool ok = ParseJson(input, "<fuzz>", &value, &error);
  if (!ok) {
    EXPECT_TRUE(HasPositionPrefix(error, "<fuzz>"))
        << "rejection without a line:col position: \"" << error
        << "\" for input: " << input.substr(0, 200);
  } else {
    EXPECT_TRUE(error.empty());
  }
  return ok;
}

std::string Mutate(const std::string& seed_doc, Rng* rng) {
  std::string s = seed_doc;
  const int edits = static_cast<int>(rng->UniformInt(1, 4));
  for (int e = 0; e < edits; ++e) {
    if (s.empty()) {
      s.push_back(static_cast<char>(rng->UniformInt(0, 255)));
      continue;
    }
    const int64_t kind = rng->UniformInt(0, 4);
    const size_t pos = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(s.size()) - 1));
    switch (kind) {
      case 0:  // flip a byte to anything, including NUL and high bytes
        s[pos] = static_cast<char>(rng->UniformInt(0, 255));
        break;
      case 1:  // insert a structural character — the interesting mutations
        s.insert(pos, 1, "{}[],:\"\\0123456789.eE+-tfn"[rng->UniformInt(0, 25)]);
        break;
      case 2:  // delete a byte
        s.erase(pos, 1);
        break;
      case 3:  // truncate — unterminated strings/containers
        s.resize(pos);
        break;
      default:  // splice a fragment of another seed document
        const std::string& other =
            SeedCorpus()[static_cast<size_t>(rng->UniformInt(
                0, static_cast<int64_t>(SeedCorpus().size()) - 1))];
        s.insert(pos, other.substr(0, static_cast<size_t>(rng->UniformInt(
                          0, static_cast<int64_t>(other.size())))));
        break;
    }
  }
  return s;
}

TEST(JsonFuzzTest, SeedCorpusParses) {
  for (const std::string& seed_doc : SeedCorpus()) {
    JsonValue value;
    std::string error;
    EXPECT_TRUE(ParseJson(seed_doc, "<seed>", &value, &error))
        << seed_doc << ": " << error;
  }
}

TEST(JsonFuzzTest, MutatedInputsNeverCrashAndAlwaysPositionErrors) {
  Rng rng(0xf02201d5u);
  int accepted = 0, rejected = 0;
  constexpr int kRounds = 20000;
  for (int round = 0; round < kRounds; ++round) {
    const std::string& seed_doc =
        SeedCorpus()[static_cast<size_t>(round) % SeedCorpus().size()];
    if (Probe(Mutate(seed_doc, &rng))) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // The mutator must actually explore both sides of the validity frontier;
  // if either count collapses to ~0 the fuzz has gone blind.
  EXPECT_GT(accepted, kRounds / 100);
  EXPECT_GT(rejected, kRounds / 4);
}

TEST(JsonFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(0xdeadbeefu);
  for (int round = 0; round < 2000; ++round) {
    std::string soup(static_cast<size_t>(rng.UniformInt(0, 64)), '\0');
    for (char& c : soup) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    Probe(soup);
  }
}

TEST(JsonFuzzTest, DuplicateKeysRejectedWithPosition) {
  const std::vector<std::string> cases = {
      R"({"seed": 1, "seed": 2})",
      R"({"a": {"x": 1, "x": 2}})",
      R"([{"k": true, "k": false}])",
      "{\"a\": 1,\n \"a\": 2}",
  };
  for (const std::string& doc : cases) {
    JsonValue value;
    std::string error;
    EXPECT_FALSE(ParseJson(doc, "<dup>", &value, &error)) << doc;
    EXPECT_TRUE(HasPositionPrefix(error, "<dup>")) << error;
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  }
}

TEST(JsonFuzzTest, DeepNestingRejectedNotOverflowed) {
  // Far past kMaxDepth (96): must fail with a positioned diagnostic, not
  // blow the stack. Both container kinds, plus the alternating shape.
  for (const char* brackets : {"[]", "{}"}) {
    std::string doc;
    for (int i = 0; i < 100000; ++i) doc.push_back(brackets[0]);
    if (brackets[0] == '{') {
      // Objects need keys to nest: {"k":{"k":…}} — build a shallower but
      // still far-over-limit chain.
      doc.clear();
      for (int i = 0; i < 5000; ++i) doc += "{\"k\":";
    }
    JsonValue value;
    std::string error;
    EXPECT_FALSE(ParseJson(doc, "<deep>", &value, &error));
    EXPECT_TRUE(HasPositionPrefix(error, "<deep>")) << error;
  }
  // Exactly at the boundary: depth kMaxDepth-1 of arrays still parses.
  std::string ok_doc;
  for (int i = 0; i < 95; ++i) ok_doc.push_back('[');
  for (int i = 0; i < 95; ++i) ok_doc.push_back(']');
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(ok_doc, "<boundary>", &value, &error)) << error;
}

TEST(JsonFuzzTest, ClassicMalformedInputs) {
  // A curated gauntlet of classic parser trip-ups; every one must be a
  // positioned rejection.
  const std::vector<std::string> cases = {
      "",
      "   ",
      "{",
      "}",
      "[",
      "]",
      "{]",
      "[}",
      R"({"a" 1})",
      R"({"a": 1,})",
      R"([1, 2,])",
      R"({"a": })",
      R"({: 1})",
      R"({1: 2})",
      R"("unterminated)",
      R"("bad \q escape")",
      R"("bad \u12 escape")",
      "\"ctrl\x01char\"",
      "01",
      "1.",
      ".5",
      "+1",
      "1e",
      "--1",
      "tru",
      "nul",
      "truex",
      R"({"a": 1} trailing)",
      R"([1] [2])",
      "\xff\xfe",
  };
  for (const std::string& doc : cases) {
    JsonValue value;
    std::string error;
    EXPECT_FALSE(ParseJson(doc, "<bad>", &value, &error))
        << "accepted malformed input: " << doc;
    EXPECT_TRUE(HasPositionPrefix(error, "<bad>")) << error << " for: " << doc;
  }
}

}  // namespace
}  // namespace optimus
