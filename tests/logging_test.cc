#include <gtest/gtest.h>

#include "src/common/logging.h"

namespace optimus {
namespace {

TEST(LoggingTest, SeverityNames) {
  EXPECT_STREQ(LogSeverityName(LogSeverity::kDebug), "DEBUG");
  EXPECT_STREQ(LogSeverityName(LogSeverity::kInfo), "INFO");
  EXPECT_STREQ(LogSeverityName(LogSeverity::kWarning), "WARNING");
  EXPECT_STREQ(LogSeverityName(LogSeverity::kError), "ERROR");
  EXPECT_STREQ(LogSeverityName(LogSeverity::kFatal), "FATAL");
}

TEST(LoggingTest, MinSeverityRoundTrip) {
  const LogSeverity original = GetMinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(GetMinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ OPTIMUS_CHECK(1 == 2) << "context " << 42; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOpMacrosAbortWithOperands) {
  EXPECT_DEATH({ OPTIMUS_CHECK_EQ(3, 4); }, "Check failed");
  EXPECT_DEATH({ OPTIMUS_CHECK_LT(5, 5); }, "Check failed");
  EXPECT_DEATH({ OPTIMUS_CHECK_GE(1, 2); }, "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ OPTIMUS_LOG(Fatal) << "boom"; }, "boom");
}

TEST(LoggingTest, PassingChecksAreSilentAndCheap) {
  // Must not abort and must not evaluate the stream expression.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "";
  };
  OPTIMUS_CHECK(true) << count();
  EXPECT_EQ(evaluations, 0);
  OPTIMUS_CHECK_EQ(2, 2);
  OPTIMUS_CHECK_NE(1, 2);
  OPTIMUS_CHECK_LE(2, 2);
  OPTIMUS_CHECK_GT(3, 2);
}

}  // namespace
}  // namespace optimus
