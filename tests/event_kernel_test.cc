// Discrete-event kernel (src/sim/event_kernel.h, simulator_events.cc):
//
//   - EventQueue ordering: strict (time, kind, job_id) total order, batch
//     pops as runs of equal (time, kind) in ascending job id.
//   - Thread determinism: metrics and the full event trace are bitwise
//     identical for --threads {1, 2, 8}, with and without a fault plan.
//   - Engine parity: on every golden scenario the event engine completes the
//     same jobs as the interval engine with average JCT inside the tolerance
//     documented in docs/ALGORITHMS.md section 16, and lifecycle trace
//     counts (arrivals, completions, crashes, recoveries) match exactly.
//   - Exact completion times: a job's recorded kCompleted timestamp minus
//     its recorded arrival reproduces its JCT exactly (no
//     interval-boundary quantization).
//   - Edge cases: zero jobs, and a cluster with no servers.

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/sim/event_kernel.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/sim/workload.h"
#include "src/workload/scenario.h"

#ifndef OPTIMUS_SOURCE_DIR
#error "OPTIMUS_SOURCE_DIR must be defined to locate the scenario files"
#endif

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// EventQueue ordering.

TEST(EventQueueTest, PopsInTimeKindJobOrder) {
  EventQueue q;
  q.Push({300.0, SimEventKind::kRound, -1, 0});
  q.Push({100.0, SimEventKind::kEpoch, 7, 0});
  q.Push({100.0, SimEventKind::kEpoch, 3, 0});
  q.Push({100.0, SimEventKind::kArrival, 9, 0});
  q.Push({100.0, SimEventKind::kRound, -1, 0});
  q.Push({100.0, SimEventKind::kFaultPlan, -1, 0});
  q.Push({50.0, SimEventKind::kRound, -1, 0});
  EXPECT_EQ(q.size(), 7u);
  EXPECT_EQ(q.pushed(), 7);

  std::vector<SimKernelEvent> batch;
  // t=50 round first.
  q.PopBatch(&batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].time_s, 50.0);
  EXPECT_EQ(batch[0].kind, SimEventKind::kRound);
  // t=100: arrivals before epochs before fault edges before the round.
  q.PopBatch(&batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, SimEventKind::kArrival);
  EXPECT_EQ(batch[0].job_id, 9);
  // Same-timestamp epochs form one batch, ascending job id.
  q.PopBatch(&batch);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].kind, SimEventKind::kEpoch);
  EXPECT_EQ(batch[0].job_id, 3);
  EXPECT_EQ(batch[1].job_id, 7);
  q.PopBatch(&batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, SimEventKind::kFaultPlan);
  q.PopBatch(&batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, SimEventKind::kRound);
  EXPECT_EQ(batch[0].time_s, 100.0);
  // t=300 round last; queue drains.
  q.PopBatch(&batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].time_s, 300.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopOrderIndependentOfPushOrder) {
  std::vector<SimKernelEvent> events;
  for (int j = 0; j < 5; ++j) {
    events.push_back({600.0, SimEventKind::kEpoch, j, 0});
    events.push_back({1200.0, SimEventKind::kEpoch, j, 0});
  }
  events.push_back({600.0, SimEventKind::kRound, -1, 0});
  events.push_back({1200.0, SimEventKind::kRound, -1, 0});

  auto drain = [](EventQueue* q) {
    std::string order;
    std::vector<SimKernelEvent> batch;
    while (!q->empty()) {
      q->PopBatch(&batch);
      for (const SimKernelEvent& e : batch) {
        order += std::to_string(e.time_s) + "/" +
                 SimEventKindName(e.kind) + "/" + std::to_string(e.job_id) + ";";
      }
    }
    return order;
  };

  EventQueue forward;
  for (const auto& e : events) {
    forward.Push(e);
  }
  const std::string reference = drain(&forward);

  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    for (size_t i = events.size(); i > 1; --i) {
      std::swap(events[i - 1],
                events[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int>(i) - 1))]);
    }
    EventQueue shuffled;
    for (const auto& e : events) {
      shuffled.Push(e);
    }
    EXPECT_EQ(drain(&shuffled), reference) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Simulation-level determinism.

std::unique_ptr<Simulator> MakeEventSim(int threads, bool faulted,
                                        double noise_sd = -1.0) {
  SimulatorConfig config;
  config.seed = 7;
  config.engine = SimEngine::kEvents;
  config.threads = threads;
  config.audit = true;
  config.max_sim_time_s = 2e5;
  if (noise_sd >= 0.0) {
    config.runtime_noise_sd = noise_sd;
  }
  if (faulted) {
    std::string error;
    EXPECT_TRUE(ParseFaultPlan(
        "crash@1800:server=2,recover=5400;"
        "slow@2400:factor=0.7,duration=1800",
        &config.fault.plan, &error))
        << error;
    config.fault.task_failure_prob = 0.02;
    config.fault.checkpoint_period_s = 3600.0;
  }
  WorkloadConfig workload;
  workload.num_jobs = 8;
  workload.arrival_window_s = 2400.0;
  Rng rng(config.seed ^ 0x5eedULL);
  return std::make_unique<Simulator>(config, BuildTestbed(),
                                     GenerateWorkload(workload, &rng));
}

std::string Fingerprint(const Simulator& sim, const RunMetrics& m) {
  std::ostringstream os;
  os.precision(17);
  os << "completed=" << m.completed_jobs << " events=" << m.events_processed
     << " scalings=" << m.total_scalings << " evictions=" << m.job_evictions
     << " task_failures=" << m.task_failures
     << " checkpoints=" << m.checkpoints_taken
     << " rolled_back=" << m.rolled_back_steps
     << " audit_checks=" << m.audit_checks
     << " audit_violations=" << m.audit_violations << " jcts=[";
  for (double jct : m.jcts) {
    os << jct << ",";
  }
  os << "]\n";
  sim.trace().WriteCsv(os);
  return os.str();
}

TEST(EventKernelTest, BitwiseIdenticalAcrossThreadsUnfaulted) {
  std::string reference;
  for (const int threads : {1, 2, 8}) {
    auto sim = MakeEventSim(threads, /*faulted=*/false);
    const RunMetrics m = sim->Run();
    EXPECT_EQ(m.completed_jobs, m.total_jobs);
    const std::string fp = Fingerprint(*sim, m);
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference) << "threads=" << threads;
    }
  }
}

TEST(EventKernelTest, BitwiseIdenticalAcrossThreadsFaulted) {
  std::string reference;
  for (const int threads : {1, 2, 8}) {
    auto sim = MakeEventSim(threads, /*faulted=*/true);
    const RunMetrics m = sim->Run();
    EXPECT_GT(m.job_evictions + m.task_failures, 0)
        << "fault plan did not bite; the faulted determinism case is vacuous";
    const std::string fp = Fingerprint(*sim, m);
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference) << "threads=" << threads;
    }
  }
}

// With runtime noise off, equal jobs train at equal speeds, so epoch events
// for distinct jobs land on identical timestamps and must batch; the batch
// fan-out must stay deterministic across thread counts.
TEST(EventKernelTest, SameTimestampBatchesAreDeterministic) {
  std::string reference;
  for (const int threads : {1, 8}) {
    auto sim = MakeEventSim(threads, /*faulted=*/false, /*noise_sd=*/0.0);
    const RunMetrics m = sim->Run();
    EXPECT_EQ(m.completed_jobs, m.total_jobs);
    const std::string fp = Fingerprint(*sim, m);
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference) << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Exact analytic completion times.

TEST(EventKernelTest, CompletionTimesAreExactNotQuantized) {
  auto sim = MakeEventSim(1, /*faulted=*/false);
  const RunMetrics m = sim->Run();
  ASSERT_EQ(m.completed_jobs, m.total_jobs);

  std::map<int, double> arrival_s;
  std::vector<double> trace_jcts;
  bool any_off_boundary = false;
  for (const SimEvent& e : sim->trace().events()) {
    if (e.type == SimEventType::kArrival) {
      arrival_s[e.job_id] = e.time_s;
    } else if (e.type == SimEventType::kCompleted) {
      ASSERT_TRUE(arrival_s.count(e.job_id));
      trace_jcts.push_back(e.time_s - arrival_s[e.job_id]);
      const double intervals = e.time_s / 600.0;
      if (std::abs(intervals - std::round(intervals)) > 1e-9) {
        any_off_boundary = true;
      }
    }
  }
  // The recorded timestamps are the analytic epoch-boundary times, so the
  // trace reproduces every JCT exactly.
  std::vector<double> jcts = m.jcts;
  std::sort(jcts.begin(), jcts.end());
  std::sort(trace_jcts.begin(), trace_jcts.end());
  ASSERT_EQ(trace_jcts.size(), jcts.size());
  for (size_t i = 0; i < jcts.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace_jcts[i], jcts[i]);
  }
  // And they are genuinely analytic: at least one completion falls strictly
  // inside an interval (boundary-quantized stamps would all be multiples).
  EXPECT_TRUE(any_off_boundary);
}

// ---------------------------------------------------------------------------
// Edge cases.

TEST(EventKernelTest, ZeroJobsTerminatesImmediately) {
  SimulatorConfig config;
  config.seed = 3;
  config.engine = SimEngine::kEvents;
  config.max_sim_time_s = 6000.0;
  Simulator sim(config, BuildTestbed(), {});
  const RunMetrics m = sim.Run();
  EXPECT_EQ(m.total_jobs, 0);
  EXPECT_EQ(m.completed_jobs, 0);
  EXPECT_EQ(m.makespan_s, 0.0);
  EXPECT_TRUE(sim.trace().events().empty());
}

// A cluster with no usable capacity (the constructor rejects a literally
// empty server list by contract): jobs arrive but can never place, and the
// event engine must still run out the horizon without progress or crash.
TEST(EventKernelTest, UnusableClusterRunsToHorizonWithoutProgress) {
  SimulatorConfig config;
  config.seed = 3;
  config.engine = SimEngine::kEvents;
  config.max_sim_time_s = 6000.0;  // 10 intervals
  WorkloadConfig workload;
  workload.num_jobs = 3;
  workload.arrival_window_s = 600.0;
  Rng rng(config.seed ^ 0x5eedULL);
  // One server far too small for any container request.
  Simulator sim(config, BuildUniformCluster(1, Resources(0.1, 0.1, 0, 0.01)),
                GenerateWorkload(workload, &rng));
  const RunMetrics m = sim.Run();
  EXPECT_EQ(m.completed_jobs, 0);
  EXPECT_EQ(m.jcts.size(), 0u);
  // Jobs arrived (trace has their arrivals) but nothing ever scheduled.
  const auto counts = sim.trace().CountByType();
  EXPECT_EQ(counts.count(SimEventType::kScheduled), 0u);
  EXPECT_EQ(counts.at(SimEventType::kArrival), 3);
}

// ---------------------------------------------------------------------------
// Engine parity on the golden scenario suite.

int64_t CountOf(const std::map<SimEventType, int64_t>& counts,
                SimEventType type) {
  const auto it = counts.find(type);
  return it == counts.end() ? 0 : it->second;
}

TEST(EventKernelTest, GoldenScenarioParityAgainstIntervalEngine) {
  const std::vector<std::string> scenario_files = {
      OPTIMUS_SOURCE_DIR "/scenarios/fig11_testbed.json",
      OPTIMUS_SOURCE_DIR "/scenarios/poisson_hetero60.json",
      OPTIMUS_SOURCE_DIR "/scenarios/rack_outage.json",
      OPTIMUS_SOURCE_DIR "/scenarios/diurnal_heavytail.json",
  };
  // Tolerance contract from docs/ALGORITHMS.md section 16: every job that
  // completes under one engine completes under the other; average JCT within
  // 15% (the engines consume per-job RNG streams at different cadences, so
  // noise realizations — and with them convergence epochs — shift slightly).
  constexpr double kJctTolerance = 0.15;

  for (const std::string& path : scenario_files) {
    ScenarioSpec scenario;
    std::string error;
    ASSERT_TRUE(LoadScenarioFile(path, &scenario, &error)) << error;
    ASSERT_FALSE(scenario.policies.empty());
    const std::string policy = scenario.policies.front();

    struct Out {
      RunMetrics metrics;
      std::map<SimEventType, int64_t> counts;
    };
    auto run = [&](SimEngine engine) {
      SimulatorConfig config = scenario.MakeSimConfig(policy, 0);
      config.engine = engine;
      Simulator sim(config, scenario.cluster.Build(),
                    scenario.JobsForRepeat(0));
      Out out;
      out.metrics = sim.Run();
      out.counts = sim.trace().CountByType();
      return out;
    };
    const Out interval = run(SimEngine::kInterval);
    const Out events = run(SimEngine::kEvents);

    EXPECT_EQ(events.metrics.completed_jobs, interval.metrics.completed_jobs)
        << path;
    EXPECT_EQ(events.metrics.completed_jobs, events.metrics.total_jobs) << path;
    ASSERT_GT(interval.metrics.avg_jct_s, 0.0) << path;
    const double rel =
        std::abs(events.metrics.avg_jct_s - interval.metrics.avg_jct_s) /
        interval.metrics.avg_jct_s;
    EXPECT_LE(rel, kJctTolerance) << path << ": interval avg_jct="
                                  << interval.metrics.avg_jct_s
                                  << " events avg_jct="
                                  << events.metrics.avg_jct_s;
    // Lifecycle counts are engine-independent: every job arrives and
    // completes exactly once, and scripted crash/recovery edges fire exactly
    // as written. (Decision-dependent counts — scalings, pauses, evictions —
    // legitimately differ with the trajectory.)
    for (const SimEventType type :
         {SimEventType::kArrival, SimEventType::kCompleted,
          SimEventType::kServerCrash, SimEventType::kServerRecovered}) {
      EXPECT_EQ(CountOf(events.counts, type), CountOf(interval.counts, type))
          << path << " " << SimEventTypeName(type);
    }
    EXPECT_EQ(events.metrics.audit_violations, 0) << path;
    EXPECT_GT(events.metrics.events_processed, 0) << path;
    EXPECT_EQ(interval.metrics.events_processed, 0) << path;
  }
}

}  // namespace
}  // namespace optimus
