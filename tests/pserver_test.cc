#include <algorithm>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/models/model_zoo.h"
#include "src/models/param_blocks.h"
#include "src/pserver/block_assignment.h"
#include "src/pserver/comm_model.h"

namespace optimus {
namespace {

ParamBlockSizes ResNetBlocks() { return GenerateParamBlocks(FindModel("ResNet-50")); }

TEST(MxnetAssignerTest, SlicesLargeBlocksAcrossAllPs) {
  ParamBlockSizes blocks = {2000000, 500};
  Rng rng(1);
  BlockAssignment a = MxnetAssigner(1000000).Assign(blocks, 4, &rng);
  // Large block => 4 slices; small block => 1 slice.
  EXPECT_EQ(a.slices.size(), 5u);
  int64_t big_total = 0;
  for (const BlockSlice& s : a.slices) {
    if (s.block_id == 0) {
      big_total += s.size;
    }
  }
  EXPECT_EQ(big_total, 2000000);
}

TEST(MxnetAssignerTest, PreservesTotalParams) {
  const ParamBlockSizes blocks = ResNetBlocks();
  Rng rng(2);
  BlockAssignment a = MxnetAssigner().Assign(blocks, 10, &rng);
  int64_t total = 0;
  for (const BlockSlice& s : a.slices) {
    total += s.size;
  }
  EXPECT_EQ(total, FindModel("ResNet-50").TotalParams());
}

TEST(MxnetAssignerTest, ResNet50Produces247Requests) {
  // Table 3: MXNet's default rule on ResNet-50 with 10 PSes issues 247
  // parameter-update requests (157 blocks, 10 of them sliced tenfold).
  const ParamBlockSizes blocks = ResNetBlocks();
  Rng rng(3);
  BlockAssignment a = MxnetAssigner().Assign(blocks, 10, &rng);
  PsLoadMetrics m = ComputeLoadMetrics(a);
  EXPECT_EQ(m.total_requests, 247);
}

TEST(MxnetAssignerTest, SinglePsKeepsBlocksWhole) {
  const ParamBlockSizes blocks = ResNetBlocks();
  Rng rng(4);
  BlockAssignment a = MxnetAssigner().Assign(blocks, 1, &rng);
  EXPECT_EQ(a.slices.size(), blocks.size());
  for (const BlockSlice& s : a.slices) {
    EXPECT_EQ(s.ps, 0);
  }
}

TEST(PaaAssignerTest, ResNet50MinimalRequestsAndTightBalance) {
  // Table 3: PAA keeps all 157 blocks whole (157 requests), parameter-size
  // difference ~0.1M and request-count difference ~1.
  const ParamBlockSizes blocks = ResNetBlocks();
  BlockAssignment a = PaaAssigner().Assign(blocks, 10);
  PsLoadMetrics m = ComputeLoadMetrics(a);
  EXPECT_EQ(m.total_requests, 157);
  // Paper reports 0.1M size diff and request diff of 1 on the real ResNet-50
  // block sizes; our synthetic blocks are coarser, so allow 0.5M (2% of the
  // model, still ~10x tighter than the MXNet baseline's 3.6M).
  EXPECT_LE(m.param_size_diff, 500000);
  EXPECT_LE(m.request_count_diff, 2);
}

TEST(PaaAssignerTest, BeatsMxnetOnAllThreeMetrics) {
  const ParamBlockSizes blocks = ResNetBlocks();
  Rng rng(5);
  PsLoadMetrics mx = ComputeLoadMetrics(MxnetAssigner().Assign(blocks, 10, &rng));
  PsLoadMetrics paa = ComputeLoadMetrics(PaaAssigner().Assign(blocks, 10));
  EXPECT_LT(paa.param_size_diff, mx.param_size_diff);
  EXPECT_LE(paa.request_count_diff, mx.request_count_diff);
  EXPECT_LE(paa.total_requests, mx.total_requests);
}

TEST(PaaAssignerTest, SlicesBlocksLargerThanAverage) {
  // One giant block with 4 PSes must be sliced into avg-size partitions.
  ParamBlockSizes blocks = {1000, 4000000, 2000};
  BlockAssignment a = PaaAssigner().Assign(blocks, 4);
  int big_slices = 0;
  for (const BlockSlice& s : a.slices) {
    if (s.block_id == 1) {
      ++big_slices;
    }
  }
  EXPECT_GE(big_slices, 4);
  PsLoadMetrics m = ComputeLoadMetrics(a);
  // Every PS should hold a nearly equal share.
  EXPECT_LT(static_cast<double>(m.param_size_diff),
            0.05 * (1000 + 4000000 + 2000));
}

TEST(PaaAssignerTest, PreservesTotalParamsProperty) {
  // Property sweep across models and PS counts.
  for (const ModelSpec& spec : GetModelZoo()) {
    const ParamBlockSizes blocks = GenerateParamBlocks(spec);
    for (int p : {1, 2, 5, 10, 20}) {
      SCOPED_TRACE(spec.name + " p=" + std::to_string(p));
      BlockAssignment a = PaaAssigner().Assign(blocks, p);
      int64_t total = 0;
      for (const BlockSlice& s : a.slices) {
        total += s.size;
        EXPECT_GE(s.ps, 0);
        EXPECT_LT(s.ps, p);
        EXPECT_GT(s.size, 0);
      }
      EXPECT_EQ(total, spec.TotalParams());
    }
  }
}

TEST(PaaAssignerTest, BalanceImprovesOrMatchesMxnetAcrossZoo) {
  // MXNet's random small-block placement is noisy, so compare PAA against the
  // MXNet average over several seeds: PAA's worst-PS share must not exceed
  // MXNet's expected worst-PS share, and PAA never issues more requests.
  for (const ModelSpec& spec : GetModelZoo()) {
    const ParamBlockSizes blocks = GenerateParamBlocks(spec);
    for (int p : {4, 10}) {
      SCOPED_TRACE(spec.name + " p=" + std::to_string(p));
      double mx_frac_sum = 0.0;
      int64_t mx_requests = 0;
      const int kSeeds = 10;
      for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(100 + seed);
        PsLoadMetrics mx = ComputeLoadMetrics(MxnetAssigner().Assign(blocks, p, &rng));
        mx_frac_sum += mx.max_param_fraction;
        mx_requests = mx.total_requests;
      }
      PsLoadMetrics paa = ComputeLoadMetrics(PaaAssigner().Assign(blocks, p));
      EXPECT_LE(paa.max_param_fraction, mx_frac_sum / kSeeds + 0.005);
      // PAA issues the minimum number of requests compatible with its
      // slicing rule: one per block, plus the slices forced by blocks larger
      // than the average per-PS size. (MXNet can issue fewer requests only by
      // leaving oversized sub-threshold blocks whole, i.e. unbalanced.)
      const int64_t total =
          std::accumulate(blocks.begin(), blocks.end(), int64_t{0});
      const int64_t part_size =
          std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(total) / p));
      int64_t minimal_requests = 0;
      for (int64_t b : blocks) {
        minimal_requests += (b + part_size - 1) / part_size;
      }
      EXPECT_EQ(paa.total_requests, minimal_requests);
      (void)mx_requests;
    }
  }
}

TEST(JobPlacementTest, ForEachUsedHonorsDenseVectorsWithUsedServerIndex) {
  // Dense vectors plus a used_servers index: iteration must follow the index
  // (O(tasks)) yet read counts from the dense vectors.
  JobPlacement placement;
  placement.workers_per_server = {1, 0, 2, 0};
  placement.ps_per_server = {0, 0, 1, 0};
  placement.used_servers = {0, 2};
  std::vector<std::tuple<size_t, int, int>> visited;
  placement.ForEachUsed([&](size_t s, int w, int p) {
    visited.emplace_back(s, w, p);
  });
  const std::vector<std::tuple<size_t, int, int>> expected = {{0, 1, 0},
                                                              {2, 2, 1}};
  EXPECT_EQ(visited, expected);
  EXPECT_FALSE(placement.compact());
  EXPECT_EQ(placement.TotalWorkers(), 3);
  EXPECT_EQ(placement.TotalPs(), 1);
}

TEST(JobPlacementTest, ForEachUsedScansDenseVectorsWithoutIndex) {
  // Hand-built placements (no used_servers) fall back to the dense scan and
  // must skip servers with no tasks.
  JobPlacement placement;
  placement.workers_per_server = {0, 2, 0, 1};
  placement.ps_per_server = {0, 0, 0, 1};
  std::vector<size_t> servers;
  placement.ForEachUsed([&](size_t s, int, int) { servers.push_back(s); });
  EXPECT_EQ(servers, (std::vector<size_t>{1, 3}));
}

TEST(JobPlacementTest, CompactFormCountsAndIterates) {
  // Structure-of-arrays form: no dense vectors at all; totals and iteration
  // come from the parallel used_* arrays.
  JobPlacement placement;
  placement.used_servers = {3, 7};
  placement.used_workers = {2, 1};
  placement.used_ps = {0, 1};
  EXPECT_TRUE(placement.compact());
  EXPECT_FALSE(placement.empty());
  EXPECT_EQ(placement.TotalWorkers(), 3);
  EXPECT_EQ(placement.TotalPs(), 1);
  std::vector<std::tuple<size_t, int, int>> visited;
  placement.ForEachUsed([&](size_t s, int w, int p) {
    visited.emplace_back(s, w, p);
  });
  const std::vector<std::tuple<size_t, int, int>> expected = {{3, 2, 0},
                                                              {7, 1, 1}};
  EXPECT_EQ(visited, expected);
}

TEST(JobPlacementTest, EmptyPlacementHasZeroTotals) {
  const JobPlacement placement;
  EXPECT_TRUE(placement.empty());
  EXPECT_FALSE(placement.compact());
  EXPECT_EQ(placement.TotalWorkers(), 0);
  EXPECT_EQ(placement.TotalPs(), 0);
  int visits = 0;
  placement.ForEachUsed([&](size_t, int, int) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(LoadMetricsTest, BalancedHelper) {
  PsLoadMetrics m = BalancedLoadMetrics(1000, 4, 20);
  EXPECT_EQ(m.max_ps_params, 250);
  EXPECT_DOUBLE_EQ(m.max_param_fraction, 0.25);
  EXPECT_EQ(m.total_requests, 20);
  EXPECT_EQ(m.param_size_diff, 0);
}

class CommModelTest : public ::testing::Test {
 protected:
  StepTimeInputs BaseInputs(TrainingMode mode, int p, int w) {
    StepTimeInputs in;
    in.model = &FindModel("ResNet-50");
    in.mode = mode;
    in.num_ps = p;
    in.num_workers = w;
    return in;
  }
  CommConfig config_;
};

TEST_F(CommModelTest, BreakdownSumsToTotal) {
  StepTimeInputs in = BaseInputs(TrainingMode::kSync, 4, 4);
  StepTimeBreakdown b = ComputeStepTime(in, config_);
  EXPECT_NEAR(b.total_s,
              b.forward_s + b.backward_s + b.transfer_s + b.update_s + b.overhead_s,
              1e-12);
  EXPECT_GT(b.total_s, 0.0);
}

TEST_F(CommModelTest, MorePsReducesTransferTime) {
  StepTimeInputs in4 = BaseInputs(TrainingMode::kSync, 4, 8);
  StepTimeInputs in8 = BaseInputs(TrainingMode::kSync, 8, 8);
  EXPECT_GT(ComputeStepTime(in4, config_).transfer_s,
            ComputeStepTime(in8, config_).transfer_s);
}

TEST_F(CommModelTest, SyncSpeedEventuallyDropsWithTooManyWorkers) {
  // Fig 4(b)/9(c): with p fixed, adding workers first helps then hurts.
  std::vector<double> speeds;
  for (int w = 2; w <= 40; w += 2) {
    StepTimeInputs in = BaseInputs(TrainingMode::kSync, 12, w);
    speeds.push_back(TrainingSpeed(in, config_));
  }
  const auto peak = std::max_element(speeds.begin(), speeds.end());
  EXPECT_NE(peak, speeds.begin());  // adding some workers helped
  EXPECT_NE(peak, speeds.end() - 1);  // too many workers hurt
}

TEST_F(CommModelTest, AsyncSpeedScalesSublinearly) {
  StepTimeInputs in1 = BaseInputs(TrainingMode::kAsync, 8, 4);
  StepTimeInputs in2 = BaseInputs(TrainingMode::kAsync, 8, 8);
  const double s1 = TrainingSpeed(in1, config_);
  const double s2 = TrainingSpeed(in2, config_);
  EXPECT_GT(s2, s1);            // more workers => more aggregate steps/s
  EXPECT_LT(s2, 2.0 * s1);      // but sublinear (diminishing returns)
}

TEST_F(CommModelTest, ImbalanceSlowsTraining) {
  StepTimeInputs balanced = BaseInputs(TrainingMode::kSync, 10, 10);
  StepTimeInputs imbalanced = BaseInputs(TrainingMode::kSync, 10, 10);
  imbalanced.load = BalancedLoadMetrics(imbalanced.model->TotalParams(), 10,
                                        imbalanced.model->num_param_blocks);
  imbalanced.load.max_param_fraction = 0.25;  // one PS holds 2.5x its share
  imbalanced.load_valid = true;
  EXPECT_LT(TrainingSpeed(imbalanced, config_), TrainingSpeed(balanced, config_));
}

TEST_F(CommModelTest, SlicingInflatesOverhead) {
  StepTimeInputs sliced = BaseInputs(TrainingMode::kSync, 10, 10);
  sliced.load =
      BalancedLoadMetrics(sliced.model->TotalParams(), 10, sliced.model->num_param_blocks);
  sliced.load.total_requests = sliced.model->num_param_blocks * 3;
  sliced.load_valid = true;
  StepTimeInputs whole = BaseInputs(TrainingMode::kSync, 10, 10);
  EXPECT_GT(ComputeStepTime(sliced, config_).overhead_s,
            ComputeStepTime(whole, config_).overhead_s);
}

TEST_F(CommModelTest, ColocationReducesTransferTime) {
  // Fig 10: packing workers with their PSes on few servers beats spreading.
  StepTimeInputs spread = BaseInputs(TrainingMode::kSync, 2, 4);
  spread.placement.workers_per_server = {0, 2, 2};
  spread.placement.ps_per_server = {2, 0, 0};

  StepTimeInputs packed = BaseInputs(TrainingMode::kSync, 2, 4);
  packed.placement.workers_per_server = {2, 2};
  packed.placement.ps_per_server = {1, 1};

  EXPECT_LT(ComputeStepTime(packed, config_).transfer_s,
            ComputeStepTime(spread, config_).transfer_s);
}

TEST_F(CommModelTest, SingleServerPlacementHasZeroTransfer) {
  StepTimeInputs in = BaseInputs(TrainingMode::kSync, 2, 2);
  in.placement.workers_per_server = {2};
  in.placement.ps_per_server = {2};
  EXPECT_DOUBLE_EQ(ComputeStepTime(in, config_).transfer_s, 0.0);
}

TEST_F(CommModelTest, StragglerSlowsComputeTerms) {
  StepTimeInputs healthy = BaseInputs(TrainingMode::kSync, 4, 4);
  StepTimeInputs straggling = BaseInputs(TrainingMode::kSync, 4, 4);
  straggling.slowest_worker_factor = 0.5;
  StepTimeBreakdown h = ComputeStepTime(healthy, config_);
  StepTimeBreakdown s = ComputeStepTime(straggling, config_);
  EXPECT_NEAR(s.forward_s, 2.0 * h.forward_s, 1e-12);
  EXPECT_NEAR(s.backward_s, 2.0 * h.backward_s, 1e-12);
  EXPECT_DOUBLE_EQ(s.transfer_s, h.transfer_s);
}

TEST_F(CommModelTest, Fig10PlacementExampleOrdering) {
  // The three placements of Fig 10 (2 PS, 4 workers, 3 servers): (c) packs
  // onto 2 servers with equal PS/worker counts and must beat (a) and (b).
  auto transfer = [&](std::vector<int> wps, std::vector<int> pps) {
    StepTimeInputs in = BaseInputs(TrainingMode::kSync, 2, 4);
    in.placement.workers_per_server = std::move(wps);
    in.placement.ps_per_server = std::move(pps);
    return ComputeStepTime(in, config_).transfer_s;
  };
  const double a = transfer({1, 2, 1}, {1, 0, 1});   // ps1+w1 | ps2? (spread variant)
  const double b = transfer({2, 1, 1}, {0, 1, 1});   // another 3-server spread
  const double c = transfer({2, 2}, {1, 1});         // packed, even split
  EXPECT_LE(c, a);
  EXPECT_LE(c, b);
}

TEST_F(CommModelTest, EqnTwoRegimeMatchesHandComputation) {
  // Pure cross-server sync training: T_transfer = 2*(S/p)*w/B.
  const ModelSpec& model = FindModel("ResNet-50");
  StepTimeInputs in = BaseInputs(TrainingMode::kSync, 5, 10);
  StepTimeBreakdown b = ComputeStepTime(in, config_);
  const double s_bytes = static_cast<double>(model.ParamBytes());
  const double expected_ps_side =
      2.0 * (s_bytes / 5.0) * 10.0 / config_.container_bandwidth_bps;
  const double expected_worker_side = 2.0 * s_bytes / config_.container_bandwidth_bps;
  EXPECT_NEAR(b.transfer_s, std::max(expected_ps_side, expected_worker_side), 1e-9);
}

}  // namespace
}  // namespace optimus
