#include <gtest/gtest.h>

#include "src/cluster/checkpoint.h"
#include "src/cluster/data_serving.h"
#include "src/cluster/job.h"
#include "src/cluster/resources.h"
#include "src/cluster/server.h"
#include "src/cluster/straggler.h"
#include "src/common/rng.h"
#include "src/models/model_zoo.h"

namespace optimus {
namespace {

TEST(ResourcesTest, ArithmeticAndAccessors) {
  Resources a(4, 8, 1, 2);
  Resources b(1, 2, 0, 1);
  Resources sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpu(), 5);
  EXPECT_DOUBLE_EQ(sum.memory_gb(), 10);
  EXPECT_DOUBLE_EQ(sum.gpu(), 1);
  EXPECT_DOUBLE_EQ(sum.bandwidth_gbps(), 3);
  Resources diff = a - b;
  EXPECT_DOUBLE_EQ(diff.cpu(), 3);
  Resources scaled = b * 3.0;
  EXPECT_DOUBLE_EQ(scaled.cpu(), 3);
  EXPECT_DOUBLE_EQ(scaled.bandwidth_gbps(), 3);
}

TEST(ResourcesTest, FitsAndNonNegative) {
  Resources cap(10, 10, 2, 1);
  EXPECT_TRUE(cap.Fits(Resources(10, 10, 2, 1)));
  EXPECT_TRUE(cap.Fits(Resources(5, 1, 0, 0)));
  EXPECT_FALSE(cap.Fits(Resources(10.5, 1, 0, 0)));
  EXPECT_FALSE(cap.Fits(Resources(0, 0, 3, 0)));
  EXPECT_TRUE(Resources(0, 0, 0, 0).IsNonNegative());
  EXPECT_FALSE((Resources(1, 1, 1, 1) - Resources(2, 0, 0, 0)).IsNonNegative());
}

TEST(ResourcesTest, DominantShareAndResource) {
  Resources capacity(100, 200, 10, 50);
  Resources demand(10, 10, 2, 5);  // shares: 0.1, 0.05, 0.2, 0.1
  EXPECT_DOUBLE_EQ(demand.DominantShare(capacity), 0.2);
  EXPECT_EQ(demand.DominantResource(capacity), ResourceType::kGpu);
  // Zero-capacity dimensions are ignored.
  Resources cpu_only_cap(100, 0, 0, 0);
  EXPECT_DOUBLE_EQ(demand.DominantShare(cpu_only_cap), 0.1);
}

TEST(ServerTest, AllocateReleaseRoundTrip) {
  Server server(0, Resources(16, 80, 0, 1));
  Resources demand(5, 10, 0, 0.1);
  EXPECT_TRUE(server.CanFit(demand));
  server.Allocate(demand);
  server.Allocate(demand);
  EXPECT_DOUBLE_EQ(server.used().cpu(), 10);
  EXPECT_DOUBLE_EQ(server.Free().cpu(), 6);
  EXPECT_FALSE(server.CanFit(Resources(7, 0, 0, 0)));
  server.Release(demand);
  EXPECT_DOUBLE_EQ(server.Free().cpu(), 11);
  server.Reset();
  EXPECT_DOUBLE_EQ(server.used().cpu(), 0);
}

TEST(ServerTest, TestbedMatchesPaper) {
  std::vector<Server> servers = BuildTestbed();
  ASSERT_EQ(servers.size(), 13u);
  int cpu_servers = 0;
  int gpu_servers = 0;
  for (const Server& s : servers) {
    if (s.capacity().gpu() > 0) {
      ++gpu_servers;
      EXPECT_DOUBLE_EQ(s.capacity().cpu(), 8);
      EXPECT_DOUBLE_EQ(s.capacity().gpu(), 2);
    } else {
      ++cpu_servers;
      EXPECT_DOUBLE_EQ(s.capacity().cpu(), 16);
      EXPECT_DOUBLE_EQ(s.capacity().memory_gb(), 80);
    }
  }
  EXPECT_EQ(cpu_servers, 7);
  EXPECT_EQ(gpu_servers, 6);
  const Resources total = TotalCapacity(servers);
  EXPECT_DOUBLE_EQ(total.cpu(), 7 * 16 + 6 * 8);
  EXPECT_DOUBLE_EQ(total.gpu(), 12);
}

TEST(ServerTest, UniformClusterAndFreeAccounting) {
  std::vector<Server> servers = BuildUniformCluster(4, Resources(8, 16, 0, 1));
  servers[0].Allocate(Resources(8, 16, 0, 1));
  const Resources free = TotalFree(servers);
  EXPECT_DOUBLE_EQ(free.cpu(), 24);
}

JobSpec MakeJobSpec(const std::string& model, TrainingMode mode) {
  JobSpec spec;
  spec.id = 1;
  spec.model = &FindModel(model);
  spec.mode = mode;
  spec.convergence_delta = 0.02;
  spec.patience = 2;
  spec.worker_demand = Resources(5, 10, 0, 0.2);
  spec.ps_demand = Resources(5, 10, 0, 0.2);
  spec.arrival_time_s = 100.0;
  return spec;
}

TEST(JobTest, StepsAndEpochs) {
  Job job(MakeJobSpec("CNN-rand", TrainingMode::kSync));
  const int64_t spe = job.spec().StepsPerEpoch();
  EXPECT_GT(spe, 0);
  job.AdvanceSteps(static_cast<double>(spe) * 2.5);
  EXPECT_NEAR(job.EpochsDone(), 2.5, 1e-9);
}

TEST(JobTest, DatasetDownscalingShrinksEpochs) {
  JobSpec spec = MakeJobSpec("ResNet-50", TrainingMode::kSync);
  const int64_t full = spec.StepsPerEpoch();
  spec.dataset_scale = 0.1;
  EXPECT_LT(spec.StepsPerEpoch(), full);
  EXPECT_NEAR(static_cast<double>(spec.StepsPerEpoch()),
              static_cast<double>(full) * 0.1, 2.0);
}

TEST(JobTest, ConvergenceDetectionRequiresPatience) {
  Job job(MakeJobSpec("CNN-rand", TrainingMode::kSync));  // delta=0.02, patience=2
  EXPECT_FALSE(job.RecordEpochLoss(1.00));
  EXPECT_FALSE(job.RecordEpochLoss(0.90));   // 10% drop: resets streak
  EXPECT_FALSE(job.RecordEpochLoss(0.895));  // 0.5% drop: streak 1
  EXPECT_TRUE(job.RecordEpochLoss(0.894));   // streak 2: converged
  EXPECT_TRUE(job.converged());
  // Further records are ignored.
  EXPECT_FALSE(job.RecordEpochLoss(0.5));
}

TEST(JobTest, LossIncreaseCountsTowardConvergence) {
  // An epoch where loss fails to decrease is "below threshold" too.
  Job job(MakeJobSpec("CNN-rand", TrainingMode::kSync));
  job.RecordEpochLoss(1.0);
  job.RecordEpochLoss(1.01);
  EXPECT_TRUE(job.RecordEpochLoss(1.02));
}

TEST(JobTest, ScalingEventsCountedOnlyAfterFirstAllocation) {
  Job job(MakeJobSpec("DSSM", TrainingMode::kAsync));
  EXPECT_FALSE(job.SetAllocation(2, 4, {}));  // first allocation: no scaling
  EXPECT_EQ(job.num_scalings(), 0);
  EXPECT_FALSE(job.SetAllocation(2, 4, {}));  // unchanged: no scaling
  EXPECT_TRUE(job.SetAllocation(3, 4, {}));   // changed: scaling event
  EXPECT_EQ(job.num_scalings(), 1);
  EXPECT_FALSE(job.SetAllocation(0, 0, {}));  // pause: not a scaling event
  EXPECT_TRUE(job.SetAllocation(3, 5, {}));
  EXPECT_EQ(job.num_scalings(), 2);
}

TEST(JobTest, StallAccounting) {
  Job job(MakeJobSpec("DSSM", TrainingMode::kAsync));
  job.AddStall(10.0);
  EXPECT_DOUBLE_EQ(job.ConsumeStall(4.0), 4.0);
  EXPECT_DOUBLE_EQ(job.stall_remaining_s(), 6.0);
  EXPECT_DOUBLE_EQ(job.ConsumeStall(100.0), 6.0);
  EXPECT_DOUBLE_EQ(job.stall_remaining_s(), 0.0);
  EXPECT_DOUBLE_EQ(job.total_stall_s(), 10.0);
}

TEST(JobTest, JctIsCompletionMinusArrival) {
  Job job(MakeJobSpec("DSSM", TrainingMode::kAsync));  // arrival 100
  job.MarkCompleted(450.0);
  EXPECT_EQ(job.state(), JobState::kCompleted);
  EXPECT_DOUBLE_EQ(job.Jct(), 350.0);
}

TEST(DataServingTest, ExampleBytesVaryByModality) {
  EXPECT_GT(EstimateExampleBytes(FindModel("DeepSpeech2")),
            EstimateExampleBytes(FindModel("ResNet-50")));
  EXPECT_GT(EstimateExampleBytes(FindModel("ResNet-50")),
            EstimateExampleBytes(FindModel("CNN-rand")));
}

TEST(DataServingTest, InitialAssignmentIsBalanced) {
  DataServing data(100 * kDefaultChunkBytes);
  EXPECT_EQ(data.num_chunks(), 100);
  data.AssignInitial(7);
  EXPECT_LE(data.MaxMinSpread(), 1);
  std::vector<int64_t> counts = data.ChunksPerWorker();
  int64_t total = 0;
  for (int64_t c : counts) {
    total += c;
  }
  EXPECT_EQ(total, 100);
}

TEST(DataServingTest, RebalancePreservesBalanceInvariant) {
  DataServing data(97 * kDefaultChunkBytes);
  data.AssignInitial(5);
  for (int workers : {8, 3, 10, 1, 6}) {
    data.Rebalance(workers);
    EXPECT_LE(data.MaxMinSpread(), 1) << "workers=" << workers;
    std::vector<int64_t> counts = data.ChunksPerWorker();
    int64_t total = 0;
    for (int64_t c : counts) {
      total += c;
    }
    EXPECT_EQ(total, 97);
  }
}

TEST(DataServingTest, RebalanceMovesMinimalChunks) {
  DataServing data(100 * kDefaultChunkBytes);
  data.AssignInitial(4);  // 25 each
  // Going 4 -> 5 workers: targets are 20 each; exactly 20 chunks must move.
  EXPECT_EQ(data.Rebalance(5), 20);
  // No-op rebalance moves nothing.
  EXPECT_EQ(data.Rebalance(5), 0);
}

TEST(DataServingTest, ShrinkReassignsOrphanedChunks) {
  DataServing data(30 * kDefaultChunkBytes);
  data.AssignInitial(10);  // 3 chunks each
  const int64_t moved = data.Rebalance(3);
  // Workers 3..9 owned 21 chunks; all of them must move.
  EXPECT_EQ(moved, 21);
  EXPECT_LE(data.MaxMinSpread(), 0);
}

TEST(CheckpointTest, StallScalesWithModelSize) {
  CheckpointConfig config;
  const double small = CheckpointStallSeconds(FindModel("ResNext-110"), config);
  const double large = CheckpointStallSeconds(FindModel("DeepSpeech2"), config);
  EXPECT_GT(large, small);
  // DeepSpeech2: 38M params * 4B * 2 / 100MB/s + 15s = 3.04 + 15.
  EXPECT_NEAR(large, 2.0 * 38e6 * 4 / 100e6 + 15.0, 1e-9);
}

TEST(CheckpointTest, ScalingBudget) {
  CheckpointConfig unlimited;
  EXPECT_TRUE(ScalingAllowed(1000, unlimited));
  CheckpointConfig capped;
  capped.max_scalings_per_job = 3;
  EXPECT_TRUE(ScalingAllowed(2, capped));
  EXPECT_FALSE(ScalingAllowed(3, capped));
}

TEST(StragglerTest, DisabledInjectionNeverSlows) {
  StragglerModel model(StragglerConfig{});  // prob 0
  Job job(MakeJobSpec("DSSM", TrainingMode::kAsync));
  job.SetAllocation(2, 4, {});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    model.Step(&job, &rng);
  }
  EXPECT_DOUBLE_EQ(job.slowest_worker_factor(), 1.0);
  EXPECT_EQ(model.injections(), 0);
}

TEST(StragglerTest, InjectionSlowsAndHandlerReplaces) {
  StragglerConfig config;
  config.injection_prob_per_interval = 1.0;  // always inject
  config.slow_factor_lo = 0.2;
  config.slow_factor_hi = 0.4;  // always below detect threshold 0.5
  StragglerModel model(config);
  Job job(MakeJobSpec("DSSM", TrainingMode::kAsync));
  job.SetAllocation(2, 4, {});
  Rng rng(2);
  const bool replaced = model.Step(&job, &rng);
  EXPECT_TRUE(replaced);
  // Handler restored full speed and charged the replacement stall.
  EXPECT_DOUBLE_EQ(job.slowest_worker_factor(), 1.0);
  EXPECT_DOUBLE_EQ(job.stall_remaining_s(), config.replace_delay_s);
  EXPECT_EQ(model.replacements(), 1);
}

TEST(StragglerTest, MildStragglerToleratedWhenAboveThreshold) {
  StragglerConfig config;
  config.injection_prob_per_interval = 1.0;
  config.slow_factor_lo = 0.8;
  config.slow_factor_hi = 0.9;  // above detect threshold
  StragglerModel model(config);
  Job job(MakeJobSpec("DSSM", TrainingMode::kAsync));
  job.SetAllocation(2, 4, {});
  Rng rng(3);
  EXPECT_FALSE(model.Step(&job, &rng));
  EXPECT_LT(job.slowest_worker_factor(), 1.0);
  EXPECT_GE(job.slowest_worker_factor(), 0.8);
  EXPECT_EQ(model.replacements(), 0);
}

TEST(StragglerTest, HandlingDisabledLeavesStragglerInPlace) {
  StragglerConfig config;
  config.injection_prob_per_interval = 1.0;
  config.slow_factor_lo = 0.2;
  config.slow_factor_hi = 0.3;
  config.handling_enabled = false;
  StragglerModel model(config);
  Job job(MakeJobSpec("DSSM", TrainingMode::kAsync));
  job.SetAllocation(2, 4, {});
  Rng rng(4);
  EXPECT_FALSE(model.Step(&job, &rng));
  EXPECT_LT(job.slowest_worker_factor(), 0.5);
  EXPECT_DOUBLE_EQ(job.stall_remaining_s(), 0.0);
}

}  // namespace
}  // namespace optimus
