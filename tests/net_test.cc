// Tests for the network fidelity subsystem (src/net/): fabric construction,
// per-job topology solves, max-min fair-share contention, and the ring
// all-reduce transfer term in the step-time model.

#include <gtest/gtest.h>

#include "src/models/model_zoo.h"
#include "src/net/network_model.h"
#include "src/pserver/comm_model.h"

namespace optimus {
namespace {

// 8 servers in racks of 4: links [0,8) are NICs, 8 and 9 the rack uplinks.
NetworkConfig FabricConfig(NetworkConfig::Model model, double oversubscription) {
  NetworkConfig config;
  config.model = model;
  config.nic_bps = 100.0;
  config.oversubscription = oversubscription;
  return config;
}

JobPlacement WorkersOn(const std::vector<int>& servers, int n_servers = 8) {
  JobPlacement placement;
  placement.workers_per_server.assign(static_cast<size_t>(n_servers), 0);
  placement.ps_per_server.assign(static_cast<size_t>(n_servers), 0);
  for (int s : servers) {
    placement.workers_per_server[static_cast<size_t>(s)] += 1;
  }
  return placement;
}

TEST(NetworkModelNameTest, RoundTripsAllModels) {
  for (const auto model :
       {NetworkConfig::Model::kFlat, NetworkConfig::Model::kTopology,
        NetworkConfig::Model::kContention}) {
    NetworkConfig::Model parsed;
    ASSERT_TRUE(ParseNetworkModelName(NetworkModelName(model), &parsed));
    EXPECT_EQ(parsed, model);
  }
  NetworkConfig::Model parsed;
  EXPECT_FALSE(ParseNetworkModelName("fat-tree", &parsed));
}

TEST(NetworkModelTest, FlatCreatesNoModel) {
  EXPECT_EQ(NetworkModel::Create(FabricConfig(NetworkConfig::Model::kFlat, 1.0),
                                 8, 4),
            nullptr);
  EXPECT_NE(NetworkModel::Create(
                FabricConfig(NetworkConfig::Model::kTopology, 1.0), 8, 4),
            nullptr);
}

TEST(NetworkModelTest, LinkCapacitiesFollowOversubscription) {
  // Uplink = rack_size * nic / oversubscription = 4 * 100 / 2 = 200.
  NetworkModel net(FabricConfig(NetworkConfig::Model::kTopology, 2.0), 8, 4);
  EXPECT_EQ(net.num_racks(), 2);
  EXPECT_EQ(net.stats().num_links, 10);
  for (int s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(net.LinkCapacity(s), 100.0);
  }
  EXPECT_DOUBLE_EQ(net.LinkCapacity(8), 200.0);
  EXPECT_DOUBLE_EQ(net.LinkCapacity(9), 200.0);
}

TEST(NetworkModelTest, SingleRackJobNeverPaysTheUplink) {
  NetworkModel net(FabricConfig(NetworkConfig::Model::kTopology, 4.0), 8, 4);
  net.BeginRound();
  net.AddJob(1, WorkersOn({0, 1}));  // both servers in rack 0
  net.Solve();
  EXPECT_DOUBLE_EQ(net.BandwidthFor(1), 100.0);
}

TEST(NetworkModelTest, SingleServerJobEmitsNoFlows) {
  NetworkModel net(FabricConfig(NetworkConfig::Model::kTopology, 4.0), 8, 4);
  net.BeginRound();
  net.AddJob(1, WorkersOn({2, 2}));  // two workers, one server
  net.Solve();
  EXPECT_EQ(net.stats().flows, 0);
  EXPECT_DOUBLE_EQ(net.BandwidthFor(1), 100.0);  // NIC line rate
}

TEST(NetworkModelTest, TopologySplitsUplinkAcrossOwnFlows) {
  // 4:1 oversubscription: uplink = 4 * 100 / 4 = 100. A job with two servers
  // in rack 0 and one in rack 1 pushes two flows through uplink 8, so its
  // worst flow runs at 100 / 2 = 50.
  NetworkModel net(FabricConfig(NetworkConfig::Model::kTopology, 4.0), 8, 4);
  net.BeginRound();
  net.AddJob(1, WorkersOn({0, 1, 4}));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.BandwidthFor(1), 50.0);
}

TEST(NetworkModelTest, TopologyIgnoresOtherJobs) {
  // Per-job isolation: a second job over the same uplink does not change the
  // first job's solve.
  NetworkModel net(FabricConfig(NetworkConfig::Model::kTopology, 4.0), 8, 4);
  net.BeginRound();
  net.AddJob(1, WorkersOn({0, 4}));
  net.AddJob(2, WorkersOn({1, 5}));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.BandwidthFor(1), 100.0);
  EXPECT_DOUBLE_EQ(net.BandwidthFor(2), 100.0);
  EXPECT_EQ(net.stats().contended_flows, 0);
}

TEST(NetworkModelTest, ContentionSharesUplinkMaxMin) {
  // Two cross-rack jobs share each 100-capacity uplink (two flows apiece):
  // the max-min fair share is 50 per flow, and every flow sits below its
  // isolated rate.
  NetworkModel net(FabricConfig(NetworkConfig::Model::kContention, 4.0), 8, 4);
  net.BeginRound();
  net.AddJob(1, WorkersOn({0, 4}));
  net.AddJob(2, WorkersOn({1, 5}));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.BandwidthFor(1), 50.0);
  EXPECT_DOUBLE_EQ(net.BandwidthFor(2), 50.0);
  EXPECT_EQ(net.stats().flows, 4);
  EXPECT_EQ(net.stats().contended_flows, 4);
  // Both uplinks are saturated: 2 flows x 50 over capacity 100.
  EXPECT_DOUBLE_EQ(net.stats().max_link_utilization, 1.0);
}

TEST(NetworkModelTest, ContentionLeavesSoloJobAtIsolatedRate) {
  // One cross-rack job alone on the fabric: max-min gives it the full
  // min(nic, uplink) = 100 with no contention counted.
  NetworkModel net(FabricConfig(NetworkConfig::Model::kContention, 4.0), 8, 4);
  net.BeginRound();
  net.AddJob(1, WorkersOn({0, 4}));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.BandwidthFor(1), 100.0);
  EXPECT_EQ(net.stats().contended_flows, 0);
}

TEST(NetworkModelTest, ContentionSolveIsDeterministic) {
  auto run = [] {
    NetworkModel net(FabricConfig(NetworkConfig::Model::kContention, 4.0), 8,
                     4);
    net.BeginRound();
    net.AddJob(1, WorkersOn({0, 1, 4}));
    net.AddJob(2, WorkersOn({1, 5}));
    net.AddJob(3, WorkersOn({2, 3}));
    net.Solve();
    return std::vector<double>{net.BandwidthFor(1), net.BandwidthFor(2),
                               net.BandwidthFor(3)};
  };
  EXPECT_EQ(run(), run());
}

TEST(NetworkModelTest, ResolvingARoundReproducesTheSolve) {
  NetworkModel net(FabricConfig(NetworkConfig::Model::kContention, 4.0), 8, 4);
  std::vector<double> first;
  for (int round = 0; round < 2; ++round) {
    net.BeginRound();
    net.AddJob(1, WorkersOn({0, 4}));
    net.AddJob(2, WorkersOn({1, 5}));
    net.Solve();
    const std::vector<double> bw = {net.BandwidthFor(1), net.BandwidthFor(2)};
    if (round == 0) {
      first = bw;
    } else {
      EXPECT_EQ(bw, first);
    }
  }
  EXPECT_EQ(net.stats().solves, 2);
}

TEST(NetworkModelTest, NoRackPartitionMeansNicsOnly) {
  // rack_size <= 0: one non-blocking switch; cross-server jobs only ever see
  // their NICs.
  NetworkModel net(FabricConfig(NetworkConfig::Model::kContention, 1.0), 8, 0);
  EXPECT_EQ(net.num_racks(), 0);
  EXPECT_EQ(net.stats().num_links, 8);
  net.BeginRound();
  net.AddJob(1, WorkersOn({0, 7}));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.BandwidthFor(1), 100.0);
}

TEST(NetworkModelTest, ServerWeightReflectsPathUtilization) {
  NetworkModel net(FabricConfig(NetworkConfig::Model::kContention, 4.0), 8, 4);
  net.BeginRound();
  net.Solve();
  // Idle fabric: full weight everywhere.
  EXPECT_DOUBLE_EQ(net.ServerWeight(0), 1.0);

  net.BeginRound();
  net.AddJob(1, WorkersOn({0, 4}));
  net.AddJob(2, WorkersOn({1, 5}));
  net.Solve();
  // Rack-0 uplink is saturated; every rack-0 server's path is penalized,
  // including server 2 which hosts no task.
  EXPECT_LT(net.ServerWeight(2), 0.01);
  EXPECT_GT(net.ServerWeight(2), 0.0);
}

// ---------------------------------------------------------------------------
// Ring all-reduce in the step-time model.
// ---------------------------------------------------------------------------

class AllReduceStepTimeTest : public ::testing::Test {
 protected:
  StepTimeInputs Inputs(int w) {
    StepTimeInputs in;
    in.model = &FindModel("ResNet-50");
    in.mode = TrainingMode::kSync;
    in.comm = CommMode::kAllReduce;
    in.num_ps = 0;
    in.num_workers = w;
    return in;
  }
  CommConfig config_;
};

TEST_F(AllReduceStepTimeTest, TransferMatchesRingFormula) {
  // T_transfer = 2 (w-1)/w * S / B with the flat Eqn-2 constant.
  StepTimeInputs in = Inputs(4);
  const StepTimeBreakdown b = ComputeStepTime(in, config_);
  const double s_bytes = static_cast<double>(in.model->ParamBytes());
  EXPECT_NEAR(b.transfer_s,
              2.0 * 3.0 / 4.0 * s_bytes / config_.container_bandwidth_bps,
              1e-9);
}

TEST_F(AllReduceStepTimeTest, NoPsTermsAndBreakdownSums) {
  StepTimeInputs in = Inputs(4);
  const StepTimeBreakdown b = ComputeStepTime(in, config_);
  EXPECT_DOUBLE_EQ(b.update_s, 0.0);
  EXPECT_NEAR(b.total_s,
              b.forward_s + b.backward_s + b.transfer_s + b.overhead_s, 1e-12);
}

TEST_F(AllReduceStepTimeTest, SingleWorkerRingNeverTransfers) {
  StepTimeInputs in = Inputs(1);
  EXPECT_DOUBLE_EQ(ComputeStepTime(in, config_).transfer_s, 0.0);
}

TEST_F(AllReduceStepTimeTest, SingleServerRingNeverTransfers) {
  StepTimeInputs in = Inputs(4);
  in.placement.workers_per_server = {4};
  in.placement.ps_per_server = {0};
  EXPECT_DOUBLE_EQ(ComputeStepTime(in, config_).transfer_s, 0.0);
}

TEST_F(AllReduceStepTimeTest, NetworkBandwidthOverrideScalesTransfer) {
  StepTimeInputs flat = Inputs(4);
  StepTimeInputs fabric = Inputs(4);
  fabric.net_bw_bps = 2.0 * config_.container_bandwidth_bps;
  EXPECT_NEAR(ComputeStepTime(fabric, config_).transfer_s,
              0.5 * ComputeStepTime(flat, config_).transfer_s, 1e-12);
}

TEST_F(AllReduceStepTimeTest, WiderRingsTransferMoreBytes) {
  // 2(w-1)/w grows with w: an 8-worker ring moves more of the model per step
  // than a 2-worker ring at equal bandwidth.
  EXPECT_GT(ComputeStepTime(Inputs(8), config_).transfer_s,
            ComputeStepTime(Inputs(2), config_).transfer_s);
}

}  // namespace
}  // namespace optimus
