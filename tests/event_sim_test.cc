#include <cmath>

#include <gtest/gtest.h>

#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"
#include "src/pserver/event_sim.h"

namespace optimus {
namespace {

// A tiny synthetic model with round numbers so step phases are
// hand-computable: S = 100 MB, no batch floor, no overheads.
ModelSpec TinyModel() {
  ModelSpec spec = FindModel("ResNet-50");
  spec.name = "tiny";
  spec.params_millions = 25.0;  // 100 MB at 4 B/param
  spec.compute.fwd_time_per_example_s = 0.01;
  spec.compute.min_effective_batch = 1.0;
  spec.compute.back_time_s = 1.0;
  spec.compute.update_time_full_s = 0.0;
  spec.compute.overhead_per_worker_s = 0.0;
  spec.compute.overhead_per_ps_s = 0.0;
  spec.default_sync_batch = 100;
  spec.default_async_minibatch = 100;
  return spec;
}

StepTimeInputs Inputs(const ModelSpec* model, TrainingMode mode, int p, int w) {
  StepTimeInputs in;
  in.model = model;
  in.mode = mode;
  in.num_ps = p;
  in.num_workers = w;
  return in;
}

constexpr double kB = 50e6;  // default container bandwidth

TEST(EventSimTest, SingleWorkerSinglePsHandComputed) {
  // compute = 1*0.01*100 + 1 = 2 s; push 100 MB at 50 MB/s = 2 s; pull 2 s.
  const ModelSpec model = TinyModel();
  StepTimeInputs in = Inputs(&model, TrainingMode::kSync, 1, 1);
  EventSimResult r = SimulateStep(in, CommConfig{});
  EXPECT_NEAR(r.step_time_s, 2.0 + 2.0 + 2.0, 1e-6);
  EXPECT_NEAR(r.transfer_time_s, 4.0, 1e-6);
}

TEST(EventSimTest, ColocatedPairHasNoNetworkTime) {
  const ModelSpec model = TinyModel();
  StepTimeInputs in = Inputs(&model, TrainingMode::kSync, 1, 1);
  in.placement.workers_per_server = {1};
  in.placement.ps_per_server = {1};
  EventSimResult r = SimulateStep(in, CommConfig{});
  // Local transfers at 12.5 GB/s: 100 MB in 8 ms each way.
  EXPECT_NEAR(r.step_time_s, 2.0, 0.05);
}

TEST(EventSimTest, TwoWorkersSharePsNic) {
  // Two workers push 50 MB shards... with p=1 each worker pushes the full
  // 100 MB to one PS; the PS NIC (50 MB/s) is shared, so the push phase takes
  // 4 s instead of 2 s. Same for the pull phase.
  const ModelSpec model = TinyModel();
  StepTimeInputs in = Inputs(&model, TrainingMode::kSync, 1, 2);
  EventSimResult r = SimulateStep(in, CommConfig{});
  // compute = 0.5 s (m = 50) + 1 s = 1.5 s; push 2*100 MB through one 50 MB/s
  // NIC = 4 s; pull likewise 4 s.
  EXPECT_NEAR(r.step_time_s, 1.5 + 4.0 + 4.0, 1e-6);
}

TEST(EventSimTest, MorePsParallelizesTransfer) {
  const ModelSpec model = TinyModel();
  StepTimeInputs one = Inputs(&model, TrainingMode::kSync, 1, 4);
  StepTimeInputs four = Inputs(&model, TrainingMode::kSync, 4, 4);
  const double t1 = SimulateStep(one, CommConfig{}).step_time_s;
  const double t4 = SimulateStep(four, CommConfig{}).step_time_s;
  EXPECT_LT(t4, t1);
}

TEST(EventSimTest, UpdateTimeAddsToStep) {
  ModelSpec model = TinyModel();
  StepTimeInputs in = Inputs(&model, TrainingMode::kSync, 1, 1);
  const double base = SimulateStep(in, CommConfig{}).step_time_s;
  model.compute.update_time_full_s = 1.5;
  const double with_update = SimulateStep(in, CommConfig{}).step_time_s;
  EXPECT_NEAR(with_update - base, 1.5, 1e-6);
}

TEST(EventSimTest, StragglerDelaysSyncBarrier) {
  const ModelSpec model = TinyModel();
  StepTimeInputs in = Inputs(&model, TrainingMode::kSync, 2, 4);
  const double healthy = SimulateStep(in, CommConfig{}).step_time_s;
  in.slowest_worker_factor = 0.5;
  const double straggling = SimulateStep(in, CommConfig{}).step_time_s;
  // The slowest worker's compute doubles; the barrier waits for it.
  EXPECT_GT(straggling, healthy);
}

TEST(EventSimTest, OverheadAddedOncePerStep) {
  ModelSpec model = TinyModel();
  StepTimeInputs in = Inputs(&model, TrainingMode::kSync, 2, 2);
  const double base = SimulateStep(in, CommConfig{}).step_time_s;
  model.compute.overhead_per_worker_s = 0.1;
  model.compute.overhead_per_ps_s = 0.2;
  const double with_overhead = SimulateStep(in, CommConfig{}).step_time_s;
  EXPECT_NEAR(with_overhead - base, 0.1 * 2 + 0.2 * 2, 1e-6);
}

TEST(EventSimTest, AsyncAggregatesWorkerThroughput) {
  const ModelSpec model = TinyModel();
  StepTimeInputs in = Inputs(&model, TrainingMode::kAsync, 4, 1);
  const double s1 = SimulateStep(in, CommConfig{}).speed;
  in.num_workers = 4;
  const double s4 = SimulateStep(in, CommConfig{}).speed;
  EXPECT_GT(s4, s1);
  EXPECT_LT(s4, 4.0 * s1 + 1e-9);  // sublinear: shared PS NICs
}

TEST(EventSimTest, HotShardImbalanceSlowsStep) {
  const ModelSpec& model = FindModel("ResNet-50");
  StepTimeInputs balanced = Inputs(&model, TrainingMode::kSync, 4, 4);
  StepTimeInputs skewed = Inputs(&model, TrainingMode::kSync, 4, 4);
  skewed.load = BalancedLoadMetrics(model.TotalParams(), 4, model.num_param_blocks);
  skewed.load.max_param_fraction = 0.6;
  skewed.load_valid = true;
  EXPECT_GT(SimulateStep(skewed, CommConfig{}).step_time_s,
            SimulateStep(balanced, CommConfig{}).step_time_s);
}

TEST(EventSimTest, AgreesWithClosedFormAcrossConfigs) {
  // The validation property the module exists for: the closed-form Eqn-2
  // model and the message-level simulation agree within a modest tolerance
  // across (p, w) for both training modes.
  const ModelSpec& model = FindModel("ResNet-50");
  const CommConfig config;
  for (TrainingMode mode : {TrainingMode::kSync, TrainingMode::kAsync}) {
    for (int p : {2, 6, 12}) {
      for (int w : {2, 6, 12}) {
        SCOPED_TRACE(std::string(TrainingModeName(mode)) + " p=" + std::to_string(p) +
                     " w=" + std::to_string(w));
        StepTimeInputs in = Inputs(&model, mode, p, w);
        const double closed = TrainingSpeed(in, config);
        const double simulated = SimulateStep(in, config).speed;
        EXPECT_NEAR(simulated, closed, 0.45 * closed);
      }
    }
  }
}

TEST(EventSimTest, PackedPlacementFasterThanSpread) {
  const ModelSpec& model = FindModel("ResNet-50");
  StepTimeInputs packed = Inputs(&model, TrainingMode::kSync, 2, 2);
  packed.placement.workers_per_server = {1, 1};
  packed.placement.ps_per_server = {1, 1};
  StepTimeInputs spread = Inputs(&model, TrainingMode::kSync, 2, 2);
  spread.placement.workers_per_server = {1, 1, 0, 0};
  spread.placement.ps_per_server = {0, 0, 1, 1};
  EXPECT_LT(SimulateStep(packed, CommConfig{}).step_time_s,
            SimulateStep(spread, CommConfig{}).step_time_s);
}

TEST(EventSimTest, DeterministicAcrossRuns) {
  const ModelSpec& model = FindModel("Seq2Seq");
  StepTimeInputs in = Inputs(&model, TrainingMode::kAsync, 3, 5);
  const EventSimResult a = SimulateStep(in, CommConfig{});
  const EventSimResult b = SimulateStep(in, CommConfig{});
  EXPECT_DOUBLE_EQ(a.step_time_s, b.step_time_s);
  EXPECT_DOUBLE_EQ(a.speed, b.speed);
}

}  // namespace
}  // namespace optimus
