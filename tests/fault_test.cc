// Fault-injection and invariant-auditor coverage: plan parsing, the injector
// timeline, checkpoint/rollback exactness, simulator-level crash handling,
// relaunch backoff, the straggler-detection boundary, and negative tests that
// prove the auditor rejects corrupted cluster snapshots.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/job.h"
#include "src/cluster/server.h"
#include "src/cluster/straggler.h"
#include "src/common/rng.h"
#include "src/models/model_zoo.h"
#include "src/sim/fault_injector.h"
#include "src/sim/invariant_auditor.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/sim/workload.h"

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// Plan parsing
// ---------------------------------------------------------------------------

TEST(FaultPlanParseTest, ParsesAllEventKinds) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(
      "crash@2400:server=3,recover=30000;"
      "rack@12000:servers=7-9,recover=21600;"
      "crash@5000:server=1;"
      "slow@6000:factor=0.6,duration=3600",
      &plan, &error))
      << error;
  ASSERT_EQ(plan.outages.size(), 3u);
  EXPECT_EQ(plan.outages[0].start_s, 2400.0);
  EXPECT_EQ(plan.outages[0].recover_s, 30000.0);
  EXPECT_EQ(plan.outages[0].servers, std::vector<int>({3}));
  EXPECT_EQ(plan.outages[1].servers, std::vector<int>({7, 8, 9}));
  // No recover clause = permanent.
  EXPECT_TRUE(std::isinf(plan.outages[2].recover_s));
  ASSERT_EQ(plan.slowdowns.size(), 1u);
  EXPECT_EQ(plan.slowdowns[0].start_s, 6000.0);
  EXPECT_EQ(plan.slowdowns[0].end_s, 9600.0);
  EXPECT_EQ(plan.slowdowns[0].factor, 0.6);
}

TEST(FaultPlanParseTest, RejectsMalformedEvents) {
  const char* bad[] = {
      "bogus@100:server=1",          // unknown kind
      "crash@x:server=1",            // bad time
      "crash@100",                   // missing params
      "crash@100:server=1,recover=50",   // recover before start
      "rack@100:servers=5-3",        // empty range
      "slow@100:factor=0,duration=600",  // factor out of (0, 1]
      "slow@100:factor=1.5,duration=600",
      "slow@100:factor=0.5,duration=0",  // non-positive duration
      "slow@100:factor=0.5",         // missing duration
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(ParseFaultPlan(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(FaultPlanParseTest, EmptySpecYieldsEmptyPlan) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("", &plan, &error)) << error;
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanParseTest, LoadsPlanFromFileWithComments) {
  const std::string path = testing::TempDir() + "/fault_plan.txt";
  {
    std::ofstream os(path);
    os << "# scripted outage for the regression suite\n"
       << "crash@600:server=0,recover=1200\n"
       << "\n"
       << "slow@300:factor=0.8,duration=900  # trailing comment\n";
  }
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("@" + path, &plan, &error)) << error;
  EXPECT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.slowdowns.size(), 1u);
}

// ---------------------------------------------------------------------------
// Injector timeline
// ---------------------------------------------------------------------------

FaultConfig ConfigWithPlan(const std::string& spec) {
  FaultConfig config;
  std::string error;
  EXPECT_TRUE(ParseFaultPlan(spec, &config.plan, &error)) << error;
  return config;
}

TEST(FaultInjectorTest, ReportsCrashAndRecoveryOnSchedule) {
  FaultInjector injector(ConfigWithPlan("crash@100:server=2,recover=400"), 4);
  EXPECT_TRUE(injector.Advance(0).crashed.empty());
  EXPECT_TRUE(injector.server_up(2));

  FaultInjector::IntervalFaults at_crash = injector.Advance(100);
  EXPECT_EQ(at_crash.crashed, std::vector<int>({2}));
  EXPECT_FALSE(injector.server_up(2));
  EXPECT_EQ(injector.servers_down(), 1);

  EXPECT_TRUE(injector.Advance(300).crashed.empty());
  FaultInjector::IntervalFaults at_recover = injector.Advance(400);
  EXPECT_EQ(at_recover.recovered, std::vector<int>({2}));
  EXPECT_TRUE(injector.server_up(2));
  EXPECT_EQ(injector.servers_down(), 0);
}

TEST(FaultInjectorTest, FlapWithinOneSpanReportsNoNetTransition) {
  // The server crashes and recovers between two Advance calls: no net change.
  FaultInjector injector(ConfigWithPlan("crash@100:server=1,recover=200"), 4);
  FaultInjector::IntervalFaults f = injector.Advance(250);
  EXPECT_TRUE(f.crashed.empty());
  EXPECT_TRUE(f.recovered.empty());
  EXPECT_TRUE(injector.server_up(1));
}

TEST(FaultInjectorTest, OverlappingOutagesComposeUntilBothEnd) {
  FaultInjector injector(
      ConfigWithPlan("crash@100:server=0,recover=500;"
                     "rack@200:servers=0-1,recover=300"),
      4);
  injector.Advance(200);
  EXPECT_FALSE(injector.server_up(0));
  EXPECT_FALSE(injector.server_up(1));
  FaultInjector::IntervalFaults f = injector.Advance(300);
  // Server 1 was covered only by the rack outage; server 0 stays down until
  // its own outage ends at 500.
  EXPECT_EQ(f.recovered, std::vector<int>({1}));
  EXPECT_FALSE(injector.server_up(0));
  injector.Advance(500);
  EXPECT_TRUE(injector.server_up(0));
}

TEST(FaultInjectorTest, IgnoresServersOutsideTheCluster) {
  FaultInjector injector(ConfigWithPlan("crash@100:server=9"), 4);
  EXPECT_TRUE(injector.Advance(100).crashed.empty());
  EXPECT_EQ(injector.servers_down(), 0);
}

TEST(FaultInjectorTest, SlowdownBurstsMultiply) {
  FaultInjector injector(
      ConfigWithPlan("slow@100:factor=0.5,duration=300;"
                     "slow@200:factor=0.8,duration=100"),
      4);
  EXPECT_EQ(injector.Advance(0).slow_factor, 1.0);
  EXPECT_EQ(injector.Advance(100).slow_factor, 0.5);
  EXPECT_DOUBLE_EQ(injector.Advance(250).slow_factor, 0.5 * 0.8);
  EXPECT_EQ(injector.Advance(350).slow_factor, 0.5);
  EXPECT_EQ(injector.Advance(400).slow_factor, 1.0);
}

TEST(FaultInjectorTest, JobFailureProbabilityCompoundsPerTask) {
  FaultConfig config;
  config.task_failure_prob = 0.5;
  FaultInjector injector(config, 4);
  EXPECT_EQ(injector.JobFailureProbability(0), 0.0);
  EXPECT_DOUBLE_EQ(injector.JobFailureProbability(1), 0.5);
  EXPECT_DOUBLE_EQ(injector.JobFailureProbability(2), 0.75);
}

// ---------------------------------------------------------------------------
// Checkpoint / rollback exactness
// ---------------------------------------------------------------------------

JobSpec MakeJobSpec() {
  JobSpec spec;
  spec.id = 1;
  spec.model = &FindModel("ResNet-50");
  spec.mode = TrainingMode::kSync;
  spec.worker_demand = Resources(2.5, 10, 0, 0.15);
  spec.ps_demand = Resources(2.5, 10, 0, 0.15);
  return spec;
}

TEST(JobCheckpointTest, RollbackRestoresStepsExactly) {
  Job job(MakeJobSpec());
  job.AdvanceSteps(120.5);
  job.TakeCheckpoint();
  EXPECT_EQ(job.checkpoint_steps(), 120.5);
  job.AdvanceSteps(37.25);
  EXPECT_EQ(job.RollbackToCheckpoint(), 37.25);
  EXPECT_EQ(job.steps_done(), 120.5);  // bitwise: both values are exact
  // A second rollback without new progress loses nothing.
  EXPECT_EQ(job.RollbackToCheckpoint(), 0.0);
  EXPECT_EQ(job.steps_done(), 120.5);
}

TEST(JobCheckpointTest, FreshJobRollsBackToZero) {
  Job job(MakeJobSpec());
  job.AdvanceSteps(55.0);
  EXPECT_EQ(job.RollbackToCheckpoint(), 55.0);
  EXPECT_EQ(job.steps_done(), 0.0);
}

TEST(JobCheckpointTest, RollbackRestoresConvergenceBookkeeping) {
  JobSpec spec = MakeJobSpec();
  spec.convergence_delta = 0.02;
  spec.patience = 2;
  Job job(spec);
  job.RecordEpochLoss(1.0);
  job.RecordEpochLoss(0.9);
  job.TakeCheckpoint();
  // Progress past the checkpoint builds a convergence streak...
  job.RecordEpochLoss(0.899);
  EXPECT_EQ(job.epoch_losses().size(), 3u);
  // ...which the crash destroys along with the steps.
  job.RollbackToCheckpoint();
  EXPECT_EQ(job.epoch_losses().size(), 2u);
  EXPECT_FALSE(job.converged());
  // Replaying the same epochs converges exactly as the first time would have.
  EXPECT_FALSE(job.RecordEpochLoss(0.899));
  EXPECT_TRUE(job.RecordEpochLoss(0.898));
}

// ---------------------------------------------------------------------------
// Simulator-level fault handling
// ---------------------------------------------------------------------------

std::vector<JobSpec> SmallWorkload(int num_jobs, uint64_t seed,
                                   double arrival_window_s = 2400.0) {
  WorkloadConfig config;
  config.num_jobs = num_jobs;
  config.arrival_window_s = arrival_window_s;
  Rng rng(seed ^ 0x5eedULL);
  return GenerateWorkload(config, &rng);
}

TEST(SimulatorFaultTest, CrashEvictsAndRollsProgressBackToCheckpoint) {
  SimulatorConfig config;
  config.seed = 5;
  config.max_sim_time_s = 2e4;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("crash@1800:server=0", &config.fault.plan, &error))
      << error;
  // One job on a one-server cluster: the permanent crash at 1800 s must evict
  // it mid-run and leave it parked on its last checkpoint forever.
  Simulator sim(config, BuildUniformCluster(1, Resources(16, 80, 0, 1)),
                SmallWorkload(1, config.seed, 1.0));
  RunMetrics metrics = sim.Run();

  EXPECT_EQ(metrics.server_crashes, 1);
  EXPECT_EQ(metrics.server_recoveries, 0);
  EXPECT_EQ(metrics.job_evictions, 1);
  EXPECT_GT(metrics.rolled_back_steps, 0.0);
  EXPECT_EQ(metrics.completed_jobs, 0);
  EXPECT_FALSE(sim.server_available(0));
  // Progress rolled back to the last checkpoint exactly.
  const Job& job = sim.job(0);
  EXPECT_EQ(job.steps_done(), job.checkpoint_steps());
  EXPECT_NE(job.state(), JobState::kRunning);
  // Crash and eviction are in the event trace; the auditor saw nothing wrong.
  std::map<SimEventType, int64_t> counts = sim.trace().CountByType();
  EXPECT_EQ(counts[SimEventType::kServerCrash], 1);
  EXPECT_EQ(counts[SimEventType::kEvicted], 1);
  EXPECT_GT(metrics.audit_checks, 0);
  EXPECT_EQ(metrics.audit_violations, 0);
}

TEST(SimulatorFaultTest, TaskFailuresRollBackInPlaceAndJobsStillFinish) {
  SimulatorConfig config;
  config.seed = 9;
  config.max_sim_time_s = 2e5;
  config.fault.task_failure_prob = 0.05;
  // Periodic checkpoints bound how much a rollback can destroy; without them
  // a job that fails often enough could relive the same interval forever.
  config.fault.checkpoint_period_s = 3600.0;
  Simulator sim(config, BuildTestbed(), SmallWorkload(4, config.seed));
  RunMetrics metrics = sim.Run();

  EXPECT_GT(metrics.task_failures, 0);
  EXPECT_EQ(metrics.server_crashes, 0);
  EXPECT_EQ(metrics.job_evictions, 0);
  EXPECT_EQ(metrics.completed_jobs, metrics.total_jobs);
  EXPECT_EQ(metrics.audit_violations, 0);
  std::map<SimEventType, int64_t> counts = sim.trace().CountByType();
  EXPECT_EQ(counts[SimEventType::kTaskFailed], metrics.task_failures);
}

TEST(SimulatorFaultTest, StragglerHandlingDoesNotResurrectDeadServers) {
  SimulatorConfig config;
  config.seed = 3;
  config.max_sim_time_s = 2e5;
  config.straggler.injection_prob_per_interval = 0.4;
  config.straggler.handling_enabled = true;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("crash@3000:server=0;crash@3000:server=1",
                             &config.fault.plan, &error))
      << error;
  Simulator sim(config, BuildTestbed(), SmallWorkload(6, config.seed));
  RunMetrics metrics = sim.Run();

  // Straggler replacement stayed active throughout the run...
  EXPECT_GT(metrics.straggler_replacements, 0);
  // ...while the crashed servers stayed dead to the end. The auditor checks
  // the dead-server invariant every interval, so zero violations proves no
  // replacement or reallocation ever landed tasks on them.
  EXPECT_EQ(metrics.server_crashes, 2);
  EXPECT_EQ(metrics.server_recoveries, 0);
  EXPECT_FALSE(sim.server_available(0));
  EXPECT_FALSE(sim.server_available(1));
  EXPECT_GT(metrics.audit_checks, 0);
  EXPECT_EQ(metrics.audit_violations, 0);
}

TEST(SimulatorFaultTest, AllAllocatorPoliciesAuditCleanUnderFaults) {
  struct Policy {
    AllocatorPolicy alloc;
    PlacementPolicy place;
  };
  const Policy policies[] = {
      {AllocatorPolicy::kOptimus, PlacementPolicy::kOptimusPack},
      {AllocatorPolicy::kDrf, PlacementPolicy::kLoadBalance},
      {AllocatorPolicy::kTetris, PlacementPolicy::kTetrisPack},
      {AllocatorPolicy::kFifo, PlacementPolicy::kLoadBalance},
  };
  for (const Policy& policy : policies) {
    SimulatorConfig config;
    config.allocator = policy.alloc;
    config.placement = policy.place;
    config.seed = 11;
    config.max_sim_time_s = 2e5;
    std::string error;
    ASSERT_TRUE(ParseFaultPlan(
        "crash@1800:server=2,recover=9000;"
        "rack@4200:servers=6-8,recover=12000;"
        "slow@2400:factor=0.7,duration=1800",
        &config.fault.plan, &error))
        << error;
    config.fault.task_failure_prob = 0.02;
    config.fault.checkpoint_period_s = 3600.0;
    Simulator sim(config, BuildTestbed(), SmallWorkload(6, config.seed));
    RunMetrics metrics = sim.Run();
    EXPECT_GT(metrics.audit_checks, 0) << AllocatorPolicyName(policy.alloc);
    EXPECT_EQ(metrics.audit_violations, 0)
        << AllocatorPolicyName(policy.alloc) << ": " << sim.auditor().Summary();
    EXPECT_EQ(metrics.server_crashes, 4) << AllocatorPolicyName(policy.alloc);
    EXPECT_EQ(metrics.server_recoveries, 4) << AllocatorPolicyName(policy.alloc);
  }
}

TEST(SimulatorFaultTest, RepeatedEvictionsTriggerRelaunchBackoff) {
  SimulatorConfig config;
  config.seed = 13;
  config.max_sim_time_s = 4e4;
  config.fault.evictions_before_backoff = 1;
  config.fault.backoff_base_s = 3000.0;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("crash@1800:server=0,recover=2400",
                             &config.fault.plan, &error))
      << error;
  Simulator sim(config, BuildUniformCluster(1, Resources(16, 80, 0, 1)),
                SmallWorkload(1, config.seed, 1.0));
  RunMetrics metrics = sim.Run();

  EXPECT_EQ(metrics.job_evictions, 1);
  EXPECT_EQ(metrics.backoff_deferrals, 1);
  // The backoff delays the relaunch past the server's recovery but the job
  // still finishes within the horizon.
  EXPECT_EQ(metrics.completed_jobs, 1);
  EXPECT_EQ(metrics.audit_violations, 0);
}

// ---------------------------------------------------------------------------
// Straggler-detection boundary (§5.2): detect_threshold vs slow_factor_hi
// ---------------------------------------------------------------------------

TEST(StragglerBoundaryTest, ExactlyHalfMedianIsNotReplaced) {
  StragglerConfig config;
  config.injection_prob_per_interval = 0.0;
  config.natural_recovery_prob = 0.0;
  config.handling_enabled = true;
  StragglerModel model(config);
  Rng rng(1);

  // Detection is a strict `<`: a worker at exactly half the median speed is
  // left in place (healthy workers define the median factor of 1.0).
  Job at_boundary(MakeJobSpec());
  at_boundary.set_slowest_worker_factor(0.5);
  EXPECT_FALSE(model.Step(&at_boundary, &rng));
  EXPECT_EQ(at_boundary.slowest_worker_factor(), 0.5);
  EXPECT_EQ(at_boundary.stall_remaining_s(), 0.0);

  // Strictly below the threshold: replaced, speed restored, stall charged.
  Job below(MakeJobSpec());
  below.set_slowest_worker_factor(0.49);
  EXPECT_TRUE(model.Step(&below, &rng));
  EXPECT_EQ(below.slowest_worker_factor(), 1.0);
  EXPECT_EQ(below.stall_remaining_s(), config.replace_delay_s);
}

TEST(StragglerBoundaryTest, MildStragglersInTheGapAreNeverReplaced) {
  // The injection range [slow_factor_lo, slow_factor_hi) deliberately
  // straddles detect_threshold: factors in [0.5, 0.7) are mild stragglers the
  // paper's policy rides out rather than replacing.
  StragglerConfig config;
  config.injection_prob_per_interval = 0.0;
  config.natural_recovery_prob = 0.0;
  config.handling_enabled = true;
  ASSERT_LT(config.detect_threshold, config.slow_factor_hi);
  StragglerModel model(config);
  Rng rng(1);

  Job mild(MakeJobSpec());
  mild.set_slowest_worker_factor(0.6);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(model.Step(&mild, &rng));
  }
  EXPECT_EQ(mild.slowest_worker_factor(), 0.6);
  EXPECT_EQ(model.replacements(), 0);
}

// ---------------------------------------------------------------------------
// Auditor negative tests: deliberately corrupted snapshots must be rejected
// ---------------------------------------------------------------------------

struct AuditFixture {
  std::vector<Server> servers;
  JobPlacement placement;
  InvariantAuditor::JobView view;
  InvariantAuditor::Counts counts;

  AuditFixture() {
    servers.push_back(Server(0, Resources(16, 64, 0, 1)));
    servers.push_back(Server(1, Resources(16, 64, 0, 1)));
    placement.workers_per_server = {2, 0};
    placement.ps_per_server = {1, 0};
    view.job_id = 0;
    view.state = JobState::kRunning;
    view.steps_done = 10.0;
    view.num_ps = 1;
    view.num_workers = 2;
    view.worker_demand = Resources(2.5, 10, 0, 0.15);
    view.ps_demand = Resources(2.5, 10, 0, 0.15);
    view.placement = &placement;
    counts.submitted = 1;
    counts.completed_metric = 0;
  }
};

TEST(AuditorNegativeTest, ConsistentSnapshotPasses) {
  AuditFixture f;
  InvariantAuditor auditor;
  auditor.Check(600.0, f.servers, {f.view}, f.counts);
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  EXPECT_EQ(auditor.checks_run(), 1);
}

TEST(AuditorNegativeTest, CatchesOvercommittedServer) {
  AuditFixture f;
  // 8 workers at 10 GB each overflow the server's 64 GB.
  f.placement.workers_per_server = {8, 0};
  f.view.num_workers = 8;
  InvariantAuditor auditor;
  auditor.Check(600.0, f.servers, {f.view}, f.counts);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "capacity");
}

TEST(AuditorNegativeTest, CatchesPlacementOnDeadServer) {
  AuditFixture f;
  f.servers[0].SetAvailable(false);
  InvariantAuditor auditor;
  auditor.Check(600.0, f.servers, {f.view}, f.counts);
  ASSERT_FALSE(auditor.ok());
  bool found = false;
  for (const AuditViolation& v : auditor.violations()) {
    found = found || v.invariant == "dead-server";
  }
  EXPECT_TRUE(found) << auditor.Summary();
}

TEST(AuditorNegativeTest, CatchesPlacementAllocationMismatch) {
  AuditFixture f;
  f.view.num_workers = 3;  // placement only holds 2
  InvariantAuditor auditor;
  auditor.Check(600.0, f.servers, {f.view}, f.counts);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "capacity");
}

TEST(AuditorNegativeTest, CatchesJobCensusMismatch) {
  AuditFixture f;
  f.counts.submitted = 2;  // claims one more job than the snapshot holds
  InvariantAuditor auditor;
  auditor.Check(600.0, f.servers, {f.view}, f.counts);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "accounting");
}

TEST(AuditorNegativeTest, ProgressDecreaseNeedsAnAnnouncedRollback) {
  AuditFixture f;
  InvariantAuditor auditor;
  auditor.Check(600.0, f.servers, {f.view}, f.counts);
  ASSERT_TRUE(auditor.ok());

  // Silent progress loss: violation.
  f.view.steps_done = 5.0;
  auditor.Check(1200.0, f.servers, {f.view}, f.counts);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "progress");

  // Announced rollback: the same decrease is allowed, once.
  InvariantAuditor clean;
  InvariantAuditor::JobView view = f.view;
  view.steps_done = 10.0;
  clean.Check(600.0, f.servers, {view}, f.counts);
  clean.NoteRollback(view.job_id);
  view.steps_done = 5.0;
  clean.Check(1200.0, f.servers, {view}, f.counts);
  EXPECT_TRUE(clean.ok()) << clean.Summary();
  // The allowance does not persist to the next interval.
  view.steps_done = 2.0;
  clean.Check(1800.0, f.servers, {view}, f.counts);
  EXPECT_FALSE(clean.ok());
}

TEST(AuditorNegativeTest, CatchesAllocationHeldWhilePaused) {
  AuditFixture f;
  f.view.state = JobState::kPaused;  // paused jobs must hold no resources
  InvariantAuditor auditor;
  auditor.Check(600.0, f.servers, {f.view}, f.counts);
  EXPECT_FALSE(auditor.ok());
}

}  // namespace
}  // namespace optimus
