// Determinism regression tests for the parallel fast paths: the experiment
// runner and per-arrival speed-model sampling must produce bitwise-identical
// metrics for any thread count (each repeat / job owns an independent split
// RNG and results commit into index-owned slots).

#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace optimus {
namespace {

void ExpectIdenticalMetrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.total_jobs, b.total_jobs);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  ASSERT_EQ(a.jcts.size(), b.jcts.size());
  for (size_t i = 0; i < a.jcts.size(); ++i) {
    EXPECT_EQ(a.jcts[i], b.jcts[i]) << "jct " << i;  // bitwise
  }
  EXPECT_EQ(a.avg_jct_s, b.avg_jct_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.scaling_overhead_fraction, b.scaling_overhead_fraction);
  EXPECT_EQ(a.straggler_replacements, b.straggler_replacements);
  EXPECT_EQ(a.total_scalings, b.total_scalings);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time_s, b.timeline[i].time_s);
    EXPECT_EQ(a.timeline[i].running_tasks, b.timeline[i].running_tasks);
    EXPECT_EQ(a.timeline[i].worker_cpu_util_pct, b.timeline[i].worker_cpu_util_pct);
    EXPECT_EQ(a.timeline[i].ps_cpu_util_pct, b.timeline[i].ps_cpu_util_pct);
  }
}

ExperimentConfig SmallExperiment(int threads) {
  ExperimentConfig config;
  config.workload.num_jobs = 6;
  config.workload.arrival_window_s = 2400.0;
  config.sim.max_sim_time_s = 2e5;
  config.repeats = 3;
  config.base_seed = 7;
  config.threads = threads;
  return config;
}

TEST(ParallelDeterminismTest, ExperimentRunnerMatchesSerialBitForBit) {
  const ExperimentResult serial =
      RunExperiment(SmallExperiment(1), [] { return BuildTestbed(); });
  const ExperimentResult parallel =
      RunExperiment(SmallExperiment(4), [] { return BuildTestbed(); });

  EXPECT_EQ(serial.avg_jct_mean, parallel.avg_jct_mean);
  EXPECT_EQ(serial.avg_jct_stddev, parallel.avg_jct_stddev);
  EXPECT_EQ(serial.makespan_mean, parallel.makespan_mean);
  EXPECT_EQ(serial.makespan_stddev, parallel.makespan_stddev);
  EXPECT_EQ(serial.scaling_overhead_mean, parallel.scaling_overhead_mean);
  EXPECT_EQ(serial.completed_fraction, parallel.completed_fraction);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (size_t r = 0; r < serial.runs.size(); ++r) {
    ExpectIdenticalMetrics(serial.runs[r], parallel.runs[r]);
  }
}

RunMetrics RunSimulatorWithInitThreads(int init_threads) {
  SimulatorConfig sim;
  sim.seed = 11;
  sim.max_sim_time_s = 2e5;
  sim.init_threads = init_threads;

  WorkloadConfig workload;
  workload.num_jobs = 8;
  // Squeeze the arrivals so several jobs land in the same scheduling interval
  // and the pre-run sampling genuinely runs concurrently.
  workload.arrival_window_s = 1200.0;

  Rng workload_rng(sim.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator simulator(sim, BuildTestbed(), std::move(specs));
  return simulator.Run();
}

TEST(ParallelDeterminismTest, ParallelPreRunSamplingMatchesSerialBitForBit) {
  const RunMetrics serial = RunSimulatorWithInitThreads(1);
  const RunMetrics parallel = RunSimulatorWithInitThreads(4);
  ExpectIdenticalMetrics(serial, parallel);
}

}  // namespace
}  // namespace optimus
