// Determinism regression tests for the parallel fast paths: the experiment
// runner, per-arrival speed-model sampling, and the parallel interval engine
// (per-job stepping, scheduler-input construction) must produce
// bitwise-identical metrics AND event traces for any thread count (each
// repeat / job owns an independent split RNG, results commit into index-owned
// slots, and shared-state effects merge serially in job order).
//
// Wall-time profiling fields (RunMetrics::wall_*) are intentionally excluded
// from the comparisons — they are host measurements, not simulation outputs.

#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/sim/experiment.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/sim/workload.h"

namespace optimus {
namespace {

void ExpectIdenticalMetrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.total_jobs, b.total_jobs);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  ASSERT_EQ(a.jcts.size(), b.jcts.size());
  for (size_t i = 0; i < a.jcts.size(); ++i) {
    EXPECT_EQ(a.jcts[i], b.jcts[i]) << "jct " << i;  // bitwise
  }
  EXPECT_EQ(a.avg_jct_s, b.avg_jct_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.scaling_overhead_fraction, b.scaling_overhead_fraction);
  EXPECT_EQ(a.straggler_replacements, b.straggler_replacements);
  EXPECT_EQ(a.total_scalings, b.total_scalings);
  EXPECT_EQ(a.server_crashes, b.server_crashes);
  EXPECT_EQ(a.server_recoveries, b.server_recoveries);
  EXPECT_EQ(a.task_failures, b.task_failures);
  EXPECT_EQ(a.job_evictions, b.job_evictions);
  EXPECT_EQ(a.backoff_deferrals, b.backoff_deferrals);
  EXPECT_EQ(a.checkpoints_taken, b.checkpoints_taken);
  EXPECT_EQ(a.rolled_back_steps, b.rolled_back_steps);  // bitwise
  EXPECT_EQ(a.audit_checks, b.audit_checks);
  EXPECT_EQ(a.audit_violations, b.audit_violations);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time_s, b.timeline[i].time_s);
    EXPECT_EQ(a.timeline[i].running_tasks, b.timeline[i].running_tasks);
    EXPECT_EQ(a.timeline[i].worker_cpu_util_pct, b.timeline[i].worker_cpu_util_pct);
    EXPECT_EQ(a.timeline[i].ps_cpu_util_pct, b.timeline[i].ps_cpu_util_pct);
  }
}

ExperimentConfig SmallExperiment(int threads) {
  ExperimentConfig config;
  config.workload.num_jobs = 6;
  config.workload.arrival_window_s = 2400.0;
  config.sim.max_sim_time_s = 2e5;
  config.repeats = 3;
  config.base_seed = 7;
  config.threads = threads;
  return config;
}

TEST(ParallelDeterminismTest, ExperimentRunnerMatchesSerialBitForBit) {
  const ExperimentResult serial =
      RunExperiment(SmallExperiment(1), [] { return BuildTestbed(); });
  const ExperimentResult parallel =
      RunExperiment(SmallExperiment(4), [] { return BuildTestbed(); });

  EXPECT_EQ(serial.avg_jct_mean, parallel.avg_jct_mean);
  EXPECT_EQ(serial.avg_jct_stddev, parallel.avg_jct_stddev);
  EXPECT_EQ(serial.makespan_mean, parallel.makespan_mean);
  EXPECT_EQ(serial.makespan_stddev, parallel.makespan_stddev);
  EXPECT_EQ(serial.scaling_overhead_mean, parallel.scaling_overhead_mean);
  EXPECT_EQ(serial.completed_fraction, parallel.completed_fraction);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (size_t r = 0; r < serial.runs.size(); ++r) {
    ExpectIdenticalMetrics(serial.runs[r], parallel.runs[r]);
  }
}

// Same small experiment with the fault subsystem fully lit up: scripted
// crashes (single-server and rack-style), a slowdown burst, task failures,
// periodic checkpoints, and the auditor. All fault draws come from per-job
// split streams and the injector advances serially, so metrics must stay
// bitwise identical for any thread count.
ExperimentConfig SmallFaultedExperiment(int threads) {
  ExperimentConfig config = SmallExperiment(threads);
  std::string error;
  EXPECT_TRUE(ParseFaultPlan(
      "crash@1800:server=2,recover=9000;"
      "rack@4200:servers=6-8,recover=12000;"
      "slow@2400:factor=0.7,duration=1800",
      &config.sim.fault.plan, &error))
      << error;
  config.sim.fault.task_failure_prob = 0.03;
  config.sim.fault.checkpoint_period_s = 1800.0;
  config.sim.audit = true;
  return config;
}

TEST(ParallelDeterminismTest, FaultedExperimentMatchesSerialBitForBit) {
  const ExperimentResult serial =
      RunExperiment(SmallFaultedExperiment(1), [] { return BuildTestbed(); });
  const ExperimentResult parallel =
      RunExperiment(SmallFaultedExperiment(4), [] { return BuildTestbed(); });

  EXPECT_EQ(serial.avg_jct_mean, parallel.avg_jct_mean);
  EXPECT_EQ(serial.makespan_mean, parallel.makespan_mean);
  EXPECT_EQ(serial.task_failures_mean, parallel.task_failures_mean);
  EXPECT_EQ(serial.job_evictions_mean, parallel.job_evictions_mean);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  int64_t total_faults = 0;
  for (size_t r = 0; r < serial.runs.size(); ++r) {
    ExpectIdenticalMetrics(serial.runs[r], parallel.runs[r]);
    total_faults += serial.runs[r].server_crashes + serial.runs[r].task_failures;
    EXPECT_EQ(serial.runs[r].audit_violations, 0);
  }
  // The fault plan genuinely fired — otherwise this test pins nothing.
  EXPECT_GT(total_faults, 0);
}

RunMetrics RunSimulatorWithThreads(int threads) {
  SimulatorConfig sim;
  sim.seed = 11;
  sim.max_sim_time_s = 2e5;
  sim.threads = threads;

  WorkloadConfig workload;
  workload.num_jobs = 8;
  // Squeeze the arrivals so several jobs land in the same scheduling interval
  // and the pre-run sampling genuinely runs concurrently.
  workload.arrival_window_s = 1200.0;

  Rng workload_rng(sim.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator simulator(sim, BuildTestbed(), std::move(specs));
  return simulator.Run();
}

TEST(ParallelDeterminismTest, ParallelPreRunSamplingMatchesSerialBitForBit) {
  const RunMetrics serial = RunSimulatorWithThreads(1);
  const RunMetrics parallel = RunSimulatorWithThreads(4);
  ExpectIdenticalMetrics(serial, parallel);
}

// ---------------------------------------------------------------------------
// Parallel interval engine: a faulted + audited run must be bitwise identical
// — metrics and the full event trace — across thread counts.
// ---------------------------------------------------------------------------

struct SimRunOutput {
  RunMetrics metrics;
  std::vector<SimEvent> events;
};

SimRunOutput RunFaultedAuditedSimulator(int threads) {
  SimulatorConfig sim;
  sim.seed = 11;
  sim.max_sim_time_s = 2e5;
  sim.threads = threads;
  sim.audit = true;
  std::string error;
  EXPECT_TRUE(ParseFaultPlan(
      "crash@1800:server=2,recover=9000;"
      "rack@4200:servers=6-8,recover=12000;"
      "slow@2400:factor=0.7,duration=1800",
      &sim.fault.plan, &error))
      << error;
  sim.fault.task_failure_prob = 0.03;
  sim.fault.checkpoint_period_s = 1800.0;

  WorkloadConfig workload;
  workload.num_jobs = 8;
  workload.arrival_window_s = 1200.0;

  Rng workload_rng(sim.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator simulator(sim, BuildTestbed(), std::move(specs));
  SimRunOutput out;
  out.metrics = simulator.Run();
  out.events = simulator.trace().events();
  return out;
}

TEST(ParallelDeterminismTest, FaultedAuditedIntervalEngineMatchesAcrossThreads) {
  const SimRunOutput base = RunFaultedAuditedSimulator(1);
  // The run must actually exercise faults and auditing, or this pins nothing.
  EXPECT_GT(base.metrics.server_crashes + base.metrics.task_failures, 0);
  EXPECT_GT(base.metrics.audit_checks, 0);
  EXPECT_EQ(base.metrics.audit_violations, 0);
  ASSERT_FALSE(base.events.empty());

  for (const int threads : {2, 8}) {
    const SimRunOutput other = RunFaultedAuditedSimulator(threads);
    ExpectIdenticalMetrics(base.metrics, other.metrics);
    ASSERT_EQ(base.events.size(), other.events.size()) << threads << " threads";
    for (size_t i = 0; i < base.events.size(); ++i) {
      EXPECT_EQ(base.events[i].time_s, other.events[i].time_s) << "event " << i;
      EXPECT_EQ(base.events[i].type, other.events[i].type) << "event " << i;
      EXPECT_EQ(base.events[i].job_id, other.events[i].job_id) << "event " << i;
      EXPECT_EQ(base.events[i].num_ps, other.events[i].num_ps) << "event " << i;
      EXPECT_EQ(base.events[i].num_workers, other.events[i].num_workers)
          << "event " << i;
      EXPECT_EQ(base.events[i].detail, other.events[i].detail) << "event " << i;
    }
  }
}

}  // namespace
}  // namespace optimus
