// Shard invariance: the two-phase sharded scheduling round, the sharded
// placement fast path, streaming admission, and the hash-only trace must all
// be output-invariant — bitwise — against their unsharded / batch / storage
// counterparts, for every (shards, threads) combination, on the golden
// scenarios (including the committed fault plans).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/cluster/server.h"
#include "src/cluster/shard_plan.h"
#include "src/common/rng.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/sched/sharded_round.h"
#include "src/sched/speed_surface.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"
#include "src/workload/scenario.h"

namespace optimus {
namespace {

std::string ScenarioPath(const std::string& name) {
  return std::string(OPTIMUS_SOURCE_DIR) + "/scenarios/" + name;
}

// Everything a run computes, for bitwise comparison across configurations.
struct RunOutputs {
  RunMetrics metrics;
  uint64_t trace_digest = 0;
  size_t trace_records = 0;
  int64_t audit_checks = 0;
  int64_t audit_violations = 0;
};

RunOutputs RunScenario(const ScenarioSpec& scenario, int shards, int threads,
                       SimEngine engine, bool streaming = false,
                       bool hash_only = false) {
  SimulatorConfig config = scenario.MakeSimConfig("optimus");
  config.shards = shards;
  config.threads = threads;
  config.engine = engine;
  config.streaming = streaming;
  config.trace_hash_only = hash_only;
  config.audit = true;
  Simulator sim(config, scenario.cluster.Build(), scenario.JobsForRepeat());
  RunOutputs out;
  out.metrics = sim.Run();
  out.trace_digest = sim.trace().digest();
  out.trace_records = sim.trace().size();
  out.audit_checks = out.metrics.audit_checks;
  out.audit_violations = out.metrics.audit_violations;
  return out;
}

void ExpectBitwiseEqual(const RunOutputs& a, const RunOutputs& b,
                        const std::string& label) {
  EXPECT_EQ(a.metrics.completed_jobs, b.metrics.completed_jobs) << label;
  EXPECT_EQ(a.metrics.jcts, b.metrics.jcts) << label;
  EXPECT_EQ(a.metrics.avg_jct_s, b.metrics.avg_jct_s) << label;
  EXPECT_EQ(a.metrics.makespan_s, b.metrics.makespan_s) << label;
  EXPECT_EQ(a.metrics.total_scalings, b.metrics.total_scalings) << label;
  EXPECT_EQ(a.metrics.straggler_replacements, b.metrics.straggler_replacements)
      << label;
  EXPECT_EQ(a.metrics.job_evictions, b.metrics.job_evictions) << label;
  EXPECT_EQ(a.metrics.task_failures, b.metrics.task_failures) << label;
  EXPECT_EQ(a.metrics.rolled_back_steps, b.metrics.rolled_back_steps) << label;
  EXPECT_EQ(a.metrics.events_processed, b.metrics.events_processed) << label;
  EXPECT_EQ(a.audit_violations, b.audit_violations) << label;
  EXPECT_EQ(a.trace_digest, b.trace_digest) << label;
  EXPECT_EQ(a.trace_records, b.trace_records) << label;
}

// ---------------------------------------------------------------------------
// ShardPlan
// ---------------------------------------------------------------------------

TEST(ShardPlanTest, DealsRackAlignedRanges) {
  // 10 servers, racks of 4 -> 3 rack units; 2 shards -> units split 1/2,
  // boundaries never inside a rack.
  const ShardPlan plan = ShardPlan::Build(2, 10, 4);
  ASSERT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(plan.range(0).first, 0);
  EXPECT_EQ(plan.range(0).second, 4);
  EXPECT_EQ(plan.range(1).first, 4);
  EXPECT_EQ(plan.range(1).second, 10);
  EXPECT_EQ(plan.ShardOf(3), 0);
  EXPECT_EQ(plan.ShardOf(4), 1);
  EXPECT_EQ(plan.ShardOf(9), 1);
}

TEST(ShardPlanTest, CoversEveryServerExactlyOnce) {
  for (const int shards : {1, 2, 3, 7, 8}) {
    for (const int rack : {0, 1, 5, 16}) {
      const int n = 37;
      const ShardPlan plan = ShardPlan::Build(shards, n, rack);
      std::vector<int> owner(n, -1);
      for (int s = 0; s < plan.num_shards(); ++s) {
        for (int i = plan.range(s).first; i < plan.range(s).second; ++i) {
          EXPECT_EQ(owner[i], -1) << "server " << i << " in two shards";
          owner[i] = s;
        }
      }
      for (int i = 0; i < n; ++i) {
        EXPECT_NE(owner[i], -1) << "server " << i << " unassigned (shards="
                                << shards << " rack=" << rack << ")";
        EXPECT_EQ(owner[i], plan.ShardOf(i));
      }
    }
  }
}

TEST(ShardPlanTest, ClampsShardCountToServers) {
  EXPECT_EQ(ShardPlan::Build(16, 3, 0).num_shards(), 3);
  EXPECT_EQ(ShardPlan::Build(0, 3, 0).num_shards(), 1);
  // One rack unit cannot split: every shard beyond the first is empty but
  // the ranges still cover the cluster.
  const ShardPlan one_rack = ShardPlan::Build(4, 8, 8);
  int covered = 0;
  for (int s = 0; s < one_rack.num_shards(); ++s) {
    covered += one_rack.range(s).second - one_rack.range(s).first;
  }
  EXPECT_EQ(covered, 8);
}

// ---------------------------------------------------------------------------
// Compact JobPlacement
// ---------------------------------------------------------------------------

TEST(CompactPlacementTest, CompactAndDenseFormsAgree) {
  JobPlacement dense;
  dense.workers_per_server = {0, 2, 0, 1};
  dense.ps_per_server = {1, 0, 0, 2};

  JobPlacement compact;
  compact.used_servers = {0, 1, 3};
  compact.used_workers = {0, 2, 1};
  compact.used_ps = {1, 0, 2};

  EXPECT_FALSE(dense.compact());
  EXPECT_TRUE(compact.compact());
  EXPECT_FALSE(compact.empty());
  EXPECT_EQ(dense.TotalWorkers(), compact.TotalWorkers());
  EXPECT_EQ(dense.TotalPs(), compact.TotalPs());

  std::map<size_t, std::pair<int, int>> from_dense, from_compact;
  dense.ForEachUsed(
      [&](size_t s, int w, int p) { from_dense[s] = {w, p}; });
  compact.ForEachUsed(
      [&](size_t s, int w, int p) { from_compact[s] = {w, p}; });
  EXPECT_EQ(from_dense, from_compact);
}

// ---------------------------------------------------------------------------
// Sharded placement fast path vs. the legacy global heap
// ---------------------------------------------------------------------------

TEST(ShardedPlacementTest, DecisionsMatchLegacyPlacement) {
  Rng rng(17);
  for (const int shards : {1, 2, 4}) {
    for (int trial = 0; trial < 3; ++trial) {
      const int n_servers = 32;
      std::vector<Server> legacy_servers =
          BuildUniformCluster(n_servers, Resources(16, 80, 0, 1));
      std::vector<Server> sharded_servers = legacy_servers;

      std::vector<PlacementJobInput> jobs;
      const int n_jobs = 12;
      for (int j = 0; j < n_jobs; ++j) {
        PlacementJobInput in;
        in.job_id = j;
        in.alloc.num_ps = static_cast<int>(rng.UniformInt(1, 4));
        in.alloc.num_workers = static_cast<int>(rng.UniformInt(1, 6));
        in.worker_demand = Resources(2.5, 10, 0, 0.15);
        in.ps_demand = Resources(2.5, 10, 0, 0.15);
        jobs.push_back(in);
      }

      const PlacementResult legacy =
          PlaceJobs(PlacementPolicy::kOptimusPack, jobs, &legacy_servers);
      const ShardPlan plan = ShardPlan::Build(shards, n_servers, 8);
      const PlacementResult sharded =
          PlaceJobsSharded(plan, jobs, &sharded_servers);

      EXPECT_EQ(legacy.unplaced, sharded.unplaced);
      ASSERT_EQ(legacy.placements.size(), sharded.placements.size());
      for (const auto& [id, placement] : legacy.placements) {
        const auto it = sharded.placements.find(id);
        ASSERT_NE(it, sharded.placements.end()) << "job " << id;
        std::map<size_t, std::pair<int, int>> a, b;
        placement.ForEachUsed(
            [&](size_t s, int w, int p) { a[s] = {w, p}; });
        it->second.ForEachUsed(
            [&](size_t s, int w, int p) { b[s] = {w, p}; });
        EXPECT_EQ(a, b) << "job " << id << " shards=" << shards;
        EXPECT_TRUE(it->second.compact());
      }
      ASSERT_EQ(legacy.effective_alloc.size(), sharded.effective_alloc.size());
      for (const auto& [id, alloc] : legacy.effective_alloc) {
        const auto it = sharded.effective_alloc.find(id);
        ASSERT_NE(it, sharded.effective_alloc.end());
        EXPECT_EQ(alloc.num_ps, it->second.num_ps);
        EXPECT_EQ(alloc.num_workers, it->second.num_workers);
      }
      // The servers end in the same free state either way.
      for (int s = 0; s < n_servers; ++s) {
        EXPECT_TRUE(legacy_servers[s].Free() == sharded_servers[s].Free())
            << "server " << s << " shards=" << shards;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Two-phase sharded allocation vs. the canonical allocator
// ---------------------------------------------------------------------------

TEST(ShardedAllocateTest, BitwiseMatchesUnshardedAllocator) {
  const int n_servers = 24;
  const Resources capacity =
      TotalCapacity(BuildUniformCluster(n_servers, Resources(16, 80, 0, 1)));

  std::vector<SchedJob> jobs;
  for (int j = 0; j < 10; ++j) {
    SchedJob job;
    job.job_id = j;
    job.worker_demand = Resources(2.5, 10, 0, 0.15);
    job.ps_demand = Resources(2.5, 10, 0, 0.15);
    job.max_ps = 8;
    job.max_workers = 8;
    job.remaining_epochs = 5.0 + j;
    // Deterministic synthetic speed with diminishing returns; jobs sharing
    // (j % 3) share a surface signature.
    const double scale = 1.0 + (j % 3);
    job.speed = [scale](int p, int w) {
      return scale * (1.0 - 1.0 / (1.0 + p)) * (1.0 - 1.0 / (1.0 + w));
    };
    job.speed_signature = static_cast<uint64_t>(j % 3) + 1;
    jobs.push_back(std::move(job));
  }

  OptimusAllocRoundStats baseline_stats;
  OptimusAllocatorOptions baseline_opts;
  baseline_opts.stats = &baseline_stats;
  OptimusAllocator baseline(baseline_opts);
  SpeedSurfaceSet baseline_surfaces;
  const AllocationMap want = baseline.Allocate(jobs, capacity, &baseline_surfaces);

  ThreadPool pool(2);
  for (const int shards : {1, 2, 4}) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      const ShardPlan plan = ShardPlan::Build(shards, n_servers, 0);
      OptimusAllocRoundStats fixup_stats;
      OptimusAllocatorOptions fixup_opts;
      fixup_opts.stats = &fixup_stats;
      OptimusAllocator fixup(fixup_opts);
      SpeedSurfaceSet surfaces;
      ShardedRoundStats stats;
      const AllocationMap got = ShardedAllocate(
          plan, jobs, capacity, fixup,
          [](OptimusAllocRoundStats* s) -> std::unique_ptr<Allocator> {
            OptimusAllocatorOptions o;
            o.stats = s;
            return std::make_unique<OptimusAllocator>(o);
          },
          &surfaces, p, &stats);
      ASSERT_EQ(want.size(), got.size()) << "shards=" << shards;
      for (const auto& [id, alloc] : want) {
        const auto it = got.find(id);
        ASSERT_NE(it, got.end()) << "job " << id;
        EXPECT_EQ(alloc.num_ps, it->second.num_ps)
            << "job " << id << " shards=" << shards;
        EXPECT_EQ(alloc.num_workers, it->second.num_workers)
            << "job " << id << " shards=" << shards;
      }
      // The fixup pass must consume exactly the baseline's round effort and
      // surface counters (warm memo points count as evals when first
      // consumed, making the counters shard-invariant by construction).
      EXPECT_EQ(fixup_stats.pops, baseline_stats.pops) << "shards=" << shards;
      EXPECT_EQ(fixup_stats.grants, baseline_stats.grants);
      EXPECT_EQ(surfaces.probes(), baseline_surfaces.probes());
      EXPECT_EQ(surfaces.evals(), baseline_surfaces.evals());
      EXPECT_EQ(surfaces.num_surfaces(), baseline_surfaces.num_surfaces());
      if (shards > 1) {
        EXPECT_GT(stats.local_grants, 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end shard x thread invariance on the golden scenarios
// ---------------------------------------------------------------------------

class GoldenScenarioInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenScenarioInvariance, ShardsAndThreadsAreBitwiseInvariant) {
  ScenarioSpec scenario;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(ScenarioPath(GetParam()), &scenario, &error))
      << error;

  for (const SimEngine engine : {SimEngine::kInterval, SimEngine::kEvents}) {
    const RunOutputs reference = RunScenario(scenario, 1, 1, engine);
    EXPECT_EQ(reference.audit_violations, 0);
    for (const int shards : {1, 2, 4, 8}) {
      for (const int threads : {1, 2, 8}) {
        if (shards == 1 && threads == 1) {
          continue;
        }
        const RunOutputs run = RunScenario(scenario, shards, threads, engine);
        ExpectBitwiseEqual(
            run, reference,
            std::string(GetParam()) + " " + SimEngineName(engine) +
                " shards=" + std::to_string(shards) +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

// The four golden scenarios; rack_outage carries the committed fault plan
// (a scripted rack outage + task failures), scale_smoke a rack outage plus a
// slowdown burst under streaming admission.
INSTANTIATE_TEST_SUITE_P(Golden, GoldenScenarioInvariance,
                         ::testing::Values("fig11_testbed.json",
                                           "rack_outage.json",
                                           "poisson_hetero60.json",
                                           "diurnal_heavytail.json"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           return name.substr(0, name.find('.'));
                         });

// ---------------------------------------------------------------------------
// Streaming admission parity
// ---------------------------------------------------------------------------

TEST(StreamingAdmissionTest, BatchAndStreamingAreBitwiseIdentical) {
  ScenarioSpec scenario;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(ScenarioPath("rack_outage.json"), &scenario,
                               &error))
      << error;
  for (const SimEngine engine : {SimEngine::kInterval, SimEngine::kEvents}) {
    const RunOutputs batch =
        RunScenario(scenario, 2, 2, engine, /*streaming=*/false);
    const RunOutputs streaming =
        RunScenario(scenario, 2, 2, engine, /*streaming=*/true);
    ExpectBitwiseEqual(streaming, batch,
                       std::string("streaming ") + SimEngineName(engine));
  }
}

TEST(StreamingAdmissionTest, RejectsUnsortedSpecsAndOnlineSubmit) {
  SimulatorConfig config;
  config.streaming = true;
  std::vector<Server> servers = BuildUniformCluster(4, Resources(16, 80, 0, 1));

  WorkloadConfig workload;
  workload.num_jobs = 4;
  Rng rng(3);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &rng);
  ASSERT_EQ(specs.size(), 4u);
  std::swap(specs[0], specs[3]);  // break the arrival order
  EXPECT_DEATH(Simulator(config, servers, specs),
               "sorted by arrival");

  std::swap(specs[0], specs[3]);
  Simulator sim(config, servers, specs);
  std::string why;
  JobSpec late = specs[0];
  late.id = 99;
  late.arrival_time_s = 1e9;
  EXPECT_FALSE(sim.SubmitJob(late, &why));
  EXPECT_NE(why.find("streaming"), std::string::npos) << why;
}

TEST(StreamingAdmissionTest, RetiresCompletedJobsAndKeepsAccounting) {
  ScenarioSpec scenario;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(ScenarioPath("fig11_testbed.json"), &scenario,
                               &error))
      << error;
  SimulatorConfig config = scenario.MakeSimConfig("optimus");
  config.streaming = true;
  config.audit = true;
  Simulator sim(config, scenario.cluster.Build(), scenario.JobsForRepeat());
  const RunMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.audit_violations, 0);
  EXPECT_GT(metrics.completed_jobs, 0);
  // Completed jobs were retired: their runtime slots are gone but the
  // aggregate metrics still count them.
  EXPECT_EQ(static_cast<int>(metrics.jcts.size()), metrics.completed_jobs);
}

// ---------------------------------------------------------------------------
// Hash-only trace mode
// ---------------------------------------------------------------------------

TEST(TraceHashOnlyTest, DigestMatchesStorageMode) {
  ScenarioSpec scenario;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(ScenarioPath("rack_outage.json"), &scenario,
                               &error))
      << error;
  const RunOutputs stored = RunScenario(scenario, 2, 1, SimEngine::kEvents,
                                        /*streaming=*/false,
                                        /*hash_only=*/false);
  const RunOutputs hashed = RunScenario(scenario, 2, 1, SimEngine::kEvents,
                                        /*streaming=*/false,
                                        /*hash_only=*/true);
  EXPECT_EQ(stored.trace_digest, hashed.trace_digest);
  EXPECT_EQ(stored.trace_records, hashed.trace_records);
}

TEST(TraceHashOnlyTest, HashModeStoresNothing) {
  EventTrace trace;
  trace.set_hash_only(true);
  trace.Record(1.0, SimEventType::kArrival, 7);
  trace.RecordEpochs(2.0, SimEventType::kCompleted, 7, 1, 2, 11);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_TRUE(trace.events().empty());
  EXPECT_NE(trace.digest(), 14695981039346656037ULL);  // moved off the basis

  EventTrace stored;
  stored.Record(1.0, SimEventType::kArrival, 7);
  stored.RecordEpochs(2.0, SimEventType::kCompleted, 7, 1, 2, 11);
  EXPECT_EQ(stored.digest(), trace.digest());
  EXPECT_EQ(stored.events().size(), 2u);
}

}  // namespace
}  // namespace optimus
