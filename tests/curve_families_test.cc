#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/perfmodel/curve_families.h"

namespace optimus {
namespace {

// Noisy samples from a given generator over steps 1..n.
std::vector<LossSample> Sample(int n, double noise_sd, uint64_t seed,
                               const std::function<double(double)>& truth) {
  Rng rng(seed);
  std::vector<LossSample> out;
  for (int i = 1; i <= n; ++i) {
    const double k = static_cast<double>(i);
    out.push_back({k, truth(k) * rng.LogNormalFactor(noise_sd)});
  }
  return out;
}

TEST(CurveFamilyTest, InversePolynomialRecoversTruth) {
  auto truth = [](double k) { return 1.0 / (0.02 * k + 0.5) + 0.1; };
  const CurveFit fit =
      FitCurveFamily(CurveFamily::kInversePolynomial, Sample(200, 0.0, 1, truth));
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.b0, 0.02, 0.002);
  EXPECT_NEAR(fit.b1, 0.5, 0.05);
  EXPECT_NEAR(fit.b2, 0.1, 0.02);
}

TEST(CurveFamilyTest, ExponentialRecoversTruth) {
  auto truth = [](double k) { return 0.9 * std::exp(-0.03 * k) + 0.2; };
  const CurveFit fit =
      FitCurveFamily(CurveFamily::kExponential, Sample(200, 0.0, 2, truth));
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.b0, 0.03, 0.003);
  EXPECT_NEAR(fit.b1, 0.9, 0.09);
  EXPECT_NEAR(fit.b2, 0.2, 0.03);
}

TEST(CurveFamilyTest, PowerLawRecoversTruth) {
  auto truth = [](double k) { return 1.5 * std::pow(k + 1.0, -0.7) + 0.05; };
  const CurveFit fit = FitCurveFamily(CurveFamily::kPowerLaw, Sample(200, 0.0, 3, truth));
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.b0, 0.7, 0.07);
  EXPECT_NEAR(fit.b1, 1.5, 0.15);
  EXPECT_NEAR(fit.b2, 0.05, 0.03);
}

TEST(CurveFamilyTest, TooFewSamplesInvalid) {
  std::vector<LossSample> two = {{1.0, 1.0}, {2.0, 0.9}};
  EXPECT_FALSE(FitCurveFamily(CurveFamily::kExponential, two).valid);
}

TEST(CurveFamilyTest, PredictIsMonotoneDecreasing) {
  for (CurveFamily family : {CurveFamily::kInversePolynomial, CurveFamily::kExponential,
                             CurveFamily::kPowerLaw}) {
    SCOPED_TRACE(CurveFamilyName(family));
    CurveFit fit;
    fit.valid = true;
    fit.family = family;
    fit.b0 = 0.05;
    fit.b1 = 1.0;
    fit.b2 = 0.1;
    double prev = fit.Predict(0.0);
    for (int k = 10; k <= 200; k += 10) {
      const double cur = fit.Predict(k);
      EXPECT_LT(cur, prev);
      EXPECT_GE(cur, fit.b2);
      prev = cur;
    }
  }
}

class MultiFamilyTest : public ::testing::Test {
 protected:
  static MultiFamilyConvergenceModel FitOn(const std::function<double(double)>& truth,
                                           double noise_sd, uint64_t seed) {
    MultiFamilyConvergenceModel model;
    Rng rng(seed);
    for (int i = 1; i <= 300; ++i) {
      const double k = static_cast<double>(i);
      model.AddSample(k, truth(k) * rng.LogNormalFactor(noise_sd));
    }
    model.Fit();
    return model;
  }
};

TEST_F(MultiFamilyTest, SelectsInverseForSgdCurve) {
  auto truth = [](double k) { return 4.0 / (0.05 * k + 1.0) + 0.4; };
  MultiFamilyConvergenceModel model = FitOn(truth, 0.01, 11);
  ASSERT_TRUE(model.fitted());
  EXPECT_EQ(model.best_fit().family, CurveFamily::kInversePolynomial);
}

TEST_F(MultiFamilyTest, SelectsExponentialForExpCurve) {
  // A curve Eqn 1 cannot describe (the paper's A3C example motivates this).
  auto truth = [](double k) { return 3.0 * std::exp(-0.025 * k) + 0.5; };
  MultiFamilyConvergenceModel model = FitOn(truth, 0.01, 13);
  ASSERT_TRUE(model.fitted());
  EXPECT_EQ(model.best_fit().family, CurveFamily::kExponential);
}

TEST_F(MultiFamilyTest, PredictLossDenormalizes) {
  auto truth = [](double k) { return 5.0 * std::exp(-0.03 * k) + 1.0; };
  MultiFamilyConvergenceModel model = FitOn(truth, 0.0, 17);
  ASSERT_TRUE(model.fitted());
  for (double k : {10.0, 100.0, 250.0}) {
    EXPECT_NEAR(model.PredictLoss(k), truth(k), 0.05 * truth(k)) << "k=" << k;
  }
}

TEST_F(MultiFamilyTest, PredictTotalEpochsMatchesDetectorOnTruth) {
  auto truth = [](double k) { return 2.0 / (0.01 * k + 0.4) + 0.3; };
  MultiFamilyConvergenceModel model = FitOn(truth, 0.005, 19);
  ASSERT_TRUE(model.fitted());
  const int64_t spe = 10;
  const int64_t predicted = model.PredictTotalEpochs(0.02, 3, spe);
  // Ground truth detection on the noiseless curve.
  int streak = 0;
  int64_t expected = 10000;
  double prev = truth(0);
  for (int64_t e = 1; e < 10000; ++e) {
    const double cur = truth(static_cast<double>(e * spe));
    if ((prev - cur) / prev < 0.02) {
      if (++streak >= 3) {
        expected = e;
        break;
      }
    } else {
      streak = 0;
    }
    prev = cur;
  }
  EXPECT_NEAR(static_cast<double>(predicted), static_cast<double>(expected),
              0.2 * static_cast<double>(expected));
}

TEST_F(MultiFamilyTest, FamilyRssReportsAllFamilies) {
  auto truth = [](double k) { return 3.0 * std::exp(-0.02 * k) + 0.5; };
  MultiFamilyConvergenceModel model = FitOn(truth, 0.01, 23);
  ASSERT_TRUE(model.fitted());
  const auto& rss = model.family_rss();
  ASSERT_EQ(rss.size(), 3u);
  const double exp_rss = rss[static_cast<size_t>(CurveFamily::kExponential)];
  const double inv_rss = rss[static_cast<size_t>(CurveFamily::kInversePolynomial)];
  EXPECT_LT(exp_rss, inv_rss);
}

TEST_F(MultiFamilyTest, ResetClears) {
  auto truth = [](double k) { return 1.0 / (0.01 * k + 1.0) + 0.1; };
  MultiFamilyConvergenceModel model = FitOn(truth, 0.0, 29);
  ASSERT_TRUE(model.fitted());
  model.Reset();
  EXPECT_FALSE(model.fitted());
  EXPECT_EQ(model.num_samples(), 0u);
}

TEST_F(MultiFamilyTest, IgnoresInvalidSamples) {
  MultiFamilyConvergenceModel model;
  model.AddSample(1.0, -1.0);
  model.AddSample(2.0, std::nan(""));
  EXPECT_EQ(model.num_samples(), 0u);
}

}  // namespace
}  // namespace optimus
