#include <sstream>

#include <gtest/gtest.h>

#include "src/sim/trace.h"

namespace optimus {
namespace {

TEST(EventTraceTest, RecordsInOrder) {
  EventTrace trace;
  trace.Record(0.0, SimEventType::kArrival, 1);
  trace.Record(600.0, SimEventType::kScheduled, 1, 2, 3);
  trace.Record(1200.0, SimEventType::kCompleted, 1, 2, 3, "epochs=7");
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.events()[1].num_ps, 2);
  EXPECT_EQ(trace.events()[1].num_workers, 3);
  EXPECT_EQ(trace.events()[2].detail, "epochs=7");
}

TEST(EventTraceTest, ForJobFilters) {
  EventTrace trace;
  trace.Record(0.0, SimEventType::kArrival, 1);
  trace.Record(0.0, SimEventType::kArrival, 2);
  trace.Record(600.0, SimEventType::kScheduled, 1);
  const auto events = trace.ForJob(1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, SimEventType::kArrival);
  EXPECT_EQ(events[1].type, SimEventType::kScheduled);
}

TEST(EventTraceTest, CountByType) {
  EventTrace trace;
  trace.Record(0.0, SimEventType::kArrival, 1);
  trace.Record(0.0, SimEventType::kArrival, 2);
  trace.Record(600.0, SimEventType::kScaled, 1);
  const auto counts = trace.CountByType();
  EXPECT_EQ(counts.at(SimEventType::kArrival), 2);
  EXPECT_EQ(counts.at(SimEventType::kScaled), 1);
  EXPECT_EQ(counts.count(SimEventType::kCompleted), 0u);
}

TEST(EventTraceTest, CsvFormat) {
  EventTrace trace;
  trace.Record(600.0, SimEventType::kScheduled, 4, 2, 3, "first");
  std::ostringstream os;
  trace.WriteCsv(os);
  EXPECT_EQ(os.str(),
            "time_s,event,job,ps,workers,detail\n"
            "600,scheduled,4,2,3,first\n");
}

TEST(EventTraceTest, AllTypeNamesDistinct) {
  std::set<std::string> names;
  for (SimEventType type :
       {SimEventType::kArrival, SimEventType::kScheduled, SimEventType::kScaled,
        SimEventType::kPaused, SimEventType::kResumed,
        SimEventType::kStragglerReplaced, SimEventType::kLearningRateDrop,
        SimEventType::kCompleted}) {
    names.insert(SimEventTypeName(type));
  }
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace optimus
