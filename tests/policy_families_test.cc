// Policy-family tests: the batch decision surface, the sensitivity
// observation surface, the three non-Optimus policy families (goodput /
// synergy / dl2), and the registry's trait validation.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sched/dl2_allocator.h"
#include "src/sched/goodput_allocator.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/scheduler_registry.h"
#include "src/sched/synergy_allocator.h"
#include "src/sim/simulator.h"
#include "src/workload/scenario.h"

namespace optimus {
namespace {

std::string ScenarioPath(const std::string& name) {
  return std::string(OPTIMUS_SOURCE_DIR) + "/scenarios/" + name;
}

// ---------------------------------------------------------------------------
// Batch math (scheduler.h)
// ---------------------------------------------------------------------------

TEST(BatchMathTest, StatisticalEfficiencyIsOneAtReferenceAndDecays) {
  const double phi = 500.0;
  EXPECT_DOUBLE_EQ(StatisticalEfficiency(phi, 256.0, 256.0), 1.0);
  EXPECT_GT(StatisticalEfficiency(phi, 256.0, 64.0), 1.0);
  EXPECT_LT(StatisticalEfficiency(phi, 256.0, 1024.0), 1.0);
  // Monotone decreasing in b.
  double prev = StatisticalEfficiency(phi, 256.0, 32.0);
  for (double b = 64.0; b <= 4096.0; b *= 2.0) {
    const double e = StatisticalEfficiency(phi, 256.0, b);
    EXPECT_LT(e, prev) << "b=" << b;
    prev = e;
  }
  // Degenerate inputs fall back to 1.0 (no discount).
  EXPECT_DOUBLE_EQ(StatisticalEfficiency(phi, 0.0, 512.0), 1.0);
  EXPECT_DOUBLE_EQ(StatisticalEfficiency(phi, 256.0, 0.0), 1.0);
}

TEST(BatchMathTest, BatchProgressFactorIsExactlyOneAtReference) {
  for (const double phi : {0.0, 1.0, 250.0, 5000.0}) {
    for (const double ref : {32.0, 256.0, 1024.0}) {
      EXPECT_DOUBLE_EQ(BatchProgressFactor(phi, ref, ref), 1.0)
          << "phi=" << phi << " ref=" << ref;
    }
  }
}

TEST(BatchMathTest, BatchProgressFactorSaturatesAtNoiseScaleBound) {
  const double phi = 1000.0, ref = 256.0;
  const double bound = (phi + ref) / ref;
  double prev = BatchProgressFactor(phi, ref, 256.0);
  for (double b = 512.0; b <= 1 << 20; b *= 2.0) {
    const double f = BatchProgressFactor(phi, ref, b);
    EXPECT_GT(f, prev);
    EXPECT_LT(f, bound);
    prev = f;
  }
}

// ---------------------------------------------------------------------------
// Goodput allocator
// ---------------------------------------------------------------------------

SpeedEstimate ConcaveSpeed(double scale) {
  return [scale](int p, int w) {
    return scale * (1.0 - 1.0 / (1.0 + p)) * (1.0 - 1.0 / (1.0 + w));
  };
}

SchedJob FixedBatchJob(int id) {
  SchedJob job;
  job.job_id = id;
  job.worker_demand = Resources(2.5, 10, 0, 0.15);
  job.ps_demand = Resources(2.5, 10, 0, 0.15);
  job.max_ps = 8;
  job.max_workers = 8;
  job.remaining_epochs = 4.0 + id;
  job.speed = ConcaveSpeed(1.0 + (id % 3));
  return job;
}

TEST(GoodputAllocatorTest, BatchRungsLadderIsSortedAndBounded) {
  SchedJob job = FixedBatchJob(0);
  EXPECT_TRUE(GoodputAllocator::BatchRungs(job).empty());  // not adaptive

  job.batch_ref = 256;
  job.batch_min = 64;
  job.batch_max = 1024;
  job.grad_noise_scale = 500.0;
  job.batch_speed = [](int, int, int) { return 1.0; };
  const std::vector<int> rungs = GoodputAllocator::BatchRungs(job);
  EXPECT_EQ(rungs, (std::vector<int>{64, 128, 256, 512, 1024}));

  // max_rungs caps the doubling ladder but batch_max and the reference batch
  // always survive.
  const std::vector<int> capped = GoodputAllocator::BatchRungs(job, 3);
  EXPECT_EQ(capped, (std::vector<int>{64, 128, 256, 1024}));
}

TEST(GoodputAllocatorTest, MatchesOptimusOnFixedBatchWorkload) {
  std::vector<SchedJob> jobs;
  for (int j = 0; j < 6; ++j) {
    jobs.push_back(FixedBatchJob(j));
  }
  const Resources capacity(120, 1200, 0, 60);
  const AllocationMap want = OptimusAllocator().Allocate(jobs, capacity);
  const AllocationMap got = GoodputAllocator().Allocate(jobs, capacity);
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [id, alloc] : want) {
    const auto it = got.find(id);
    ASSERT_NE(it, got.end()) << "job " << id;
    EXPECT_EQ(alloc.num_ps, it->second.num_ps) << "job " << id;
    EXPECT_EQ(alloc.num_workers, it->second.num_workers) << "job " << id;
    EXPECT_EQ(it->second.global_batch, 0) << "job " << id;
  }
}

TEST(GoodputAllocatorTest, PicksTheArgmaxEffectiveBatch) {
  SchedJob job = FixedBatchJob(0);
  job.batch_ref = 256;
  job.batch_min = 64;
  job.batch_max = 1024;
  job.grad_noise_scale = 1000.0;
  // Physical steps/s decays mildly with b, so larger batches win on effective
  // progress until the statistical-efficiency decay overtakes.
  const SpeedEstimate base = job.speed;
  job.batch_speed = [base](int p, int w, int b) {
    return base(p, w) * 456.0 / (200.0 + b);
  };

  const Resources capacity(120, 1200, 0, 60);
  const AllocationMap got = GoodputAllocator().Allocate({job}, capacity);
  ASSERT_EQ(got.size(), 1u);
  const Allocation alloc = got.at(0);
  ASSERT_TRUE(ActiveAllocation(alloc, job.comm));
  EXPECT_NE(alloc.global_batch, 0);

  // Recompute the argmax over the same rungs the allocator used.
  int want_b = job.batch_ref;
  double want_s = 0.0;
  for (const int b : GoodputAllocator::BatchRungs(job)) {
    const double s = job.batch_speed(alloc.num_ps, alloc.num_workers, b) *
                     BatchProgressFactor(job.grad_noise_scale, job.batch_ref, b);
    if (s > want_s) {
      want_s = s;
      want_b = b;
    }
  }
  EXPECT_EQ(alloc.global_batch, want_b);
  EXPECT_GT(want_b, job.batch_ref);  // the workload was built so bigger wins
}

// ---------------------------------------------------------------------------
// Synergy allocator
// ---------------------------------------------------------------------------

TEST(SynergyAllocatorTest, DeflateDemandRespectsFloorAndLeavesGpusAlone) {
  const Resources demand(8, 40, 2, 0.5);
  const Resources same =
      SynergyAllocator::DeflateDemand(demand, 1.0, 1.0, 0.25);
  EXPECT_TRUE(same == demand);

  const Resources flat =
      SynergyAllocator::DeflateDemand(demand, 0.0, 0.0, 0.25);
  EXPECT_DOUBLE_EQ(flat.cpu(), 2.0);        // 8 * 0.25
  EXPECT_DOUBLE_EQ(flat.memory_gb(), 10.0);  // 40 * 0.25
  EXPECT_DOUBLE_EQ(flat.gpu(), 2.0);        // untouched
  EXPECT_DOUBLE_EQ(flat.bandwidth_gbps(), 0.5);

  const Resources half =
      SynergyAllocator::DeflateDemand(demand, 0.5, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(half.cpu(), 8.0 * (0.25 + 0.75 * 0.5));
  EXPECT_DOUBLE_EQ(half.memory_gb(), 40.0);
}

TEST(SynergyAllocatorTest, MatchesOptimusOnFullySensitiveJobs) {
  std::vector<SchedJob> jobs;
  for (int j = 0; j < 5; ++j) {
    jobs.push_back(FixedBatchJob(j));  // default 1.0 / 1.0 sensitivity
  }
  const Resources capacity(100, 1000, 0, 50);
  const AllocationMap want = OptimusAllocator().Allocate(jobs, capacity);
  const AllocationMap got = SynergyAllocator().Allocate(jobs, capacity);
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [id, alloc] : want) {
    EXPECT_TRUE(alloc == got.at(id)) << "job " << id;
  }
}

TEST(SynergyAllocatorTest, CpuInsensitiveJobPacksMoreUnderCpuPressure) {
  // CPU-dominant demand in a CPU-tight cluster: the fully sensitive job
  // saturates the CPU budget early, the insensitive one packs past it.
  SchedJob job = FixedBatchJob(0);
  job.worker_demand = Resources(10, 4, 0, 0.1);
  job.ps_demand = Resources(10, 4, 0, 0.1);
  const Resources capacity(60, 400, 0, 40);

  const AllocationMap sensitive = SynergyAllocator().Allocate({job}, capacity);
  job.cpu_sensitivity = 0.0;
  const AllocationMap insensitive =
      SynergyAllocator().Allocate({job}, capacity);
  ASSERT_EQ(sensitive.size(), 1u);
  ASSERT_EQ(insensitive.size(), 1u);
  const int tasks_sensitive =
      sensitive.at(0).num_ps + sensitive.at(0).num_workers;
  const int tasks_insensitive =
      insensitive.at(0).num_ps + insensitive.at(0).num_workers;
  EXPECT_GT(tasks_insensitive, tasks_sensitive);
}

// ---------------------------------------------------------------------------
// DL2 allocator
// ---------------------------------------------------------------------------

TEST(Dl2AllocatorTest, RegistryFactoryCarriesTheTrainedWeights) {
  const SchedulerPolicyInfo* info = SchedulerRegistry::Global().Find("dl2");
  ASSERT_NE(info, nullptr);
  const auto* factory =
      dynamic_cast<const Dl2PolicyFactory*>(info->factory.get());
  ASSERT_NE(factory, nullptr);
  EXPECT_EQ(factory->weights(), DefaultDl2Weights());
  // The trained policy is non-trivial: at least one non-bias weight.
  const Dl2Weights w = DefaultDl2Weights();
  double sum = 0.0;
  for (size_t k = 1; k < kDl2NumFeatures; ++k) {
    EXPECT_GE(w[k], 0.0);  // NNLS fit
    sum += w[k];
  }
  EXPECT_GT(sum, 0.0);
}

TEST(Dl2AllocatorTest, DeterministicAndWithinCapacity) {
  std::vector<SchedJob> jobs;
  for (int j = 0; j < 6; ++j) {
    jobs.push_back(FixedBatchJob(j));
  }
  const Resources capacity(50, 500, 0, 25);
  Dl2AllocatorOptions options;
  options.weights = DefaultDl2Weights();
  const Dl2Allocator allocator(options);
  const AllocationMap a = allocator.Allocate(jobs, capacity);
  const AllocationMap b = allocator.Allocate(jobs, capacity);
  ASSERT_EQ(a.size(), b.size());
  Resources used;
  for (const auto& [id, alloc] : a) {
    EXPECT_TRUE(alloc == b.at(id)) << "job " << id;
    used = used + AllocationDemand(jobs[static_cast<size_t>(id)], alloc);
  }
  EXPECT_TRUE(capacity.Fits(used));
}

// ---------------------------------------------------------------------------
// Registry trait validation
// ---------------------------------------------------------------------------

SchedulerPolicyInfo ValidInfo(const std::string& name) {
  SchedulerPolicyInfo info;
  info.name = name;
  info.SetFactory([](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
    return std::make_unique<OptimusAllocator>();
  });
  return info;
}

TEST(RegistryTraitsTest, RejectsPaaWithoutPackedPlacement) {
  SchedulerPolicyInfo info = ValidInfo("paa-loadbalance");
  info.placement = PlacementPolicy::kLoadBalance;
  info.traits.use_paa = true;
  std::string error;
  EXPECT_FALSE(SchedulerRegistry::Global().Register(std::move(info), &error));
  EXPECT_NE(error.find("policy 'paa-loadbalance'"), std::string::npos) << error;
  EXPECT_NE(error.find("use_paa"), std::string::npos) << error;
  EXPECT_FALSE(SchedulerRegistry::Global().Has("paa-loadbalance"));
}

TEST(RegistryTraitsTest, RejectsYoungJobFactorOutsideUnitInterval) {
  for (const double bad : {0.0, -0.5, 1.5}) {
    SchedulerPolicyInfo info = ValidInfo("bad-young-factor");
    info.traits.young_job_priority_factor = bad;
    std::string error;
    EXPECT_FALSE(SchedulerRegistry::Global().Register(std::move(info), &error))
        << bad;
    EXPECT_NE(error.find("young_job_priority_factor"), std::string::npos)
        << error;
  }
  EXPECT_FALSE(SchedulerRegistry::Global().Has("bad-young-factor"));
}

TEST(RegistryTraitsTest, DuplicateAndNullFactoryErrorsNameThePolicy) {
  std::string error;
  EXPECT_FALSE(
      SchedulerRegistry::Global().Register(ValidInfo("optimus"), &error));
  EXPECT_NE(error.find("policy 'optimus'"), std::string::npos) << error;
  EXPECT_NE(error.find("already registered"), std::string::npos) << error;

  SchedulerPolicyInfo no_factory;
  no_factory.name = "null-factory";
  EXPECT_FALSE(
      SchedulerRegistry::Global().Register(std::move(no_factory), &error));
  EXPECT_NE(error.find("factory"), std::string::npos) << error;
}

TEST(RegistryTraitsTest, NewPolicyTraitsMatchTheirFamilies) {
  const SchedulerPolicyInfo* goodput =
      SchedulerRegistry::Global().Find("goodput");
  ASSERT_NE(goodput, nullptr);
  EXPECT_TRUE(goodput->traits.adapts_batch);
  EXPECT_FALSE(goodput->traits.uses_sensitivity);

  const SchedulerPolicyInfo* synergy =
      SchedulerRegistry::Global().Find("synergy");
  ASSERT_NE(synergy, nullptr);
  EXPECT_TRUE(synergy->traits.uses_sensitivity);
  EXPECT_FALSE(synergy->traits.adapts_batch);

  // No fixed-batch builtin claims the batch knob.
  for (const char* name : {"optimus", "optimus_rack", "drf", "tetris", "fifo",
                           "srtf", "dl2"}) {
    const SchedulerPolicyInfo* info = SchedulerRegistry::Global().Find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(info->traits.adapts_batch) << name;
  }
}

// ---------------------------------------------------------------------------
// Workload DSL: batch bounds and sensitivity profiles
// ---------------------------------------------------------------------------

constexpr char kProfiledScenario[] = R"({
  "schema": "scenario-v1",
  "name": "profiled",
  "seed": 5,
  "policies": ["goodput"],
  "workload": {
    "jobs": 4,
    "mode": "sync",
    "batch_min": 64,
    "batch_max": 2048,
    "cpu_sensitivity": 0.3,
    "mem_sensitivity": 0.8
  },
  "cluster": {"testbed": true}
})";

TEST(WorkloadDslTest, BatchAndSensitivityKeysReachEveryJobSpec) {
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(ParseScenario(kProfiledScenario, "t", &spec, &error)) << error;
  const std::vector<JobSpec> jobs = spec.JobsForRepeat();
  ASSERT_EQ(jobs.size(), 4u);
  for (const JobSpec& job : jobs) {
    EXPECT_EQ(job.batch_min, 64);
    EXPECT_EQ(job.batch_max, 2048);
    EXPECT_DOUBLE_EQ(job.cpu_sensitivity, 0.3);
    EXPECT_DOUBLE_EQ(job.mem_sensitivity, 0.8);
    EXPECT_EQ(job.BatchMin(), 64);
    EXPECT_EQ(job.BatchMax(), 2048);
    EXPECT_DOUBLE_EQ(job.CpuSensitivity(), 0.3);
    EXPECT_DOUBLE_EQ(job.MemSensitivity(), 0.8);
  }
}

TEST(WorkloadDslTest, ProfiledWorkloadDrawsTheSameJobsAsUnprofiled) {
  // The new keys must not consume RNG draws: the generated arrival times and
  // models are bit-identical with and without them.
  ScenarioSpec with_profile;
  std::string error;
  ASSERT_TRUE(ParseScenario(kProfiledScenario, "t", &with_profile, &error))
      << error;
  ScenarioSpec plain = with_profile;
  plain.workload.batch_min = 0;
  plain.workload.batch_max = 0;
  plain.workload.cpu_sensitivity = -1.0;
  plain.workload.mem_sensitivity = -1.0;
  const std::vector<JobSpec> a = with_profile.JobsForRepeat();
  const std::vector<JobSpec> b = plain.JobsForRepeat();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_time_s, b[i].arrival_time_s);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].dataset_scale, b[i].dataset_scale);
  }
}

TEST(WorkloadDslTest, RejectsInvalidProfiles) {
  const struct {
    const char* json;
    const char* want;
  } cases[] = {
      {R"({"schema": "scenario-v1", "name": "x", "policies": ["optimus"],
           "workload": {"jobs": 2, "cpu_sensitivity": 1.5},
           "cluster": {"testbed": true}})",
       "cpu_sensitivity"},
      {R"({"schema": "scenario-v1", "name": "x", "policies": ["optimus"],
           "workload": {"jobs": 2, "batch_min": 512, "batch_max": 128},
           "cluster": {"testbed": true}})",
       "batch"},
  };
  for (const auto& c : cases) {
    ScenarioSpec spec;
    std::string error;
    EXPECT_FALSE(ParseScenario(c.json, "t", &spec, &error));
    EXPECT_NE(error.find(c.want), std::string::npos) << error;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: new-policy determinism and batch-knob bit-compat
// ---------------------------------------------------------------------------

struct RunOutputs {
  RunMetrics metrics;
  uint64_t trace_digest = 0;
  size_t trace_records = 0;
};

RunOutputs RunPolicy(const ScenarioSpec& scenario, const std::string& policy,
                     SimEngine engine, int shards, int threads) {
  SimulatorConfig config = scenario.MakeSimConfig(policy);
  config.engine = engine;
  config.shards = shards;
  config.threads = threads;
  config.audit = true;
  Simulator sim(config, scenario.cluster.Build(), scenario.JobsForRepeat());
  RunOutputs out;
  out.metrics = sim.Run();
  out.trace_digest = sim.trace().digest();
  out.trace_records = sim.trace().size();
  return out;
}

void ExpectBitwiseEqual(const RunOutputs& a, const RunOutputs& b,
                        const std::string& label) {
  EXPECT_EQ(a.metrics.completed_jobs, b.metrics.completed_jobs) << label;
  EXPECT_EQ(a.metrics.jcts, b.metrics.jcts) << label;
  EXPECT_EQ(a.metrics.makespan_s, b.metrics.makespan_s) << label;
  EXPECT_EQ(a.metrics.total_scalings, b.metrics.total_scalings) << label;
  EXPECT_EQ(a.metrics.events_processed, b.metrics.events_processed) << label;
  EXPECT_EQ(a.metrics.audit_violations, b.metrics.audit_violations) << label;
  EXPECT_EQ(a.trace_digest, b.trace_digest) << label;
  EXPECT_EQ(a.trace_records, b.trace_records) << label;
}

TEST(PolicyFamiliesEndToEndTest, NewPoliciesAreShardAndThreadInvariant) {
  ScenarioSpec scenario;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(ScenarioPath("batch_adaptive.json"), &scenario,
                               &error))
      << error;
  for (const char* policy : {"goodput", "synergy", "dl2"}) {
    for (const SimEngine engine : {SimEngine::kInterval, SimEngine::kEvents}) {
      const RunOutputs reference = RunPolicy(scenario, policy, engine, 1, 1);
      EXPECT_EQ(reference.metrics.audit_violations, 0)
          << policy << " " << SimEngineName(engine);
      EXPECT_GT(reference.metrics.completed_jobs, 0);
      for (const auto& [shards, threads] :
           std::vector<std::pair<int, int>>{{2, 2}, {4, 8}}) {
        ExpectBitwiseEqual(
            RunPolicy(scenario, policy, engine, shards, threads), reference,
            std::string(policy) + " " + SimEngineName(engine) + " shards=" +
                std::to_string(shards) + " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(PolicyFamiliesEndToEndTest, GoodputWithPinnedBatchMatchesOptimus) {
  // batch_min == batch_max pins the batch (disables adaptivity), so goodput
  // must reproduce plain optimus bit for bit — the batch knob unset/pinned
  // path is the pre-existing behavior.
  ScenarioSpec scenario;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(ScenarioPath("batch_adaptive.json"), &scenario,
                               &error))
      << error;
  scenario.workload.batch_min = 256;
  scenario.workload.batch_max = 256;
  for (const SimEngine engine : {SimEngine::kInterval, SimEngine::kEvents}) {
    ExpectBitwiseEqual(RunPolicy(scenario, "goodput", engine, 1, 1),
                       RunPolicy(scenario, "optimus", engine, 1, 1),
                       std::string("pinned-batch ") + SimEngineName(engine));
  }
}

TEST(PolicyFamiliesEndToEndTest, GoodputAdaptsBatchesAndBeatsOptimusHere) {
  // The committed batch_adaptive scenario is the acceptance workload: batch
  // co-adaptation must actually engage (overrides in the trace) and win.
  ScenarioSpec scenario;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(ScenarioPath("batch_adaptive.json"), &scenario,
                               &error))
      << error;
  const RunOutputs optimus =
      RunPolicy(scenario, "optimus", SimEngine::kInterval, 1, 1);
  const RunOutputs goodput =
      RunPolicy(scenario, "goodput", SimEngine::kInterval, 1, 1);
  ASSERT_EQ(optimus.metrics.completed_jobs, goodput.metrics.completed_jobs);
  EXPECT_LT(goodput.metrics.avg_jct_s, optimus.metrics.avg_jct_s);
}

}  // namespace
}  // namespace optimus
