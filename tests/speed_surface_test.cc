// Memoized speed surfaces (src/sched/speed_surface.h): memoization
// correctness, pass-through mode, signature sharing, and the guarantee that
// surface-backed allocation is bit-identical to direct-probe allocation for
// every allocator.

#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sched/baseline_allocators.h"
#include "src/sched/exhaustive_allocator.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/scheduler.h"
#include "src/sched/speed_surface.h"
#include "src/sched/what_if.h"

namespace optimus {
namespace {

// Concave speed improving in both p and w with diminishing returns.
SpeedEstimate ConcaveSpeed(double scale = 1.0) {
  return [scale](int p, int w) {
    const double t = 4.0 / w + 1.0 + 0.8 * w / p + 0.05 * w + 0.05 * p;
    return scale / t;
  };
}

// Wraps `fn` so every underlying evaluation bumps *counter.
SpeedEstimate Counted(SpeedEstimate fn, std::shared_ptr<int> counter) {
  return [fn = std::move(fn), counter](int p, int w) {
    ++*counter;
    return fn(p, w);
  };
}

SchedJob MakeJob(int id, double remaining_epochs, SpeedEstimate speed,
                 double cpu_per_task = 5.0) {
  SchedJob job;
  job.job_id = id;
  job.worker_demand = Resources(cpu_per_task, 10, 0, 0.2);
  job.ps_demand = Resources(cpu_per_task, 10, 0, 0.2);
  job.remaining_epochs = remaining_epochs;
  job.speed = std::move(speed);
  job.max_ps = 16;
  job.max_workers = 16;
  return job;
}

Resources Capacity(double cpu) { return Resources(cpu, 10000, 0, 1000); }

// ---------------------------------------------------------------------------
// SpeedSurface
// ---------------------------------------------------------------------------

TEST(SpeedSurfaceTest, MemoizesWithoutChangingValues) {
  auto evals = std::make_shared<int>(0);
  SpeedSurface surface(Counted(ConcaveSpeed(), evals), 8, 8);
  const SpeedEstimate direct = ConcaveSpeed();

  for (int round = 0; round < 3; ++round) {
    for (int p = 1; p <= 8; ++p) {
      for (int w = 1; w <= 8; ++w) {
        EXPECT_DOUBLE_EQ(surface.Speed(p, w), direct(p, w));
      }
    }
  }
  // 64 grid points evaluated once each, despite 192 probes.
  EXPECT_EQ(*evals, 64);
  EXPECT_EQ(surface.probes(), 192);
  EXPECT_EQ(surface.evals(), 64);
}

TEST(SpeedSurfaceTest, OutOfGridProbesFallThrough) {
  auto evals = std::make_shared<int>(0);
  SpeedSurface surface(Counted(ConcaveSpeed(), evals), 4, 4);

  EXPECT_DOUBLE_EQ(surface.Speed(5, 2), ConcaveSpeed()(5, 2));
  EXPECT_DOUBLE_EQ(surface.Speed(5, 2), ConcaveSpeed()(5, 2));
  EXPECT_EQ(*evals, 2);  // outside the grid: re-evaluated every time
  EXPECT_EQ(surface.probes(), 2);
  EXPECT_EQ(surface.evals(), 2);
}

TEST(SpeedSurfaceTest, DisabledCacheReEvaluatesEveryProbe) {
  auto evals = std::make_shared<int>(0);
  SpeedSurface surface(Counted(ConcaveSpeed(), evals), 8, 8,
                       /*cache_enabled=*/false);
  for (int i = 0; i < 5; ++i) {
    surface.Speed(2, 3);
  }
  EXPECT_EQ(*evals, 5);
  EXPECT_EQ(surface.probes(), surface.evals());
}

// ---------------------------------------------------------------------------
// SpeedSurfaceSet
// ---------------------------------------------------------------------------

TEST(SpeedSurfaceSetTest, SharesSurfacesBySignature) {
  SpeedSurfaceSet set;
  SchedJob a = MakeJob(0, 10.0, ConcaveSpeed());
  SchedJob b = MakeJob(1, 20.0, ConcaveSpeed());
  SchedJob c = MakeJob(2, 30.0, ConcaveSpeed());
  a.speed_signature = 7;
  b.speed_signature = 7;
  c.speed_signature = 8;

  SpeedSurface* sa = set.Surface(a);
  EXPECT_EQ(set.Surface(b), sa);      // same signature, same caps
  EXPECT_NE(set.Surface(c), sa);      // different signature
  EXPECT_EQ(set.Surface(a), sa);      // stable per job
  EXPECT_EQ(set.num_surfaces(), 2u);
}

TEST(SpeedSurfaceSetTest, SignatureZeroMeansNoSharing) {
  SpeedSurfaceSet set;
  const SchedJob a = MakeJob(0, 10.0, ConcaveSpeed());
  const SchedJob b = MakeJob(1, 20.0, ConcaveSpeed());
  ASSERT_EQ(a.speed_signature, 0u);
  EXPECT_NE(set.Surface(a), set.Surface(b));
  EXPECT_EQ(set.num_surfaces(), 2u);
}

TEST(SpeedSurfaceSetTest, SameSignatureDifferentCapsNotShared) {
  SpeedSurfaceSet set;
  SchedJob a = MakeJob(0, 10.0, ConcaveSpeed());
  SchedJob b = MakeJob(1, 20.0, ConcaveSpeed());
  a.speed_signature = 7;
  b.speed_signature = 7;
  b.max_workers = 8;
  EXPECT_NE(set.Surface(a), set.Surface(b));
}

// ---------------------------------------------------------------------------
// Allocators through surfaces
// ---------------------------------------------------------------------------

// The headline guarantee: a full greedy round through a surface performs
// strictly fewer underlying speed-model evaluations than probe calls.
TEST(SpeedSurfaceSetTest, OptimusRoundEvaluatesFewerPointsThanItProbes) {
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, ConcaveSpeed()),
                                MakeJob(1, 25.0, ConcaveSpeed(2.0)),
                                MakeJob(2, 40.0, ConcaveSpeed(0.5))};
  SpeedSurfaceSet surfaces;
  OptimusAllocator().Allocate(jobs, Capacity(200), &surfaces);
  EXPECT_GT(surfaces.probes(), 0);
  EXPECT_LT(surfaces.evals(), surfaces.probes());
  EXPECT_GT(surfaces.hit_rate(), 0.0);
}

TEST(SpeedSurfaceSetTest, DisabledSetCountsButNeverCaches) {
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, ConcaveSpeed()),
                                MakeJob(1, 25.0, ConcaveSpeed(2.0))};
  SpeedSurfaceSet surfaces(/*cache_enabled=*/false);
  OptimusAllocator().Allocate(jobs, Capacity(120), &surfaces);
  EXPECT_GT(surfaces.probes(), 0);
  EXPECT_EQ(surfaces.evals(), surfaces.probes());
  EXPECT_EQ(surfaces.hit_rate(), 0.0);
}

// Surface-backed allocation must be bit-identical to direct probing for every
// allocator: the cache may never change a scheduling decision.
TEST(SpeedSurfaceSetTest, CachedAllocationMatchesDirectProbing) {
  Rng rng(424);
  const OptimusAllocator optimus;
  const DrfAllocator drf;
  const TetrisAllocator tetris;
  const FifoAllocator fifo;
  const std::vector<const Allocator*> allocators = {&optimus, &drf, &tetris, &fifo};

  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.Split(trial);
    std::vector<SchedJob> jobs;
    const int n = static_cast<int>(trial_rng.UniformInt(1, 8));
    for (int i = 0; i < n; ++i) {
      const double scale = trial_rng.Uniform(0.5, 3.0);
      jobs.push_back(MakeJob(i, trial_rng.Uniform(1.0, 50.0), ConcaveSpeed(scale),
                             trial_rng.Uniform(1.0, 6.0)));
    }
    // Half the trials exercise signature sharing; a signature may only be
    // shared between pointwise-identical speed functions.
    if (trial % 2 == 0) {
      for (SchedJob& job : jobs) {
        job.speed = ConcaveSpeed(1.5);
        job.speed_signature = 1;
      }
    }
    const Resources capacity(trial_rng.Uniform(20, 200), 10000, 0, 1000);

    for (const Allocator* allocator : allocators) {
      SpeedSurfaceSet cached(true);
      SpeedSurfaceSet direct(false);
      const AllocationMap with_cache = allocator->Allocate(jobs, capacity, &cached);
      const AllocationMap without = allocator->Allocate(jobs, capacity, &direct);
      ASSERT_EQ(with_cache.size(), without.size()) << allocator->name();
      for (const auto& [id, alloc] : with_cache) {
        const auto it = without.find(id);
        ASSERT_NE(it, without.end()) << allocator->name();
        EXPECT_EQ(alloc.num_ps, it->second.num_ps) << allocator->name();
        EXPECT_EQ(alloc.num_workers, it->second.num_workers) << allocator->name();
      }
    }
  }
}

TEST(SpeedSurfaceSetTest, ExhaustiveAllocatorMatchesDirectProbing) {
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, ConcaveSpeed()),
                                MakeJob(1, 25.0, ConcaveSpeed(2.0))};
  for (SchedJob& job : jobs) {
    job.max_ps = 3;
    job.max_workers = 3;
  }
  SpeedSurfaceSet cached(true);
  SpeedSurfaceSet direct(false);
  const ExhaustiveAllocator exhaustive;
  const AllocationMap with_cache = exhaustive.Allocate(jobs, Capacity(25), &cached);
  const AllocationMap without = exhaustive.Allocate(jobs, Capacity(25), &direct);
  EXPECT_LT(cached.evals(), cached.probes());
  ASSERT_EQ(with_cache.size(), without.size());
  for (const auto& [id, alloc] : with_cache) {
    EXPECT_EQ(alloc.num_ps, without.at(id).num_ps);
    EXPECT_EQ(alloc.num_workers, without.at(id).num_workers);
  }
}

// What-if admission runs two allocations plus completion-time passes over
// one shared surface set; sharing must not change the verdict.
TEST(WhatIfSurfaceTest, AdmissionUnchangedBySurfaceSharing) {
  std::vector<SchedJob> existing = {MakeJob(0, 10.0, ConcaveSpeed()),
                                    MakeJob(1, 25.0, ConcaveSpeed(2.0))};
  const SchedJob candidate = MakeJob(7, 15.0, ConcaveSpeed(1.2));
  const OptimusAllocator allocator;

  const WhatIfResult result =
      EvaluateAdmission(allocator, existing, candidate, Capacity(80));
  EXPECT_TRUE(result.admitted);
  EXPECT_GT(result.new_job_completion_s, 0.0);
  // The candidate's completion estimate must agree with its own (uncached)
  // speed function at the granted allocation.
  const double speed = candidate.speed(result.new_job_alloc.num_ps,
                                       result.new_job_alloc.num_workers);
  EXPECT_NEAR(result.new_job_completion_s, candidate.remaining_epochs / speed, 1e-9);
}

}  // namespace
}  // namespace optimus
