// Golden-session and determinism tests for the online service mode.
//
// The service's core contract (docs/SERVICE.md): for a fixed request log the
// response stream is a pure function of (genesis scenario, request bytes) —
// no wall-clock values, no thread-count sensitivity, no engine-internal
// ordering leaks. These tests pin that contract four ways:
//
//   1. A committed golden session (tests/golden/serve/) replays byte for
//      byte across --threads {1, 2, 8}, including its error responses.
//   2. The events engine is exact across thread counts; interval vs events
//      agree on average JCT within the ALGORITHMS.md §16 tolerance.
//   3. snapshot/restore round-trips: a session restored from a snapshot
//      produces a bitwise-identical remainder-of-run.
//   4. Batch equivalence: a replayed session's final run report matches an
//      equivalent direct Simulator batch run, and chunked AdvanceTo stepping
//      lands on the same report as one uninterrupted Run().
//
// Regenerating the goldens after an INTENDED protocol/behavior change:
//
//   OPTIMUS_REGEN_GOLDEN=1 ./build/tests/service_replay_test
//
// then commit tests/golden/serve/*.ndjson with the change that moved them.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json_writer.h"
#include "src/obs/exporters.h"
#include "src/service/replay.h"
#include "src/service/session.h"
#include "src/sim/simulator.h"
#include "src/workload/scenario.h"

#ifndef OPTIMUS_SOURCE_DIR
#error "OPTIMUS_SOURCE_DIR must be defined to locate the golden files"
#endif

namespace optimus {
namespace {

constexpr char kGoldenDir[] = OPTIMUS_SOURCE_DIR "/tests/golden/serve";

std::string ScenarioPath() { return std::string(kGoldenDir) + "/scenario.json"; }
std::string RequestsPath() { return std::string(kGoldenDir) + "/basic.requests.ndjson"; }
std::string ResponsesPath() { return std::string(kGoldenDir) + "/basic.responses.ndjson"; }
std::string SmokePath() { return std::string(kGoldenDir) + "/smoke.requests.ndjson"; }

// The committed basic session: every op, both metric formats, a snapshot
// mid-stream, and three deliberately bad lines so the golden also pins the
// positioned-error response format.
const char kBasicRequests[] =
    R"({"op": "metrics_snapshot"})" "\n"
    R"({"op": "what_if", "model": "ResNet-50", "mode": "sync"})" "\n"
    R"({"op": "advance", "to_s": 900.0})" "\n"
    R"({"op": "submit", "model": "Seq2Seq", "job_id": 100, "arrival_s": 1200.0})" "\n"
    R"({"op": "what_if", "model": "Inception-BN", "max_workers": 4})" "\n"
    "# comments and blank lines are skipped, not answered\n"
    "\n"
    R"({"op": "advance", "dt_s": 600.0})" "\n"
    R"({"op": "submit", "model": "ResNet-50", "job_id": 101, "arrival_s": 2000.0, "mode": "async"})" "\n"
    R"({"op": "kill", "job_id": 100})" "\n"
    R"({"op": "snapshot"})" "\n"
    R"({"op": "metrics_snapshot", "format": "prom", "scope": "service"})" "\n"
    R"({"op": "submit", "model": "NoSuchNet"})" "\n"
    R"({"op": "bogus_op"})" "\n"
    R"({"op": "advance", "to_s": 1.0, "to_s": 2.0})" "\n"
    R"({"op": "run"})" "\n"
    R"({"op": "metrics_snapshot"})" "\n"
    R"({"op": "shutdown"})" "\n";

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path
                         << " — run with OPTIMUS_REGEN_GOLDEN=1 to create it";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  ASSERT_TRUE(os.good()) << "cannot write " << path;
  os << content;
}

std::unique_ptr<ServiceSession> MakeSession(const SessionOverrides& overrides) {
  std::string error;
  std::unique_ptr<ServiceSession> session = ServiceSession::Create(
      ReadFileOrDie(ScenarioPath()), "scenario.json", overrides, &error);
  EXPECT_NE(session, nullptr) << error;
  return session;
}

struct ReplayOutput {
  std::string responses;
  ReplayResult result;
};

ReplayOutput Replay(ServiceSession* session, const std::string& log) {
  std::istringstream in(log);
  std::ostringstream out;
  ReplayOutput r;
  r.result = RunReplay(session, in, out);
  r.responses = out.str();
  return r;
}

// The deterministic final-state fingerprint: the full simulator run report
// (metrics, per-interval series, flight recorder) with profiling excluded.
std::string SimReport(Simulator* sim) {
  ExportOptions options;
  options.include_profiling = false;
  return ExportJsonReportString(sim->registry(), &sim->series(),
                                &sim->flight_recorder(), options);
}

TEST(ServiceReplayTest, GoldenSessionByteForByteAcrossThreads) {
  SessionOverrides overrides;
  overrides.threads = 1;
  std::unique_ptr<ServiceSession> session = MakeSession(overrides);
  ASSERT_NE(session, nullptr);
  const ReplayOutput base = Replay(session.get(), kBasicRequests);
  EXPECT_TRUE(base.result.shutdown);
  EXPECT_EQ(base.result.exit_code, 0);
  EXPECT_EQ(base.result.errors, 3);  // the three deliberately bad lines

  if (std::getenv("OPTIMUS_REGEN_GOLDEN") != nullptr) {
    WriteFileOrDie(RequestsPath(), kBasicRequests);
    WriteFileOrDie(ResponsesPath(), base.responses);
    GTEST_SKIP() << "regenerated " << RequestsPath() << " and "
                 << ResponsesPath();
  }

  // The committed request log is the embedded one (it is also what check.sh
  // and external replays consume), and the committed responses match.
  EXPECT_EQ(ReadFileOrDie(RequestsPath()), kBasicRequests)
      << "basic.requests.ndjson drifted from the test's embedded log; "
         "regenerate with OPTIMUS_REGEN_GOLDEN=1";
  EXPECT_EQ(base.responses, ReadFileOrDie(ResponsesPath()))
      << "responses drifted from the committed golden; if intended, "
         "regenerate with OPTIMUS_REGEN_GOLDEN=1 and commit";

  // Bitwise identity across thread counts — responses AND final report.
  const std::string base_report = SimReport(&session->simulator());
  for (const int threads : {2, 8}) {
    SessionOverrides t_overrides;
    t_overrides.threads = threads;
    std::unique_ptr<ServiceSession> t_session = MakeSession(t_overrides);
    ASSERT_NE(t_session, nullptr);
    const ReplayOutput out = Replay(t_session.get(), kBasicRequests);
    EXPECT_EQ(out.responses, base.responses) << "threads=" << threads;
    EXPECT_EQ(SimReport(&t_session->simulator()), base_report)
        << "threads=" << threads;
  }
}

TEST(ServiceReplayTest, SyntheticSmokeLogMatchesCommittedFixture) {
  // The 200-request smoke log CI pipes through the daemon: 198 generated
  // requests plus a metrics epilogue and shutdown. Committed so shell-level
  // smoke tests need no generator binary; this test keeps it in sync.
  std::ostringstream log;
  GenerateSyntheticRequests(198, /*seed=*/21, SyntheticMixOptions{}, log);
  log << R"({"op": "metrics_snapshot", "format": "prom", "scope": "service"})"
      << "\n"
      << R"({"op": "shutdown"})" << "\n";

  if (std::getenv("OPTIMUS_REGEN_GOLDEN") != nullptr) {
    WriteFileOrDie(SmokePath(), log.str());
    GTEST_SKIP() << "regenerated " << SmokePath();
  }
  EXPECT_EQ(ReadFileOrDie(SmokePath()), log.str())
      << "smoke.requests.ndjson drifted from the generator; regenerate with "
         "OPTIMUS_REGEN_GOLDEN=1";

  // And it replays cleanly: every request answered ok, auditor quiet.
  std::unique_ptr<ServiceSession> session = MakeSession(SessionOverrides{});
  ASSERT_NE(session, nullptr);
  const ReplayOutput out = Replay(session.get(), log.str());
  EXPECT_EQ(out.result.requests, 200);
  EXPECT_EQ(out.result.errors, 0);
  EXPECT_TRUE(out.result.shutdown);
  EXPECT_EQ(out.result.exit_code, 0);
}

TEST(ServiceReplayTest, EventsEngineExactAcrossThreads) {
  std::string base_responses, base_report;
  for (const int threads : {1, 8}) {
    SessionOverrides overrides;
    overrides.engine = SimEngine::kEvents;
    overrides.threads = threads;
    std::unique_ptr<ServiceSession> session = MakeSession(overrides);
    ASSERT_NE(session, nullptr);
    const ReplayOutput out = Replay(session.get(), kBasicRequests);
    EXPECT_EQ(out.result.exit_code, 0);
    const std::string report = SimReport(&session->simulator());
    if (threads == 1) {
      base_responses = out.responses;
      base_report = report;
    } else {
      EXPECT_EQ(out.responses, base_responses) << "threads=" << threads;
      EXPECT_EQ(report, base_report) << "threads=" << threads;
    }
  }
}

TEST(ServiceReplayTest, CrossEngineAgreementWithinTolerance) {
  // The §16 parity contract carried over to service mode: the same online
  // session (submits, a kill, advances, then run-to-completion) lands both
  // engines within the documented JCT tolerance.
  constexpr double kJctTolerance = 0.15;  // docs/ALGORITHMS.md section 16
  double avg_jct[2] = {0.0, 0.0};
  int64_t completed[2] = {0, 0};
  int i = 0;
  for (const SimEngine engine : {SimEngine::kInterval, SimEngine::kEvents}) {
    SessionOverrides overrides;
    overrides.engine = engine;
    std::unique_ptr<ServiceSession> session = MakeSession(overrides);
    ASSERT_NE(session, nullptr);
    const ReplayOutput out = Replay(session.get(), kBasicRequests);
    EXPECT_EQ(out.result.exit_code, 0);
    const RunMetrics& m = session->simulator().metrics();
    avg_jct[i] = m.avg_jct_s;
    completed[i] = m.completed_jobs;
    ++i;
  }
  EXPECT_EQ(completed[0], completed[1]);
  ASSERT_GT(avg_jct[0], 0.0);
  const double rel = std::abs(avg_jct[0] - avg_jct[1]) / avg_jct[0];
  EXPECT_LE(rel, kJctTolerance)
      << "interval avg_jct=" << avg_jct[0] << " events avg_jct=" << avg_jct[1];
}

TEST(ServiceReplayTest, SnapshotRestoreBitwiseRemainderOfRun) {
  // Drive a prefix on session A, snapshot it, restore a fresh session B from
  // the snapshot (through the protocol, as a real client would), then run
  // the identical suffix on both: responses and final reports must match
  // byte for byte.
  const std::string prefix =
      R"({"op": "advance", "to_s": 900.0})" "\n"
      R"({"op": "submit", "model": "Seq2Seq", "job_id": 100, "arrival_s": 1200.0})" "\n"
      R"({"op": "advance", "dt_s": 600.0})" "\n";
  // Explicit ids: the two sessions' request sequence numbers differ (A
  // served the prefix, B served one restore), and default ids echo the
  // sequence — the determinism contract is over request bytes, ids included.
  const std::string suffix =
      R"({"op": "what_if", "id": 901, "model": "ResNet-50"})" "\n"
      R"({"op": "advance", "id": 902, "dt_s": 900.0})" "\n"
      R"({"op": "run", "id": 903})" "\n"
      R"({"op": "metrics_snapshot", "id": 904})" "\n";

  std::unique_ptr<ServiceSession> a = MakeSession(SessionOverrides{});
  ASSERT_NE(a, nullptr);
  Replay(a.get(), prefix);

  // Build the restore request from the session's snapshot state — the same
  // pair the `snapshot` op returns.
  JsonObject restore;
  restore.Set("op", "restore");
  restore.Set("genesis", a->genesis_text());
  restore.Set("journal", a->journal());
  EXPECT_EQ(a->journal().size(), 3u);  // the three mutating prefix lines

  std::unique_ptr<ServiceSession> b = MakeSession(SessionOverrides{});
  ASSERT_NE(b, nullptr);
  bool shutdown = false;
  const std::string restore_resp =
      b->HandleLine(restore.ToCompactString(), &shutdown);
  EXPECT_NE(restore_resp.find("\"ok\":true"), std::string::npos)
      << restore_resp;
  EXPECT_EQ(b->simulator().now_s(), a->simulator().now_s());

  const ReplayOutput rest_a = Replay(a.get(), suffix);
  const ReplayOutput rest_b = Replay(b.get(), suffix);
  EXPECT_EQ(rest_a.responses, rest_b.responses);
  EXPECT_EQ(rest_a.result.errors, 0);
  EXPECT_EQ(SimReport(&a->simulator()), SimReport(&b->simulator()));
}

TEST(ServiceReplayTest, ReplayedRunMatchesBatchSimulatorRun) {
  // A session that only advances and runs — no online mutations — must land
  // on the exact report a direct batch Simulator over the same scenario
  // produces, chunked stepping and all.
  std::unique_ptr<ServiceSession> session = MakeSession(SessionOverrides{});
  ASSERT_NE(session, nullptr);
  const std::string log =
      R"({"op": "advance", "to_s": 1000.0})" "\n"
      R"({"op": "advance", "dt_s": 1500.0})" "\n"
      R"({"op": "run"})" "\n";
  const ReplayOutput out = Replay(session.get(), log);
  EXPECT_EQ(out.result.errors, 0);

  ScenarioSpec scenario;
  std::string error;
  ASSERT_TRUE(ParseScenario(ReadFileOrDie(ScenarioPath()), "scenario.json",
                            &scenario, &error))
      << error;
  scenario.sim.obs.per_interval_series = true;  // mirror the session's config
  Simulator batch(scenario.MakeSimConfig(scenario.policies[0], 0),
                  scenario.cluster.Build(), scenario.JobsForRepeat(0));
  batch.Run();

  EXPECT_EQ(SimReport(&session->simulator()), SimReport(&batch))
      << "service-mode chunked run drifted from the batch simulator";
}

}  // namespace
}  // namespace optimus
