#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace optimus {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, KeyEqualsValue) {
  FlagParser flags = Parse({"--jobs=12", "--scheduler=drf"});
  EXPECT_EQ(flags.GetInt("jobs", 0), 12);
  EXPECT_EQ(flags.GetString("scheduler", ""), "drf");
}

TEST(FlagParserTest, KeySpaceValue) {
  FlagParser flags = Parse({"--jobs", "7"});
  EXPECT_EQ(flags.GetInt("jobs", 0), 7);
}

TEST(FlagParserTest, BareBooleanAndNegation) {
  FlagParser flags = Parse({"--oracle", "--no-timeline"});
  EXPECT_TRUE(flags.GetBool("oracle", false));
  EXPECT_FALSE(flags.GetBool("timeline", true));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetInt("jobs", 9), 9);
  EXPECT_EQ(flags.GetString("scheduler", "optimus"), "optimus");
  EXPECT_DOUBLE_EQ(flags.GetDouble("interval", 600.0), 600.0);
  EXPECT_TRUE(flags.GetBool("paa", true));
  EXPECT_FALSE(flags.Has("jobs"));
}

TEST(FlagParserTest, DoubleParsing) {
  FlagParser flags = Parse({"--share=0.25"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("share", 0.0), 0.25);
}

TEST(FlagParserTest, PositionalArgumentsKept) {
  FlagParser flags = Parse({"run", "--jobs=3", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagParserTest, UnconsumedKeysDetected) {
  FlagParser flags = Parse({"--jobs=3", "--typo=1"});
  EXPECT_EQ(flags.GetInt("jobs", 0), 3);
  const auto unknown = flags.UnconsumedKeys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagParserTest, BooleanLiteralForms) {
  EXPECT_TRUE(Parse({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=yes"}).GetBool("x", false));
  EXPECT_FALSE(Parse({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(Parse({"--x=0"}).GetBool("x", true));
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = Parse({"--jobs=1", "--jobs=2"});
  EXPECT_EQ(flags.GetInt("jobs", 0), 2);
}

}  // namespace
}  // namespace optimus
