#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

TEST(WorkloadTest, GeneratesRequestedJobsSortedByArrival) {
  WorkloadConfig config;
  config.num_jobs = 25;
  Rng rng(1);
  std::vector<JobSpec> jobs = GenerateWorkload(config, &rng);
  ASSERT_EQ(jobs.size(), 25u);
  for (size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival_time_s, jobs[i - 1].arrival_time_s);
  }
  for (const JobSpec& j : jobs) {
    EXPECT_GE(j.convergence_delta, config.delta_lo);
    EXPECT_LE(j.convergence_delta, config.delta_hi);
    EXPECT_NE(j.model, nullptr);
  }
}

TEST(WorkloadTest, FirstNineJobsCoverTheZoo) {
  WorkloadConfig config;
  config.num_jobs = 9;
  Rng rng(2);
  std::vector<JobSpec> jobs = GenerateWorkload(config, &rng);
  std::set<std::string> names;
  for (const JobSpec& j : jobs) {
    names.insert(j.model->name);
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(WorkloadTest, UniformArrivalsWithinWindow) {
  WorkloadConfig config;
  config.num_jobs = 50;
  config.arrival_window_s = 12000.0;
  Rng rng(3);
  for (const JobSpec& j : GenerateWorkload(config, &rng)) {
    EXPECT_GE(j.arrival_time_s, 0.0);
    EXPECT_LE(j.arrival_time_s, 12000.0);
  }
}

TEST(WorkloadTest, PoissonInterArrivalsMatchRate) {
  WorkloadConfig config;
  config.num_jobs = 300;
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrivals_per_interval = 3.0;
  config.interval_s = 600.0;
  Rng rng(4);
  std::vector<JobSpec> jobs = GenerateWorkload(config, &rng);
  const double span = jobs.back().arrival_time_s;
  const double rate = 300.0 / span;  // arrivals per second
  EXPECT_NEAR(rate, 3.0 / 600.0, 0.001);
}

TEST(WorkloadTest, GoogleTraceIsBurstier) {
  // The bursty process should have a higher coefficient of variation of
  // per-interval arrival counts than the Poisson process.
  auto arrival_cv = [](ArrivalProcess process) {
    WorkloadConfig config;
    config.num_jobs = 400;
    config.arrivals = process;
    Rng rng(5);
    std::vector<JobSpec> jobs = GenerateWorkload(config, &rng);
    std::vector<double> counts;
    const double span = jobs.back().arrival_time_s;
    const int buckets = static_cast<int>(span / config.interval_s) + 1;
    counts.assign(buckets, 0.0);
    for (const JobSpec& j : jobs) {
      counts[static_cast<size_t>(j.arrival_time_s / config.interval_s)] += 1.0;
    }
    double mean = 0.0;
    for (double c : counts) {
      mean += c;
    }
    mean /= counts.size();
    double var = 0.0;
    for (double c : counts) {
      var += (c - mean) * (c - mean);
    }
    var /= counts.size();
    return std::sqrt(var) / mean;
  };
  EXPECT_GT(arrival_cv(ArrivalProcess::kGoogleTrace),
            arrival_cv(ArrivalProcess::kPoisson) * 1.3);
}

TEST(WorkloadTest, ForcedModeApplies) {
  WorkloadConfig config;
  config.num_jobs = 20;
  config.forced_mode = TrainingMode::kSync;
  Rng rng(6);
  for (const JobSpec& j : GenerateWorkload(config, &rng)) {
    EXPECT_EQ(j.mode, TrainingMode::kSync);
  }
}

TEST(WorkloadTest, DownscalingCapsStepsPerEpoch) {
  WorkloadConfig config;
  config.target_steps_per_epoch = 20;
  Rng rng(7);
  for (const JobSpec& j : GenerateWorkload(config, &rng)) {
    EXPECT_LE(j.StepsPerEpoch(), 21);
  }
}

// ---------------------------------------------------------------------------
// Simulator end-to-end
// ---------------------------------------------------------------------------

class SimulatorTest : public ::testing::Test {
 protected:
  static std::vector<JobSpec> SmallWorkload(int n, uint64_t seed) {
    WorkloadConfig config;
    config.num_jobs = n;
    config.arrival_window_s = 3000.0;
    Rng rng(seed);
    return GenerateWorkload(config, &rng);
  }
};

TEST_F(SimulatorTest, AllJobsCompleteUnderEveryScheduler) {
  for (SchedulerPreset preset :
       {SchedulerPreset::kOptimus, SchedulerPreset::kDrf, SchedulerPreset::kTetris}) {
    SCOPED_TRACE(SchedulerPresetName(preset));
    SimulatorConfig config;
    ApplySchedulerPreset(preset, &config);
    config.seed = 11;
    Simulator sim(config, BuildTestbed(), SmallWorkload(6, 11));
    RunMetrics metrics = sim.Run();
    EXPECT_EQ(metrics.completed_jobs, 6);
    EXPECT_GT(metrics.avg_jct_s, 0.0);
    EXPECT_GT(metrics.makespan_s, 0.0);
    EXPECT_GE(metrics.makespan_s, metrics.avg_jct_s);
  }
}

TEST_F(SimulatorTest, DeterministicForSameSeed) {
  auto run = [this] {
    SimulatorConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
    config.seed = 13;
    Simulator sim(config, BuildTestbed(), SmallWorkload(5, 13));
    return sim.Run();
  };
  RunMetrics a = run();
  RunMetrics b = run();
  EXPECT_DOUBLE_EQ(a.avg_jct_s, b.avg_jct_s);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.jcts.size(), b.jcts.size());
  for (size_t i = 0; i < a.jcts.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jcts[i], b.jcts[i]);
  }
}

TEST_F(SimulatorTest, JctsArePositiveAndBoundedByMakespan) {
  SimulatorConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
  config.seed = 17;
  Simulator sim(config, BuildTestbed(), SmallWorkload(5, 17));
  RunMetrics metrics = sim.Run();
  for (double jct : metrics.jcts) {
    EXPECT_GT(jct, 0.0);
    EXPECT_LE(jct, metrics.makespan_s + 1e-6);
  }
}

TEST_F(SimulatorTest, TimelineRecordsRunningTasks) {
  SimulatorConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
  config.seed = 19;
  Simulator sim(config, BuildTestbed(), SmallWorkload(5, 19));
  RunMetrics metrics = sim.Run();
  ASSERT_FALSE(metrics.timeline.empty());
  int max_tasks = 0;
  for (const TimelinePoint& p : metrics.timeline) {
    max_tasks = std::max(max_tasks, p.running_tasks);
    EXPECT_GE(p.worker_cpu_util_pct, 0.0);
    EXPECT_LE(p.worker_cpu_util_pct, 100.0);
  }
  EXPECT_GT(max_tasks, 0);
}

TEST_F(SimulatorTest, StepIntervalAdvancesTime) {
  SimulatorConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
  config.seed = 23;
  Simulator sim(config, BuildTestbed(), SmallWorkload(3, 23));
  const double t0 = sim.now_s();
  sim.StepInterval();
  EXPECT_GT(sim.now_s(), t0);
}

TEST_F(SimulatorTest, ScalingEventsChargeStalls) {
  SimulatorConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
  config.seed = 29;
  Simulator sim(config, BuildTestbed(), SmallWorkload(6, 29));
  RunMetrics metrics = sim.Run();
  // Scaling overhead is reported and small (the paper reports ~2.5%).
  EXPECT_GE(metrics.scaling_overhead_fraction, 0.0);
  EXPECT_LT(metrics.scaling_overhead_fraction, 0.2);
}

TEST_F(SimulatorTest, CheckpointBudgetFreezesAllocation) {
  SimulatorConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
  config.checkpoint.max_scalings_per_job = 1;
  config.seed = 31;
  Simulator sim(config, BuildTestbed(), SmallWorkload(6, 31));
  RunMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.completed_jobs, 6);
  for (double jct : metrics.jcts) {
    EXPECT_GT(jct, 0.0);
  }
}

TEST_F(SimulatorTest, OracleModeCompletesFaster) {
  // Perfect estimates should not be materially worse than fitted ones.
  auto run = [this](bool oracle) {
    SimulatorConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
    config.oracle_estimates = oracle;
    config.seed = 37;
    Simulator sim(config, BuildTestbed(), SmallWorkload(6, 37));
    return sim.Run().avg_jct_s;
  };
  const double fitted = run(false);
  const double oracle = run(true);
  EXPECT_LT(oracle, fitted * 1.5);
  EXPECT_LT(fitted, oracle * 1.8);
}

TEST_F(SimulatorTest, InjectedErrorDegradesPerformance) {
  // Fig 15: larger prediction errors increase JCT (averaged over seeds).
  auto mean_jct = [this](double err) {
    double sum = 0.0;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      SimulatorConfig config;
      ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
      config.oracle_estimates = true;
      config.error.convergence_error = err;
      config.error.speed_error = err;
      config.seed = seed;
      Simulator sim(config, BuildTestbed(), SmallWorkload(7, seed));
      sum += sim.Run().avg_jct_s;
    }
    return sum / 6.0;
  };
  EXPECT_LT(mean_jct(0.0), mean_jct(0.45) * 1.1);
}

TEST_F(SimulatorTest, StragglersSlowDownUnhandledJobs) {
  auto run = [this](double inject, bool handle) {
    double sum = 0.0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      SimulatorConfig config;
      ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
      config.straggler.injection_prob_per_interval = inject;
      config.straggler.handling_enabled = handle;
      config.seed = seed;
      Simulator sim(config, BuildTestbed(), SmallWorkload(6, seed));
      sum += sim.Run().avg_jct_s;
    }
    return sum / 5.0;
  };
  const double clean = run(0.0, true);
  const double unhandled = run(0.4, false);
  const double handled = run(0.4, true);
  EXPECT_GT(unhandled, clean);
  EXPECT_LT(handled, unhandled);
}

// ---------------------------------------------------------------------------
// Experiment harness
// ---------------------------------------------------------------------------

TEST(ExperimentTest, AggregatesRepeats) {
  ExperimentConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config.sim);
  config.workload.num_jobs = 5;
  config.workload.arrival_window_s = 3000.0;
  config.repeats = 3;
  config.label = "unit";
  ExperimentResult result = RunExperiment(config, [] { return BuildTestbed(); });
  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_GT(result.avg_jct_mean, 0.0);
  EXPECT_GT(result.makespan_mean, 0.0);
  EXPECT_DOUBLE_EQ(result.completed_fraction, 1.0);
  EXPECT_EQ(result.label, "unit");
}

TEST(ExperimentTest, OptimusBeatsBaselinesOnTestbedWorkload) {
  // The headline Fig-11 property: Optimus achieves lower average JCT and
  // makespan than both DRF and Tetris under the paper's testbed conditions.
  auto run = [](SchedulerPreset preset) {
    ExperimentConfig config;
    ApplySchedulerPreset(preset, &config.sim);
    ApplyTestbedConditions(&config.sim);
    config.workload.num_jobs = 9;
    config.workload.target_steps_per_epoch = 60;
    config.repeats = 4;
    return RunExperiment(config, [] { return BuildTestbed(); });
  };
  ExperimentResult optimus = run(SchedulerPreset::kOptimus);
  ExperimentResult drf = run(SchedulerPreset::kDrf);
  ExperimentResult tetris = run(SchedulerPreset::kTetris);
  EXPECT_LT(optimus.avg_jct_mean, drf.avg_jct_mean);
  EXPECT_LT(optimus.avg_jct_mean, tetris.avg_jct_mean);
  EXPECT_LT(optimus.makespan_mean, drf.makespan_mean);
  EXPECT_LT(optimus.makespan_mean, tetris.makespan_mean);
}

TEST_F(SimulatorTest, MultiFamilyFittingCompletesComparably) {
  auto run = [this](bool multi) {
    SimulatorConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
    config.multi_family_fitting = multi;
    config.seed = 67;
    Simulator sim(config, BuildTestbed(), SmallWorkload(6, 67));
    return sim.Run();
  };
  RunMetrics single = run(false);
  RunMetrics multi = run(true);
  EXPECT_EQ(single.completed_jobs, 6);
  EXPECT_EQ(multi.completed_jobs, 6);
  // Ground-truth curves are in the Eqn-1 family, so model selection should
  // land on comparable estimates and comparable outcomes.
  EXPECT_LT(multi.avg_jct_s, single.avg_jct_s * 1.5);
  EXPECT_LT(single.avg_jct_s, multi.avg_jct_s * 1.5);
}

TEST(ExperimentTest, NormalizedTo) {
  EXPECT_DOUBLE_EQ(NormalizedTo(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(NormalizedTo(10.0, 0.0), 0.0);
}

}  // namespace
}  // namespace optimus
