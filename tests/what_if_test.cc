#include <cmath>

#include <gtest/gtest.h>

#include "src/sched/optimus_allocator.h"
#include "src/sched/what_if.h"

namespace optimus {
namespace {

SpeedEstimate ConcaveSpeed() {
  return [](int p, int w) {
    return 1.0 / (4.0 / w + 1.0 + 0.8 * w / p + 0.05 * w + 0.05 * p);
  };
}

SchedJob MakeJob(int id, double remaining_epochs) {
  SchedJob job;
  job.job_id = id;
  job.worker_demand = Resources(5, 10, 0, 0.2);
  job.ps_demand = Resources(5, 10, 0, 0.2);
  job.remaining_epochs = remaining_epochs;
  job.speed = ConcaveSpeed();
  job.max_ps = 16;
  job.max_workers = 16;
  return job;
}

TEST(WhatIfTest, AdmitsIntoIdleCluster) {
  OptimusAllocator allocator;
  WhatIfResult r = EvaluateAdmission(allocator, {}, MakeJob(0, 10.0),
                                     Resources(100, 1000, 0, 100));
  EXPECT_TRUE(r.admitted);
  EXPECT_TRUE(ActiveAllocation(r.new_job_alloc, CommMode::kParameterServer));
  EXPECT_GT(r.new_job_completion_s, 0.0);
  EXPECT_TRUE(std::isfinite(r.new_job_completion_s));
  EXPECT_DOUBLE_EQ(r.total_slowdown_s, 0.0);
}

TEST(WhatIfTest, AdmissionSlowsExistingJobsUnderContention) {
  OptimusAllocator allocator;
  std::vector<SchedJob> existing = {MakeJob(0, 20.0), MakeJob(1, 30.0)};
  // Tight capacity: the candidate must take resources from someone.
  WhatIfResult r = EvaluateAdmission(allocator, existing, MakeJob(2, 25.0),
                                     Resources(80, 800, 0, 80));
  EXPECT_TRUE(r.admitted);
  EXPECT_GT(r.total_slowdown_s, 0.0);
  // Every existing job's completion estimate exists in both scenarios.
  for (int id : {0, 1}) {
    EXPECT_TRUE(r.baseline_completion_s.count(id));
    EXPECT_TRUE(r.with_job_completion_s.count(id));
    EXPECT_GE(r.with_job_completion_s.at(id), r.baseline_completion_s.at(id) - 1e-9);
  }
}

TEST(WhatIfTest, NotAdmittedWhenNoCapacityForSeed) {
  OptimusAllocator allocator;
  std::vector<SchedJob> existing = {MakeJob(0, 20.0)};
  // Room for exactly one job's (1,1) seed.
  WhatIfResult r = EvaluateAdmission(allocator, existing, MakeJob(1, 10.0),
                                     Resources(10, 100, 0, 10));
  EXPECT_FALSE(r.admitted);
}

TEST(WhatIfTest, BaselineMatchesStandaloneAllocation) {
  OptimusAllocator allocator;
  std::vector<SchedJob> existing = {MakeJob(0, 15.0)};
  const Resources capacity(60, 600, 0, 60);
  WhatIfResult r = EvaluateAdmission(allocator, existing, MakeJob(1, 5.0), capacity);
  const AllocationMap direct = allocator.Allocate(existing, capacity);
  const Allocation a = direct.at(0);
  const double f = existing[0].speed(a.num_ps, a.num_workers);
  EXPECT_NEAR(r.baseline_completion_s.at(0), 15.0 / f, 1e-9);
}

}  // namespace
}  // namespace optimus
