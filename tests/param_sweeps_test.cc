// Parameterized property sweeps: invariants checked across the whole model
// zoo, both training modes, and every allocator / placement policy.

#include <cmath>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/convergence_model.h"
#include "src/perfmodel/speed_model.h"
#include "src/pserver/comm_model.h"
#include "src/pserver/event_sim.h"
#include "src/sched/baseline_allocators.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// Step-time model invariants, swept over (model x training mode).
// ---------------------------------------------------------------------------

using ModelMode = std::tuple<std::string, TrainingMode>;

class CommModelSweep : public ::testing::TestWithParam<ModelMode> {
 protected:
  const ModelSpec& model() const { return FindModel(std::get<0>(GetParam())); }
  TrainingMode mode() const { return std::get<1>(GetParam()); }

  StepTimeInputs Inputs(int p, int w) const {
    StepTimeInputs in;
    in.model = &model();
    in.mode = mode();
    in.num_ps = p;
    in.num_workers = w;
    return in;
  }
};

TEST_P(CommModelSweep, SpeedPositiveAndFinite) {
  for (int p : {1, 4, 16}) {
    for (int w : {1, 4, 16}) {
      const double speed = TrainingSpeed(Inputs(p, w), CommConfig{});
      EXPECT_GT(speed, 0.0) << "p=" << p << " w=" << w;
      EXPECT_TRUE(std::isfinite(speed));
    }
  }
}

TEST_P(CommModelSweep, BreakdownComponentsNonNegativeAndSum) {
  const StepTimeBreakdown b = ComputeStepTime(Inputs(4, 6), CommConfig{});
  EXPECT_GE(b.forward_s, 0.0);
  EXPECT_GE(b.backward_s, 0.0);
  EXPECT_GE(b.transfer_s, 0.0);
  EXPECT_GE(b.update_s, 0.0);
  EXPECT_GE(b.overhead_s, 0.0);
  EXPECT_NEAR(b.total_s,
              b.forward_s + b.backward_s + b.transfer_s + b.update_s + b.overhead_s,
              1e-12);
}

TEST_P(CommModelSweep, MoreBandwidthNeverSlower) {
  CommConfig slow;
  slow.container_bandwidth_bps = 25e6;
  CommConfig fast;
  fast.container_bandwidth_bps = 100e6;
  for (int p : {2, 8}) {
    for (int w : {2, 8}) {
      EXPECT_GE(TrainingSpeed(Inputs(p, w), fast),
                TrainingSpeed(Inputs(p, w), slow) - 1e-12)
          << "p=" << p << " w=" << w;
    }
  }
}

TEST_P(CommModelSweep, ImbalanceNeverHelps) {
  StepTimeInputs balanced = Inputs(8, 8);
  StepTimeInputs skewed = Inputs(8, 8);
  skewed.load = BalancedLoadMetrics(model().TotalParams(), 8, model().num_param_blocks);
  skewed.load.max_param_fraction = 0.3;
  skewed.load_valid = true;
  EXPECT_LE(TrainingSpeed(skewed, CommConfig{}),
            TrainingSpeed(balanced, CommConfig{}) + 1e-12);
}

TEST_P(CommModelSweep, StragglerNeverHelps) {
  StepTimeInputs healthy = Inputs(4, 6);
  StepTimeInputs straggling = Inputs(4, 6);
  straggling.slowest_worker_factor = 0.6;
  EXPECT_LE(TrainingSpeed(straggling, CommConfig{}),
            TrainingSpeed(healthy, CommConfig{}) + 1e-12);
}

TEST_P(CommModelSweep, EventSimulationAgreesWithin50Percent) {
  // Cross-validation of the closed form against the fluid-flow simulation,
  // for every model and mode.
  const StepTimeInputs in = Inputs(6, 6);
  const double closed = TrainingSpeed(in, CommConfig{});
  const double simulated = SimulateStep(in, CommConfig{}).speed;
  EXPECT_NEAR(simulated, closed, 0.5 * closed);
}

std::vector<ModelMode> AllModelModes() {
  std::vector<ModelMode> out;
  for (const ModelSpec& spec : GetModelZoo()) {
    out.push_back({spec.name, TrainingMode::kSync});
    out.push_back({spec.name, TrainingMode::kAsync});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllModels, CommModelSweep,
                         ::testing::ValuesIn(AllModelModes()),
                         [](const ::testing::TestParamInfo<ModelMode>& info) {
                           std::string name = std::get<0>(info.param) + "_" +
                                              TrainingModeName(std::get<1>(info.param));
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Convergence-prediction quality, swept over the model zoo.
// ---------------------------------------------------------------------------

class ConvergenceSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ConvergenceSweep, HalfTrainingPredictionWithin35Percent) {
  const ModelSpec& spec = FindModel(GetParam());
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve curve(spec.loss, spe);
  const double delta = 0.02;
  const int patience = 3;
  const int64_t truth = curve.EpochsToConverge(delta, patience);

  ConvergenceModel model;
  Rng rng(0xC0FFEE);
  const int observe = std::max<int64_t>(4, truth / 2);
  for (int e = 0; e < observe; ++e) {
    for (int i = 1; i <= 20; ++i) {
      const int64_t step = e * spe + i * spe / 20;
      model.AddSample(static_cast<double>(step), curve.SampleLossAtStep(step, &rng));
    }
  }
  ASSERT_TRUE(model.Fit());
  const int64_t predicted = model.PredictTotalEpochs(delta, patience, spe);
  const double err =
      std::abs(static_cast<double>(predicted - truth)) / static_cast<double>(truth);
  EXPECT_LT(err, 0.35) << "predicted " << predicted << " truth " << truth;
}

TEST_P(ConvergenceSweep, SpeedModelTenSamplesUnder15PercentError) {
  const ModelSpec& spec = FindModel(GetParam());
  SpeedModel model(TrainingMode::kSync, spec.default_sync_batch);
  Rng rng(0xBEEF);
  // Ten spread samples with light measurement noise.
  for (auto [p, w] : {std::pair{1, 1}, {16, 16}, {8, 8}, {16, 4}, {4, 16},
                      {2, 8}, {8, 2}, {12, 6}, {6, 12}, {3, 3}}) {
    StepTimeInputs in;
    in.model = &spec;
    in.mode = TrainingMode::kSync;
    in.num_ps = p;
    in.num_workers = w;
    model.AddSample(p, w, TrainingSpeed(in, CommConfig{}) * rng.LogNormalFactor(0.02));
  }
  ASSERT_TRUE(model.Fit());
  double err_sum = 0.0;
  int count = 0;
  for (int p = 2; p <= 14; p += 4) {
    for (int w = 2; w <= 14; w += 4) {
      StepTimeInputs in;
      in.model = &spec;
      in.mode = TrainingMode::kSync;
      in.num_ps = p;
      in.num_workers = w;
      const double truth = TrainingSpeed(in, CommConfig{});
      err_sum += std::abs(model.Estimate(p, w) - truth) / truth;
      ++count;
    }
  }
  EXPECT_LT(err_sum / count, 0.15);
}

std::vector<std::string> AllModelNames() {
  std::vector<std::string> out;
  for (const ModelSpec& spec : GetModelZoo()) {
    out.push_back(spec.name);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ConvergenceSweep,
                         ::testing::ValuesIn(AllModelNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Allocator invariants, swept over policies.
// ---------------------------------------------------------------------------

enum class AllocKind { kOptimus, kDrf, kTetris, kFifo };

class AllocatorSweep : public ::testing::TestWithParam<AllocKind> {
 protected:
  static std::unique_ptr<Allocator> Make(AllocKind kind) {
    switch (kind) {
      case AllocKind::kOptimus:
        return std::make_unique<OptimusAllocator>();
      case AllocKind::kDrf:
        return std::make_unique<DrfAllocator>();
      case AllocKind::kTetris:
        return std::make_unique<TetrisAllocator>();
      case AllocKind::kFifo:
        return std::make_unique<FifoAllocator>();
    }
    return nullptr;
  }

  static std::vector<SchedJob> Jobs(int n) {
    std::vector<SchedJob> jobs;
    for (int i = 0; i < n; ++i) {
      SchedJob job;
      job.job_id = i;
      job.worker_demand = Resources(5, 10, 0, 0.2);
      job.ps_demand = Resources(5, 10, 0, 0.2);
      job.max_ps = 12;
      job.max_workers = 12;
      job.remaining_epochs = 5.0 + 7.0 * i;
      const double a = 3.0 + i;
      job.speed = [a](int p, int w) {
        return 1.0 / (a / w + 1.0 + 0.8 * w / p + 0.05 * w + 0.05 * p);
      };
      jobs.push_back(std::move(job));
    }
    return jobs;
  }
};

TEST_P(AllocatorSweep, RespectsCapacityAndCaps) {
  auto allocator = Make(GetParam());
  const std::vector<SchedJob> jobs = Jobs(6);
  const Resources capacity(200, 2000, 0, 100);
  const AllocationMap result = allocator->Allocate(jobs, capacity);
  Resources used;
  for (const auto& [id, alloc] : result) {
    EXPECT_LE(alloc.num_ps, 12);
    EXPECT_LE(alloc.num_workers, 12);
    used += AllocationDemand(jobs[static_cast<size_t>(id)], alloc);
  }
  EXPECT_TRUE(capacity.Fits(used));
}

TEST_P(AllocatorSweep, Deterministic) {
  auto allocator = Make(GetParam());
  const std::vector<SchedJob> jobs = Jobs(5);
  const Resources capacity(150, 1500, 0, 100);
  const AllocationMap a = allocator->Allocate(jobs, capacity);
  const AllocationMap b = allocator->Allocate(jobs, capacity);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [id, alloc] : a) {
    EXPECT_TRUE(alloc == b.at(id)) << "job " << id;
  }
}

TEST_P(AllocatorSweep, EmptyJobListYieldsEmptyMap) {
  auto allocator = Make(GetParam());
  EXPECT_TRUE(allocator->Allocate({}, Resources(100, 100, 0, 100)).empty());
}

TEST_P(AllocatorSweep, ZeroCapacityYieldsNothingActive) {
  auto allocator = Make(GetParam());
  const AllocationMap result = allocator->Allocate(Jobs(3), Resources());
  for (const auto& [id, alloc] : result) {
    EXPECT_FALSE(ActiveAllocation(alloc, CommMode::kParameterServer))
        << "job " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AllocatorSweep,
                         ::testing::Values(AllocKind::kOptimus, AllocKind::kDrf,
                                           AllocKind::kTetris, AllocKind::kFifo),
                         [](const ::testing::TestParamInfo<AllocKind>& info) {
                           switch (info.param) {
                             case AllocKind::kOptimus:
                               return "Optimus";
                             case AllocKind::kDrf:
                               return "Drf";
                             case AllocKind::kTetris:
                               return "Tetris";
                             case AllocKind::kFifo:
                               return "Fifo";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace optimus
