// Cross-module integration and property-fuzz tests: randomized
// allocator/placement invariants and end-to-end simulator behaviours that
// span several subsystems (traces, data serving, LR drops, background
// workloads, FIFO baseline).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/sched/baseline_allocators.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// Randomized allocator / placement invariants
// ---------------------------------------------------------------------------

std::vector<SchedJob> RandomJobs(int n, Rng* rng) {
  std::vector<SchedJob> jobs;
  for (int i = 0; i < n; ++i) {
    SchedJob job;
    job.job_id = i;
    const double cpu = rng->Uniform(1.0, 8.0);
    job.worker_demand = Resources(cpu, rng->Uniform(4, 16), 0, 0.1);
    job.ps_demand = Resources(cpu, rng->Uniform(4, 16), 0, 0.1);
    job.max_ps = static_cast<int>(rng->UniformInt(2, 12));
    job.max_workers = static_cast<int>(rng->UniformInt(2, 12));
    job.remaining_epochs = rng->Uniform(1.0, 80.0);
    const double a = rng->Uniform(1.0, 20.0);
    const double b = rng->Uniform(0.1, 2.0);
    job.speed = [a, b](int p, int w) {
      return 1.0 / (a / w + 1.0 + b * w / p + 0.05 * w + 0.05 * p);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(AllocatorFuzzTest, CapacityNeverExceeded) {
  Rng rng(101);
  const OptimusAllocator optimus;
  const DrfAllocator drf;
  const TetrisAllocator tetris;
  const FifoAllocator fifo;
  const std::vector<const Allocator*> allocators = {&optimus, &drf, &tetris, &fifo};
  for (int trial = 0; trial < 30; ++trial) {
    Rng trial_rng = rng.Split(trial);
    const std::vector<SchedJob> jobs =
        RandomJobs(static_cast<int>(trial_rng.UniformInt(1, 12)), &trial_rng);
    const Resources capacity(trial_rng.Uniform(20, 300), trial_rng.Uniform(100, 2000),
                             0, 100);
    for (const Allocator* allocator : allocators) {
      SCOPED_TRACE(std::string(allocator->name()) + " trial " + std::to_string(trial));
      const AllocationMap result = allocator->Allocate(jobs, capacity);
      Resources used;
      for (const auto& [id, alloc] : result) {
        EXPECT_GE(alloc.num_ps, 0);
        EXPECT_GE(alloc.num_workers, 0);
        const SchedJob& job = jobs[static_cast<size_t>(id)];
        EXPECT_LE(alloc.num_ps, job.max_ps);
        EXPECT_LE(alloc.num_workers, job.max_workers);
        used += AllocationDemand(job, alloc);
      }
      EXPECT_TRUE(capacity.Fits(used)) << "used " << used.ToString();
    }
  }
}

TEST(PlacementFuzzTest, ServerCapacityAndCountsInvariant) {
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    Rng trial_rng = rng.Split(trial);
    // Random heterogeneous cluster.
    std::vector<Server> servers;
    const int n_servers = static_cast<int>(trial_rng.UniformInt(2, 12));
    for (int s = 0; s < n_servers; ++s) {
      servers.emplace_back(
          s, Resources(trial_rng.Uniform(8, 32), trial_rng.Uniform(32, 128), 0, 1));
    }
    // Random jobs with random requested allocations.
    std::vector<PlacementJobInput> jobs;
    const int n_jobs = static_cast<int>(trial_rng.UniformInt(1, 8));
    for (int j = 0; j < n_jobs; ++j) {
      PlacementJobInput job;
      job.job_id = j;
      const double cpu = trial_rng.Uniform(1.0, 6.0);
      job.worker_demand = Resources(cpu, trial_rng.Uniform(2, 10), 0, 0.1);
      job.ps_demand = Resources(cpu, trial_rng.Uniform(2, 10), 0, 0.1);
      job.alloc = {static_cast<int>(trial_rng.UniformInt(1, 8)),
                   static_cast<int>(trial_rng.UniformInt(1, 8))};
      jobs.push_back(job);
    }

    for (PlacementPolicy policy :
         {PlacementPolicy::kOptimusPack, PlacementPolicy::kLoadBalance,
          PlacementPolicy::kTetrisPack}) {
      SCOPED_TRACE(std::string(PlacementPolicyName(policy)) + " trial " +
                   std::to_string(trial));
      const PlacementResult result = PlaceJobs(policy, jobs, servers);

      // Per-server usage within capacity.
      std::vector<Resources> used(servers.size());
      for (const auto& [id, placement] : result.placements) {
        const PlacementJobInput& job = jobs[static_cast<size_t>(id)];
        ASSERT_EQ(placement.workers_per_server.size(), servers.size());
        for (size_t s = 0; s < servers.size(); ++s) {
          used[s] += job.worker_demand * placement.workers_per_server[s] +
                     job.ps_demand * placement.ps_per_server[s];
        }
        // Task counts match the effective allocation.
        const Allocation eff = result.effective_alloc.at(id);
        EXPECT_EQ(placement.TotalWorkers(), eff.num_workers);
        EXPECT_EQ(placement.TotalPs(), eff.num_ps);
        // Effective allocation never exceeds the request.
        EXPECT_LE(eff.num_workers, job.alloc.num_workers);
        EXPECT_LE(eff.num_ps, job.alloc.num_ps);
      }
      for (size_t s = 0; s < servers.size(); ++s) {
        EXPECT_TRUE(servers[s].capacity().Fits(used[s]))
            << "server " << s << " used " << used[s].ToString();
      }

      // Every job is either placed or reported unplaced, never both.
      for (const PlacementJobInput& job : jobs) {
        const bool placed = result.placements.count(job.job_id) > 0;
        const bool unplaced =
            std::find(result.unplaced.begin(), result.unplaced.end(), job.job_id) !=
            result.unplaced.end();
        EXPECT_NE(placed, unplaced) << "job " << job.job_id;
      }
    }
  }
}

TEST(PlacementFuzzTest, DeterministicAcrossCalls) {
  Rng rng(303);
  std::vector<Server> servers = BuildTestbed();
  std::vector<PlacementJobInput> jobs;
  for (int j = 0; j < 6; ++j) {
    PlacementJobInput job;
    job.job_id = j;
    job.worker_demand = Resources(2.5, 10, 0, 0.1);
    job.ps_demand = Resources(2.5, 10, 0, 0.1);
    job.alloc = {static_cast<int>(rng.UniformInt(1, 6)),
                 static_cast<int>(rng.UniformInt(1, 6))};
    jobs.push_back(job);
  }
  const PlacementResult a = PlaceJobs(PlacementPolicy::kOptimusPack, jobs, servers);
  const PlacementResult b = PlaceJobs(PlacementPolicy::kOptimusPack, jobs, servers);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (const auto& [id, pa] : a.placements) {
    const JobPlacement& pb = b.placements.at(id);
    EXPECT_EQ(pa.workers_per_server, pb.workers_per_server);
    EXPECT_EQ(pa.ps_per_server, pb.ps_per_server);
  }
}

// ---------------------------------------------------------------------------
// End-to-end simulator behaviours
// ---------------------------------------------------------------------------

std::vector<JobSpec> SmallWorkload(int n, uint64_t seed) {
  WorkloadConfig config;
  config.num_jobs = n;
  config.arrival_window_s = 3000.0;
  Rng rng(seed);
  return GenerateWorkload(config, &rng);
}

TEST(SimIntegrationTest, TraceCoversEveryJobLifecycle) {
  SimulatorConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
  config.seed = 41;
  Simulator sim(config, BuildTestbed(), SmallWorkload(6, 41));
  RunMetrics metrics = sim.Run();
  ASSERT_EQ(metrics.completed_jobs, 6);

  const auto counts = sim.trace().CountByType();
  EXPECT_EQ(counts.at(SimEventType::kArrival), 6);
  EXPECT_EQ(counts.at(SimEventType::kScheduled), 6);
  EXPECT_EQ(counts.at(SimEventType::kCompleted), 6);
  // Per-job: arrival precedes scheduled precedes completed.
  for (int id = 0; id < 6; ++id) {
    const auto events = sim.trace().ForJob(id);
    ASSERT_GE(events.size(), 3u) << "job " << id;
    EXPECT_EQ(events.front().type, SimEventType::kArrival);
    EXPECT_EQ(events.back().type, SimEventType::kCompleted);
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i].time_s, events[i - 1].time_s);
    }
  }
}

TEST(SimIntegrationTest, LearningRateDropEventRecorded) {
  JobSpec spec = SmallWorkload(1, 43)[0];
  spec.arrival_time_s = 0.0;
  spec.convergence_delta = 0.01;
  spec.lr_drop = LearningRateDrop{.epoch = 3.0, .c0 = 1.0,
                                  .c2 = spec.model->loss.c2 * 0.5};
  SimulatorConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
  config.seed = 43;
  Simulator sim(config, BuildTestbed(), {spec});
  sim.Run();
  const auto counts = sim.trace().CountByType();
  EXPECT_EQ(counts.count(SimEventType::kLearningRateDrop) > 0 &&
                counts.at(SimEventType::kLearningRateDrop) == 1,
            true);
  // The drop event happens after at least 3 epochs of progress.
  for (const SimEvent& e : sim.trace().ForJob(spec.id)) {
    if (e.type == SimEventType::kLearningRateDrop) {
      EXPECT_GT(e.time_s, 0.0);
    }
  }
}

TEST(SimIntegrationTest, BackgroundShareReducesRunningTasks) {
  auto peak_tasks = [](double share) {
    SimulatorConfig config;
    ApplySchedulerPreset(SchedulerPreset::kDrf, &config);  // work-conserving
    config.background_share = share;
    config.seed = 47;
    Simulator sim(config, BuildTestbed(), SmallWorkload(8, 47));
    RunMetrics metrics = sim.Run();
    int peak = 0;
    for (const TimelinePoint& p : metrics.timeline) {
      peak = std::max(peak, p.running_tasks);
    }
    return peak;
  };
  EXPECT_LT(peak_tasks(0.5), peak_tasks(0.0));
}

TEST(SimIntegrationTest, FifoCompletesButUnderperformsOptimus) {
  auto run = [](AllocatorPolicy alloc) {
    double sum = 0.0;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      SimulatorConfig config;
      ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
      config.allocator = alloc;
      config.seed = seed;
      WorkloadConfig workload;
      workload.num_jobs = 9;
      workload.target_steps_per_epoch = 60;
      Rng rng(seed);
      Simulator sim(config, BuildTestbed(), GenerateWorkload(workload, &rng));
      RunMetrics m = sim.Run();
      EXPECT_EQ(m.completed_jobs, 9);
      sum += m.avg_jct_s;
    }
    return sum / 4.0;
  };
  EXPECT_LT(run(AllocatorPolicy::kOptimus), run(AllocatorPolicy::kFifo));
}

TEST(SimIntegrationTest, ChunkRebalancingChargesBoundedStalls) {
  // With an exaggerated chunk-move cost, total stalls grow but jobs still
  // finish; with zero cost, data rebalancing is free.
  auto total_stall = [](double chunk_move_s) {
    SimulatorConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
    config.chunk_move_s = chunk_move_s;
    config.seed = 53;
    std::vector<JobSpec> jobs = SmallWorkload(6, 53);
    Simulator sim(config, BuildTestbed(), jobs);
    RunMetrics m = sim.Run();
    EXPECT_EQ(m.completed_jobs, 6);
    double stall = 0.0;
    for (const JobSpec& spec : jobs) {
      stall += sim.job(spec.id).total_stall_s();
    }
    return stall;
  };
  EXPECT_GE(total_stall(5.0), total_stall(0.0));
}

TEST(SimIntegrationTest, IntervalLengthAffectsGranularityNotCorrectness) {
  for (double interval : {300.0, 600.0, 1200.0}) {
    SCOPED_TRACE(interval);
    SimulatorConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
    config.interval_s = interval;
    config.seed = 59;
    Simulator sim(config, BuildTestbed(), SmallWorkload(5, 59));
    RunMetrics m = sim.Run();
    EXPECT_EQ(m.completed_jobs, 5);
  }
}

TEST(SimIntegrationTest, UniformClusterSupportedEndToEnd) {
  SimulatorConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config);
  config.seed = 61;
  Simulator sim(config, BuildUniformCluster(20, Resources(16, 80, 0, 1)),
                SmallWorkload(10, 61));
  RunMetrics m = sim.Run();
  EXPECT_EQ(m.completed_jobs, 10);
}

}  // namespace
}  // namespace optimus
