// Golden-trace regression: one small fixed workload, run under a fixed fault
// plan, must reproduce a committed metrics snapshot bit for bit. Any change
// to scheduling, fault handling, RNG consumption order, or metrics
// accounting shows up here as a readable diff instead of a silent drift.
//
// Regenerating the golden after an INTENDED behavior change:
//
//   OPTIMUS_REGEN_GOLDEN=1 ./build/tests/golden_trace_test
//
// then commit tests/golden/fault_trace.json together with the change that
// moved it. The snapshot prints doubles with 17 significant digits, so it
// round-trips exactly; the RNG is std::mt19937_64 with libstdc++'s
// distributions, which is stable across runs and thread counts on the
// toolchain CI uses (a different standard library may legitimately produce a
// different golden).

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/sim/workload.h"

#ifndef OPTIMUS_SOURCE_DIR
#error "OPTIMUS_SOURCE_DIR must be defined to locate the golden file"
#endif

namespace optimus {
namespace {

constexpr char kGoldenPath[] = OPTIMUS_SOURCE_DIR "/tests/golden/fault_trace.json";

// The pinned scenario: 6 jobs on the paper's testbed with a crash, a rack
// outage, a slowdown burst, task failures, and periodic checkpoints.
std::unique_ptr<Simulator> MakePinnedScenario() {
  SimulatorConfig config;
  config.seed = 7;
  config.max_sim_time_s = 2e5;
  std::string error;
  // Recoveries land well inside the run (makespan ~8000 s) so the snapshot
  // pins the full crash -> evict -> recover -> reallocate cycle.
  const bool ok = ParseFaultPlan(
      "crash@1800:server=2,recover=5400;"
      "rack@4200:servers=6-8,recover=6600;"
      "slow@2400:factor=0.7,duration=1800",
      &config.fault.plan, &error);
  EXPECT_TRUE(ok) << error;
  config.fault.task_failure_prob = 0.02;
  config.fault.checkpoint_period_s = 3600.0;
  config.audit = true;

  WorkloadConfig workload;
  workload.num_jobs = 6;
  workload.arrival_window_s = 2400.0;
  Rng rng(config.seed ^ 0x5eedULL);
  return std::make_unique<Simulator>(config, BuildTestbed(),
                                     GenerateWorkload(workload, &rng));
}

std::string Snapshot(const RunMetrics& m, const EventTrace& trace) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\n";
  os << "  \"total_jobs\": " << m.total_jobs << ",\n";
  os << "  \"completed_jobs\": " << m.completed_jobs << ",\n";
  os << "  \"jcts_s\": [";
  for (size_t i = 0; i < m.jcts.size(); ++i) {
    os << (i == 0 ? "" : ", ") << m.jcts[i];
  }
  os << "],\n";
  os << "  \"avg_jct_s\": " << m.avg_jct_s << ",\n";
  os << "  \"makespan_s\": " << m.makespan_s << ",\n";
  os << "  \"scaling_overhead_fraction\": " << m.scaling_overhead_fraction << ",\n";
  os << "  \"total_scalings\": " << m.total_scalings << ",\n";
  os << "  \"straggler_replacements\": " << m.straggler_replacements << ",\n";
  os << "  \"server_crashes\": " << m.server_crashes << ",\n";
  os << "  \"server_recoveries\": " << m.server_recoveries << ",\n";
  os << "  \"task_failures\": " << m.task_failures << ",\n";
  os << "  \"job_evictions\": " << m.job_evictions << ",\n";
  os << "  \"backoff_deferrals\": " << m.backoff_deferrals << ",\n";
  os << "  \"checkpoints_taken\": " << m.checkpoints_taken << ",\n";
  os << "  \"rolled_back_steps\": " << m.rolled_back_steps << ",\n";
  os << "  \"audit_checks\": " << m.audit_checks << ",\n";
  os << "  \"audit_violations\": " << m.audit_violations << ",\n";
  os << "  \"events\": {";
  bool first = true;
  for (const auto& [type, count] : trace.CountByType()) {
    os << (first ? "" : ", ") << "\"" << SimEventTypeName(type) << "\": " << count;
    first = false;
  }
  os << "}\n";
  os << "}\n";
  return os.str();
}

TEST(GoldenTraceTest, FaultedRunMatchesCommittedSnapshot) {
  std::unique_ptr<Simulator> sim = MakePinnedScenario();
  const RunMetrics metrics = sim->Run();
  const std::string actual = Snapshot(metrics, sim->trace());

  if (std::getenv("OPTIMUS_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(kGoldenPath);
    ASSERT_TRUE(os.good()) << "cannot write " << kGoldenPath;
    os << actual;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good())
      << "missing golden " << kGoldenPath
      << " — run with OPTIMUS_REGEN_GOLDEN=1 to create it";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str())
      << "metrics drifted from the committed golden; if the change is "
         "intended, regenerate with OPTIMUS_REGEN_GOLDEN=1 and commit the "
         "new tests/golden/fault_trace.json";
}

// The pinned scenario itself must be healthy: faults actually fire and the
// auditor stays clean, so the golden keeps guarding real behavior.
TEST(GoldenTraceTest, PinnedScenarioExercisesTheFaultPath) {
  std::unique_ptr<Simulator> sim = MakePinnedScenario();
  const RunMetrics metrics = sim->Run();
  EXPECT_EQ(metrics.server_crashes, 4);
  EXPECT_EQ(metrics.server_recoveries, 4);
  EXPECT_GT(metrics.task_failures, 0);
  EXPECT_GT(metrics.checkpoints_taken, 0);
  EXPECT_GT(metrics.audit_checks, 0);
  EXPECT_EQ(metrics.audit_violations, 0) << sim->auditor().Summary();
}

}  // namespace
}  // namespace optimus
