#include <cmath>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"

namespace optimus {
namespace {

JobSpec MakeSpec(int id, const std::string& model, TrainingMode mode) {
  JobSpec spec;
  spec.id = id;
  spec.model = &FindModel(model);
  spec.mode = mode;
  spec.convergence_delta = 0.02;
  spec.patience = 3;
  spec.worker_demand = Resources(2.5, 10, 0, 0.15);
  spec.ps_demand = Resources(2.5, 10, 0, 0.15);
  spec.dataset_scale = 0.002;
  spec.max_ps = 16;
  spec.max_workers = 16;
  return spec;
}

// Ground-truth pre-run measurements for a spec.
std::vector<SpeedSample> PreRun(const JobSpec& spec) {
  std::vector<SpeedSample> samples;
  for (auto [p, w] : {std::pair{1, 1}, {16, 16}, {8, 8}, {16, 4}, {4, 16}}) {
    StepTimeInputs in;
    in.model = spec.model;
    in.mode = spec.mode;
    in.num_ps = p;
    in.num_workers = w;
    samples.push_back({p, w, TrainingSpeed(in, CommConfig{})});
  }
  return samples;
}

// Feeds `epochs` of ground-truth loss observations to the controller.
void Observe(OptimusController* controller, const JobSpec& spec, int epochs,
             uint64_t seed) {
  const int64_t spe = spec.StepsPerEpoch();
  LossCurve curve(spec.model->loss, spe);
  Rng rng(seed);
  JobObservation obs;
  obs.job_id = spec.id;
  obs.steps_done = static_cast<double>(epochs * spe);
  for (int e = 0; e < epochs; ++e) {
    for (int i = 1; i <= 20; ++i) {
      const int64_t step = e * spe + i * spe / 20;
      obs.new_loss_points.push_back(
          {static_cast<double>(step), curve.SampleLossAtStep(step, &rng)});
    }
  }
  controller->ReportObservation(obs);
}

TEST(ControllerTest, RegisterScheduleLifecycle) {
  OptimusController controller;
  const JobSpec spec = MakeSpec(0, "ResNext-110", TrainingMode::kSync);
  controller.RegisterJob(spec, PreRun(spec));
  EXPECT_TRUE(controller.HasJob(0));
  EXPECT_EQ(controller.num_jobs(), 1u);

  ScheduleDecision decision = controller.Schedule(BuildTestbed());
  ASSERT_TRUE(decision.allocations.count(0));
  EXPECT_TRUE(ActiveAllocation(decision.allocations[0], spec.comm));
  EXPECT_TRUE(decision.placements.count(0));
  EXPECT_TRUE(ActiveAllocation(controller.CurrentAllocation(0), spec.comm));

  controller.CompleteJob(0);
  EXPECT_FALSE(controller.HasJob(0));
  EXPECT_TRUE(controller.Schedule(BuildTestbed()).allocations.empty());
}

TEST(ControllerTest, SpeedEstimateFromPreRun) {
  OptimusController controller;
  const JobSpec spec = MakeSpec(0, "ResNet-50", TrainingMode::kSync);
  controller.RegisterJob(spec, PreRun(spec));
  StepTimeInputs in;
  in.model = spec.model;
  in.mode = spec.mode;
  in.num_ps = 6;
  in.num_workers = 6;
  const double truth = TrainingSpeed(in, CommConfig{});
  EXPECT_NEAR(controller.EstimateSpeed(0, 6, 6), truth, 0.2 * truth);
}

TEST(ControllerTest, RemainingEpochsSharpensWithObservations) {
  OptimusController controller;
  const JobSpec spec = MakeSpec(0, "Seq2Seq", TrainingMode::kSync);
  controller.RegisterJob(spec, PreRun(spec));
  const double prior = controller.EstimateRemainingEpochs(0);
  EXPECT_DOUBLE_EQ(prior, 30.0);  // default prior before any loss data

  Observe(&controller, spec, 20, 7);
  const double fitted = controller.EstimateRemainingEpochs(0);
  EXPECT_NE(fitted, prior);
  EXPECT_GT(fitted, 0.0);

  // Ground truth for comparison.
  LossCurve curve(spec.model->loss, spec.StepsPerEpoch());
  const double truth = static_cast<double>(
      curve.EpochsToConverge(spec.convergence_delta, spec.patience)) - 20.0;
  EXPECT_NEAR(fitted, truth, std::max(5.0, 0.4 * truth));
}

TEST(ControllerTest, LearningRateChangeResetsConvergence) {
  OptimusController controller;
  const JobSpec spec = MakeSpec(0, "ResNext-110", TrainingMode::kSync);
  controller.RegisterJob(spec, PreRun(spec));
  Observe(&controller, spec, 15, 9);
  EXPECT_NE(controller.EstimateRemainingEpochs(0), 30.0);
  controller.NotifyLearningRateChange(0);
  EXPECT_DOUBLE_EQ(controller.EstimateRemainingEpochs(0), 30.0);  // back to prior
}

TEST(ControllerTest, MultipleJobsShareCluster) {
  OptimusController controller;
  std::vector<JobSpec> specs = {MakeSpec(0, "ResNet-50", TrainingMode::kSync),
                                MakeSpec(1, "CNN-rand", TrainingMode::kAsync),
                                MakeSpec(2, "DSSM", TrainingMode::kSync)};
  for (const JobSpec& spec : specs) {
    controller.RegisterJob(spec, PreRun(spec));
  }
  ScheduleDecision decision = controller.Schedule(BuildTestbed());
  // Every job gets resources; total tasks fit in the 60-slot testbed.
  int total_tasks = 0;
  for (const auto& [id, alloc] : decision.allocations) {
    EXPECT_TRUE(ActiveAllocation(alloc, specs[static_cast<size_t>(id)].comm));
    total_tasks += alloc.num_ps + alloc.num_workers;
  }
  EXPECT_EQ(decision.allocations.size(), 3u);
  EXPECT_LE(total_tasks, 60);
}

TEST(ControllerTest, CheckpointBudgetFreezesAllocation) {
  ControllerOptions options;
  options.checkpoint.max_scalings_per_job = 0;  // unlimited
  options.checkpoint.max_scalings_per_job = 1;
  OptimusController controller(options);
  const JobSpec spec = MakeSpec(0, "ResNext-110", TrainingMode::kSync);
  controller.RegisterJob(spec, PreRun(spec));

  controller.Schedule(BuildTestbed());
  const Allocation first = controller.CurrentAllocation(0);
  ASSERT_TRUE(ActiveAllocation(first, spec.comm));

  // Force estimate changes that would normally trigger rescaling.
  Observe(&controller, spec, 10, 11);
  controller.Schedule(BuildTestbed());
  Observe(&controller, spec, 10, 13);
  const Allocation second = controller.CurrentAllocation(0);

  // After the (at most one) allowed rescale, further rounds keep it fixed.
  controller.Schedule(BuildTestbed());
  controller.Schedule(BuildTestbed());
  EXPECT_TRUE(controller.CurrentAllocation(0) == second ||
              controller.CurrentAllocation(0) == first);
}

TEST(ControllerTest, SaveRestoreRoundTrip) {
  OptimusController controller;
  std::vector<JobSpec> specs = {MakeSpec(0, "Seq2Seq", TrainingMode::kSync),
                                MakeSpec(1, "KAGGLE", TrainingMode::kAsync)};
  specs[0].lr_drop = LearningRateDrop{.epoch = 25.0, .c0 = 0.8, .c2 = 0.03};
  for (const JobSpec& spec : specs) {
    controller.RegisterJob(spec, PreRun(spec));
  }
  Observe(&controller, specs[0], 12, 17);
  Observe(&controller, specs[1], 6, 19);
  controller.Schedule(BuildTestbed());

  const std::string snapshot = controller.SaveState();
  auto restored = OptimusController::RestoreState(snapshot);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->num_jobs(), 2u);

  // Estimates match.
  for (int id : {0, 1}) {
    EXPECT_NEAR(restored->EstimateRemainingEpochs(id),
                controller.EstimateRemainingEpochs(id), 1e-6);
    EXPECT_NEAR(restored->EstimateSpeed(id, 4, 4), controller.EstimateSpeed(id, 4, 4),
                1e-9);
    EXPECT_TRUE(restored->CurrentAllocation(id) == controller.CurrentAllocation(id));
  }

  // Subsequent decisions are identical (fault-tolerant restart, §5.5).
  ScheduleDecision original = controller.Schedule(BuildTestbed());
  ScheduleDecision recovered = restored->Schedule(BuildTestbed());
  ASSERT_EQ(original.allocations.size(), recovered.allocations.size());
  for (const auto& [id, alloc] : original.allocations) {
    EXPECT_TRUE(alloc == recovered.allocations.at(id)) << "job " << id;
  }
}

TEST(ControllerTest, RestoreRejectsMalformedSnapshots) {
  EXPECT_EQ(OptimusController::RestoreState(""), nullptr);
  EXPECT_EQ(OptimusController::RestoreState("not-a-snapshot v9"), nullptr);
  EXPECT_EQ(OptimusController::RestoreState("optimus-controller-state v1\ngarbage"),
            nullptr);
}

TEST(ControllerTest, SnapshotPreservesLrDropSpec) {
  OptimusController controller;
  JobSpec spec = MakeSpec(0, "ResNet-50", TrainingMode::kSync);
  spec.lr_drop = LearningRateDrop{.epoch = 30.0, .c0 = 1.5, .c2 = 0.2};
  controller.RegisterJob(spec, PreRun(spec));
  auto restored = OptimusController::RestoreState(controller.SaveState());
  ASSERT_NE(restored, nullptr);
  // Round-trip again: the second snapshot must equal the first.
  EXPECT_EQ(restored->SaveState(), controller.SaveState());
}

}  // namespace
}  // namespace optimus
