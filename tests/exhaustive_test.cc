#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sched/exhaustive_allocator.h"
#include "src/sched/optimus_allocator.h"

namespace optimus {
namespace {

SchedJob MakeJob(int id, double remaining, double a, double b, int caps = 6) {
  SchedJob job;
  job.job_id = id;
  job.worker_demand = Resources(5, 10, 0, 0.2);
  job.ps_demand = Resources(5, 10, 0, 0.2);
  job.max_ps = caps;
  job.max_workers = caps;
  job.remaining_epochs = remaining;
  job.speed = [a, b](int p, int w) {
    return 1.0 / (a / w + 1.0 + b * w / p + 0.1 * w + 0.1 * p);
  };
  return job;
}

TEST(ExhaustiveAllocatorTest, SingleJobFindsItsOptimum) {
  // With one job and ample capacity, brute force must find the argmax of f.
  SchedJob job = MakeJob(0, 10.0, 6.0, 0.5);
  ExhaustiveAllocator exhaustive;
  AllocationMap best = exhaustive.Allocate({job}, Resources(200, 2000, 0, 100));
  ASSERT_TRUE(best.count(0));
  const double f_best = job.speed(best[0].num_ps, best[0].num_workers);
  for (int p = 1; p <= 6; ++p) {
    for (int w = 1; w <= 6; ++w) {
      // Only configurations that fit in capacity are candidates; all do here.
      EXPECT_LE(job.speed(p, w), f_best + 1e-12) << "p=" << p << " w=" << w;
    }
  }
}

TEST(ExhaustiveAllocatorTest, RespectsCapacity) {
  std::vector<SchedJob> jobs = {MakeJob(0, 10.0, 4.0, 0.8, 4),
                                MakeJob(1, 20.0, 8.0, 0.4, 4)};
  const Resources capacity(40, 400, 0, 100);  // 8 tasks
  ExhaustiveAllocator exhaustive;
  AllocationMap alloc = exhaustive.Allocate(jobs, capacity);
  Resources used;
  for (const auto& [id, a] : alloc) {
    used += AllocationDemand(jobs[static_cast<size_t>(id)], a);
  }
  EXPECT_TRUE(capacity.Fits(used));
}

TEST(ExhaustiveAllocatorTest, ObjectiveAccountsForDeferredJobs) {
  SchedJob job = MakeJob(0, 10.0, 4.0, 0.8);
  const double with_nothing = ExhaustiveAllocator::Objective({job}, {});
  AllocationMap some;
  some[0] = {1, 1};
  const double with_seed = ExhaustiveAllocator::Objective({job}, some);
  EXPECT_GT(with_nothing, with_seed);  // deferring is penalized
}

TEST(ExhaustiveAllocatorTest, GreedyWithinTwentyPercentOfOptimal) {
  // The §4.1 greedy is a heuristic for an NP-hard program; on random small
  // instances it should stay close to the enumerated optimum.
  Rng rng(77);
  double worst_gap = 0.0;
  for (int trial = 0; trial < 12; ++trial) {
    Rng trial_rng = rng.Split(trial);
    std::vector<SchedJob> jobs;
    const int n = static_cast<int>(trial_rng.UniformInt(2, 3));
    for (int i = 0; i < n; ++i) {
      jobs.push_back(MakeJob(i, trial_rng.Uniform(2.0, 40.0),
                             trial_rng.Uniform(2.0, 12.0),
                             trial_rng.Uniform(0.2, 1.5), /*caps=*/5));
    }
    // Tight capacity so the allocation choice matters.
    const Resources capacity(trial_rng.Uniform(40.0, 80.0), 4000, 0, 100);

    const AllocationMap greedy = OptimusAllocator().Allocate(jobs, capacity);
    const AllocationMap optimal = ExhaustiveAllocator().Allocate(jobs, capacity);
    const double greedy_obj = ExhaustiveAllocator::Objective(jobs, greedy);
    const double optimal_obj = ExhaustiveAllocator::Objective(jobs, optimal);
    ASSERT_GT(optimal_obj, 0.0);
    EXPECT_GE(greedy_obj, optimal_obj - 1e-9);  // optimal really is optimal
    worst_gap = std::max(worst_gap, greedy_obj / optimal_obj - 1.0);
  }
  EXPECT_LT(worst_gap, 0.20) << "greedy strayed " << worst_gap * 100 << "% from optimal";
}

TEST(ExhaustiveAllocatorTest, DeterministicAndMatchesObjective) {
  std::vector<SchedJob> jobs = {MakeJob(0, 5.0, 3.0, 0.6, 4),
                                MakeJob(1, 15.0, 6.0, 1.0, 4)};
  const Resources capacity(60, 600, 0, 100);
  ExhaustiveAllocator exhaustive;
  const AllocationMap a = exhaustive.Allocate(jobs, capacity);
  const AllocationMap b = exhaustive.Allocate(jobs, capacity);
  EXPECT_EQ(ExhaustiveAllocator::Objective(jobs, a),
            ExhaustiveAllocator::Objective(jobs, b));
}

}  // namespace
}  // namespace optimus
