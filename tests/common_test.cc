#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace optimus {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1) == b.Uniform(0, 1)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, SplitIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng c1 = parent.Split(1);
  Rng c1_again = Rng(7).Split(1);
  EXPECT_DOUBLE_EQ(c1.Uniform(0, 1), c1_again.Uniform(0, 1));
  // Children of different streams should diverge.
  Rng c1b = Rng(7).Split(1);
  Rng c2b = Rng(7).Split(2);
  EXPECT_NE(c1b.Uniform(0, 1), c2b.Uniform(0, 1));
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, LogNormalFactorIsPositiveWithMedianNearOne) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double f = rng.LogNormalFactor(0.1);
    EXPECT_GT(f, 0.0);
    samples.push_back(f);
  }
  EXPECT_NEAR(Median(samples), 1.0, 0.02);
}

TEST(RngTest, LogNormalFactorSigmaZeroIsIdentity) {
  Rng rng(6);
  EXPECT_DOUBLE_EQ(rng.LogNormalFactor(0.0), 1.0);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, PoissonMeanRoughlyCorrect) {
  Rng rng(8);
  RunningStat stat;
  for (int i = 0; i < 5000; ++i) {
    stat.Add(static_cast<double>(rng.Poisson(3.0)));
  }
  EXPECT_NEAR(stat.mean(), 3.0, 0.15);
}

TEST(RunningStatTest, MatchesBatchStatistics) {
  RunningStat stat;
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double v : values) {
    stat.Add(v);
  }
  EXPECT_EQ(stat.count(), 5u);
  EXPECT_DOUBLE_EQ(stat.mean(), Mean(values));
  EXPECT_NEAR(stat.stddev(), StdDev(values), 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max(), 10.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 20.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 5.0);
}

TEST(StatsTest, EmptyVectorsAreSafe) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Sum({}), 0.0);
}

TEST(TablePrinterTest, AlignsColumnsAndCountsRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2.5"});
  EXPECT_EQ(table.num_rows(), 2u);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 3), "2.000");
}

}  // namespace
}  // namespace optimus
