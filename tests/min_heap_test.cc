// Unit tests for the d-ary min-heap shared by the allocator and the
// discrete-event kernel. The properties that matter downstream: pop order
// follows the comparator exactly (including explicit tie-break fields), is
// independent of push order and arity, and the heap behaves sanely across
// interleaved push/pop and clear/reuse cycles.

#include <algorithm>
#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/min_heap.h"

namespace optimus {
namespace {

struct IntBefore {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(MinHeapTest, EmptyAndSize) {
  MinHeap<int, IntBefore> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  heap.push(3);
  EXPECT_FALSE(heap.empty());
  EXPECT_EQ(heap.size(), 1u);
  heap.pop();
  EXPECT_TRUE(heap.empty());
}

TEST(MinHeapTest, PopsInSortedOrder) {
  MinHeap<int, IntBefore> heap;
  const std::vector<int> values = {9, 1, 8, 2, 7, 3, 6, 4, 5, 0};
  for (int v : values) heap.push(v);
  for (int want = 0; want < 10; ++want) {
    EXPECT_EQ(heap.top(), want);
    heap.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(MinHeapTest, DuplicatesAllSurface) {
  MinHeap<int, IntBefore> heap;
  for (int v : {5, 5, 1, 5, 1}) heap.push(v);
  std::vector<int> got;
  while (!heap.empty()) {
    got.push_back(heap.top());
    heap.pop();
  }
  EXPECT_EQ(got, (std::vector<int>{1, 1, 5, 5, 5}));
}

// The event-queue key shape: (time, kind, job_id). A total order over the
// keys must make pop order independent of push order.
struct Key {
  double time = 0.0;
  int kind = 0;
  int64_t job = 0;
  bool operator==(const Key& o) const {
    return time == o.time && kind == o.kind && job == o.job;
  }
};

struct KeyBefore {
  bool operator()(const Key& a, const Key& b) const {
    return std::tie(a.time, a.kind, a.job) < std::tie(b.time, b.kind, b.job);
  }
};

TEST(MinHeapTest, TieBreakByKindThenJob) {
  MinHeap<Key, KeyBefore> heap;
  heap.push({600.0, 3, 2});
  heap.push({600.0, 1, 9});
  heap.push({600.0, 1, 4});
  heap.push({300.0, 3, 7});
  heap.push({600.0, 0, 11});

  const std::vector<Key> want = {
      {300.0, 3, 7}, {600.0, 0, 11}, {600.0, 1, 4}, {600.0, 1, 9},
      {600.0, 3, 2}};
  for (const Key& k : want) {
    EXPECT_EQ(heap.top(), k);
    heap.pop();
  }
}

TEST(MinHeapTest, PopOrderIndependentOfPushOrder) {
  std::vector<Key> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back({static_cast<double>(i % 5) * 600.0, i % 3, i});
  }
  std::vector<Key> reference;
  {
    MinHeap<Key, KeyBefore> heap;
    for (const Key& k : keys) heap.push(k);
    while (!heap.empty()) {
      reference.push_back(heap.top());
      heap.pop();
    }
  }
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(keys.begin(), keys.end(), rng);
    MinHeap<Key, KeyBefore> heap;
    for (const Key& k : keys) heap.push(k);
    std::vector<Key> got;
    while (!heap.empty()) {
      got.push_back(heap.top());
      heap.pop();
    }
    EXPECT_EQ(got, reference) << "trial " << trial;
  }
}

TEST(MinHeapTest, ArityDoesNotChangePopOrder) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> dist(0, 999);
  std::vector<int> values;
  for (int i = 0; i < 500; ++i) values.push_back(dist(rng));

  auto drain = [&](auto& heap) {
    std::vector<int> got;
    for (int v : values) heap.push(v);
    while (!heap.empty()) {
      got.push_back(heap.top());
      heap.pop();
    }
    return got;
  };
  MinHeap<int, IntBefore, 2> h2;
  MinHeap<int, IntBefore, 4> h4;
  MinHeap<int, IntBefore, 8> h8;
  const std::vector<int> got2 = drain(h2);
  const std::vector<int> got4 = drain(h4);
  const std::vector<int> got8 = drain(h8);
  EXPECT_EQ(got2, got4);
  EXPECT_EQ(got4, got8);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(got4, sorted);
}

TEST(MinHeapTest, InterleavedPushPopMatchesMultiset) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> value(0, 50);
  std::uniform_int_distribution<int> coin(0, 2);
  MinHeap<int, IntBefore> heap;
  std::vector<int> mirror;  // kept sorted ascending
  for (int step = 0; step < 2000; ++step) {
    if (mirror.empty() || coin(rng) != 0) {
      const int v = value(rng);
      heap.push(v);
      mirror.insert(std::upper_bound(mirror.begin(), mirror.end(), v), v);
    } else {
      ASSERT_EQ(heap.top(), mirror.front());
      heap.pop();
      mirror.erase(mirror.begin());
    }
    ASSERT_EQ(heap.size(), mirror.size());
  }
}

TEST(MinHeapTest, ClearAndReuse) {
  MinHeap<int, IntBefore> heap;
  heap.reserve(16);
  for (int v : {3, 1, 2}) heap.push(v);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  heap.push(42);
  EXPECT_EQ(heap.top(), 42);
}

}  // namespace
}  // namespace optimus
