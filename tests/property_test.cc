// Property-based fuzz tests for the fitting stack: the NNLS solver and the
// Eqn-3/4 speed models must behave sanely on seeded random inputs — solutions
// stay non-negative and finite, residuals respect their bounds, and exactly
// representable problems are recovered exactly. Each case loops over many
// seeds so a regression in any numerical corner shows up deterministically.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/speed_model.h"
#include "src/solver/matrix.h"
#include "src/solver/nnls.h"

namespace optimus {
namespace {

bool AllFinite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// NNLS
// ---------------------------------------------------------------------------

TEST(NnlsPropertyTest, RandomProblemsSatisfyTheContract) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    const size_t m = static_cast<size_t>(rng.UniformInt(3, 12));
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 5));
    Matrix a(m, n);
    Vector b(m);
    double b_norm_sq = 0.0;
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < n; ++c) {
        a(r, c) = rng.Uniform(-2.0, 2.0);
      }
      b[r] = rng.Uniform(-2.0, 2.0);
      b_norm_sq += b[r] * b[r];
    }

    const NnlsResult result = SolveNnls(a, b);
    ASSERT_EQ(result.x.size(), n) << "seed " << seed;
    EXPECT_TRUE(AllFinite(result.x)) << "seed " << seed;
    for (size_t c = 0; c < n; ++c) {
      EXPECT_GE(result.x[c], 0.0) << "seed " << seed << " coefficient " << c;
    }
    EXPECT_TRUE(std::isfinite(result.residual_sum_of_squares)) << "seed " << seed;
    EXPECT_GE(result.residual_sum_of_squares, -1e-9) << "seed " << seed;
    // x = 0 is always feasible with residual ||b||^2, so the optimum (and any
    // reasonable iterate) can never exceed it.
    EXPECT_LE(result.residual_sum_of_squares, b_norm_sq + 1e-6) << "seed " << seed;
    EXPECT_LE(result.iterations, NnlsOptions{}.max_iterations) << "seed " << seed;
    // The reported residual must match the returned solution.
    EXPECT_NEAR(result.residual_sum_of_squares,
                ResidualSumOfSquares(a, result.x, b), 1e-6)
        << "seed " << seed;
  }
}

TEST(NnlsPropertyTest, RecoversFeasibleSolutionsExactly) {
  // When b = A x_true with x_true >= 0, the optimal residual is zero and the
  // active-set solver must find it (x_true itself when A has full column
  // rank, which random continuous matrices have almost surely).
  for (uint64_t seed = 100; seed < 130; ++seed) {
    Rng rng(seed);
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 4));
    const size_t m = n + 4;
    Matrix a(m, n);
    Vector x_true(n);
    for (size_t c = 0; c < n; ++c) {
      x_true[c] = rng.Uniform(0.0, 3.0);
    }
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < n; ++c) {
        a(r, c) = rng.Uniform(-1.0, 1.0) + (r == c ? 2.0 : 0.0);
      }
    }
    const Vector b = a.Times(x_true);

    const NnlsResult result = SolveNnls(a, b);
    EXPECT_TRUE(result.converged) << "seed " << seed;
    EXPECT_LT(result.residual_sum_of_squares, 1e-8) << "seed " << seed;
    ASSERT_EQ(result.x.size(), n);
    for (size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(result.x[c], x_true[c], 1e-5) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Speed models (Eqns 3 and 4)
// ---------------------------------------------------------------------------

// Ground-truth generative speed for random non-negative theta.
double TrueSpeed(TrainingMode mode, const std::vector<double>& theta,
                 double global_batch, int p, int w) {
  if (mode == TrainingMode::kAsync) {
    // f = w / (t0 + t1 (w/p) + t2 w + t3 p)
    return w / (theta[0] + theta[1] * (static_cast<double>(w) / p) +
                theta[2] * w + theta[3] * p);
  }
  // f = 1 / (t0 (M/w) + t1 + t2 (w/p) + t3 w + t4 p)
  return 1.0 / (theta[0] * (global_batch / w) + theta[1] +
                theta[2] * (static_cast<double>(w) / p) + theta[3] * w +
                theta[4] * p);
}

TEST(SpeedModelPropertyTest, FitsNoisyRandomCurvesWithinTheContract) {
  const int kGrid[] = {1, 2, 4, 8, 16};
  for (uint64_t seed = 0; seed < 24; ++seed) {
    const TrainingMode mode =
        seed % 2 == 0 ? TrainingMode::kSync : TrainingMode::kAsync;
    const int global_batch = 512;
    const size_t n_theta = mode == TrainingMode::kSync ? 5 : 4;
    Rng rng(seed + 7000);
    std::vector<double> theta(n_theta);
    for (double& t : theta) {
      t = rng.Uniform(0.001, 0.1);
    }

    SpeedModel model(mode, global_batch);
    for (int p : kGrid) {
      for (int w : kGrid) {
        const double speed = TrueSpeed(mode, theta, global_batch, p, w) *
                             rng.LogNormalFactor(0.05);
        model.AddSample(p, w, speed);
      }
    }
    ASSERT_TRUE(model.Fit()) << "seed " << seed;

    ASSERT_EQ(model.theta().size(), n_theta) << "seed " << seed;
    EXPECT_TRUE(AllFinite(model.theta())) << "seed " << seed;
    for (double t : model.theta()) {
      EXPECT_GE(t, 0.0) << "seed " << seed;
    }
    EXPECT_TRUE(std::isfinite(model.residual())) << "seed " << seed;
    EXPECT_GE(model.residual(), 0.0) << "seed " << seed;
    for (int p : kGrid) {
      for (int w : kGrid) {
        const double estimate = model.Estimate(p, w);
        EXPECT_TRUE(std::isfinite(estimate))
            << "seed " << seed << " (p, w) = (" << p << ", " << w << ")";
        EXPECT_GT(estimate, 0.0)
            << "seed " << seed << " (p, w) = (" << p << ", " << w << ")";
      }
    }
  }
}

TEST(SpeedModelPropertyTest, RecoversNoiselessCurvesAccurately) {
  // With zero noise the inverse speed is an exact non-negative combination of
  // the features, so the NNLS fit reproduces the generative curve.
  const int kGrid[] = {1, 2, 4, 8, 16};
  for (uint64_t seed = 50; seed < 66; ++seed) {
    const TrainingMode mode =
        seed % 2 == 0 ? TrainingMode::kSync : TrainingMode::kAsync;
    const int global_batch = 256;
    const size_t n_theta = mode == TrainingMode::kSync ? 5 : 4;
    Rng rng(seed + 9000);
    std::vector<double> theta(n_theta);
    for (double& t : theta) {
      t = rng.Uniform(0.001, 0.1);
    }

    SpeedModel model(mode, global_batch);
    for (int p : kGrid) {
      for (int w : kGrid) {
        model.AddSample(p, w, TrueSpeed(mode, theta, global_batch, p, w));
      }
    }
    ASSERT_TRUE(model.Fit()) << "seed " << seed;
    for (int p : kGrid) {
      for (int w : kGrid) {
        const double truth = TrueSpeed(mode, theta, global_batch, p, w);
        EXPECT_NEAR(model.Estimate(p, w), truth, 1e-3 * truth)
            << "seed " << seed << " (p, w) = (" << p << ", " << w << ")";
      }
    }
  }
}

TEST(SpeedModelPropertyTest, DegenerateSamplesDoNotProduceNonFinite) {
  // All samples at one (p, w): the system is underdetermined. Whatever Fit
  // decides, nothing may go NaN/inf and a successful fit must stay positive
  // at the sampled point.
  SpeedModel model(TrainingMode::kAsync, 0);
  for (int i = 0; i < 6; ++i) {
    model.AddSample(2, 4, 10.0);
  }
  if (model.Fit()) {
    EXPECT_TRUE(AllFinite(model.theta()));
    const double estimate = model.Estimate(2, 4);
    EXPECT_TRUE(std::isfinite(estimate));
    EXPECT_GT(estimate, 0.0);
  }
}

}  // namespace
}  // namespace optimus
