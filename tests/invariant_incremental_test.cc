// Incremental-auditor tests: the O(changed) check must enforce the same
// invariants as the full re-derivation, the tracker cross-check must catch
// corrupted incremental state that the cheap path cannot see, and switching
// audit modes must never perturb the simulation itself.

#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/sim/fault_injector.h"
#include "src/sim/invariant_auditor.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace optimus {
namespace {

struct Fixture {
  std::vector<Server> servers;
  JobPlacement placement;
  InvariantAuditor::JobView view;
  InvariantAuditor::Counts counts;

  Fixture() {
    servers.push_back(Server(0, Resources(16, 64, 0, 1)));
    servers.push_back(Server(1, Resources(16, 64, 0, 1)));
    placement.workers_per_server = {2, 0};
    placement.ps_per_server = {1, 0};
    view.job_id = 0;
    view.state = JobState::kRunning;
    view.steps_done = 10.0;
    view.num_ps = 1;
    view.num_workers = 2;
    view.worker_demand = Resources(2.5, 10, 0, 0.15);
    view.ps_demand = Resources(2.5, 10, 0, 0.15);
    view.placement = &placement;
    counts.submitted = 1;
    counts.completed_metric = 0;
  }

  // Registers the fixture's job with the tracker, as the simulator does at
  // decision-application time.
  void Track(InvariantAuditor* auditor) const {
    auditor->SetClusterSize(servers.size());
    auditor->SetPlacement(view.job_id, view.worker_demand, view.ps_demand,
                          placement);
  }
};

TEST(IncrementalAuditorTest, ConsistentStatePassesBothModes) {
  Fixture f;
  InvariantAuditor auditor;
  f.Track(&auditor);
  auditor.CheckIncremental(600.0, f.servers, {f.view}, f.counts);
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  EXPECT_EQ(auditor.checks_run(), 1);
  // Periodic full pass with tracker cross-check: still clean, and the
  // cross-check does not count as an extra check.
  auditor.Check(1200.0, f.servers, {f.view}, f.counts);
  auditor.CheckTrackerAgainstViews(1200.0, {f.view});
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  EXPECT_EQ(auditor.checks_run(), 2);
}

TEST(IncrementalAuditorTest, CatchesDeadServerIncrementally) {
  Fixture f;
  InvariantAuditor auditor;
  f.Track(&auditor);
  f.servers[0].SetAvailable(false);
  auditor.CheckIncremental(600.0, f.servers, {f.view}, f.counts);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "dead-server");
}

TEST(IncrementalAuditorTest, CatchesOvercommitIncrementally) {
  Fixture f;
  // 8 workers at 10 GB each overflow the server's 64 GB.
  f.placement.workers_per_server = {8, 0};
  f.view.num_workers = 8;
  InvariantAuditor auditor;
  f.Track(&auditor);
  auditor.CheckIncremental(600.0, f.servers, {f.view}, f.counts);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "capacity");
}

TEST(IncrementalAuditorTest, CatchesAllocationTotalsMismatchIncrementally) {
  Fixture f;
  InvariantAuditor auditor;
  f.Track(&auditor);
  f.view.num_workers = 3;  // allocation says 3, tracked placement holds 2
  auditor.CheckIncremental(600.0, f.servers, {f.view}, f.counts);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "capacity");
}

TEST(IncrementalAuditorTest, OnlyDirtyServersAreRecheckedForCapacity) {
  Fixture f;
  InvariantAuditor auditor;
  f.Track(&auditor);
  auditor.CheckIncremental(600.0, f.servers, {f.view}, f.counts);
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  // No occupancy change since the last check: a second incremental pass is
  // clean too (and exercises the empty-dirty-set path).
  auditor.CheckIncremental(1200.0, f.servers, {f.view}, f.counts);
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  EXPECT_EQ(auditor.checks_run(), 2);
}

TEST(IncrementalAuditorTest, FullCrossCheckCatchesCorruptedTracker) {
  Fixture f;
  InvariantAuditor auditor;
  auditor.SetClusterSize(f.servers.size());
  // Corrupt the incremental state: track a placement with the same totals as
  // the truth but different servers. The cheap incremental check only
  // compares totals, so it passes...
  JobPlacement corrupted;
  corrupted.workers_per_server = {1, 1};
  corrupted.ps_per_server = {0, 1};
  auditor.SetPlacement(f.view.job_id, f.view.worker_demand, f.view.ps_demand,
                       corrupted);
  auditor.CheckIncremental(600.0, f.servers, {f.view}, f.counts);
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  // ...which is exactly why the periodic full re-derivation cross-checks the
  // tracker against the true views and flags the drift.
  auditor.CheckTrackerAgainstViews(1200.0, {f.view});
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "audit-divergence");
}

TEST(IncrementalAuditorTest, CrossCheckCatchesStaleTrackerEntry) {
  Fixture f;
  InvariantAuditor auditor;
  f.Track(&auditor);
  // The job pauses and releases everything, but the tracker is (wrongly) not
  // cleared — the cross-check must notice the stale contribution.
  f.view.state = JobState::kPaused;
  f.view.num_ps = 0;
  f.view.num_workers = 0;
  f.view.placement = nullptr;
  auditor.CheckTrackerAgainstViews(600.0, {f.view});
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "audit-divergence");
}

TEST(IncrementalAuditorTest, ClearPlacementRemovesContribution) {
  Fixture f;
  InvariantAuditor auditor;
  f.Track(&auditor);
  auditor.ClearPlacement(f.view.job_id);
  f.view.state = JobState::kPaused;
  f.view.num_ps = 0;
  f.view.num_workers = 0;
  f.view.placement = nullptr;
  auditor.CheckIncremental(600.0, f.servers, {f.view}, f.counts);
  auditor.CheckTrackerAgainstViews(600.0, {f.view});
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
}

// ---------------------------------------------------------------------------
// Simulator-level equivalence: incremental vs. full-every-interval auditing
// must observe the identical simulation (auditing is read-only) and both
// find a healthy faulted run clean.
// ---------------------------------------------------------------------------

RunMetrics RunFaultedSimulator(bool incremental_audit, int full_audit_period) {
  SimulatorConfig sim;
  sim.seed = 11;
  sim.max_sim_time_s = 2e5;
  sim.audit = true;
  sim.incremental_audit = incremental_audit;
  sim.full_audit_period = full_audit_period;
  std::string error;
  EXPECT_TRUE(ParseFaultPlan(
      "crash@1800:server=2,recover=9000;slow@2400:factor=0.7,duration=1800",
      &sim.fault.plan, &error))
      << error;
  sim.fault.task_failure_prob = 0.03;
  sim.fault.checkpoint_period_s = 1800.0;

  WorkloadConfig workload;
  workload.num_jobs = 8;
  workload.arrival_window_s = 1200.0;

  Rng workload_rng(sim.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator simulator(sim, BuildTestbed(), std::move(specs));
  return simulator.Run();
}

TEST(IncrementalAuditorTest, SimulationIsIdenticalUnderAllAuditModes) {
  const RunMetrics full = RunFaultedSimulator(/*incremental_audit=*/false, 16);
  const RunMetrics incremental = RunFaultedSimulator(/*incremental_audit=*/true, 16);
  // Forced cross-check every interval (the strictest mode): every check is a
  // full re-derivation plus a tracker-divergence pass.
  const RunMetrics forced = RunFaultedSimulator(/*incremental_audit=*/true, 1);

  for (const RunMetrics* m : {&full, &incremental, &forced}) {
    EXPECT_GT(m->audit_checks, 0);
    EXPECT_EQ(m->audit_violations, 0);
  }
  for (const RunMetrics* m : {&incremental, &forced}) {
    EXPECT_EQ(full.completed_jobs, m->completed_jobs);
    EXPECT_EQ(full.avg_jct_s, m->avg_jct_s);          // bitwise
    EXPECT_EQ(full.makespan_s, m->makespan_s);        // bitwise
    EXPECT_EQ(full.rolled_back_steps, m->rolled_back_steps);
    EXPECT_EQ(full.job_evictions, m->job_evictions);
    EXPECT_EQ(full.task_failures, m->task_failures);
    EXPECT_EQ(full.audit_checks, m->audit_checks);
  }
}

}  // namespace
}  // namespace optimus
