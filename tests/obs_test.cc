// Observability subsystem tests: registry semantics, shard-merge determinism
// across thread counts, histogram bucket edges, flight-recorder wraparound and
// dump-on-violation, exporter golden files, and the end-to-end acceptance
// criterion — the exported registry contents and flight-recorder sequence of
// a simulator run are bitwise identical for --threads {1, 2, 8}, with and
// without a fault plan.
//
// Regenerating the exporter goldens after an INTENDED format change:
//
//   OPTIMUS_REGEN_GOLDEN=1 ./build/tests/obs_test
//
// then commit tests/golden/metrics.prom and tests/golden/run_report.json.

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/threadpool.h"
#include "src/obs/exporters.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/phase_profiler.h"
#include "src/sim/fault_injector.h"
#include "src/sim/invariant_auditor.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

#ifndef OPTIMUS_SOURCE_DIR
#error "OPTIMUS_SOURCE_DIR must be defined to locate the golden files"
#endif

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// Registry basics
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, RegistersAndFindsMetrics) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("jobs_total", "Jobs.");
  Gauge* g = registry.AddGauge("clock_s", "Sim time.");
  Histogram* h = registry.AddHistogram("jct_s", "JCTs.", {10.0, 100.0});

  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.Find("jobs_total"), c);
  EXPECT_EQ(registry.Find("clock_s"), g);
  EXPECT_EQ(registry.Find("jct_s"), h);
  EXPECT_EQ(registry.Find("nope"), nullptr);
  // Registration order is export order.
  EXPECT_EQ(registry.metric(0).name(), "jobs_total");
  EXPECT_EQ(registry.metric(2).kind(), MetricKind::kHistogram);

  c->Add();
  c->Add(2.5);
  EXPECT_DOUBLE_EQ(c->value(), 3.5);
  c->Set(10.0);
  EXPECT_DOUBLE_EQ(c->value(), 10.0);
  g->Set(-4.0);
  EXPECT_DOUBLE_EQ(g->value(), -4.0);
}

TEST(MetricsRegistryTest, ProfilingFlagIsPerMetric) {
  MetricsRegistry registry;
  registry.AddCounter("det_total", "Deterministic.");
  Gauge* wall = registry.AddGauge("wall_s", "Wall clock.", /*profiling=*/true);
  EXPECT_FALSE(registry.Find("det_total")->profiling());
  EXPECT_TRUE(wall->profiling());
}

// ---------------------------------------------------------------------------
// Histogram bucket edges and quantiles
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketEdgesAreUpperInclusive) {
  MetricsRegistry registry;
  Histogram* h = registry.AddHistogram("h", "H.", {1.0, 2.0, 4.0});
  // Exactly on a bound lands in that bucket (Prometheus `le` semantics).
  h->Record(1.0);   // bucket 0 (<= 1)
  h->Record(1.5);   // bucket 1 (<= 2)
  h->Record(2.0);   // bucket 1
  h->Record(4.0);   // bucket 2 (<= 4)
  h->Record(4.01);  // overflow (+Inf)
  h->Record(-1.0);  // bucket 0

  ASSERT_EQ(h->buckets().size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(h->buckets()[0], 2);
  EXPECT_EQ(h->buckets()[1], 2);
  EXPECT_EQ(h->buckets()[2], 1);
  EXPECT_EQ(h->buckets()[3], 1);
  EXPECT_EQ(h->count(), 6);
  EXPECT_DOUBLE_EQ(h->sum(), 1.0 + 1.5 + 2.0 + 4.0 + 4.01 - 1.0);
}

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.AddHistogram("h", "H.", {10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) {
    h->Record(5.0);   // bucket 0
  }
  for (int i = 0; i < 10; ++i) {
    h->Record(15.0);  // bucket 1
  }
  // p50 sits exactly at the edge between buckets 0 and 1.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 10.0);
  // p75 is halfway through bucket 1: 10 + 0.5 * (20 - 10).
  EXPECT_DOUBLE_EQ(h->Quantile(0.75), 15.0);
  // Quantiles landing in the overflow bucket clamp to the last finite bound.
  h->Record(1000.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 40.0);
}

TEST(HistogramQuantileTest, MatchesHandComputedValues) {
  const std::vector<double> bounds = {1.0, 2.0};
  // 4 in (…, 1], 4 in (1, 2], 2 overflow.
  const std::vector<int64_t> counts = {4, 4, 2};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.4), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.6), 1.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.95), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({}, {0}, 0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Shard merges: determinism across thread counts, associativity
// ---------------------------------------------------------------------------

struct ShardFixture {
  MetricsRegistry registry;
  Counter* work = nullptr;
  Counter* frac = nullptr;
  Gauge* last = nullptr;
  Histogram* h = nullptr;

  ShardFixture() {
    work = registry.AddCounter("work_total", "Items processed.");
    frac = registry.AddCounter("frac_total", "Fractional sums.");
    last = registry.AddGauge("last_item", "Last item value.");
    h = registry.AddHistogram("item_hist", "Item values.", {8.0, 64.0, 512.0});
  }

  // What work item i records (deliberately non-associative double values).
  void RecordItem(MetricsShard* shard, int64_t i) const {
    shard->Add(work);
    shard->Add(frac, 0.1 * static_cast<double>(i + 1) / 3.0);
    shard->Set(last, static_cast<double>(i));
    shard->Record(h, static_cast<double>(i * i) / 7.0);
  }
};

std::string ExportAfterShardedRun(int threads, int64_t items) {
  ShardFixture f;
  std::vector<MetricsShard> shards;
  shards.reserve(static_cast<size_t>(items));
  for (int64_t i = 0; i < items; ++i) {
    shards.emplace_back(f.registry);
  }
  ThreadPool pool(threads);
  pool.ParallelFor(items,
                   [&](int64_t i) { f.RecordItem(&shards[static_cast<size_t>(i)], i); });
  // Serial merge in index order — the determinism contract.
  for (const MetricsShard& s : shards) {
    f.registry.Merge(s);
  }
  return ExportPrometheusString(f.registry);
}

TEST(MetricsShardTest, MergeInIndexOrderIsThreadCountInvariant) {
  const std::string serial = ExportAfterShardedRun(1, 97);
  EXPECT_EQ(ExportAfterShardedRun(2, 97), serial);
  EXPECT_EQ(ExportAfterShardedRun(8, 97), serial);
}

TEST(MetricsShardTest, ShardedRunMatchesDirectSerialRecording) {
  // Direct serial recording into the registry.
  ShardFixture direct;
  for (int64_t i = 0; i < 41; ++i) {
    direct.work->Add();
    direct.frac->Add(0.1 * static_cast<double>(i + 1) / 3.0);
    direct.last->Set(static_cast<double>(i));
    direct.h->Record(static_cast<double>(i * i) / 7.0);
  }
  EXPECT_EQ(ExportAfterShardedRun(4, 41), ExportPrometheusString(direct.registry));
}

TEST(MetricsShardTest, IntegerMergesAreAssociative) {
  // Integer counter adds and histogram bucket counts are exactly associative:
  // a pairwise merge tree gives the same result as the flat index-order merge.
  ShardFixture flat;
  ShardFixture tree;
  constexpr int64_t kItems = 16;
  std::vector<MetricsShard> flat_shards;
  std::vector<MetricsShard> tree_shards;
  for (int64_t i = 0; i < kItems; ++i) {
    flat_shards.emplace_back(flat.registry);
    tree_shards.emplace_back(tree.registry);
  }
  for (int64_t i = 0; i < kItems; ++i) {
    // Integer-valued doubles only, so even the double sums are exact.
    flat_shards[static_cast<size_t>(i)].Add(flat.work, static_cast<double>(i));
    flat_shards[static_cast<size_t>(i)].Record(flat.h, static_cast<double>(i));
    tree_shards[static_cast<size_t>(i)].Add(tree.work, static_cast<double>(i));
    tree_shards[static_cast<size_t>(i)].Record(tree.h, static_cast<double>(i));
  }
  for (const MetricsShard& s : flat_shards) {
    flat.registry.Merge(s);
  }
  // Pairwise tree: fold shard 2k+1 into 2k, then merge survivors in order.
  for (size_t k = 0; k + 1 < tree_shards.size(); k += 2) {
    tree_shards[k].MergeFrom(tree_shards[k + 1]);
  }
  for (size_t k = 0; k < tree_shards.size(); k += 2) {
    tree.registry.Merge(tree_shards[k]);
  }
  EXPECT_EQ(ExportPrometheusString(tree.registry),
            ExportPrometheusString(flat.registry));
}

// ---------------------------------------------------------------------------
// Phase profiler
// ---------------------------------------------------------------------------

TEST(PhaseProfilerTest, AccumulatesAndMirrorsProfilingGauges) {
  MetricsRegistry registry;
  PhaseProfiler profiler;
  profiler.AttachRegistry(&registry, "wall_");
  const int a = profiler.RegisterPhase("alpha");
  const int b = profiler.RegisterPhase("beta");
  profiler.Add(a, 1.25);
  profiler.Add(a, 0.25);
  profiler.Add(b, 3.0);
  EXPECT_DOUBLE_EQ(profiler.seconds(a), 1.5);
  EXPECT_DOUBLE_EQ(profiler.seconds(b), 3.0);
  EXPECT_EQ(profiler.name(a), "alpha");

  const Metric* ga = registry.Find("wall_alpha_seconds");
  ASSERT_NE(ga, nullptr);
  EXPECT_TRUE(ga->profiling());
  EXPECT_DOUBLE_EQ(static_cast<const Gauge*>(ga)->value(), 1.5);

  {
    ScopedTimer timer(&profiler, b);
  }
  EXPECT_GE(profiler.seconds(b), 3.0);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, WrapsAroundKeepingTheNewestEvents) {
  FlightRecorder recorder(4);
  ASSERT_TRUE(recorder.enabled());
  for (int i = 0; i < 10; ++i) {
    recorder.Record(100.0 * i, FlightEventKind::kScheduled, i, i + 1, 2 * i);
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.size(), 4u);
  const std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: sequence numbers 6..9 survive.
  for (size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].seq, 6 + k);
    EXPECT_EQ(events[k].job_id, static_cast<int>(6 + k));
    EXPECT_DOUBLE_EQ(events[k].time_s, 100.0 * static_cast<double>(6 + k));
  }
}

TEST(FlightRecorderTest, DepthZeroIsDisabledNoOp) {
  FlightRecorder recorder(0);
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(1.0, FlightEventKind::kEvicted, 3);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.Events().empty());
}

TEST(FlightRecorderTest, DumpAndJsonCarryTheEventFields) {
  FlightRecorder recorder(8);
  recorder.Record(600.0, FlightEventKind::kScaled, 4, 2, 6);
  recorder.Record(1200.0, FlightEventKind::kSlowdown, -1, 0, 0, 0.7);
  std::ostringstream dump;
  recorder.Dump(dump);
  EXPECT_NE(dump.str().find("scaled"), std::string::npos);
  EXPECT_NE(dump.str().find("slowdown"), std::string::npos);
  std::ostringstream json;
  recorder.WriteJson(json);
  EXPECT_NE(json.str().find("\"kind\": \"scaled\""), std::string::npos);
  EXPECT_NE(json.str().find("\"job\": 4"), std::string::npos);
}

// The auditor's violation reports land in the flight recorder, so the
// post-mortem dump names the failed invariant.
TEST(FlightRecorderTest, AuditorRecordsViolationsIntoTheRecorder) {
  FlightRecorder recorder(16);
  InvariantAuditor auditor;
  auditor.set_flight_recorder(&recorder);

  std::vector<Server> servers = BuildTestbed();
  // Corrupted view: a "running" job with no allocation at all.
  InvariantAuditor::JobView bad;
  bad.job_id = 42;
  bad.state = JobState::kRunning;
  bad.num_ps = 0;
  bad.num_workers = 0;
  InvariantAuditor::Counts counts;
  counts.submitted = 1;
  auditor.Check(600.0, servers, {bad}, counts);

  ASSERT_FALSE(auditor.ok());
  const std::vector<FlightEvent> events = recorder.Events();
  ASSERT_FALSE(events.empty());
  bool found = false;
  for (const FlightEvent& e : events) {
    if (e.kind == FlightEventKind::kAuditViolation &&
        e.detail.find("state:") != std::string::npos &&
        e.detail.find("42") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no kAuditViolation event naming job 42";
}

// ---------------------------------------------------------------------------
// Exporter golden files
// ---------------------------------------------------------------------------

// A small fixed registry + series + flight recorder exercising every metric
// kind, special characters, and the profiling flag.
struct GoldenFixture {
  MetricsRegistry registry;
  MetricsSeries series;
  FlightRecorder flight{4};

  GoldenFixture() {
    Counter* jobs = registry.AddCounter("demo_jobs_total", "Jobs \"done\".");
    Gauge* temp = registry.AddGauge("demo_temp", "Signed gauge.");
    Histogram* lat =
        registry.AddHistogram("demo_latency_seconds", "Latency.", {0.5, 2.0});
    Gauge* wall = registry.AddGauge("demo_wall_seconds", "Wall clock.",
                                    /*profiling=*/true);
    jobs->Add(3.0);
    temp->Set(-1.5);
    lat->Record(0.25);
    lat->Record(1.0);
    lat->Record(10.0);
    wall->Set(0.125);
    series.Sample(600.0, registry);
    jobs->Add(1.0);
    temp->Set(2.25);
    series.Sample(1200.0, registry);
    flight.Record(600.0, FlightEventKind::kScheduled, 1, 2, 4);
    flight.Record(900.0, FlightEventKind::kEvicted, 1, 0, 0, 0.0,
                  "server=3 \"down\"");
    flight.Record(1200.0, FlightEventKind::kAuditCheck, -1, 0, 0, 0.0, "full");
  }
};

void CompareToGolden(const std::string& actual, const std::string& filename) {
  const std::string path =
      std::string(OPTIMUS_SOURCE_DIR) + "/tests/golden/" + filename;
  if (std::getenv("OPTIMUS_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — run with OPTIMUS_REGEN_GOLDEN=1 to create it";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str())
      << "exporter output drifted from " << filename
      << "; if intended, regenerate with OPTIMUS_REGEN_GOLDEN=1 and commit";
}

TEST(ExporterGoldenTest, PrometheusTextMatchesGolden) {
  GoldenFixture f;
  CompareToGolden(ExportPrometheusString(f.registry), "metrics.prom");
}

TEST(ExporterGoldenTest, JsonRunReportMatchesGolden) {
  GoldenFixture f;
  CompareToGolden(
      ExportJsonReportString(f.registry, &f.series, &f.flight), "run_report.json");
}

TEST(ExporterTest, IncludeProfilingFalseDropsWallMetrics) {
  GoldenFixture f;
  ExportOptions options;
  options.include_profiling = false;
  const std::string prom = ExportPrometheusString(f.registry, options);
  EXPECT_EQ(prom.find("demo_wall_seconds"), std::string::npos);
  EXPECT_NE(prom.find("demo_jobs_total"), std::string::npos);
  const std::string json =
      ExportJsonReportString(f.registry, nullptr, nullptr, options);
  EXPECT_EQ(json.find("demo_wall_seconds"), std::string::npos);
}

TEST(MetricsSeriesTest, ColumnsFreezeAtFirstSampleAndRowsAccumulate) {
  GoldenFixture f;
  ASSERT_EQ(f.series.num_rows(), 2u);
  // Times are tracked separately (the JSON exporter prepends a time_s
  // column); profiling metrics are excluded; histograms contribute _count
  // and _sum columns.
  ASSERT_FALSE(f.series.columns().empty());
  EXPECT_EQ(f.series.columns()[0], "demo_jobs_total");
  bool has_wall = false;
  bool has_hist_count = false;
  for (const std::string& c : f.series.columns()) {
    if (c == "demo_wall_seconds") {
      has_wall = true;
    }
    if (c == "demo_latency_seconds_count") {
      has_hist_count = true;
    }
  }
  EXPECT_FALSE(has_wall);
  EXPECT_TRUE(has_hist_count);
  EXPECT_DOUBLE_EQ(f.series.times()[0], 600.0);
  EXPECT_DOUBLE_EQ(f.series.times()[1], 1200.0);
}

// ---------------------------------------------------------------------------
// End-to-end: simulator exports are bitwise thread-count invariant
// ---------------------------------------------------------------------------

// The golden-trace pinned scenario, parameterized over threads / faults / obs.
std::unique_ptr<Simulator> MakeScenario(int threads, bool faulted, bool obs_on) {
  SimulatorConfig config;
  config.seed = 7;
  config.max_sim_time_s = 2e5;
  config.threads = threads;
  config.obs.enabled = obs_on;
  config.obs.per_interval_series = obs_on;
  if (faulted) {
    std::string error;
    const bool ok = ParseFaultPlan(
        "crash@1800:server=2,recover=5400;"
        "rack@4200:servers=6-8,recover=6600;"
        "slow@2400:factor=0.7,duration=1800",
        &config.fault.plan, &error);
    EXPECT_TRUE(ok) << error;
    config.fault.task_failure_prob = 0.02;
    config.fault.checkpoint_period_s = 3600.0;
  }
  WorkloadConfig workload;
  workload.num_jobs = 6;
  workload.arrival_window_s = 2400.0;
  Rng rng(config.seed ^ 0x5eedULL);
  return std::make_unique<Simulator>(config, BuildTestbed(),
                                     GenerateWorkload(workload, &rng));
}

// Deterministic fingerprint of a finished run's observability output: the
// profiling-free registry export, the full flight-recorder JSON (sequence
// numbers included), and the series row count.
std::string ObservabilityFingerprint(Simulator* sim) {
  ExportOptions options;
  options.include_profiling = false;
  std::ostringstream os;
  os << ExportPrometheusString(sim->registry(), options);
  sim->flight_recorder().WriteJson(os);
  os << "\nrows=" << sim->series().num_rows() << "\n";
  return os.str();
}

TEST(SimObservabilityTest, ExportsAreBitwiseIdenticalAcrossThreadsAndFaults) {
  for (const bool faulted : {false, true}) {
    std::unique_ptr<Simulator> base = MakeScenario(1, faulted, true);
    base->Run();
    const std::string want = ObservabilityFingerprint(base.get());
    EXPECT_NE(want.find("optimus_jobs_completed_total"), std::string::npos);
    for (const int threads : {2, 8}) {
      std::unique_ptr<Simulator> sim = MakeScenario(threads, faulted, true);
      sim->Run();
      EXPECT_EQ(ObservabilityFingerprint(sim.get()), want)
          << "observability diverged at threads=" << threads
          << " faulted=" << faulted;
    }
  }
}

TEST(SimObservabilityTest, DisablingObservabilityLeavesSimulationUnchanged) {
  std::unique_ptr<Simulator> on = MakeScenario(1, true, true);
  std::unique_ptr<Simulator> off = MakeScenario(1, true, false);
  const RunMetrics a = on->Run();
  const RunMetrics b = off->Run();
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.jcts, b.jcts);
  EXPECT_EQ(a.total_scalings, b.total_scalings);
  EXPECT_EQ(a.job_evictions, b.job_evictions);
  EXPECT_EQ(a.task_failures, b.task_failures);
  EXPECT_DOUBLE_EQ(a.rolled_back_steps, b.rolled_back_steps);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  // Off really is off.
  EXPECT_EQ(off->registry().size(), 0u);
  EXPECT_FALSE(off->flight_recorder().enabled());
  EXPECT_EQ(off->series().num_rows(), 0u);
}

TEST(SimObservabilityTest, RegistryMirrorsRunMetricsAndWallPhases) {
  std::unique_ptr<Simulator> sim = MakeScenario(1, true, true);
  const RunMetrics metrics = sim->Run();
  const MetricsRegistry& reg = sim->registry();

  auto counter = [&reg](const char* name) {
    const Metric* m = reg.Find(name);
    EXPECT_NE(m, nullptr) << name;
    return static_cast<const Counter*>(m)->value();
  };
  EXPECT_DOUBLE_EQ(counter("optimus_jobs_completed_total"), metrics.completed_jobs);
  EXPECT_DOUBLE_EQ(counter("optimus_scalings_total"), metrics.total_scalings);
  EXPECT_DOUBLE_EQ(counter("optimus_server_crashes_total"), metrics.server_crashes);
  EXPECT_DOUBLE_EQ(counter("optimus_job_evictions_total"), metrics.job_evictions);
  EXPECT_DOUBLE_EQ(counter("optimus_task_failures_total"), metrics.task_failures);
  EXPECT_DOUBLE_EQ(counter("optimus_checkpoints_total"), metrics.checkpoints_taken);
  EXPECT_DOUBLE_EQ(counter("optimus_rolled_back_steps_total"),
                   metrics.rolled_back_steps);
  EXPECT_DOUBLE_EQ(counter("optimus_audit_checks_total"), metrics.audit_checks);
  EXPECT_DOUBLE_EQ(counter("optimus_audit_violations_total"),
                   metrics.audit_violations);
  EXPECT_DOUBLE_EQ(counter("optimus_straggler_replacements_total"),
                   metrics.straggler_replacements);
  EXPECT_GT(counter("optimus_speed_probes_total"), 0.0);
  EXPECT_GE(counter("optimus_speed_probes_total"),
            counter("optimus_speed_evals_total"));
  EXPECT_GT(counter("optimus_alloc_grants_total"), 0.0);
  EXPECT_GT(counter("optimus_conv_fits_total"), 0.0);
  EXPECT_GT(counter("optimus_speedmodel_fits_total"), 0.0);

  // JCT histogram count equals completed jobs; its sum equals the JCT sum.
  const Metric* jct = reg.Find("optimus_jct_seconds");
  ASSERT_NE(jct, nullptr);
  const Histogram* h = static_cast<const Histogram*>(jct);
  EXPECT_EQ(h->count(), metrics.completed_jobs);
  double jct_sum = 0.0;
  for (double v : metrics.jcts) {
    jct_sum += v;
  }
  EXPECT_NEAR(h->sum(), jct_sum, 1e-6);

  // Wall phases: profiling gauges exist and mirror the RunMetrics fields.
  const Metric* wall = reg.Find("optimus_wall_schedule_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_TRUE(wall->profiling());
  EXPECT_DOUBLE_EQ(static_cast<const Gauge*>(wall)->value(),
                   metrics.wall_schedule_s);

  // Flight recorder saw the run's lifecycle.
  EXPECT_GT(sim->flight_recorder().total_recorded(), 0u);
  bool saw_crash = false;
  bool saw_audit = false;
  for (const FlightEvent& e : sim->flight_recorder().Events()) {
    saw_crash |= e.kind == FlightEventKind::kServerCrash;
    saw_audit |= e.kind == FlightEventKind::kAuditCheck;
  }
  EXPECT_TRUE(saw_audit);
  (void)saw_crash;  // the tail may have rotated past the early crashes
}

}  // namespace
}  // namespace optimus
