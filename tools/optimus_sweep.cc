// optimus_sweep — scenario grid runner.
//
// Loads one or more scenario-v1 JSON files (docs/SCENARIOS.md), fans every
// (scenario, policy, repeat) cell out over the deterministic ThreadPool, and
// writes:
//   - a merged comparison report (optimus-sweep-report-v1 JSON) to --out,
//   - optionally one optimus-run-report-v1 per (scenario, policy) cell into
//     --report-dir,
//   - a human-readable comparison table to stdout.
// All outputs are bitwise identical for any --threads value.
//
// Examples:
//   optimus_sweep scenarios/*.json --out=BENCH_scenarios.json
//   optimus_sweep scenarios/fig11_testbed.json --threads=8
//       --report-dir=/tmp/reports

#include <filesystem>
#include <fstream>
#include <iostream>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/workload/scenario.h"
#include "src/workload/sweep.h"

namespace {

using namespace optimus;

constexpr char kUsage[] = R"(optimus_sweep: scenario grid runner

Usage: optimus_sweep SCENARIO.json [SCENARIO.json ...] [flags]

Flags:
  --out=PATH          merged optimus-sweep-report-v1 JSON
                      (default BENCH_scenarios.json)
  --report-dir=DIR    write one optimus-run-report-v1 per (scenario, policy)
                      cell as DIR/<scenario>__<policy>.json (default: off)
  --threads=N         worker threads for the grid; the merged report is
                      bitwise identical for any value. 0 = OPTIMUS_THREADS
                      env var, then 1 (default 0)
  --engine=NAME       override every scenario's simulation engine
                      (interval|events; default: what each file says)
  --list-policies     print the SchedulerRegistry catalog and exit
  --help              this message

Scenario files are scenario-v1 JSON (docs/SCENARIOS.md). Exit codes:
0 = every job in every cell completed, 1 = some did not, 2 = bad usage or
scenario, 3 = invariant-audit violation.
)";

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::cout << kUsage;
    return 0;
  }
  if (flags.GetBool("list-policies", false)) {
    TablePrinter table({"policy", "display", "description"});
    for (const std::string& name : SchedulerRegistry::Global().Names()) {
      const SchedulerPolicyInfo* info = SchedulerRegistry::Global().Find(name);
      table.AddRow({info->name, info->display_name, info->description});
    }
    table.Print(std::cout);
    return 0;
  }

  const std::string out_path = flags.GetString("out", "BENCH_scenarios.json");
  const std::string report_dir = flags.GetString("report-dir", "");
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const std::string engine_name = flags.GetString("engine", "");

  const std::vector<std::string> unknown = flags.UnconsumedKeys();
  if (!unknown.empty()) {
    std::cerr << "unknown flag(s):";
    for (const std::string& k : unknown) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n\n" << kUsage;
    return 2;
  }
  if (flags.positional().empty()) {
    std::cerr << "no scenario files given\n\n" << kUsage;
    return 2;
  }
  SimEngine engine = SimEngine::kInterval;
  if (!engine_name.empty() && !ParseSimEngine(engine_name, &engine)) {
    std::cerr << "unknown --engine '" << engine_name
              << "' (expected interval|events)\n";
    return 2;
  }

  std::vector<ScenarioSpec> scenarios;
  for (const std::string& path : flags.positional()) {
    ScenarioSpec scenario;
    std::string error;
    if (!LoadScenarioFile(path, &scenario, &error)) {
      std::cerr << "bad scenario: " << error << "\n";
      return 2;
    }
    for (const ScenarioSpec& existing : scenarios) {
      if (existing.name == scenario.name) {
        std::cerr << "duplicate scenario name '" << scenario.name
                  << "' (names key report files and table rows)\n";
        return 2;
      }
    }
    if (!engine_name.empty()) {
      scenario.sim.engine = engine;
    }
    scenarios.push_back(std::move(scenario));
  }

  SweepOptions options;
  options.threads = threads;
  options.capture_run_reports = !report_dir.empty();
  const SweepResult result = RunSweep(scenarios, options);

  if (!report_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(report_dir, ec);
    if (ec) {
      std::cerr << "cannot create " << report_dir << ": " << ec.message() << "\n";
      return 2;
    }
    for (const SweepCellResult& cell : result.cells) {
      const std::string path =
          report_dir + "/" + cell.scenario + "__" + cell.policy + ".json";
      std::ofstream os(path);
      OPTIMUS_CHECK(os.good()) << "cannot write " << path;
      os << cell.run_report;
    }
    std::cout << "wrote " << result.cells.size() << " run report(s) to "
              << report_dir << "\n";
  }

  {
    std::ofstream os(out_path);
    OPTIMUS_CHECK(os.good()) << "cannot write " << out_path;
    os << MergedSweepJson(scenarios, result);
    std::cout << "wrote " << result.cells.size() << " cell(s) to " << out_path
              << "\n";
  }

  TablePrinter table({"scenario", "policy", "avg JCT (s)", "JCT stddev",
                      "vs baseline", "makespan (s)", "completed"});
  for (const SweepCellResult& cell : result.cells) {
    table.AddRow({cell.scenario, cell.display_name,
                  TablePrinter::FormatDouble(cell.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(cell.avg_jct_stddev, 0),
                  TablePrinter::FormatDouble(cell.jct_vs_baseline, 2) + "x",
                  TablePrinter::FormatDouble(cell.makespan_mean, 0),
                  TablePrinter::FormatDouble(cell.completed_fraction * 100.0, 0) +
                      "%"});
  }
  table.Print(std::cout);

  if (result.audit_violations_total > 0) {
    std::cerr << "invariant audit FAILED in " << result.audit_violations_total
              << " check(s) across the grid\n";
    return 3;
  }
  return result.completed_fraction_min == 1.0 ? 0 : 1;
}
