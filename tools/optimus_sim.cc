// optimus_sim — command-line driver for the cluster simulator.
//
// Runs one workload under one scheduling policy and prints metrics; can dump
// the per-interval timeline and the lifecycle event trace as CSV for offline
// analysis. Policies come from the SchedulerRegistry (`--policy list` shows
// the catalog), and whole experiments can be described declaratively with a
// scenario-v1 JSON file (`--scenario`, docs/SCENARIOS.md).
//
// Examples:
//   optimus_sim --policy=optimus --jobs=12 --seed=7
//   optimus_sim --policy=drf --servers=40 --arrivals=poisson --repeats=3
//   optimus_sim --policy list
//   optimus_sim --scenario=scenarios/fig11_testbed.json
//   optimus_sim --scenario=scenarios/fig11_testbed.json --policy=tetris
//               --trace-csv=/tmp/events.csv

#include <fstream>
#include <iostream>

#include "src/cluster/server.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/obs/exporters.h"
#include "src/sim/experiment.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/sim/trace_replay.h"
#include "src/sim/workload.h"
#include "src/workload/scenario.h"
#include "src/workload/sweep.h"

namespace {

using namespace optimus;

// The policy list in --help is generated from the registry, so a newly
// registered policy shows up with no CLI edit.
std::string Usage() {
  std::string policies;
  for (const std::string& name : SchedulerRegistry::Global().Names()) {
    policies += policies.empty() ? name : "|" + name;
  }
  std::string usage =
      "optimus_sim: deep-learning cluster scheduling simulator\n"
      "\n"
      "Flags:\n"
      "  --policy=" + policies + "|list\n"
      "                                        scheduling policy from the\n"
      "                                        SchedulerRegistry (default optimus);\n"
      "                                        `list` prints the catalog\n"
      "  --format=table|json                   output format for `--policy list`\n"
      "                                        (default table)\n"
      "  --scheduler=NAME                      deprecated alias for --policy (warns\n"
      "                                        on stderr; scheduled for removal)\n"
      "  --scenario=FILE                       run a scenario-v1 JSON experiment\n"
      "                                        (docs/SCENARIOS.md); --policy, --seed,\n"
      "                                        --repeats, --threads override the file\n"
      "  --jobs=N                              number of jobs (default 9)\n"
      "  --servers=N                           uniform cluster size; 0 = paper's\n"
      "                                        13-server testbed (default 0)\n"
      "  --arrivals=uniform|poisson|trace      arrival process (default uniform)\n"
      "  --steps-per-epoch=N                   dataset downscaling cap (default 80)\n"
      "  --interval=SECONDS                    scheduling interval (default 600)\n"
      "  --engine=interval|events              simulation engine (default interval):\n"
      "                                        `events` advances jobs by discrete\n"
      "                                        epoch/fault/round events instead of\n"
      "                                        fixed-interval polling; scheduling\n"
      "                                        rounds keep the same cadence\n"
      "                                        (docs/ALGORITHMS.md section 16)\n"
      "  --seed=N                              workload + simulation seed (default 42)\n"
      "  --repeats=N                           averaged repeats (default 1)\n"
      "  --stragglers=P                        injection prob/job/interval (default 0.12)\n"
      "  --fault-plan=SPEC|@FILE               scripted server crashes / rack outages /\n"
      "                                        slowdowns (grammar: docs/FAULTS.md)\n"
      "  --task-failure-prob=P                 per-task per-interval container-death\n"
      "                                        probability (default 0)\n"
      "  --checkpoint-period=SECONDS           periodic durable checkpoints; 0 =\n"
      "                                        checkpoint only on scalings (default 0)\n"
      "  --audit / --no-audit                  invariant auditor (default on); any\n"
      "                                        violation makes the run exit 3\n"
      "  --background-share=F                  mixed-workload reservation (default 0)\n"
      "  --oracle                              ground-truth estimates, no online fitting\n"
      "  --threads=N                           worker threads for experiment repeats,\n"
      "                                        per-arrival pre-run sampling, and\n"
      "                                        scenario grids; all metrics are bitwise\n"
      "                                        identical for any value. 0 =\n"
      "                                        OPTIMUS_THREADS env var, then 1\n"
      "                                        (default 0)\n"
      "  --trace-csv=PATH                      write the event trace (repeats=1 only)\n"
      "  --timeline-csv=PATH                   write the interval timeline (repeats=1)\n"
      "  --metrics-out=PATH                    export the metrics registry after the\n"
      "                                        run (repeats=1 only; docs/OBSERVABILITY.md)\n"
      "  --metrics-format=prom|json            export format (default prom); json also\n"
      "                                        samples the per-interval series\n"
      "  --flight-recorder-depth=N             recent-event ring depth, dumped on\n"
      "                                        invariant violations (default 256; 0 off)\n"
      "  --workload-csv=PATH                   replay a workload trace instead of\n"
      "                                        generating one (repeats=1 only)\n"
      "  --dump-workload-csv=PATH              write the generated workload as CSV\n"
      "  --help                                this message\n";
  return usage;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Machine-readable policy catalog (`--policy list --format=json`): one object
// per registered policy with its family, placement, and trait set, so
// harnesses can discover capabilities without parsing the human table.
int PrintPolicyListJson() {
  std::cout << "[\n";
  bool first = true;
  for (const SchedulerPolicyInfo& info : SchedulerRegistry::Global().Policies()) {
    if (!first) {
      std::cout << ",\n";
    }
    first = false;
    const PolicyTraits& t = info.traits;
    std::cout << "  {\"name\": \"" << JsonEscape(info.name) << "\", "
              << "\"display_name\": \"" << JsonEscape(info.display_name) << "\", "
              << "\"description\": \"" << JsonEscape(info.description) << "\", "
              << "\"family\": \"" << AllocatorPolicyName(info.allocator_family)
              << "\", "
              << "\"placement\": \"" << PlacementPolicyName(info.placement)
              << "\", "
              << "\"traits\": {"
              << "\"use_paa\": " << (t.use_paa ? "true" : "false") << ", "
              << "\"straggler_handling\": "
              << (t.straggler_handling ? "true" : "false") << ", "
              << "\"young_job_priority_factor\": " << t.young_job_priority_factor
              << ", "
              << "\"adapts_batch\": " << (t.adapts_batch ? "true" : "false")
              << ", "
              << "\"uses_sensitivity\": "
              << (t.uses_sensitivity ? "true" : "false") << "}}";
  }
  std::cout << "\n]\n";
  return 0;
}

int PrintPolicyList(const std::string& format) {
  if (format == "json") {
    return PrintPolicyListJson();
  }
  if (format != "table") {
    std::cerr << "unknown --format '" << format << "' (expected table|json)\n";
    return 2;
  }
  TablePrinter table({"policy", "display", "family", "description"});
  for (const std::string& name : SchedulerRegistry::Global().Names()) {
    const SchedulerPolicyInfo* info = SchedulerRegistry::Global().Find(name);
    table.AddRow({info->name, info->display_name,
                  AllocatorPolicyName(info->allocator_family),
                  info->description});
  }
  table.Print(std::cout);
  return 0;
}

ArrivalProcess ParseArrivals(const std::string& name) {
  if (name == "uniform") {
    return ArrivalProcess::kUniformRandom;
  }
  if (name == "poisson") {
    return ArrivalProcess::kPoisson;
  }
  if (name == "trace") {
    return ArrivalProcess::kGoogleTrace;
  }
  OPTIMUS_LOG(Fatal) << "unknown arrival process '" << name
                     << "' (expected uniform|poisson|trace)";
  return ArrivalProcess::kUniformRandom;
}

// Outputs of the single instrumented run path (all optional).
struct OutputFiles {
  std::string trace_csv;
  std::string timeline_csv;
  std::string metrics_out;
  std::string metrics_format = "prom";
  std::string dump_workload_csv;

  bool any() const {
    return !trace_csv.empty() || !timeline_csv.empty() || !metrics_out.empty() ||
           !dump_workload_csv.empty();
  }
};

// Runs one fully instrumented simulation and writes the requested artifacts.
// Returns the process exit code.
int RunSingle(const SimulatorConfig& sim_config, std::vector<Server> servers,
              std::vector<JobSpec> specs, const std::string& policy_name,
              const OutputFiles& out) {
  if (!out.dump_workload_csv.empty()) {
    std::ofstream os(out.dump_workload_csv);
    OPTIMUS_CHECK(os.good()) << "cannot write " << out.dump_workload_csv;
    WriteWorkloadCsv(specs, os);
    std::cout << "wrote " << specs.size() << " jobs to " << out.dump_workload_csv
              << "\n";
  }
  Simulator sim(sim_config, std::move(servers), std::move(specs));
  RunMetrics metrics = sim.Run();
  if (!out.trace_csv.empty()) {
    std::ofstream os(out.trace_csv);
    OPTIMUS_CHECK(os.good()) << "cannot write " << out.trace_csv;
    sim.trace().WriteCsv(os);
    std::cout << "wrote " << sim.trace().size() << " events to " << out.trace_csv
              << "\n";
  }
  if (!out.timeline_csv.empty()) {
    std::ofstream os(out.timeline_csv);
    OPTIMUS_CHECK(os.good()) << "cannot write " << out.timeline_csv;
    os << "time_s,running_tasks,worker_cpu_util_pct,ps_cpu_util_pct\n";
    for (const TimelinePoint& p : metrics.timeline) {
      os << p.time_s << "," << p.running_tasks << "," << p.worker_cpu_util_pct
         << "," << p.ps_cpu_util_pct << "\n";
    }
    std::cout << "wrote " << metrics.timeline.size() << " timeline points to "
              << out.timeline_csv << "\n";
  }
  if (!out.metrics_out.empty()) {
    std::ofstream os(out.metrics_out);
    OPTIMUS_CHECK(os.good()) << "cannot write " << out.metrics_out;
    if (out.metrics_format == "json") {
      ExportJsonReport(sim.registry(), &sim.series(), &sim.flight_recorder(), os);
    } else {
      ExportPrometheus(sim.registry(), os);
    }
    std::cout << "wrote " << sim.registry().size() << " metrics ("
              << out.metrics_format << ") to " << out.metrics_out << "\n";
  }
  std::cout << "policy " << policy_name << ": completed " << metrics.completed_jobs
            << "/" << metrics.total_jobs << ", avg JCT "
            << TablePrinter::FormatDouble(metrics.avg_jct_s, 0) << " s, makespan "
            << TablePrinter::FormatDouble(metrics.makespan_s, 0) << " s\n";
  if (sim_config.fault.enabled()) {
    std::cout << "faults: " << metrics.server_crashes << " crash(es), "
              << metrics.server_recoveries << " recover(ies), "
              << metrics.job_evictions << " eviction(s), "
              << metrics.task_failures << " task failure(s), "
              << TablePrinter::FormatDouble(metrics.rolled_back_steps, 0)
              << " steps rolled back\n";
  }
  if (metrics.audit_violations > 0) {
    std::cerr << "invariant audit FAILED: " << sim.auditor().Summary() << "\n";
    if (sim.flight_recorder().enabled()) {
      std::cerr << "flight recorder tail (" << sim.flight_recorder().size()
                << " events):\n";
      sim.flight_recorder().Dump(std::cerr);
    }
    return 3;
  }
  return metrics.completed_jobs == metrics.total_jobs ? 0 : 1;
}

// Runs a scenario's policy grid (possibly restricted by --policy) and prints
// the comparison table. Returns the process exit code.
int RunScenario(ScenarioSpec scenario, int threads, const OutputFiles& out) {
  if (scenario.policies.size() == 1 && scenario.repeats == 1) {
    // One cell: run it fully instrumented so --trace-csv and friends work.
    return RunSingle(scenario.MakeSimConfig(scenario.policies[0]),
                     scenario.cluster.Build(), scenario.JobsForRepeat(0),
                     scenario.policies[0], out);
  }
  if (out.any()) {
    std::cerr << "--trace-csv/--timeline-csv/--metrics-out/--dump-workload-csv "
                 "need a single-cell scenario (one policy, repeats=1); this "
                 "one has "
              << scenario.policies.size() << " policy(ies) x "
              << scenario.repeats << " repeat(s)\n";
    return 2;
  }
  SweepOptions options;
  options.threads = threads;
  options.capture_run_reports = false;
  const SweepResult result = RunSweep({scenario}, options);
  std::cout << "scenario " << scenario.name << ": " << scenario.workload.num_jobs
            << " jobs, " << scenario.cluster.NumServers() << " server(s), "
            << scenario.repeats << " repeat(s)\n";
  TablePrinter table({"policy", "avg JCT (s)", "JCT stddev", "vs " +
                          result.cells[0].display_name,
                      "makespan (s)", "completed"});
  for (const SweepCellResult& cell : result.cells) {
    table.AddRow({cell.display_name,
                  TablePrinter::FormatDouble(cell.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(cell.avg_jct_stddev, 0),
                  TablePrinter::FormatDouble(cell.jct_vs_baseline, 2) + "x",
                  TablePrinter::FormatDouble(cell.makespan_mean, 0),
                  TablePrinter::FormatDouble(cell.completed_fraction * 100.0, 0) +
                      "%"});
  }
  table.Print(std::cout);
  if (result.audit_violations_total > 0) {
    std::cerr << "invariant audit FAILED in " << result.audit_violations_total
              << " check(s) across the grid\n";
    return 3;
  }
  return result.completed_fraction_min == 1.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::cout << Usage();
    return 0;
  }

  // --policy is canonical; --scheduler remains as a deprecated alias with the
  // same semantics and exit codes (removal documented in docs/POLICIES.md).
  const bool scheduler_alias_used = flags.Has("scheduler");
  std::string policy_flag = flags.GetString("policy", flags.GetString("scheduler", ""));
  if (scheduler_alias_used && !flags.Has("policy")) {
    std::cerr << "warning: --scheduler is deprecated; use --policy (same "
                 "values). --scheduler will be removed in a future release.\n";
  }
  if (policy_flag.empty() && !flags.positional().empty() &&
      flags.positional()[0] == "list") {
    policy_flag = "list";  // accept `--policy list` (space-separated form)
  }
  if (policy_flag == "list") {
    return PrintPolicyList(flags.GetString("format", "table"));
  }
  const std::string scenario_path = flags.GetString("scenario", "");
  const int num_jobs = static_cast<int>(flags.GetInt("jobs", 9));
  const int num_servers = static_cast<int>(flags.GetInt("servers", 0));
  const std::string arrivals = flags.GetString("arrivals", "uniform");
  const int64_t steps_per_epoch = flags.GetInt("steps-per-epoch", 80);
  const double interval_s = flags.GetDouble("interval", 600.0);
  const bool engine_given = flags.Has("engine");
  const std::string engine_name = flags.GetString("engine", "interval");
  const bool seed_given = flags.Has("seed");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const bool repeats_given = flags.Has("repeats");
  const int repeats = static_cast<int>(flags.GetInt("repeats", 1));
  const double stragglers = flags.GetDouble("stragglers", 0.12);
  // Both spellings accepted; ISSUE-2 documents the underscore forms.
  const std::string fault_plan_spec =
      flags.GetString("fault-plan", flags.GetString("fault_plan", ""));
  const double task_failure_prob =
      flags.GetDouble("task-failure-prob", flags.GetDouble("task_failure_prob", 0.0));
  const double checkpoint_period =
      flags.GetDouble("checkpoint-period", flags.GetDouble("checkpoint_period", 0.0));
  const bool audit = flags.GetBool("audit", true);
  const double background_share = flags.GetDouble("background-share", 0.0);
  const bool oracle = flags.GetBool("oracle", false);
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  OutputFiles out;
  out.trace_csv = flags.GetString("trace-csv", "");
  out.timeline_csv = flags.GetString("timeline-csv", "");
  out.metrics_out = flags.GetString("metrics-out", "");
  out.metrics_format = flags.GetString("metrics-format", "prom");
  out.dump_workload_csv = flags.GetString("dump-workload-csv", "");
  const int flight_recorder_depth =
      static_cast<int>(flags.GetInt("flight-recorder-depth", 256));
  const std::string workload_csv = flags.GetString("workload-csv", "");

  const std::vector<std::string> unknown = flags.UnconsumedKeys();
  if (!unknown.empty()) {
    std::cerr << "unknown flag(s):";
    for (const std::string& k : unknown) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n\n" << Usage();
    return 2;
  }
  if (out.metrics_format != "prom" && out.metrics_format != "json") {
    std::cerr << "unknown --metrics-format '" << out.metrics_format
              << "' (expected prom|json)\n";
    return 2;
  }
  SimEngine engine = SimEngine::kInterval;
  if (!ParseSimEngine(engine_name, &engine)) {
    std::cerr << "unknown --engine '" << engine_name
              << "' (expected interval|events)\n";
    return 2;
  }
  if (!policy_flag.empty() && !SchedulerRegistry::Global().Has(policy_flag)) {
    std::cerr << SchedulerRegistry::Global().UnknownPolicyMessage(policy_flag)
              << "\n";
    return 2;
  }

  if (!scenario_path.empty()) {
    ScenarioSpec scenario;
    std::string error;
    if (!LoadScenarioFile(scenario_path, &scenario, &error)) {
      std::cerr << "bad scenario: " << error << "\n";
      return 2;
    }
    if (!policy_flag.empty()) {
      scenario.policies = {policy_flag};
    }
    if (seed_given) {
      scenario.seed = seed;
    }
    if (repeats_given) {
      scenario.repeats = repeats;
    }
    if (!workload_csv.empty()) {
      std::cerr << "--workload-csv cannot be combined with --scenario (the "
                   "scenario defines the workload)\n";
      return 2;
    }
    if (engine_given) {
      scenario.sim.engine = engine;
    }
    scenario.sim.obs.flight_recorder_depth = flight_recorder_depth;
    scenario.sim.obs.per_interval_series = out.metrics_format == "json";
    return RunScenario(std::move(scenario), threads, out);
  }

  const std::string policy_name = policy_flag.empty() ? "optimus" : policy_flag;
  ExperimentConfig config;
  {
    std::string error;
    OPTIMUS_CHECK(ApplySchedulerPolicy(policy_name, &config.sim, &error)) << error;
  }
  config.sim.interval_s = interval_s;
  config.sim.straggler.injection_prob_per_interval = stragglers;
  if (!fault_plan_spec.empty()) {
    std::string parse_error;
    if (!ParseFaultPlan(fault_plan_spec, &config.sim.fault.plan, &parse_error)) {
      std::cerr << "bad fault plan: " << parse_error << "\n";
      return 2;
    }
  }
  config.sim.fault.task_failure_prob = task_failure_prob;
  config.sim.fault.checkpoint_period_s = checkpoint_period;
  config.sim.audit = audit;
  config.sim.engine = engine;
  config.sim.background_share = background_share;
  config.sim.oracle_estimates = oracle;
  config.sim.threads = threads;
  config.threads = threads;
  config.workload.num_jobs = num_jobs;
  config.workload.arrivals = ParseArrivals(arrivals);
  config.workload.interval_s = interval_s;
  config.workload.target_steps_per_epoch = steps_per_epoch;
  config.repeats = repeats;
  config.base_seed = seed;
  config.label = policy_name;
  config.sim.obs.flight_recorder_depth = flight_recorder_depth;
  // The JSON run report carries a per-interval time series; sample it.
  config.sim.obs.per_interval_series = out.metrics_format == "json";

  auto cluster = [num_servers]() {
    return num_servers > 0
               ? BuildUniformCluster(num_servers, Resources(16, 80, 0, 1))
               : BuildTestbed();
  };

  if (repeats == 1 && (out.any() || !workload_csv.empty())) {
    // Single instrumented run.
    SimulatorConfig sim_config = config.sim;
    sim_config.seed = seed;
    std::vector<JobSpec> specs;
    if (!workload_csv.empty()) {
      std::ifstream in(workload_csv);
      OPTIMUS_CHECK(in.good()) << "cannot read " << workload_csv;
      std::string parse_error;
      if (!ReadWorkloadCsv(in, TraceReplayOptions{}, &specs, &parse_error)) {
        std::cerr << "bad workload trace: " << parse_error << "\n";
        return 2;
      }
    } else {
      Rng rng(seed ^ 0x5eedULL);
      specs = GenerateWorkload(config.workload, &rng);
    }
    return RunSingle(sim_config, cluster(), std::move(specs), policy_name, out);
  }

  ExperimentResult result = RunExperiment(config, cluster);
  TablePrinter table({"policy", "jobs", "avg JCT (s)", "JCT stddev", "makespan (s)",
                      "makespan stddev", "completed", "scaling overhead %"});
  table.AddRow({policy_name, std::to_string(num_jobs),
                TablePrinter::FormatDouble(result.avg_jct_mean, 0),
                TablePrinter::FormatDouble(result.avg_jct_stddev, 0),
                TablePrinter::FormatDouble(result.makespan_mean, 0),
                TablePrinter::FormatDouble(result.makespan_stddev, 0),
                TablePrinter::FormatDouble(result.completed_fraction * 100.0, 0) + "%",
                TablePrinter::FormatDouble(result.scaling_overhead_mean * 100.0, 2)});
  table.Print(std::cout);
  if (config.sim.fault.enabled()) {
    std::cout << "faults: " << TablePrinter::FormatDouble(result.job_evictions_mean, 1)
              << " eviction(s)/run, "
              << TablePrinter::FormatDouble(result.task_failures_mean, 1)
              << " task failure(s)/run\n";
  }
  if (result.audit_violations_total > 0) {
    std::cerr << "invariant audit FAILED in " << result.audit_violations_total
              << " check(s) across repeats\n";
    return 3;
  }
  return result.completed_fraction == 1.0 ? 0 : 1;
}
