// optimus_sim — command-line driver for the cluster simulator.
//
// Runs one workload under one scheduler configuration and prints metrics; can
// dump the per-interval timeline and the lifecycle event trace as CSV for
// offline analysis.
//
// Examples:
//   optimus_sim --scheduler=optimus --jobs=12 --seed=7
//   optimus_sim --scheduler=drf --servers=40 --arrivals=poisson --repeats=3
//   optimus_sim --scheduler=optimus --trace-csv=/tmp/events.csv
//               --timeline-csv=/tmp/timeline.csv

#include <fstream>
#include <iostream>

#include "src/cluster/server.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/sim/experiment.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/sim/trace_replay.h"
#include "src/sim/workload.h"

namespace {

using namespace optimus;

constexpr char kUsage[] = R"(optimus_sim: deep-learning cluster scheduling simulator

Flags:
  --scheduler=optimus|drf|tetris|fifo   scheduler preset (default optimus)
  --jobs=N                              number of jobs (default 9)
  --servers=N                           uniform cluster size; 0 = paper's
                                        13-server testbed (default 0)
  --arrivals=uniform|poisson|trace      arrival process (default uniform)
  --steps-per-epoch=N                   dataset downscaling cap (default 80)
  --interval=SECONDS                    scheduling interval (default 600)
  --seed=N                              workload + simulation seed (default 42)
  --repeats=N                           averaged repeats (default 1)
  --stragglers=P                        injection prob/job/interval (default 0.12)
  --fault-plan=SPEC|@FILE               scripted server crashes / rack outages /
                                        slowdowns (grammar: docs/FAULTS.md)
  --task-failure-prob=P                 per-task per-interval container-death
                                        probability (default 0)
  --checkpoint-period=SECONDS           periodic durable checkpoints; 0 =
                                        checkpoint only on scalings (default 0)
  --audit / --no-audit                  invariant auditor (default on); any
                                        violation makes the run exit 3
  --background-share=F                  mixed-workload reservation (default 0)
  --oracle                              ground-truth estimates, no online fitting
  --threads=N                           worker threads for experiment repeats
                                        and per-arrival pre-run sampling; all
                                        metrics are bitwise identical for any
                                        value. 0 = OPTIMUS_THREADS env var,
                                        then 1 (default 0)
  --trace-csv=PATH                      write the event trace (repeats=1 only)
  --timeline-csv=PATH                   write the interval timeline (repeats=1)
  --metrics-out=PATH                    export the metrics registry after the
                                        run (repeats=1 only; docs/OBSERVABILITY.md)
  --metrics-format=prom|json            export format (default prom); json also
                                        samples the per-interval series
  --flight-recorder-depth=N             recent-event ring depth, dumped on
                                        invariant violations (default 256; 0 off)
  --workload-csv=PATH                   replay a workload trace instead of
                                        generating one (repeats=1 only)
  --dump-workload-csv=PATH              write the generated workload as CSV
  --help                                this message
)";

SchedulerPreset ParseScheduler(const std::string& name) {
  if (name == "optimus") {
    return SchedulerPreset::kOptimus;
  }
  if (name == "drf") {
    return SchedulerPreset::kDrf;
  }
  if (name == "tetris") {
    return SchedulerPreset::kTetris;
  }
  if (name == "fifo") {
    return SchedulerPreset::kOptimus;  // placement/PAA like Optimus; see below
  }
  OPTIMUS_LOG(Fatal) << "unknown scheduler '" << name
                     << "' (expected optimus|drf|tetris|fifo)";
  return SchedulerPreset::kOptimus;
}

ArrivalProcess ParseArrivals(const std::string& name) {
  if (name == "uniform") {
    return ArrivalProcess::kUniformRandom;
  }
  if (name == "poisson") {
    return ArrivalProcess::kPoisson;
  }
  if (name == "trace") {
    return ArrivalProcess::kGoogleTrace;
  }
  OPTIMUS_LOG(Fatal) << "unknown arrival process '" << name
                     << "' (expected uniform|poisson|trace)";
  return ArrivalProcess::kUniformRandom;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::cout << kUsage;
    return 0;
  }

  const std::string scheduler_name = flags.GetString("scheduler", "optimus");
  const int num_jobs = static_cast<int>(flags.GetInt("jobs", 9));
  const int num_servers = static_cast<int>(flags.GetInt("servers", 0));
  const std::string arrivals = flags.GetString("arrivals", "uniform");
  const int64_t steps_per_epoch = flags.GetInt("steps-per-epoch", 80);
  const double interval_s = flags.GetDouble("interval", 600.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 1));
  const double stragglers = flags.GetDouble("stragglers", 0.12);
  // Both spellings accepted; ISSUE-2 documents the underscore forms.
  const std::string fault_plan_spec =
      flags.GetString("fault-plan", flags.GetString("fault_plan", ""));
  const double task_failure_prob =
      flags.GetDouble("task-failure-prob", flags.GetDouble("task_failure_prob", 0.0));
  const double checkpoint_period =
      flags.GetDouble("checkpoint-period", flags.GetDouble("checkpoint_period", 0.0));
  const bool audit = flags.GetBool("audit", true);
  const double background_share = flags.GetDouble("background-share", 0.0);
  const bool oracle = flags.GetBool("oracle", false);
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const std::string trace_csv = flags.GetString("trace-csv", "");
  const std::string timeline_csv = flags.GetString("timeline-csv", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string metrics_format = flags.GetString("metrics-format", "prom");
  const int flight_recorder_depth =
      static_cast<int>(flags.GetInt("flight-recorder-depth", 256));
  const std::string workload_csv = flags.GetString("workload-csv", "");
  const std::string dump_workload_csv = flags.GetString("dump-workload-csv", "");

  const std::vector<std::string> unknown = flags.UnconsumedKeys();
  if (!unknown.empty()) {
    std::cerr << "unknown flag(s):";
    for (const std::string& k : unknown) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n\n" << kUsage;
    return 2;
  }

  ExperimentConfig config;
  ApplySchedulerPreset(ParseScheduler(scheduler_name), &config.sim);
  if (scheduler_name == "fifo") {
    config.sim.allocator = AllocatorPolicy::kFifo;
  }
  config.sim.interval_s = interval_s;
  config.sim.straggler.injection_prob_per_interval = stragglers;
  if (!fault_plan_spec.empty()) {
    std::string parse_error;
    if (!ParseFaultPlan(fault_plan_spec, &config.sim.fault.plan, &parse_error)) {
      std::cerr << "bad fault plan: " << parse_error << "\n";
      return 2;
    }
  }
  config.sim.fault.task_failure_prob = task_failure_prob;
  config.sim.fault.checkpoint_period_s = checkpoint_period;
  config.sim.audit = audit;
  config.sim.background_share = background_share;
  config.sim.oracle_estimates = oracle;
  config.sim.threads = threads;
  config.threads = threads;
  config.workload.num_jobs = num_jobs;
  config.workload.arrivals = ParseArrivals(arrivals);
  config.workload.interval_s = interval_s;
  config.workload.target_steps_per_epoch = steps_per_epoch;
  config.repeats = repeats;
  config.base_seed = seed;
  config.label = scheduler_name;
  if (metrics_format != "prom" && metrics_format != "json") {
    std::cerr << "unknown --metrics-format '" << metrics_format
              << "' (expected prom|json)\n";
    return 2;
  }
  config.sim.obs.flight_recorder_depth = flight_recorder_depth;
  // The JSON run report carries a per-interval time series; sample it.
  config.sim.obs.per_interval_series = metrics_format == "json";

  auto cluster = [num_servers]() {
    return num_servers > 0
               ? BuildUniformCluster(num_servers, Resources(16, 80, 0, 1))
               : BuildTestbed();
  };

  if (repeats == 1 &&
      (!trace_csv.empty() || !timeline_csv.empty() || !workload_csv.empty() ||
       !dump_workload_csv.empty() || !metrics_out.empty())) {
    // Single instrumented run.
    SimulatorConfig sim_config = config.sim;
    sim_config.seed = seed;
    std::vector<JobSpec> specs;
    if (!workload_csv.empty()) {
      std::ifstream in(workload_csv);
      OPTIMUS_CHECK(in.good()) << "cannot read " << workload_csv;
      std::string parse_error;
      if (!ReadWorkloadCsv(in, TraceReplayOptions{}, &specs, &parse_error)) {
        std::cerr << "bad workload trace: " << parse_error << "\n";
        return 2;
      }
    } else {
      Rng rng(seed ^ 0x5eedULL);
      specs = GenerateWorkload(config.workload, &rng);
    }
    if (!dump_workload_csv.empty()) {
      std::ofstream os(dump_workload_csv);
      OPTIMUS_CHECK(os.good()) << "cannot write " << dump_workload_csv;
      WriteWorkloadCsv(specs, os);
      std::cout << "wrote " << specs.size() << " jobs to " << dump_workload_csv << "\n";
    }
    Simulator sim(sim_config, cluster(), specs);
    RunMetrics metrics = sim.Run();
    if (!trace_csv.empty()) {
      std::ofstream os(trace_csv);
      OPTIMUS_CHECK(os.good()) << "cannot write " << trace_csv;
      sim.trace().WriteCsv(os);
      std::cout << "wrote " << sim.trace().size() << " events to " << trace_csv << "\n";
    }
    if (!timeline_csv.empty()) {
      std::ofstream os(timeline_csv);
      OPTIMUS_CHECK(os.good()) << "cannot write " << timeline_csv;
      os << "time_s,running_tasks,worker_cpu_util_pct,ps_cpu_util_pct\n";
      for (const TimelinePoint& p : metrics.timeline) {
        os << p.time_s << "," << p.running_tasks << "," << p.worker_cpu_util_pct << ","
           << p.ps_cpu_util_pct << "\n";
      }
      std::cout << "wrote " << metrics.timeline.size() << " timeline points to "
                << timeline_csv << "\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      OPTIMUS_CHECK(os.good()) << "cannot write " << metrics_out;
      if (metrics_format == "json") {
        ExportJsonReport(sim.registry(), &sim.series(), &sim.flight_recorder(),
                         os);
      } else {
        ExportPrometheus(sim.registry(), os);
      }
      std::cout << "wrote " << sim.registry().size() << " metrics ("
                << metrics_format << ") to " << metrics_out << "\n";
    }
    std::cout << "scheduler " << scheduler_name << ": completed "
              << metrics.completed_jobs << "/" << metrics.total_jobs << ", avg JCT "
              << TablePrinter::FormatDouble(metrics.avg_jct_s, 0) << " s, makespan "
              << TablePrinter::FormatDouble(metrics.makespan_s, 0) << " s\n";
    if (sim_config.fault.enabled()) {
      std::cout << "faults: " << metrics.server_crashes << " crash(es), "
                << metrics.server_recoveries << " recover(ies), "
                << metrics.job_evictions << " eviction(s), "
                << metrics.task_failures << " task failure(s), "
                << TablePrinter::FormatDouble(metrics.rolled_back_steps, 0)
                << " steps rolled back\n";
    }
    if (metrics.audit_violations > 0) {
      std::cerr << "invariant audit FAILED: " << sim.auditor().Summary() << "\n";
      if (sim.flight_recorder().enabled()) {
        std::cerr << "flight recorder tail (" << sim.flight_recorder().size()
                  << " events):\n";
        sim.flight_recorder().Dump(std::cerr);
      }
      return 3;
    }
    return metrics.completed_jobs == metrics.total_jobs ? 0 : 1;
  }

  ExperimentResult result = RunExperiment(config, cluster);
  TablePrinter table({"scheduler", "jobs", "avg JCT (s)", "JCT stddev", "makespan (s)",
                      "makespan stddev", "completed", "scaling overhead %"});
  table.AddRow({scheduler_name, std::to_string(num_jobs),
                TablePrinter::FormatDouble(result.avg_jct_mean, 0),
                TablePrinter::FormatDouble(result.avg_jct_stddev, 0),
                TablePrinter::FormatDouble(result.makespan_mean, 0),
                TablePrinter::FormatDouble(result.makespan_stddev, 0),
                TablePrinter::FormatDouble(result.completed_fraction * 100.0, 0) + "%",
                TablePrinter::FormatDouble(result.scaling_overhead_mean * 100.0, 2)});
  table.Print(std::cout);
  if (config.sim.fault.enabled()) {
    std::cout << "faults: " << TablePrinter::FormatDouble(result.job_evictions_mean, 1)
              << " eviction(s)/run, "
              << TablePrinter::FormatDouble(result.task_failures_mean, 1)
              << " task failure(s)/run\n";
  }
  if (result.audit_violations_total > 0) {
    std::cerr << "invariant audit FAILED in " << result.audit_violations_total
              << " check(s) across repeats\n";
    return 3;
  }
  return result.completed_fraction == 1.0 ? 0 : 1;
}
