// optimus_serve — long-running scheduler service over the simulator.
//
// Wraps one live Simulator (built from a scenario-v1 file) behind the
// newline-delimited JSON protocol documented in docs/SERVICE.md: submit /
// kill jobs online, run what-if admission queries, advance simulated time,
// snapshot and restore sessions, and export the metrics registry — over
// stdin/stdout by default or a Unix-domain socket with --socket.
//
// Replay mode (--replay) streams a recorded request log through the session
// and exits; because responses carry no wall-clock values, the response
// stream is bitwise identical across runs and --threads settings — recorded
// sessions double as regression goldens (tests/golden/serve/).
//
// Exit codes: 0 clean, 2 usage/config errors, 3 invariant-audit violations.
//
// Examples:
//   optimus_serve --scenario=scenarios/smoke/grid_a.json
//   optimus_serve --scenario=s.json --engine=events --threads=8
//   optimus_serve --scenario=s.json --replay=session.ndjson --replay-out=resp.ndjson
//   optimus_serve --scenario=s.json --socket=/tmp/optimus.sock

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/common/flags.h"
#include "src/obs/exporters.h"
#include "src/sched/scheduler_registry.h"
#include "src/service/replay.h"
#include "src/service/server.h"
#include "src/service/session.h"
#include "src/workload/scenario.h"

namespace {

using namespace optimus;

std::string Usage() {
  return "optimus_serve: online scheduling service over the cluster simulator\n"
         "\n"
         "Flags:\n"
         "  --scenario=FILE             genesis scenario (scenario-v1 JSON; required)\n"
         "  --policy=NAME               override the scenario's policy\n"
         "  --engine=interval|events    override the scenario's engine\n"
         "  --seed=N                    override the scenario's seed\n"
         "  --threads=N                 simulator worker threads (responses are\n"
         "                              bitwise identical for any value)\n"
         "  --socket=PATH               serve a Unix-domain socket instead of stdio\n"
         "  --replay=FILE               replay a request log and exit\n"
         "  --replay-out=FILE           write replay responses here (default stdout)\n"
         "  --metrics-out=PATH          export the service registry at exit\n"
         "  --metrics-format=prom|json  export format (default prom); includes the\n"
         "                              profiling latency histogram\n"
         "  --help                      this message\n"
         "\n"
         "Protocol: one JSON request per line, one JSON response line per request\n"
         "(docs/SERVICE.md). Exit codes: 0 clean, 2 usage/config, 3 audit violation.\n";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::cout << Usage();
    return 0;
  }
  const std::string scenario_path = flags.GetString("scenario", "");
  const std::string policy = flags.GetString("policy", "");
  const bool engine_given = flags.Has("engine");
  const std::string engine_name = flags.GetString("engine", "interval");
  const bool seed_given = flags.Has("seed");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const std::string socket_path = flags.GetString("socket", "");
  const std::string replay_path = flags.GetString("replay", "");
  const std::string replay_out = flags.GetString("replay-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string metrics_format = flags.GetString("metrics-format", "prom");

  const std::vector<std::string> unknown = flags.UnconsumedKeys();
  if (!unknown.empty()) {
    std::cerr << "unknown flag(s):";
    for (const std::string& k : unknown) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n\n" << Usage();
    return 2;
  }
  if (scenario_path.empty()) {
    std::cerr << "--scenario is required\n\n" << Usage();
    return 2;
  }
  if (metrics_format != "prom" && metrics_format != "json") {
    std::cerr << "unknown --metrics-format '" << metrics_format
              << "' (expected prom|json)\n";
    return 2;
  }
  if (!socket_path.empty() && !replay_path.empty()) {
    std::cerr << "--socket and --replay are mutually exclusive\n";
    return 2;
  }

  SessionOverrides overrides;
  overrides.policy = policy;
  overrides.threads = threads;
  if (engine_given) {
    SimEngine engine = SimEngine::kInterval;
    if (!ParseSimEngine(engine_name, &engine)) {
      std::cerr << "unknown --engine '" << engine_name
                << "' (expected interval|events)\n";
      return 2;
    }
    overrides.engine = engine;
  }
  if (seed_given) {
    overrides.seed = seed;
  }

  std::string genesis;
  {
    std::ifstream in(scenario_path);
    if (!in) {
      std::cerr << "cannot read " << scenario_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    genesis = buffer.str();
  }
  std::string error;
  std::unique_ptr<ServiceSession> session =
      ServiceSession::Create(std::move(genesis), scenario_path,
                             std::move(overrides), &error);
  if (session == nullptr) {
    std::cerr << "bad scenario: " << error << "\n";
    return 2;
  }

  int exit_code = 0;
  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::cerr << "cannot read " << replay_path << "\n";
      return 2;
    }
    ReplayResult result;
    if (replay_out.empty()) {
      result = RunReplay(session.get(), in, std::cout);
    } else {
      std::ofstream out(replay_out);
      if (!out) {
        std::cerr << "cannot write " << replay_out << "\n";
        return 2;
      }
      result = RunReplay(session.get(), in, out);
    }
    std::cerr << "replayed " << result.requests << " request(s), "
              << result.errors << " error(s)\n";
    exit_code = result.exit_code;
  } else if (!socket_path.empty()) {
    exit_code = ServeUnixSocket(session.get(), socket_path);
  } else {
    const ReplayResult result = ServeStream(session.get(), std::cin, std::cout);
    exit_code = result.exit_code;
  }

  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    if (!os) {
      std::cerr << "cannot write " << metrics_out << "\n";
      return 2;
    }
    ExportOptions options;  // profiling included: the latency histogram is the point
    if (metrics_format == "json") {
      ExportJsonReport(session->service_registry(), nullptr, nullptr, os, options);
    } else {
      ExportPrometheus(session->service_registry(), os, options);
    }
    std::cerr << "wrote " << session->service_registry().size()
              << " service metric(s) (" << metrics_format << ") to "
              << metrics_out << "\n";
  }
  return exit_code;
}
