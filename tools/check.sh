#!/usr/bin/env bash
# Tier-1 verification plus a perf smoke bench.
#
# Usage:
#   tools/check.sh [build-dir]
#
# Environment:
#   OPTIMUS_SANITIZE=address|thread   configure a sanitizer build (passed
#                                     through to CMake; default off)
#   OPTIMUS_THREADS=N                 thread count for the parallel runner
#                                     (results are identical for any N)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DOPTIMUS_SANITIZE="${OPTIMUS_SANITIZE:-}"
cmake --build "${build_dir}" -j "$(nproc)"

ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

# Perf smoke: a seconds-scale scheduling round with and without the speed
# surface; writes/updates BENCH_sched.json in the working directory.
"${build_dir}/bench/bench_fig12_scalability" --smoke

# Interval-engine smoke: baseline vs parallel incremental engine; exits
# nonzero if any row's metrics diverge from the baseline's. Under
# OPTIMUS_SANITIZE this runs the parallel stepping + incremental auditing
# paths under the sanitizer on top of the ctest determinism arms.
"${build_dir}/bench/bench_interval" --smoke

echo "check.sh: OK"
