#!/usr/bin/env bash
# Tier-1 verification plus a perf smoke bench.
#
# Usage:
#   tools/check.sh [build-dir]
#
# Environment:
#   OPTIMUS_SANITIZE=address|thread   configure a sanitizer build (passed
#                                     through to CMake; default off)
#   OPTIMUS_THREADS=N                 thread count for the parallel runner
#                                     (results are identical for any N)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DOPTIMUS_SANITIZE="${OPTIMUS_SANITIZE:-}"
cmake --build "${build_dir}" -j "$(nproc)"

ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

# Perf smoke: a seconds-scale scheduling round with and without the speed
# surface; writes/updates BENCH_sched.json in the working directory.
"${build_dir}/bench/bench_fig12_scalability" --smoke

# Interval-engine smoke: baseline vs parallel incremental engine; exits
# nonzero if any row's metrics diverge from the baseline's. Under
# OPTIMUS_SANITIZE this runs the parallel stepping + incremental auditing
# paths under the sanitizer on top of the ctest determinism arms.
# (--json routed away from the committed full-scale BENCH_*.json files.)
"${build_dir}/bench/bench_interval" --smoke --json=BENCH_interval_smoke.json

# Event-kernel smoke: discrete-event engine vs interval engine on small
# regimes; exits nonzero if event rows are not bitwise identical across
# thread counts or the engines diverge beyond the documented tolerance
# (docs/ALGORITHMS.md section 16).
"${build_dir}/bench/bench_events" --smoke --json=BENCH_events_smoke.json

# Scale smoke: two-phase sharded rounds + streaming admission. Sweeps
# (engine, shards, threads) cells on the committed scale_smoke scenario and
# exits 3 if any cell's metrics or trace digest diverge from the per-engine
# reference; also measures the shards=8 vs shards=1 round speedup
# (docs/ALGORITHMS.md section 18).
"${build_dir}/bench/bench_scale" --smoke \
  --scenario="${repo_root}/scenarios/scale_smoke.json" \
  --json=BENCH_scale_smoke.json

# Network smoke: fabric models + ring all-reduce (docs/NETWORK.md). Runs the
# optimus vs optimus_rack comparison on the oversubscribed fabric and sweeps
# (engine, shards, threads) cells over both committed network scenarios;
# exits 3 on any cross-configuration divergence or if rack-aware placement
# stops beating the baseline.
"${build_dir}/bench/bench_net" --smoke \
  --fabric_scenario="${repo_root}/scenarios/oversubscribed_fabric.json" \
  --allreduce_scenario="${repo_root}/scenarios/allreduce_mix.json" \
  --json=BENCH_net_smoke.json

# Policy-catalog smoke: every registered policy (goodput / synergy / dl2
# included) on the batch-adaptive scenario, plus a per-policy determinism
# sweep over engines x shards x threads. Exits 3 if any cell diverges from
# its (policy, engine) reference or if no non-Optimus-family policy beats
# plain optimus on average JCT (docs/POLICIES.md).
"${build_dir}/bench/bench_policies" --smoke \
  --scenario="${repo_root}/scenarios/batch_adaptive.json" \
  --json=BENCH_policies_smoke.json

# The raw PS-shaped Allocation::IsActive() check mis-classifies all-reduce
# allocations; every call site outside its definition must go through
# ActiveAllocation(alloc, comm) (src/sched/scheduler.h).
isactive_hits="$(grep -rn '\.IsActive()' \
  "${repo_root}/src" "${repo_root}/tools" "${repo_root}/bench" \
  "${repo_root}/tests" "${repo_root}/examples" \
  --include='*.cc' --include='*.h' --include='*.cpp' \
  | grep -v 'src/sched/scheduler.h' || true)"
if [[ -n "${isactive_hits}" ]]; then
  echo "raw Allocation::IsActive() call sites (use ActiveAllocation):" >&2
  echo "${isactive_hits}" >&2
  exit 1
fi

# Observability smoke: registry/flight recorder on vs off; exits nonzero
# if observability perturbs the simulation or exports diverge across
# thread counts.
"${build_dir}/bench/bench_obs" --smoke --json=BENCH_obs_smoke.json

# Scenario-sweep smoke: a 2x2 grid (two tiny scenarios x two policies each)
# through optimus_sweep. Exits nonzero on a scenario-validation error, an
# incomplete job, or an invariant-audit violation. (--out routed away from
# the committed BENCH_scenarios.json golden.)
"${build_dir}/tools/optimus_sweep" \
  "${repo_root}/scenarios/smoke/grid_a.json" \
  "${repo_root}/scenarios/smoke/grid_b.json" \
  --out=BENCH_scenarios_smoke.json > /dev/null
grep -q '"format": "optimus-sweep-report-v1"' BENCH_scenarios_smoke.json || {
  echo "BENCH_scenarios_smoke.json is missing the format tag" >&2; exit 1;
}

# Every committed scenario golden must carry the scenario-v1 schema version.
for f in "${repo_root}"/scenarios/*.json "${repo_root}"/scenarios/smoke/*.json; do
  grep -q '"schema": "scenario-v1"' "${f}" || {
    echo "${f} is missing \"schema\": \"scenario-v1\"" >&2; exit 1;
  }
done

# The committed network scenarios must carry a network block naming a model
# the parser knows (docs/SCENARIOS.md, `network` key).
for f in oversubscribed_fabric allreduce_mix; do
  grep -q '"network"' "${repo_root}/scenarios/${f}.json" || {
    echo "scenarios/${f}.json is missing its \"network\" block" >&2; exit 1;
  }
  grep -Eq '"model": "(flat|topology|contention)"' \
    "${repo_root}/scenarios/${f}.json" || {
    echo "scenarios/${f}.json has an unknown network model" >&2; exit 1;
  }
done

# Metrics-export smoke: a short instrumented run must produce the core
# metric keys in Prometheus text format.
metrics_tmp="$(mktemp)"
trap 'rm -f "${metrics_tmp}"' EXIT
"${build_dir}/tools/optimus_sim" --jobs=10 --seed=7 \
  --metrics-out="${metrics_tmp}" --metrics-format=prom > /dev/null
for key in optimus_intervals_total optimus_jobs_completed_total \
           optimus_scalings_total optimus_audit_checks_total \
           optimus_speed_evals_total optimus_alloc_grants_total \
           optimus_conv_fits_total optimus_jct_seconds_count \
           optimus_sim_time_seconds optimus_wall_schedule_seconds; do
  grep -q "^${key}" "${metrics_tmp}" || {
    echo "metrics export is missing ${key}" >&2; exit 1;
  }
done

# Service daemon smoke: replay the committed 200-request log through
# optimus_serve (docs/SERVICE.md). Exit 0 required — exit 3 would mean an
# invariant-audit violation propagated out of the session. The service
# metrics export must carry the request counter and a p99 latency quantile.
"${build_dir}/tools/optimus_serve" \
  --scenario="${repo_root}/tests/golden/serve/scenario.json" \
  --replay="${repo_root}/tests/golden/serve/smoke.requests.ndjson" \
  --replay-out=/dev/null \
  --metrics-out="${metrics_tmp}" --metrics-format=json 2> /dev/null
grep -q '"optimus_requests_total"' "${metrics_tmp}" || {
  echo "service export is missing optimus_requests_total" >&2; exit 1;
}
grep -q '"p99"' "${metrics_tmp}" || {
  echo "service export is missing the p99 latency quantile" >&2; exit 1;
}

# The committed golden session must replay byte for byte through the real
# binary, errors included (its ok=false lines are part of the golden).
serve_out="$(mktemp)"
trap 'rm -f "${metrics_tmp}" "${serve_out}"' EXIT
"${build_dir}/tools/optimus_serve" \
  --scenario="${repo_root}/tests/golden/serve/scenario.json" \
  --replay="${repo_root}/tests/golden/serve/basic.requests.ndjson" \
  --replay-out="${serve_out}" 2> /dev/null
cmp -s "${serve_out}" "${repo_root}/tests/golden/serve/basic.responses.ndjson" || {
  echo "optimus_serve replay diverged from tests/golden/serve/basic.responses.ndjson" >&2
  exit 1
}

# Exit-code contract: a config error must exit 2, not 0 or a crash.
set +e
"${build_dir}/tools/optimus_serve" --scenario=/nonexistent.json 2> /dev/null
serve_code=$?
set -e
[[ "${serve_code}" == 2 ]] || {
  echo "optimus_serve exited ${serve_code} (expected 2) on a bad scenario" >&2
  exit 1
}

# Event-engine CLI smoke: the same short run through --engine=events must
# report its event count in the metrics export.
"${build_dir}/tools/optimus_sim" --jobs=10 --seed=7 --engine=events \
  --metrics-out="${metrics_tmp}" --metrics-format=prom > /dev/null
grep -q '^optimus_events_processed_total' "${metrics_tmp}" || {
  echo "events engine did not export optimus_events_processed_total" >&2
  exit 1
}

echo "check.sh: OK"
