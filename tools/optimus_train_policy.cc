// optimus_train_policy — offline trainer for the DL2 learned policy.
//
// Samples deterministic synthetic allocation states (seeded; same flags =>
// same states => same weights, bit for bit), computes Optimus's Eqn-9
// marginal gain as the regression target at every candidate grant, and fits
// non-negative linear weights over the shared Dl2Features vector with the
// repo's NNLS solver. The result is the weight vector the "dl2" policy's
// factory bakes in (src/sched/dl2_allocator.cc DefaultDl2Weights); retraining
// means re-running this tool and updating those constants.
//
// Examples:
//   optimus_train_policy                       # default --seed=42 --states=4000
//   optimus_train_policy --seed=7 --states=10000 --out=/tmp/weights.json
//
// Exit codes: 0 trained, 2 bad flags, 3 fit failed to converge.

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

#include "src/cluster/resources.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"
#include "src/sched/dl2_allocator.h"
#include "src/solver/nnls.h"

namespace {

using namespace optimus;

std::string Usage() {
  return "optimus_train_policy: offline NNLS trainer for the dl2 policy\n"
         "\n"
         "Flags:\n"
         "  --seed=N        RNG seed for the synthetic state sweep (default 42)\n"
         "  --states=N      number of synthetic allocation states (default 4000)\n"
         "  --out=FILE      also write the weights as JSON\n"
         "                  ({\"format\": \"optimus-dl2-weights-v1\", ...})\n"
         "  --help          this message\n";
}

// One synthetic allocation state: a job mid-training at (p, w) in a cluster
// with some free capacity. Mirrors the quantities the allocator sees at a
// grant decision.
struct TrainState {
  const ModelSpec* model = nullptr;
  TrainingMode mode = TrainingMode::kSync;
  CommMode comm = CommMode::kParameterServer;
  int num_ps = 1;
  int num_workers = 1;
  int max_ps = 16;
  int max_workers = 16;
  double remaining_epochs = 10.0;
  Resources worker_demand;
  Resources ps_demand;
  Resources capacity;
};

// Estimated speed in epochs/s at (p, w), the unit SchedJob::speed uses.
double EpochSpeed(const TrainState& s, int p, int w, const CommConfig& comm) {
  StepTimeInputs in;
  in.model = s.model;
  in.mode = s.mode;
  in.comm = s.comm;
  in.num_ps = p;
  in.num_workers = w;
  const int batch = s.mode == TrainingMode::kSync
                        ? s.model->default_sync_batch
                        : s.model->default_async_minibatch;
  const double spe = static_cast<double>(s.model->StepsPerEpoch(batch));
  return TrainingSpeed(in, comm) / spe;
}

// Optimus's Eqn-9 marginal gain for the grant (the teacher signal), squashed
// to [0, 1) so no single state dominates the least-squares objective:
// gains span orders of magnitude across model sizes.
double TeacherTarget(double remaining_epochs, double f0, double f1,
                     const Resources& unit, const Resources& capacity) {
  constexpr double kSpeedEps = 1e-9;
  const double t0 = remaining_epochs / std::max(f0, kSpeedEps);
  const double t1 = remaining_epochs / std::max(f1, kSpeedEps);
  const double dom = unit.Get(unit.DominantResource(capacity));
  if (dom <= 0.0) {
    return 0.0;
  }
  const double gain = std::max(0.0, (t0 - t1) / dom);
  return gain / (1.0 + gain);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::cout << Usage();
    return 0;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int states = static_cast<int>(flags.GetInt("states", 4000));
  const std::string out_path = flags.GetString("out", "");
  const std::vector<std::string> unknown = flags.UnconsumedKeys();
  if (!unknown.empty()) {
    std::cerr << "unknown flag(s):";
    for (const std::string& k : unknown) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n\n" << Usage();
    return 2;
  }
  if (states < 1) {
    std::cerr << "--states must be >= 1\n";
    return 2;
  }

  const std::vector<ModelSpec>& zoo = GetModelZoo();
  const CommConfig comm_config;
  const Rng root(seed);

  // Each state draws from its own split stream, so the sweep is insensitive
  // to sample-count changes upstream of any given state (same discipline as
  // the workload generators).
  std::vector<std::array<double, kDl2NumFeatures>> rows;
  std::vector<double> targets;
  rows.reserve(static_cast<size_t>(states) * 2);
  targets.reserve(static_cast<size_t>(states) * 2);
  for (int i = 0; i < states; ++i) {
    Rng rng = root.Split(1000 + static_cast<uint64_t>(i));
    TrainState s;
    s.model = &zoo[static_cast<size_t>(rng.UniformInt(0, zoo.size() - 1))];
    s.mode = rng.Bernoulli(0.5) ? TrainingMode::kSync : TrainingMode::kAsync;
    s.comm = rng.Bernoulli(0.2) ? CommMode::kAllReduce : CommMode::kParameterServer;
    if (s.comm == CommMode::kAllReduce) {
      s.mode = TrainingMode::kSync;
      s.max_ps = 0;
    }
    s.num_workers = static_cast<int>(rng.UniformInt(1, 12));
    s.num_ps = s.max_ps > 0 ? static_cast<int>(rng.UniformInt(1, 8)) : 0;
    s.remaining_epochs = rng.Uniform(0.5, 60.0);
    s.worker_demand = Resources(2.5, 10, 0, 0.15);
    s.ps_demand = s.max_ps > 0 ? Resources(2.5, 10, 0, 0.15) : Resources();
    const int servers = static_cast<int>(rng.UniformInt(5, 20));
    s.capacity = Resources(16, 80, 0, 1) * servers;

    const double f0 = EpochSpeed(s, s.num_ps, s.num_workers, comm_config);
    // Worker grant, then PS grant (when the job runs PS tasks and is below
    // its cap) — the same candidate kinds the allocator scores.
    if (s.num_workers < s.max_workers) {
      const double f1 = EpochSpeed(s, s.num_ps, s.num_workers + 1, comm_config);
      rows.push_back(Dl2Features(s.remaining_epochs, f0, f1, s.worker_demand,
                                 s.capacity, s.num_ps, s.num_workers));
      targets.push_back(TeacherTarget(s.remaining_epochs, f0, f1,
                                      s.worker_demand, s.capacity));
    }
    if (s.max_ps > 0 && s.num_ps < s.max_ps) {
      const double f1 = EpochSpeed(s, s.num_ps + 1, s.num_workers, comm_config);
      rows.push_back(Dl2Features(s.remaining_epochs, f0, f1, s.ps_demand,
                                 s.capacity, s.num_ps, s.num_workers));
      targets.push_back(TeacherTarget(s.remaining_epochs, f0, f1, s.ps_demand,
                                      s.capacity));
    }
  }
  OPTIMUS_CHECK(!rows.empty());

  Matrix a(rows.size(), kDl2NumFeatures);
  Vector b(rows.size(), 0.0);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < kDl2NumFeatures; ++c) {
      a(r, c) = rows[r][c];
    }
    b[r] = targets[r];
  }
  const NnlsResult fit = SolveNnls(a, b);
  if (!fit.converged) {
    std::cerr << "NNLS failed to converge after " << fit.iterations
              << " iteration(s)\n";
    return 3;
  }

  std::cout << "trained on " << rows.size() << " candidate grants from "
            << states << " states (seed " << seed << "), rss "
            << fit.residual_sum_of_squares << ", " << fit.iterations
            << " NNLS iteration(s)\n";
  std::cout << std::setprecision(15);
  const char* kFeatureNames[kDl2NumFeatures] = {
      "bias", "completion_reduction", "speed_gain", "packing_cheapness",
      "srtf_urgency", "small_alloc_bonus"};
  for (size_t k = 0; k < kDl2NumFeatures; ++k) {
    std::cout << "  w[" << k << "] " << kFeatureNames[k] << " = " << fit.x[k]
              << "\n";
  }
  std::cout << "paste into DefaultDl2Weights() (src/sched/dl2_allocator.cc):\n"
            << "  return Dl2Weights{";
  for (size_t k = 0; k < kDl2NumFeatures; ++k) {
    std::cout << (k > 0 ? ", " : "") << fit.x[k];
  }
  std::cout << "};\n";

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    OPTIMUS_CHECK(os.good()) << "cannot write " << out_path;
    os << std::setprecision(17);
    os << "{\"format\": \"optimus-dl2-weights-v1\", \"seed\": " << seed
       << ", \"states\": " << states << ", \"weights\": [";
    for (size_t k = 0; k < kDl2NumFeatures; ++k) {
      os << (k > 0 ? ", " : "") << fit.x[k];
    }
    os << "]}\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
