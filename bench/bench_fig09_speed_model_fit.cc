// Fig 9: measured speed data points vs the fitted speed-function curves, for
// asynchronous ((a) vs workers, (b) vs PS) and synchronous ((c) vs workers,
// (d) vs PS) ResNet-50 training.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/speed_model.h"
#include "src/pserver/comm_model.h"

namespace {

using namespace optimus;

double TrueSpeed(const ModelSpec& spec, TrainingMode mode, int p, int w) {
  StepTimeInputs in;
  in.model = &spec;
  in.mode = mode;
  in.num_ps = p;
  in.num_workers = w;
  return TrainingSpeed(in, CommConfig{});
}

void Panel(const ModelSpec& spec, TrainingMode mode, bool sweep_workers,
           const std::string& caption) {
  // Fit the model from a coarse grid of noisy measurements.
  SpeedModel model(mode, spec.default_sync_batch);
  Rng noise(42);
  for (int p = 2; p <= 20; p += 2) {
    for (int w = 2; w <= 20; w += 2) {
      model.AddSample(p, w, TrueSpeed(spec, mode, p, w) * noise.LogNormalFactor(0.02));
    }
  }
  model.Fit();

  PrintBanner(std::cout, caption);
  std::vector<std::string> headers = {sweep_workers ? "workers" : "ps"};
  for (int fixed : {6, 12, 18}) {
    headers.push_back((sweep_workers ? "meas ps=" : "meas w=") + std::to_string(fixed));
    headers.push_back((sweep_workers ? "fit ps=" : "fit w=") + std::to_string(fixed));
  }
  TablePrinter table(headers);
  for (int x = 2; x <= 20; x += 2) {
    std::vector<std::string> row = {std::to_string(x)};
    for (int fixed : {6, 12, 18}) {
      const int p = sweep_workers ? fixed : x;
      const int w = sweep_workers ? x : fixed;
      row.push_back(TablePrinter::FormatDouble(TrueSpeed(spec, mode, p, w), 4));
      row.push_back(TablePrinter::FormatDouble(model.Estimate(p, w), 4));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  PrintExperimentHeader(
      "Fig 9", "Speed-function fits for ResNet-50 (async and sync)",
      "fitted curves closely track measurements; diminishing returns in p; "
      "sync speed peaks then declines in w at fixed p");

  const ModelSpec& spec = FindModel("ResNet-50");
  Panel(spec, TrainingMode::kAsync, /*sweep_workers=*/true,
        "(a) async: speed vs workers, ps in {6, 12, 18}");
  Panel(spec, TrainingMode::kAsync, /*sweep_workers=*/false,
        "(b) async: speed vs ps, workers in {6, 12, 18}");
  Panel(spec, TrainingMode::kSync, /*sweep_workers=*/true,
        "(c) sync: speed vs workers, ps in {6, 12, 18}");
  Panel(spec, TrainingMode::kSync, /*sweep_workers=*/false,
        "(d) sync: speed vs ps, workers in {6, 12, 18}");
  return 0;
}
