// Micro-benchmarks (google-benchmark) for the scheduler's hot paths: NNLS
// solving, convergence-curve fitting, speed-model fitting, a marginal-gain
// allocation round, and a placement round.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/convergence_model.h"
#include "src/perfmodel/speed_model.h"
#include "src/pserver/block_assignment.h"
#include "src/pserver/comm_model.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/sched/speed_surface.h"
#include "src/solver/nnls.h"

namespace optimus {
namespace {

void BM_NnlsSolve(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a(rows, 5);
  Vector truth = {1.0, 2.8, 4.9, 0.0, 0.02};
  Vector b(rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      a(r, c) = rng.Uniform(0.1, 2.0);
      b[r] += a(r, c) * truth[c];
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveNnls(a, b));
  }
}
BENCHMARK(BM_NnlsSolve)->Arg(32)->Arg(256)->Arg(2048);

void BM_ConvergenceFit(benchmark::State& state) {
  const ModelSpec& spec = FindModel("Seq2Seq");
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve curve(spec.loss, spe);
  Rng rng(2);
  ConvergenceModel model;
  const int64_t points = state.range(0);
  for (int64_t i = 1; i <= points; ++i) {
    const int64_t step = i * spe / 10;
    model.AddSample(static_cast<double>(step), curve.SampleLossAtStep(step, &rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Fit());
  }
}
BENCHMARK(BM_ConvergenceFit)->Arg(100)->Arg(1000);

void BM_SpeedModelFit(benchmark::State& state) {
  const ModelSpec& spec = FindModel("ResNet-50");
  SpeedModel model(TrainingMode::kSync, spec.default_sync_batch);
  for (int p = 1; p <= 16; ++p) {
    for (int w = 1; w <= 16; ++w) {
      StepTimeInputs in;
      in.model = &spec;
      in.mode = TrainingMode::kSync;
      in.num_ps = p;
      in.num_workers = w;
      model.AddSample(p, w, TrainingSpeed(in, CommConfig{}));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Fit());
  }
}
BENCHMARK(BM_SpeedModelFit);

std::vector<SchedJob> MakeJobs(int n) {
  std::vector<SchedJob> jobs;
  for (int i = 0; i < n; ++i) {
    SchedJob job;
    job.job_id = i;
    job.worker_demand = Resources(5, 10, 0, 0.2);
    job.ps_demand = Resources(5, 10, 0, 0.2);
    job.remaining_epochs = 10.0 + (i % 40);
    const double a = 4.0 + (i % 7);
    job.speed = [a](int p, int w) {
      return 1.0 / (a / w + 1.0 + 0.8 * w / p + 0.05 * w + 0.05 * p);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void BM_OptimusAllocation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<SchedJob> jobs = MakeJobs(n);
  const Resources capacity(16.0 * n, 80.0 * n, 0, n);
  OptimusAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.Allocate(jobs, capacity));
  }
}
BENCHMARK(BM_OptimusAllocation)->Arg(10)->Arg(100)->Arg(1000);

// Jobs whose estimates run the full Eqn-2 step-time model with the §5.3
// block-assignment load recomputed at the probed PS count (what a
// full-fidelity oracle probe costs), cycling the Table-1 zoo so surfaces are
// shared by signature.
std::vector<SchedJob> MakeOracleJobs(int n) {
  const std::vector<ModelSpec>& zoo = GetModelZoo();
  const CommConfig comm;
  std::vector<SchedJob> jobs = MakeJobs(n);
  for (int i = 0; i < n; ++i) {
    const ModelSpec& model = zoo[i % zoo.size()];
    const double steps_per_epoch =
        static_cast<double>(model.StepsPerEpoch(model.default_sync_batch));
    const ParamBlockSizes blocks = GenerateParamBlocks(model);
    jobs[i].speed = [&model, comm, steps_per_epoch, blocks](int p, int w) {
      StepTimeInputs in;
      in.model = &model;
      in.mode = TrainingMode::kSync;
      in.num_ps = p;
      in.num_workers = w;
      in.global_batch = model.default_sync_batch;
      in.load = ComputeLoadMetrics(PaaAssigner().Assign(blocks, p));
      in.load_valid = true;
      return TrainingSpeed(in, comm) / steps_per_epoch;
    };
    jobs[i].speed_signature = static_cast<uint64_t>(i % zoo.size()) + 1;
  }
  return jobs;
}

// One allocation round over oracle-model jobs, with and without the memoized
// speed surface. The gap is the per-round saving of the fast path.
void BM_OptimusAllocationRound(benchmark::State& state, bool cached) {
  const int n = static_cast<int>(state.range(0));
  std::vector<SchedJob> jobs = MakeOracleJobs(n);
  const Resources capacity(16.0 * n, 80.0 * n, 0, n);
  OptimusAllocator allocator;
  for (auto _ : state) {
    SpeedSurfaceSet surfaces(cached);
    benchmark::DoNotOptimize(allocator.Allocate(jobs, capacity, &surfaces));
  }
}

void BM_OptimusAllocationCached(benchmark::State& state) {
  BM_OptimusAllocationRound(state, /*cached=*/true);
}
BENCHMARK(BM_OptimusAllocationCached)->Arg(100)->Arg(1000);

void BM_OptimusAllocationUncached(benchmark::State& state) {
  BM_OptimusAllocationRound(state, /*cached=*/false);
}
BENCHMARK(BM_OptimusAllocationUncached)->Arg(100)->Arg(1000);

void BM_SpeedSurfaceProbe(benchmark::State& state) {
  std::vector<SchedJob> jobs = MakeOracleJobs(1);
  SpeedSurface surface(jobs[0].speed, jobs[0].max_ps, jobs[0].max_workers);
  // Warm the whole grid so the loop measures pure cache hits.
  for (int p = 1; p <= jobs[0].max_ps; ++p) {
    for (int w = 1; w <= jobs[0].max_workers; ++w) {
      surface.Speed(p, w);
    }
  }
  int p = 1;
  int w = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(surface.Speed(p, w));
    p = p % 16 + 1;
    w = (w + 2) % 16 + 1;
  }
}
BENCHMARK(BM_SpeedSurfaceProbe);

void BM_OptimusPlacement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<SchedJob> jobs = MakeJobs(n);
  std::vector<PlacementJobInput> inputs;
  for (const SchedJob& j : jobs) {
    inputs.push_back({j.job_id, {2, 3}, j.worker_demand, j.ps_demand});
  }
  for (auto _ : state) {
    std::vector<Server> servers =
        BuildUniformCluster(2 * n, Resources(16, 80, 0, 1));
    benchmark::DoNotOptimize(
        PlaceJobs(PlacementPolicy::kOptimusPack, inputs, std::move(servers)));
  }
}
BENCHMARK(BM_OptimusPlacement)->Arg(10)->Arg(100)->Arg(1000);

void BM_PaaAssignment(benchmark::State& state) {
  const ParamBlockSizes blocks = GenerateParamBlocks(FindModel("ResNet-50"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaaAssigner().Assign(blocks, 10));
  }
}
BENCHMARK(BM_PaaAssignment);

void BM_StepTimeModel(benchmark::State& state) {
  const ModelSpec& spec = FindModel("ResNet-50");
  StepTimeInputs in;
  in.model = &spec;
  in.mode = TrainingMode::kSync;
  in.num_ps = 8;
  in.num_workers = 12;
  const CommConfig comm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStepTime(in, comm));
  }
}
BENCHMARK(BM_StepTimeModel);

// One timed allocation round outside the google-benchmark loop, for the
// machine-readable snapshot.
JsonObject MeasureAllocationRound(int n, bool cached) {
  std::vector<SchedJob> jobs = MakeOracleJobs(n);
  const Resources capacity(16.0 * n, 80.0 * n, 0, n);
  SpeedSurfaceSet surfaces(cached);
  const auto start = std::chrono::steady_clock::now();
  OptimusAllocator().Allocate(jobs, capacity, &surfaces);
  const auto end = std::chrono::steady_clock::now();

  JsonObject round;
  round.Set("cached", cached);
  round.Set("jobs", n);
  round.Set("alloc_s", std::chrono::duration<double>(end - start).count());
  round.Set("probes", surfaces.probes());
  round.Set("evals", surfaces.evals());
  round.Set("hit_rate", surfaces.hit_rate());
  return round;
}

void WriteMicroJson(const std::string& path) {
  const int n = 500;
  const JsonObject uncached = MeasureAllocationRound(n, false);
  const JsonObject cached = MeasureAllocationRound(n, true);
  JsonObject section;
  section.Set("allocation_uncached", uncached);
  section.Set("allocation_cached", cached);
  if (WriteBenchJsonSection(path, "micro_core", section)) {
    std::cout << "wrote section micro_core to " << path << "\n";
  }
}

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  optimus::WriteMicroJson("BENCH_sched.json");
  return 0;
}
