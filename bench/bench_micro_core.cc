// Micro-benchmarks (google-benchmark) for the scheduler's hot paths: NNLS
// solving, convergence-curve fitting, speed-model fitting, a marginal-gain
// allocation round, and a placement round.

#include <benchmark/benchmark.h>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/convergence_model.h"
#include "src/perfmodel/speed_model.h"
#include "src/pserver/block_assignment.h"
#include "src/pserver/comm_model.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/solver/nnls.h"

namespace optimus {
namespace {

void BM_NnlsSolve(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a(rows, 5);
  Vector truth = {1.0, 2.8, 4.9, 0.0, 0.02};
  Vector b(rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      a(r, c) = rng.Uniform(0.1, 2.0);
      b[r] += a(r, c) * truth[c];
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveNnls(a, b));
  }
}
BENCHMARK(BM_NnlsSolve)->Arg(32)->Arg(256)->Arg(2048);

void BM_ConvergenceFit(benchmark::State& state) {
  const ModelSpec& spec = FindModel("Seq2Seq");
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve curve(spec.loss, spe);
  Rng rng(2);
  ConvergenceModel model;
  const int64_t points = state.range(0);
  for (int64_t i = 1; i <= points; ++i) {
    const int64_t step = i * spe / 10;
    model.AddSample(static_cast<double>(step), curve.SampleLossAtStep(step, &rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Fit());
  }
}
BENCHMARK(BM_ConvergenceFit)->Arg(100)->Arg(1000);

void BM_SpeedModelFit(benchmark::State& state) {
  const ModelSpec& spec = FindModel("ResNet-50");
  SpeedModel model(TrainingMode::kSync, spec.default_sync_batch);
  for (int p = 1; p <= 16; ++p) {
    for (int w = 1; w <= 16; ++w) {
      StepTimeInputs in;
      in.model = &spec;
      in.mode = TrainingMode::kSync;
      in.num_ps = p;
      in.num_workers = w;
      model.AddSample(p, w, TrainingSpeed(in, CommConfig{}));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Fit());
  }
}
BENCHMARK(BM_SpeedModelFit);

std::vector<SchedJob> MakeJobs(int n) {
  std::vector<SchedJob> jobs;
  for (int i = 0; i < n; ++i) {
    SchedJob job;
    job.job_id = i;
    job.worker_demand = Resources(5, 10, 0, 0.2);
    job.ps_demand = Resources(5, 10, 0, 0.2);
    job.remaining_epochs = 10.0 + (i % 40);
    const double a = 4.0 + (i % 7);
    job.speed = [a](int p, int w) {
      return 1.0 / (a / w + 1.0 + 0.8 * w / p + 0.05 * w + 0.05 * p);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void BM_OptimusAllocation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<SchedJob> jobs = MakeJobs(n);
  const Resources capacity(16.0 * n, 80.0 * n, 0, n);
  OptimusAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.Allocate(jobs, capacity));
  }
}
BENCHMARK(BM_OptimusAllocation)->Arg(10)->Arg(100)->Arg(1000);

void BM_OptimusPlacement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<SchedJob> jobs = MakeJobs(n);
  std::vector<PlacementJobInput> inputs;
  for (const SchedJob& j : jobs) {
    inputs.push_back({j.job_id, {2, 3}, j.worker_demand, j.ps_demand});
  }
  for (auto _ : state) {
    std::vector<Server> servers =
        BuildUniformCluster(2 * n, Resources(16, 80, 0, 1));
    benchmark::DoNotOptimize(
        PlaceJobs(PlacementPolicy::kOptimusPack, inputs, std::move(servers)));
  }
}
BENCHMARK(BM_OptimusPlacement)->Arg(10)->Arg(100)->Arg(1000);

void BM_PaaAssignment(benchmark::State& state) {
  const ParamBlockSizes blocks = GenerateParamBlocks(FindModel("ResNet-50"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaaAssigner().Assign(blocks, 10));
  }
}
BENCHMARK(BM_PaaAssignment);

void BM_StepTimeModel(benchmark::State& state) {
  const ModelSpec& spec = FindModel("ResNet-50");
  StepTimeInputs in;
  in.model = &spec;
  in.mode = TrainingMode::kSync;
  in.num_ps = 8;
  in.num_workers = 12;
  const CommConfig comm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStepTime(in, comm));
  }
}
BENCHMARK(BM_StepTimeModel);

}  // namespace
}  // namespace optimus

BENCHMARK_MAIN();
