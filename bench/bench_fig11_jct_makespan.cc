// Fig 11 / Fig 13 (+ §6.2 scaling overhead): average JCT and makespan of
// Optimus vs the DRF fairness scheduler vs Tetris on the 13-server testbed
// workload (9 Table-1 jobs, random modes, arrivals over [0, 12000] s).

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 11 / Fig 13", "JCT and makespan: Optimus vs DRF vs Tetris (testbed)",
      "Optimus wins on both metrics; paper: DRF 2.39x JCT / 1.63x makespan, "
      "Tetris in between (~1.7x JCT); scaling overhead ~2.5% of runtime");

  ExperimentConfig base;
  ApplyTestbedConditions(&base.sim);
  base.workload.num_jobs = 9;
  base.workload.target_steps_per_epoch = 80;
  base.repeats = 5;

  std::vector<ExperimentResult> results =
      RunSchedulerComparison(base, "average over 5 workload seeds");

  std::cout << "\nResource-adjustment overhead (Optimus): "
            << TablePrinter::FormatDouble(results[0].scaling_overhead_mean * 100.0, 2)
            << "% of job runtime (paper: 2.54% of makespan)\n";
  return 0;
}
