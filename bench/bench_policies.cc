// Policy-registry bench: the full policy catalog compared on one scenario,
// plus a bitwise-determinism sweep over every registered policy
// (BENCH_policies.json).
//
// Two sections:
//
//   comparison — every registered policy on scenarios/batch_adaptive.json
//       (synchronous communication-heavy jobs with wide admissible batch
//       ranges). The acceptance point: at least one non-Optimus-family policy
//       must beat plain `optimus` on average JCT — the batch-adaptive goodput
//       policy is the expected winner on this workload.
//
//   determinism — every policy x engines {interval, events} x threads x
//       shards: each cell must reproduce its (policy, engine) reference
//       bitwise (JCTs, trace digest, counters). Any divergence exits 3.
//       Both sections run under --smoke (tools/check.sh and CI); --smoke
//       trims the grid to threads {1, 2} x shards {1, 2}.

#include <cstdio>
#include <chrono>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/sched/scheduler_registry.h"
#include "src/sim/simulator.h"
#include "src/workload/scenario.h"

namespace {

using namespace optimus;

std::string DigestHex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf);
}

double MeanJct(const std::vector<double>& jcts) {
  if (jcts.empty()) return 0.0;
  return std::accumulate(jcts.begin(), jcts.end(), 0.0) / jcts.size();
}

// Everything the run computes, fingerprinted for bitwise comparison across
// (shards, threads) cells of one (policy, engine).
struct RunFingerprint {
  std::vector<double> jcts;
  int completed = 0;
  int64_t events_processed = 0;
  int total_scalings = 0;
  int64_t audit_violations = 0;
  uint64_t trace_digest = 0;
  int64_t trace_records = 0;

  bool Matches(const RunFingerprint& other, std::string* why) const {
    auto fail = [&](const std::string& what) {
      *why = what;
      return false;
    };
    if (jcts != other.jcts) return fail("jcts");
    if (completed != other.completed) return fail("completed_jobs");
    if (events_processed != other.events_processed) {
      return fail("events_processed");
    }
    if (total_scalings != other.total_scalings) return fail("total_scalings");
    if (audit_violations != other.audit_violations) {
      return fail("audit_violations");
    }
    if (trace_digest != other.trace_digest) return fail("trace_digest");
    if (trace_records != other.trace_records) return fail("trace_records");
    return true;
  }
};

struct CellRun {
  RunFingerprint fp;
  RunMetrics metrics;
  double wall_s = 0.0;
  double sim_s = 0.0;
};

CellRun RunSim(const SimulatorConfig& config, std::vector<Server> servers,
               std::vector<JobSpec> specs) {
  Simulator sim(config, std::move(servers), std::move(specs));
  CellRun run;
  const auto start = std::chrono::steady_clock::now();
  run.metrics = sim.Run();
  const auto end = std::chrono::steady_clock::now();
  run.wall_s = std::chrono::duration<double>(end - start).count();
  run.sim_s = sim.now_s();
  run.fp.jcts = run.metrics.jcts;
  run.fp.completed = run.metrics.completed_jobs;
  run.fp.events_processed = run.metrics.events_processed;
  run.fp.total_scalings = run.metrics.total_scalings;
  run.fp.audit_violations = run.metrics.audit_violations;
  run.fp.trace_digest = sim.trace().digest();
  run.fp.trace_records = static_cast<int64_t>(sim.trace().size());
  return run;
}

// ---------------------------------------------------------------------------
// Section 1: full-catalog comparison on the batch-adaptive scenario.
// ---------------------------------------------------------------------------

bool RunComparison(const ScenarioSpec& scenario, JsonObject* section,
                   std::string* why) {
  const std::vector<std::string> policies = SchedulerRegistry::Global().Names();
  TablePrinter table(
      {"policy", "family", "completed", "avg JCT (s)", "vs optimus"});
  double optimus_jct = 0.0;
  std::string best_other;
  double best_other_jct = 0.0;
  std::vector<JsonObject> rows;
  for (const std::string& policy : policies) {
    const SchedulerPolicyInfo* info = SchedulerRegistry::Global().Find(policy);
    const CellRun run = RunSim(scenario.MakeSimConfig(policy),
                               scenario.cluster.Build(),
                               scenario.JobsForRepeat());
    const double avg_jct = MeanJct(run.metrics.jcts);
    if (policy == "optimus") {
      optimus_jct = avg_jct;
    } else if (info->allocator_family != AllocatorPolicy::kOptimus &&
               (best_other.empty() || avg_jct < best_other_jct)) {
      best_other = policy;
      best_other_jct = avg_jct;
    }
    table.AddRow({policy, AllocatorPolicyName(info->allocator_family),
                  std::to_string(run.fp.completed),
                  TablePrinter::FormatDouble(avg_jct, 1),
                  optimus_jct > 0.0
                      ? TablePrinter::FormatDouble(avg_jct / optimus_jct, 2) + "x"
                      : "-"});
    JsonObject row;
    row.Set("policy", policy);
    row.Set("family", AllocatorPolicyName(info->allocator_family));
    row.Set("completed_jobs", run.fp.completed);
    row.Set("avg_jct_s", avg_jct);
    row.Set("makespan_s", run.sim_s);
    row.Set("total_scalings", run.fp.total_scalings);
    row.Set("trace_digest", DigestHex(run.fp.trace_digest));
    SetPerfColumns(&row, run.wall_s, run.sim_s);
    rows.push_back(row);
  }
  table.Print(std::cout);

  const bool adaptive_wins =
      !best_other.empty() && best_other_jct < optimus_jct;
  std::cout << "  best non-Optimus-family policy: "
            << (best_other.empty() ? "(none)" : best_other) << " at "
            << TablePrinter::FormatDouble(best_other_jct, 1) << " s vs optimus "
            << TablePrinter::FormatDouble(optimus_jct, 1) << " s ("
            << (adaptive_wins ? "wins" : "OPTIMUS WINS") << ")\n";
  section->Set("rows", rows);
  section->Set("policies_compared", static_cast<int64_t>(policies.size()));
  section->Set("optimus_avg_jct_s", optimus_jct);
  section->Set("best_other_policy", best_other);
  section->Set("best_other_avg_jct_s", best_other_jct);
  section->Set("adaptive_wins", adaptive_wins);
  if (!adaptive_wins) {
    *why = "no non-Optimus-family policy beat optimus (" +
           std::to_string(optimus_jct) + " s) on " + scenario.name;
  }
  return adaptive_wins;
}

// ---------------------------------------------------------------------------
// Section 2: determinism sweep over every registered policy.
// ---------------------------------------------------------------------------

bool RunDeterminismSweep(const ScenarioSpec& scenario, bool smoke,
                         std::vector<JsonObject>* rows, std::string* why) {
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 8};
  const std::vector<SimEngine> engines = {SimEngine::kInterval,
                                          SimEngine::kEvents};

  TablePrinter table({"policy", "engine", "shards", "threads", "completed",
                      "trace digest", "match"});
  bool ok = true;
  for (const std::string& policy : SchedulerRegistry::Global().Names()) {
    for (const SimEngine engine : engines) {
      // The two engines legitimately differ from each other; the bitwise
      // contract is per (policy, engine), across shards x threads.
      bool have_reference = false;
      RunFingerprint reference;
      for (const int shards : shard_counts) {
        for (const int threads : thread_counts) {
          SimulatorConfig config = scenario.MakeSimConfig(policy);
          config.engine = engine;
          config.shards = shards;
          config.threads = threads;
          const CellRun run = RunSim(config, scenario.cluster.Build(),
                                     scenario.JobsForRepeat());
          std::string mismatch;
          bool match = true;
          if (!have_reference) {
            reference = run.fp;
            have_reference = true;
          } else if (!run.fp.Matches(reference, &mismatch)) {
            match = false;
            ok = false;
            *why = policy + " " + SimEngineName(engine) + " shards=" +
                   std::to_string(shards) + " threads=" +
                   std::to_string(threads) + " diverged on " + mismatch;
          }
          table.AddRow({policy, SimEngineName(engine), std::to_string(shards),
                        std::to_string(threads),
                        std::to_string(run.fp.completed),
                        DigestHex(run.fp.trace_digest),
                        match ? "ok" : "DIVERGED"});
          JsonObject row;
          row.Set("policy", policy);
          row.Set("engine", SimEngineName(engine));
          row.Set("shards", shards);
          row.Set("threads", threads);
          row.Set("completed_jobs", run.fp.completed);
          row.Set("trace_digest", DigestHex(run.fp.trace_digest));
          row.Set("trace_records", run.fp.trace_records);
          row.Set("match", match);
          SetPerfColumns(&row, run.wall_s, run.sim_s);
          rows->push_back(row);
        }
      }
    }
  }
  table.Print(std::cout);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "BENCH_policies.json");
  const std::string scenario_path =
      flags.GetString("scenario", "scenarios/batch_adaptive.json");
  for (const std::string& key : flags.UnconsumedKeys()) {
    std::cerr << "unknown flag --" << key << "\n";
    return 1;
  }

  PrintExperimentHeader(
      "EXT: policy families",
      "Full SchedulerRegistry catalog (goodput / synergy / dl2 included) on "
      "the batch-adaptive workload, plus per-policy determinism",
      "every policy is bitwise identical across shards x threads per engine; "
      "a non-Optimus-family policy (goodput expected) wins average JCT on the "
      "batch-adaptive scenario");

  ScenarioSpec scenario;
  std::string error;
  if (!LoadScenarioFile(scenario_path, &scenario, &error)) {
    std::cerr << "bad scenario: " << error << "\n";
    return 1;
  }

  bool ok = true;
  std::string divergence;
  JsonObject section;
  section.Set("smoke", smoke);
  section.Set("scenario", scenario_path);

  std::cout << "\nPolicy catalog on " << scenario_path << ":\n";
  JsonObject comparison;
  std::string comparison_why;
  if (!RunComparison(scenario, &comparison, &comparison_why)) {
    ok = false;
    divergence = comparison_why;
  }
  section.Set("comparison", comparison);

  std::cout << "\nDeterminism sweep (every policy x engine x shards x "
               "threads):\n";
  std::vector<JsonObject> determinism_rows;
  bool determinism_ok = true;
  if (!RunDeterminismSweep(scenario, smoke, &determinism_rows, &divergence)) {
    determinism_ok = false;
  }
  ok = ok && determinism_ok;
  section.Set("determinism", determinism_rows);
  section.Set("determinism_ok", determinism_ok);

  if (ok) {
    std::cout << "\nall policies deterministic; catalog comparison passed\n";
  } else {
    std::cerr << "\nFAILURE: " << divergence << "\n";
  }
  section.Set("ok", ok);
  if (WriteBenchJsonSection(json_path, "policies", section)) {
    std::cout << "wrote section policies to " << json_path << "\n";
  }
  return ok ? 0 : 3;
}
