// Parallel incremental interval engine: simulated-seconds-per-wall-second for
// the full interval loop (faults -> schedule -> advance -> audit) at
// 1,000 jobs on 16,000 nodes, across thread counts, against the
// pre-optimization baseline (full invariant re-derivation every interval,
// from-scratch model refits, serial stepping).
//
// Every row replays the identical workload from the identical seed, so the
// engine's determinism contract applies: all rows must produce bitwise
// identical RunMetrics (wall-time profiling fields excluded). The bench fails
// (exit 3) if any row diverges — speed that changes the answer is a bug, not
// a result.
//
// Reported per row: wall time, simulated seconds per wall second, and the
// per-phase breakdown (faults / schedule / advance / audit) that
// RunMetrics::wall_* accumulates inside Simulator::StepInterval.

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace {

using namespace optimus;

struct BenchParams {
  int jobs = 1000;
  int nodes = 16000;
  int intervals = 100;
  uint64_t seed = 7;
};

struct RowSpec {
  std::string label;
  int threads = 1;
  bool incremental_audit = true;
  bool model_caching = true;
  bool sparse_placement = true;
};

struct RowResult {
  RunMetrics metrics;
  double wall_s = 0.0;
  double sim_s_per_wall_s = 0.0;
};

RowResult RunRowOnce(const BenchParams& params, const RowSpec& row) {
  SimulatorConfig sim;
  sim.seed = params.seed;
  sim.threads = row.threads;
  sim.audit = true;
  sim.incremental_audit = row.incremental_audit;
  sim.model_caching = row.model_caching;
  sim.sparse_placement = row.sparse_placement;
  // A light fault load so the faults phase and the auditor's delta updates
  // (evictions, recoveries) are genuinely exercised, not measured at zero.
  std::string error;
  OPTIMUS_CHECK(ParseFaultPlan(
      "crash@1800:server=2,recover=9000;slow@2400:factor=0.8,duration=1800",
      &sim.fault.plan, &error))
      << error;
  sim.fault.task_failure_prob = 0.005;
  sim.fault.checkpoint_period_s = 3600.0;
  // Dense loss-sample feed (one sample every ~6 simulated seconds) fitted at
  // full fidelity (no 512-point downsampling cap): the regime the Gram-cached
  // refits are built for — the from-scratch path pays O(points) per beta2
  // candidate, the cached path accumulates the Gram once per refit.
  sim.conv_samples_per_interval = 300;
  sim.conv_fit_points = 16384;

  WorkloadConfig workload;
  workload.num_jobs = params.jobs;
  workload.arrival_window_s = 5 * sim.interval_s;

  Rng workload_rng(sim.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator simulator(sim, BuildUniformCluster(params.nodes, Resources(16, 80, 0, 1)),
                      std::move(specs));

  RowResult result;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < params.intervals; ++i) {
    if (!simulator.StepInterval()) {
      break;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.metrics = simulator.metrics();
  result.sim_s_per_wall_s =
      result.wall_s > 0.0 ? simulator.now_s() / result.wall_s : 0.0;
  return result;
}

bool MetricsIdentical(const RunMetrics& a, const RunMetrics& b, std::string* why);

// Best-of-two timing per row: wall clock on a shared host is noisy, the
// simulation is not — the repeat must reproduce the metrics bitwise, and the
// faster repeat's timings are the row's measurement.
RowResult RunRow(const BenchParams& params, const RowSpec& row) {
  RowResult best = RunRowOnce(params, row);
  RowResult again = RunRowOnce(params, row);
  std::string why;
  OPTIMUS_CHECK(MetricsIdentical(best.metrics, again.metrics, &why))
      << row.label << " not deterministic across repeats: " << why;
  if (again.wall_s < best.wall_s) {
    best = again;
  }
  return best;
}

// Bitwise equality of everything the simulation computes; the wall_* phase
// timers are host measurements and intentionally excluded.
bool MetricsIdentical(const RunMetrics& a, const RunMetrics& b,
                      std::string* why) {
  auto fail = [&](const std::string& what) {
    *why = what;
    return false;
  };
  if (a.completed_jobs != b.completed_jobs) return fail("completed_jobs");
  if (a.jcts != b.jcts) return fail("jcts");
  if (a.scaling_overhead_fraction != b.scaling_overhead_fraction) {
    return fail("scaling_overhead_fraction");
  }
  if (a.straggler_replacements != b.straggler_replacements) {
    return fail("straggler_replacements");
  }
  if (a.total_scalings != b.total_scalings) return fail("total_scalings");
  if (a.server_crashes != b.server_crashes) return fail("server_crashes");
  if (a.server_recoveries != b.server_recoveries) return fail("server_recoveries");
  if (a.task_failures != b.task_failures) return fail("task_failures");
  if (a.job_evictions != b.job_evictions) return fail("job_evictions");
  if (a.backoff_deferrals != b.backoff_deferrals) return fail("backoff_deferrals");
  if (a.checkpoints_taken != b.checkpoints_taken) return fail("checkpoints_taken");
  if (a.rolled_back_steps != b.rolled_back_steps) return fail("rolled_back_steps");
  if (a.audit_checks != b.audit_checks) return fail("audit_checks");
  if (a.audit_violations != b.audit_violations) return fail("audit_violations");
  if (a.timeline.size() != b.timeline.size()) return fail("timeline size");
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    if (a.timeline[i].time_s != b.timeline[i].time_s ||
        a.timeline[i].running_tasks != b.timeline[i].running_tasks ||
        a.timeline[i].worker_cpu_util_pct != b.timeline[i].worker_cpu_util_pct ||
        a.timeline[i].ps_cpu_util_pct != b.timeline[i].ps_cpu_util_pct) {
      return fail("timeline point " + std::to_string(i));
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // --smoke: a seconds-scale subset for tools/check.sh and CI.
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "BENCH_interval.json");
  for (const std::string& key : flags.UnconsumedKeys()) {
    std::cerr << "unknown flag --" << key << "\n";
    return 1;
  }

  PrintExperimentHeader(
      "EXT: interval engine",
      "Interval-loop throughput: parallel stepping, O(changed) auditing, "
      "Gram-cached refits vs the re-derive-everything baseline",
      "The optimized engine advances the same simulation >= 5x faster than "
      "the baseline while every row stays bitwise identical");

  BenchParams params;
  if (smoke) {
    params.jobs = 60;
    params.nodes = 200;
    params.intervals = 8;
  }

  // Row 0 is the pre-optimization baseline: serial, full invariant
  // re-derivation every interval, from-scratch model refits, dense placement
  // scans. The remaining rows are the new engine across thread counts.
  std::vector<RowSpec> rows;
  rows.push_back({"baseline (dense, full audit, no caches)", 1, false, false, false});
  for (const int threads : {1, 2, 4, 8}) {
    rows.push_back(
        {"engine @ " + std::to_string(threads) + "t", threads, true, true, true});
  }

  TablePrinter table({"configuration", "wall (s)", "sim s / wall s", "faults (s)",
                      "schedule (s)", "advance (s)", "audit (s)"});
  std::vector<RowResult> results;
  std::vector<JsonObject> json_rows;
  bool identical = true;
  std::string divergence;
  for (const RowSpec& row : rows) {
    const RowResult r = RunRow(params, row);
    if (!results.empty()) {
      std::string why;
      if (!MetricsIdentical(results.front().metrics, r.metrics, &why)) {
        identical = false;
        divergence = row.label + ": " + why;
      }
    }
    table.AddRow({row.label, TablePrinter::FormatDouble(r.wall_s, 3),
                  TablePrinter::FormatDouble(r.sim_s_per_wall_s, 0),
                  TablePrinter::FormatDouble(r.metrics.wall_faults_s, 3),
                  TablePrinter::FormatDouble(r.metrics.wall_schedule_s, 3),
                  TablePrinter::FormatDouble(r.metrics.wall_advance_s, 3),
                  TablePrinter::FormatDouble(r.metrics.wall_audit_s, 3)});
    JsonObject jr;
    jr.Set("label", row.label);
    jr.Set("threads", row.threads);
    jr.Set("incremental_audit", row.incremental_audit);
    jr.Set("model_caching", row.model_caching);
    jr.Set("sparse_placement", row.sparse_placement);
    jr.Set("wall_s", r.wall_s);
    jr.Set("sim_s_per_wall_s", r.sim_s_per_wall_s);
    jr.Set("wall_faults_s", r.metrics.wall_faults_s);
    jr.Set("wall_schedule_s", r.metrics.wall_schedule_s);
    jr.Set("wall_advance_s", r.metrics.wall_advance_s);
    jr.Set("wall_audit_s", r.metrics.wall_audit_s);
    jr.Set("audit_checks", r.metrics.audit_checks);
    jr.Set("audit_violations", r.metrics.audit_violations);
    json_rows.push_back(jr);
    results.push_back(r);
  }
  table.Print(std::cout);

  // Headline: baseline engine (serial, no caches, full audits) vs the new
  // engine at 8 threads. On a single-core host the parallel rows cannot add
  // wall speedup on top of the algorithmic wins; the per-thread rows are
  // recorded so multi-core machines show the stepping scale-out too.
  const double baseline_wall = results.front().wall_s;
  const double engine_8t_wall = results.back().wall_s;
  const double speedup =
      engine_8t_wall > 0.0 ? baseline_wall / engine_8t_wall : 0.0;
  std::cout << "\nbaseline " << TablePrinter::FormatDouble(baseline_wall, 3)
            << " s -> engine @ 8t " << TablePrinter::FormatDouble(engine_8t_wall, 3)
            << " s: " << TablePrinter::FormatDouble(speedup, 2)
            << "x (target >= 5x)\n";
  if (identical) {
    std::cout << "all " << results.size()
              << " rows bitwise identical (wall_* excluded)\n";
  } else {
    std::cerr << "METRICS DIVERGED: " << divergence << "\n";
  }

  JsonObject section;
  section.Set("smoke", smoke);
  section.Set("jobs", params.jobs);
  section.Set("nodes", params.nodes);
  section.Set("intervals", params.intervals);
  section.Set("interval_s", 600.0);
  section.Set("baseline_wall_s", baseline_wall);
  section.Set("engine_wall_s_8t", engine_8t_wall);
  section.Set("speedup_8t", speedup);
  section.Set("metrics_identical", identical);
  section.Set("rows", json_rows);
  if (WriteBenchJsonSection(json_path, "interval_engine", section)) {
    std::cout << "wrote section interval_engine to " << json_path << "\n";
  }

  return identical ? 0 : 3;
}
