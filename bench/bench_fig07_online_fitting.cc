// Fig 7: online fitting of the Seq2Seq training-loss curve; the paper reports
// fitted coefficients beta0 = 0.21, beta1 = 1.07, beta2 = 0.07.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/convergence_model.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 7", "Online model fitting for Seq2Seq training loss",
      "the fitted l = 1/(b0*k + b1) + b2 curve passes through the noisy data; "
      "paper's fit (in epoch units): beta0=0.21 beta1=1.07 beta2=0.07");

  const ModelSpec& spec = FindModel("Seq2Seq");
  const int64_t spe = spec.StepsPerEpoch(spec.default_sync_batch);
  LossCurve curve(spec.loss, spe);
  const int64_t total = curve.EpochsToConverge(0.01, 3);

  ConvergenceModel model;
  Rng rng(7);
  for (int64_t e = 0; e < total; ++e) {
    for (int i = 1; i <= 20; ++i) {
      const int64_t step = e * spe + i * spe / 20;
      model.AddSample(static_cast<double>(step), curve.SampleLossAtStep(step, &rng));
    }
  }
  model.Fit();

  // Our betas are fitted per *step* on normalized loss; convert beta0 to
  // epoch units for comparison with the paper's progress-scale values.
  std::cout << "\nFitted coefficients (normalized loss, epoch units):\n";
  TablePrinter fit({"coef", "fitted", "ground truth", "paper"});
  fit.AddRow({"beta0", TablePrinter::FormatDouble(model.beta0() * spe, 3),
              TablePrinter::FormatDouble(spec.loss.c0 / curve.InitialLoss(), 3), "0.21"});
  fit.AddRow({"beta1", TablePrinter::FormatDouble(model.beta1(), 3),
              TablePrinter::FormatDouble(spec.loss.c1 * curve.InitialLoss(), 3), "1.07"});
  fit.AddRow({"beta2", TablePrinter::FormatDouble(model.beta2(), 3),
              TablePrinter::FormatDouble(spec.loss.c2 / curve.InitialLoss(), 3), "0.07"});
  fit.Print(std::cout);

  PrintBanner(std::cout, "data points vs fitted curve");
  TablePrinter table({"progress %", "true loss", "fitted loss", "rel err %"});
  for (int pct = 0; pct <= 100; pct += 10) {
    const double epoch = pct / 100.0 * static_cast<double>(total);
    const double truth = curve.TrueLossAtEpoch(epoch);
    const double fitted = model.PredictLoss(epoch * static_cast<double>(spe));
    table.AddRow({std::to_string(pct), TablePrinter::FormatDouble(truth, 4),
                  TablePrinter::FormatDouble(fitted, 4),
                  TablePrinter::FormatDouble(100.0 * (fitted - truth) / truth, 2)});
  }
  table.Print(std::cout);
  return 0;
}
