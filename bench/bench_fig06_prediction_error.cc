// Fig 6: error of the predicted total number of epochs to convergence, as a
// function of training progress, for all nine jobs.

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/convergence_model.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 6", "Convergence-prediction error vs training progress (all jobs)",
      "errors start noticeable (can exceed +/-15%) and shrink toward ~0 as "
      "training progresses and more loss points accumulate");

  const double delta = 0.02;
  const int patience = 3;
  const int samples_per_epoch = 20;

  std::vector<std::string> headers = {"progress %"};
  for (const ModelSpec& spec : GetModelZoo()) {
    headers.push_back(spec.name);
  }
  TablePrinter table(headers);

  // For each model: simulate online fitting and record the signed error (%)
  // of the predicted total epoch count at each progress level.
  struct JobSim {
    LossCurve curve;
    ConvergenceModel model;
    Rng rng;
    int64_t truth;
    int64_t fed_epochs = 0;
  };
  std::vector<JobSim> sims;
  for (const ModelSpec& spec : GetModelZoo()) {
    LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
    const int64_t truth = curve.EpochsToConverge(delta, patience);
    sims.push_back({curve, ConvergenceModel(), Rng(1000 + sims.size()), truth, 0});
  }

  double last_abs_mean = 0.0;
  double first_abs_mean = -1.0;
  for (int pct = 10; pct <= 100; pct += 10) {
    std::vector<std::string> row = {std::to_string(pct)};
    double abs_sum = 0.0;
    for (JobSim& sim : sims) {
      const int64_t target_epochs =
          std::max<int64_t>(2, sim.truth * pct / 100);
      const int64_t spe = sim.curve.steps_per_epoch();
      while (sim.fed_epochs < target_epochs) {
        for (int i = 1; i <= samples_per_epoch; ++i) {
          const int64_t step = sim.fed_epochs * spe + i * spe / samples_per_epoch;
          sim.model.AddSample(static_cast<double>(step),
                              sim.curve.SampleLossAtStep(step, &sim.rng));
        }
        ++sim.fed_epochs;
      }
      sim.model.Fit();
      double err_pct = 0.0;
      if (sim.model.fitted()) {
        const int64_t predicted = sim.model.PredictTotalEpochs(delta, patience, spe);
        err_pct = 100.0 * static_cast<double>(predicted - sim.truth) /
                  static_cast<double>(sim.truth);
      }
      abs_sum += std::abs(err_pct);
      row.push_back(TablePrinter::FormatDouble(err_pct, 1));
    }
    table.AddRow(row);
    last_abs_mean = abs_sum / sims.size();
    if (first_abs_mean < 0.0) {
      first_abs_mean = last_abs_mean;
    }
  }
  table.Print(std::cout);
  std::cout << "\nMean |error| at 10% progress: "
            << TablePrinter::FormatDouble(first_abs_mean, 1)
            << "%, at 100% progress: " << TablePrinter::FormatDouble(last_abs_mean, 1)
            << "% (paper: errors shrink with progress, ~20% early)\n";
  return 0;
}
