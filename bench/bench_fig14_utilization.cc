// Fig 14: number of running tasks and normalized CPU utilization on workers
// and parameter servers over one experiment run, per scheduler.

#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 14", "Running tasks and normalized CPU utilization over time",
      "DRF (work-conserving) runs the most tasks but at the lowest per-task "
      "CPU utilization; Optimus runs fewer tasks and keeps them busier");

  WorkloadConfig workload;
  workload.num_jobs = 9;
  workload.target_steps_per_epoch = 80;

  struct SchedulerRun {
    std::string name;
    RunMetrics metrics;
  };
  std::vector<SchedulerRun> runs;
  for (SchedulerPreset preset :
       {SchedulerPreset::kOptimus, SchedulerPreset::kDrf, SchedulerPreset::kTetris}) {
    SimulatorConfig config;
    ApplySchedulerPreset(preset, &config);
    ApplyTestbedConditions(&config);
    config.seed = 5;
    Rng rng(config.seed ^ 0x5eedULL);
    Simulator sim(config, BuildTestbed(), GenerateWorkload(workload, &rng));
    runs.push_back({SchedulerPresetName(preset), sim.Run()});
  }

  PrintBanner(std::cout, "(a) running tasks per scheduling interval");
  TablePrinter tasks({"time (s)", "Optimus", "DRF", "Tetris"});
  size_t max_len = 0;
  for (const SchedulerRun& r : runs) {
    max_len = std::max(max_len, r.metrics.timeline.size());
  }
  for (size_t i = 0; i < max_len; i += 2) {
    std::vector<std::string> row;
    row.push_back(i < runs[0].metrics.timeline.size()
                      ? TablePrinter::FormatDouble(runs[0].metrics.timeline[i].time_s, 0)
                      : TablePrinter::FormatDouble((i + 1) * 600.0, 0));
    for (const SchedulerRun& r : runs) {
      row.push_back(i < r.metrics.timeline.size()
                        ? std::to_string(r.metrics.timeline[i].running_tasks)
                        : "-");
    }
    tasks.AddRow(row);
  }
  tasks.Print(std::cout);

  auto mean_util = [](const RunMetrics& m, bool worker) {
    RunningStat stat;
    for (const TimelinePoint& p : m.timeline) {
      if (p.running_tasks > 0) {
        stat.Add(worker ? p.worker_cpu_util_pct : p.ps_cpu_util_pct);
      }
    }
    return stat.mean();
  };
  auto mean_tasks = [](const RunMetrics& m) {
    RunningStat stat;
    for (const TimelinePoint& p : m.timeline) {
      if (p.running_tasks > 0) {
        stat.Add(p.running_tasks);
      }
    }
    return stat.mean();
  };

  PrintBanner(std::cout, "(b)(c) time-averaged utilization while busy");
  TablePrinter util({"scheduler", "mean running tasks", "worker CPU util %",
                     "PS CPU util %"});
  for (const SchedulerRun& r : runs) {
    util.AddRow({r.name, TablePrinter::FormatDouble(mean_tasks(r.metrics), 1),
                 TablePrinter::FormatDouble(mean_util(r.metrics, true), 1),
                 TablePrinter::FormatDouble(mean_util(r.metrics, false), 1)});
  }
  util.Print(std::cout);
  return 0;
}
