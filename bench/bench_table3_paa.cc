// Table 3: parameter-block distribution quality of the PAA algorithm versus
// MXNet's default rule on ResNet-50 (157 blocks, ~25M parameters, 10 PSes).

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/models/model_zoo.h"
#include "src/models/param_blocks.h"
#include "src/pserver/block_assignment.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Table 3", "Parameter distribution: MXNet default vs PAA (ResNet-50, 10 PS)",
      "paper: MXNet — size diff 3.6M, request diff 43, 247 requests; PAA — "
      "size diff 0.1M, request diff 1, 157 requests (no block split)");

  const ModelSpec& spec = FindModel("ResNet-50");
  const ParamBlockSizes blocks = GenerateParamBlocks(spec);
  const int num_ps = 10;

  // MXNet's random small-block placement: average the metrics over seeds.
  double mx_size_diff = 0.0;
  double mx_req_diff = 0.0;
  int64_t mx_requests = 0;
  const int seeds = 20;
  for (int s = 0; s < seeds; ++s) {
    Rng rng(s + 1);
    PsLoadMetrics m = ComputeLoadMetrics(MxnetAssigner().Assign(blocks, num_ps, &rng));
    mx_size_diff += static_cast<double>(m.param_size_diff);
    mx_req_diff += static_cast<double>(m.request_count_diff);
    mx_requests = m.total_requests;
  }
  mx_size_diff /= seeds;
  mx_req_diff /= seeds;

  PsLoadMetrics paa = ComputeLoadMetrics(PaaAssigner().Assign(blocks, num_ps));

  TablePrinter table({"algorithm", "diff of param sizes", "diff of # requests",
                      "total # requests"});
  table.AddRow({"MXNet (measured)",
                TablePrinter::FormatDouble(mx_size_diff / 1e6, 2) + "M",
                TablePrinter::FormatDouble(mx_req_diff, 1), std::to_string(mx_requests)});
  table.AddRow({"MXNet (paper)", "3.6M", "43", "247"});
  table.AddRow({"PAA (measured)",
                TablePrinter::FormatDouble(static_cast<double>(paa.param_size_diff) / 1e6, 2) + "M",
                std::to_string(paa.request_count_diff),
                std::to_string(paa.total_requests)});
  table.AddRow({"PAA (paper)", "0.1M", "1", "157"});
  table.Print(std::cout);

  std::cout << "\nPAA keeps every block whole (157 = minimum possible requests) and "
               "balances sizes ~" << TablePrinter::FormatDouble(
                   mx_size_diff / static_cast<double>(paa.param_size_diff), 0)
            << "x tighter than the MXNet default.\n";
  return 0;
}
