#include "bench/bench_util.h"

#include <fstream>
#include <sstream>

#include "src/cluster/server.h"
#include "src/common/logging.h"
#include "src/sched/scheduler_registry.h"

namespace optimus {

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_expectation) {
  std::cout << "\n================================================================\n"
            << "EXPERIMENT " << id << ": " << title << "\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "================================================================\n";
}

double PeakRssMib() {
  std::ifstream status("/proc/self/status");
  if (!status.good()) {
    return 0.0;
  }
  std::string line;
  while (std::getline(status, line)) {
    if (line.compare(0, 6, "VmHWM:") != 0) {
      continue;
    }
    std::istringstream fields(line.substr(6));
    double kib = 0.0;
    fields >> kib;
    return kib / 1024.0;
  }
  return 0.0;
}

void SetPerfColumns(JsonObject* row, double wall_s, double sim_s) {
  row->Set("wall_s", wall_s);
  row->Set("sim_s", sim_s);
  row->Set("sim_s_per_wall_s", wall_s > 0.0 ? sim_s / wall_s : 0.0);
  row->Set("peak_rss_mib", PeakRssMib());
}

std::vector<ExperimentResult> RunPolicyComparison(
    const ExperimentConfig& base, const std::vector<std::string>& policies,
    const std::string& caption) {
  OPTIMUS_CHECK(!policies.empty());
  std::vector<ExperimentResult> results;
  for (const std::string& policy : policies) {
    const SchedulerPolicyInfo* info = SchedulerRegistry::Global().Find(policy);
    OPTIMUS_CHECK(info != nullptr)
        << SchedulerRegistry::Global().UnknownPolicyMessage(policy);
    ExperimentConfig config = base;
    std::string error;
    OPTIMUS_CHECK(ApplySchedulerPolicy(policy, &config.sim, &error)) << error;
    config.label = info->display_name;
    results.push_back(RunExperiment(config, [] { return BuildTestbed(); }));
  }

  const ExperimentResult& baseline = results[0];
  PrintBanner(std::cout, caption);
  TablePrinter table({"scheduler", "avg JCT (s)", "JCT stddev", "JCT (norm)",
                      "makespan (s)", "makespan stddev", "makespan (norm)",
                      "scaling overhead %"});
  for (const ExperimentResult& r : results) {
    table.AddRow({r.label, TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_stddev, 0),
                  TablePrinter::FormatDouble(
                      NormalizedTo(r.avg_jct_mean, baseline.avg_jct_mean), 2),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.makespan_stddev, 0),
                  TablePrinter::FormatDouble(
                      NormalizedTo(r.makespan_mean, baseline.makespan_mean), 2),
                  TablePrinter::FormatDouble(r.scaling_overhead_mean * 100.0, 2)});
  }
  table.Print(std::cout);
  return results;
}

std::vector<ExperimentResult> RunSchedulerComparison(const ExperimentConfig& base,
                                                     const std::string& caption) {
  return RunPolicyComparison(base, {"optimus", "drf", "tetris"}, caption);
}

}  // namespace optimus
