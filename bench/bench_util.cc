#include "bench/bench_util.h"

#include "src/cluster/server.h"

namespace optimus {

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_expectation) {
  std::cout << "\n================================================================\n"
            << "EXPERIMENT " << id << ": " << title << "\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "================================================================\n";
}

std::vector<ExperimentResult> RunSchedulerComparison(const ExperimentConfig& base,
                                                     const std::string& caption) {
  std::vector<ExperimentResult> results;
  for (SchedulerPreset preset :
       {SchedulerPreset::kOptimus, SchedulerPreset::kDrf, SchedulerPreset::kTetris}) {
    ExperimentConfig config = base;
    ApplySchedulerPreset(preset, &config.sim);
    config.label = SchedulerPresetName(preset);
    results.push_back(RunExperiment(config, [] { return BuildTestbed(); }));
  }

  const ExperimentResult& optimus = results[0];
  PrintBanner(std::cout, caption);
  TablePrinter table({"scheduler", "avg JCT (s)", "JCT stddev", "JCT (norm)",
                      "makespan (s)", "makespan stddev", "makespan (norm)",
                      "scaling overhead %"});
  for (const ExperimentResult& r : results) {
    table.AddRow({r.label, TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_stddev, 0),
                  TablePrinter::FormatDouble(
                      NormalizedTo(r.avg_jct_mean, optimus.avg_jct_mean), 2),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.makespan_stddev, 0),
                  TablePrinter::FormatDouble(
                      NormalizedTo(r.makespan_mean, optimus.makespan_mean), 2),
                  TablePrinter::FormatDouble(r.scaling_overhead_mean * 100.0, 2)});
  }
  table.Print(std::cout);
  return results;
}

}  // namespace optimus
