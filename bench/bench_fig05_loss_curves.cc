// Fig 5: normalized training-loss curves of all nine Table-1 jobs against
// training progress.

#include <iostream>

#include "bench/bench_util.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 5", "Normalized training-loss curves of the nine DL jobs",
      "after normalizing by the maximum loss, every job's curve lies in (0, 1] "
      "and decays with an O(1/k) SGD-style shape");

  std::vector<std::string> headers = {"progress %"};
  for (const ModelSpec& spec : GetModelZoo()) {
    headers.push_back(spec.name);
  }
  TablePrinter table(headers);

  // Progress is epochs relative to each job's own convergence epoch at a 1%
  // threshold, as in the paper's figure.
  std::vector<LossCurve> curves;
  std::vector<int64_t> total_epochs;
  std::vector<double> initial;
  for (const ModelSpec& spec : GetModelZoo()) {
    curves.emplace_back(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
    total_epochs.push_back(curves.back().EpochsToConverge(0.01, 3));
    initial.push_back(curves.back().InitialLoss());
  }

  for (int pct = 0; pct <= 100; pct += 10) {
    std::vector<std::string> row = {std::to_string(pct)};
    for (size_t i = 0; i < curves.size(); ++i) {
      const double epoch = pct / 100.0 * static_cast<double>(total_epochs[i]);
      row.push_back(
          TablePrinter::FormatDouble(curves[i].TrueLossAtEpoch(epoch) / initial[i], 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nAll curves start at 1.0 and decrease monotonically toward their "
               "floors, matching Fig 5's family of shapes.\n";
  return 0;
}
