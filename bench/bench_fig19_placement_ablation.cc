// Fig 19: effectiveness of the task placement scheme — replace only the
// placement algorithm with the load-balancing (DRF/Kubernetes default) or
// Tetris packing scheme while keeping Optimus's resource allocation.

#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 19", "Task-placement ablation (allocation fixed to Optimus)",
      "Optimus's packed placement beats load-balancing by ~15% and Tetris "
      "packing by ~10% on JCT in the paper; the ordering must hold");

  TablePrinter table({"placement", "avg JCT (s)", "JCT (norm)", "makespan (s)",
                      "makespan (norm)"});
  double base_jct = 0.0;
  double base_mk = 0.0;
  for (PlacementPolicy place :
       {PlacementPolicy::kOptimusPack, PlacementPolicy::kLoadBalance,
        PlacementPolicy::kTetrisPack}) {
    ExperimentConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config.sim);
    ApplyTestbedConditions(&config.sim);
    config.sim.placement = place;  // the only knob that changes
    config.workload.num_jobs = 9;
    config.workload.target_steps_per_epoch = 80;
    config.repeats = 5;
    ExperimentResult r = RunExperiment(config, [] { return BuildTestbed(); });
    if (base_jct == 0.0) {
      base_jct = r.avg_jct_mean;
      base_mk = r.makespan_mean;
    }
    table.AddRow({PlacementPolicyName(place),
                  TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_mean / base_jct, 2),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.makespan_mean / base_mk, 2)});
  }
  table.Print(std::cout);
  return 0;
}
