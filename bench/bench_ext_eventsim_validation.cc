// Extension: cross-validation of the closed-form Eqn-2 step-time model
// against the message-level fluid-flow simulation (src/pserver/event_sim.h).
//
// Not a paper figure — it validates the modeling assumptions every paper
// figure rests on: if the closed-form model deviated wildly from a
// per-message network simulation, the scheduler comparisons would be built on
// sand.

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"
#include "src/pserver/event_sim.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "EXT: model validation",
      "Closed-form Eqn-2 step time vs message-level fluid-flow simulation",
      "the closed-form model tracks the event simulation across models, "
      "modes, and (p, w); mean deviation well under the prediction-error "
      "levels Fig 15 shows Optimus tolerates");

  const CommConfig config;
  TablePrinter table({"model", "mode", "mean |dev| %", "max |dev| %"});
  RunningStat global;
  for (const char* name : {"ResNet-50", "Seq2Seq", "DeepSpeech2", "ResNext-110"}) {
    const ModelSpec& model = FindModel(name);
    for (TrainingMode mode : {TrainingMode::kSync, TrainingMode::kAsync}) {
      RunningStat dev;
      for (int p = 2; p <= 14; p += 4) {
        for (int w = 2; w <= 14; w += 4) {
          StepTimeInputs in;
          in.model = &model;
          in.mode = mode;
          in.num_ps = p;
          in.num_workers = w;
          const double closed = TrainingSpeed(in, config);
          const double simulated = SimulateStep(in, config).speed;
          const double d = 100.0 * std::abs(simulated - closed) / closed;
          dev.Add(d);
          global.Add(d);
        }
      }
      table.AddRow({model.name, TrainingModeName(mode),
                    TablePrinter::FormatDouble(dev.mean(), 1),
                    TablePrinter::FormatDouble(dev.max(), 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nOverall mean deviation: " << TablePrinter::FormatDouble(global.mean(), 1)
            << "% (max " << TablePrinter::FormatDouble(global.max(), 1)
            << "%). For comparison, Fig 15 shows Optimus loses <8% JCT even "
               "under 45% speed-estimation error.\n";
  return 0;
}
