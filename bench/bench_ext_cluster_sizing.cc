// Extension: capacity planning — how does the fixed 12-job workload's
// performance scale with cluster size under each scheduler? Operators use
// this curve to size a cluster for a target JCT.

#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "EXT: cluster sizing",
      "Average JCT vs cluster size (fixed 12-job workload)",
      "JCT falls with cluster size but saturates once every job reaches its "
      "speed knee; Optimus reaches any target JCT with fewer servers, and "
      "DRF's disadvantage grows with abundance (work-conserving "
      "over-allocation past the knee wastes more when more is available)");

  TablePrinter table({"# servers", "Optimus JCT (s)", "DRF JCT (s)", "DRF/Optimus"});
  for (int servers : {6, 10, 16, 24, 36}) {
    std::vector<double> jcts;
    for (SchedulerPreset preset : {SchedulerPreset::kOptimus, SchedulerPreset::kDrf}) {
      ExperimentConfig config;
      ApplySchedulerPreset(preset, &config.sim);
      ApplyTestbedConditions(&config.sim);
      config.workload.num_jobs = 12;
      config.workload.arrival_window_s = 6000.0;
      config.workload.target_steps_per_epoch = 60;
      config.repeats = 5;
      ExperimentResult r = RunExperiment(config, [servers] {
        return BuildUniformCluster(servers, Resources(16, 80, 0, 1));
      });
      jcts.push_back(r.avg_jct_mean);
    }
    table.AddRow({std::to_string(servers), TablePrinter::FormatDouble(jcts[0], 0),
                  TablePrinter::FormatDouble(jcts[1], 0),
                  TablePrinter::FormatDouble(jcts[1] / jcts[0], 2)});
  }
  table.Print(std::cout);
  std::cout << "\nBoth schedulers saturate as jobs hit their speed knees; DRF "
               "cannot convert extra servers into lower JCT as well as "
               "Optimus can.\n";
  return 0;
}
