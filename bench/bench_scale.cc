// Million-job / 100k-server scale sweep for the two-phase sharded scheduler
// and streaming admission (BENCH_scale.json).
//
// Three sections:
//
//   determinism — shards x threads x engines over a scenario file (default
//       scenarios/scale_smoke.json, which carries a fault plan): every cell
//       must reproduce the reference cell's metrics and event-trace digest
//       bitwise. Any divergence exits 3. This is the only section that runs
//       under --smoke (tools/check.sh and CI).
//
//   scale — {10k, 100k, 1M} jobs x {16k, 100k} servers, one child process
//       per cell (re-exec with --cell): streaming admission + hash-only
//       trace + the event engine, shards=8. The child process reports its
//       own VmHWM, so peak-RSS columns are per-cell, not a sweep-wide
//       high-water mark. Arrivals spread so the active set stays bounded:
//       peak RSS is O(active jobs) + the flat pending-spec queue, not
//       O(total jobs materialized).
//
//   shard speedup — the acceptance point: wall time of the scheduling phase
//       at 100k servers, shards=8 vs shards=1 on the identical burst
//       workload. The two runs must also agree bitwise (same JCTs, same
//       trace digest); the speedup itself is reported, divergence exits 3.

#include <cstdio>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"
#include "src/workload/scenario.h"

namespace {

using namespace optimus;

std::string DigestHex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf);
}

// Everything the simulation computes, fingerprinted for bitwise comparison
// across (shards, threads, engine-invariant) configurations. JCT vectors are
// compared exactly; the trace via its running digest + record count.
struct RunFingerprint {
  std::vector<double> jcts;
  int completed = 0;
  int64_t events_processed = 0;
  int total_scalings = 0;
  int job_evictions = 0;
  int task_failures = 0;
  double rolled_back_steps = 0.0;
  int64_t audit_violations = 0;
  uint64_t trace_digest = 0;
  int64_t trace_records = 0;

  bool Matches(const RunFingerprint& other, std::string* why) const {
    auto fail = [&](const std::string& what) {
      *why = what;
      return false;
    };
    if (jcts != other.jcts) return fail("jcts");
    if (completed != other.completed) return fail("completed_jobs");
    if (events_processed != other.events_processed) {
      return fail("events_processed");
    }
    if (total_scalings != other.total_scalings) return fail("total_scalings");
    if (job_evictions != other.job_evictions) return fail("job_evictions");
    if (task_failures != other.task_failures) return fail("task_failures");
    if (rolled_back_steps != other.rolled_back_steps) {
      return fail("rolled_back_steps");
    }
    if (audit_violations != other.audit_violations) {
      return fail("audit_violations");
    }
    if (trace_digest != other.trace_digest) return fail("trace_digest");
    if (trace_records != other.trace_records) return fail("trace_records");
    return true;
  }
};

struct CellRun {
  RunFingerprint fp;
  RunMetrics metrics;
  ShardedRoundStats shard_stats;
  double wall_s = 0.0;
  double sim_s = 0.0;
};

CellRun RunSim(const SimulatorConfig& config, std::vector<Server> servers,
               std::vector<JobSpec> specs) {
  Simulator sim(config, std::move(servers), std::move(specs));
  CellRun run;
  const auto start = std::chrono::steady_clock::now();
  run.metrics = sim.Run();
  const auto end = std::chrono::steady_clock::now();
  run.wall_s = std::chrono::duration<double>(end - start).count();
  run.sim_s = sim.now_s();
  run.shard_stats = sim.sharded_stats();
  run.fp.jcts = run.metrics.jcts;
  run.fp.completed = run.metrics.completed_jobs;
  run.fp.events_processed = run.metrics.events_processed;
  run.fp.total_scalings = run.metrics.total_scalings;
  run.fp.job_evictions = run.metrics.job_evictions;
  run.fp.task_failures = run.metrics.task_failures;
  run.fp.rolled_back_steps = run.metrics.rolled_back_steps;
  run.fp.audit_violations = run.metrics.audit_violations;
  run.fp.trace_digest = sim.trace().digest();
  run.fp.trace_records = static_cast<int64_t>(sim.trace().size());
  return run;
}

// ---------------------------------------------------------------------------
// Section 1: determinism sweep over the scenario file.
// ---------------------------------------------------------------------------

bool RunDeterminismSweep(const std::string& scenario_path, bool smoke,
                         std::vector<JsonObject>* rows, std::string* why) {
  ScenarioSpec scenario;
  std::string error;
  if (!LoadScenarioFile(scenario_path, &scenario, &error)) {
    *why = "scenario load failed: " + error;
    return false;
  }
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 8};
  const std::vector<SimEngine> engines = {SimEngine::kInterval,
                                          SimEngine::kEvents};

  TablePrinter table({"engine", "shards", "threads", "wall (s)", "completed",
                      "trace digest", "migrated tasks", "match"});
  bool ok = true;
  for (const SimEngine engine : engines) {
    // The two engines legitimately differ from each other (different RNG
    // cadences); the bitwise contract is per engine, across shards/threads.
    bool have_reference = false;
    RunFingerprint reference;
    for (const int shards : shard_counts) {
      for (const int threads : thread_counts) {
        SimulatorConfig config = scenario.MakeSimConfig("optimus");
        config.engine = engine;
        config.shards = shards;
        config.threads = threads;
        const CellRun run = RunSim(config, scenario.cluster.Build(),
                                   scenario.JobsForRepeat());
        std::string mismatch;
        bool match = true;
        if (!have_reference) {
          reference = run.fp;
          have_reference = true;
        } else if (!run.fp.Matches(reference, &mismatch)) {
          match = false;
          ok = false;
          *why = std::string(SimEngineName(engine)) + " shards=" +
                 std::to_string(shards) + " threads=" +
                 std::to_string(threads) + " diverged on " + mismatch;
        }
        table.AddRow({SimEngineName(engine), std::to_string(shards),
                      std::to_string(threads),
                      TablePrinter::FormatDouble(run.wall_s, 3),
                      std::to_string(run.fp.completed),
                      DigestHex(run.fp.trace_digest),
                      std::to_string(run.shard_stats.migrated_tasks),
                      match ? "ok" : "DIVERGED"});
        JsonObject row;
        row.Set("engine", SimEngineName(engine));
        row.Set("shards", shards);
        row.Set("threads", threads);
        row.Set("completed_jobs", run.fp.completed);
        row.Set("trace_digest", DigestHex(run.fp.trace_digest));
        row.Set("trace_records", run.fp.trace_records);
        row.Set("shard_rounds", run.shard_stats.rounds);
        row.Set("shard_local_grants", run.shard_stats.local_grants);
        row.Set("shard_migrated_jobs", run.shard_stats.migrated_jobs);
        row.Set("shard_migrated_tasks", run.shard_stats.migrated_tasks);
        row.Set("match", match);
        SetPerfColumns(&row, run.wall_s, run.sim_s);
        rows->push_back(row);
      }
    }
  }
  table.Print(std::cout);
  return ok;
}

// ---------------------------------------------------------------------------
// Section 2: scale cells (child process per cell).
// ---------------------------------------------------------------------------

SimulatorConfig ScaleCellConfig() {
  SimulatorConfig config;
  config.seed = 7;
  config.engine = SimEngine::kEvents;
  config.streaming = true;
  config.trace_hash_only = true;
  config.shards = 8;
  config.threads = 1;
  config.interval_s = 600.0;
  return config;
}

// One scale cell, run inside a dedicated child process so VmHWM is the
// cell's own peak. Arrivals are spread so at most ~8k jobs are live at once;
// the rest of a million-job workload stays in the flat pending-spec queue.
int RunScaleCell(int num_jobs, int num_servers) {
  constexpr int kHorizonIntervals = 12;
  constexpr double kTargetActiveJobs = 8000.0;
  SimulatorConfig config = ScaleCellConfig();
  config.max_sim_time_s = kHorizonIntervals * config.interval_s;

  WorkloadConfig workload;
  workload.num_jobs = num_jobs;
  const double horizon_s = config.max_sim_time_s;
  workload.arrival_window_s =
      std::max(horizon_s, horizon_s * num_jobs / kTargetActiveJobs);

  Rng workload_rng(config.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator sim(config,
                BuildUniformCluster(num_servers, Resources(16, 80, 0, 1)),
                std::move(specs));
  const auto start = std::chrono::steady_clock::now();
  const RunMetrics metrics = sim.Run();
  const auto end = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(end - start).count();

  // Single machine-readable line the parent scrapes into BENCH_scale.json.
  std::cout << "CELL jobs=" << num_jobs << " servers=" << num_servers
            << " materialized=" << sim.materialized_jobs()
            << " completed=" << metrics.completed_jobs
            << " wall_s=" << wall_s << " sim_s=" << sim.now_s()
            << " peak_rss_mib=" << PeakRssMib()
            << " trace_digest=" << DigestHex(sim.trace().digest())
            << " trace_records=" << sim.trace().size()
            << " schedule_s=" << metrics.wall_schedule_s
            << " shard_migrated_tasks=" << sim.sharded_stats().migrated_tasks
            << "\n";
  return 0;
}

bool RunScaleSweep(const std::string& self_exe, std::vector<JsonObject>* rows,
                   std::string* why) {
  const std::vector<int> job_counts = {10000, 100000, 1000000};
  const std::vector<int> server_counts = {16000, 100000};
  TablePrinter table({"jobs", "servers", "materialized", "completed",
                      "wall (s)", "sim s / wall s", "peak RSS (MiB)"});
  for (const int servers : server_counts) {
    for (const int jobs : job_counts) {
      const std::string cmd = self_exe + " --cell=" + std::to_string(jobs) +
                              "x" + std::to_string(servers);
      std::cout << "  running cell " << jobs << " jobs x " << servers
                << " servers...\n"
                << std::flush;
      FILE* pipe = popen(cmd.c_str(), "r");
      if (pipe == nullptr) {
        *why = "failed to spawn " + cmd;
        return false;
      }
      std::string cell_line;
      char buf[4096];
      while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
        const std::string line(buf);
        if (line.compare(0, 5, "CELL ") == 0) {
          cell_line = line.substr(5);
        }
      }
      const int status = pclose(pipe);
      if (status != 0 || cell_line.empty()) {
        *why = "cell " + std::to_string(jobs) + "x" + std::to_string(servers) +
               " failed (exit " + std::to_string(status) + ")";
        return false;
      }
      // key=value scrape; numeric fields go in as numbers, the digest as a
      // string.
      JsonObject row;
      std::istringstream fields(cell_line);
      std::string field;
      double wall_s = 0.0;
      double sim_s = 0.0;
      std::string table_materialized, table_completed, table_rss;
      while (fields >> field) {
        const size_t eq = field.find('=');
        if (eq == std::string::npos) {
          continue;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "trace_digest") {
          row.Set(key, value);
        } else {
          row.Set(key, std::stod(value));
        }
        if (key == "wall_s") wall_s = std::stod(value);
        if (key == "sim_s") sim_s = std::stod(value);
        if (key == "materialized") table_materialized = value;
        if (key == "completed") table_completed = value;
        if (key == "peak_rss_mib") table_rss = value;
      }
      row.Set("mode", "streaming+events, shards=8, hash-only trace");
      row.Set("sim_s_per_wall_s", wall_s > 0.0 ? sim_s / wall_s : 0.0);
      rows->push_back(row);
      table.AddRow({std::to_string(jobs), std::to_string(servers),
                    table_materialized, table_completed,
                    TablePrinter::FormatDouble(wall_s, 2),
                    TablePrinter::FormatDouble(
                        wall_s > 0.0 ? sim_s / wall_s : 0.0, 0),
                    table_rss});
    }
  }
  table.Print(std::cout);
  return true;
}

// ---------------------------------------------------------------------------
// Section 3: shard speedup at 100k servers (the acceptance point).
// ---------------------------------------------------------------------------

bool RunShardSpeedup(bool smoke, JsonObject* section, std::string* why) {
  const int servers = smoke ? 2000 : 100000;
  const int jobs = smoke ? 400 : 4000;
  const int rounds = smoke ? 2 : 4;

  SimulatorConfig base;
  base.seed = 7;
  base.engine = SimEngine::kInterval;
  base.interval_s = 600.0;
  base.max_sim_time_s = rounds * base.interval_s;
  WorkloadConfig workload;
  workload.num_jobs = jobs;
  workload.arrival_window_s = base.interval_s;  // burst: all active early

  auto run = [&](int shards) {
    SimulatorConfig config = base;
    config.shards = shards;
    Rng workload_rng(config.seed ^ 0x5eedULL);
    return RunSim(config,
                  BuildUniformCluster(servers, Resources(16, 80, 0, 1)),
                  GenerateWorkload(workload, &workload_rng));
  };
  const CellRun unsharded = run(1);
  const CellRun sharded = run(8);

  std::string mismatch;
  const bool identical = sharded.fp.Matches(unsharded.fp, &mismatch);
  if (!identical) {
    *why = "shards=8 vs shards=1 diverged on " + mismatch;
  }
  const double speedup =
      sharded.metrics.wall_schedule_s > 0.0
          ? unsharded.metrics.wall_schedule_s / sharded.metrics.wall_schedule_s
          : 0.0;
  std::cout << "\nShard speedup (" << jobs << " jobs, " << servers
            << " servers, " << rounds << " rounds, interval engine):\n"
            << "  schedule wall: shards=1 "
            << TablePrinter::FormatDouble(unsharded.metrics.wall_schedule_s, 3)
            << " s, shards=8 "
            << TablePrinter::FormatDouble(sharded.metrics.wall_schedule_s, 3)
            << " s -> " << TablePrinter::FormatDouble(speedup, 2)
            << "x (target >= 4x at full scale); outputs "
            << (identical ? "bitwise identical" : "DIVERGED") << "\n";

  section->Set("speedup_jobs", jobs);
  section->Set("speedup_servers", servers);
  section->Set("speedup_rounds", rounds);
  section->Set("schedule_s_shards1", unsharded.metrics.wall_schedule_s);
  section->Set("schedule_s_shards8", sharded.metrics.wall_schedule_s);
  section->Set("shard_speedup", speedup);
  section->Set("shard_speedup_identical", identical);
  section->Set("shard_migrated_tasks", sharded.shard_stats.migrated_tasks);
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "BENCH_scale.json");
  const std::string scenario_path =
      flags.GetString("scenario", "scenarios/scale_smoke.json");
  // Internal: run one scale cell in this process and print its CELL line.
  const std::string cell = flags.GetString("cell", "");
  for (const std::string& key : flags.UnconsumedKeys()) {
    std::cerr << "unknown flag --" << key << "\n";
    return 1;
  }
  if (!cell.empty()) {
    const size_t x = cell.find('x');
    OPTIMUS_CHECK(x != std::string::npos) << "--cell expects <jobs>x<servers>";
    return RunScaleCell(std::stoi(cell.substr(0, x)),
                        std::stoi(cell.substr(x + 1)));
  }

  PrintExperimentHeader(
      "EXT: sharded scheduling at scale",
      "Two-phase sharded rounds + streaming admission at {10k,100k,1M} jobs "
      "x {16k,100k} servers",
      "All (shards, threads) cells bitwise identical; >= 4x scheduling-round "
      "speedup at 100k servers with shards=8; the 1M-job run's peak RSS is "
      "bounded by the active-job set, not the total job count");

  bool ok = true;
  std::string divergence;

  std::cout << "\nDeterminism sweep over " << scenario_path << ":\n";
  std::vector<JsonObject> determinism_rows;
  const bool determinism_ok =
      RunDeterminismSweep(scenario_path, smoke, &determinism_rows, &divergence);
  if (!determinism_ok) {
    ok = false;
  }

  JsonObject section;
  section.Set("smoke", smoke);
  section.Set("scenario", scenario_path);
  section.Set("determinism_ok", determinism_ok);
  section.Set("determinism", determinism_rows);

  if (!smoke) {
    std::cout << "\nScale sweep (one child process per cell):\n";
    std::vector<JsonObject> scale_rows;
    std::string scale_why;
    if (!RunScaleSweep(argv[0], &scale_rows, &scale_why)) {
      ok = false;
      divergence = scale_why;
    }
    section.Set("scale_cells", scale_rows);
  }

  std::string speedup_why;
  if (!RunShardSpeedup(smoke, &section, &speedup_why)) {
    ok = false;
    divergence = speedup_why;
  }

  if (ok) {
    std::cout << "\nall configurations bitwise identical\n";
  } else {
    std::cerr << "\nDIVERGENCE: " << divergence << "\n";
  }
  section.Set("ok", ok);
  if (WriteBenchJsonSection(json_path, "scale", section)) {
    std::cout << "wrote section scale to " << json_path << "\n";
  }
  return ok ? 0 : 3;
}
