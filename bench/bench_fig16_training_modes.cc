// Fig 16: sensitivity to workloads — all jobs asynchronous vs all jobs
// synchronous.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 16", "Sensitivity to training modes (all-async vs all-sync)",
      "Optimus outperforms DRF and Tetris in both modes; the gain is larger "
      "when all jobs train synchronously (estimates are more reliable)");

  for (TrainingMode mode : {TrainingMode::kAsync, TrainingMode::kSync}) {
    ExperimentConfig base;
    ApplyTestbedConditions(&base.sim);
    base.workload.num_jobs = 9;
    base.workload.target_steps_per_epoch = 80;
    base.workload.forced_mode = mode;
    base.repeats = 5;
    RunSchedulerComparison(base, std::string("all jobs ") + TrainingModeName(mode));
  }
  return 0;
}
