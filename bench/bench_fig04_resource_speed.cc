// Fig 4: training speed of synchronous ResNet-50 under different resource
// configurations: (a) fixed total of 20 containers, (b) fixed 1:1 PS:worker
// ratio.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"

namespace {

double Speed(const optimus::ModelSpec& spec, int p, int w) {
  optimus::StepTimeInputs in;
  in.model = &spec;
  in.mode = optimus::TrainingMode::kSync;
  in.num_ps = p;
  in.num_workers = w;
  return optimus::TrainingSpeed(in, optimus::CommConfig{});
}

}  // namespace

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 4", "Training speed vs resource configuration (ResNet-50, sync)",
      "(a) with 20 total containers, speed peaks at an intermediate split "
      "(paper: 8 workers / 12 PS); (b) at a 1:1 ratio speed shows strongly "
      "diminishing returns and eventually declines");

  const ModelSpec& spec = FindModel("ResNet-50");

  PrintBanner(std::cout, "(a) 20 containers total: workers w, parameter servers 20-w");
  TablePrinter a({"workers", "ps", "speed (steps/s)"});
  int best_w = 1;
  double best_speed = 0.0;
  for (int w = 1; w <= 19; ++w) {
    const double s = Speed(spec, 20 - w, w);
    if (s > best_speed) {
      best_speed = s;
      best_w = w;
    }
    a.AddRow({std::to_string(w), std::to_string(20 - w),
              TablePrinter::FormatDouble(s, 4)});
  }
  a.Print(std::cout);
  std::cout << "Peak at w=" << best_w << ", p=" << 20 - best_w
            << " (paper: w=8, p=12); interior peak confirms non-monotonicity\n";

  PrintBanner(std::cout, "(b) 1:1 PS:worker ratio");
  TablePrinter b({"workers (=ps)", "speed (steps/s)", "speedup vs w=1"});
  const double s1 = Speed(spec, 1, 1);
  int best_u = 1;
  double best_s = 0.0;
  for (int u = 1; u <= 20; ++u) {
    const double s = Speed(spec, u, u);
    if (s > best_s) {
      best_s = s;
      best_u = u;
    }
    b.AddRow({std::to_string(u), TablePrinter::FormatDouble(s, 4),
              TablePrinter::FormatDouble(s / s1, 2)});
  }
  b.Print(std::cout);
  std::cout << "Peak at w=p=" << best_u
            << " (paper: ~10); adding resources beyond the peak slows training\n";
  return 0;
}
