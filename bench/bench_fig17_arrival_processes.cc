// Fig 17: sensitivity to the job-arrival process — a Poisson process (3
// arrivals per scheduling interval) and a bursty Google-cluster-trace-like
// process.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 17", "Sensitivity to job arrival processes (Poisson, Google-trace)",
      "Optimus wins under both; its edge grows under the bursty Google-trace "
      "arrivals because it absorbs arrival spikes by reallocating");

  for (ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kGoogleTrace}) {
    ExperimentConfig base;
    ApplyTestbedConditions(&base.sim);
    base.workload.num_jobs = 12;
    base.workload.arrivals = process;
    base.workload.target_steps_per_epoch = 80;
    base.repeats = 5;
    RunSchedulerComparison(base, ArrivalProcessName(process));
  }
  return 0;
}
