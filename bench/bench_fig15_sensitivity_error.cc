// Fig 15: sensitivity of Optimus to prediction errors — JCT and makespan as
// convergence-estimation or speed-estimation errors grow. Also evaluates the
// §4.1 young-job priority factor (paper: 0.95 improves JCT by 2.66% and
// makespan by 1.88%).

#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"

namespace {

using namespace optimus;

struct Point {
  double jct;
  double makespan;
};

Point RunWithError(double conv_err, double speed_err, double priority, int repeats) {
  ExperimentConfig config;
  ApplySchedulerPreset(SchedulerPreset::kOptimus, &config.sim);
  config.sim.oracle_estimates = true;
  config.sim.error.convergence_error = conv_err;
  config.sim.error.speed_error = speed_err;
  config.sim.young_job_priority_factor = priority;
  // A contended workload: mis-estimates only cost performance when jobs
  // genuinely compete for the slots.
  config.workload.num_jobs = 15;
  config.workload.arrival_window_s = 6000.0;
  config.workload.target_steps_per_epoch = 80;
  config.repeats = repeats;
  ExperimentResult r = RunExperiment(config, [] { return BuildTestbed(); });
  return {r.avg_jct_mean, r.makespan_mean};
}

}  // namespace

int main() {
  PrintExperimentHeader(
      "Fig 15", "Sensitivity to prediction errors (oracle + injected error)",
      "JCT and makespan grow with error but with diminishing slope; speed "
      "errors hurt more than convergence errors; ~15% gap at (20% conv, 10% "
      "speed) error");

  const int repeats = 20;
  const Point base = RunWithError(0.0, 0.0, 0.95, repeats);

  PrintBanner(std::cout, "(a)(b) normalized JCT / makespan vs injected error");
  TablePrinter table({"error %", "JCT (conv err)", "makespan (conv err)",
                      "JCT (speed err)", "makespan (speed err)"});
  for (double err : {0.0, 0.15, 0.30, 0.45}) {
    const Point conv = RunWithError(err, 0.0, 0.95, repeats);
    const Point speed = RunWithError(0.0, err, 0.95, repeats);
    table.AddRow({TablePrinter::FormatDouble(err * 100.0, 0),
                  TablePrinter::FormatDouble(conv.jct / base.jct, 3),
                  TablePrinter::FormatDouble(conv.makespan / base.makespan, 3),
                  TablePrinter::FormatDouble(speed.jct / base.jct, 3),
                  TablePrinter::FormatDouble(speed.makespan / base.makespan, 3)});
  }
  table.Print(std::cout);

  const Point mixed = RunWithError(0.20, 0.10, 0.95, repeats);
  std::cout << "\nAt (20% convergence, 10% speed) error: JCT "
            << TablePrinter::FormatDouble(100.0 * (mixed.jct / base.jct - 1.0), 1)
            << "% above error-free (paper: ~15%)\n";

  PrintBanner(std::cout, "young-job priority factor (paper: 0.95 helps slightly)");
  const Point damped = RunWithError(0.25, 0.15, 0.95, repeats);
  const Point undamped = RunWithError(0.25, 0.15, 1.0, repeats);
  TablePrinter prio({"priority factor", "avg JCT (s)", "makespan (s)"});
  prio.AddRow({"1.00", TablePrinter::FormatDouble(undamped.jct, 0),
               TablePrinter::FormatDouble(undamped.makespan, 0)});
  prio.AddRow({"0.95", TablePrinter::FormatDouble(damped.jct, 0),
               TablePrinter::FormatDouble(damped.makespan, 0)});
  prio.Print(std::cout);
  std::cout << "JCT change from damping: "
            << TablePrinter::FormatDouble(100.0 * (1.0 - damped.jct / undamped.jct), 2)
            << "% (paper: +2.66%), makespan: "
            << TablePrinter::FormatDouble(
                   100.0 * (1.0 - damped.makespan / undamped.makespan), 2)
            << "% (paper: +1.88%)\n";
  return 0;
}
