// Fig 20: training speed of synchronous ResNet-50 (10 workers) as the number
// of parameter servers grows, with PAA vs MXNet block assignment.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/models/model_zoo.h"
#include "src/models/param_blocks.h"
#include "src/pserver/block_assignment.h"
#include "src/pserver/comm_model.h"

namespace {

using namespace optimus;

double SpeedWithLoad(const ModelSpec& spec, int p, int w, const PsLoadMetrics& load) {
  StepTimeInputs in;
  in.model = &spec;
  in.mode = TrainingMode::kSync;
  in.num_ps = p;
  in.num_workers = w;
  in.load = load;
  in.load_valid = true;
  return TrainingSpeed(in, CommConfig{});
}

}  // namespace

int main() {
  PrintExperimentHeader(
      "Fig 20", "Training speed vs #PS: PAA vs MXNet (ResNet-50, 10 workers, sync)",
      "PAA is at least as fast everywhere and the gap grows with more PSes "
      "(MXNet's random placement gets relatively more imbalanced)");

  const ModelSpec& spec = FindModel("ResNet-50");
  const ParamBlockSizes blocks = GenerateParamBlocks(spec);
  const int w = 10;

  TablePrinter table({"# ps", "MXNet speed", "PAA speed", "PAA speedup %"});
  double last_speedup = 0.0;
  double first_speedup = 0.0;
  for (int p = 2; p <= 20; p += 2) {
    RunningStat mx_speed;
    for (int seed = 0; seed < 10; ++seed) {
      Rng rng(seed + 1);
      const PsLoadMetrics m =
          ComputeLoadMetrics(MxnetAssigner().Assign(blocks, p, &rng));
      mx_speed.Add(SpeedWithLoad(spec, p, w, m));
    }
    const PsLoadMetrics paa = ComputeLoadMetrics(PaaAssigner().Assign(blocks, p));
    const double paa_speed = SpeedWithLoad(spec, p, w, paa);
    const double speedup = 100.0 * (paa_speed / mx_speed.mean() - 1.0);
    if (p == 2) {
      first_speedup = speedup;
    }
    last_speedup = speedup;
    table.AddRow({std::to_string(p), TablePrinter::FormatDouble(mx_speed.mean(), 4),
                  TablePrinter::FormatDouble(paa_speed, 4),
                  TablePrinter::FormatDouble(speedup, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nPAA speedup grows from " << TablePrinter::FormatDouble(first_speedup, 1)
            << "% at p=2 to " << TablePrinter::FormatDouble(last_speedup, 1)
            << "% at p=20 (paper: improvement grows with #PS)\n";
  return 0;
}
