// Extension: optimality gap of the §4.1 marginal-gain greedy.
//
// The allocation problem (Eqns 5-8) is NP-hard; the paper argues its greedy
// is "simple yet effective" but cannot quantify how close to optimal it
// lands. On small random instances we can enumerate the true optimum and
// measure the gap — for the greedy and for the baselines' allocation rules.

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/sched/baseline_allocators.h"
#include "src/sched/exhaustive_allocator.h"
#include "src/sched/optimus_allocator.h"

namespace {

using namespace optimus;

SchedJob RandomJob(int id, Rng* rng) {
  SchedJob job;
  job.job_id = id;
  job.worker_demand = Resources(5, 10, 0, 0.2);
  job.ps_demand = Resources(5, 10, 0, 0.2);
  job.max_ps = 5;
  job.max_workers = 5;
  job.remaining_epochs = rng->Uniform(2.0, 40.0);
  const double a = rng->Uniform(2.0, 12.0);
  const double b = rng->Uniform(0.2, 1.5);
  job.speed = [a, b](int p, int w) {
    return 1.0 / (a / w + 1.0 + b * w / p + 0.1 * w + 0.1 * p);
  };
  return job;
}

}  // namespace

int main() {
  PrintExperimentHeader(
      "EXT: optimality gap",
      "Allocation objective (sum of estimated completion times) vs the "
      "enumerated optimum on random small instances",
      "the marginal-gain greedy stays within a few percent of optimal on "
      "average; size-blind DRF and unit-locked Tetris leave a larger gap");

  const OptimusAllocator optimus;
  const DrfAllocator drf;
  const TetrisAllocator tetris;
  const ExhaustiveAllocator exhaustive;

  struct GapStat {
    const char* name;
    const Allocator* allocator;
    RunningStat gap;
  };
  std::vector<GapStat> stats = {
      {"Optimus greedy", &optimus, {}},
      {"DRF", &drf, {}},
      {"Tetris", &tetris, {}},
  };

  Rng rng(20180423);
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    Rng trial_rng = rng.Split(trial);
    std::vector<SchedJob> jobs;
    const int n = static_cast<int>(trial_rng.UniformInt(2, 3));
    for (int i = 0; i < n; ++i) {
      jobs.push_back(RandomJob(i, &trial_rng));
    }
    const Resources capacity(trial_rng.Uniform(40.0, 90.0), 4000, 0, 100);

    const double optimal =
        ExhaustiveAllocator::Objective(jobs, exhaustive.Allocate(jobs, capacity));
    if (optimal <= 0.0) {
      continue;
    }
    for (GapStat& s : stats) {
      const double value =
          ExhaustiveAllocator::Objective(jobs, s.allocator->Allocate(jobs, capacity));
      s.gap.Add(100.0 * (value / optimal - 1.0));
    }
  }

  TablePrinter table({"allocator", "mean gap %", "p-worst gap %", "trials"});
  for (GapStat& s : stats) {
    table.AddRow({s.name, TablePrinter::FormatDouble(s.gap.mean(), 2),
                  TablePrinter::FormatDouble(s.gap.max(), 2),
                  std::to_string(s.gap.count())});
  }
  table.Print(std::cout);
  std::cout << "\nGap = (allocator objective / enumerated optimum) - 1, on 2-3 job "
               "instances with tight capacity.\n";
  return 0;
}
