// Fig 12: scheduling time (allocation + placement for one interval) when
// emulating thousands of jobs on clusters of up to 16,000 nodes — plus the
// memoized speed-surface fast path: the same round with and without the
// per-round (p, w) cache, reported to BENCH_sched.json.
//
// Speed probes here run the full Eqn-2 step-time model at full fidelity:
// because PS load imbalance depends on how many parameter servers the model's
// blocks are spread over, each probe recomputes the §5.3 block assignment for
// the probed p. That is the estimate a what-if round really wants — and it is
// exactly the Pollux/DL2-style expensive-per-point evaluation that makes the
// memoized surface pay off.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/models/model_zoo.h"
#include "src/models/param_blocks.h"
#include "src/pserver/block_assignment.h"
#include "src/pserver/comm_model.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/sched/speed_surface.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace {

using namespace optimus;

std::vector<SchedJob> MakeJobs(int num_jobs) {
  const std::vector<ModelSpec>& zoo = GetModelZoo();
  const CommConfig comm;
  std::vector<SchedJob> jobs;
  jobs.reserve(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    const ModelSpec& model = zoo[i % zoo.size()];
    SchedJob job;
    job.job_id = i;
    job.worker_demand = Resources(5, 10, 0, 0.2);
    job.ps_demand = Resources(5, 10, 0, 0.2);
    job.max_ps = 16;
    job.max_workers = 16;
    job.remaining_epochs = 10.0 + (i % 50);
    // Oracle-style estimate: ground-truth synchronous training speed in
    // epochs/s from the full step-time model, with the PS load shape
    // recomputed for the probed parameter-server count.
    const double steps_per_epoch =
        static_cast<double>(model.StepsPerEpoch(model.default_sync_batch));
    const ParamBlockSizes blocks = GenerateParamBlocks(model);
    job.speed = [&model, comm, steps_per_epoch, blocks](int p, int w) {
      StepTimeInputs in;
      in.model = &model;
      in.mode = TrainingMode::kSync;
      in.num_ps = p;
      in.num_workers = w;
      in.global_batch = model.default_sync_batch;
      in.load = ComputeLoadMetrics(PaaAssigner().Assign(blocks, p));
      in.load_valid = true;
      return TrainingSpeed(in, comm) / steps_per_epoch;
    };
    // Jobs built from the same zoo profile have pointwise-identical speed
    // estimates, so they can share one memoized surface.
    job.speed_signature = static_cast<uint64_t>(i % zoo.size()) + 1;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

struct RoundResult {
  double round_s = 0.0;
  double alloc_s = 0.0;
  int64_t tasks = 0;
  int64_t probes = 0;
  int64_t evals = 0;
  double hit_rate = 0.0;
  int64_t surfaces = 0;
};

// One full Optimus scheduling round (allocation + placement), with speed
// probes served through a SpeedSurfaceSet (pass-through when !cached).
RoundResult TimeSchedulingRound(int num_jobs, int num_nodes, bool cached) {
  std::vector<Server> servers =
      BuildUniformCluster(num_nodes, Resources(16, 80, 0, 1));
  const Resources capacity = TotalCapacity(servers);
  const std::vector<SchedJob> jobs = MakeJobs(num_jobs);

  RoundResult result;
  const auto start = std::chrono::steady_clock::now();
  SpeedSurfaceSet surfaces(cached);
  AllocationMap alloc = OptimusAllocator().Allocate(jobs, capacity, &surfaces);
  const auto alloc_done = std::chrono::steady_clock::now();
  std::vector<PlacementJobInput> inputs;
  inputs.reserve(alloc.size());
  for (const auto& [id, a] : alloc) {
    inputs.push_back({id, a, jobs[id].worker_demand, jobs[id].ps_demand});
    result.tasks += a.num_ps + a.num_workers;
  }
  PlacementResult placed =
      PlaceJobs(PlacementPolicy::kOptimusPack, inputs, std::move(servers));
  const auto end = std::chrono::steady_clock::now();
  (void)placed;

  result.round_s = std::chrono::duration<double>(end - start).count();
  result.alloc_s = std::chrono::duration<double>(alloc_done - start).count();
  result.probes = surfaces.probes();
  result.evals = surfaces.evals();
  result.hit_rate = surfaces.hit_rate();
  result.surfaces = surfaces.num_surfaces();
  return result;
}

// End-to-end per-round scheduling time under one simulation engine: run a
// burst workload (every job active from the first interval) for a fixed
// number of rounds and report the mean wall time of the scheduling phase.
// Both engines share the scheduler verbatim, so this measures what the figure
// is about — round cost — while the engine drives the rest of the loop.
struct EngineRoundResult {
  double rounds = 0.0;
  double schedule_s_per_round = 0.0;
  double wall_s = 0.0;
  double sim_s = 0.0;
};

EngineRoundResult TimeEngineRounds(SimEngine engine, int num_jobs,
                                   int num_nodes, int rounds) {
  SimulatorConfig sim;
  sim.seed = 7;
  sim.engine = engine;
  sim.interval_s = 600.0;
  sim.max_sim_time_s = rounds * sim.interval_s;
  WorkloadConfig workload;
  workload.num_jobs = num_jobs;
  workload.arrival_window_s = sim.interval_s;  // burst: all jobs active early
  Rng workload_rng(sim.seed ^ 0x5eedULL);
  Simulator simulator(sim,
                      BuildUniformCluster(num_nodes, Resources(16, 80, 0, 1)),
                      GenerateWorkload(workload, &workload_rng));
  const auto start = std::chrono::steady_clock::now();
  const RunMetrics metrics = simulator.Run();
  const auto end = std::chrono::steady_clock::now();
  EngineRoundResult result;
  result.rounds = static_cast<double>(rounds);
  result.schedule_s_per_round = metrics.wall_schedule_s / rounds;
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.sim_s = simulator.now_s();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // --smoke: a seconds-scale subset for tools/check.sh and CI.
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "BENCH_sched.json");
  // --engine=interval|events|both restricts the end-to-end sweep; the figure
  // covers both engines by default.
  const std::string engine_flag = flags.GetString("engine", "both");
  for (const std::string& key : flags.UnconsumedKeys()) {
    std::cerr << "unknown flag --" << key << "\n";
    return 1;
  }
  std::vector<SimEngine> engines;
  if (engine_flag == "both") {
    engines = {SimEngine::kInterval, SimEngine::kEvents};
  } else {
    SimEngine parsed;
    if (!ParseSimEngine(engine_flag, &parsed)) {
      std::cerr << "unknown --engine \"" << engine_flag
                << "\" (expected interval, events, or both)\n";
      return 1;
    }
    engines = {parsed};
  }

  PrintExperimentHeader(
      "Fig 12", "Scheduling time vs cluster size and job count",
      "Optimus schedules 4,000 jobs (~100,000 tasks) on 16,000 nodes within "
      "~5 seconds on one core; time grows mildly with nodes and jobs");

  const std::vector<int> node_counts = smoke ? std::vector<int>{500}
                                             : std::vector<int>{1000, 4000, 16000};
  const std::vector<int> job_counts =
      smoke ? std::vector<int>{200} : std::vector<int>{1000, 2000, 4000, 8000};

  std::vector<std::string> header = {"# nodes"};
  for (int jobs : job_counts) {
    header.push_back(std::to_string(jobs) + " jobs (s)");
  }
  TablePrinter table(header);
  double t_largest = 0.0;
  for (int nodes : node_counts) {
    std::vector<std::string> row = {std::to_string(nodes)};
    for (int jobs : job_counts) {
      const RoundResult r = TimeSchedulingRound(jobs, nodes, /*cached=*/true);
      std::cout << "    (" << jobs << " jobs -> " << r.tasks << " tasks)\n";
      t_largest = r.round_s;
      row.push_back(TablePrinter::FormatDouble(r.round_s, 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n" << job_counts.back() << " jobs on " << node_counts.back()
            << " nodes: " << TablePrinter::FormatDouble(t_largest, 3)
            << " s with caching (paper: < 5 s)\n";

  // Cached vs uncached fast-path comparison (the ISSUE's 1,000-job,
  // 16,000-node acceptance point; scaled down under --smoke).
  const int cmp_jobs = smoke ? 200 : 1000;
  const int cmp_nodes = smoke ? 500 : 16000;
  std::cout << "\nSpeed-surface fast path (" << cmp_jobs << " jobs, " << cmp_nodes
            << " nodes):\n";
  const RoundResult uncached = TimeSchedulingRound(cmp_jobs, cmp_nodes, false);
  const RoundResult cached = TimeSchedulingRound(cmp_jobs, cmp_nodes, true);
  const double round_speedup =
      cached.round_s > 0.0 ? uncached.round_s / cached.round_s : 0.0;
  const double alloc_speedup =
      cached.alloc_s > 0.0 ? uncached.alloc_s / cached.alloc_s : 0.0;

  TablePrinter cmp({"mode", "round (s)", "alloc (s)", "probes", "evals",
                    "hit rate", "surfaces"});
  cmp.AddRow({"uncached", TablePrinter::FormatDouble(uncached.round_s, 3),
              TablePrinter::FormatDouble(uncached.alloc_s, 3),
              std::to_string(uncached.probes), std::to_string(uncached.evals),
              TablePrinter::FormatDouble(uncached.hit_rate, 3),
              std::to_string(uncached.surfaces)});
  cmp.AddRow({"cached", TablePrinter::FormatDouble(cached.round_s, 3),
              TablePrinter::FormatDouble(cached.alloc_s, 3),
              std::to_string(cached.probes), std::to_string(cached.evals),
              TablePrinter::FormatDouble(cached.hit_rate, 3),
              std::to_string(cached.surfaces)});
  cmp.Print(std::cout);
  std::cout << "round speedup: " << TablePrinter::FormatDouble(round_speedup, 2)
            << "x, allocation speedup: " << TablePrinter::FormatDouble(alloc_speedup, 2)
            << "x\n";

  // End-to-end round cost under each simulation engine (the engines share
  // the scheduler; this confirms the figure holds when the event kernel
  // drives the loop).
  const int e2e_jobs = smoke ? 100 : 1000;
  const int e2e_nodes = smoke ? 500 : 16000;
  const int e2e_rounds = smoke ? 4 : 10;
  std::cout << "\nEnd-to-end per-round scheduling time (" << e2e_jobs
            << " jobs, " << e2e_nodes << " nodes, " << e2e_rounds
            << " rounds):\n";
  TablePrinter engine_table(
      {"engine", "schedule (s/round)", "wall (s)", "sim s / wall s"});
  std::vector<JsonObject> engine_rows;
  for (const SimEngine engine : engines) {
    const EngineRoundResult r =
        TimeEngineRounds(engine, e2e_jobs, e2e_nodes, e2e_rounds);
    engine_table.AddRow(
        {SimEngineName(engine),
         TablePrinter::FormatDouble(r.schedule_s_per_round, 3),
         TablePrinter::FormatDouble(r.wall_s, 3),
         TablePrinter::FormatDouble(r.wall_s > 0.0 ? r.sim_s / r.wall_s : 0.0,
                                    0)});
    JsonObject row;
    row.Set("engine", SimEngineName(engine));
    row.Set("jobs", e2e_jobs);
    row.Set("nodes", e2e_nodes);
    row.Set("rounds", e2e_rounds);
    row.Set("schedule_s_per_round", r.schedule_s_per_round);
    SetPerfColumns(&row, r.wall_s, r.sim_s);
    engine_rows.push_back(row);
  }
  engine_table.Print(std::cout);

  JsonObject section;
  section.Set("smoke", smoke);
  section.Set("jobs", cmp_jobs);
  section.Set("nodes", cmp_nodes);
  section.Set("round_s_uncached", uncached.round_s);
  section.Set("round_s_cached", cached.round_s);
  section.Set("alloc_s_uncached", uncached.alloc_s);
  section.Set("alloc_s_cached", cached.alloc_s);
  section.Set("round_speedup", round_speedup);
  section.Set("alloc_speedup", alloc_speedup);
  section.Set("probes_uncached", uncached.probes);
  section.Set("evals_uncached", uncached.evals);
  section.Set("probes_cached", cached.probes);
  section.Set("evals_cached", cached.evals);
  section.Set("cache_hit_rate", cached.hit_rate);
  section.Set("surfaces", cached.surfaces);
  section.Set("largest_round_s_cached", t_largest);
  section.Set("engine_rounds", engine_rows);
  if (WriteBenchJsonSection(json_path, "fig12_scalability", section)) {
    std::cout << "wrote section fig12_scalability to " << json_path << "\n";
  }
  return 0;
}
