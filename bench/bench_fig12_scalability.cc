// Fig 12: scheduling time (allocation + placement for one interval) when
// emulating thousands of jobs on clusters of up to 16,000 nodes.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"

namespace {

using namespace optimus;

// One full Optimus scheduling round; returns seconds of wall time.
double TimeSchedulingRound(int num_jobs, int num_nodes) {
  std::vector<Server> servers =
      BuildUniformCluster(num_nodes, Resources(16, 80, 0, 1));
  const Resources capacity = TotalCapacity(servers);

  std::vector<SchedJob> jobs;
  jobs.reserve(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    SchedJob job;
    job.job_id = i;
    job.worker_demand = Resources(5, 10, 0, 0.2);
    job.ps_demand = Resources(5, 10, 0, 0.2);
    job.max_ps = 16;
    job.max_workers = 16;
    job.remaining_epochs = 10.0 + (i % 50);
    // Analytic concave speed, varying slightly per job.
    const double a = 4.0 + (i % 7);
    job.speed = [a](int p, int w) {
      return 1.0 / (a / w + 1.0 + 0.8 * w / p + 0.05 * w + 0.05 * p);
    };
    jobs.push_back(std::move(job));
  }

  const auto start = std::chrono::steady_clock::now();
  AllocationMap alloc = OptimusAllocator().Allocate(jobs, capacity);
  std::vector<PlacementJobInput> inputs;
  inputs.reserve(alloc.size());
  int64_t tasks = 0;
  for (const auto& [id, a] : alloc) {
    inputs.push_back(
        {id, a, jobs[id].worker_demand, jobs[id].ps_demand});
    tasks += a.num_ps + a.num_workers;
  }
  PlacementResult placed =
      PlaceJobs(PlacementPolicy::kOptimusPack, inputs, std::move(servers));
  const auto end = std::chrono::steady_clock::now();
  (void)placed;
  std::cout << "    (" << num_jobs << " jobs -> " << tasks << " tasks)\n";
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  PrintExperimentHeader(
      "Fig 12", "Scheduling time vs cluster size and job count",
      "Optimus schedules 4,000 jobs (~100,000 tasks) on 16,000 nodes within "
      "~5 seconds on one core; time grows mildly with nodes and jobs");

  TablePrinter table({"# nodes", "1000 jobs (s)", "2000 jobs (s)", "4000 jobs (s)",
                      "8000 jobs (s)"});
  double t_4000_16000 = 0.0;
  for (int nodes : {1000, 4000, 16000}) {
    std::vector<std::string> row = {std::to_string(nodes)};
    for (int jobs : {1000, 2000, 4000, 8000}) {
      const double t = TimeSchedulingRound(jobs, nodes);
      if (jobs == 4000 && nodes == 16000) {
        t_4000_16000 = t;
      }
      row.push_back(TablePrinter::FormatDouble(t, 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n4000 jobs on 16000 nodes: " << TablePrinter::FormatDouble(t_4000_16000, 3)
            << " s (paper: < 5 s)\n";
  return 0;
}
