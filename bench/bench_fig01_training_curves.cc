// Fig 1: training/validation loss and accuracy curves of ResNext-110 on
// CIFAR10 over 100 epochs.

#include <iostream>

#include "bench/bench_util.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 1", "Training curves of ResNext-110 on CIFAR10",
      "train loss decays ~1/x toward a floor; accuracy rises toward ~0.94; "
      "validation tracks training with a small gap (no overfitting)");

  const ModelSpec& spec = FindModel("ResNext-110");
  LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));

  TablePrinter table({"epoch", "train-loss", "val-loss", "train-acc", "val-acc"});
  for (int e = 0; e <= 100; e += 5) {
    table.AddRow({std::to_string(e),
                  TablePrinter::FormatDouble(curve.TrueLossAtEpoch(e), 4),
                  TablePrinter::FormatDouble(curve.ValidationLossAtEpoch(e), 4),
                  TablePrinter::FormatDouble(curve.TrainAccuracyAtEpoch(e), 4),
                  TablePrinter::FormatDouble(curve.ValidationAccuracyAtEpoch(e), 4)});
  }
  table.Print(std::cout);

  std::cout << "\nCompletion check: loss drop per epoch at e=100 is "
            << TablePrinter::FormatDouble(
                   curve.TrueLossAtEpoch(99) - curve.TrueLossAtEpoch(100), 5)
            << " (converged regime)\n";
  return 0;
}
