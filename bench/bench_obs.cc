// Observability overhead: the full interval loop at 1,000 jobs on 16,000
// nodes with the metrics registry + flight recorder + per-interval series on
// vs off, at 1 and 8 threads.
//
// Two gates, both exit 3 on failure:
//   - every row (off/on, any thread count) must produce bitwise identical
//     RunMetrics (wall_* profiling fields excluded): observability must never
//     perturb the simulation;
//   - the observability-on rows must stay within 3% of the matching
//     observability-off wall time — telemetry is only free if it stays off
//     the hot paths.
// The on-rows' deterministic export fingerprints must also match across
// thread counts (the subsystem's own determinism contract).

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/obs/exporters.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace {

using namespace optimus;

// 600 intervals keeps each row in the seconds range — the interval engine's
// fast path makes shorter runs finish in tens of milliseconds, where a 3%
// wall-clock comparison is pure timer noise.
struct BenchParams {
  int jobs = 1000;
  int nodes = 16000;
  int intervals = 600;
  uint64_t seed = 7;
};

struct RowSpec {
  std::string label;
  int threads = 1;
  bool obs = false;
};

struct RowResult {
  RunMetrics metrics;
  double wall_s = 0.0;
  // Deterministic observability fingerprint (empty for obs-off rows).
  std::string export_fp;
  size_t registry_size = 0;
  uint64_t flight_events = 0;
};

RowResult RunRowOnce(const BenchParams& params, const RowSpec& row) {
  SimulatorConfig sim;
  sim.seed = params.seed;
  sim.threads = row.threads;
  sim.audit = true;
  sim.obs.enabled = row.obs;
  sim.obs.per_interval_series = row.obs;
  // A light fault load so the flight recorder and the fault counters see
  // real traffic instead of being measured at zero.
  std::string error;
  OPTIMUS_CHECK(ParseFaultPlan(
      "crash@1800:server=2,recover=9000;slow@2400:factor=0.8,duration=1800",
      &sim.fault.plan, &error))
      << error;
  sim.fault.task_failure_prob = 0.005;
  sim.fault.checkpoint_period_s = 3600.0;

  WorkloadConfig workload;
  workload.num_jobs = params.jobs;
  workload.arrival_window_s = 5 * sim.interval_s;

  Rng workload_rng(sim.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator simulator(sim, BuildUniformCluster(params.nodes, Resources(16, 80, 0, 1)),
                      std::move(specs));

  RowResult result;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < params.intervals; ++i) {
    if (!simulator.StepInterval()) {
      break;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.metrics = simulator.metrics();
  if (row.obs) {
    ExportOptions options;
    options.include_profiling = false;
    result.export_fp = ExportPrometheusString(simulator.registry(), options);
    result.registry_size = simulator.registry().size();
    result.flight_events = simulator.flight_recorder().total_recorded();
  }
  return result;
}

// Bitwise equality of everything the simulation computes; the wall_* phase
// timers are host measurements and intentionally excluded.
bool MetricsIdentical(const RunMetrics& a, const RunMetrics& b,
                      std::string* why) {
  auto fail = [&](const std::string& what) {
    *why = what;
    return false;
  };
  if (a.completed_jobs != b.completed_jobs) return fail("completed_jobs");
  if (a.jcts != b.jcts) return fail("jcts");
  if (a.scaling_overhead_fraction != b.scaling_overhead_fraction) {
    return fail("scaling_overhead_fraction");
  }
  if (a.straggler_replacements != b.straggler_replacements) {
    return fail("straggler_replacements");
  }
  if (a.total_scalings != b.total_scalings) return fail("total_scalings");
  if (a.server_crashes != b.server_crashes) return fail("server_crashes");
  if (a.server_recoveries != b.server_recoveries) return fail("server_recoveries");
  if (a.task_failures != b.task_failures) return fail("task_failures");
  if (a.job_evictions != b.job_evictions) return fail("job_evictions");
  if (a.backoff_deferrals != b.backoff_deferrals) return fail("backoff_deferrals");
  if (a.checkpoints_taken != b.checkpoints_taken) return fail("checkpoints_taken");
  if (a.rolled_back_steps != b.rolled_back_steps) return fail("rolled_back_steps");
  if (a.audit_checks != b.audit_checks) return fail("audit_checks");
  if (a.audit_violations != b.audit_violations) return fail("audit_violations");
  if (a.timeline.size() != b.timeline.size()) return fail("timeline size");
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    if (a.timeline[i].time_s != b.timeline[i].time_s ||
        a.timeline[i].running_tasks != b.timeline[i].running_tasks ||
        a.timeline[i].worker_cpu_util_pct != b.timeline[i].worker_cpu_util_pct ||
        a.timeline[i].ps_cpu_util_pct != b.timeline[i].ps_cpu_util_pct) {
      return fail("timeline point " + std::to_string(i));
    }
  }
  return true;
}

// Best-of-N timing, with the repeats interleaved round-robin across the rows
// (off@1t, on@1t, off@8t, on@8t, off@1t, ...) so slow host-level drift — CPU
// warmup, frequency scaling — hits every row equally instead of only the
// later ones. The 3% gate is tight and wall clock on a shared host is noisy;
// the simulation is not — repeats must reproduce the metrics (and the export
// fingerprint) bitwise.
std::vector<RowResult> RunRows(const BenchParams& params,
                               const std::vector<RowSpec>& rows, int repeats) {
  std::vector<RowResult> best;
  for (const RowSpec& row : rows) {
    best.push_back(RunRowOnce(params, row));
  }
  for (int r = 1; r < repeats; ++r) {
    for (size_t i = 0; i < rows.size(); ++i) {
      RowResult again = RunRowOnce(params, rows[i]);
      std::string why;
      OPTIMUS_CHECK(MetricsIdentical(best[i].metrics, again.metrics, &why))
          << rows[i].label << " not deterministic across repeats: " << why;
      OPTIMUS_CHECK(best[i].export_fp == again.export_fp)
          << rows[i].label
          << " export fingerprint not deterministic across repeats";
      if (again.wall_s < best[i].wall_s) {
        best[i].wall_s = again.wall_s;
      }
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // --smoke: a seconds-scale subset for tools/check.sh and CI.
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "BENCH_obs.json");
  for (const std::string& key : flags.UnconsumedKeys()) {
    std::cerr << "unknown flag --" << key << "\n";
    return 1;
  }

  PrintExperimentHeader(
      "EXT: observability overhead",
      "Metrics registry + flight recorder + per-interval series, on vs off, "
      "at 1 and 8 threads on the 1k-job / 16k-node interval loop",
      "Observability costs <= 3% wall time, perturbs nothing (all rows "
      "bitwise identical), and exports identically across thread counts");

  BenchParams params;
  if (smoke) {
    params.jobs = 60;
    params.nodes = 200;
    params.intervals = 8;
  }

  const std::vector<RowSpec> rows = {
      {"obs off @ 1t", 1, false},
      {"obs on  @ 1t", 1, true},
      {"obs off @ 8t", 8, false},
      {"obs on  @ 8t", 8, true},
  };

  const std::vector<RowResult> results = RunRows(params, rows, smoke ? 2 : 7);

  TablePrinter table({"configuration", "wall (s)", "overhead %", "metrics",
                      "flight events"});
  std::vector<JsonObject> json_rows;
  bool identical = true;
  std::string divergence;
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowSpec& row = rows[i];
    const RowResult& r = results[i];
    if (i > 0) {
      std::string why;
      if (!MetricsIdentical(results.front().metrics, r.metrics, &why)) {
        identical = false;
        divergence = row.label + ": " + why;
      }
    }
    // Overhead relative to the matching off-row (the previous row).
    double overhead_pct = 0.0;
    if (row.obs && i > 0) {
      const double off = results[i - 1].wall_s;
      overhead_pct = off > 0.0 ? 100.0 * (r.wall_s - off) / off : 0.0;
    }
    table.AddRow({row.label, TablePrinter::FormatDouble(r.wall_s, 3),
                  row.obs ? TablePrinter::FormatDouble(overhead_pct, 2) : "-",
                  std::to_string(r.registry_size),
                  std::to_string(r.flight_events)});
    JsonObject jr;
    jr.Set("label", row.label);
    jr.Set("threads", row.threads);
    jr.Set("obs", row.obs);
    jr.Set("wall_s", r.wall_s);
    jr.Set("overhead_pct", overhead_pct);
    jr.Set("registry_size", static_cast<int64_t>(r.registry_size));
    jr.Set("flight_events", static_cast<int64_t>(r.flight_events));
    json_rows.push_back(jr);
  }
  table.Print(std::cout);

  // Gate 1: no simulation divergence anywhere.
  if (identical) {
    std::cout << "\nall " << results.size()
              << " rows bitwise identical (wall_* excluded)\n";
  } else {
    std::cerr << "\nMETRICS DIVERGED: " << divergence << "\n";
  }

  // Gate 2: on-rows within 3% of the matching off-rows.
  const double overhead_1t =
      results[0].wall_s > 0.0
          ? (results[1].wall_s - results[0].wall_s) / results[0].wall_s
          : 0.0;
  const double overhead_8t =
      results[2].wall_s > 0.0
          ? (results[3].wall_s - results[2].wall_s) / results[2].wall_s
          : 0.0;
  // At --smoke scale a row runs in milliseconds and the ratio is timer
  // noise, so the overhead gate only binds at full scale; smoke still gates
  // determinism.
  const bool overhead_ok =
      smoke || (overhead_1t <= 0.03 && overhead_8t <= 0.03);
  std::cout << "overhead: " << TablePrinter::FormatDouble(100.0 * overhead_1t, 2)
            << "% @ 1t, " << TablePrinter::FormatDouble(100.0 * overhead_8t, 2)
            << "% @ 8t (gate <= 3%" << (smoke ? ", not enforced in smoke" : "")
            << ")\n";
  if (!overhead_ok) {
    std::cerr << "OBSERVABILITY OVERHEAD EXCEEDS 3%\n";
  }

  // Gate 3 (folded into `identical`): the on-rows' deterministic exports
  // must match across thread counts.
  if (results[1].export_fp != results[3].export_fp) {
    identical = false;
    std::cerr << "EXPORTS DIVERGED between 1t and 8t\n";
  } else {
    std::cout << "deterministic export identical at 1t and 8t ("
              << results[1].registry_size << " metrics)\n";
  }

  JsonObject section;
  section.Set("smoke", smoke);
  section.Set("jobs", params.jobs);
  section.Set("nodes", params.nodes);
  section.Set("intervals", params.intervals);
  section.Set("overhead_1t", overhead_1t);
  section.Set("overhead_8t", overhead_8t);
  section.Set("overhead_ok", overhead_ok);
  section.Set("metrics_identical", identical);
  section.Set("rows", json_rows);
  if (WriteBenchJsonSection(json_path, "observability", section)) {
    std::cout << "wrote section observability to " << json_path << "\n";
  }

  return identical && overhead_ok ? 0 : 3;
}
