// Fig 2: completion time of the Table-1 models on a single device, spanning
// minutes (CNN-rand) to weeks (ResNet-50).

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 2", "Training time of the Table-1 models (full dataset, 1 worker + 1 PS)",
      "completion times spread over ~3 orders of magnitude, from minutes "
      "(CNN-rand) to about a week (ResNet-50)");

  struct Row {
    std::string name;
    double hours;
    int64_t epochs;
  };
  std::vector<Row> rows;
  const CommConfig comm;
  for (const ModelSpec& spec : GetModelZoo()) {
    LossCurve curve(spec.loss, spec.StepsPerEpoch(spec.default_sync_batch));
    const int64_t epochs = curve.EpochsToConverge(/*delta=*/0.01, /*patience=*/3);
    StepTimeInputs in;
    in.model = &spec;
    in.mode = TrainingMode::kSync;
    in.num_ps = 1;
    in.num_workers = 1;
    const double step_s = ComputeStepTime(in, comm).total_s;
    const double total_s = static_cast<double>(epochs) *
                           static_cast<double>(spec.StepsPerEpoch(spec.default_sync_batch)) *
                           step_s;
    rows.push_back({spec.name, total_s / 3600.0, epochs});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.hours < b.hours; });

  TablePrinter table({"model", "epochs to converge", "completion time (h)",
                      "completion time (d)"});
  for (const Row& r : rows) {
    table.AddRow({r.name, std::to_string(r.epochs),
                  TablePrinter::FormatDouble(r.hours, 2),
                  TablePrinter::FormatDouble(r.hours / 24.0, 2)});
  }
  table.Print(std::cout);

  const double spread = rows.back().hours / rows.front().hours;
  std::cout << "\nSpread between fastest and slowest job: "
            << TablePrinter::FormatDouble(spread, 0) << "x (paper: minutes vs weeks)\n";
  return 0;
}
