// Fig 18: effectiveness of the marginal-gain resource allocation — replace
// only the allocation algorithm with DRF's or Tetris's while keeping
// Optimus's task placement (and the rest of the system).

#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "Fig 18", "Resource-allocation ablation (placement fixed to Optimus)",
      "Optimus's marginal-gain allocation beats DRF-style and Tetris-style "
      "allocation on both JCT and makespan (paper: DRF-alloc 1.62x JCT)");

  TablePrinter table({"allocation", "avg JCT (s)", "JCT (norm)", "makespan (s)",
                      "makespan (norm)"});
  double base_jct = 0.0;
  double base_mk = 0.0;
  for (AllocatorPolicy alloc :
       {AllocatorPolicy::kOptimus, AllocatorPolicy::kDrf, AllocatorPolicy::kTetris}) {
    ExperimentConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config.sim);
    ApplyTestbedConditions(&config.sim);
    config.sim.allocator = alloc;  // the only knob that changes
    config.workload.num_jobs = 9;
    config.workload.target_steps_per_epoch = 80;
    config.repeats = 5;
    ExperimentResult r = RunExperiment(config, [] { return BuildTestbed(); });
    if (base_jct == 0.0) {
      base_jct = r.avg_jct_mean;
      base_mk = r.makespan_mean;
    }
    table.AddRow({AllocatorPolicyName(alloc),
                  TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_mean / base_jct, 2),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.makespan_mean / base_mk, 2)});
  }
  table.Print(std::cout);
  return 0;
}
