// Extension (fault tolerance, §5.4): all four schedulers on the testbed
// workload under a fixed fault plan — one single-server crash, one
// rack-style correlated outage, one transient cluster-wide slowdown, plus a
// small per-task container-death probability. Every run executes with the
// invariant auditor enabled; any violation fails the bench.
//
// The plan is scripted (not sampled), so every scheduler faces the identical
// fault timeline and differences come from how each policy reallocates around
// the holes. See docs/FAULTS.md for the plan grammar and fault semantics.

#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/logging.h"
#include "src/sim/fault_injector.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "EXT: fault tolerance",
      "All four schedulers under a fixed crash/rack/slowdown plan",
      "Optimus keeps its JCT lead under faults: checkpoint-restore stalls are "
      "charged to every scheduler alike, but Optimus' marginal-gain "
      "reallocation backfills evicted jobs onto the surviving servers first. "
      "The auditor must report zero violations for every policy");

  // Fixed plan: server 3 dies at 2400 s and returns at 30000 s; servers 7-9
  // (a \"rack\") go down together at 12000 s for 9600 s; a 0.6x cluster-wide
  // slowdown burst covers 6000-9600 s.
  const char* kPlan =
      "crash@2400:server=3,recover=30000;"
      "rack@12000:servers=7-9,recover=21600;"
      "slow@6000:factor=0.6,duration=3600";

  struct Row {
    const char* name;
    AllocatorPolicy alloc;
    PlacementPolicy place;
    bool paa;
    bool handle_stragglers;
  };
  const std::vector<Row> rows = {
      {"Optimus", AllocatorPolicy::kOptimus, PlacementPolicy::kOptimusPack, true, true},
      {"DRF", AllocatorPolicy::kDrf, PlacementPolicy::kLoadBalance, false, false},
      {"Tetris", AllocatorPolicy::kTetris, PlacementPolicy::kTetrisPack, false, false},
      {"FIFO", AllocatorPolicy::kFifo, PlacementPolicy::kLoadBalance, false, false},
  };

  TablePrinter table({"scheduler", "avg JCT (s)", "JCT (norm)", "makespan (s)",
                      "evictions/run", "task fails/run", "audit violations"});
  std::vector<JsonObject> json_rows;
  double base_jct = 0.0;
  int64_t total_violations = 0;
  for (const Row& row : rows) {
    ExperimentConfig config;
    ApplyTestbedConditions(&config.sim);
    config.sim.allocator = row.alloc;
    config.sim.placement = row.place;
    config.sim.use_paa = row.paa;
    config.sim.straggler.handling_enabled = row.handle_stragglers;
    config.sim.young_job_priority_factor =
        row.alloc == AllocatorPolicy::kOptimus ? 0.95 : 1.0;
    std::string parse_error;
    OPTIMUS_CHECK(ParseFaultPlan(kPlan, &config.sim.fault.plan, &parse_error))
        << parse_error;
    config.sim.fault.task_failure_prob = 0.02;
    config.sim.fault.checkpoint_period_s = 3600.0;
    config.sim.audit = true;
    config.workload.num_jobs = 9;
    config.workload.target_steps_per_epoch = 80;
    config.repeats = 3;
    config.label = row.name;
    ExperimentResult r = RunExperiment(config, [] { return BuildTestbed(); });
    if (base_jct == 0.0) {
      base_jct = r.avg_jct_mean;
    }
    total_violations += r.audit_violations_total;
    table.AddRow({row.name, TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_mean / base_jct, 2),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.job_evictions_mean, 1),
                  TablePrinter::FormatDouble(r.task_failures_mean, 1),
                  std::to_string(r.audit_violations_total)});
    JsonObject jr;
    jr.Set("scheduler", row.name);
    jr.Set("avg_jct_s", r.avg_jct_mean);
    jr.Set("makespan_s", r.makespan_mean);
    jr.Set("evictions_per_run", r.job_evictions_mean);
    jr.Set("task_failures_per_run", r.task_failures_mean);
    jr.Set("audit_violations", r.audit_violations_total);
    json_rows.push_back(jr);
  }
  table.Print(std::cout);

  JsonObject section;
  section.Set("plan", kPlan);
  section.Set("task_failure_prob", 0.02);
  section.Set("checkpoint_period_s", 3600.0);
  section.Set("rows", json_rows);
  WriteBenchJsonSection("BENCH_faults.json", "faults", section);

  if (total_violations > 0) {
    std::cerr << "invariant audit FAILED: " << total_violations
              << " violation(s) across schedulers\n";
    return 3;
  }
  return 0;
}
