// Shared helpers for the per-figure/per-table bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation: it prints an experiment header, the rows/series the paper
// reports, and (where the paper gives numbers) the paper's values alongside
// the measured ones for EXPERIMENTS.md.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/sim/experiment.h"

namespace optimus {

// Prints the standard bench banner.
void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_expectation);

// Runs the canonical three-scheduler comparison (Optimus, DRF, Tetris) under
// the given base config and prints absolute + normalized JCT / makespan.
// Returns the three results in preset order.
std::vector<ExperimentResult> RunSchedulerComparison(const ExperimentConfig& base,
                                                     const std::string& caption);

// ---------------------------------------------------------------------------
// Machine-readable bench output (BENCH_sched.json and friends).
// ---------------------------------------------------------------------------

// A minimal ordered JSON object builder: keys are emitted in insertion order,
// setting an existing key replaces its value in place. Values are encoded on
// Set, so nested objects/arrays are copied by value. Non-finite doubles are
// emitted as null (JSON has no NaN/Inf).
class JsonObject {
 public:
  void Set(const std::string& key, double value);
  void Set(const std::string& key, int64_t value);
  void Set(const std::string& key, int value) { Set(key, static_cast<int64_t>(value)); }
  void Set(const std::string& key, bool value);
  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, const char* value);
  void Set(const std::string& key, const JsonObject& value);
  void Set(const std::string& key, const std::vector<JsonObject>& values);
  void Set(const std::string& key, const std::vector<double>& values);

  // Serializes with two-space indentation; `indent` is the starting depth.
  std::string ToString(int indent = 0) const;

 private:
  void SetRaw(const std::string& key, std::string encoded);

  std::vector<std::pair<std::string, std::string>> entries_;  // key -> encoded
};

// Merges `value` into the JSON file at `path` as the top-level key `section`:
// other top-level sections already in the file are preserved verbatim, an
// existing `section` is replaced, and a missing file is created. A file that
// does not scan as a flat JSON object is overwritten (with a warning) so a
// corrupt file never wedges the benches. Returns false if the file could not
// be written.
bool WriteBenchJsonSection(const std::string& path, const std::string& section,
                           const JsonObject& value);

}  // namespace optimus

#endif  // BENCH_BENCH_UTIL_H_
