// Shared helpers for the per-figure/per-table bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation: it prints an experiment header, the rows/series the paper
// reports, and (where the paper gives numbers) the paper's values alongside
// the measured ones for EXPERIMENTS.md.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/sim/experiment.h"

namespace optimus {

// Prints the standard bench banner.
void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_expectation);

// Runs the canonical three-scheduler comparison (Optimus, DRF, Tetris) under
// the given base config and prints absolute + normalized JCT / makespan.
// Returns the three results in preset order.
std::vector<ExperimentResult> RunSchedulerComparison(const ExperimentConfig& base,
                                                     const std::string& caption);

}  // namespace optimus

#endif  // BENCH_BENCH_UTIL_H_
