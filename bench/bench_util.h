// Shared helpers for the per-figure/per-table bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation: it prints an experiment header, the rows/series the paper
// reports, and (where the paper gives numbers) the paper's values alongside
// the measured ones for EXPERIMENTS.md.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

// Machine-readable bench output (BENCH_sched.json and friends) goes through
// the shared deterministic JSON writer; JsonObject and WriteBenchJsonSection
// live there and are re-exported here for the bench binaries.
#include "src/common/json_writer.h"
#include "src/common/table.h"
#include "src/sim/experiment.h"

namespace optimus {

// Prints the standard bench banner.
void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_expectation);

// Peak resident set size of this process (VmHWM from /proc/self/status) in
// MiB; 0.0 where the proc filesystem is unavailable. VmHWM is a high-water
// mark: per-cell numbers need one process per cell (bench_scale re-execs
// itself for exactly this reason).
double PeakRssMib();

// Stamps the shared performance columns on a bench JSON row: wall_s, sim_s,
// sim_s_per_wall_s (0 when wall_s is 0), and peak_rss_mib. Every harness that
// reports run performance uses this so BENCH_*.json files agree on names.
void SetPerfColumns(JsonObject* row, double wall_s, double sim_s);

// Runs the canonical three-scheduler comparison (Optimus, DRF, Tetris) under
// the given base config and prints absolute + normalized JCT / makespan.
// Returns the three results in preset order. Policies are constructed through
// the SchedulerRegistry (src/sched/scheduler_registry.h).
std::vector<ExperimentResult> RunSchedulerComparison(const ExperimentConfig& base,
                                                     const std::string& caption);

// Same comparison over an explicit list of registry policy names (e.g. adding
// "fifo" or "srtf" to the canonical trio). Rows are labeled with each
// policy's display name; normalization is against the first entry.
std::vector<ExperimentResult> RunPolicyComparison(
    const ExperimentConfig& base, const std::vector<std::string>& policies,
    const std::string& caption);

}  // namespace optimus

#endif  // BENCH_BENCH_UTIL_H_
