// Extension (§7 "Scaling overhead"): sweep the per-job checkpoint budget —
// the maximum number of elastic rescalings a job may perform — and measure
// the JCT / scaling-overhead trade-off.

#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "EXT: checkpoint budget",
      "JCT vs per-job rescaling budget (§7 'Scaling overhead')",
      "a small budget forfeits elasticity (higher JCT): once a job spends its "
      "budget it freezes at whatever allocation it had, often one chosen from "
      "early noisy estimates. An unlimited budget maximizes elasticity at a "
      "small checkpoint-overhead cost.");

  TablePrinter table({"max rescalings/job", "avg JCT (s)", "JCT (norm)",
                      "makespan (s)", "scaling overhead %"});
  double base_jct = 0.0;
  for (int budget : {0, 1, 2, 4, 8}) {  // 0 = unlimited
    ExperimentConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config.sim);
    ApplyTestbedConditions(&config.sim);
    config.sim.checkpoint.max_scalings_per_job = budget;
    config.workload.num_jobs = 12;
    config.workload.arrival_window_s = 6000.0;
    config.workload.target_steps_per_epoch = 80;
    config.repeats = 10;
    ExperimentResult r = RunExperiment(config, [] { return BuildTestbed(); });
    if (budget == 0) {
      base_jct = r.avg_jct_mean;
    }
    table.AddRow({budget == 0 ? "unlimited" : std::to_string(budget),
                  TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_mean / base_jct, 3),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.scaling_overhead_mean * 100.0, 2)});
  }
  table.Print(std::cout);
  return 0;
}
