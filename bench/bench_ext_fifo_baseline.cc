// Extension (§2.3): the paper motivates job-size awareness with the FIFO
// head-of-line problem ("a long job may block a series of short jobs"). This
// bench adds a FIFO scheduler to the Fig-11 comparison to quantify that
// effect alongside DRF and Tetris.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/cluster/server.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "EXT: FIFO baseline",
      "All four schedulers on the testbed workload (adds FIFO to Fig 11)",
      "Optimus remains best on both metrics. FIFO's head-of-line blocking "
      "(\u00a72.3) shows up in the JCT tail: short jobs occasionally queue "
      "behind a long head job, inflating the p90 JCT relative to its mean");

  struct Row {
    const char* name;
    AllocatorPolicy alloc;
    PlacementPolicy place;
    bool paa;
    bool handle_stragglers;
  };
  const std::vector<Row> rows = {
      {"Optimus", AllocatorPolicy::kOptimus, PlacementPolicy::kOptimusPack, true, true},
      {"DRF", AllocatorPolicy::kDrf, PlacementPolicy::kLoadBalance, false, false},
      {"Tetris", AllocatorPolicy::kTetris, PlacementPolicy::kTetrisPack, false, false},
      {"FIFO", AllocatorPolicy::kFifo, PlacementPolicy::kLoadBalance, false, false},
  };

  TablePrinter table({"scheduler", "avg JCT (s)", "JCT (norm)", "p90 JCT (s)",
                      "makespan (s)", "makespan (norm)"});
  double base_jct = 0.0;
  double base_mk = 0.0;
  for (const Row& row : rows) {
    ExperimentConfig config;
    ApplyTestbedConditions(&config.sim);
    config.sim.allocator = row.alloc;
    config.sim.placement = row.place;
    config.sim.use_paa = row.paa;
    config.sim.straggler.handling_enabled = row.handle_stragglers;
    config.sim.young_job_priority_factor = row.alloc == AllocatorPolicy::kOptimus
                                               ? 0.95
                                               : 1.0;
    config.workload.num_jobs = 9;
    config.workload.target_steps_per_epoch = 80;
    config.repeats = 5;
    ExperimentResult r = RunExperiment(config, [] { return BuildTestbed(); });
    if (base_jct == 0.0) {
      base_jct = r.avg_jct_mean;
      base_mk = r.makespan_mean;
    }
    std::vector<double> all_jcts;
    for (const RunMetrics& m : r.runs) {
      all_jcts.insert(all_jcts.end(), m.jcts.begin(), m.jcts.end());
    }
    table.AddRow({row.name, TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_mean / base_jct, 2),
                  TablePrinter::FormatDouble(Percentile(all_jcts, 90.0), 0),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.makespan_mean / base_mk, 2)});
  }
  table.Print(std::cout);
  return 0;
}
