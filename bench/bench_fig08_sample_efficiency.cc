// Fig 8: speed-estimation error as a function of the number of (p, w) sample
// runs used to initialize the speed model (ResNet-50).

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/sampler.h"
#include "src/perfmodel/speed_model.h"
#include "src/pserver/comm_model.h"

namespace {

using namespace optimus;

double TrueSpeed(const ModelSpec& spec, int p, int w) {
  StepTimeInputs in;
  in.model = &spec;
  in.mode = TrainingMode::kSync;
  in.num_ps = p;
  in.num_workers = w;
  return TrainingSpeed(in, CommConfig{});
}

double MeanAbsRelError(const SpeedModel& model, const ModelSpec& spec, int max_p,
                       int max_w) {
  RunningStat stat;
  for (int p = 1; p <= max_p; p += 2) {
    for (int w = 1; w <= max_w; w += 2) {
      const double truth = TrueSpeed(spec, p, w);
      stat.Add(std::abs(model.Estimate(p, w) - truth) / truth);
    }
  }
  return stat.mean();
}

}  // namespace

int main() {
  PrintExperimentHeader(
      "Fig 8", "Speed-estimation error vs number of (p, w) samples (ResNet-50)",
      "~10 samples already give <10% error; more samples reduce error further "
      "but with a diminishing return");

  const ModelSpec& spec = FindModel("ResNet-50");
  const int max_p = 20;
  const int max_w = 20;
  const int repeats = 15;

  TablePrinter table({"# samples", "mean |rel err| %", "stddev %"});
  double err_at_10 = 0.0;
  for (int n : {4, 6, 8, 10, 16, 24, 32}) {
    RunningStat errs;
    for (int rep = 0; rep < repeats; ++rep) {
      Rng rng(100 * n + rep);
      Rng noise(999 * n + rep);
      SpeedOracle oracle = [&](int p, int w) {
        return TrueSpeed(spec, p, w) * noise.LogNormalFactor(0.03);
      };
      SpeedModel model(TrainingMode::kSync, spec.default_sync_batch);
      InitializeSpeedModel(&model, oracle, n, max_p, max_w, &rng);
      if (model.fitted()) {
        errs.Add(100.0 * MeanAbsRelError(model, spec, max_p, max_w));
      }
    }
    if (n == 10) {
      err_at_10 = errs.mean();
    }
    table.AddRow({std::to_string(n), TablePrinter::FormatDouble(errs.mean(), 2),
                  TablePrinter::FormatDouble(errs.stddev(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nError with 10 samples: " << TablePrinter::FormatDouble(err_at_10, 2)
            << "% (paper: <10% with 10 of the 780 possible pairs)\n";
  return 0;
}
