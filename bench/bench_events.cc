// Discrete-event kernel vs the interval engine: wall time to advance the
// same simulation over the same horizon, at cluster scale.
//
// Two arrival regimes at 1,000 jobs on 16,000 nodes, plus a 10,000-job row:
//
//   burst  — every job arrives inside the first five intervals
//            (bench_interval's regime): hundreds of jobs run concurrently,
//            so per-interval advance work and per-round event work are both
//            large and the scheduling rounds — identical in both engines —
//            are a sizable shared floor.
//   steady — arrivals spread across the horizon, and jobs train at realistic
//            dataset scale (the generator's default caps steps-per-epoch at
//            ~20 so toy experiments finish in simulated minutes; the headline
//            row raises the cap to 100, putting job lifetimes at a few
//            simulated hours, in line with the paper's workloads). ~100 jobs
//            run at once; the interval engine polls and refits every running
//            job every interval — a cost that grows quadratically with job
//            lifetime, because each refit rescans the whole accumulated loss
//            history — while the event engine touches each job only at its
//            own epoch events. This is the regime the event kernel targets
//            (and the headline speedup row).
//
// Both engines run the identical workload from the identical seed. Event
// rows across --threads must be bitwise identical (determinism contract);
// interval vs events is compared under the documented tolerance
// (docs/ALGORITHMS.md section 16): completed-job counts within
// max(3, 1% of submissions), average JCT within 15% — the engines consume
// per-job RNG streams at different cadences, so trajectories differ in the
// noise term but not in substance, and at a hard horizon cutoff a small
// fraction of near-boundary jobs can land on opposite sides of it.
// Any violation exits 3: speed that changes the answer is a bug.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace {

using namespace optimus;

struct RegimeSpec {
  std::string name;
  int jobs = 1000;
  int nodes = 16000;
  int horizon_intervals = 100;
  // Uniform arrivals land in [0, arrival_intervals * interval_s].
  int arrival_intervals = 5;
  // Dataset-downscaling cap handed to the workload generator (its default of
  // 20 keeps toy runs short; the headline regime uses 100 for realistic
  // multi-hour training jobs).
  int64_t target_steps_per_epoch = 20;
  bool headline = false;
};

struct RowSpec {
  std::string label;
  SimEngine engine = SimEngine::kInterval;
  int threads = 1;
};

struct RowResult {
  RunMetrics metrics;
  double wall_s = 0.0;
  double sim_s_per_wall_s = 0.0;
  double sim_s = 0.0;
};

constexpr uint64_t kSeed = 7;
constexpr double kIntervalS = 600.0;
// Cross-engine tolerances (documented in docs/ALGORITHMS.md section 16).
// The engines consume per-job RNG streams at different cadences, so noise
// terms differ; at a hard horizon cutoff a handful of near-boundary jobs can
// land on opposite sides of it.
constexpr double kJctTolerance = 0.15;
// Absolute floor; the effective tolerance is max(this, 1% of submissions) —
// longer-lived jobs put more of the population near the horizon boundary.
constexpr int kCompletedTolerance = 3;

int CompletedTolerance(int total_jobs) {
  return std::max(kCompletedTolerance, total_jobs / 100);
}

RowResult RunRowOnce(const RegimeSpec& regime, const RowSpec& row) {
  SimulatorConfig sim;
  sim.seed = kSeed;
  sim.threads = row.threads;
  sim.engine = row.engine;
  sim.audit = true;
  sim.max_sim_time_s = regime.horizon_intervals * kIntervalS;
  // Same fault load as bench_interval: scripted crash + slowdown, stochastic
  // container deaths, periodic checkpoints — both fault paths exercised.
  std::string error;
  OPTIMUS_CHECK(ParseFaultPlan(
      "crash@1800:server=2,recover=9000;slow@2400:factor=0.8,duration=1800",
      &sim.fault.plan, &error))
      << error;
  sim.fault.task_failure_prob = 0.005;
  sim.fault.checkpoint_period_s = 3600.0;
  // Dense loss feed for the interval engine (one sample every ~6 simulated
  // seconds, full-fidelity fits); the event engine observes the same curves
  // at its own cadence (conv_samples_per_epoch, default 2).
  sim.conv_samples_per_interval = 300;
  sim.conv_fit_points = 16384;

  WorkloadConfig workload;
  workload.num_jobs = regime.jobs;
  workload.arrival_window_s = regime.arrival_intervals * kIntervalS;
  workload.target_steps_per_epoch = regime.target_steps_per_epoch;

  Rng workload_rng(sim.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator simulator(
      sim, BuildUniformCluster(regime.nodes, Resources(16, 80, 0, 1)),
      std::move(specs));

  RowResult result;
  const auto start = std::chrono::steady_clock::now();
  result.metrics = simulator.Run();
  const auto end = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.sim_s = simulator.now_s();
  result.sim_s_per_wall_s =
      result.wall_s > 0.0 ? result.sim_s / result.wall_s : 0.0;
  return result;
}

bool MetricsIdentical(const RunMetrics& a, const RunMetrics& b, std::string* why);

// Best-of-two timing: wall clock on a shared host is noisy, the simulation
// is not — the repeat must reproduce the metrics bitwise.
RowResult RunRow(const RegimeSpec& regime, const RowSpec& row) {
  RowResult best = RunRowOnce(regime, row);
  RowResult again = RunRowOnce(regime, row);
  std::string why;
  OPTIMUS_CHECK(MetricsIdentical(best.metrics, again.metrics, &why))
      << regime.name << "/" << row.label
      << " not deterministic across repeats: " << why;
  if (again.wall_s < best.wall_s) {
    best = again;
  }
  return best;
}

// Bitwise equality of everything the simulation computes; wall_* phase
// timers are host measurements and intentionally excluded.
bool MetricsIdentical(const RunMetrics& a, const RunMetrics& b,
                      std::string* why) {
  auto fail = [&](const std::string& what) {
    *why = what;
    return false;
  };
  if (a.completed_jobs != b.completed_jobs) return fail("completed_jobs");
  if (a.jcts != b.jcts) return fail("jcts");
  if (a.events_processed != b.events_processed) return fail("events_processed");
  if (a.scaling_overhead_fraction != b.scaling_overhead_fraction) {
    return fail("scaling_overhead_fraction");
  }
  if (a.straggler_replacements != b.straggler_replacements) {
    return fail("straggler_replacements");
  }
  if (a.total_scalings != b.total_scalings) return fail("total_scalings");
  if (a.server_crashes != b.server_crashes) return fail("server_crashes");
  if (a.server_recoveries != b.server_recoveries) return fail("server_recoveries");
  if (a.task_failures != b.task_failures) return fail("task_failures");
  if (a.job_evictions != b.job_evictions) return fail("job_evictions");
  if (a.backoff_deferrals != b.backoff_deferrals) return fail("backoff_deferrals");
  if (a.checkpoints_taken != b.checkpoints_taken) return fail("checkpoints_taken");
  if (a.rolled_back_steps != b.rolled_back_steps) return fail("rolled_back_steps");
  if (a.audit_checks != b.audit_checks) return fail("audit_checks");
  if (a.audit_violations != b.audit_violations) return fail("audit_violations");
  if (a.timeline.size() != b.timeline.size()) return fail("timeline size");
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    if (a.timeline[i].time_s != b.timeline[i].time_s ||
        a.timeline[i].running_tasks != b.timeline[i].running_tasks ||
        a.timeline[i].worker_cpu_util_pct != b.timeline[i].worker_cpu_util_pct ||
        a.timeline[i].ps_cpu_util_pct != b.timeline[i].ps_cpu_util_pct) {
      return fail("timeline point " + std::to_string(i));
    }
  }
  return true;
}

// Cross-engine parity under the documented tolerance.
bool EnginesAgree(const RunMetrics& interval, const RunMetrics& events,
                  int total_jobs, std::string* why) {
  if (std::abs(interval.completed_jobs - events.completed_jobs) >
      CompletedTolerance(total_jobs)) {
    *why = "completed_jobs: interval=" + std::to_string(interval.completed_jobs) +
           " events=" + std::to_string(events.completed_jobs);
    return false;
  }
  if (interval.avg_jct_s > 0.0) {
    const double rel =
        std::abs(events.avg_jct_s - interval.avg_jct_s) / interval.avg_jct_s;
    if (rel > kJctTolerance) {
      *why = "avg_jct_s: interval=" + std::to_string(interval.avg_jct_s) +
             " events=" + std::to_string(events.avg_jct_s) +
             " (rel " + std::to_string(rel) + " > " +
             std::to_string(kJctTolerance) + ")";
      return false;
    }
  }
  if (interval.audit_violations != 0 || events.audit_violations != 0) {
    *why = "audit violations";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // --smoke: a seconds-scale subset for tools/check.sh and CI.
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "BENCH_events.json");
  for (const std::string& key : flags.UnconsumedKeys()) {
    std::cerr << "unknown flag --" << key << "\n";
    return 1;
  }

  PrintExperimentHeader(
      "EXT: discrete-event kernel",
      "Event-driven advancement (lazy per-job epochs, analytic completion "
      "times) vs fixed-interval polling over the same horizon",
      "The event engine advances the steady-state 1k-job/16k-node simulation "
      ">= 10x faster, with bitwise-identical event rows across threads and "
      "interval parity within the documented tolerance");

  std::vector<RegimeSpec> regimes;
  if (smoke) {
    regimes.push_back({"burst", 60, 200, 8, 2, 20, false});
    regimes.push_back({"steady", 60, 200, 10, 8, 20, true});
  } else {
    regimes.push_back({"burst", 1000, 16000, 100, 5, 20, false});
    regimes.push_back({"steady", 1000, 16000, 120, 100, 100, true});
    regimes.push_back({"steady-10k", 10000, 16000, 120, 100, 20, false});
  }

  TablePrinter table({"regime", "configuration", "wall (s)", "sim s / wall s",
                      "events", "faults (s)", "schedule (s)", "advance (s)",
                      "audit (s)", "events (s)"});
  std::vector<JsonObject> json_rows;
  bool ok = true;
  std::string divergence;
  double headline_speedup = 0.0;
  std::vector<JsonObject> regime_sections;
  for (const RegimeSpec& regime : regimes) {
    std::vector<RowSpec> rows;
    rows.push_back({"interval @ 1t", SimEngine::kInterval, 1});
    for (const int threads : {1, 2, 8}) {
      rows.push_back({"events @ " + std::to_string(threads) + "t",
                      SimEngine::kEvents, threads});
    }
    std::vector<RowResult> results;
    for (const RowSpec& row : rows) {
      const RowResult r = RunRow(regime, row);
      // Event rows must be bitwise identical to each other for any thread
      // count; the first event row is the reference.
      if (row.engine == SimEngine::kEvents && results.size() > 1) {
        std::string why;
        if (!MetricsIdentical(results[1].metrics, r.metrics, &why)) {
          ok = false;
          divergence = regime.name + "/" + row.label + ": " + why;
        }
      }
      table.AddRow({regime.name, row.label,
                    TablePrinter::FormatDouble(r.wall_s, 3),
                    TablePrinter::FormatDouble(r.sim_s_per_wall_s, 0),
                    std::to_string(r.metrics.events_processed),
                    TablePrinter::FormatDouble(r.metrics.wall_faults_s, 3),
                    TablePrinter::FormatDouble(r.metrics.wall_schedule_s, 3),
                    TablePrinter::FormatDouble(r.metrics.wall_advance_s, 3),
                    TablePrinter::FormatDouble(r.metrics.wall_audit_s, 3),
                    TablePrinter::FormatDouble(r.metrics.wall_events_s, 3)});
      JsonObject jr;
      jr.Set("regime", regime.name);
      jr.Set("label", row.label);
      jr.Set("engine", SimEngineName(row.engine));
      jr.Set("threads", row.threads);
      SetPerfColumns(&jr, r.wall_s, r.sim_s);
      jr.Set("events_processed", r.metrics.events_processed);
      jr.Set("completed_jobs", r.metrics.completed_jobs);
      jr.Set("avg_jct_s", r.metrics.avg_jct_s);
      jr.Set("wall_faults_s", r.metrics.wall_faults_s);
      jr.Set("wall_schedule_s", r.metrics.wall_schedule_s);
      jr.Set("wall_advance_s", r.metrics.wall_advance_s);
      jr.Set("wall_audit_s", r.metrics.wall_audit_s);
      jr.Set("wall_events_s", r.metrics.wall_events_s);
      jr.Set("audit_checks", r.metrics.audit_checks);
      jr.Set("audit_violations", r.metrics.audit_violations);
      json_rows.push_back(jr);
      results.push_back(r);
    }

    // Cross-engine parity under the documented tolerance.
    std::string why;
    if (!EnginesAgree(results[0].metrics, results[1].metrics, regime.jobs,
                      &why)) {
      ok = false;
      divergence = regime.name + " interval vs events: " + why;
    }

    const double interval_wall = results[0].wall_s;
    const double events_wall = results[1].wall_s;
    const double speedup =
        events_wall > 0.0 ? interval_wall / events_wall : 0.0;
    if (regime.headline) {
      headline_speedup = speedup;
    }
    JsonObject rs;
    rs.Set("regime", regime.name);
    rs.Set("jobs", regime.jobs);
    rs.Set("nodes", regime.nodes);
    rs.Set("horizon_intervals", regime.horizon_intervals);
    rs.Set("arrival_intervals", regime.arrival_intervals);
    rs.Set("target_steps_per_epoch", regime.target_steps_per_epoch);
    rs.Set("interval_wall_s", interval_wall);
    rs.Set("events_wall_s_1t", events_wall);
    rs.Set("speedup_events_1t", speedup);
    rs.Set("headline", regime.headline);
    regime_sections.push_back(rs);
  }
  table.Print(std::cout);

  std::cout << "\nheadline (steady, events @ 1t vs interval @ 1t): "
            << TablePrinter::FormatDouble(headline_speedup, 2)
            << "x (target >= 10x)\n";
  if (ok) {
    std::cout << "event rows bitwise identical across threads; engines agree "
                 "within tolerance\n";
  } else {
    std::cerr << "METRICS DIVERGED: " << divergence << "\n";
  }

  JsonObject section;
  section.Set("smoke", smoke);
  section.Set("interval_s", kIntervalS);
  section.Set("seed", static_cast<int64_t>(kSeed));
  section.Set("jct_tolerance", kJctTolerance);
  section.Set("completed_tolerance_floor", kCompletedTolerance);
  section.Set("completed_tolerance_frac", 0.01);
  section.Set("headline_speedup", headline_speedup);
  section.Set("metrics_ok", ok);
  section.Set("regimes", regime_sections);
  section.Set("rows", json_rows);
  if (WriteBenchJsonSection(json_path, "event_kernel", section)) {
    std::cout << "wrote section event_kernel to " << json_path << "\n";
  }

  return ok ? 0 : 3;
}
