// Fig 21: PAA's training-speed improvement over MXNet's default assignment
// across models (10 PS, 10 workers, synchronous training).

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/models/model_zoo.h"
#include "src/models/param_blocks.h"
#include "src/pserver/block_assignment.h"
#include "src/pserver/comm_model.h"

namespace {

using namespace optimus;

double SpeedWithLoad(const ModelSpec& spec, TrainingMode mode, const PsLoadMetrics& load) {
  StepTimeInputs in;
  in.model = &spec;
  in.mode = mode;
  in.num_ps = 10;
  in.num_workers = 10;
  in.load = load;
  in.load_valid = true;
  return TrainingSpeed(in, CommConfig{});
}

}  // namespace

int main() {
  PrintExperimentHeader(
      "Fig 21", "PAA speedup across models (10 PS, 10 workers)",
      "PAA achieves up to ~29% speedup over the MXNet default; the gain "
      "varies by model (largest for big transfer-bound models)");

  TablePrinter table({"model", "MXNet speed (sync)", "PAA speed (sync)",
                      "sync speedup %", "async speedup %"});
  double max_speedup = 0.0;
  for (const ModelSpec& spec : GetModelZoo()) {
    const ParamBlockSizes blocks = GenerateParamBlocks(spec);
    const PsLoadMetrics paa = ComputeLoadMetrics(PaaAssigner().Assign(blocks, 10));
    RunningStat mx_sync;
    RunningStat mx_async;
    for (int seed = 0; seed < 10; ++seed) {
      Rng rng(seed + 1);
      const PsLoadMetrics m = ComputeLoadMetrics(MxnetAssigner().Assign(blocks, 10, &rng));
      mx_sync.Add(SpeedWithLoad(spec, TrainingMode::kSync, m));
      mx_async.Add(SpeedWithLoad(spec, TrainingMode::kAsync, m));
    }
    const double paa_sync = SpeedWithLoad(spec, TrainingMode::kSync, paa);
    const double paa_async = SpeedWithLoad(spec, TrainingMode::kAsync, paa);
    const double sync_speedup = 100.0 * (paa_sync / mx_sync.mean() - 1.0);
    const double async_speedup = 100.0 * (paa_async / mx_async.mean() - 1.0);
    max_speedup = std::max(max_speedup, sync_speedup);
    table.AddRow({spec.name, TablePrinter::FormatDouble(mx_sync.mean(), 4),
                  TablePrinter::FormatDouble(paa_sync, 4),
                  TablePrinter::FormatDouble(sync_speedup, 1),
                  TablePrinter::FormatDouble(async_speedup, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nMax sync speedup: " << TablePrinter::FormatDouble(max_speedup, 1)
            << "% (paper: up to 29%); async results are similar, as the paper "
               "observes.\n";
  return 0;
}
