// Online-service throughput and latency: one ServiceSession under a
// million-request synthetic load.
//
// The replay harness's load generator (GenerateSyntheticRequests) produces a
// deterministic read-heavy op mix — metric snapshots, what-if admission
// queries, time advances, rare submit/kill pairs — and the bench drives it
// through the session exactly like the daemon's stdio loop would, measuring
// wall-clock service latency per request via the session's own profiling
// histogram. Reported: requests/s plus p50/p95/p99 latency, per op-mix row.
//
// Gate (exit 3 on failure): the deterministic service counters and the final
// simulator run report must be bitwise identical across --threads {1, 8} —
// the protocol's determinism contract measured at bench scale, not just in
// unit tests.

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/obs/exporters.h"
#include "src/service/replay.h"
#include "src/service/session.h"

namespace {

using namespace optimus;

// Small testbed scenario: request throughput is the subject, so the
// simulator behind it stays small and the mix stays read-heavy.
const char kScenario[] = R"({
  "schema": "scenario-v1",
  "name": "bench_serve",
  "description": "Service-mode load-generation target.",
  "seed": 7,
  "repeats": 1,
  "policies": ["optimus"],
  "workload": {
    "jobs": 6,
    "arrivals": {"kind": "uniform", "window_s": 6000.0},
    "sizes": {"kind": "zoo", "target_steps_per_epoch": 20}
  },
  "cluster": {"testbed": true}
})";

struct RowResult {
  int64_t requests = 0;
  int64_t errors = 0;
  double wall_s = 0.0;
  double sim_s = 0.0;  // simulated seconds covered by the replayed session
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  // Deterministic fingerprints compared across thread counts.
  std::string service_fp;  // service registry, profiling excluded
  std::string sim_fp;      // simulator run report, profiling excluded
};

RowResult RunRow(const std::string& log, int threads) {
  SessionOverrides overrides;
  overrides.threads = threads;
  std::string error;
  std::unique_ptr<ServiceSession> session = ServiceSession::Create(
      kScenario, "<bench_serve>", overrides, &error);
  OPTIMUS_CHECK(session != nullptr) << error;

  std::istringstream in(log);
  std::ostringstream out;
  const auto start = std::chrono::steady_clock::now();
  const ReplayResult replay = RunReplay(session.get(), in, out);
  const auto end = std::chrono::steady_clock::now();
  OPTIMUS_CHECK(replay.exit_code == 0) << "audit violation under load";

  RowResult row;
  row.requests = replay.requests;
  row.errors = replay.errors;
  row.wall_s = std::chrono::duration<double>(end - start).count();
  const Histogram& latency = session->latency_histogram();
  row.p50_s = latency.Quantile(0.5);
  row.p95_s = latency.Quantile(0.95);
  row.p99_s = latency.Quantile(0.99);
  ExportOptions options;
  options.include_profiling = false;
  row.service_fp = ExportPrometheusString(session->service_registry(), options);
  session->simulator().Run();
  row.sim_fp = ExportJsonReportString(session->simulator().registry(),
                                      &session->simulator().series(),
                                      &session->simulator().flight_recorder(),
                                      options);
  row.sim_s = session->simulator().now_s();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t requests = flags.GetInt("requests", smoke ? 20000 : 1000000);
  const std::string json_path = flags.GetString("json", "BENCH_serve.json");
  for (const std::string& key : flags.UnconsumedKeys()) {
    std::cerr << "unknown flag --" << key << "\n";
    return 1;
  }

  PrintExperimentHeader(
      "EXT: online service throughput",
      "ServiceSession under a synthetic NDJSON request load (read-heavy mix: "
      "metric snapshots, what-if queries, advances, rare submit/kill)",
      "Service latency stays low-millisecond at p99 under a 1M-request load "
      "and every deterministic output is bitwise identical across thread "
      "counts");

  std::ostringstream log_stream;
  GenerateSyntheticRequests(requests, /*seed=*/17, SyntheticMixOptions{},
                            log_stream);
  const std::string log = log_stream.str();

  TablePrinter table({"threads", "requests", "errors", "wall (s)", "req/s",
                      "p50 (us)", "p95 (us)", "p99 (us)"});
  std::vector<RowResult> rows;
  std::vector<JsonObject> row_objects;
  for (const int threads : {1, 8}) {
    const RowResult row = RunRow(log, threads);
    table.AddRow({std::to_string(threads), std::to_string(row.requests),
                  std::to_string(row.errors),
                  TablePrinter::FormatDouble(row.wall_s, 2),
                  TablePrinter::FormatDouble(
                      static_cast<double>(row.requests) / row.wall_s, 0),
                  TablePrinter::FormatDouble(row.p50_s * 1e6, 1),
                  TablePrinter::FormatDouble(row.p95_s * 1e6, 1),
                  TablePrinter::FormatDouble(row.p99_s * 1e6, 1)});
    JsonObject obj;
    obj.Set("threads", threads);
    obj.Set("requests", row.requests);
    obj.Set("errors", row.errors);
    // Shared perf schema (wall_s, sim_s, sim_s_per_wall_s, peak_rss_mib) so
    // BENCH_serve.json lines up with the other BENCH_*.json files.
    SetPerfColumns(&obj, row.wall_s, row.sim_s);
    obj.Set("requests_per_s", static_cast<double>(row.requests) / row.wall_s);
    obj.Set("p50_latency_s", row.p50_s);
    obj.Set("p95_latency_s", row.p95_s);
    obj.Set("p99_latency_s", row.p99_s);
    row_objects.push_back(obj);
    rows.push_back(row);
  }
  table.Print(std::cout);

  const bool deterministic = rows[0].service_fp == rows[1].service_fp &&
                             rows[0].sim_fp == rows[1].sim_fp;
  std::cout << (deterministic
                    ? "deterministic outputs identical across thread counts\n"
                    : "DETERMINISM FAILURE: outputs differ across thread counts\n");

  JsonObject summary;
  summary.Set("smoke", smoke);
  summary.Set("requests", requests);
  summary.Set("deterministic_across_threads", deterministic);
  summary.Set("p50_latency_s", rows[0].p50_s);
  summary.Set("p95_latency_s", rows[0].p95_s);
  summary.Set("p99_latency_s", rows[0].p99_s);
  summary.Set("rows", row_objects);
  if (!WriteBenchJsonSection(json_path, "serve", summary)) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";
  return deterministic ? 0 : 3;
}
