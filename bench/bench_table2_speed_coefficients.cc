// Table 2: coefficients of the fitted speed functions for asynchronous and
// synchronous ResNet-50 training, with the fitting residual.

#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/models/model_zoo.h"
#include "src/perfmodel/speed_model.h"
#include "src/pserver/comm_model.h"

namespace {

using namespace optimus;

SpeedModel FitModel(const ModelSpec& spec, TrainingMode mode) {
  SpeedModel model(mode, spec.default_sync_batch);
  Rng noise(2);
  for (int p = 1; p <= 20; p += 1) {
    for (int w = 1; w <= 20; w += 1) {
      StepTimeInputs in;
      in.model = &spec;
      in.mode = mode;
      in.num_ps = p;
      in.num_workers = w;
      model.AddSample(p, w,
                      TrainingSpeed(in, CommConfig{}) * noise.LogNormalFactor(0.01));
    }
  }
  model.Fit();
  return model;
}

}  // namespace

int main() {
  PrintExperimentHeader(
      "Table 2", "Fitted speed-function coefficients (ResNet-50)",
      "compute (theta0/theta1) and transfer (w/p) terms dominate; per-worker "
      "and per-PS overheads are comparatively small. Paper sync row: "
      "theta0=1.02 theta1=2.78 theta2=4.92 theta3=0.00 theta4=0.02; async row: "
      "2.83 3.92 0.00 0.11");

  const ModelSpec& spec = FindModel("ResNet-50");

  SpeedModel async_model = FitModel(spec, TrainingMode::kAsync);
  SpeedModel sync_model = FitModel(spec, TrainingMode::kSync);

  PrintBanner(std::cout, "async: T = th0 + th1*(w/p) + th2*w + th3*p");
  TablePrinter a({"theta0", "theta1 (w/p)", "theta2 (w)", "theta3 (p)", "residual"});
  const auto& at = async_model.theta();
  a.AddRow({TablePrinter::FormatDouble(at[0], 3), TablePrinter::FormatDouble(at[1], 3),
            TablePrinter::FormatDouble(at[2], 3), TablePrinter::FormatDouble(at[3], 3),
            TablePrinter::FormatDouble(async_model.residual(), 3)});
  a.AddRow({"2.83", "3.92", "0.00", "0.11", "0.10 (paper)"});
  a.Print(std::cout);

  PrintBanner(std::cout, "sync: T = th0*(M/w) + th1 + th2*(w/p) + th3*w + th4*p");
  TablePrinter s({"theta0 (M/w)", "theta1", "theta2 (w/p)", "theta3 (w)", "theta4 (p)",
                  "residual"});
  const auto& st = sync_model.theta();
  s.AddRow({TablePrinter::FormatDouble(st[0], 3), TablePrinter::FormatDouble(st[1], 3),
            TablePrinter::FormatDouble(st[2], 3), TablePrinter::FormatDouble(st[3], 3),
            TablePrinter::FormatDouble(st[4], 3),
            TablePrinter::FormatDouble(sync_model.residual(), 3)});
  s.AddRow({"1.02", "2.78", "4.92", "0.00", "0.02", "0.00 (paper)"});
  s.Print(std::cout);

  std::cout << "\nNote: our ground truth adds a batch-efficiency floor and larger "
               "coordination overheads (needed to reproduce the measured speed "
               "decline of Fig 4(b), which the paper's own fitted theta3=0 cannot "
               "produce), so theta3/theta4 come out larger than Table 2's.\n";
  return 0;
}
