// Extension: ablate the performance model itself. Optimus's scheduling
// quality rests on its fitted Eqn-3/4 speed functions; replace them with the
// naive "linear speedup in workers" assumption and measure the damage. This
// isolates the value of §3.2's modeling beyond what Figs 18/19 (which ablate
// the decision algorithms, not the model) can show.

#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/server.h"

int main() {
  using namespace optimus;
  PrintExperimentHeader(
      "EXT: speed-model ablation",
      "Fitted Eqn-3/4 speed model vs naive linear-speedup assumption",
      "the naive model over-allocates workers far past their real knee "
      "(linear extrapolation never sees diminishing returns), wasting slots "
      "and slowing every job: higher JCT and makespan");

  TablePrinter table({"speed model", "avg JCT (s)", "JCT (norm)", "makespan (s)",
                      "makespan (norm)"});
  double base_jct = 0.0;
  double base_mk = 0.0;
  for (bool naive : {false, true}) {
    ExperimentConfig config;
    ApplySchedulerPreset(SchedulerPreset::kOptimus, &config.sim);
    ApplyTestbedConditions(&config.sim);
    config.sim.naive_linear_speed = naive;
    config.workload.num_jobs = 12;
    config.workload.arrival_window_s = 6000.0;
    config.workload.target_steps_per_epoch = 80;
    config.repeats = 8;
    ExperimentResult r = RunExperiment(config, [] { return BuildTestbed(); });
    if (!naive) {
      base_jct = r.avg_jct_mean;
      base_mk = r.makespan_mean;
    }
    table.AddRow({naive ? "naive linear" : "fitted Eqn-3/4",
                  TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_mean / base_jct, 2),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.makespan_mean / base_mk, 2)});
  }
  table.Print(std::cout);
  return 0;
}
