// Network fidelity bench: fabric models, rack-aware placement, determinism
// (BENCH_net.json).
//
// Three sections:
//
//   models — flat vs topology vs contention at 1k jobs x 16k servers, one
//       child process per cell (re-exec with --cell=<model>) so peak-RSS
//       columns are per-cell. Shows what the fabric costs: the contention
//       solve's wall-time overhead over the flat constant, and how JCTs move
//       once cross-rack bandwidth is no longer free. Skipped under --smoke.
//
//   rack — the acceptance point: optimus vs optimus_rack (the rack-aware
//       Theorem-1 variant) on scenarios/oversubscribed_fabric.json. Rack-aware
//       placement must win on average JCT when uplinks are oversubscribed.
//
//   determinism — shards x threads x engines over the two network scenarios
//       (allreduce_mix under topology, oversubscribed_fabric under
//       contention): every cell must reproduce the reference cell's metrics,
//       trace digest, and network-solve counters bitwise. Any divergence
//       exits 3. This section and `rack` run under --smoke (tools/check.sh
//       and CI).

#include <cstdio>
#include <chrono>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/server.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/net/network_model.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"
#include "src/workload/scenario.h"

namespace {

using namespace optimus;

std::string DigestHex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf);
}

double MeanJct(const std::vector<double>& jcts) {
  if (jcts.empty()) return 0.0;
  return std::accumulate(jcts.begin(), jcts.end(), 0.0) / jcts.size();
}

// Everything the simulation computes, fingerprinted for bitwise comparison
// across (shards, threads, engine-invariant) configurations. On top of the
// scheduler-side outputs this adds the network solve's counters: a fabric
// solve that drifted with thread count would show up here even if the JCTs
// happened to agree.
struct RunFingerprint {
  std::vector<double> jcts;
  int completed = 0;
  int64_t events_processed = 0;
  int total_scalings = 0;
  int job_evictions = 0;
  int task_failures = 0;
  double rolled_back_steps = 0.0;
  int64_t audit_violations = 0;
  uint64_t trace_digest = 0;
  int64_t trace_records = 0;
  int64_t net_solves = 0;
  int64_t net_flows = 0;
  int64_t net_contended_flows = 0;

  bool Matches(const RunFingerprint& other, std::string* why) const {
    auto fail = [&](const std::string& what) {
      *why = what;
      return false;
    };
    if (jcts != other.jcts) return fail("jcts");
    if (completed != other.completed) return fail("completed_jobs");
    if (events_processed != other.events_processed) {
      return fail("events_processed");
    }
    if (total_scalings != other.total_scalings) return fail("total_scalings");
    if (job_evictions != other.job_evictions) return fail("job_evictions");
    if (task_failures != other.task_failures) return fail("task_failures");
    if (rolled_back_steps != other.rolled_back_steps) {
      return fail("rolled_back_steps");
    }
    if (audit_violations != other.audit_violations) {
      return fail("audit_violations");
    }
    if (trace_digest != other.trace_digest) return fail("trace_digest");
    if (trace_records != other.trace_records) return fail("trace_records");
    if (net_solves != other.net_solves) return fail("net_solves");
    if (net_flows != other.net_flows) return fail("net_flows");
    if (net_contended_flows != other.net_contended_flows) {
      return fail("net_contended_flows");
    }
    return true;
  }
};

struct CellRun {
  RunFingerprint fp;
  RunMetrics metrics;
  NetworkStats net;
  double wall_s = 0.0;
  double sim_s = 0.0;
};

CellRun RunSim(const SimulatorConfig& config, std::vector<Server> servers,
               std::vector<JobSpec> specs) {
  Simulator sim(config, std::move(servers), std::move(specs));
  CellRun run;
  const auto start = std::chrono::steady_clock::now();
  run.metrics = sim.Run();
  const auto end = std::chrono::steady_clock::now();
  run.wall_s = std::chrono::duration<double>(end - start).count();
  run.sim_s = sim.now_s();
  if (sim.network() != nullptr) {
    run.net = sim.network()->stats();
  }
  run.fp.jcts = run.metrics.jcts;
  run.fp.completed = run.metrics.completed_jobs;
  run.fp.events_processed = run.metrics.events_processed;
  run.fp.total_scalings = run.metrics.total_scalings;
  run.fp.job_evictions = run.metrics.job_evictions;
  run.fp.task_failures = run.metrics.task_failures;
  run.fp.rolled_back_steps = run.metrics.rolled_back_steps;
  run.fp.audit_violations = run.metrics.audit_violations;
  run.fp.trace_digest = sim.trace().digest();
  run.fp.trace_records = static_cast<int64_t>(sim.trace().size());
  run.fp.net_solves = run.net.solves;
  run.fp.net_flows = run.net.flows;
  run.fp.net_contended_flows = run.net.contended_flows;
  return run;
}

// ---------------------------------------------------------------------------
// Section 1: fabric-model cells (child process per cell).
// ---------------------------------------------------------------------------

// One model cell, run inside a dedicated child process so VmHWM is the cell's
// own peak. All three cells replay the identical 1k-job workload over a
// 16k-server fabric (racks of 32, 4:1 oversubscribed); only the network model
// changes, so JCT deltas are attributable to the fabric.
int RunModelCell(const std::string& model_name) {
  constexpr int kNumJobs = 1000;
  constexpr int kNumServers = 16000;
  constexpr int kRackSize = 32;

  SimulatorConfig config;
  config.seed = 7;
  config.engine = SimEngine::kEvents;
  config.streaming = true;
  config.trace_hash_only = true;
  config.shards = 8;
  config.threads = 1;
  config.interval_s = 600.0;
  config.max_sim_time_s = 12 * config.interval_s;
  config.rack_size = kRackSize;
  OPTIMUS_CHECK(ParseNetworkModelName(model_name, &config.net.model))
      << "--cell expects flat|topology|contention, got " << model_name;
  config.net.nic_bps = 125e6;
  config.net.oversubscription = 4.0;

  WorkloadConfig workload;
  workload.num_jobs = kNumJobs;
  workload.arrival_window_s = config.max_sim_time_s;

  Rng workload_rng(config.seed ^ 0x5eedULL);
  std::vector<JobSpec> specs = GenerateWorkload(workload, &workload_rng);
  Simulator sim(config,
                BuildUniformCluster(kNumServers, Resources(16, 80, 0, 1)),
                std::move(specs));
  const auto start = std::chrono::steady_clock::now();
  const RunMetrics metrics = sim.Run();
  const auto end = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(end - start).count();
  const NetworkStats net =
      sim.network() != nullptr ? sim.network()->stats() : NetworkStats{};

  // Single machine-readable line the parent scrapes into BENCH_net.json.
  std::cout << "CELL model=" << model_name << " jobs=" << kNumJobs
            << " servers=" << kNumServers << " completed="
            << metrics.completed_jobs << " avg_jct_s=" << MeanJct(metrics.jcts)
            << " wall_s=" << wall_s << " sim_s=" << sim.now_s()
            << " peak_rss_mib=" << PeakRssMib()
            << " trace_digest=" << DigestHex(sim.trace().digest())
            << " net_solves=" << net.solves << " net_flows=" << net.flows
            << " net_contended_flows=" << net.contended_flows
            << " net_links=" << net.num_links
            << " net_max_link_util=" << net.max_link_utilization << "\n";
  return 0;
}

bool RunModelSweep(const std::string& self_exe, std::vector<JsonObject>* rows,
                   std::string* why) {
  const std::vector<std::string> models = {"flat", "topology", "contention"};
  TablePrinter table({"model", "completed", "avg JCT (s)", "wall (s)",
                      "peak RSS (MiB)", "flows", "contended"});
  for (const std::string& model : models) {
    const std::string cmd = self_exe + " --cell=" + model;
    std::cout << "  running cell model=" << model << "...\n" << std::flush;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
      *why = "failed to spawn " + cmd;
      return false;
    }
    std::string cell_line;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      const std::string line(buf);
      if (line.compare(0, 5, "CELL ") == 0) {
        cell_line = line.substr(5);
      }
    }
    const int status = pclose(pipe);
    if (status != 0 || cell_line.empty()) {
      *why = "cell model=" + model + " failed (exit " + std::to_string(status) +
             ")";
      return false;
    }
    // key=value scrape; numeric fields go in as numbers, model/digest as
    // strings.
    JsonObject row;
    std::istringstream fields(cell_line);
    std::string field;
    std::string completed, avg_jct, wall, rss, flows, contended;
    while (fields >> field) {
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        continue;
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "model" || key == "trace_digest") {
        row.Set(key, value);
      } else {
        row.Set(key, std::stod(value));
      }
      if (key == "completed") completed = value;
      if (key == "avg_jct_s") avg_jct = value;
      if (key == "wall_s") wall = value;
      if (key == "peak_rss_mib") rss = value;
      if (key == "net_flows") flows = value;
      if (key == "net_contended_flows") contended = value;
    }
    rows->push_back(row);
    table.AddRow({model, completed,
                  TablePrinter::FormatDouble(std::stod(avg_jct), 1),
                  TablePrinter::FormatDouble(std::stod(wall), 2), rss, flows,
                  contended});
  }
  table.Print(std::cout);
  return true;
}

// ---------------------------------------------------------------------------
// Section 2: rack-aware placement vs baseline on the oversubscribed fabric.
// ---------------------------------------------------------------------------

bool RunRackComparison(const std::string& scenario_path, JsonObject* section,
                       std::string* why) {
  ScenarioSpec scenario;
  std::string error;
  if (!LoadScenarioFile(scenario_path, &scenario, &error)) {
    *why = "scenario load failed: " + error;
    return false;
  }
  TablePrinter table({"policy", "completed", "avg JCT (s)", "makespan (s)",
                      "contended flows"});
  double baseline_jct = 0.0;
  double rack_jct = 0.0;
  for (const std::string& policy : {"optimus", "optimus_rack"}) {
    const SimulatorConfig config = scenario.MakeSimConfig(policy);
    const CellRun run =
        RunSim(config, scenario.cluster.Build(), scenario.JobsForRepeat());
    const double avg_jct = MeanJct(run.metrics.jcts);
    if (policy == "optimus") {
      baseline_jct = avg_jct;
    } else {
      rack_jct = avg_jct;
    }
    table.AddRow({policy, std::to_string(run.fp.completed),
                  TablePrinter::FormatDouble(avg_jct, 1),
                  TablePrinter::FormatDouble(run.sim_s, 1),
                  std::to_string(run.net.contended_flows)});
    JsonObject row;
    row.Set("policy", policy);
    row.Set("completed_jobs", run.fp.completed);
    row.Set("avg_jct_s", avg_jct);
    row.Set("makespan_s", run.sim_s);
    row.Set("net_solves", run.net.solves);
    row.Set("net_flows", run.net.flows);
    row.Set("net_contended_flows", run.net.contended_flows);
    row.Set("net_max_link_util", run.net.max_link_utilization);
    SetPerfColumns(&row, run.wall_s, run.sim_s);
    section->Set(policy, row);
  }
  table.Print(std::cout);

  const bool rack_aware_wins = rack_jct < baseline_jct;
  const double delta =
      baseline_jct > 0.0 ? (baseline_jct - rack_jct) / baseline_jct : 0.0;
  std::cout << "  rack-aware avg JCT delta: "
            << TablePrinter::FormatDouble(100.0 * delta, 1) << "% ("
            << (rack_aware_wins ? "rack-aware wins" : "BASELINE WINS") << ")\n";
  section->Set("scenario", scenario_path);
  section->Set("avg_jct_delta_frac", delta);
  section->Set("rack_aware_wins", rack_aware_wins);
  if (!rack_aware_wins) {
    *why = "optimus_rack avg JCT " + std::to_string(rack_jct) +
           " did not beat optimus " + std::to_string(baseline_jct) + " on " +
           scenario_path;
  }
  return rack_aware_wins;
}

// ---------------------------------------------------------------------------
// Section 3: determinism sweep over the network scenarios.
// ---------------------------------------------------------------------------

bool RunDeterminismSweep(const std::string& scenario_path,
                         const std::string& policy, bool smoke,
                         std::vector<JsonObject>* rows, std::string* why) {
  ScenarioSpec scenario;
  std::string error;
  if (!LoadScenarioFile(scenario_path, &scenario, &error)) {
    *why = "scenario load failed: " + error;
    return false;
  }
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 8};
  const std::vector<SimEngine> engines = {SimEngine::kInterval,
                                          SimEngine::kEvents};

  TablePrinter table({"engine", "shards", "threads", "wall (s)", "completed",
                      "trace digest", "net solves", "contended", "match"});
  bool ok = true;
  for (const SimEngine engine : engines) {
    // The two engines legitimately differ from each other (different RNG
    // cadences); the bitwise contract is per engine, across shards/threads.
    bool have_reference = false;
    RunFingerprint reference;
    for (const int shards : shard_counts) {
      for (const int threads : thread_counts) {
        SimulatorConfig config = scenario.MakeSimConfig(policy);
        config.engine = engine;
        config.shards = shards;
        config.threads = threads;
        const CellRun run = RunSim(config, scenario.cluster.Build(),
                                   scenario.JobsForRepeat());
        std::string mismatch;
        bool match = true;
        if (!have_reference) {
          reference = run.fp;
          have_reference = true;
        } else if (!run.fp.Matches(reference, &mismatch)) {
          match = false;
          ok = false;
          *why = scenario_path + ": " + SimEngineName(engine) + " shards=" +
                 std::to_string(shards) + " threads=" +
                 std::to_string(threads) + " diverged on " + mismatch;
        }
        table.AddRow({SimEngineName(engine), std::to_string(shards),
                      std::to_string(threads),
                      TablePrinter::FormatDouble(run.wall_s, 3),
                      std::to_string(run.fp.completed),
                      DigestHex(run.fp.trace_digest),
                      std::to_string(run.fp.net_solves),
                      std::to_string(run.fp.net_contended_flows),
                      match ? "ok" : "DIVERGED"});
        JsonObject row;
        row.Set("scenario", scenario_path);
        row.Set("policy", policy);
        row.Set("engine", SimEngineName(engine));
        row.Set("shards", shards);
        row.Set("threads", threads);
        row.Set("completed_jobs", run.fp.completed);
        row.Set("trace_digest", DigestHex(run.fp.trace_digest));
        row.Set("trace_records", run.fp.trace_records);
        row.Set("net_solves", run.fp.net_solves);
        row.Set("net_flows", run.fp.net_flows);
        row.Set("net_contended_flows", run.fp.net_contended_flows);
        row.Set("match", match);
        SetPerfColumns(&row, run.wall_s, run.sim_s);
        rows->push_back(row);
      }
    }
  }
  table.Print(std::cout);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "BENCH_net.json");
  const std::string fabric_scenario = flags.GetString(
      "fabric_scenario", "scenarios/oversubscribed_fabric.json");
  const std::string allreduce_scenario =
      flags.GetString("allreduce_scenario", "scenarios/allreduce_mix.json");
  // Internal: run one fabric-model cell in this process, print its CELL line.
  const std::string cell = flags.GetString("cell", "");
  for (const std::string& key : flags.UnconsumedKeys()) {
    std::cerr << "unknown flag --" << key << "\n";
    return 1;
  }
  if (!cell.empty()) {
    return RunModelCell(cell);
  }

  PrintExperimentHeader(
      "EXT: network fidelity",
      "Fabric models (flat/topology/contention), ring all-reduce, and "
      "rack-aware Theorem-1 placement",
      "network.model=flat reproduces the Eqn-2 constant bitwise; "
      "topology/contention/all-reduce runs are bitwise identical across "
      "shards x threads per engine; rack-aware placement beats the baseline "
      "on average JCT when rack uplinks are 4:1 oversubscribed");

  bool ok = true;
  std::string divergence;
  JsonObject section;
  section.Set("smoke", smoke);

  if (!smoke) {
    std::cout << "\nFabric-model sweep (one child process per cell):\n";
    std::vector<JsonObject> model_rows;
    std::string model_why;
    if (!RunModelSweep(argv[0], &model_rows, &model_why)) {
      ok = false;
      divergence = model_why;
    }
    section.Set("models", model_rows);
  }

  std::cout << "\nRack-aware placement on " << fabric_scenario << ":\n";
  JsonObject rack_section;
  std::string rack_why;
  if (!RunRackComparison(fabric_scenario, &rack_section, &rack_why)) {
    ok = false;
    divergence = rack_why;
  }
  section.Set("rack", rack_section);

  std::vector<JsonObject> determinism_rows;
  bool determinism_ok = true;
  std::cout << "\nDeterminism sweep over " << allreduce_scenario
            << " (topology + all-reduce mix):\n";
  if (!RunDeterminismSweep(allreduce_scenario, "optimus", smoke,
                           &determinism_rows, &divergence)) {
    determinism_ok = false;
  }
  std::cout << "\nDeterminism sweep over " << fabric_scenario
            << " (contention + rack-aware placement):\n";
  if (!RunDeterminismSweep(fabric_scenario, "optimus_rack", smoke,
                           &determinism_rows, &divergence)) {
    determinism_ok = false;
  }
  ok = ok && determinism_ok;
  section.Set("determinism", determinism_rows);
  section.Set("determinism_ok", determinism_ok);

  if (ok) {
    std::cout << "\nall configurations bitwise identical\n";
  } else {
    std::cerr << "\nDIVERGENCE: " << divergence << "\n";
  }
  section.Set("ok", ok);
  if (WriteBenchJsonSection(json_path, "net", section)) {
    std::cout << "wrote section net to " << json_path << "\n";
  }
  return ok ? 0 : 3;
}
