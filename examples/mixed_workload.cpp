// Mixed-workload scenario (§7 "Various workloads"): a non-DL background
// workload reserves an oscillating share of every server, and Optimus
// schedules DL jobs on whatever remains — soaking up capacity at night and
// shrinking during the day.
//
//   ./examples/mixed_workload

#include <iostream>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

int main() {
  using namespace optimus;

  WorkloadConfig workload;
  workload.num_jobs = 12;
  workload.arrival_window_s = 6000.0;
  workload.target_steps_per_epoch = 60;
  Rng rng(9);
  std::vector<JobSpec> jobs = GenerateWorkload(workload, &rng);

  SimulatorConfig config;
  config.allocator = AllocatorPolicy::kOptimus;
  config.placement = PlacementPolicy::kOptimusPack;
  config.use_paa = true;
  // Background workload takes up to 50% of every server, oscillating with a
  // 2-hour period (a fast "day/night" cycle for demonstration).
  config.background_share = 0.5;
  config.background_period_s = 7200.0;
  config.seed = 9;

  std::cout << "12 DL jobs sharing the 13-server testbed with a background "
               "workload that oscillates between 0% and 50% of each server\n\n";

  Simulator sim(config, BuildTestbed(), jobs);
  RunMetrics metrics = sim.Run();

  TablePrinter table({"t (s)", "background share %", "running DL tasks"});
  for (size_t i = 0; i < metrics.timeline.size(); i += 2) {
    const TimelinePoint& p = metrics.timeline[i];
    constexpr double kTwoPi = 6.283185307179586;
    const double share =
        0.5 * (0.5 + 0.5 * std::sin(kTwoPi * (p.time_s - 600.0) / 7200.0));
    table.AddRow({TablePrinter::FormatDouble(p.time_s, 0),
                  TablePrinter::FormatDouble(share * 100.0, 0),
                  std::to_string(p.running_tasks)});
  }
  table.Print(std::cout);

  std::cout << "\nCompleted " << metrics.completed_jobs << "/" << metrics.total_jobs
            << " jobs; avg JCT " << TablePrinter::FormatDouble(metrics.avg_jct_s, 0)
            << " s, makespan " << TablePrinter::FormatDouble(metrics.makespan_s, 0)
            << " s.\nThe running-task count tracks the inverse of the background "
               "share: Optimus expands into freed capacity and retreats when the "
               "background workload returns.\n";
  return metrics.completed_jobs == metrics.total_jobs ? 0 : 1;
}
