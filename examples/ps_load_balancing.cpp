// Parameter-server load balancing demo: inspect how MXNet's default rule and
// the PAA algorithm (§5.3) shard a model's parameter blocks, and what that
// does to training speed.
//
//   ./examples/ps_load_balancing [model] [num_ps]

#include <cstdlib>
#include <iostream>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/models/model_zoo.h"
#include "src/models/param_blocks.h"
#include "src/pserver/block_assignment.h"
#include "src/pserver/comm_model.h"

namespace {

using namespace optimus;

void PrintPerPsLoads(const BlockAssignment& assignment, const std::string& name) {
  std::vector<int64_t> params(assignment.num_ps, 0);
  std::vector<int64_t> requests(assignment.num_ps, 0);
  for (const BlockSlice& s : assignment.slices) {
    params[s.ps] += s.size;
    requests[s.ps] += 1;
  }
  std::cout << "\n" << name << " per-PS load:\n";
  TablePrinter table({"ps", "params (M)", "update requests"});
  for (int ps = 0; ps < assignment.num_ps; ++ps) {
    table.AddRow({std::to_string(ps),
                  TablePrinter::FormatDouble(params[ps] / 1e6, 3),
                  std::to_string(requests[ps])});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "ResNet-50";
  const int num_ps = argc > 2 ? std::atoi(argv[2]) : 10;

  const ModelSpec& spec = FindModel(model_name);
  const ParamBlockSizes blocks = GenerateParamBlocks(spec);
  std::cout << spec.name << ": " << blocks.size() << " parameter blocks, "
            << TablePrinter::FormatDouble(spec.params_millions, 1) << "M parameters, "
            << num_ps << " parameter servers\n";

  Rng rng(1);
  const BlockAssignment mxnet = MxnetAssigner().Assign(blocks, num_ps, &rng);
  const BlockAssignment paa = PaaAssigner().Assign(blocks, num_ps);
  PrintPerPsLoads(mxnet, "MXNet default (threshold rule, random small blocks)");
  PrintPerPsLoads(paa, "PAA (sorted best-fit with request balancing)");

  std::cout << "\nSummary:\n";
  TablePrinter summary({"algorithm", "size diff (M)", "request diff", "total requests",
                        "sync speed @ (p=" + std::to_string(num_ps) + ", w=10)"});
  for (const auto& [name, assignment] : {std::pair<std::string, const BlockAssignment&>(
                                             "MXNet", mxnet),
                                         {"PAA", paa}}) {
    const PsLoadMetrics m = ComputeLoadMetrics(assignment);
    StepTimeInputs in;
    in.model = &spec;
    in.mode = TrainingMode::kSync;
    in.num_ps = num_ps;
    in.num_workers = 10;
    in.load = m;
    in.load_valid = true;
    summary.AddRow({name,
                    TablePrinter::FormatDouble(m.param_size_diff / 1e6, 3),
                    std::to_string(m.request_count_diff),
                    std::to_string(m.total_requests),
                    TablePrinter::FormatDouble(TrainingSpeed(in, CommConfig{}), 4)});
  }
  summary.Print(std::cout);
  return 0;
}
