// Elastic training walkthrough: one ResNet-50 job, followed interval by
// interval.
//
// Shows the full Optimus lifecycle on a single job: the (p, w) pre-run that
// initializes the speed model, the online convergence fitting that sharpens
// the remaining-epochs estimate, the checkpoint-based resource rescaling, and
// a mid-training learning-rate drop that restarts the convergence fitter
// (§7 extension).
//
//   ./examples/elastic_training

#include <iostream>

#include "src/cluster/server.h"
#include "src/common/table.h"
#include "src/sim/simulator.h"

int main() {
  using namespace optimus;

  JobSpec spec;
  spec.id = 0;
  spec.model = &FindModel("ResNet-50");
  spec.mode = TrainingMode::kSync;
  spec.patience = 3;
  spec.worker_demand = Resources(2.5, 10, 0, 0.15);
  spec.ps_demand = Resources(2.5, 10, 0, 0.15);
  spec.dataset_scale = 0.002;  // downscaled dataset, as in the paper's testbed
  spec.max_ps = 16;
  spec.max_workers = 16;
  spec.convergence_delta = 0.01;
  // Learning-rate decay at epoch 10: loss drops onto a steeper curve and the
  // online convergence model restarts.
  spec.lr_drop = LearningRateDrop{.epoch = 10.0, .c0 = 0.8, .c2 = 0.4};

  // Two competing DeepSpeech2 jobs arrive mid-training, forcing Optimus to
  // elastically shrink the primary job, then grow it back when they finish.
  std::vector<JobSpec> jobs = {spec};
  for (int i = 1; i <= 2; ++i) {
    JobSpec rival;
    rival.id = i;
    rival.model = &FindModel("DeepSpeech2");
    rival.mode = TrainingMode::kSync;
    rival.convergence_delta = 0.05;
    rival.patience = 2;
    rival.worker_demand = spec.worker_demand;
    rival.ps_demand = spec.ps_demand;
    rival.dataset_scale = 0.01;
    rival.arrival_time_s = 1800.0 * i;
    rival.max_ps = 16;
    rival.max_workers = 16;
    jobs.push_back(rival);
  }

  SimulatorConfig config;
  config.allocator = AllocatorPolicy::kOptimus;
  config.placement = PlacementPolicy::kOptimusPack;
  config.use_paa = true;
  config.seed = 3;

  Simulator sim(config, BuildTestbed(), jobs);

  std::cout << "Elastic training of one " << spec.model->name << " job ("
            << TrainingModeName(spec.mode) << ", delta=" << spec.convergence_delta
            << ", LR drop at epoch 10) with two DeepSpeech2 rivals arriving later\n\n";

  TablePrinter table({"t (s)", "state", "p", "w", "epochs", "loss", "scalings",
                      "stall (s)"});
  const Job& job = sim.job(0);
  while (true) {
    const bool more = sim.StepInterval();
    const double loss = job.epoch_losses().empty() ? 0.0 : job.epoch_losses().back();
    table.AddRow({TablePrinter::FormatDouble(sim.now_s(), 0), JobStateName(job.state()),
                  std::to_string(job.num_ps()), std::to_string(job.num_workers()),
                  TablePrinter::FormatDouble(job.EpochsDone(), 1),
                  TablePrinter::FormatDouble(loss, 4), std::to_string(job.num_scalings()),
                  TablePrinter::FormatDouble(job.total_stall_s(), 0)});
    if (!more) {
      break;
    }
  }
  table.Print(std::cout);

  std::cout << "\nJob " << (job.state() == JobState::kCompleted ? "completed" : "did not complete")
            << "; JCT = " << TablePrinter::FormatDouble(job.Jct(), 0) << " s after "
            << TablePrinter::FormatDouble(job.EpochsDone(), 1) << " epochs, "
            << job.num_scalings() << " elastic rescalings ("
            << TablePrinter::FormatDouble(job.total_stall_s(), 0)
            << " s of checkpoint/restart stall).\n";
  return job.state() == JobState::kCompleted ? 0 : 1;
}
