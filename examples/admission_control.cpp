// Admission-control scenario: before submitting a large job to a busy
// cluster, ask the scheduler's own models what would happen ("what-if"
// analysis): would the job get resources, when would it finish, and how much
// would it delay the jobs already running?
//
//   ./examples/admission_control

#include <cmath>
#include <iostream>

#include "src/common/table.h"
#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/what_if.h"

namespace {

using namespace optimus;

// Scheduler-style job summary with a ground-truth-derived speed estimate.
SchedJob MakeJob(int id, const std::string& model_name, TrainingMode mode,
                 double remaining_epochs, int64_t steps_per_epoch) {
  const ModelSpec& model = FindModel(model_name);
  SchedJob job;
  job.job_id = id;
  job.mode = mode;
  job.worker_demand = Resources(2.5, 10, 0, 0.15);
  job.ps_demand = Resources(2.5, 10, 0, 0.15);
  job.max_ps = 16;
  job.max_workers = 16;
  job.remaining_epochs = remaining_epochs;
  job.speed = [&model, mode, steps_per_epoch](int p, int w) {
    StepTimeInputs in;
    in.model = &model;
    in.mode = mode;
    in.num_ps = p;
    in.num_workers = w;
    return TrainingSpeed(in, CommConfig{}) / static_cast<double>(steps_per_epoch);
  };
  return job;
}

}  // namespace

int main() {
  // A cluster already running three jobs of mixed sizes.
  std::vector<SchedJob> existing = {
      MakeJob(0, "ResNext-110", TrainingMode::kSync, 25.0, 20),
      MakeJob(1, "Seq2Seq", TrainingMode::kSync, 40.0, 20),
      MakeJob(2, "CNN-rand", TrainingMode::kAsync, 8.0, 20),
  };
  const Resources capacity(75, 700, 0, 100);  // a busy cluster: ~30 containers

  std::cout << "Cluster with 3 running jobs; evaluating admission of a "
               "DeepSpeech2 job (what-if analysis using the scheduler's own "
               "marginal-gain allocation)\n";

  OptimusAllocator allocator;
  const SchedJob candidate = MakeJob(3, "DeepSpeech2", TrainingMode::kSync, 30.0, 20);
  const WhatIfResult result =
      EvaluateAdmission(allocator, existing, candidate, capacity);

  TablePrinter table({"job", "est. completion before (h)", "est. completion after (h)",
                      "delay (h)"});
  const char* names[] = {"ResNext-110", "Seq2Seq", "CNN-rand"};
  for (int id = 0; id < 3; ++id) {
    const double before = result.baseline_completion_s.at(id);
    const double after = result.with_job_completion_s.at(id);
    table.AddRow({names[id], TablePrinter::FormatDouble(before / 3600.0, 2),
                  TablePrinter::FormatDouble(after / 3600.0, 2),
                  TablePrinter::FormatDouble((after - before) / 3600.0, 2)});
  }
  table.Print(std::cout);

  if (result.admitted) {
    std::cout << "\nCandidate admitted with " << result.new_job_alloc.num_ps
              << " PS / " << result.new_job_alloc.num_workers
              << " workers; estimated completion in "
              << TablePrinter::FormatDouble(result.new_job_completion_s / 3600.0, 2)
              << " h.\nAggregate slowdown inflicted on running jobs: "
              << TablePrinter::FormatDouble(result.total_slowdown_s / 3600.0, 2)
              << " h.\n";
  } else {
    std::cout << "\nCandidate would not receive resources this interval.\n";
  }
  return 0;
}
