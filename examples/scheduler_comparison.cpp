// Cluster-operator scenario: compare Optimus against DRF and Tetris on a
// larger simulated cluster with a sustained Poisson job stream.
//
//   ./examples/scheduler_comparison [num_jobs] [num_servers]

#include <cstdlib>
#include <iostream>

#include "src/cluster/server.h"
#include "src/common/table.h"
#include "src/sim/experiment.h"

int main(int argc, char** argv) {
  using namespace optimus;

  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 24;
  const int num_servers = argc > 2 ? std::atoi(argv[2]) : 30;

  std::cout << "Scheduling " << num_jobs << " DL jobs (Poisson arrivals) on "
            << num_servers << " servers (16 CPU / 80 GB each)\n";

  ExperimentConfig base;
  ApplyTestbedConditions(&base.sim);
  base.workload.num_jobs = num_jobs;
  base.workload.arrivals = ArrivalProcess::kPoisson;
  base.workload.arrivals_per_interval = 2.0;
  base.workload.target_steps_per_epoch = 60;
  base.repeats = 3;

  TablePrinter table({"scheduler", "avg JCT (s)", "makespan (s)", "JCT (norm)",
                      "makespan (norm)", "completed"});
  double base_jct = 0.0;
  double base_mk = 0.0;
  for (SchedulerPreset preset :
       {SchedulerPreset::kOptimus, SchedulerPreset::kDrf, SchedulerPreset::kTetris}) {
    ExperimentConfig config = base;
    ApplySchedulerPreset(preset, &config.sim);
    ExperimentResult r = RunExperiment(config, [num_servers] {
      return BuildUniformCluster(num_servers, Resources(16, 80, 0, 1));
    });
    if (base_jct == 0.0) {
      base_jct = r.avg_jct_mean;
      base_mk = r.makespan_mean;
    }
    table.AddRow({SchedulerPresetName(preset),
                  TablePrinter::FormatDouble(r.avg_jct_mean, 0),
                  TablePrinter::FormatDouble(r.makespan_mean, 0),
                  TablePrinter::FormatDouble(r.avg_jct_mean / base_jct, 2),
                  TablePrinter::FormatDouble(r.makespan_mean / base_mk, 2),
                  TablePrinter::FormatDouble(r.completed_fraction * 100.0, 0) + "%"});
  }
  table.Print(std::cout);
  return 0;
}
