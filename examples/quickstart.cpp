// Quickstart: schedule a small deep-learning workload with Optimus.
//
// Builds the paper's 13-server testbed, generates the 9-job Table-1 workload,
// runs the Optimus scheduler (marginal-gain allocation + packed placement +
// PAA load balancing), and prints per-job outcomes and cluster-level metrics.
//
//   ./examples/quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

int main(int argc, char** argv) {
  using namespace optimus;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. A workload: the nine Table-1 jobs arriving over ~3.3 hours.
  WorkloadConfig workload;
  workload.num_jobs = 9;
  Rng rng(seed);
  std::vector<JobSpec> jobs = GenerateWorkload(workload, &rng);

  std::cout << "Submitting " << jobs.size() << " jobs:\n";
  TablePrinter submit({"job", "model", "mode", "delta", "arrival(s)"});
  for (const JobSpec& j : jobs) {
    submit.AddRow({std::to_string(j.id), j.model->name, TrainingModeName(j.mode),
                   TablePrinter::FormatDouble(j.convergence_delta, 3),
                   TablePrinter::FormatDouble(j.arrival_time_s, 0)});
  }
  submit.Print(std::cout);

  // 2. The Optimus scheduler on the paper's testbed.
  SimulatorConfig config;
  config.allocator = AllocatorPolicy::kOptimus;
  config.placement = PlacementPolicy::kOptimusPack;
  config.use_paa = true;
  config.young_job_priority_factor = 0.95;
  config.seed = seed;

  Simulator sim(config, BuildTestbed(), jobs);
  RunMetrics metrics = sim.Run();

  // 3. Outcomes.
  std::cout << "\nPer-job results:\n";
  TablePrinter results({"job", "model", "state", "epochs", "p", "w", "JCT(s)",
                        "scalings", "stall(s)"});
  for (const JobSpec& j : jobs) {
    const Job& job = sim.job(j.id);
    results.AddRow({std::to_string(j.id), j.model->name, JobStateName(job.state()),
                    TablePrinter::FormatDouble(job.EpochsDone(), 1),
                    std::to_string(job.num_ps()), std::to_string(job.num_workers()),
                    job.state() == JobState::kCompleted
                        ? TablePrinter::FormatDouble(job.Jct(), 0)
                        : "-",
                    std::to_string(job.num_scalings()),
                    TablePrinter::FormatDouble(job.total_stall_s(), 0)});
  }
  results.Print(std::cout);

  std::cout << "\nCluster metrics:\n"
            << "  completed jobs:    " << metrics.completed_jobs << "/"
            << metrics.total_jobs << "\n"
            << "  average JCT:       " << metrics.avg_jct_s << " s\n"
            << "  makespan:          " << metrics.makespan_s << " s\n"
            << "  scaling overhead:  " << metrics.scaling_overhead_fraction * 100.0
            << " %\n"
            << "  scaling events:    " << metrics.total_scalings << "\n";
  return metrics.completed_jobs == metrics.total_jobs ? 0 : 1;
}
