// Production-API walkthrough with failover: drive the OptimusController
// (§5.5) directly — register jobs, feed observations, apply its scheduling
// decisions — and kill/restore the controller mid-run from its state
// snapshot, exactly as a Kubernetes restart with etcd-backed state would.
//
//   ./examples/controller_loop

#include <iostream>
#include <algorithm>
#include <memory>

#include "src/cluster/server.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/controller/controller.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"

namespace {

using namespace optimus;

// One externally-simulated job: the "cluster side" the controller cannot see.
struct LiveJob {
  JobSpec spec;
  LossCurve curve;
  double steps = 0.0;
  std::vector<double> epoch_losses;
  int below_streak = 0;
  bool done = false;
  Rng rng;

  LiveJob(JobSpec s, uint64_t seed)
      : spec(s), curve(s.model->loss, s.StepsPerEpoch()), rng(seed) {}
};

JobSpec MakeSpec(int id, const std::string& model, TrainingMode mode, double delta) {
  JobSpec spec;
  spec.id = id;
  spec.model = &FindModel(model);
  spec.mode = mode;
  spec.convergence_delta = delta;
  spec.patience = 3;
  spec.worker_demand = Resources(2.5, 10, 0, 0.15);
  spec.ps_demand = Resources(2.5, 10, 0, 0.15);
  // Downscale so each epoch is ~20 steps (as the paper's testbed runs do).
  const int batch = mode == TrainingMode::kSync ? spec.model->default_sync_batch
                                                : spec.model->default_async_minibatch;
  spec.dataset_scale = std::min(
      1.0, 20.0 * batch / static_cast<double>(spec.model->dataset_examples));
  spec.max_ps = 16;
  spec.max_workers = 16;
  return spec;
}

std::vector<SpeedSample> PreRun(const JobSpec& spec) {
  std::vector<SpeedSample> samples;
  for (auto [p, w] : {std::pair{1, 1}, {16, 16}, {8, 8}, {16, 4}, {4, 16}}) {
    StepTimeInputs in;
    in.model = spec.model;
    in.mode = spec.mode;
    in.num_ps = p;
    in.num_workers = w;
    samples.push_back({p, w, TrainingSpeed(in, CommConfig{})});
  }
  return samples;
}

}  // namespace

int main() {
  const double interval_s = 600.0;
  std::vector<Server> servers = BuildTestbed();

  std::vector<LiveJob> jobs;
  jobs.emplace_back(MakeSpec(0, "ResNext-110", TrainingMode::kSync, 0.015), 1);
  jobs.emplace_back(MakeSpec(1, "Seq2Seq", TrainingMode::kSync, 0.02), 2);
  jobs.emplace_back(MakeSpec(2, "KAGGLE", TrainingMode::kAsync, 0.03), 3);

  auto controller = std::make_unique<OptimusController>();
  for (const LiveJob& job : jobs) {
    controller->RegisterJob(job.spec, PreRun(job.spec));
  }
  std::cout << "Registered " << controller->num_jobs()
            << " jobs with the controller (pre-run speed samples included)\n\n";

  TablePrinter table({"t (s)", "event", "job0 (p,w)", "job1 (p,w)", "job2 (p,w)",
                      "remaining epochs (est)"});
  int completed = 0;
  for (int interval = 0; interval < 100 && completed < 3; ++interval) {
    const double now = interval * interval_s;

    // Simulated controller crash + recovery from the etcd-style snapshot.
    std::string event;
    if (interval == 4) {
      const std::string snapshot = controller->SaveState();
      controller.reset();  // the pod dies
      controller = OptimusController::RestoreState(snapshot);
      event = "CONTROLLER RESTARTED";
    }

    const ScheduleDecision decision = controller->Schedule(servers);

    // Cluster side: advance each running job at its true speed and report
    // observations back.
    std::vector<std::string> allocs(3, "-");
    std::vector<std::string> remaining(3, "-");
    for (LiveJob& job : jobs) {
      if (job.done) {
        allocs[job.spec.id] = "done";
        continue;
      }
      auto it = decision.allocations.find(job.spec.id);
      if (it == decision.allocations.end() ||
          !ActiveAllocation(it->second, job.spec.comm)) {
        allocs[job.spec.id] = "paused";
        continue;
      }
      const Allocation alloc = it->second;
      allocs[job.spec.id] =
          "(" + std::to_string(alloc.num_ps) + "," + std::to_string(alloc.num_workers) + ")";

      StepTimeInputs in;
      in.model = job.spec.model;
      in.mode = job.spec.mode;
      in.num_ps = alloc.num_ps;
      in.num_workers = alloc.num_workers;
      const double speed = TrainingSpeed(in, CommConfig{});
      const double before = job.steps;
      job.steps += speed * interval_s;

      const int64_t spe = job.spec.StepsPerEpoch();
      JobObservation obs;
      obs.job_id = job.spec.id;
      obs.steps_done = job.steps;
      obs.measured_speed = speed;
      for (int i = 1; i <= 20; ++i) {
        const double step = before + (job.steps - before) * i / 20;
        obs.new_loss_points.push_back(
            {step, job.curve.SampleLossAtStep(static_cast<int64_t>(step), &job.rng)});
      }
      controller->ReportObservation(obs);
      remaining[job.spec.id] = TablePrinter::FormatDouble(
          controller->EstimateRemainingEpochs(job.spec.id), 1);

      // Convergence detection on observed epoch losses (the job owner's side).
      for (int64_t e = static_cast<int64_t>(before / spe) + 1;
           e <= static_cast<int64_t>(job.steps / spe); ++e) {
        const double loss = job.curve.TrueLossAtEpoch(static_cast<double>(e));
        if (!job.epoch_losses.empty()) {
          const double drop =
              (job.epoch_losses.back() - loss) / job.epoch_losses.back();
          job.below_streak = drop < job.spec.convergence_delta ? job.below_streak + 1 : 0;
        }
        job.epoch_losses.push_back(loss);
        if (job.below_streak >= job.spec.patience) {
          job.done = true;
          controller->CompleteJob(job.spec.id);
          ++completed;
          event += (event.empty() ? "" : "; ") + std::string("job ") +
                   std::to_string(job.spec.id) + " converged";
          break;
        }
      }
    }

    table.AddRow({TablePrinter::FormatDouble(now, 0), event.empty() ? "-" : event,
                  allocs[0], allocs[1], allocs[2],
                  remaining[0] + " / " + remaining[1] + " / " + remaining[2]});
  }
  table.Print(std::cout);
  std::cout << "\nAll " << completed
            << " jobs completed; the interval-4 restart recovered every model "
               "from the snapshot without disturbing scheduling.\n";
  return completed == 3 ? 0 : 1;
}
