// Non-negative least squares (NNLS).
//
// Optimus fits both its convergence curve (Eqn 1) and its resource-speed
// models (Eqns 3/4) with NNLS; the paper uses SciPy's solver, which implements
// the active-set algorithm of Lawson & Hanson ("Solving Least Squares
// Problems", 1974, ch. 23). This is a from-scratch implementation of the same
// algorithm: minimize ||A x - b||_2 subject to x >= 0.
//
// The solver operates on the normal equations (A^T A, A^T b): the inner
// subset solves were always normal-equation based (SolveLeastSquares), so the
// Gram form produces bit-identical solutions while letting callers accumulate
// A^T A / A^T b incrementally as samples arrive (GramSystem) — a refit is then
// O(k^2 * iterations) instead of O(n * k^2) in the sample count n.

#ifndef SRC_SOLVER_NNLS_H_
#define SRC_SOLVER_NNLS_H_

#include "src/solver/matrix.h"

namespace optimus {

struct NnlsResult {
  // True when the active-set iteration converged (it virtually always does for
  // the small, well-posed systems Optimus produces).
  bool converged = false;
  // The non-negative solution; all entries are >= 0 even on non-convergence
  // (the best iterate found is returned).
  Vector x;
  // ||A x - b||_2^2 at the returned solution. Exact when solving from a
  // dense A (SolveNnls); computed from the Gram identity
  // b^T b - 2 x^T A^T b + x^T A^T A x (clamped at 0) when solving from an
  // accumulated GramSystem.
  double residual_sum_of_squares = 0.0;
  // Number of outer active-set iterations performed.
  int iterations = 0;
};

struct NnlsOptions {
  // Maximum outer iterations; Lawson-Hanson needs at most ~3n in practice.
  int max_iterations = 300;
  // Dual-feasibility tolerance, relative to the gradient scale.
  double tolerance = 1e-10;
};

// Incrementally accumulated normal equations for a least-squares system.
// Adding rows one at a time in sample order reproduces Matrix::Gram() /
// Matrix::TransposeTimes() bit for bit (both sum products over rows in
// ascending order), so a GramSystem grown sample-by-sample solves identically
// to a fresh dense build over the same samples.
class GramSystem {
 public:
  explicit GramSystem(size_t dims)
      : ata_(dims, dims), atb_(dims, 0.0), dims_(dims) {}
  // Direct injection for callers that precompute the moments themselves
  // (e.g. the convergence model shares one A^T A across many right-hand
  // sides).
  GramSystem(Matrix ata, Vector atb, double btb, size_t rows)
      : ata_(std::move(ata)), atb_(std::move(atb)), btb_(btb), rows_(rows),
        dims_(atb_.size()) {}

  // Accumulates one observation row: features f and target y.
  void Add(const Vector& features, double target);
  void Reset();

  size_t dims() const { return dims_; }
  size_t rows() const { return rows_; }
  const Matrix& ata() const { return ata_; }
  const Vector& atb() const { return atb_; }
  double btb() const { return btb_; }

 private:
  Matrix ata_;
  Vector atb_;
  double btb_ = 0.0;
  size_t rows_ = 0;
  size_t dims_ = 0;
};

// Solves min ||A x - b|| s.t. x >= 0.
NnlsResult SolveNnls(const Matrix& a, const Vector& b, const NnlsOptions& options = {});

// Same active-set algorithm on pre-accumulated normal equations. Produces the
// same solution as SolveNnls over the samples the GramSystem was built from
// (see GramSystem); residual_sum_of_squares uses the Gram identity.
NnlsResult SolveNnlsGram(const GramSystem& gram, const NnlsOptions& options = {});

// Raw-moment variant for callers that share one A^T A across many right-hand
// sides (e.g. the convergence model's beta2 grid): skips wrapping the moments
// in a GramSystem per solve. atb.size() gives the dimensionality; solutions
// are identical to the GramSystem overload.
NnlsResult SolveNnlsGram(const Matrix& ata, const Vector& atb, double btb,
                         const NnlsOptions& options = {});

}  // namespace optimus

#endif  // SRC_SOLVER_NNLS_H_
