// Non-negative least squares (NNLS).
//
// Optimus fits both its convergence curve (Eqn 1) and its resource-speed
// models (Eqns 3/4) with NNLS; the paper uses SciPy's solver, which implements
// the active-set algorithm of Lawson & Hanson ("Solving Least Squares
// Problems", 1974, ch. 23). This is a from-scratch implementation of the same
// algorithm: minimize ||A x - b||_2 subject to x >= 0.

#ifndef SRC_SOLVER_NNLS_H_
#define SRC_SOLVER_NNLS_H_

#include "src/solver/matrix.h"

namespace optimus {

struct NnlsResult {
  // True when the active-set iteration converged (it virtually always does for
  // the small, well-posed systems Optimus produces).
  bool converged = false;
  // The non-negative solution; all entries are >= 0 even on non-convergence
  // (the best iterate found is returned).
  Vector x;
  // ||A x - b||_2^2 at the returned solution.
  double residual_sum_of_squares = 0.0;
  // Number of outer active-set iterations performed.
  int iterations = 0;
};

struct NnlsOptions {
  // Maximum outer iterations; Lawson-Hanson needs at most ~3n in practice.
  int max_iterations = 300;
  // Dual-feasibility tolerance, relative to the gradient scale.
  double tolerance = 1e-10;
};

// Solves min ||A x - b|| s.t. x >= 0.
NnlsResult SolveNnls(const Matrix& a, const Vector& b, const NnlsOptions& options = {});

}  // namespace optimus

#endif  // SRC_SOLVER_NNLS_H_
