#include "src/solver/matrix.h"

#include <cmath>

#include "src/common/logging.h"

namespace optimus {

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = i; j < cols_; ++j) {
      double sum = 0.0;
      for (size_t r = 0; r < rows_; ++r) {
        sum += (*this)(r, i) * (*this)(r, j);
      }
      g(i, j) = sum;
      g(j, i) = sum;
    }
  }
  return g;
}

Vector Matrix::TransposeTimes(const Vector& v) const {
  OPTIMUS_CHECK_EQ(v.size(), rows_);
  Vector out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out[c] += (*this)(r, c) * v[r];
    }
  }
  return out;
}

Vector Matrix::Times(const Vector& x) const {
  OPTIMUS_CHECK_EQ(x.size(), cols_);
  Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      sum += (*this)(r, c) * x[c];
    }
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::SelectColumns(const std::vector<size_t>& columns) const {
  Matrix out(rows_, columns.size());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < columns.size(); ++i) {
      OPTIMUS_CHECK_LT(columns[i], cols_);
      out(r, i) = (*this)(r, columns[i]);
    }
  }
  return out;
}

bool SolveSpd(const Matrix& m, const Vector& b, Vector* x) {
  const size_t n = m.rows();
  OPTIMUS_CHECK_EQ(m.cols(), n);
  OPTIMUS_CHECK_EQ(b.size(), n);
  OPTIMUS_CHECK(x != nullptr);
  if (n == 0) {
    x->clear();
    return true;
  }

  // Ridge scaled to the matrix magnitude keeps the Cholesky stable when the
  // fitting features are nearly collinear (common early in online fitting).
  double max_diag = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(m(i, i)));
  }
  const double ridge = max_diag * 1e-12 + 1e-300;

  // Cholesky: m = L L^T. The factor and intermediate vector are per-thread
  // scratch: these solves sit inside per-candidate fitting loops, and reusing
  // the buffers avoids an allocation storm without changing a single
  // arithmetic operation.
  static thread_local Matrix l;
  l.Assign(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = m(i, j);
      if (i == j) {
        sum += ridge;
      }
      for (size_t k = 0; k < j; ++k) {
        sum -= l(i, k) * l(j, k);
      }
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return false;
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }

  // Forward solve L y = b.
  static thread_local Vector y;
  y.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) {
      sum -= l(i, k) * y[k];
    }
    y[i] = sum / l(i, i);
  }

  // Back solve L^T x = y.
  x->assign(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) {
      sum -= l(k, ii) * (*x)[k];
    }
    (*x)[ii] = sum / l(ii, ii);
  }
  for (double v : *x) {
    if (!std::isfinite(v)) {
      return false;
    }
  }
  return true;
}

bool SolveLeastSquares(const Matrix& a, const Vector& b, Vector* x) {
  OPTIMUS_CHECK_EQ(b.size(), a.rows());
  return SolveSpd(a.Gram(), a.TransposeTimes(b), x);
}

double ResidualSumOfSquares(const Matrix& a, const Vector& x, const Vector& b) {
  const Vector pred = a.Times(x);
  double rss = 0.0;
  for (size_t r = 0; r < b.size(); ++r) {
    const double e = pred[r] - b[r];
    rss += e * e;
  }
  return rss;
}

double Dot(const Vector& a, const Vector& b) {
  OPTIMUS_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

}  // namespace optimus
