// Minimal dense matrix/vector math used by the least-squares solvers.
//
// The fitting problems in Optimus are tiny (tens-to-thousands of rows, at most
// five columns), so a straightforward row-major dense matrix with
// normal-equation / QR solves is both sufficient and easy to audit.

#ifndef SRC_SOLVER_MATRIX_H_
#define SRC_SOLVER_MATRIX_H_

#include <cstddef>
#include <vector>

namespace optimus {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Re-shapes in place to rows x cols filled with `fill`, reusing the existing
  // allocation when capacity allows. Lets hot solver loops keep one scratch
  // matrix alive instead of constructing a fresh one per call.
  void Assign(size_t rows, size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  // Returns A^T * A (cols x cols).
  Matrix Gram() const;

  // Returns A^T * v (length cols).
  Vector TransposeTimes(const Vector& v) const;

  // Returns A * x (length rows).
  Vector Times(const Vector& x) const;

  // Returns the submatrix keeping only the given columns, in order.
  Matrix SelectColumns(const std::vector<size_t>& columns) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// Solves the square symmetric positive-(semi)definite system M x = b by
// Cholesky factorization with a small diagonal ridge for numerical safety.
// Returns false if the system is too ill-conditioned to factor.
bool SolveSpd(const Matrix& m, const Vector& b, Vector* x);

// Ordinary least squares: minimizes ||A x - b||_2 via the normal equations.
// Returns false on (near-)singular A^T A.
bool SolveLeastSquares(const Matrix& a, const Vector& b, Vector* x);

// Residual sum of squares ||A x - b||_2^2.
double ResidualSumOfSquares(const Matrix& a, const Vector& x, const Vector& b);

// Euclidean dot product; vectors must have equal length.
double Dot(const Vector& a, const Vector& b);

}  // namespace optimus

#endif  // SRC_SOLVER_MATRIX_H_
