#include "src/solver/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace optimus {

void GramSystem::Add(const Vector& features, double target) {
  OPTIMUS_CHECK_EQ(features.size(), dims_);
  for (size_t i = 0; i < dims_; ++i) {
    for (size_t j = i; j < dims_; ++j) {
      const double v = ata_(i, j) + features[i] * features[j];
      ata_(i, j) = v;
      ata_(j, i) = v;
    }
    atb_[i] += features[i] * target;
  }
  btb_ += target * target;
  ++rows_;
}

void GramSystem::Reset() {
  ata_ = Matrix(dims_, dims_);
  atb_.assign(dims_, 0.0);
  btb_ = 0.0;
  rows_ = 0;
}

namespace {

// Least squares on the passive subset of the normal equations; entries outside
// the subset are zero in the returned full-length vector. The subset system is
// exactly what SelectColumns + Gram of a dense A would produce (same sums in
// the same order), so solutions match the dense path bit for bit.
bool SolveOnGramSubset(const Matrix& ata, const Vector& atb,
                       const std::vector<size_t>& passive, Vector* full) {
  const size_t k = passive.size();
  // Per-thread scratch: this sits inside the active-set inner loop, itself
  // inside per-candidate fitting grids; reusing buffers avoids ~5 allocations
  // per call with bit-identical arithmetic.
  static thread_local Matrix sub;
  static thread_local Vector rhs;
  static thread_local Vector z;
  sub.Assign(k, k);
  rhs.assign(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    rhs[i] = atb[passive[i]];
    for (size_t j = 0; j < k; ++j) {
      sub(i, j) = ata(passive[i], passive[j]);
    }
  }
  if (!SolveSpd(sub, rhs, &z)) {
    return false;
  }
  full->assign(atb.size(), 0.0);
  for (size_t i = 0; i < k; ++i) {
    (*full)[passive[i]] = z[i];
  }
  return true;
}

}  // namespace

NnlsResult SolveNnlsGram(const GramSystem& gram, const NnlsOptions& options) {
  return SolveNnlsGram(gram.ata(), gram.atb(), gram.btb(), options);
}

NnlsResult SolveNnlsGram(const Matrix& ata, const Vector& atb, double btb,
                         const NnlsOptions& options) {
  const size_t n = atb.size();

  NnlsResult result;
  result.x.assign(n, 0.0);

  static thread_local std::vector<bool> in_passive;
  static thread_local std::vector<size_t> passive;
  in_passive.assign(n, false);
  passive.clear();

  // Gradient scale for the relative dual tolerance (the gradient at x = 0 is
  // A^T b).
  double grad_scale = 0.0;
  for (double g : atb) {
    grad_scale = std::max(grad_scale, std::abs(g));
  }
  const double tol = options.tolerance * std::max(grad_scale, 1.0);

  static thread_local Vector x;
  static thread_local Vector w;
  x.assign(n, 0.0);
  w.assign(n, 0.0);
  int iter = 0;
  while (iter < options.max_iterations) {
    // Dual vector w = A^T b - A^T A x (== A^T (b - A x)).
    for (size_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (size_t j = 0; j < n; ++j) {
        dot += ata(i, j) * x[j];
      }
      w[i] = atb[i] - dot;
    }

    // Pick the most violated (largest-gradient) zero variable.
    double best_w = tol;
    size_t best_idx = n;
    for (size_t j = 0; j < n; ++j) {
      if (!in_passive[j] && w[j] > best_w) {
        best_w = w[j];
        best_idx = j;
      }
    }
    if (best_idx == n) {
      break;  // KKT conditions satisfied.
    }

    in_passive[best_idx] = true;
    passive.push_back(best_idx);

    // Inner loop: ensure the passive-set least-squares solution is feasible.
    while (true) {
      ++iter;
      static thread_local Vector z;
      if (!SolveOnGramSubset(ata, atb, passive, &z)) {
        // Numerically singular subset: drop the most recently added column.
        in_passive[passive.back()] = false;
        passive.pop_back();
        break;
      }

      bool feasible = true;
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        x = z;
        break;
      }

      // Step from x toward z as far as feasibility allows.
      double alpha = std::numeric_limits<double>::infinity();
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          const double denom = x[j] - z[j];
          if (denom > 0.0) {
            alpha = std::min(alpha, x[j] / denom);
          }
        }
      }
      if (!std::isfinite(alpha)) {
        alpha = 0.0;
      }
      for (size_t j = 0; j < n; ++j) {
        x[j] += alpha * (z[j] - x[j]);
      }

      // Move variables that hit zero back to the active set.
      static thread_local std::vector<size_t> next_passive;
      next_passive.clear();
      for (size_t j : passive) {
        if (x[j] > tol * 1e-4 && x[j] > 0.0) {
          next_passive.push_back(j);
        } else {
          x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      std::swap(passive, next_passive);
      if (passive.empty()) {
        break;
      }
      if (iter >= options.max_iterations) {
        break;
      }
    }
    if (iter >= options.max_iterations) {
      break;
    }
  }

  result.converged = iter < options.max_iterations;
  for (double& v : x) {
    v = std::max(v, 0.0);
  }
  result.x = x;
  result.iterations = iter;
  // ||Ax - b||^2 = b^T b - 2 x^T A^T b + x^T A^T A x; the Gram identity can
  // dip below zero by rounding on near-perfect fits, so clamp.
  double quad = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < n; ++j) {
      row += ata(i, j) * x[j];
    }
    quad += x[i] * row;
  }
  result.residual_sum_of_squares =
      std::max(0.0, btb - 2.0 * Dot(atb, x) + quad);
  return result;
}

NnlsResult SolveNnls(const Matrix& a, const Vector& b, const NnlsOptions& options) {
  OPTIMUS_CHECK_EQ(b.size(), a.rows());
  GramSystem gram(a.cols());
  Vector features(a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      features[c] = a(r, c);
    }
    gram.Add(features, b[r]);
  }
  NnlsResult result = SolveNnlsGram(gram, options);
  // With the dense A at hand, report the exact residual.
  result.residual_sum_of_squares = ResidualSumOfSquares(a, result.x, b);
  return result;
}

}  // namespace optimus
