#include "src/solver/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace optimus {

namespace {

// Least squares on the passive column subset; entries outside the subset are
// zero in the returned full-length vector.
bool SolveOnSubset(const Matrix& a, const Vector& b, const std::vector<size_t>& passive,
                   Vector* full) {
  const Matrix sub = a.SelectColumns(passive);
  Vector z;
  if (!SolveLeastSquares(sub, b, &z)) {
    return false;
  }
  full->assign(a.cols(), 0.0);
  for (size_t i = 0; i < passive.size(); ++i) {
    (*full)[passive[i]] = z[i];
  }
  return true;
}

}  // namespace

NnlsResult SolveNnls(const Matrix& a, const Vector& b, const NnlsOptions& options) {
  OPTIMUS_CHECK_EQ(b.size(), a.rows());
  const size_t n = a.cols();

  NnlsResult result;
  result.x.assign(n, 0.0);

  std::vector<bool> in_passive(n, false);
  std::vector<size_t> passive;

  // Gradient scale for the relative dual tolerance.
  Vector grad0 = a.TransposeTimes(b);
  double grad_scale = 0.0;
  for (double g : grad0) {
    grad_scale = std::max(grad_scale, std::abs(g));
  }
  const double tol = options.tolerance * std::max(grad_scale, 1.0);

  Vector x(n, 0.0);
  int iter = 0;
  while (iter < options.max_iterations) {
    // Dual vector w = A^T (b - A x).
    Vector residual = b;
    const Vector ax = a.Times(x);
    for (size_t r = 0; r < residual.size(); ++r) {
      residual[r] -= ax[r];
    }
    const Vector w = a.TransposeTimes(residual);

    // Pick the most violated (largest-gradient) zero variable.
    double best_w = tol;
    size_t best_idx = n;
    for (size_t j = 0; j < n; ++j) {
      if (!in_passive[j] && w[j] > best_w) {
        best_w = w[j];
        best_idx = j;
      }
    }
    if (best_idx == n) {
      break;  // KKT conditions satisfied.
    }

    in_passive[best_idx] = true;
    passive.push_back(best_idx);

    // Inner loop: ensure the passive-set least-squares solution is feasible.
    while (true) {
      ++iter;
      Vector z;
      if (!SolveOnSubset(a, b, passive, &z)) {
        // Numerically singular subset: drop the most recently added column.
        in_passive[passive.back()] = false;
        passive.pop_back();
        break;
      }

      bool feasible = true;
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        x = z;
        break;
      }

      // Step from x toward z as far as feasibility allows.
      double alpha = std::numeric_limits<double>::infinity();
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          const double denom = x[j] - z[j];
          if (denom > 0.0) {
            alpha = std::min(alpha, x[j] / denom);
          }
        }
      }
      if (!std::isfinite(alpha)) {
        alpha = 0.0;
      }
      for (size_t j = 0; j < n; ++j) {
        x[j] += alpha * (z[j] - x[j]);
      }

      // Move variables that hit zero back to the active set.
      std::vector<size_t> next_passive;
      for (size_t j : passive) {
        if (x[j] > tol * 1e-4 && x[j] > 0.0) {
          next_passive.push_back(j);
        } else {
          x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      passive = std::move(next_passive);
      if (passive.empty()) {
        break;
      }
      if (iter >= options.max_iterations) {
        break;
      }
    }
    if (iter >= options.max_iterations) {
      break;
    }
  }

  result.converged = iter < options.max_iterations;
  for (double& v : x) {
    v = std::max(v, 0.0);
  }
  result.x = x;
  result.iterations = iter;
  result.residual_sum_of_squares = ResidualSumOfSquares(a, x, b);
  return result;
}

}  // namespace optimus
