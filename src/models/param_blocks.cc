#include "src/models/param_blocks.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace optimus {

namespace {

uint64_t NameSeed(const std::string& name) {
  // FNV-1a; stable across platforms so block structures are reproducible.
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Splits `total` parameters into `count` blocks around total/count each, with
// +/-30% deterministic jitter. Sizes are kept >= 1.
std::vector<int64_t> SplitTier(int64_t total, int count, Rng* rng) {
  std::vector<int64_t> sizes;
  if (count <= 0 || total <= 0) {
    return sizes;
  }
  sizes.reserve(count);
  const double base = static_cast<double>(total) / count;
  int64_t assigned = 0;
  for (int i = 0; i < count; ++i) {
    const double jitter = rng->Uniform(0.7, 1.3);
    int64_t size = std::max<int64_t>(1, static_cast<int64_t>(base * jitter));
    sizes.push_back(size);
    assigned += size;
  }
  // Repair the rounding/jitter drift by spreading it across the tier while
  // respecting the >= 1 floor, so the tier sums exactly to `total`.
  int64_t drift = total - assigned;
  while (drift != 0) {
    bool progress = false;
    int64_t share = drift / static_cast<int64_t>(sizes.size());
    if (share == 0) {
      share = drift > 0 ? 1 : -1;
    }
    for (int64_t& s : sizes) {
      if (drift == 0) {
        break;
      }
      const int64_t adj = drift > 0 ? std::min(share, drift) : std::max(share, drift);
      const int64_t ns = std::max<int64_t>(1, s + adj);
      if (ns != s) {
        drift -= ns - s;
        s = ns;
        progress = true;
      }
    }
    if (!progress) {
      break;  // total < count would be required; callers guarantee otherwise.
    }
  }
  OPTIMUS_CHECK_EQ(drift, 0);
  return sizes;
}

}  // namespace

ParamBlockSizes GenerateParamBlocks(const ModelSpec& spec) {
  OPTIMUS_CHECK_GT(spec.num_param_blocks, 0);
  int64_t total = spec.TotalParams();
  OPTIMUS_CHECK_GE(total, spec.num_param_blocks);

  Rng rng(NameSeed(spec.name));

  int n = spec.num_param_blocks;

  // Embedding-dominated models: one dominant block first, tiers on the rest.
  ParamBlockSizes dominant;
  if (spec.dominant_block_params > 0) {
    OPTIMUS_CHECK_LT(spec.dominant_block_params, total);
    OPTIMUS_CHECK_GT(n, 1);
    dominant.push_back(spec.dominant_block_params);
    total -= spec.dominant_block_params;
    n -= 1;
  }
  // Tier sizing: ~1/16 of blocks are "large" (wide conv / FC / embedding)
  // holding 55% of parameters; a third are "medium" (regular conv / RNN gate
  // matrices) holding 42%; the rest are tiny bias / batch-norm vectors.
  const int n_large = std::max(1, (n + 8) / 16);
  const int n_medium = std::max(0, std::min(n - n_large, n / 3));
  const int n_small = n - n_large - n_medium;

  int64_t large_total = static_cast<int64_t>(0.55 * static_cast<double>(total));
  int64_t medium_total = static_cast<int64_t>(0.42 * static_cast<double>(total));
  if (n_medium == 0) {
    large_total += medium_total;
    medium_total = 0;
  }
  int64_t small_total = total - large_total - medium_total;
  if (n_small == 0) {
    // Fold the small share back into the medium (or large) tier.
    if (n_medium > 0) {
      medium_total += small_total;
    } else {
      large_total += small_total;
    }
    small_total = 0;
  }

  ParamBlockSizes blocks = dominant;
  blocks.reserve(n + blocks.size());
  for (int64_t s : SplitTier(large_total, n_large, &rng)) {
    blocks.push_back(s);
  }
  for (int64_t s : SplitTier(medium_total, n_medium, &rng)) {
    blocks.push_back(s);
  }
  for (int64_t s : SplitTier(small_total, n_small, &rng)) {
    blocks.push_back(s);
  }

  OPTIMUS_CHECK_EQ(static_cast<int>(blocks.size()), spec.num_param_blocks);
  const int64_t sum = std::accumulate(blocks.begin(), blocks.end(), int64_t{0});
  OPTIMUS_CHECK_EQ(sum, spec.TotalParams());
  return blocks;
}

}  // namespace optimus
