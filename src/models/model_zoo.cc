#include "src/models/model_zoo.h"

#include <algorithm>

#include "src/common/logging.h"

namespace optimus {

const char* NetworkTypeName(NetworkType type) {
  switch (type) {
    case NetworkType::kCnn:
      return "CNN";
    case NetworkType::kRnn:
      return "RNN";
  }
  return "UNKNOWN";
}

const char* TrainingModeName(TrainingMode mode) {
  switch (mode) {
    case TrainingMode::kAsync:
      return "async";
    case TrainingMode::kSync:
      return "sync";
  }
  return "UNKNOWN";
}

const char* CommModeName(CommMode comm) {
  switch (comm) {
    case CommMode::kParameterServer:
      return "ps";
    case CommMode::kAllReduce:
      return "allreduce";
  }
  return "UNKNOWN";
}

int64_t ModelSpec::StepsPerEpoch(int global_batch) const {
  OPTIMUS_CHECK_GT(global_batch, 0);
  return std::max<int64_t>(1, dataset_examples / global_batch);
}

namespace {

ModelSpec MakeModel(std::string name, double params_millions, NetworkType network,
                    std::string domain, std::string dataset, int64_t dataset_examples,
                    int sync_batch, int async_minibatch, ComputeProfile compute,
                    LossCurveParams loss, int num_param_blocks) {
  ModelSpec spec;
  spec.name = std::move(name);
  spec.params_millions = params_millions;
  spec.network = network;
  spec.domain = std::move(domain);
  spec.dataset = std::move(dataset);
  spec.dataset_examples = dataset_examples;
  spec.default_sync_batch = sync_batch;
  spec.default_async_minibatch = async_minibatch;
  spec.compute = compute;
  spec.loss = loss;
  spec.num_param_blocks = num_param_blocks;
  return spec;
}

std::vector<ModelSpec> BuildZoo() {
  std::vector<ModelSpec> zoo;

  // Compute constants are calibrated for 5-CPU-core containers so that
  // training speeds land in the 0.05..5 steps/s range the paper reports
  // (Figs 4, 9, 20), and so that the single-node completion times spread from
  // minutes (CNN-rand) to weeks (ResNet-50), as in Fig 2.

  zoo.push_back(MakeModel(
      "ResNext-110", 1.7, NetworkType::kCnn, "image classification", "CIFAR10", 60000,
      /*sync_batch=*/128, /*async_minibatch=*/16,
      ComputeProfile{.fwd_time_per_example_s = 0.03,
                     .min_effective_batch = 13,
                     .back_time_s = 0.9,
                     .update_time_full_s = 0.06,
                     .overhead_per_worker_s = 0.05,
                     .overhead_per_ps_s = 0.03},
      LossCurveParams{.c0 = 0.18, .c1 = 0.45, .c2 = 0.20, .noise_sd = 0.03,
                      .val_gap = 0.12, .max_accuracy = 0.94},
      /*num_param_blocks=*/327));

  zoo.push_back(MakeModel(
      "ResNet-50", 25.0, NetworkType::kCnn, "image classification",
      "ILSVRC2012-ImageNet", 1313788,
      /*sync_batch=*/128, /*async_minibatch=*/16,
      ComputeProfile{.fwd_time_per_example_s = 1.02,
                     .min_effective_batch = 13,
                     .back_time_s = 2.78,
                     .update_time_full_s = 0.8,
                     .overhead_per_worker_s = 0.25,
                     .overhead_per_ps_s = 0.12},
      LossCurveParams{.c0 = 0.22, .c1 = 0.14, .c2 = 0.90, .noise_sd = 0.02,
                      .val_gap = 0.10, .max_accuracy = 0.76},
      /*num_param_blocks=*/157));

  zoo.push_back(MakeModel(
      "Inception-BN", 11.3, NetworkType::kCnn, "image classification", "Caltech", 30607,
      /*sync_batch=*/64, /*async_minibatch=*/8,
      ComputeProfile{.fwd_time_per_example_s = 0.55,
                     .min_effective_batch = 6,
                     .back_time_s = 1.9,
                     .update_time_full_s = 0.36,
                     .overhead_per_worker_s = 0.15,
                     .overhead_per_ps_s = 0.08},
      LossCurveParams{.c0 = 0.30, .c1 = 0.25, .c2 = 0.55, .noise_sd = 0.03,
                      .val_gap = 0.15, .max_accuracy = 0.80},
      /*num_param_blocks=*/412));

  zoo.push_back(MakeModel(
      "KAGGLE", 1.4, NetworkType::kCnn, "image classification", "Kaggle-NDSB1", 37920,
      /*sync_batch=*/64, /*async_minibatch=*/8,
      ComputeProfile{.fwd_time_per_example_s = 0.08,
                     .min_effective_batch = 6,
                     .back_time_s = 0.7,
                     .update_time_full_s = 0.05,
                     .overhead_per_worker_s = 0.04,
                     .overhead_per_ps_s = 0.02},
      LossCurveParams{.c0 = 0.45, .c1 = 0.35, .c2 = 0.60, .noise_sd = 0.04,
                      .val_gap = 0.18, .max_accuracy = 0.70},
      /*num_param_blocks=*/58));

  zoo.push_back(MakeModel(
      "CNN-rand", 6.0, NetworkType::kCnn, "sentence classification", "MR", 10662,
      /*sync_batch=*/50, /*async_minibatch=*/50,
      ComputeProfile{.fwd_time_per_example_s = 0.015,
                     .min_effective_batch = 5,
                     .back_time_s = 0.35,
                     .update_time_full_s = 0.2,
                     .overhead_per_worker_s = 0.03,
                     .overhead_per_ps_s = 0.02},
      LossCurveParams{.c0 = 1.20, .c1 = 0.80, .c2 = 0.15, .noise_sd = 0.05,
                      .val_gap = 0.20, .max_accuracy = 0.81},
      /*num_param_blocks=*/24));
  // CNN-rand is embedding-dominated: a single 5.4M-parameter word-embedding
  // table holds 90% of the model.
  zoo.back().dominant_block_params = 5400000;

  zoo.push_back(MakeModel(
      "DSSM", 1.5, NetworkType::kRnn, "word representation", "text8", 214288,
      /*sync_batch=*/256, /*async_minibatch=*/64,
      ComputeProfile{.fwd_time_per_example_s = 0.008,
                     .min_effective_batch = 25,
                     .back_time_s = 0.4,
                     .update_time_full_s = 0.06,
                     .overhead_per_worker_s = 0.02,
                     .overhead_per_ps_s = 0.015},
      LossCurveParams{.c0 = 0.85, .c1 = 0.50, .c2 = 0.30, .noise_sd = 0.04,
                      .val_gap = 0.10, .max_accuracy = 0.65},
      /*num_param_blocks=*/34));
  // DSSM's 1.3M-parameter embedding dominates; above MXNet's slice threshold.
  zoo.back().dominant_block_params = 1300000;

  zoo.push_back(MakeModel(
      "RNN-LSTM-Dropout", 4.7, NetworkType::kRnn, "language modeling", "PTB", 1002000,
      /*sync_batch=*/128, /*async_minibatch=*/32,
      ComputeProfile{.fwd_time_per_example_s = 0.025,
                     .min_effective_batch = 13,
                     .back_time_s = 1.1,
                     .update_time_full_s = 0.16,
                     .overhead_per_worker_s = 0.06,
                     .overhead_per_ps_s = 0.03},
      LossCurveParams{.c0 = 0.26, .c1 = 0.18, .c2 = 0.75, .noise_sd = 0.03,
                      .val_gap = 0.12, .max_accuracy = 0.45},
      /*num_param_blocks=*/22));

  zoo.push_back(MakeModel(
      "Seq2Seq", 9.1, NetworkType::kRnn, "machine translation", "WMT17", 1000000,
      /*sync_batch=*/128, /*async_minibatch=*/32,
      ComputeProfile{.fwd_time_per_example_s = 0.12,
                     .min_effective_batch = 13,
                     .back_time_s = 2.2,
                     .update_time_full_s = 0.32,
                     .overhead_per_worker_s = 0.12,
                     .overhead_per_ps_s = 0.06},
      // The paper's Fig 7 fit for Seq2Seq (in progress units) is beta0=0.21,
      // beta1=1.07, beta2=0.07; we use the same shape family.
      LossCurveParams{.c0 = 0.21, .c1 = 1.07, .c2 = 0.07, .noise_sd = 0.025,
                      .val_gap = 0.10, .max_accuracy = 0.60},
      /*num_param_blocks=*/38));

  zoo.push_back(MakeModel(
      "DeepSpeech2", 38.0, NetworkType::kRnn, "speech recognition", "LibriSpeech", 45000,
      /*sync_batch=*/32, /*async_minibatch=*/8,
      ComputeProfile{.fwd_time_per_example_s = 2.0,
                     .min_effective_batch = 3,
                     .back_time_s = 6.0,
                     .update_time_full_s = 1.25,
                     .overhead_per_worker_s = 0.5,
                     .overhead_per_ps_s = 0.25},
      LossCurveParams{.c0 = 0.16, .c1 = 0.05, .c2 = 1.80, .noise_sd = 0.02,
                      .val_gap = 0.08, .max_accuracy = 0.88},
      /*num_param_blocks=*/86));

  // Batch-adaptivity and resource-sensitivity profiles, consumed only by the
  // policies that opt in (goodput reads the batch range + noise scale,
  // synergy reads the sensitivities); every pre-existing policy ignores them,
  // so adding them perturbs no fixed-batch trajectory. Batch ranges span
  // [M0/2, 4*M0]; phi (gradient noise scale, in examples) is larger for the
  // communication-heavy models that benefit from large batches; sensitivity
  // slopes are flat for the small / embedding-dominated models whose step
  // time is dominated by network transfer rather than local compute.
  struct PolicyProfile {
    const char* name;
    int min_batch;
    int max_batch;
    double phi;
    double cpu_sensitivity;
    double mem_sensitivity;
  };
  constexpr PolicyProfile kProfiles[] = {
      {"ResNext-110", 64, 512, 384.0, 0.9, 0.7},
      {"ResNet-50", 64, 512, 512.0, 1.0, 0.9},
      {"Inception-BN", 32, 256, 192.0, 0.9, 0.8},
      {"KAGGLE", 32, 256, 128.0, 0.6, 0.5},
      {"CNN-rand", 25, 200, 100.0, 0.5, 0.4},
      {"DSSM", 128, 1024, 768.0, 0.5, 0.5},
      {"RNN-LSTM-Dropout", 64, 512, 256.0, 0.8, 0.6},
      {"Seq2Seq", 64, 512, 640.0, 0.8, 0.7},
      {"DeepSpeech2", 16, 128, 96.0, 1.0, 1.0},
  };
  for (ModelSpec& spec : zoo) {
    for (const PolicyProfile& profile : kProfiles) {
      if (spec.name == profile.name) {
        spec.min_global_batch = profile.min_batch;
        spec.max_global_batch = profile.max_batch;
        spec.grad_noise_scale = profile.phi;
        spec.cpu_sensitivity = profile.cpu_sensitivity;
        spec.mem_sensitivity = profile.mem_sensitivity;
        break;
      }
    }
  }

  return zoo;
}

}  // namespace

const std::vector<ModelSpec>& GetModelZoo() {
  static const std::vector<ModelSpec>* zoo = new std::vector<ModelSpec>(BuildZoo());
  return *zoo;
}

const ModelSpec& FindModel(const std::string& name) {
  for (const ModelSpec& spec : GetModelZoo()) {
    if (spec.name == name) {
      return spec;
    }
  }
  OPTIMUS_LOG(Fatal) << "Unknown model: " << name;
  // Unreachable; Fatal aborts.
  return GetModelZoo().front();
}

}  // namespace optimus
