// The nine deep-learning workloads of Table 1 of the Optimus paper, as
// synthetic model specifications.
//
// The scheduler never inspects these specifications directly (the paper's
// whole point is that Optimus needs no knowledge of model internals); they
// exist to drive the *ground truth* of the simulator: how fast a step really
// takes under a given resource configuration, and how the training loss really
// evolves. Compute-time constants are calibrated so that relative magnitudes
// match the paper's reported behaviour (Fig 2 completion-time spread, Fig 4
// speed curves, Fig 5 loss-curve shapes).

#ifndef SRC_MODELS_MODEL_ZOO_H_
#define SRC_MODELS_MODEL_ZOO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace optimus {

enum class NetworkType {
  kCnn,
  kRnn,
};

const char* NetworkTypeName(NetworkType type);

// Distributed-training synchronization mode (§2.2).
enum class TrainingMode {
  kAsync,
  kSync,
};

const char* TrainingModeName(TrainingMode mode);

// Distributed-training communication architecture. Parameter-server jobs run
// dedicated PS tasks (Eqn 2); ring all-reduce jobs exchange gradients
// worker-to-worker over a logical ring and run no PS tasks at all.
enum class CommMode {
  kParameterServer,
  kAllReduce,
};

const char* CommModeName(CommMode comm);

// Ground-truth per-step compute costs on one worker / parameter-server
// container (the paper's testbed uses 5-CPU-core, 10-GB containers).
// These instantiate the terms of Eqn 2.
struct ComputeProfile {
  // Forward propagation per training example (m * t_fwd per step).
  double fwd_time_per_example_s = 0.0;
  // Batch-efficiency floor: per-worker mini-batches below this size stop
  // reducing compute time (vectorization / framework overhead dominates).
  // This is the paper's "smaller mini-batch size may cause CPU/GPU
  // under-utilization" effect that makes synchronous speed *decline* when too
  // many workers split a fixed global batch (Fig 4(b)).
  double min_effective_batch = 1.0;
  // Backward propagation per step (independent of mini-batch size, per §3.2).
  double back_time_s = 0.0;
  // Time to apply a full-model parameter update on a single PS container
  // (T_update in Eqn 2; a PS holding 1/p of the model spends T_update/p per
  // worker update it processes).
  double update_time_full_s = 0.0;
  // Communication overhead coefficients (delta, delta' in Eqn 2): per-step
  // cost that grows linearly with the number of workers / parameter servers.
  double overhead_per_worker_s = 0.0;
  double overhead_per_ps_s = 0.0;
};

// Ground-truth training-loss curve, in epoch units:
//   l(e) = 1 / (c0 * e + c1) + c2
// matching the SGD O(1/k) convergence model the paper fits (Eqn 1). Per-step
// loss uses e = step / steps_per_epoch.
struct LossCurveParams {
  double c0 = 0.0;
  double c1 = 0.0;
  double c2 = 0.0;
  // Standard deviation of multiplicative log-normal noise applied to each
  // observed per-step loss sample.
  double noise_sd = 0.0;
  // Validation loss sits above training loss by roughly this fraction.
  double val_gap = 0.1;
  // Asymptotic training accuracy, for Fig-1 style accuracy curves.
  double max_accuracy = 1.0;
};

struct ModelSpec {
  std::string name;
  double params_millions = 0.0;
  NetworkType network = NetworkType::kCnn;
  std::string domain;
  std::string dataset;
  int64_t dataset_examples = 0;
  // Global batch size M for synchronous training (per-worker m = M / w).
  int default_sync_batch = 0;
  // Per-worker mini-batch size m for asynchronous training.
  int default_async_minibatch = 0;
  ComputeProfile compute;
  LossCurveParams loss;
  // Number of parameter blocks (NN layers' weight/bias/BN tensors) the model
  // partitions into; drives the PS load-balancing experiments (§5.3).
  int num_param_blocks = 0;
  // For embedding-dominated models (word vectors): one block of this many
  // parameters dominates the model; 0 = no dominant block. MXNet's threshold
  // rule slices blocks above 10^6 parameters, so a large embedding ends up
  // evenly sharded even under the default algorithm.
  int64_t dominant_block_params = 0;
  double bytes_per_param = 4.0;

  // --- Batch-adaptivity surface (Pollux-style goodput policies) ----------
  // Admissible global-batch range for synchronous training when a policy is
  // allowed to co-adapt the batch with the allocation. 0/0 = the model does
  // not advertise a range (the batch stays fixed at the configured value).
  int min_global_batch = 0;
  int max_global_batch = 0;
  // Gradient-noise-scale parameter phi of the statistical-efficiency model
  // E(b) = (phi + M0) / (phi + b), in examples. Larger phi = efficiency
  // decays more slowly with batch size (large-batch friendly).
  double grad_noise_scale = 0.0;

  // --- Per-resource sensitivity profile (Synergy-style policies) ---------
  // How strongly step time depends on the CPU / memory grant, in [0, 1]
  // (1 = fully sensitive). Jobs may override per-job via JobSpec.
  double cpu_sensitivity = 1.0;
  double mem_sensitivity = 1.0;

  int64_t TotalParams() const { return static_cast<int64_t>(params_millions * 1e6); }
  int64_t ParamBytes() const {
    return static_cast<int64_t>(params_millions * 1e6 * bytes_per_param);
  }
  // Steps per epoch for a given global batch size (>= 1).
  int64_t StepsPerEpoch(int global_batch) const;
};

// Returns the nine Table-1 models. The returned reference is to a static
// immutable registry.
const std::vector<ModelSpec>& GetModelZoo();

// Looks up a model by name; fatal if absent.
const ModelSpec& FindModel(const std::string& name);

}  // namespace optimus

#endif  // SRC_MODELS_MODEL_ZOO_H_
