// Ground-truth training curves for synthetic jobs.
//
// A LossCurve evaluates the true (noise-free) training loss of a model at any
// epoch, draws noisy per-step loss observations (what a real framework would
// log), and answers ground-truth convergence queries. It supports an optional
// learning-rate-drop segment (paper §7 "Convergence estimation"): after the
// drop epoch, the loss continues from its current value along a second 1/x
// curve toward a lower floor.

#ifndef SRC_MODELS_LOSS_CURVE_H_
#define SRC_MODELS_LOSS_CURVE_H_

#include <cstdint>
#include <optional>

#include "src/common/rng.h"
#include "src/models/model_zoo.h"

namespace optimus {

struct LearningRateDrop {
  // Epoch at which the learning-rate change happens.
  double epoch = 0.0;
  // Post-drop curve parameters (same l = 1/(c0 e' + c1) + c2 family, with e'
  // measured from the drop point). c1 is recomputed internally to keep the
  // curve continuous, so only c0 and c2 matter here.
  double c0 = 0.0;
  double c2 = 0.0;
};

class LossCurve {
 public:
  LossCurve(LossCurveParams params, int64_t steps_per_epoch);
  LossCurve(LossCurveParams params, int64_t steps_per_epoch, LearningRateDrop drop);

  int64_t steps_per_epoch() const { return steps_per_epoch_; }

  // True (noise-free) training loss at a fractional epoch.
  double TrueLossAtEpoch(double epoch) const;
  double TrueLossAtStep(int64_t step) const;
  double InitialLoss() const { return TrueLossAtEpoch(0.0); }

  // Per-step loss observation with multiplicative log-normal noise.
  double SampleLossAtStep(int64_t step, Rng* rng) const;

  // Fig-1 style curves.
  double TrainAccuracyAtEpoch(double epoch) const;
  double ValidationLossAtEpoch(double epoch) const;
  double ValidationAccuracyAtEpoch(double epoch) const;

  // Ground-truth convergence epoch: the first epoch E such that the relative
  // per-epoch loss decrease stays below `delta` for `patience` consecutive
  // epochs ending at E (§2.1). Capped at `max_epochs`.
  int64_t EpochsToConverge(double delta, int patience, int64_t max_epochs = 100000) const;

 private:
  LossCurveParams params_;
  int64_t steps_per_epoch_;
  std::optional<LearningRateDrop> drop_;
  // c1 of the post-drop segment, solved for continuity at the drop epoch.
  double drop_c1_ = 0.0;
};

}  // namespace optimus

#endif  // SRC_MODELS_LOSS_CURVE_H_
