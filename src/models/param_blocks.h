// Parameter-block structure generation.
//
// MXNet (and comparable frameworks) shard a model across parameter servers at
// the granularity of "blocks" — the weight/bias/batch-norm tensors of each
// layer. Block-size distributions are highly skewed: a few huge embedding /
// fully-connected / wide-conv tensors dominate, alongside many tiny bias and
// batch-norm vectors. The PS load-balancing experiments (§5.3, Table 3,
// Figs 20-21) depend on exactly this skew, so the generator reproduces it:
// a small "large" tier holding most parameters, a "medium" tier, and a long
// tail of tiny blocks.

#ifndef SRC_MODELS_PARAM_BLOCKS_H_
#define SRC_MODELS_PARAM_BLOCKS_H_

#include <cstdint>
#include <vector>

#include "src/models/model_zoo.h"

namespace optimus {

// Sizes are in parameters (multiply by ModelSpec::bytes_per_param for bytes).
using ParamBlockSizes = std::vector<int64_t>;

// Deterministically generates the block-size list for a model: exactly
// spec.num_param_blocks blocks summing exactly to spec.TotalParams().
// The same spec always yields the same blocks.
ParamBlockSizes GenerateParamBlocks(const ModelSpec& spec);

}  // namespace optimus

#endif  // SRC_MODELS_PARAM_BLOCKS_H_
