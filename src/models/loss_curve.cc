#include "src/models/loss_curve.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace optimus {

LossCurve::LossCurve(LossCurveParams params, int64_t steps_per_epoch)
    : params_(params), steps_per_epoch_(steps_per_epoch) {
  OPTIMUS_CHECK_GT(steps_per_epoch_, 0);
  OPTIMUS_CHECK_GT(params_.c1, 0.0);
  OPTIMUS_CHECK_GE(params_.c0, 0.0);
  OPTIMUS_CHECK_GE(params_.c2, 0.0);
}

LossCurve::LossCurve(LossCurveParams params, int64_t steps_per_epoch,
                     LearningRateDrop drop)
    : LossCurve(params, steps_per_epoch) {
  OPTIMUS_CHECK_GT(drop.epoch, 0.0);
  OPTIMUS_CHECK_GT(drop.c0, 0.0);
  // Solve 1/(drop.c0 * 0 + c1) + drop.c2 == loss at the drop epoch, so the
  // piecewise curve is continuous.
  const double at_drop = TrueLossAtEpoch(drop.epoch);
  OPTIMUS_CHECK_GT(at_drop, drop.c2);
  drop_c1_ = 1.0 / (at_drop - drop.c2);
  drop_ = drop;
}

double LossCurve::TrueLossAtEpoch(double epoch) const {
  epoch = std::max(epoch, 0.0);
  if (drop_.has_value() && epoch > drop_->epoch) {
    const double e2 = epoch - drop_->epoch;
    return 1.0 / (drop_->c0 * e2 + drop_c1_) + drop_->c2;
  }
  return 1.0 / (params_.c0 * epoch + params_.c1) + params_.c2;
}

double LossCurve::TrueLossAtStep(int64_t step) const {
  return TrueLossAtEpoch(static_cast<double>(step) /
                         static_cast<double>(steps_per_epoch_));
}

double LossCurve::SampleLossAtStep(int64_t step, Rng* rng) const {
  OPTIMUS_CHECK(rng != nullptr);
  return TrueLossAtStep(step) * rng->LogNormalFactor(params_.noise_sd);
}

double LossCurve::TrainAccuracyAtEpoch(double epoch) const {
  // Accuracy rises as loss falls: map the normalized loss decrease onto
  // [0, max_accuracy]. At epoch 0 the accuracy is near chance (taken as a
  // small fraction of max), approaching max_accuracy as loss approaches its
  // floor c2.
  const double l0 = InitialLoss();
  const double floor = params_.c2;
  const double span = std::max(l0 - floor, 1e-9);
  const double progress = std::clamp((l0 - TrueLossAtEpoch(epoch)) / span, 0.0, 1.0);
  const double chance = 0.1 * params_.max_accuracy;
  return chance + (params_.max_accuracy - chance) * progress;
}

double LossCurve::ValidationLossAtEpoch(double epoch) const {
  // Validation loss tracks training loss with a gap that widens slightly as
  // training progresses (mild but bounded generalization gap; production
  // models are assumed not to overfit, §2.1).
  const double l = TrueLossAtEpoch(epoch);
  const double progress =
      std::clamp((InitialLoss() - l) / std::max(InitialLoss() - params_.c2, 1e-9), 0.0,
                 1.0);
  return l * (1.0 + params_.val_gap * (0.5 + 0.5 * progress));
}

double LossCurve::ValidationAccuracyAtEpoch(double epoch) const {
  return TrainAccuracyAtEpoch(epoch) * (1.0 - 0.5 * params_.val_gap);
}

int64_t LossCurve::EpochsToConverge(double delta, int patience,
                                    int64_t max_epochs) const {
  OPTIMUS_CHECK_GT(delta, 0.0);
  OPTIMUS_CHECK_GE(patience, 1);
  int consecutive = 0;
  double prev = TrueLossAtEpoch(0.0);
  for (int64_t e = 1; e <= max_epochs; ++e) {
    const double cur = TrueLossAtEpoch(static_cast<double>(e));
    const double rel_drop = prev > 0.0 ? (prev - cur) / prev : 0.0;
    if (rel_drop < delta) {
      ++consecutive;
      if (consecutive >= patience) {
        return e;
      }
    } else {
      consecutive = 0;
    }
    prev = cur;
  }
  return max_epochs;
}

}  // namespace optimus
