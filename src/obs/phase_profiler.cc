#include "src/obs/phase_profiler.h"

#include "src/common/logging.h"

namespace optimus {

void PhaseProfiler::AttachRegistry(MetricsRegistry* registry,
                                   const std::string& prefix) {
  OPTIMUS_CHECK(phases_.empty()) << "attach the registry before registering phases";
  registry_ = registry;
  prefix_ = prefix;
}

int PhaseProfiler::RegisterPhase(const std::string& name) {
  Phase phase;
  phase.name = name;
  if (registry_ != nullptr) {
    phase.gauge = registry_->AddGauge(
        prefix_ + name + "_seconds",
        "Accumulated host wall-clock seconds in the " + name +
            " phase (profiling only; nondeterministic).",
        /*profiling=*/true);
  }
  phases_.push_back(std::move(phase));
  return static_cast<int>(phases_.size()) - 1;
}

void PhaseProfiler::Add(int phase, double seconds) {
  Phase& p = phases_[static_cast<size_t>(phase)];
  p.seconds += seconds;
  if (p.gauge != nullptr) {
    p.gauge->Set(p.seconds);
  }
}

}  // namespace optimus
