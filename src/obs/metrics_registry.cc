#include "src/obs/metrics_registry.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/stats.h"

namespace optimus {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

Histogram::Histogram(std::string name, std::string help, std::vector<double> bounds,
                     bool profiling, size_t index)
    : Metric(MetricKind::kHistogram, std::move(name), std::move(help), profiling),
      index_(index),
      bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1, 0) {
  OPTIMUS_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  OPTIMUS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Record(double v) {
  // Upper-inclusive buckets (Prometheus `le`); values above the last finite
  // bound land in the +Inf overflow bucket.
  size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) {
    ++b;
  }
  ++buckets_[b];
  ++count_;
  sum_ += v;
}

double Histogram::Quantile(double q) const {
  return HistogramQuantile(bounds_, buckets_, q);
}

Counter* MetricsRegistry::AddCounter(std::string name, std::string help,
                                     bool profiling) {
  const bool inserted = by_name_.emplace(name, metrics_.size()).second;
  OPTIMUS_CHECK(inserted) << "duplicate metric name " << name;
  auto* c = new Counter(std::move(name), std::move(help), profiling, counters_.size());
  metrics_.emplace_back(c);
  counters_.push_back(c);
  return c;
}

Gauge* MetricsRegistry::AddGauge(std::string name, std::string help, bool profiling) {
  const bool inserted = by_name_.emplace(name, metrics_.size()).second;
  OPTIMUS_CHECK(inserted) << "duplicate metric name " << name;
  auto* g = new Gauge(std::move(name), std::move(help), profiling, gauges_.size());
  metrics_.emplace_back(g);
  gauges_.push_back(g);
  return g;
}

Histogram* MetricsRegistry::AddHistogram(std::string name, std::string help,
                                         std::vector<double> bounds, bool profiling) {
  const bool inserted = by_name_.emplace(name, metrics_.size()).second;
  OPTIMUS_CHECK(inserted) << "duplicate metric name " << name;
  auto* h = new Histogram(std::move(name), std::move(help), std::move(bounds),
                          profiling, histograms_.size());
  metrics_.emplace_back(h);
  histograms_.push_back(h);
  return h;
}

const Metric* MetricsRegistry::Find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : metrics_[it->second].get();
}

void MetricsRegistry::Merge(const MetricsShard& shard) {
  OPTIMUS_CHECK_EQ(shard.counter_adds_.size(), counters_.size())
      << "shard layout does not match the registry (register before sharding)";
  OPTIMUS_CHECK_EQ(shard.gauge_sets_.size(), gauges_.size());
  OPTIMUS_CHECK_EQ(shard.histograms_.size(), histograms_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (shard.counter_adds_[i] != 0.0) {
      counters_[i]->value_ += shard.counter_adds_[i];
    }
  }
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (shard.gauge_sets_[i].first) {
      gauges_[i]->value_ = shard.gauge_sets_[i].second;
    }
  }
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const MetricsShard::HistogramDelta& d = shard.histograms_[i];
    if (d.count == 0) {
      continue;
    }
    Histogram* h = histograms_[i];
    for (size_t b = 0; b < d.buckets.size(); ++b) {
      h->buckets_[b] += d.buckets[b];
    }
    h->count_ += d.count;
    h->sum_ += d.sum;
  }
}

MetricsShard::MetricsShard(const MetricsRegistry& registry)
    : counter_adds_(registry.counters_.size(), 0.0),
      gauge_sets_(registry.gauges_.size(), {false, 0.0}),
      histograms_(registry.histograms_.size()) {
  for (size_t i = 0; i < registry.histograms_.size(); ++i) {
    histograms_[i].buckets.assign(registry.histograms_[i]->buckets().size(), 0);
  }
}

void MetricsShard::Add(const Counter* counter, double v) {
  counter_adds_[counter->index_] += v;
}

void MetricsShard::Set(const Gauge* gauge, double v) {
  gauge_sets_[gauge->index_] = {true, v};
}

void MetricsShard::Record(const Histogram* histogram, double v) {
  size_t b = 0;
  const std::vector<double>& bounds = histogram->bounds();
  while (b < bounds.size() && v > bounds[b]) {
    ++b;
  }
  HistogramDelta& d = histograms_[histogram->index_];
  ++d.buckets[b];
  ++d.count;
  d.sum += v;
}

void MetricsShard::MergeFrom(const MetricsShard& other) {
  OPTIMUS_CHECK_EQ(other.counter_adds_.size(), counter_adds_.size());
  for (size_t i = 0; i < counter_adds_.size(); ++i) {
    counter_adds_[i] += other.counter_adds_[i];
  }
  for (size_t i = 0; i < gauge_sets_.size(); ++i) {
    if (other.gauge_sets_[i].first) {
      gauge_sets_[i] = other.gauge_sets_[i];
    }
  }
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const HistogramDelta& o = other.histograms_[i];
    HistogramDelta& d = histograms_[i];
    for (size_t b = 0; b < d.buckets.size(); ++b) {
      d.buckets[b] += o.buckets[b];
    }
    d.count += o.count;
    d.sum += o.sum;
  }
}

void MetricsShard::Reset() {
  std::fill(counter_adds_.begin(), counter_adds_.end(), 0.0);
  std::fill(gauge_sets_.begin(), gauge_sets_.end(), std::make_pair(false, 0.0));
  for (HistogramDelta& d : histograms_) {
    std::fill(d.buckets.begin(), d.buckets.end(), 0);
    d.count = 0;
    d.sum = 0.0;
  }
}

}  // namespace optimus
