// Deterministic metrics registry: named counters, gauges, and fixed-bucket
// histograms for the simulator's instrument panel.
//
// The whole control loop runs on measured signals (loss curves §3.1, sampled
// speeds §3.2, utilization and scaling overhead §6), so telemetry must not be
// an afterthought — but it also must not perturb the simulation or break the
// repo's determinism contract. The registry therefore follows the same rule
// as every other cross-thread structure in this codebase: shared state is
// only ever mutated serially, and parallel sections record into per-work-item
// shards that are merged in a caller-fixed (job/index) order. Under that
// contract every exported value is bitwise identical for any thread count.
//
// Determinism classes:
//   - deterministic metrics (default): derived from simulated state only;
//     identical across --threads and repeats, compared bitwise by tests.
//   - profiling metrics (profiling = true): host wall-clock measurements
//     (PhaseProfiler); exported for humans, excluded from determinism
//     comparisons and golden files (ExportOptions::include_profiling).
//
// Thread-safety: registration and direct mutation (Counter::Add, Gauge::Set,
// Histogram::Record) are serial-context operations. Parallel call sites must
// record into a MetricsShard per work item and merge the shards serially in
// index order (MetricsRegistry::Merge). The registry never takes locks.

#ifndef SRC_OBS_METRICS_REGISTRY_H_
#define SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace optimus {

class MetricsRegistry;
class MetricsShard;

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

// Shared metadata of one registered metric.
class Metric {
 public:
  virtual ~Metric() = default;

  MetricKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  // Profiling metrics carry host wall-clock values: exported, but excluded
  // from determinism comparisons and golden snapshots.
  bool profiling() const { return profiling_; }

 protected:
  Metric(MetricKind kind, std::string name, std::string help, bool profiling)
      : kind_(kind), name_(std::move(name)), help_(std::move(help)),
        profiling_(profiling) {}

 private:
  MetricKind kind_;
  std::string name_;
  std::string help_;
  bool profiling_;
};

// Monotonically non-decreasing total (Prometheus counter semantics; the value
// is a double so step counts such as rolled-back steps fit too).
class Counter : public Metric {
 public:
  // Direct increment; serial contexts only.
  void Add(double v = 1.0) { value_ += v; }
  // Mirrors a cumulative total maintained elsewhere (e.g. a RunMetrics field
  // or a per-job sum walked in job order); the caller guarantees monotonicity.
  void Set(double total) { value_ = total; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  friend class MetricsShard;
  Counter(std::string name, std::string help, bool profiling, size_t index)
      : Metric(MetricKind::kCounter, std::move(name), std::move(help), profiling),
        index_(index) {}

  size_t index_;  // position among the registry's counters
  double value_ = 0.0;
};

// Point-in-time value (last write wins).
class Gauge : public Metric {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  friend class MetricsShard;
  Gauge(std::string name, std::string help, bool profiling, size_t index)
      : Metric(MetricKind::kGauge, std::move(name), std::move(help), profiling),
        index_(index) {}

  size_t index_;
  double value_ = 0.0;
};

// Fixed-bucket histogram with Prometheus semantics: `bounds` are ascending
// finite upper bounds, each bucket is upper-inclusive (v <= bound), and an
// implicit +Inf bucket catches the overflow. Quantiles are estimated by
// linear interpolation inside the owning bucket (HistogramQuantile in
// common/stats), which is exact at bucket edges and approximate within.
class Histogram : public Metric {
 public:
  void Record(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) counts; size bounds().size() + 1, the last
  // entry being the +Inf overflow bucket.
  const std::vector<int64_t>& buckets() const { return buckets_; }
  int64_t count() const { return count_; }
  double sum() const { return sum_; }

  // Estimated q-quantile (q in [0, 1]); 0 when the histogram is empty.
  // Quantile(0.5) / Quantile(0.95) / Quantile(0.99) are the p50/p95/p99 the
  // exporters report.
  double Quantile(double q) const;

 private:
  friend class MetricsRegistry;
  friend class MetricsShard;
  Histogram(std::string name, std::string help, std::vector<double> bounds,
            bool profiling, size_t index);

  size_t index_;
  std::vector<double> bounds_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
};

// Per-work-item recording buffer for parallel sections. A shard is sized to
// the registry's layout at construction; recording into it touches only the
// shard. Merging shards back serially, in a caller-fixed order, reproduces
// the serial recording bit for bit:
//   - counter adds and histogram bucket counts are order-independent sums of
//     integers / exact doubles per shard;
//   - double accumulations (counter values, histogram sums) are applied in
//     the merge order the caller fixes, so one order -> one bit pattern;
//   - gauge sets apply last-merged-wins, again fixed by the merge order.
class MetricsShard {
 public:
  explicit MetricsShard(const MetricsRegistry& registry);

  void Add(const Counter* counter, double v = 1.0);
  void Set(const Gauge* gauge, double v);
  void Record(const Histogram* histogram, double v);

  // Folds `other` into this shard (hierarchical merges; same ordering caveat
  // as MetricsRegistry::Merge). Counter adds and histogram bucket counts are
  // exactly associative; double sums associate only along a fixed order.
  void MergeFrom(const MetricsShard& other);

  void Reset();

 private:
  friend class MetricsRegistry;

  struct HistogramDelta {
    std::vector<int64_t> buckets;
    int64_t count = 0;
    double sum = 0.0;
  };

  std::vector<double> counter_adds_;
  std::vector<std::pair<bool, double>> gauge_sets_;  // (written, value)
  std::vector<HistogramDelta> histograms_;
};

// Registry of named metrics. Registration order is the export order, so the
// export text is deterministic by construction. Names must be unique;
// re-registering a name is fatal.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration (serial, up-front — before any shard is constructed).
  Counter* AddCounter(std::string name, std::string help, bool profiling = false);
  Gauge* AddGauge(std::string name, std::string help, bool profiling = false);
  Histogram* AddHistogram(std::string name, std::string help,
                          std::vector<double> bounds, bool profiling = false);

  // Metrics in registration order.
  size_t size() const { return metrics_.size(); }
  const Metric& metric(size_t i) const { return *metrics_[i]; }

  // nullptr when no metric has that name.
  const Metric* Find(const std::string& name) const;

  // Applies one shard's recorded deltas. Callers with several shards must
  // merge them in a fixed order (index/job order) — that order is what makes
  // double accumulation deterministic.
  void Merge(const MetricsShard& shard);

 private:
  friend class MetricsShard;

  std::vector<std::unique_ptr<Metric>> metrics_;  // registration order
  std::map<std::string, size_t> by_name_;
  std::vector<Counter*> counters_;
  std::vector<Gauge*> gauges_;
  std::vector<Histogram*> histograms_;
};

}  // namespace optimus

#endif  // SRC_OBS_METRICS_REGISTRY_H_
