#include "src/obs/exporters.h"

#include <ostream>
#include <sstream>

#include "src/common/logging.h"
#include "src/obs/text_format.h"

namespace optimus {

using obs_internal::EscapeJson;
using obs_internal::FormatDouble17;

void MetricsSeries::Sample(double time_s, const MetricsRegistry& registry) {
  if (columns_.empty()) {
    for (size_t i = 0; i < registry.size(); ++i) {
      const Metric& m = registry.metric(i);
      if (m.profiling()) {
        continue;
      }
      if (m.kind() == MetricKind::kHistogram) {
        columns_.push_back(m.name() + "_count");
        columns_.push_back(m.name() + "_sum");
      } else {
        columns_.push_back(m.name());
      }
    }
  }
  std::vector<double> row;
  row.reserve(columns_.size());
  for (size_t i = 0; i < registry.size(); ++i) {
    const Metric& m = registry.metric(i);
    if (m.profiling()) {
      continue;
    }
    switch (m.kind()) {
      case MetricKind::kCounter:
        row.push_back(static_cast<const Counter&>(m).value());
        break;
      case MetricKind::kGauge:
        row.push_back(static_cast<const Gauge&>(m).value());
        break;
      case MetricKind::kHistogram: {
        const auto& h = static_cast<const Histogram&>(m);
        row.push_back(static_cast<double>(h.count()));
        row.push_back(h.sum());
        break;
      }
    }
  }
  OPTIMUS_CHECK_EQ(row.size(), columns_.size())
      << "metrics were registered after the first Sample()";
  times_.push_back(time_s);
  rows_.push_back(std::move(row));
}

void ExportPrometheus(const MetricsRegistry& registry, std::ostream& os,
                      const ExportOptions& options) {
  for (size_t i = 0; i < registry.size(); ++i) {
    const Metric& m = registry.metric(i);
    if (m.profiling() && !options.include_profiling) {
      continue;
    }
    os << "# HELP " << m.name() << " " << m.help() << "\n";
    os << "# TYPE " << m.name() << " " << MetricKindName(m.kind()) << "\n";
    switch (m.kind()) {
      case MetricKind::kCounter:
        os << m.name() << " " << FormatDouble17(static_cast<const Counter&>(m).value())
           << "\n";
        break;
      case MetricKind::kGauge:
        os << m.name() << " " << FormatDouble17(static_cast<const Gauge&>(m).value())
           << "\n";
        break;
      case MetricKind::kHistogram: {
        const auto& h = static_cast<const Histogram&>(m);
        int64_t cumulative = 0;
        for (size_t b = 0; b < h.bounds().size(); ++b) {
          cumulative += h.buckets()[b];
          os << m.name() << "_bucket{le=\"" << FormatDouble17(h.bounds()[b]) << "\"} "
             << cumulative << "\n";
        }
        os << m.name() << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        os << m.name() << "_sum " << FormatDouble17(h.sum()) << "\n";
        os << m.name() << "_count " << h.count() << "\n";
        break;
      }
    }
  }
}

std::string ExportPrometheusString(const MetricsRegistry& registry,
                                   const ExportOptions& options) {
  std::ostringstream os;
  ExportPrometheus(registry, os, options);
  return os.str();
}

void ExportJsonReport(const MetricsRegistry& registry, const MetricsSeries* series,
                      const FlightRecorder* flight, std::ostream& os,
                      const ExportOptions& options) {
  os << "{\n";
  os << "  \"format\": \"optimus-run-report-v1\",\n";

  // Final registry snapshot.
  os << "  \"metrics\": {";
  bool first = true;
  for (size_t i = 0; i < registry.size(); ++i) {
    const Metric& m = registry.metric(i);
    if (m.profiling() && !options.include_profiling) {
      continue;
    }
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << m.name() << "\": {\"type\": \"" << MetricKindName(m.kind())
       << "\"";
    if (m.profiling()) {
      os << ", \"profiling\": true";
    }
    switch (m.kind()) {
      case MetricKind::kCounter:
        os << ", \"value\": " << FormatDouble17(static_cast<const Counter&>(m).value());
        break;
      case MetricKind::kGauge:
        os << ", \"value\": " << FormatDouble17(static_cast<const Gauge&>(m).value());
        break;
      case MetricKind::kHistogram: {
        const auto& h = static_cast<const Histogram&>(m);
        os << ", \"count\": " << h.count() << ", \"sum\": " << FormatDouble17(h.sum());
        os << ", \"bounds\": [";
        for (size_t b = 0; b < h.bounds().size(); ++b) {
          os << (b == 0 ? "" : ", ") << FormatDouble17(h.bounds()[b]);
        }
        os << "], \"buckets\": [";
        for (size_t b = 0; b < h.buckets().size(); ++b) {
          os << (b == 0 ? "" : ", ") << h.buckets()[b];
        }
        os << "]";
        os << ", \"p50\": " << FormatDouble17(h.Quantile(0.50));
        os << ", \"p95\": " << FormatDouble17(h.Quantile(0.95));
        os << ", \"p99\": " << FormatDouble17(h.Quantile(0.99));
        break;
      }
    }
    os << "}";
  }
  os << (first ? "" : "\n  ") << "},\n";

  // Per-interval time series.
  os << "  \"series\": {";
  if (series != nullptr && series->num_rows() > 0) {
    os << "\n    \"columns\": [\"time_s\"";
    for (const std::string& c : series->columns()) {
      os << ", \"" << c << "\"";
    }
    os << "],\n    \"rows\": [";
    for (size_t r = 0; r < series->num_rows(); ++r) {
      os << (r == 0 ? "\n" : ",\n") << "      ["
         << FormatDouble17(series->times()[r]);
      for (double v : series->row(r)) {
        os << ", " << FormatDouble17(v);
      }
      os << "]";
    }
    os << "\n    ]\n  ";
  }
  os << "},\n";

  // Flight-recorder tail.
  os << "  \"flight_recorder\": ";
  if (flight != nullptr && flight->enabled()) {
    flight->WriteJson(os, 1);
  } else {
    os << "[]";
  }
  os << "\n}\n";
}

std::string ExportJsonReportString(const MetricsRegistry& registry,
                                   const MetricsSeries* series,
                                   const FlightRecorder* flight,
                                   const ExportOptions& options) {
  std::ostringstream os;
  ExportJsonReport(registry, series, flight, os, options);
  return os.str();
}

}  // namespace optimus
