// Flight recorder: a fixed-capacity ring buffer of recent structured events.
//
// When the invariant auditor flags a violation — or a faulted run dies — the
// question is always "what just happened?": which allocations moved, who got
// evicted, which servers flapped, what the auditor saw. The flight recorder
// keeps the last `depth` structured events (allocation decisions, evictions,
// checkpoints, fault transitions, audit results) at O(1) cost per event and
// dumps them on demand for post-mortem debugging.
//
// Determinism: events carry simulated time and simulated state only, and all
// record sites sit in the simulator's serial phases, so the full event
// sequence (including sequence numbers) is bitwise identical for any
// --threads value, with or without a fault plan.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace optimus {

enum class FlightEventKind {
  kScheduled,       // first allocation decision for a job
  kScaled,          // (p, w) changed for a running job
  kPaused,          // active job received no placeable resources
  kResumed,         // previously paused job running again
  kEvicted,         // job lost its tasks to a crashed server
  kCheckpoint,      // durable checkpoint taken (periodic or on scaling)
  kTaskFailed,      // container death; restored from checkpoint in place
  kServerCrash,
  kServerRecovered,
  kSlowdown,        // cluster-wide speed factor changed
  kCompleted,
  kAuditCheck,      // one auditor pass (value = violations so far)
  kAuditViolation,  // one reported violation (detail = invariant: ...)
};

const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  uint64_t seq = 0;      // monotone record index since construction
  double time_s = 0.0;   // simulated time
  FlightEventKind kind = FlightEventKind::kScheduled;
  int job_id = 0;        // -1 for cluster-scoped events
  int num_ps = 0;        // kind-specific integer args (allocation, server id)
  int num_workers = 0;
  double value = 0.0;    // kind-specific scalar (factor, violation count)
  std::string detail;
};

class FlightRecorder {
 public:
  // depth <= 0 constructs a disabled recorder: Record() is a no-op.
  explicit FlightRecorder(int depth);

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }
  // Events currently held (<= capacity).
  size_t size() const;
  // Total events ever recorded (size() + overwritten).
  uint64_t total_recorded() const { return next_seq_; }

  void Record(double time_s, FlightEventKind kind, int job_id, int num_ps = 0,
              int num_workers = 0, double value = 0.0, std::string detail = "");

  // Retained events, oldest first.
  std::vector<FlightEvent> Events() const;

  // Human-readable dump (one event per line), oldest first; used for the
  // on-violation post-mortem.
  void Dump(std::ostream& os) const;

  // JSON array of events, oldest first (deterministic field order).
  void WriteJson(std::ostream& os, int indent = 0) const;

 private:
  size_t capacity_;
  uint64_t next_seq_ = 0;
  std::vector<FlightEvent> ring_;  // slot = seq % capacity
};

}  // namespace optimus

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
