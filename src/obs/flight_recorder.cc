#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <ostream>

#include "src/obs/text_format.h"

namespace optimus {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kScheduled:
      return "scheduled";
    case FlightEventKind::kScaled:
      return "scaled";
    case FlightEventKind::kPaused:
      return "paused";
    case FlightEventKind::kResumed:
      return "resumed";
    case FlightEventKind::kEvicted:
      return "evicted";
    case FlightEventKind::kCheckpoint:
      return "checkpoint";
    case FlightEventKind::kTaskFailed:
      return "task-failed";
    case FlightEventKind::kServerCrash:
      return "server-crash";
    case FlightEventKind::kServerRecovered:
      return "server-recovered";
    case FlightEventKind::kSlowdown:
      return "slowdown";
    case FlightEventKind::kCompleted:
      return "completed";
    case FlightEventKind::kAuditCheck:
      return "audit-check";
    case FlightEventKind::kAuditViolation:
      return "audit-violation";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(int depth)
    : capacity_(depth > 0 ? static_cast<size_t>(depth) : 0) {
  if (capacity_ > 0) {
    ring_.reserve(capacity_);
  }
}

size_t FlightRecorder::size() const {
  return std::min<uint64_t>(next_seq_, capacity_);
}

void FlightRecorder::Record(double time_s, FlightEventKind kind, int job_id,
                            int num_ps, int num_workers, double value,
                            std::string detail) {
  if (capacity_ == 0) {
    return;
  }
  FlightEvent e;
  e.seq = next_seq_++;
  e.time_s = time_s;
  e.kind = kind;
  e.job_id = job_id;
  e.num_ps = num_ps;
  e.num_workers = num_workers;
  e.value = value;
  e.detail = std::move(detail);
  const size_t slot = static_cast<size_t>(e.seq % capacity_);
  if (slot < ring_.size()) {
    ring_[slot] = std::move(e);
  } else {
    ring_.push_back(std::move(e));
  }
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::vector<FlightEvent> out;
  const size_t n = size();
  out.reserve(n);
  const uint64_t first = next_seq_ - n;  // oldest retained sequence number
  for (uint64_t s = first; s < next_seq_; ++s) {
    out.push_back(ring_[static_cast<size_t>(s % capacity_)]);
  }
  return out;
}

void FlightRecorder::Dump(std::ostream& os) const {
  os << "flight recorder: " << size() << " of " << total_recorded()
     << " event(s) retained (depth " << capacity_ << ")\n";
  for (const FlightEvent& e : Events()) {
    os << "  [" << e.seq << "] t=" << obs_internal::FormatDouble17(e.time_s)
       << " " << FlightEventKindName(e.kind) << " job=" << e.job_id;
    if (e.num_ps != 0 || e.num_workers != 0) {
      os << " ps=" << e.num_ps << " workers=" << e.num_workers;
    }
    if (e.value != 0.0) {
      os << " value=" << obs_internal::FormatDouble17(e.value);
    }
    if (!e.detail.empty()) {
      os << " " << e.detail;
    }
    os << "\n";
  }
}

void FlightRecorder::WriteJson(std::ostream& os, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << "[";
  bool first = true;
  for (const FlightEvent& e : Events()) {
    os << (first ? "\n" : ",\n") << pad << "  {\"seq\": " << e.seq
       << ", \"time_s\": " << obs_internal::FormatDouble17(e.time_s)
       << ", \"kind\": \"" << FlightEventKindName(e.kind) << "\""
       << ", \"job\": " << e.job_id << ", \"ps\": " << e.num_ps
       << ", \"workers\": " << e.num_workers
       << ", \"value\": " << obs_internal::FormatDouble17(e.value)
       << ", \"detail\": \"" << obs_internal::EscapeJson(e.detail) << "\"}";
    first = false;
  }
  if (!first) {
    os << "\n" << pad;
  }
  os << "]";
}

}  // namespace optimus
