// Wall-clock phase profiling: named accumulators + an RAII scope timer.
//
// Subsumes the ad-hoc `wall_*` chrono blocks the simulator used to carry:
// each phase is registered once, timed with ScopedTimer around the phase
// body, and read back as accumulated host seconds. Wall times are profiling
// data only — they never feed back into simulated time or decisions, and
// when mirrored into a MetricsRegistry the gauges are flagged `profiling` so
// determinism comparisons and golden snapshots exclude them.

#ifndef SRC_OBS_PHASE_PROFILER_H_
#define SRC_OBS_PHASE_PROFILER_H_

#include <chrono>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"

namespace optimus {

class PhaseProfiler {
 public:
  // Registers a phase and returns its index (registration order). When a
  // registry is attached, also registers a profiling gauge named
  // `<prefix><name>_seconds` that mirrors the accumulated total.
  int RegisterPhase(const std::string& name);

  // Mirrors phase totals into `registry` as profiling gauges. Call before
  // RegisterPhase; pass nullptr (default state) for a standalone profiler.
  void AttachRegistry(MetricsRegistry* registry, const std::string& prefix);

  // Adds `seconds` to the phase total (ScopedTimer calls this on scope exit).
  void Add(int phase, double seconds);

  double seconds(int phase) const { return phases_[phase].seconds; }
  const std::string& name(int phase) const { return phases_[phase].name; }
  int num_phases() const { return static_cast<int>(phases_.size()); }

 private:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    Gauge* gauge = nullptr;  // profiling mirror; null without a registry
  };

  std::vector<Phase> phases_;
  MetricsRegistry* registry_ = nullptr;
  std::string prefix_;
};

// Accumulates the wall time of its scope into one profiler phase.
class ScopedTimer {
 public:
  ScopedTimer(PhaseProfiler* profiler, int phase)
      : profiler_(profiler), phase_(phase),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto end = std::chrono::steady_clock::now();
    profiler_->Add(phase_, std::chrono::duration<double>(end - start_).count());
  }

 private:
  PhaseProfiler* profiler_;
  int phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace optimus

#endif  // SRC_OBS_PHASE_PROFILER_H_
