// Exporters: Prometheus text format and a JSON time-series run report.
//
// Both exporters walk the registry in registration order and format numbers
// with 17 significant digits, so for a fixed simulation outcome the exported
// bytes are fixed too — the determinism tests compare exports bitwise across
// thread counts. Profiling metrics (host wall-clock) are included for human
// consumption by default and excluded (include_profiling = false) wherever
// bitwise stability matters: determinism comparisons and golden files.
//
// Formats:
//   Prometheus — standard text exposition: # HELP / # TYPE lines, counters
//     and gauges as single samples, histograms as cumulative `_bucket{le=..}`
//     samples plus `_sum` / `_count`.
//   JSON run report — one self-contained object: the final registry snapshot
//     (histograms with buckets and p50/p95/p99), the per-interval time series
//     sampled by MetricsSeries, and the flight-recorder tail.

#ifndef SRC_OBS_EXPORTERS_H_
#define SRC_OBS_EXPORTERS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics_registry.h"

namespace optimus {

struct ExportOptions {
  // Include profiling (wall-clock) metrics. Turn off for determinism
  // comparisons and golden snapshots.
  bool include_profiling = true;
};

// Per-interval snapshots of the registry's deterministic scalar values:
// every non-profiling counter and gauge, plus `_count` / `_sum` per
// non-profiling histogram. The column set is frozen at the first Sample()
// call (register all metrics first); every row carries one value per column.
class MetricsSeries {
 public:
  void Sample(double time_s, const MetricsRegistry& registry);

  size_t num_rows() const { return times_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& row(size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> columns_;
  std::vector<double> times_;
  std::vector<std::vector<double>> rows_;
};

// Prometheus text exposition of the registry.
void ExportPrometheus(const MetricsRegistry& registry, std::ostream& os,
                      const ExportOptions& options = {});
std::string ExportPrometheusString(const MetricsRegistry& registry,
                                   const ExportOptions& options = {});

// JSON run report: final registry snapshot + per-interval series + flight
// recorder tail. `series` and `flight` may be null (sections are emitted
// empty).
void ExportJsonReport(const MetricsRegistry& registry, const MetricsSeries* series,
                      const FlightRecorder* flight, std::ostream& os,
                      const ExportOptions& options = {});
std::string ExportJsonReportString(const MetricsRegistry& registry,
                                   const MetricsSeries* series,
                                   const FlightRecorder* flight,
                                   const ExportOptions& options = {});

}  // namespace optimus

#endif  // SRC_OBS_EXPORTERS_H_
