// Shared text-formatting helpers for the observability exporters.
//
// All exported numbers go through FormatDouble17 (up to 17 significant
// digits, default float format), which round-trips doubles exactly — the
// property the bitwise-determinism tests and golden files rely on. Integral
// values print without a trailing ".0" ("42", not "42.0").

#ifndef SRC_OBS_TEXT_FORMAT_H_
#define SRC_OBS_TEXT_FORMAT_H_

#include <cmath>
#include <iomanip>
#include <sstream>
#include <string>

namespace optimus {
namespace obs_internal {

inline std::string FormatDouble17(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

// Minimal JSON string escaping (quotes, backslashes, control characters).
inline std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs_internal
}  // namespace optimus

#endif  // SRC_OBS_TEXT_FORMAT_H_
