// Workload generator suite for the scenario engine.
//
// Extends the §6.1 generator (src/sim/workload.h, kept intact for the golden
// benches) with the arrival processes and size distributions the paper's
// trace discussion motivates: Poisson and diurnal (day/night sinusoid, §6.3's
// production-trace shape) arrivals, heavy-tailed Pareto / log-normal job
// sizes (most jobs small, a few huge — Fig 2's completion-time spread), and
// an explicit model mix over the Table-1 zoo.
//
// Determinism contract: every job i draws its attributes from its own
// rng->Split(kJobAttributeStreamBase + i) stream and arrivals come from a
// dedicated split stream, so adding a job or reordering attribute reads never
// perturbs other jobs' draws. The same (seed, spec) pair yields the same jobs
// on any platform and thread count.

#ifndef SRC_WORKLOAD_GENERATORS_H_
#define SRC_WORKLOAD_GENERATORS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/cluster/job.h"
#include "src/common/rng.h"

namespace optimus {

// RNG stream ids (offsets under the workload's root Rng).
inline constexpr uint64_t kArrivalStream = 1;
inline constexpr uint64_t kJobAttributeStreamBase = 1000;

struct ArrivalSpec {
  enum class Kind {
    kUniform,  // uniform over [0, window_s]
    kPoisson,  // homogeneous Poisson at rate_per_interval / interval_s
    kBursty,   // Google-trace-like: quiet background + spike intervals
    kDiurnal,  // sinusoidal-rate Poisson with a peak/trough ratio
  };
  Kind kind = Kind::kUniform;
  double window_s = 12000.0;
  double rate_per_interval = 3.0;
  double interval_s = 600.0;
  // Bursty: fraction of intervals that spike, and the spike's rate multiple.
  double spike_fraction = 0.15;
  double spike_multiplier = 5.0;
  // Diurnal: sinusoid period and peak-rate / trough-rate ratio (>= 1; 1 =
  // plain Poisson).
  double period_s = 86400.0;
  double peak_to_trough = 4.0;
};

const char* ArrivalKindName(ArrivalSpec::Kind kind);
// Parses "uniform" | "poisson" | "bursty" | "diurnal"; false on other input.
bool ParseArrivalKind(const std::string& name, ArrivalSpec::Kind* kind);

struct JobSizeSpec {
  enum class Kind {
    kZoo,        // model-default sizes (downscale cap only)
    kPareto,     // multiply work by min(Pareto(alpha), cap)
    kLognormal,  // multiply work by LogNormal(sigma), median 1
  };
  Kind kind = Kind::kZoo;
  double pareto_alpha = 1.5;
  double pareto_cap = 8.0;
  double lognormal_sigma = 0.8;
  // Dataset downscale cap before the size multiplier (0 = full dataset);
  // mirrors WorkloadConfig::target_steps_per_epoch.
  int64_t target_steps_per_epoch = 20;
};

const char* JobSizeKindName(JobSizeSpec::Kind kind);
bool ParseJobSizeKind(const std::string& name, JobSizeSpec::Kind* kind);

// Which Table-1 models jobs draw, and how often. Empty names = whole zoo.
// Weights (when present) pair with names / the zoo order; they need not sum
// to 1. With cycle_first, the first min(num_jobs, |mix|) jobs deterministically
// cycle the mix (the paper's testbed runs one of each model) and only later
// jobs sample from the weights.
struct ModelMixSpec {
  std::vector<std::string> names;
  std::vector<double> weights;
  bool cycle_first = true;
};

struct WorkloadSpec {
  int num_jobs = 9;
  ArrivalSpec arrivals;
  JobSizeSpec sizes;
  ModelMixSpec models;
  // nullopt = each job flips a fair coin between sync and async (§6.1).
  std::optional<TrainingMode> forced_mode;
  // Base communication architecture for every job. All-reduce jobs are always
  // synchronous (the ring has no staleness notion), so comm = allreduce
  // overrides the mode coin with kSync.
  CommMode comm = CommMode::kParameterServer;
  // When > 0, each PS-mode job independently flips to ring all-reduce with
  // this probability (the mixed-fabric workloads of the network scenarios).
  // The flip draws from the job's own attribute stream *after* all existing
  // draws and only when the fraction is nonzero, so historical workloads'
  // RNG streams are unperturbed.
  double allreduce_fraction = 0.0;
  // Convergence-threshold range (§6.1: 1%..5%).
  double delta_lo = 0.01;
  double delta_hi = 0.05;
  int patience = 3;
  Resources worker_demand{2.5, 10, 0, 0.15};
  Resources ps_demand{2.5, 10, 0, 0.15};
  int max_ps = 16;
  int max_workers = 16;

  // Per-job batch-adaptivity bounds for batch-aware policies (0 = model
  // default; batch_min == batch_max pins the batch). Copied verbatim into
  // every JobSpec — no RNG draws, so setting them never perturbs the job
  // attribute streams.
  int batch_min = 0;
  int batch_max = 0;
  // Per-job sensitivity overrides for resource-sensitive policies; negative
  // (default) = model profile.
  double cpu_sensitivity = -1.0;
  double mem_sensitivity = -1.0;

  // Structural validation ("field: problem" messages, workload.-prefixed by
  // the scenario loader). Checks ranges and that every model name exists.
  bool Validate(std::vector<std::string>* errors) const;
};

// Generates `spec.num_jobs` jobs with ids 0..n-1 sorted by arrival time.
// Fatal on an invalid spec (call Validate for recoverable checking).
std::vector<JobSpec> GenerateJobs(const WorkloadSpec& spec, Rng* rng);

}  // namespace optimus

#endif  // SRC_WORKLOAD_GENERATORS_H_
