#include "src/workload/scenario.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/sim/experiment.h"
#include "src/sim/fault_injector.h"
#include "src/workload/json.h"

namespace optimus {

// ---------------------------------------------------------------------------
// ClusterSpec
// ---------------------------------------------------------------------------

int ClusterSpec::NumServers() const {
  if (testbed) {
    return static_cast<int>(BuildTestbed().size());
  }
  int n = 0;
  for (const ServerClassSpec& c : classes) {
    n += c.count;
  }
  return n;
}

int ClusterSpec::NumRacks() const {
  const int n = NumServers();
  if (rack_size <= 0 || n == 0) {
    return 1;
  }
  return (n + rack_size - 1) / rack_size;
}

std::pair<int, int> ClusterSpec::RackRange(int rack) const {
  const int n = NumServers();
  OPTIMUS_CHECK(rack >= 0 && rack < NumRacks())
      << "rack " << rack << " out of range (cluster has " << NumRacks()
      << " rack(s))";
  if (rack_size <= 0) {
    return {0, n - 1};
  }
  const int first = rack * rack_size;
  const int last = std::min(n - 1, first + rack_size - 1);
  return {first, last};
}

std::vector<Server> ClusterSpec::Build() const {
  {
    std::vector<std::string> errors;
    if (!Validate(&errors)) {
      std::string joined;
      for (const std::string& e : errors) {
        joined += (joined.empty() ? "" : "; ") + e;
      }
      OPTIMUS_LOG(Fatal) << "invalid ClusterSpec: " << joined;
    }
  }
  if (testbed) {
    return BuildTestbed();
  }
  std::vector<Server> servers;
  servers.reserve(static_cast<size_t>(NumServers()));
  int id = 0;
  for (const ServerClassSpec& c : classes) {
    for (int i = 0; i < c.count; ++i) {
      servers.emplace_back(id++, c.capacity);
    }
  }
  return servers;
}

bool ClusterSpec::Validate(std::vector<std::string>* errors) const {
  std::vector<std::string> local;
  if (testbed) {
    if (!classes.empty()) {
      local.push_back("cluster.classes: must be absent when testbed is true");
    }
  } else {
    if (classes.empty()) {
      local.push_back("cluster.classes: need at least one server class");
    }
    for (size_t i = 0; i < classes.size(); ++i) {
      const ServerClassSpec& c = classes[i];
      const std::string field = "cluster.classes[" + std::to_string(i) + "]";
      if (c.name.empty()) {
        local.push_back(field + ".name: must not be empty");
      }
      if (c.count < 1) {
        local.push_back(field + ".count: must be >= 1");
      }
      if (!(c.capacity.cpu() > 0.0)) {
        local.push_back(field + ".cpu: must be > 0");
      }
      if (!(c.capacity.memory_gb() > 0.0)) {
        local.push_back(field + ".memory_gb: must be > 0");
      }
      if (c.capacity.gpu() < 0.0) {
        local.push_back(field + ".gpu: must be >= 0");
      }
      if (c.capacity.bandwidth_gbps() < 0.0) {
        local.push_back(field + ".bandwidth_gbps: must be >= 0");
      }
    }
  }
  if (rack_size < 0) {
    local.push_back("cluster.rack_size: must be >= 0 (0 = one rack)");
  }
  const bool ok = local.empty();
  if (errors != nullptr) {
    errors->insert(errors->end(), local.begin(), local.end());
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Rack-reference expansion
// ---------------------------------------------------------------------------

bool ExpandRackReferences(const std::string& plan, const ClusterSpec& cluster,
                          std::string* expanded, std::string* error) {
  OPTIMUS_CHECK(expanded != nullptr);
  std::string out;
  out.reserve(plan.size());
  size_t i = 0;
  while (i < plan.size()) {
    // A rack *parameter* is "rack=" preceded by ':' or ',' (the event name
    // "rack@..." is followed by '@', never '=').
    if (plan.compare(i, 5, "rack=") == 0 && i > 0 &&
        (plan[i - 1] == ':' || plan[i - 1] == ',')) {
      size_t j = i + 5;
      size_t digits = 0;
      int rack = 0;
      while (j < plan.size() && plan[j] >= '0' && plan[j] <= '9') {
        rack = rack * 10 + (plan[j] - '0');
        ++j;
        ++digits;
      }
      if (digits == 0) {
        if (error != nullptr) {
          *error = "fault plan: rack= needs a rack index";
        }
        return false;
      }
      if (rack >= cluster.NumRacks()) {
        if (error != nullptr) {
          *error = "fault plan: rack " + std::to_string(rack) +
                   " out of range (cluster has " +
                   std::to_string(cluster.NumRacks()) + " rack(s))";
        }
        return false;
      }
      const std::pair<int, int> range = cluster.RackRange(rack);
      out += "servers=" + std::to_string(range.first) + "-" +
             std::to_string(range.second);
      i = j;
      continue;
    }
    out += plan[i];
    ++i;
  }
  *expanded = std::move(out);
  return true;
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

bool ScenarioSpec::Validate(std::vector<std::string>* errors) const {
  std::vector<std::string> local;
  if (name.empty()) {
    local.push_back("name: must not be empty");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) {
      local.push_back(
          "name: must match [a-z0-9_-]+ (it names report files); got \"" +
          name + "\"");
      break;
    }
  }
  if (repeats < 1) {
    local.push_back("repeats: must be >= 1");
  }
  if (policies.empty()) {
    local.push_back("policies: need at least one policy");
  }
  for (size_t i = 0; i < policies.size(); ++i) {
    if (!SchedulerRegistry::Global().Has(policies[i])) {
      local.push_back("policies[" + std::to_string(i) + "]: " +
                      SchedulerRegistry::Global().UnknownPolicyMessage(policies[i]));
    }
    for (size_t j = 0; j < i; ++j) {
      if (policies[j] == policies[i]) {
        local.push_back("policies[" + std::to_string(i) + "]: duplicate \"" +
                        policies[i] + "\"");
        break;
      }
    }
  }
  {
    std::vector<std::string> sub;
    if (!workload.Validate(&sub)) {
      for (const std::string& e : sub) {
        local.push_back("workload." + e);
      }
    }
  }
  cluster.Validate(&local);
  {
    std::vector<std::string> sub;
    if (!sim.Validate(&sub)) {
      for (const std::string& e : sub) {
        local.push_back("knobs: " + e);
      }
    }
  }
  // Fault plans name concrete servers; make sure they exist in *this*
  // cluster (the injector would silently ignore them, which in a declarative
  // scenario is a typo, not a feature).
  const int num_servers = cluster.NumServers();
  for (size_t i = 0; i < sim.fault.plan.outages.size(); ++i) {
    for (int s : sim.fault.plan.outages[i].servers) {
      if (s < 0 || s >= num_servers) {
        local.push_back("faults.plan: outage " + std::to_string(i) +
                        " names server " + std::to_string(s) +
                        " outside the cluster (0-" +
                        std::to_string(num_servers - 1) + ")");
      }
    }
  }
  const bool ok = local.empty();
  if (errors != nullptr) {
    errors->insert(errors->end(), local.begin(), local.end());
  }
  return ok;
}

SimulatorConfig ScenarioSpec::MakeSimConfig(const std::string& policy,
                                            int repeat) const {
  SimulatorConfig config = sim;
  std::string error;
  OPTIMUS_CHECK(ApplySchedulerPolicy(policy, &config, &error)) << error;
  config.seed = seed + static_cast<uint64_t>(repeat);
  // Shard boundaries align to the scenario's rack layout (0 = one rack).
  config.rack_size = cluster.rack_size;
  return config;
}

std::vector<JobSpec> ScenarioSpec::JobsForRepeat(int repeat) const {
  // Same salt as optimus_sim's workload stream, so a scenario with the
  // paper's defaults replays the CLI's workload exactly.
  Rng rng((seed + static_cast<uint64_t>(repeat)) ^ 0x5eedULL);
  return GenerateJobs(workload, &rng);
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

// Accumulates "<source>:<line>:<col>: <path>: message" diagnostics; parsing
// continues past errors where safe so one load reports every problem.
class ScenarioParser {
 public:
  explicit ScenarioParser(std::string source) : source_(std::move(source)) {}

  bool ok() const { return errors_.empty(); }
  std::string JoinedErrors() const {
    std::string joined;
    for (const std::string& e : errors_) {
      joined += (joined.empty() ? "" : "; ") + e;
    }
    return joined;
  }

  void Error(const JsonValue& at, const std::string& path,
             const std::string& message) {
    errors_.push_back(source_ + ":" + std::to_string(at.line()) + ":" +
                      std::to_string(at.column()) + ": " + path + ": " + message);
  }

  // Rejects keys outside `allowed` (strict mode: a typo'd knob must not
  // silently become a default).
  void CheckKeys(const JsonValue& obj, const std::string& path,
                 const std::vector<std::string>& allowed) {
    for (const std::string& key : obj.Keys()) {
      bool found = false;
      for (const std::string& a : allowed) {
        if (key == a) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::string keys;
        for (const std::string& a : allowed) {
          keys += (keys.empty() ? "" : ", ") + a;
        }
        Error(*obj.Find(key), path,
              "unknown key \"" + key + "\" (allowed: " + keys + ")");
      }
    }
  }

  // Typed field readers: missing keys keep the default, wrong types are
  // diagnosed, numbers destined for integers must be integral.
  void ReadDouble(const JsonValue& obj, const std::string& key,
                  const std::string& path, double* out) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr) {
      return;
    }
    if (!v->is_number()) {
      Error(*v, path + "." + key,
            std::string("expected a number, got ") + JsonTypeName(v->type()));
      return;
    }
    *out = v->AsDouble();
  }

  void ReadInt(const JsonValue& obj, const std::string& key,
               const std::string& path, int64_t* out) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr) {
      return;
    }
    if (!v->is_number() || v->AsDouble() != std::floor(v->AsDouble()) ||
        std::abs(v->AsDouble()) > 9.007199254740992e15) {
      Error(*v, path + "." + key,
            std::string("expected an integer, got ") +
                (v->is_number() ? "a non-integral number"
                                : JsonTypeName(v->type())));
      return;
    }
    *out = static_cast<int64_t>(v->AsDouble());
  }

  void ReadIntField(const JsonValue& obj, const std::string& key,
                    const std::string& path, int* out) {
    int64_t wide = *out;
    ReadInt(obj, key, path, &wide);
    *out = static_cast<int>(wide);
  }

  void ReadBool(const JsonValue& obj, const std::string& key,
                const std::string& path, bool* out) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr) {
      return;
    }
    if (!v->is_bool()) {
      Error(*v, path + "." + key,
            std::string("expected a boolean, got ") + JsonTypeName(v->type()));
      return;
    }
    *out = v->AsBool();
  }

  void ReadString(const JsonValue& obj, const std::string& key,
                  const std::string& path, std::string* out) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr) {
      return;
    }
    if (!v->is_string()) {
      Error(*v, path + "." + key,
            std::string("expected a string, got ") + JsonTypeName(v->type()));
      return;
    }
    *out = v->AsString();
  }

  void ParseResources(const JsonValue& obj, const std::string& path,
                      Resources* out) {
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path, {"cpu", "memory_gb", "gpu", "bandwidth_gbps"});
    double cpu = out->cpu();
    double memory_gb = out->memory_gb();
    double gpu = out->gpu();
    double bandwidth = out->bandwidth_gbps();
    ReadDouble(obj, "cpu", path, &cpu);
    ReadDouble(obj, "memory_gb", path, &memory_gb);
    ReadDouble(obj, "gpu", path, &gpu);
    ReadDouble(obj, "bandwidth_gbps", path, &bandwidth);
    *out = Resources(cpu, memory_gb, gpu, bandwidth);
  }

  void ParseArrivals(const JsonValue& obj, ArrivalSpec* out) {
    const std::string path = "workload.arrivals";
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path,
              {"kind", "window_s", "rate_per_interval", "interval_s",
               "spike_fraction", "spike_multiplier", "period_s",
               "peak_to_trough"});
    std::string kind = ArrivalKindName(out->kind);
    ReadString(obj, "kind", path, &kind);
    if (!ParseArrivalKind(kind, &out->kind)) {
      Error(*obj.Find("kind"), path + ".kind",
            "unknown arrival kind \"" + kind +
                "\" (expected uniform, poisson, bursty, diurnal)");
    }
    ReadDouble(obj, "window_s", path, &out->window_s);
    ReadDouble(obj, "rate_per_interval", path, &out->rate_per_interval);
    ReadDouble(obj, "interval_s", path, &out->interval_s);
    ReadDouble(obj, "spike_fraction", path, &out->spike_fraction);
    ReadDouble(obj, "spike_multiplier", path, &out->spike_multiplier);
    ReadDouble(obj, "period_s", path, &out->period_s);
    ReadDouble(obj, "peak_to_trough", path, &out->peak_to_trough);
  }

  void ParseSizes(const JsonValue& obj, JobSizeSpec* out) {
    const std::string path = "workload.sizes";
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path,
              {"kind", "pareto_alpha", "pareto_cap", "lognormal_sigma",
               "target_steps_per_epoch"});
    std::string kind = JobSizeKindName(out->kind);
    ReadString(obj, "kind", path, &kind);
    if (!ParseJobSizeKind(kind, &out->kind)) {
      Error(*obj.Find("kind"), path + ".kind",
            "unknown size kind \"" + kind +
                "\" (expected zoo, pareto, lognormal)");
    }
    ReadDouble(obj, "pareto_alpha", path, &out->pareto_alpha);
    ReadDouble(obj, "pareto_cap", path, &out->pareto_cap);
    ReadDouble(obj, "lognormal_sigma", path, &out->lognormal_sigma);
    int64_t steps = out->target_steps_per_epoch;
    ReadInt(obj, "target_steps_per_epoch", path, &steps);
    out->target_steps_per_epoch = steps;
  }

  void ParseModels(const JsonValue& obj, ModelMixSpec* out) {
    const std::string path = "workload.models";
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path, {"names", "weights", "cycle_first"});
    if (const JsonValue* names = obj.Find("names")) {
      if (!names->is_array()) {
        Error(*names, path + ".names", "expected an array of model names");
      } else {
        out->names.clear();
        for (const JsonValue& v : names->AsArray()) {
          if (!v.is_string()) {
            Error(v, path + ".names",
                  std::string("expected a string, got ") + JsonTypeName(v.type()));
            continue;
          }
          out->names.push_back(v.AsString());
        }
      }
    }
    if (const JsonValue* weights = obj.Find("weights")) {
      if (!weights->is_array()) {
        Error(*weights, path + ".weights", "expected an array of numbers");
      } else {
        out->weights.clear();
        for (const JsonValue& v : weights->AsArray()) {
          if (!v.is_number()) {
            Error(v, path + ".weights",
                  std::string("expected a number, got ") + JsonTypeName(v.type()));
            continue;
          }
          out->weights.push_back(v.AsDouble());
        }
      }
    }
    ReadBool(obj, "cycle_first", path, &out->cycle_first);
  }

  void ParseWorkload(const JsonValue& obj, WorkloadSpec* out) {
    const std::string path = "workload";
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path,
              {"jobs", "arrivals", "sizes", "models", "mode", "comm",
               "allreduce_fraction", "delta_lo", "delta_hi", "patience",
               "worker_demand", "ps_demand", "max_ps", "max_workers",
               "batch_min", "batch_max", "cpu_sensitivity",
               "mem_sensitivity"});
    ReadIntField(obj, "jobs", path, &out->num_jobs);
    if (const JsonValue* v = obj.Find("arrivals")) {
      ParseArrivals(*v, &out->arrivals);
    }
    if (const JsonValue* v = obj.Find("sizes")) {
      ParseSizes(*v, &out->sizes);
    }
    if (const JsonValue* v = obj.Find("models")) {
      ParseModels(*v, &out->models);
    }
    if (const JsonValue* v = obj.Find("mode")) {
      std::string mode;
      ReadString(obj, "mode", path, &mode);
      if (mode == "sync") {
        out->forced_mode = TrainingMode::kSync;
      } else if (mode == "async") {
        out->forced_mode = TrainingMode::kAsync;
      } else if (mode == "mixed") {
        out->forced_mode.reset();
      } else if (v->is_string()) {
        Error(*v, path + ".mode",
              "unknown mode \"" + mode + "\" (expected sync, async, mixed)");
      }
    }
    if (const JsonValue* v = obj.Find("comm")) {
      std::string comm;
      ReadString(obj, "comm", path, &comm);
      if (comm == "ps") {
        out->comm = CommMode::kParameterServer;
      } else if (comm == "allreduce") {
        out->comm = CommMode::kAllReduce;
      } else if (v->is_string()) {
        Error(*v, path + ".comm",
              "unknown comm architecture \"" + comm +
                  "\" (expected ps, allreduce)");
      }
      // Ring all-reduce has no staleness notion: an async mode request
      // contradicts it, and silently overriding would hide the typo.
      if (out->comm == CommMode::kAllReduce && out->forced_mode.has_value() &&
          *out->forced_mode == TrainingMode::kAsync) {
        Error(*v, path + ".comm",
              "allreduce jobs are always synchronous; remove mode: \"async\"");
      }
    }
    ReadDouble(obj, "allreduce_fraction", path, &out->allreduce_fraction);
    ReadDouble(obj, "delta_lo", path, &out->delta_lo);
    ReadDouble(obj, "delta_hi", path, &out->delta_hi);
    ReadIntField(obj, "patience", path, &out->patience);
    if (const JsonValue* v = obj.Find("worker_demand")) {
      ParseResources(*v, path + ".worker_demand", &out->worker_demand);
    }
    if (const JsonValue* v = obj.Find("ps_demand")) {
      ParseResources(*v, path + ".ps_demand", &out->ps_demand);
      // All-reduce jobs run no PS tasks; a hand-written PS demand would be
      // silently discarded by the scheduler, so reject the contradiction.
      if (out->comm == CommMode::kAllReduce &&
          !(out->ps_demand == Resources())) {
        Error(*v, path + ".ps_demand",
              "comm: \"allreduce\" jobs run no PS tasks; drop ps_demand or "
              "set it to all zeros");
      }
    }
    ReadIntField(obj, "max_ps", path, &out->max_ps);
    ReadIntField(obj, "max_workers", path, &out->max_workers);
    // Batch-adaptivity bounds and sensitivity profile overrides (policies
    // that ignore the batch / sensitivity dimensions never read them).
    ReadIntField(obj, "batch_min", path, &out->batch_min);
    ReadIntField(obj, "batch_max", path, &out->batch_max);
    ReadDouble(obj, "cpu_sensitivity", path, &out->cpu_sensitivity);
    ReadDouble(obj, "mem_sensitivity", path, &out->mem_sensitivity);
  }

  void ParseCluster(const JsonValue& obj, ClusterSpec* out) {
    const std::string path = "cluster";
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path, {"testbed", "classes", "rack_size"});
    ReadBool(obj, "testbed", path, &out->testbed);
    if (const JsonValue* classes = obj.Find("classes")) {
      out->testbed = obj.Find("testbed") != nullptr ? out->testbed : false;
      if (!classes->is_array()) {
        Error(*classes, path + ".classes", "expected an array of server classes");
      } else {
        out->classes.clear();
        for (size_t i = 0; i < classes->AsArray().size(); ++i) {
          const JsonValue& entry = classes->AsArray()[i];
          const std::string cpath = path + ".classes[" + std::to_string(i) + "]";
          if (!entry.is_object()) {
            Error(entry, cpath,
                  std::string("expected an object, got ") +
                      JsonTypeName(entry.type()));
            continue;
          }
          CheckKeys(entry, cpath,
                    {"name", "count", "cpu", "memory_gb", "gpu",
                     "bandwidth_gbps"});
          ServerClassSpec spec;
          ReadString(entry, "name", cpath, &spec.name);
          ReadIntField(entry, "count", cpath, &spec.count);
          double cpu = 0.0;
          double memory_gb = 0.0;
          double gpu = 0.0;
          double bandwidth = 1.0;
          ReadDouble(entry, "cpu", cpath, &cpu);
          ReadDouble(entry, "memory_gb", cpath, &memory_gb);
          ReadDouble(entry, "gpu", cpath, &gpu);
          ReadDouble(entry, "bandwidth_gbps", cpath, &bandwidth);
          spec.capacity = Resources(cpu, memory_gb, gpu, bandwidth);
          out->classes.push_back(std::move(spec));
        }
      }
    }
    ReadIntField(obj, "rack_size", path, &out->rack_size);
  }

  void ParseFaults(const JsonValue& obj, const ClusterSpec& cluster,
                   FaultConfig* out) {
    const std::string path = "faults";
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path,
              {"plan", "task_failure_prob", "checkpoint_period_s"});
    std::string plan;
    ReadString(obj, "plan", path, &plan);
    if (!plan.empty()) {
      std::string expanded;
      std::string error;
      if (!ExpandRackReferences(plan, cluster, &expanded, &error)) {
        Error(*obj.Find("plan"), path + ".plan", error);
      } else if (!ParseFaultPlan(expanded, &out->plan, &error)) {
        Error(*obj.Find("plan"), path + ".plan", error);
      }
    }
    ReadDouble(obj, "task_failure_prob", path, &out->task_failure_prob);
    ReadDouble(obj, "checkpoint_period_s", path, &out->checkpoint_period_s);
  }

  void ParseNetwork(const JsonValue& obj, NetworkConfig* out) {
    const std::string path = "network";
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path, {"model", "nic_bps", "oversubscription"});
    std::string model = NetworkModelName(out->model);
    ReadString(obj, "model", path, &model);
    if (!ParseNetworkModelName(model, &out->model)) {
      Error(*obj.Find("model"), path + ".model",
            "unknown network model \"" + model +
                "\" (expected flat, topology, contention)");
    }
    ReadDouble(obj, "nic_bps", path, &out->nic_bps);
    if (const JsonValue* v = obj.Find("nic_bps")) {
      if (!(std::isfinite(out->nic_bps) && out->nic_bps > 0.0)) {
        Error(*v, path + ".nic_bps", "must be a finite number > 0");
      }
    }
    ReadDouble(obj, "oversubscription", path, &out->oversubscription);
    if (const JsonValue* v = obj.Find("oversubscription")) {
      if (!(std::isfinite(out->oversubscription) &&
            out->oversubscription >= 1.0)) {
        Error(*v, path + ".oversubscription",
              "must be >= 1 (1 = non-blocking fabric)");
      }
    }
  }

  void ParseKnobs(const JsonValue& obj, SimulatorConfig* out) {
    const std::string path = "knobs";
    if (!obj.is_object()) {
      Error(obj, path,
            std::string("expected an object, got ") + JsonTypeName(obj.type()));
      return;
    }
    CheckKeys(obj, path,
              {"interval_s", "stragglers", "oracle", "background_share",
               "audit", "max_sim_time_s", "engine", "shards", "streaming"});
    ReadDouble(obj, "interval_s", path, &out->interval_s);
    ReadIntField(obj, "shards", path, &out->shards);
    ReadBool(obj, "streaming", path, &out->streaming);
    ReadDouble(obj, "stragglers", path,
               &out->straggler.injection_prob_per_interval);
    ReadBool(obj, "oracle", path, &out->oracle_estimates);
    ReadDouble(obj, "background_share", path, &out->background_share);
    ReadBool(obj, "audit", path, &out->audit);
    ReadDouble(obj, "max_sim_time_s", path, &out->max_sim_time_s);
    std::string engine;
    ReadString(obj, "engine", path, &engine);
    if (!engine.empty() && !ParseSimEngine(engine, &out->engine)) {
      Error(*obj.Find("engine"), path + ".engine",
            "expected \"interval\" or \"events\", got \"" + engine + "\"");
    }
  }

  bool Parse(const JsonValue& root, ScenarioSpec* spec) {
    if (!root.is_object()) {
      Error(root, "scenario",
            std::string("expected a top-level object, got ") +
                JsonTypeName(root.type()));
      return false;
    }
    CheckKeys(root, "scenario",
              {"schema", "name", "description", "seed", "repeats", "policy",
               "policies", "workload", "cluster", "network", "faults",
               "knobs"});
    const JsonValue* schema = root.Find("schema");
    if (schema == nullptr) {
      Error(root, "schema", std::string("missing (expected \"") +
                                kScenarioSchemaVersion + "\")");
    } else if (!schema->is_string() ||
               schema->AsString() != kScenarioSchemaVersion) {
      Error(*schema, "schema",
            std::string("expected \"") + kScenarioSchemaVersion + "\"");
    }
    ReadString(root, "name", "scenario", &spec->name);
    if (root.Find("name") == nullptr) {
      Error(root, "name", "missing (scenarios must be named)");
    }
    ReadString(root, "description", "scenario", &spec->description);
    int64_t seed = static_cast<int64_t>(spec->seed);
    ReadInt(root, "seed", "scenario", &seed);
    if (seed < 0) {
      Error(*root.Find("seed"), "scenario.seed", "must be >= 0");
    } else {
      spec->seed = static_cast<uint64_t>(seed);
    }
    ReadIntField(root, "repeats", "scenario", &spec->repeats);
    const JsonValue* policy = root.Find("policy");
    const JsonValue* policies = root.Find("policies");
    if (policy != nullptr && policies != nullptr) {
      Error(*policy, "scenario.policy",
            "give either policy or policies, not both");
    } else if (policy != nullptr) {
      std::string name;
      ReadString(root, "policy", "scenario", &name);
      if (!name.empty()) {
        spec->policies = {name};
      }
    } else if (policies != nullptr) {
      if (!policies->is_array()) {
        Error(*policies, "scenario.policies",
              "expected an array of policy names");
      } else {
        spec->policies.clear();
        for (const JsonValue& v : policies->AsArray()) {
          if (!v.is_string()) {
            Error(v, "scenario.policies",
                  std::string("expected a string, got ") + JsonTypeName(v.type()));
            continue;
          }
          spec->policies.push_back(v.AsString());
        }
      }
    } else {
      Error(root, "scenario.policies",
            "missing (give policy: \"<name>\" or policies: [...])");
    }

    // Knobs and cluster come before workload/faults: the workload inherits
    // the scheduling interval and the fault plan expands racks.
    if (const JsonValue* v = root.Find("knobs")) {
      ParseKnobs(*v, &spec->sim);
    }
    if (const JsonValue* v = root.Find("cluster")) {
      ParseCluster(*v, &spec->cluster);
    }
    if (const JsonValue* v = root.Find("network")) {
      ParseNetwork(*v, &spec->sim.net);
    }
    // shards ranges over the cluster, which is only known now (knobs parse
    // first); diagnose against the actual server count, at the knob's
    // position.
    if (const JsonValue* knobs = root.Find("knobs")) {
      const JsonValue* sh =
          knobs->is_object() ? knobs->Find("shards") : nullptr;
      if (sh != nullptr) {
        const int num_servers = spec->cluster.NumServers();
        if (spec->sim.shards < 1 || spec->sim.shards > num_servers) {
          Error(*sh, "knobs.shards",
                "must be in [1, " + std::to_string(num_servers) +
                    "] (cluster has " + std::to_string(num_servers) +
                    " server(s); got " + std::to_string(spec->sim.shards) +
                    ")");
        }
      }
    }
    spec->workload.arrivals.interval_s = spec->sim.interval_s;
    if (const JsonValue* v = root.Find("workload")) {
      ParseWorkload(*v, &spec->workload);
    }
    if (const JsonValue* v = root.Find("faults")) {
      ParseFaults(*v, spec->cluster, &spec->sim.fault);
    }
    return ok();
  }

 private:
  std::string source_;
  std::vector<std::string> errors_;
};

}  // namespace

bool ParseScenario(const std::string& text, const std::string& source_name,
                   ScenarioSpec* spec, std::string* error) {
  OPTIMUS_CHECK(spec != nullptr);
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(text, source_name, &root, &parse_error)) {
    if (error != nullptr) {
      *error = parse_error;
    }
    return false;
  }
  ScenarioSpec parsed;
  // The scenario default matches the CLI default, not the library default:
  // testbed conditions with stragglers Optimus is built to handle.
  parsed.sim.straggler.injection_prob_per_interval = 0.12;
  ScenarioParser parser(source_name);
  if (!parser.Parse(root, &parsed)) {
    if (error != nullptr) {
      *error = parser.JoinedErrors();
    }
    return false;
  }
  std::vector<std::string> validation;
  if (!parsed.Validate(&validation)) {
    if (error != nullptr) {
      std::string joined;
      for (const std::string& e : validation) {
        joined += (joined.empty() ? "" : "; ") + e;
      }
      *error = source_name + ": " + joined;
    }
    return false;
  }
  *spec = std::move(parsed);
  return true;
}

bool LoadScenarioFile(const std::string& path, ScenarioSpec* spec,
                      std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) {
      *error = "cannot read " + path;
    }
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseScenario(text.str(), path, spec, error);
}

}  // namespace optimus
