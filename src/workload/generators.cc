#include "src/workload/generators.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/models/model_zoo.h"

namespace optimus {

const char* ArrivalKindName(ArrivalSpec::Kind kind) {
  switch (kind) {
    case ArrivalSpec::Kind::kUniform:
      return "uniform";
    case ArrivalSpec::Kind::kPoisson:
      return "poisson";
    case ArrivalSpec::Kind::kBursty:
      return "bursty";
    case ArrivalSpec::Kind::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

bool ParseArrivalKind(const std::string& name, ArrivalSpec::Kind* kind) {
  OPTIMUS_CHECK(kind != nullptr);
  if (name == "uniform") {
    *kind = ArrivalSpec::Kind::kUniform;
  } else if (name == "poisson") {
    *kind = ArrivalSpec::Kind::kPoisson;
  } else if (name == "bursty") {
    *kind = ArrivalSpec::Kind::kBursty;
  } else if (name == "diurnal") {
    *kind = ArrivalSpec::Kind::kDiurnal;
  } else {
    return false;
  }
  return true;
}

const char* JobSizeKindName(JobSizeSpec::Kind kind) {
  switch (kind) {
    case JobSizeSpec::Kind::kZoo:
      return "zoo";
    case JobSizeSpec::Kind::kPareto:
      return "pareto";
    case JobSizeSpec::Kind::kLognormal:
      return "lognormal";
  }
  return "unknown";
}

bool ParseJobSizeKind(const std::string& name, JobSizeSpec::Kind* kind) {
  OPTIMUS_CHECK(kind != nullptr);
  if (name == "zoo") {
    *kind = JobSizeSpec::Kind::kZoo;
  } else if (name == "pareto") {
    *kind = JobSizeSpec::Kind::kPareto;
  } else if (name == "lognormal") {
    *kind = JobSizeSpec::Kind::kLognormal;
  } else {
    return false;
  }
  return true;
}

namespace {

void Check(bool ok, const std::string& message, std::vector<std::string>* errors,
           bool* valid) {
  if (!ok) {
    if (errors != nullptr) {
      errors->push_back(message);
    }
    *valid = false;
  }
}

bool IsProbRange(double lo, double hi) {
  return std::isfinite(lo) && std::isfinite(hi) && lo > 0.0 && hi >= lo &&
         hi <= 1.0;
}

}  // namespace

bool WorkloadSpec::Validate(std::vector<std::string>* errors) const {
  bool valid = true;
  Check(num_jobs >= 1, "num_jobs: must be >= 1", errors, &valid);
  Check(arrivals.window_s > 0.0, "arrivals.window_s: must be > 0", errors,
        &valid);
  Check(arrivals.rate_per_interval > 0.0,
        "arrivals.rate_per_interval: must be > 0", errors, &valid);
  Check(arrivals.interval_s > 0.0, "arrivals.interval_s: must be > 0", errors,
        &valid);
  Check(arrivals.spike_fraction >= 0.0 && arrivals.spike_fraction <= 1.0,
        "arrivals.spike_fraction: must be in [0, 1]", errors, &valid);
  Check(arrivals.spike_multiplier >= 1.0,
        "arrivals.spike_multiplier: must be >= 1", errors, &valid);
  Check(arrivals.period_s > 0.0, "arrivals.period_s: must be > 0", errors,
        &valid);
  Check(arrivals.peak_to_trough >= 1.0,
        "arrivals.peak_to_trough: must be >= 1", errors, &valid);
  Check(sizes.pareto_alpha > 0.0, "sizes.pareto_alpha: must be > 0", errors,
        &valid);
  Check(sizes.pareto_cap >= 1.0, "sizes.pareto_cap: must be >= 1", errors,
        &valid);
  Check(sizes.lognormal_sigma >= 0.0, "sizes.lognormal_sigma: must be >= 0",
        errors, &valid);
  Check(sizes.target_steps_per_epoch >= 0,
        "sizes.target_steps_per_epoch: must be >= 0", errors, &valid);
  Check(std::isfinite(allreduce_fraction) && allreduce_fraction >= 0.0 &&
            allreduce_fraction <= 1.0,
        "allreduce_fraction: must be in [0, 1]", errors, &valid);
  Check(comm == CommMode::kParameterServer || !forced_mode.has_value() ||
            *forced_mode == TrainingMode::kSync,
        "comm: allreduce jobs are always synchronous (mode must be sync)",
        errors, &valid);
  Check(IsProbRange(delta_lo, delta_hi),
        "delta: need 0 < delta_lo <= delta_hi <= 1", errors, &valid);
  Check(patience >= 1, "patience: must be >= 1", errors, &valid);
  Check(max_ps >= 1, "max_ps: must be >= 1", errors, &valid);
  Check(max_workers >= 1, "max_workers: must be >= 1", errors, &valid);
  Check(batch_min >= 0, "batch_min: must be >= 0", errors, &valid);
  Check(batch_max >= 0, "batch_max: must be >= 0", errors, &valid);
  Check(batch_min == 0 || batch_max == 0 || batch_min <= batch_max,
        "batch_min: must be <= batch_max when both are set", errors, &valid);
  Check(cpu_sensitivity < 0.0 ||
            (std::isfinite(cpu_sensitivity) && cpu_sensitivity <= 1.0),
        "cpu_sensitivity: must be in [0, 1] (or negative for model default)",
        errors, &valid);
  Check(mem_sensitivity < 0.0 ||
            (std::isfinite(mem_sensitivity) && mem_sensitivity <= 1.0),
        "mem_sensitivity: must be in [0, 1] (or negative for model default)",
        errors, &valid);
  for (const std::string& name : models.names) {
    bool found = false;
    for (const ModelSpec& m : GetModelZoo()) {
      if (m.name == name) {
        found = true;
        break;
      }
    }
    Check(found, "models.names: unknown model \"" + name + "\"", errors,
          &valid);
  }
  const size_t mix_size =
      models.names.empty() ? GetModelZoo().size() : models.names.size();
  Check(models.weights.empty() || models.weights.size() == mix_size,
        "models.weights: length must match the model mix (" +
            std::to_string(mix_size) + ")",
        errors, &valid);
  double weight_sum = 0.0;
  for (double w : models.weights) {
    Check(std::isfinite(w) && w >= 0.0, "models.weights: must be >= 0", errors,
          &valid);
    weight_sum += w;
  }
  Check(models.weights.empty() || weight_sum > 0.0,
        "models.weights: must not all be zero", errors, &valid);
  return valid;
}

namespace {

// Dataset downscale for the base (pre-multiplier) job size; same rule as
// DatasetScaleFor in src/sim/workload.cc.
double BaseDatasetScale(const ModelSpec& model, const JobSizeSpec& sizes,
                        TrainingMode mode) {
  if (sizes.target_steps_per_epoch <= 0) {
    return 1.0;
  }
  const int batch = mode == TrainingMode::kSync ? model.default_sync_batch
                                                : model.default_async_minibatch;
  const double full_steps =
      static_cast<double>(model.dataset_examples) / static_cast<double>(batch);
  if (full_steps <= static_cast<double>(sizes.target_steps_per_epoch)) {
    return 1.0;
  }
  return static_cast<double>(sizes.target_steps_per_epoch) / full_steps;
}

// Heavy-tail size multiplier (>= some fraction of 1, capped for Pareto).
double SizeMultiplier(const JobSizeSpec& sizes, Rng* rng) {
  switch (sizes.kind) {
    case JobSizeSpec::Kind::kZoo:
      return 1.0;
    case JobSizeSpec::Kind::kPareto: {
      // Standard Pareto with x_m = 1: x = (1 - u)^(-1/alpha).
      const double u = rng->Uniform(0.0, 1.0);
      const double x = std::pow(1.0 - u, -1.0 / sizes.pareto_alpha);
      return std::min(x, sizes.pareto_cap);
    }
    case JobSizeSpec::Kind::kLognormal:
      return rng->LogNormalFactor(sizes.lognormal_sigma);
  }
  return 1.0;
}

std::vector<double> GenerateArrivals(const ArrivalSpec& spec, int num_jobs,
                                     Rng* rng) {
  std::vector<double> times;
  times.reserve(num_jobs);
  switch (spec.kind) {
    case ArrivalSpec::Kind::kUniform: {
      for (int i = 0; i < num_jobs; ++i) {
        times.push_back(rng->Uniform(0.0, spec.window_s));
      }
      break;
    }
    case ArrivalSpec::Kind::kPoisson: {
      const double rate_per_s = spec.rate_per_interval / spec.interval_s;
      double t = 0.0;
      for (int i = 0; i < num_jobs; ++i) {
        t += rng->Exponential(rate_per_s);
        times.push_back(t);
      }
      break;
    }
    case ArrivalSpec::Kind::kBursty: {
      // Quiet background plus spike intervals carrying a rate multiple; jobs
      // inside an interval land uniformly (the Google-trace shape).
      double interval_start = 0.0;
      while (static_cast<int>(times.size()) < num_jobs) {
        const bool spike = rng->Bernoulli(spec.spike_fraction);
        const double mean =
            spec.rate_per_interval * (spike ? spec.spike_multiplier : 0.4);
        const int64_t count = rng->Poisson(mean);
        for (int64_t i = 0;
             i < count && static_cast<int>(times.size()) < num_jobs; ++i) {
          times.push_back(interval_start + rng->Uniform(0.0, spec.interval_s));
        }
        interval_start += spec.interval_s;
      }
      break;
    }
    case ArrivalSpec::Kind::kDiurnal: {
      // Inhomogeneous Poisson via thinning: candidates at the peak rate,
      // accepted with probability rate(t) / rate_peak. rate(t) swings
      // sinusoidally so that peak / trough = peak_to_trough.
      const double base = spec.rate_per_interval / spec.interval_s;
      const double a = (spec.peak_to_trough - 1.0) / (spec.peak_to_trough + 1.0);
      const double peak = base * (1.0 + a);
      double t = 0.0;
      while (static_cast<int>(times.size()) < num_jobs) {
        t += rng->Exponential(peak);
        const double rate =
            base * (1.0 + a * std::sin(2.0 * M_PI * t / spec.period_s));
        if (rng->Bernoulli(rate / peak)) {
          times.push_back(t);
        }
      }
      break;
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace

std::vector<JobSpec> GenerateJobs(const WorkloadSpec& spec, Rng* rng) {
  OPTIMUS_CHECK(rng != nullptr);
  {
    std::vector<std::string> errors;
    if (!spec.Validate(&errors)) {
      std::string joined;
      for (const std::string& e : errors) {
        joined += (joined.empty() ? "" : "; ") + e;
      }
      OPTIMUS_LOG(Fatal) << "invalid WorkloadSpec: " << joined;
    }
  }

  // Resolve the model mix once.
  const std::vector<ModelSpec>& zoo = GetModelZoo();
  std::vector<const ModelSpec*> mix;
  if (spec.models.names.empty()) {
    for (const ModelSpec& m : zoo) {
      mix.push_back(&m);
    }
  } else {
    for (const std::string& name : spec.models.names) {
      mix.push_back(&FindModel(name));
    }
  }
  std::vector<double> cumulative;
  if (!spec.models.weights.empty()) {
    double sum = 0.0;
    for (double w : spec.models.weights) {
      sum += w;
      cumulative.push_back(sum);
    }
  }

  Rng arrival_rng = rng->Split(kArrivalStream);
  const std::vector<double> arrivals =
      GenerateArrivals(spec.arrivals, spec.num_jobs, &arrival_rng);

  std::vector<JobSpec> jobs;
  jobs.reserve(spec.num_jobs);
  for (int i = 0; i < spec.num_jobs; ++i) {
    Rng job_rng = rng->Split(kJobAttributeStreamBase + static_cast<uint64_t>(i));
    JobSpec job;
    job.id = i;
    if (spec.models.cycle_first && i < static_cast<int>(mix.size())) {
      job.model = mix[static_cast<size_t>(i)];
    } else if (cumulative.empty()) {
      job.model =
          mix[static_cast<size_t>(job_rng.UniformInt(0, mix.size() - 1))];
    } else {
      const double pick = job_rng.Uniform(0.0, cumulative.back());
      const auto it =
          std::upper_bound(cumulative.begin(), cumulative.end(), pick);
      const size_t idx = std::min(
          static_cast<size_t>(it - cumulative.begin()), mix.size() - 1);
      job.model = mix[idx];
    }
    job.mode = spec.forced_mode.has_value()
                   ? *spec.forced_mode
                   : (job_rng.Bernoulli(0.5) ? TrainingMode::kSync
                                             : TrainingMode::kAsync);
    job.convergence_delta = job_rng.Uniform(spec.delta_lo, spec.delta_hi);
    job.patience = spec.patience;
    job.worker_demand = spec.worker_demand;
    job.ps_demand = spec.ps_demand;
    job.arrival_time_s = arrivals[static_cast<size_t>(i)];
    job.dataset_scale = BaseDatasetScale(*job.model, spec.sizes, job.mode) *
                        SizeMultiplier(spec.sizes, &job_rng);
    job.max_ps = spec.max_ps;
    job.max_workers = spec.max_workers;
    // Communication architecture. The all-reduce flip draws after every
    // existing attribute draw, and only when the fraction is nonzero, so
    // PS-only workloads keep their historical RNG streams bit-for-bit.
    job.comm = spec.comm;
    if (job.comm == CommMode::kParameterServer &&
        spec.allreduce_fraction > 0.0 &&
        job_rng.Bernoulli(spec.allreduce_fraction)) {
      job.comm = CommMode::kAllReduce;
    }
    if (job.comm == CommMode::kAllReduce) {
      job.mode = TrainingMode::kSync;
    }
    // Batch bounds / sensitivity overrides copy straight from the spec (no
    // RNG draws): historical workloads' attribute streams stay bit-for-bit.
    job.batch_min = spec.batch_min;
    job.batch_max = spec.batch_max;
    job.cpu_sensitivity = spec.cpu_sensitivity;
    job.mem_sensitivity = spec.mem_sensitivity;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace optimus
