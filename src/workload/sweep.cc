#include "src/workload/sweep.h"

#include <algorithm>

#include "src/common/json_writer.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/common/threadpool.h"
#include "src/obs/exporters.h"
#include "src/sim/experiment.h"

namespace optimus {

namespace {

// One (scenario, policy, repeat) unit and its index-owned result slot.
struct Unit {
  const ScenarioSpec* scenario = nullptr;
  const std::string* policy = nullptr;
  int repeat = 0;
  size_t cell = 0;  // index into the cell grid
};

struct UnitResult {
  RunMetrics metrics;
  std::string run_report;  // repeat 0 only
};

}  // namespace

SweepResult RunSweep(const std::vector<ScenarioSpec>& scenarios,
                     const SweepOptions& options) {
  // Flatten the grid: scenario-major, then policy, then repeat. The unit
  // list fixes both the execution indices and the aggregation order.
  std::vector<Unit> units;
  size_t cell_count = 0;
  for (const ScenarioSpec& scenario : scenarios) {
    {
      std::vector<std::string> errors;
      OPTIMUS_CHECK(scenario.Validate(&errors))
          << "invalid scenario '" << scenario.name << "' handed to RunSweep";
    }
    for (const std::string& policy : scenario.policies) {
      for (int r = 0; r < scenario.repeats; ++r) {
        units.push_back(Unit{&scenario, &policy, r, cell_count});
      }
      ++cell_count;
    }
  }

  std::vector<UnitResult> slots(units.size());
  const auto run_one = [&](int64_t i) {
    const Unit& unit = units[static_cast<size_t>(i)];
    SimulatorConfig config =
        unit.scenario->MakeSimConfig(*unit.policy, unit.repeat);
    // Cell-level parallelism only: the simulator itself stays serial, and
    // the observability walk is skipped except on the reported repeat.
    config.threads = 1;
    const bool report = options.capture_run_reports && unit.repeat == 0;
    config.obs.enabled = report;
    config.record_timeline = false;
    Simulator sim(config, unit.scenario->cluster.Build(),
                  unit.scenario->JobsForRepeat(unit.repeat));
    UnitResult& slot = slots[static_cast<size_t>(i)];
    slot.metrics = sim.Run();
    if (report) {
      ExportOptions export_options;
      export_options.include_profiling = false;  // keep the bytes deterministic
      slot.run_report = ExportJsonReportString(sim.registry(), &sim.series(),
                                               &sim.flight_recorder(),
                                               export_options);
    }
  };
  const int threads = options.threads > 0 ? options.threads : DefaultThreadCount();
  ThreadPool pool(std::min<int64_t>(threads, static_cast<int64_t>(units.size())));
  pool.ParallelFor(static_cast<int64_t>(units.size()), run_one);

  // Aggregate in grid order.
  SweepResult result;
  result.cells.resize(cell_count);
  std::vector<std::vector<const RunMetrics*>> per_cell(cell_count);
  for (size_t i = 0; i < units.size(); ++i) {
    const Unit& unit = units[i];
    per_cell[unit.cell].push_back(&slots[i].metrics);
    SweepCellResult& cell = result.cells[unit.cell];
    if (unit.repeat == 0) {
      cell.scenario = unit.scenario->name;
      cell.policy = *unit.policy;
      const SchedulerPolicyInfo* info =
          SchedulerRegistry::Global().Find(*unit.policy);
      cell.display_name = info != nullptr ? info->display_name : *unit.policy;
      cell.repeats = unit.scenario->repeats;
      cell.jobs = unit.scenario->workload.num_jobs;
      cell.run_report = std::move(slots[i].run_report);
    }
  }
  for (size_t c = 0; c < cell_count; ++c) {
    SweepCellResult& cell = result.cells[c];
    std::vector<double> jcts;
    std::vector<double> makespans;
    std::vector<double> overheads;
    std::vector<double> evictions;
    std::vector<double> failures;
    double completed = 0.0;
    double total = 0.0;
    for (const RunMetrics* m : per_cell[c]) {
      jcts.push_back(m->avg_jct_s);
      makespans.push_back(m->makespan_s);
      overheads.push_back(m->scaling_overhead_fraction);
      evictions.push_back(static_cast<double>(m->job_evictions));
      failures.push_back(static_cast<double>(m->task_failures));
      cell.audit_violations += m->audit_violations;
      completed += m->completed_jobs;
      total += m->total_jobs;
    }
    cell.avg_jct_mean = Mean(jcts);
    cell.avg_jct_stddev = StdDev(jcts);
    cell.makespan_mean = Mean(makespans);
    cell.makespan_stddev = StdDev(makespans);
    cell.scaling_overhead_mean = Mean(overheads);
    cell.job_evictions_mean = Mean(evictions);
    cell.task_failures_mean = Mean(failures);
    cell.completed_fraction = total > 0.0 ? completed / total : 0.0;
    result.audit_violations_total += cell.audit_violations;
    result.completed_fraction_min =
        std::min(result.completed_fraction_min, cell.completed_fraction);
  }

  // Baseline ratios: each scenario normalizes against its first policy.
  size_t cursor = 0;
  for (const ScenarioSpec& scenario : scenarios) {
    const SweepCellResult& baseline = result.cells[cursor];
    for (size_t p = 0; p < scenario.policies.size(); ++p) {
      SweepCellResult& cell = result.cells[cursor + p];
      cell.jct_vs_baseline = NormalizedTo(cell.avg_jct_mean, baseline.avg_jct_mean);
      cell.makespan_vs_baseline =
          NormalizedTo(cell.makespan_mean, baseline.makespan_mean);
    }
    cursor += scenario.policies.size();
  }
  return result;
}

std::string MergedSweepJson(const std::vector<ScenarioSpec>& scenarios,
                            const SweepResult& result) {
  JsonObject root;
  root.Set("format", "optimus-sweep-report-v1");
  root.Set("schema", kScenarioSchemaVersion);

  std::vector<JsonObject> scenario_rows;
  for (const ScenarioSpec& scenario : scenarios) {
    JsonObject row;
    row.Set("name", scenario.name);
    if (!scenario.description.empty()) {
      row.Set("description", scenario.description);
    }
    row.Set("seed", static_cast<int64_t>(scenario.seed));
    row.Set("repeats", scenario.repeats);
    row.Set("jobs", scenario.workload.num_jobs);
    row.Set("arrivals", ArrivalKindName(scenario.workload.arrivals.kind));
    row.Set("sizes", JobSizeKindName(scenario.workload.sizes.kind));
    row.Set("servers", scenario.cluster.NumServers());
    row.Set("racks", scenario.cluster.NumRacks());
    row.Set("faulted", scenario.sim.fault.enabled());
    row.Set("policies", scenario.policies);
    scenario_rows.push_back(std::move(row));
  }
  root.Set("scenarios", scenario_rows);

  std::vector<JsonObject> cell_rows;
  for (const SweepCellResult& cell : result.cells) {
    JsonObject row;
    row.Set("scenario", cell.scenario);
    row.Set("policy", cell.policy);
    row.Set("display_name", cell.display_name);
    row.Set("repeats", cell.repeats);
    row.Set("jobs", cell.jobs);
    row.Set("avg_jct_s_mean", cell.avg_jct_mean);
    row.Set("avg_jct_s_stddev", cell.avg_jct_stddev);
    row.Set("makespan_s_mean", cell.makespan_mean);
    row.Set("makespan_s_stddev", cell.makespan_stddev);
    row.Set("scaling_overhead_mean", cell.scaling_overhead_mean);
    row.Set("completed_fraction", cell.completed_fraction);
    row.Set("job_evictions_mean", cell.job_evictions_mean);
    row.Set("task_failures_mean", cell.task_failures_mean);
    row.Set("audit_violations", cell.audit_violations);
    row.Set("jct_vs_baseline", cell.jct_vs_baseline);
    row.Set("makespan_vs_baseline", cell.makespan_vs_baseline);
    cell_rows.push_back(std::move(row));
  }
  root.Set("cells", cell_rows);

  JsonObject totals;
  totals.Set("cells", static_cast<int64_t>(result.cells.size()));
  totals.Set("audit_violations", result.audit_violations_total);
  totals.Set("completed_fraction_min", result.completed_fraction_min);
  root.Set("totals", totals);
  return root.ToString() + "\n";
}

}  // namespace optimus
