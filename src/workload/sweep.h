// Scenario sweep engine: fans a grid of (scenario, policy, repeat) cells out
// over the deterministic ThreadPool and aggregates one comparison row per
// (scenario, policy) cell.
//
// This is the §6 evaluation loop as a library: Figures 9-13 are each "run the
// same workload under every scheduler, repeat a few times, compare means".
// Every unit of work owns its state (cluster, jobs, simulator, RNG streams)
// and writes into an index-owned slot; aggregation then walks the slots in
// grid order, so the merged report — including its serialized bytes — is
// bitwise identical for any thread count.

#ifndef SRC_WORKLOAD_SWEEP_H_
#define SRC_WORKLOAD_SWEEP_H_

#include <string>
#include <vector>

#include "src/workload/scenario.h"

namespace optimus {

struct SweepOptions {
  // Worker threads for the grid (0 = OPTIMUS_THREADS env var, then 1). Units
  // never nest parallelism: each cell's simulator runs serially.
  int threads = 0;
  // Capture repeat 0's optimus-run-report-v1 JSON per cell (adds the obs
  // registry walk; off when only the comparison table is wanted).
  bool capture_run_reports = true;
};

// One aggregated (scenario, policy) cell.
struct SweepCellResult {
  std::string scenario;
  std::string policy;
  std::string display_name;
  int repeats = 0;
  int jobs = 0;
  double avg_jct_mean = 0.0;
  double avg_jct_stddev = 0.0;
  double makespan_mean = 0.0;
  double makespan_stddev = 0.0;
  double scaling_overhead_mean = 0.0;
  double completed_fraction = 1.0;
  double job_evictions_mean = 0.0;
  double task_failures_mean = 0.0;
  int64_t audit_violations = 0;
  // Ratios against the scenario's first policy (its baseline row = 1.0).
  double jct_vs_baseline = 1.0;
  double makespan_vs_baseline = 1.0;
  // optimus-run-report-v1 JSON of repeat 0 (profiling metrics excluded, so
  // the bytes are deterministic); empty when capture_run_reports is false.
  std::string run_report;
};

struct SweepResult {
  std::vector<SweepCellResult> cells;  // grid order: scenario-major
  int64_t audit_violations_total = 0;
  double completed_fraction_min = 1.0;
};

// Runs every scenario's policy grid. Scenarios must be valid (load them via
// LoadScenarioFile); fatal otherwise.
SweepResult RunSweep(const std::vector<ScenarioSpec>& scenarios,
                     const SweepOptions& options = {});

// The merged comparison report ("optimus-sweep-report-v1") as deterministic
// JSON bytes: scenario list, one row per cell (without the embedded run
// reports), and the per-scenario baseline ratios.
std::string MergedSweepJson(const std::vector<ScenarioSpec>& scenarios,
                            const SweepResult& result);

}  // namespace optimus

#endif  // SRC_WORKLOAD_SWEEP_H_
