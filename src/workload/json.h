// Minimal JSON parser for the scenario DSL.
//
// Parses the JSON subset the scenario files use (objects, arrays, strings,
// numbers, booleans, null; UTF-8 passed through verbatim; \uXXXX escapes
// decoded) into an explicit value tree. Object keys keep their file order so
// scenario validation can point at the first offending key, and duplicate
// keys are a parse error — a scenario that says "seed" twice is a typo, not a
// preference. Errors carry 1-based line/column positions.
//
// This is deliberately a reader for trusted local config files, not a
// general-purpose JSON library: no streaming, no number-precision haggling
// (numbers land in a double), no comments. The deterministic *writer* lives
// in src/common/json_writer.h.

#ifndef SRC_WORKLOAD_JSON_H_
#define SRC_WORKLOAD_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace optimus {

class JsonValue;

enum class JsonType {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

const char* JsonTypeName(JsonType type);

class JsonValue {
 public:
  JsonValue() = default;

  JsonType type() const { return type_; }
  bool is_null() const { return type_ == JsonType::kNull; }
  bool is_bool() const { return type_ == JsonType::kBool; }
  bool is_number() const { return type_ == JsonType::kNumber; }
  bool is_string() const { return type_ == JsonType::kString; }
  bool is_array() const { return type_ == JsonType::kArray; }
  bool is_object() const { return type_ == JsonType::kObject; }

  // Typed accessors; fatal on type mismatch (scenario.cc checks types before
  // calling, so a mismatch here is a programming error, not bad input).
  bool AsBool() const;
  double AsDouble() const;
  // Fatal when the number is not integral or out of int64 range.
  int64_t AsInt() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;

  // Object access. Keys() preserves file order; Find returns null when
  // absent.
  std::vector<std::string> Keys() const;
  const JsonValue* Find(const std::string& key) const;

  // Source position of this value (1-based), for error messages.
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  friend class JsonParser;

  JsonType type_ = JsonType::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  // File-ordered key/value pairs (objects are small; linear Find is fine).
  std::vector<std::pair<std::string, JsonValue>> members_;
  int line_ = 0;
  int column_ = 0;
};

// Parses `text` into `*value`. On failure returns false and sets `*error` to
// "<source>:<line>:<col>: <message>". Trailing garbage after the document is
// an error.
bool ParseJson(const std::string& text, const std::string& source_name,
               JsonValue* value, std::string* error);

}  // namespace optimus

#endif  // SRC_WORKLOAD_JSON_H_
