#include "src/workload/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "src/common/logging.h"

namespace optimus {

const char* JsonTypeName(JsonType type) {
  switch (type) {
    case JsonType::kNull:
      return "null";
    case JsonType::kBool:
      return "bool";
    case JsonType::kNumber:
      return "number";
    case JsonType::kString:
      return "string";
    case JsonType::kArray:
      return "array";
    case JsonType::kObject:
      return "object";
  }
  return "unknown";
}

bool JsonValue::AsBool() const {
  OPTIMUS_CHECK(is_bool()) << "JSON value is " << JsonTypeName(type_)
                           << ", not bool";
  return bool_;
}

double JsonValue::AsDouble() const {
  OPTIMUS_CHECK(is_number()) << "JSON value is " << JsonTypeName(type_)
                             << ", not number";
  return number_;
}

int64_t JsonValue::AsInt() const {
  OPTIMUS_CHECK(is_number()) << "JSON value is " << JsonTypeName(type_)
                             << ", not number";
  OPTIMUS_CHECK(std::floor(number_) == number_ &&
                std::abs(number_) < 9.2e18)
      << "JSON number " << number_ << " is not an int64";
  return static_cast<int64_t>(number_);
}

const std::string& JsonValue::AsString() const {
  OPTIMUS_CHECK(is_string()) << "JSON value is " << JsonTypeName(type_)
                             << ", not string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  OPTIMUS_CHECK(is_array()) << "JSON value is " << JsonTypeName(type_)
                            << ", not array";
  return array_;
}

std::vector<std::string> JsonValue::Keys() const {
  OPTIMUS_CHECK(is_object()) << "JSON value is " << JsonTypeName(type_)
                             << ", not object";
  std::vector<std::string> keys;
  keys.reserve(members_.size());
  for (const auto& [key, unused] : members_) {
    keys.push_back(key);
  }
  return keys;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  OPTIMUS_CHECK(is_object()) << "JSON value is " << JsonTypeName(type_)
                             << ", not object";
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& source)
      : text_(text), source_(source) {}

  bool Parse(JsonValue* value, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(value)) {
      *error = error_;
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      *error = Err("trailing content after JSON document");
      return false;
    }
    return true;
  }

 private:
  std::string Err(const std::string& message) const {
    std::ostringstream os;
    os << source_ << ":" << line_ << ":" << column_ << ": " << message;
    return os.str();
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = Err(message);
    }
    return false;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  char Advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else {
        break;
      }
    }
  }

  bool Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    Advance();
    return true;
  }

  bool ParseValue(JsonValue* value) {
    if (AtEnd()) {
      return Fail("unexpected end of input");
    }
    value->line_ = line_;
    value->column_ = column_;
    const char c = Peek();
    switch (c) {
      case '{':
      case '[': {
        // Bounded recursion: the parser descends once per container level, so
        // a pathological input ("[[[[...") must not be allowed to run the
        // stack out. 96 levels is far beyond any scenario or request file.
        if (depth_ >= kMaxDepth) {
          return Fail("nesting depth exceeds " + std::to_string(kMaxDepth));
        }
        ++depth_;
        const bool ok = c == '{' ? ParseObject(value) : ParseArray(value);
        --depth_;
        return ok;
      }
      case '"':
        value->type_ = JsonType::kString;
        return ParseString(&value->string_);
      case 't':
      case 'f':
        return ParseBool(value);
      case 'n':
        return ParseNull(value);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber(value);
        }
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  bool ParseLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (AtEnd() || Peek() != *p) {
        return Fail(std::string("malformed literal (expected \"") + literal +
                    "\")");
      }
      Advance();
    }
    return true;
  }

  bool ParseNull(JsonValue* value) {
    value->type_ = JsonType::kNull;
    return ParseLiteral("null");
  }

  bool ParseBool(JsonValue* value) {
    value->type_ = JsonType::kBool;
    if (Peek() == 't') {
      value->bool_ = true;
      return ParseLiteral("true");
    }
    value->bool_ = false;
    return ParseLiteral("false");
  }

  bool ParseNumber(JsonValue* value) {
    value->type_ = JsonType::kNumber;
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') {
      Advance();
    }
    // RFC 8259 grammar, enforced strictly: the integer part is "0" or a
    // nonzero-led digit run ("01" is a typo, not octal), and '.'/exponent
    // must be followed by at least one digit ("1." and "1e" are rejected).
    const bool leading_zero = !AtEnd() && Peek() == '0';
    size_t int_digits = 0;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      Advance();
      ++int_digits;
    }
    if (leading_zero && int_digits > 1) {
      return Fail("leading zero in number");
    }
    if (!AtEnd() && Peek() == '.') {
      Advance();
      size_t frac_digits = 0;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        Advance();
        ++frac_digits;
      }
      if (frac_digits == 0) {
        return Fail("expected digit after decimal point");
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
        Advance();
      }
      size_t exp_digits = 0;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        Advance();
        ++exp_digits;
      }
      if (exp_digits == 0) {
        return Fail("expected digit in exponent");
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    value->number_ = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(value->number_)) {
      return Fail("malformed number '" + token + "'");
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) {
      return false;
    }
    out->clear();
    while (true) {
      if (AtEnd()) {
        return Fail("unterminated string");
      }
      const char c = Advance();
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        // Raw control characters (including literal newlines) must be
        // escaped per RFC 8259; accepting them would let an unterminated
        // string silently swallow the rest of an NDJSON request line.
        if (static_cast<unsigned char>(c) < 0x20) {
          return Fail("raw control character in string");
        }
        out->push_back(c);
        continue;
      }
      if (AtEnd()) {
        return Fail("unterminated escape sequence");
      }
      const char e = Advance();
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            if (AtEnd()) {
              return Fail("unterminated \\u escape");
            }
            const char h = Advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Fail("malformed \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // scenario files are config, not prose).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  bool ParseArray(JsonValue* value) {
    value->type_ = JsonType::kArray;
    if (!Expect('[')) {
      return false;
    }
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) {
        return false;
      }
      value->array_.push_back(std::move(element));
      SkipWhitespace();
      if (AtEnd()) {
        return Fail("unterminated array");
      }
      const char c = Advance();
      if (c == ']') {
        return true;
      }
      if (c != ',') {
        return Fail("expected ',' or ']' in array");
      }
      SkipWhitespace();
    }
  }

  bool ParseObject(JsonValue* value) {
    value->type_ = JsonType::kObject;
    if (!Expect('{')) {
      return false;
    }
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Fail("expected string key in object");
      }
      const int key_line = line_;
      const int key_column = column_;
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      for (const auto& [existing, unused] : value->members_) {
        if (existing == key) {
          line_ = key_line;
          column_ = key_column;
          return Fail("duplicate key \"" + key + "\"");
        }
      }
      SkipWhitespace();
      if (!Expect(':')) {
        return false;
      }
      SkipWhitespace();
      JsonValue member;
      if (!ParseValue(&member)) {
        return false;
      }
      value->members_.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (AtEnd()) {
        return Fail("unterminated object");
      }
      const char c = Advance();
      if (c == '}') {
        return true;
      }
      if (c != ',') {
        return Fail("expected ',' or '}' in object");
      }
    }
  }

  static constexpr int kMaxDepth = 96;

  const std::string& text_;
  const std::string source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int depth_ = 0;
  std::string error_;
};

bool ParseJson(const std::string& text, const std::string& source_name,
               JsonValue* value, std::string* error) {
  OPTIMUS_CHECK(value != nullptr);
  OPTIMUS_CHECK(error != nullptr);
  JsonParser parser(text, source_name.empty() ? "<json>" : source_name);
  return parser.Parse(value, error);
}

}  // namespace optimus
