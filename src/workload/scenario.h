// Scenario DSL (`scenario-v1`): one JSON file describing a complete
// experiment — workload generator, cluster topology, scheduling policies,
// fault plan, and simulator knobs — loadable by `optimus_sim --scenario` and
// fanned out over a grid by `optimus_sweep`.
//
// The paper's §6 evaluation is exactly this shape: replay one workload over
// one cluster under several schedulers and compare JCT/makespan. Encoding the
// shape declaratively means "open a new workload" is a new JSON file, not a
// C++ edit.
//
// Validation is strict: unknown keys are rejected with their line/column and
// the allowed-key set, policy names are checked against the SchedulerRegistry,
// and the assembled SimulatorConfig goes through the same Validate() the
// simulator constructor enforces. A scenario that loads is a scenario that
// runs. See docs/SCENARIOS.md for the schema reference.

#ifndef SRC_WORKLOAD_SCENARIO_H_
#define SRC_WORKLOAD_SCENARIO_H_

#include <string>
#include <utility>
#include <vector>

#include "src/cluster/server.h"
#include "src/sim/simulator.h"
#include "src/workload/generators.h"

namespace optimus {

// Schema version accepted by the parser; scenario files must carry it in
// their top-level "schema" key.
inline constexpr char kScenarioSchemaVersion[] = "scenario-v1";

// One homogeneous block of servers ("7x cpu-class, 6x gpu-class"); the
// paper's testbed is heterogeneous in exactly this way.
struct ServerClassSpec {
  std::string name;
  int count = 0;
  Resources capacity;
};

// Cluster topology: either the paper's 13-server testbed or an explicit list
// of server classes, laid out in contiguous id blocks (class order), plus an
// optional rack partition. Racks exist so fault plans can say "rack 2 loses
// power" without hand-resolving server ids; `rack=K` references in a
// scenario's fault plan expand to the rack's server range.
struct ClusterSpec {
  bool testbed = true;
  std::vector<ServerClassSpec> classes;  // used when testbed == false
  // Servers per rack (contiguous ids; the last rack may be short). 0 = the
  // whole cluster is one rack.
  int rack_size = 0;

  int NumServers() const;
  int NumRacks() const;
  // Rack k's inclusive server-id range; fatal when k is out of range.
  std::pair<int, int> RackRange(int rack) const;
  // Materializes the servers (fatal on an invalid spec).
  std::vector<Server> Build() const;

  // "cluster.<field>: problem" messages; returns whether the spec is valid.
  bool Validate(std::vector<std::string>* errors) const;
};

// A parsed scenario: everything needed to run its policy grid.
struct ScenarioSpec {
  std::string name;
  std::string description;
  uint64_t seed = 42;
  int repeats = 3;
  // Policy grid (SchedulerRegistry names); the first entry is the
  // normalization baseline in comparison tables.
  std::vector<std::string> policies;
  WorkloadSpec workload;
  ClusterSpec cluster;
  // Knobs + fault plan folded in; `policy` is applied per grid cell by
  // MakeSimConfig. The embedded fault plan has rack references already
  // expanded against `cluster`.
  SimulatorConfig sim;

  // Cross-field validation (policies registered, workload/cluster/sim each
  // valid); messages are scenario-relative ("workload.num_jobs: ...").
  bool Validate(std::vector<std::string>* errors) const;

  // SimulatorConfig for one grid cell: `sim` with the policy applied and
  // seed = this->seed + repeat. Fatal on an unregistered policy.
  SimulatorConfig MakeSimConfig(const std::string& policy, int repeat = 0) const;

  // The jobs for one repeat: GenerateJobs seeded with seed + repeat, so every
  // policy in the grid replays the identical workload per repeat.
  std::vector<JobSpec> JobsForRepeat(int repeat = 0) const;
};

// Parses scenario-v1 JSON text. On failure returns false and sets `*error`
// to a "<source>:<line>:<col>: <path>: message" diagnostic (parse errors) or
// a semicolon-joined validation list.
bool ParseScenario(const std::string& text, const std::string& source_name,
                   ScenarioSpec* spec, std::string* error);

// Reads and parses a scenario file.
bool LoadScenarioFile(const std::string& path, ScenarioSpec* spec,
                      std::string* error);

// Expands `rack=K` references in a fault-plan spec against the cluster's rack
// layout (producing the `servers=A-B` form ParseFaultPlan accepts). Returns
// false on an unknown rack or malformed reference.
bool ExpandRackReferences(const std::string& plan, const ClusterSpec& cluster,
                          std::string* expanded, std::string* error);

}  // namespace optimus

#endif  // SRC_WORKLOAD_SCENARIO_H_
