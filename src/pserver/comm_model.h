// Ground-truth step-time model of the parameter-server architecture.
//
// Instantiates Eqn 2 of the paper,
//
//   T = m*T_fwd + T_back + 2*(S/p)/(B/w') + T_update*w'/p + delta*w + delta'*p
//
// generalized with three effects the scheduler must cope with in practice:
//  - placement: communication between colocated worker/PS pairs bypasses the
//    network; cross-server transfer time follows the per-task accounting of
//    Theorem 1 (the slowest NIC determines the step's transfer time),
//  - PS load imbalance: the most loaded parameter server (from the block
//    assignment) gates both the transfer and the update term, and slicing
//    inflates the per-request overhead,
//  - stragglers: a per-worker speed factor scales the compute terms; for
//    synchronous training the slowest worker gates the step.
//
// The Optimus scheduler never calls this directly — it fits Eqns 3/4 to
// observed speeds (see src/perfmodel/speed_model.h). This model is the
// "physics" those observations come from.

#ifndef SRC_PSERVER_COMM_MODEL_H_
#define SRC_PSERVER_COMM_MODEL_H_

#include <vector>

#include "src/models/model_zoo.h"
#include "src/pserver/block_assignment.h"

namespace optimus {

// Cluster-wide communication constants.
struct CommConfig {
  // NIC bandwidth available to one container (bytes/s). The paper's testbed
  // uses a 1 GbE switch shared by several containers per server; ~50 MB/s
  // effective per container (protocol + contention overhead included).
  double container_bandwidth_bps = 50e6;
  // Fraction of workers that, in asynchronous training, contend at a
  // parameter server at the same instant (the paper assumes w' linear in w).
  double async_concurrency = 0.7;
};

// Per-server task counts for one job. Index i is a physical server; both
// vectors have the same length. An empty placement means "assume every
// transfer crosses the network" (the pure Eqn-2 regime).
struct JobPlacement {
  std::vector<int> workers_per_server;
  std::vector<int> ps_per_server;

  int TotalWorkers() const;
  int TotalPs() const;
  bool empty() const { return workers_per_server.empty() && ps_per_server.empty(); }
};

struct StepTimeInputs {
  const ModelSpec* model = nullptr;
  TrainingMode mode = TrainingMode::kSync;
  int num_ps = 1;
  int num_workers = 1;
  // Global batch M (sync). When <= 0 the model default is used.
  int global_batch = 0;
  // Per-worker mini-batch m (async). When <= 0 the model default is used.
  int async_minibatch = 0;
  // Load shape from the block assignment; defaults to perfectly balanced.
  PsLoadMetrics load;
  bool load_valid = false;
  // Optional placement (see JobPlacement); empty = all cross-server.
  JobPlacement placement;
  // Speed factor of the slowest worker (1.0 = healthy; 0.5 = half speed).
  double slowest_worker_factor = 1.0;
};

struct StepTimeBreakdown {
  double forward_s = 0.0;
  double backward_s = 0.0;
  double transfer_s = 0.0;
  double update_s = 0.0;
  double overhead_s = 0.0;
  double total_s = 0.0;
};

// Duration of one training step on (the slowest) worker.
StepTimeBreakdown ComputeStepTime(const StepTimeInputs& inputs, const CommConfig& config);

// Job-level training speed in steps per second: 1/T for synchronous training,
// w/T for asynchronous training (§3.2).
double TrainingSpeed(const StepTimeInputs& inputs, const CommConfig& config);

}  // namespace optimus

#endif  // SRC_PSERVER_COMM_MODEL_H_
