// Ground-truth step-time model of the parameter-server architecture.
//
// Instantiates Eqn 2 of the paper,
//
//   T = m*T_fwd + T_back + 2*(S/p)/(B/w') + T_update*w'/p + delta*w + delta'*p
//
// generalized with three effects the scheduler must cope with in practice:
//  - placement: communication between colocated worker/PS pairs bypasses the
//    network; cross-server transfer time follows the per-task accounting of
//    Theorem 1 (the slowest NIC determines the step's transfer time),
//  - PS load imbalance: the most loaded parameter server (from the block
//    assignment) gates both the transfer and the update term, and slicing
//    inflates the per-request overhead,
//  - stragglers: a per-worker speed factor scales the compute terms; for
//    synchronous training the slowest worker gates the step.
//
// The Optimus scheduler never calls this directly — it fits Eqns 3/4 to
// observed speeds (see src/perfmodel/speed_model.h). This model is the
// "physics" those observations come from.

#ifndef SRC_PSERVER_COMM_MODEL_H_
#define SRC_PSERVER_COMM_MODEL_H_

#include <vector>

#include "src/models/model_zoo.h"
#include "src/pserver/block_assignment.h"

namespace optimus {

// Cluster-wide communication constants.
struct CommConfig {
  // NIC bandwidth available to one container (bytes/s). The paper's testbed
  // uses a 1 GbE switch shared by several containers per server; ~50 MB/s
  // effective per container (protocol + contention overhead included).
  double container_bandwidth_bps = 50e6;
  // Fraction of workers that, in asynchronous training, contend at a
  // parameter server at the same instant (the paper assumes w' linear in w).
  double async_concurrency = 0.7;
};

// Per-server task counts for one job. Index i is a physical server; both
// vectors have the same length. An empty placement means "assume every
// transfer crosses the network" (the pure Eqn-2 regime).
struct JobPlacement {
  std::vector<int> workers_per_server;
  std::vector<int> ps_per_server;
  // Sorted indices of the servers hosting at least one task of this job.
  // Filled by the placement engine so consumers iterate O(tasks) instead of
  // O(servers); when empty (hand-built placements), consumers fall back to
  // scanning the dense vectors. When non-empty it MUST cover every nonzero
  // entry.
  std::vector<int> used_servers;
  // Compact (structure-of-arrays) form: per-used-server task counts parallel
  // to used_servers. When the dense vectors are empty but used_servers is
  // not, these carry the placement at O(tasks) memory instead of
  // O(n_servers) — the representation the sharded scale path emits so a
  // million-job run never holds million × n_servers dense vectors.
  std::vector<int> used_workers;
  std::vector<int> used_ps;

  int TotalWorkers() const;
  int TotalPs() const;
  bool compact() const {
    return workers_per_server.empty() && !used_servers.empty();
  }
  bool empty() const {
    return workers_per_server.empty() && ps_per_server.empty() &&
           used_servers.empty();
  }

  // Calls fn(server_index, workers, ps) for every server hosting at least
  // one task, in ascending server order.
  template <typename Fn>
  void ForEachUsed(Fn&& fn) const {
    if (compact()) {
      for (size_t i = 0; i < used_servers.size(); ++i) {
        fn(static_cast<size_t>(used_servers[i]), used_workers[i], used_ps[i]);
      }
      return;
    }
    if (!used_servers.empty()) {
      for (int s : used_servers) {
        fn(static_cast<size_t>(s), workers_per_server[static_cast<size_t>(s)],
           ps_per_server[static_cast<size_t>(s)]);
      }
      return;
    }
    for (size_t s = 0; s < workers_per_server.size(); ++s) {
      const int w = workers_per_server[s];
      const int p = ps_per_server[s];
      if (w != 0 || p != 0) {
        fn(s, w, p);
      }
    }
  }
};

struct StepTimeInputs {
  const ModelSpec* model = nullptr;
  TrainingMode mode = TrainingMode::kSync;
  // Communication architecture. Ring all-reduce jobs run zero PS tasks
  // (num_ps == 0) and exchange gradients worker-to-worker:
  //   T_transfer = 2*(w-1)/w * S / B_min
  // over the slowest link of the ring; the update and PS-side overhead terms
  // vanish. All-reduce is synchronous by construction.
  CommMode comm = CommMode::kParameterServer;
  int num_ps = 1;
  int num_workers = 1;
  // Global batch M (sync). When <= 0 the model default is used.
  int global_batch = 0;
  // Per-worker mini-batch m (async). When <= 0 the model default is used.
  int async_minibatch = 0;
  // Load shape from the block assignment; defaults to perfectly balanced.
  PsLoadMetrics load;
  bool load_valid = false;
  // Optional placement (see JobPlacement); empty = all cross-server.
  JobPlacement placement;
  // Borrowed alternative to `placement` for hot paths that already own a
  // JobPlacement: avoids copying two server-sized vectors per call. Takes
  // precedence over `placement` when set; the pointee must outlive the call.
  const JobPlacement* placement_ref = nullptr;
  // Speed factor of the slowest worker (1.0 = healthy; 0.5 = half speed).
  double slowest_worker_factor = 1.0;
  // Effective per-container network bandwidth (bytes/s) resolved by a
  // network model (src/net/): the fair share of the job's most contended
  // link. <= 0 selects CommConfig::container_bandwidth_bps — the flat
  // Eqn-2 constant — which keeps the default arithmetic bit-identical.
  double net_bw_bps = 0.0;
};

// The placement a step-time computation should use: the borrowed reference
// when present, the owned copy otherwise.
inline const JobPlacement& EffectivePlacement(const StepTimeInputs& in) {
  return in.placement_ref != nullptr ? *in.placement_ref : in.placement;
}

struct StepTimeBreakdown {
  double forward_s = 0.0;
  double backward_s = 0.0;
  double transfer_s = 0.0;
  double update_s = 0.0;
  double overhead_s = 0.0;
  double total_s = 0.0;
};

// Duration of one training step on (the slowest) worker.
StepTimeBreakdown ComputeStepTime(const StepTimeInputs& inputs, const CommConfig& config);

// Job-level training speed in steps per second: 1/T for synchronous training,
// w/T for asynchronous training (§3.2).
double TrainingSpeed(const StepTimeInputs& inputs, const CommConfig& config);

}  // namespace optimus

#endif  // SRC_PSERVER_COMM_MODEL_H_
