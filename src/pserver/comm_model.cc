#include "src/pserver/comm_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/logging.h"

namespace optimus {

int JobPlacement::TotalWorkers() const {
  if (compact()) {
    return std::accumulate(used_workers.begin(), used_workers.end(), 0);
  }
  if (!used_servers.empty()) {
    int total = 0;
    for (int s : used_servers) {
      total += workers_per_server[static_cast<size_t>(s)];
    }
    return total;
  }
  return std::accumulate(workers_per_server.begin(), workers_per_server.end(), 0);
}

int JobPlacement::TotalPs() const {
  if (compact()) {
    return std::accumulate(used_ps.begin(), used_ps.end(), 0);
  }
  if (!used_servers.empty()) {
    int total = 0;
    for (int s : used_servers) {
      total += ps_per_server[static_cast<size_t>(s)];
    }
    return total;
  }
  return std::accumulate(ps_per_server.begin(), ps_per_server.end(), 0);
}

namespace {

// Cross-server data transfer time per step (one push + one pull), following
// the Theorem-1 per-task accounting: each PS moves its shard to/from every
// remote worker through its own NIC; each worker moves every remote shard
// through its own NIC; the slowest task gates the step.
double CrossServerTransferTime(const StepTimeInputs& in, const CommConfig& config,
                               double max_ps_bytes, double concurrency_factor) {
  const double total_bytes = static_cast<double>(in.model->ParamBytes());
  const double bw =
      in.net_bw_bps > 0.0 ? in.net_bw_bps : config.container_bandwidth_bps;
  const int p = in.num_ps;
  const int w = in.num_workers;
  const JobPlacement& placement = EffectivePlacement(in);

  if (placement.empty()) {
    // All communication crosses the network. PS side: the busiest PS serves
    // w' concurrent workers, each exchanging its shard. Worker side: each
    // worker exchanges the full model through its NIC.
    const double ps_side = max_ps_bytes * static_cast<double>(w) * concurrency_factor / bw;
    const double worker_side = total_bytes / bw;
    return 2.0 * std::max(ps_side, worker_side);
  }

  OPTIMUS_CHECK_EQ(placement.workers_per_server.size(),
                   placement.ps_per_server.size());
  // Servers without any task of this job contribute nothing to the max, so
  // only the occupied ones need visiting.
  double worst = 0.0;
  placement.ForEachUsed([&](size_t /*k*/, int w_k, int p_k) {
    if (p_k > 0) {
      // The busiest PS (bytes-wise) could sit on any server; being
      // conservative, charge the max shard size to PSes on every server.
      const double remote_workers = static_cast<double>(w - w_k);
      const double ps_time =
          max_ps_bytes * remote_workers * concurrency_factor / bw;
      worst = std::max(worst, ps_time);
    }
    if (w_k > 0 && p > 0) {
      const double remote_shard_bytes =
          total_bytes * static_cast<double>(p - p_k) / static_cast<double>(p);
      const double worker_time = remote_shard_bytes / bw;
      worst = std::max(worst, worker_time);
    }
  });
  return 2.0 * worst;
}

// Ring all-reduce transfer time: each of the w workers sends and receives
// (w-1)/w of the model across the 2(w-1) phases of the ring, gated by the
// slowest link. A single-worker ring — or one whose workers share one server
// — never touches the network.
double AllReduceTransferTime(const StepTimeInputs& in, const CommConfig& config) {
  const int w = in.num_workers;
  if (w <= 1) {
    return 0.0;
  }
  const JobPlacement& placement = EffectivePlacement(in);
  if (!placement.empty()) {
    int servers_used = 0;
    placement.ForEachUsed([&](size_t /*k*/, int w_k, int /*p_k*/) {
      if (w_k > 0) {
        ++servers_used;
      }
    });
    if (servers_used <= 1) {
      return 0.0;
    }
  }
  const double bw =
      in.net_bw_bps > 0.0 ? in.net_bw_bps : config.container_bandwidth_bps;
  const double total_bytes = static_cast<double>(in.model->ParamBytes());
  return 2.0 * static_cast<double>(w - 1) / static_cast<double>(w) *
         total_bytes / bw;
}

}  // namespace

StepTimeBreakdown ComputeStepTime(const StepTimeInputs& in, const CommConfig& config) {
  OPTIMUS_CHECK(in.model != nullptr);
  const bool allreduce = in.comm == CommMode::kAllReduce;
  if (allreduce) {
    OPTIMUS_CHECK_EQ(in.num_ps, 0) << "all-reduce jobs run no PS tasks";
    OPTIMUS_CHECK(in.mode == TrainingMode::kSync)
        << "all-reduce jobs are synchronous";
  } else {
    OPTIMUS_CHECK_GE(in.num_ps, 1);
  }
  OPTIMUS_CHECK_GE(in.num_workers, 1);
  OPTIMUS_CHECK_GT(in.slowest_worker_factor, 0.0);
  const JobPlacement& placement = EffectivePlacement(in);
  if (!placement.empty()) {
    OPTIMUS_CHECK_EQ(placement.TotalWorkers(), in.num_workers);
    OPTIMUS_CHECK_EQ(placement.TotalPs(), in.num_ps);
  }

  const ModelSpec& model = *in.model;
  const int p = in.num_ps;
  const int w = in.num_workers;

  if (allreduce) {
    // Ring all-reduce: compute terms as in Eqn 2, transfer over the ring,
    // no PS update or PS-side overhead terms.
    const int global = in.global_batch > 0 ? in.global_batch : model.default_sync_batch;
    const double m = static_cast<double>(global) / static_cast<double>(w);
    const double m_eff = std::max(m, model.compute.min_effective_batch);
    StepTimeBreakdown out;
    out.forward_s =
        m_eff * model.compute.fwd_time_per_example_s / in.slowest_worker_factor;
    out.backward_s = model.compute.back_time_s / in.slowest_worker_factor;
    out.transfer_s = AllReduceTransferTime(in, config);
    out.update_s = 0.0;
    out.overhead_s = model.compute.overhead_per_worker_s * static_cast<double>(w);
    out.total_s = out.forward_s + out.backward_s + out.transfer_s + out.overhead_s;
    return out;
  }

  // Per-worker mini-batch size.
  double m = 0.0;
  if (in.mode == TrainingMode::kSync) {
    const int global = in.global_batch > 0 ? in.global_batch : model.default_sync_batch;
    m = static_cast<double>(global) / static_cast<double>(w);
  } else {
    m = static_cast<double>(in.async_minibatch > 0 ? in.async_minibatch
                                                   : model.default_async_minibatch);
  }

  const PsLoadMetrics load =
      in.load_valid ? in.load
                    : BalancedLoadMetrics(model.TotalParams(), p, model.num_param_blocks);
  const double max_frac = std::max(load.max_param_fraction, 1.0 / static_cast<double>(p));
  const double max_ps_bytes = static_cast<double>(model.ParamBytes()) * max_frac;

  // Async workers only partially overlap at a PS; sync workers all collide.
  const double concurrency =
      in.mode == TrainingMode::kSync ? 1.0 : config.async_concurrency;

  StepTimeBreakdown out;
  const double m_eff = std::max(m, model.compute.min_effective_batch);
  out.forward_s =
      m_eff * model.compute.fwd_time_per_example_s / in.slowest_worker_factor;
  out.backward_s = model.compute.back_time_s / in.slowest_worker_factor;
  out.transfer_s = CrossServerTransferTime(in, config, max_ps_bytes, concurrency);

  // The busiest PS applies its shard's update once per (concurrent) worker
  // gradient arrival: T_update * max_frac * w'.
  const double w_prime = std::max(1.0, concurrency * static_cast<double>(w));
  out.update_s = model.compute.update_time_full_s * max_frac * w_prime;

  // Connection/control overhead grows with task counts; block slicing adds
  // requests, inflating the PS-side constant proportionally.
  const double base_requests = std::max(1, model.num_param_blocks);
  const double request_factor =
      std::max(1.0, static_cast<double>(load.total_requests) / base_requests);
  out.overhead_s = model.compute.overhead_per_worker_s * static_cast<double>(w) +
                   model.compute.overhead_per_ps_s * static_cast<double>(p) *
                       request_factor;

  out.total_s =
      out.forward_s + out.backward_s + out.transfer_s + out.update_s + out.overhead_s;
  return out;
}

double TrainingSpeed(const StepTimeInputs& in, const CommConfig& config) {
  const StepTimeBreakdown breakdown = ComputeStepTime(in, config);
  OPTIMUS_CHECK_GT(breakdown.total_s, 0.0);
  if (in.mode == TrainingMode::kSync) {
    return 1.0 / breakdown.total_s;
  }
  return static_cast<double>(in.num_workers) / breakdown.total_s;
}

}  // namespace optimus
