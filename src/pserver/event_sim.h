// Message-level event simulation of one parameter-server training step.
//
// The closed-form step-time model (comm_model.h, instantiating Eqn 2) makes
// simplifying assumptions: transfer time from aggregate bytes over the
// bottleneck NIC, update cost folded into a single term, a free synchronous
// barrier. This module cross-validates those assumptions by simulating a
// training step at message granularity:
//
//  - every worker and parameter server owns a NIC of bandwidth B,
//  - gradient pushes and parameter pulls are individual flows; concurrent
//    flows share NICs max-min fairly (progressive filling),
//  - colocated worker/PS pairs exchange data over local memory (no NIC),
//  - a PS applies its shard's update after collecting all gradients (sync),
//  - the step completes when the slowest worker finishes its pull (sync
//    barrier).
//
// Asynchronous mode runs each worker's compute->push->update->pull loop
// independently for a number of steps, with FIFO update service at each PS,
// and reports the aggregate steps/s.
//
// The validation bench (bench_ext_eventsim_validation) sweeps (p, w) and
// placements and reports the deviation between this simulation and the
// closed-form model.

#ifndef SRC_PSERVER_EVENT_SIM_H_
#define SRC_PSERVER_EVENT_SIM_H_

#include <vector>

#include "src/pserver/comm_model.h"

namespace optimus {

struct EventSimOptions {
  // Async mode: number of steps each worker executes (speed is averaged).
  int async_steps_per_worker = 4;
  // Numerical guard for the fluid-flow progression.
  double min_rate_bps = 1.0;
};

struct EventSimResult {
  // Sync: duration of one step (slowest worker). Async: average time per
  // worker-step across the simulated window.
  double step_time_s = 0.0;
  // Job-level training speed implied by the simulation (steps/s; async
  // aggregates workers).
  double speed = 0.0;
  // Time the slowest worker spent blocked on network transfers.
  double transfer_time_s = 0.0;
};

// Simulates the job described by `inputs` (same inputs as ComputeStepTime:
// model, mode, counts, batch, PS-load shape, placement, straggler factor)
// under `config` bandwidths.
EventSimResult SimulateStep(const StepTimeInputs& inputs, const CommConfig& config,
                            const EventSimOptions& options = {});

}  // namespace optimus

#endif  // SRC_PSERVER_EVENT_SIM_H_
