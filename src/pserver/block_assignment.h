// Parameter-block to parameter-server assignment algorithms (§5.3).
//
// Two algorithms are implemented:
//  - MxnetAssigner: MXNet's default rule. Blocks smaller than a threshold
//    (10^6 parameters by default) go to a uniformly random PS; larger blocks
//    are sliced evenly across all PSes. This is the load-imbalance baseline
//    the paper identifies.
//  - PaaAssigner: the paper's Parameter Assignment Algorithm. Blocks are
//    processed in decreasing size order; tiny blocks (< 1% of the average
//    per-PS size) go to the PS with the fewest update requests, mid-size
//    blocks are best-fit into remaining capacity, and blocks larger than the
//    average are sliced into average-sized partitions placed on the least
//    loaded PS.

#ifndef SRC_PSERVER_BLOCK_ASSIGNMENT_H_
#define SRC_PSERVER_BLOCK_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/models/param_blocks.h"

namespace optimus {

// One contiguous slice of a parameter block placed on one parameter server.
// An unsliced block is a single slice covering the whole block. Each slice is
// one "parameter update request" per worker per training step.
struct BlockSlice {
  int block_id = 0;
  int64_t size = 0;  // parameters
  int ps = 0;        // parameter-server index in [0, num_ps)
};

struct BlockAssignment {
  int num_ps = 0;
  std::vector<BlockSlice> slices;
};

// Aggregate load statistics of an assignment; the three quantities §5.3
// minimizes, plus the bytes fraction the communication model consumes.
struct PsLoadMetrics {
  // max - min of per-PS parameter counts.
  int64_t param_size_diff = 0;
  // max - min of per-PS request counts.
  int64_t request_count_diff = 0;
  // Total per-worker update requests per step (= number of slices).
  int64_t total_requests = 0;
  // Parameter count on the most loaded PS.
  int64_t max_ps_params = 0;
  // max_ps_params / total params; equals 1/p under perfect balance.
  double max_param_fraction = 0.0;
};

PsLoadMetrics ComputeLoadMetrics(const BlockAssignment& assignment);

// MXNet's default threshold rule.
class MxnetAssigner {
 public:
  explicit MxnetAssigner(int64_t slice_threshold = 1000000)
      : slice_threshold_(slice_threshold) {}

  // `rng` drives the random placement of sub-threshold blocks.
  BlockAssignment Assign(const ParamBlockSizes& blocks, int num_ps, Rng* rng) const;

 private:
  int64_t slice_threshold_;
};

// The paper's PAA (§5.3).
class PaaAssigner {
 public:
  // `tiny_fraction` is the "very small" cutoff relative to avg_size (the
  // paper's default is 1%).
  explicit PaaAssigner(double tiny_fraction = 0.01) : tiny_fraction_(tiny_fraction) {}

  // `ps_weights` (optional) biases the least-loaded choice toward parameter
  // servers on less congested links: each PS carries a weight in (0, 1] and
  // "load" compares assigned[ps] / weight[ps], so a PS at weight 0.5 looks
  // twice as loaded as its raw parameter count. Null (the default) keeps the
  // unweighted comparison and is bit-identical to the historical assignment.
  BlockAssignment Assign(const ParamBlockSizes& blocks, int num_ps,
                         const std::vector<double>* ps_weights = nullptr) const;

 private:
  double tiny_fraction_;
};

// Convenience: load metrics of a hypothetical perfectly balanced assignment
// with one request per block (used when a simulation abstracts away blocks).
PsLoadMetrics BalancedLoadMetrics(int64_t total_params, int num_ps, int num_blocks);

}  // namespace optimus

#endif  // SRC_PSERVER_BLOCK_ASSIGNMENT_H_
