#include "src/pserver/event_sim.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "src/common/logging.h"

namespace optimus {

namespace {

// ---------------------------------------------------------------------------
// Fluid-flow network simulator: flows share NICs max-min fairly; timers model
// compute/update phases. Deterministic and event-driven (rates are
// recomputed whenever the flow set changes).
// ---------------------------------------------------------------------------
class FluidSimulator {
 public:
  using Callback = std::function<void()>;

  FluidSimulator(int num_nics, double bandwidth_bps, double local_bps,
                 double min_rate_bps)
      : nic_capacity_(num_nics, bandwidth_bps),
        local_bps_(local_bps),
        min_rate_bps_(min_rate_bps) {}

  double now() const { return now_; }

  void At(double time, Callback cb) {
    OPTIMUS_CHECK_GE(time, now_ - 1e-9);
    timers_.push({std::max(time, now_), next_timer_seq_++, std::move(cb)});
  }

  void After(double delay, Callback cb) { At(now_ + delay, std::move(cb)); }

  // nic < 0 means the endpoint is local to the peer (same server).
  void StartFlow(int src_nic, int dst_nic, double bytes, Callback on_done) {
    if (bytes <= 0.0) {
      After(0.0, std::move(on_done));
      return;
    }
    flows_.push_back({src_nic, dst_nic, bytes, 0.0, std::move(on_done)});
    rates_dirty_ = true;
  }

  // Runs until no timers and no flows remain.
  void Run() {
    while (!timers_.empty() || !flows_.empty()) {
      if (rates_dirty_) {
        RecomputeRates();
        rates_dirty_ = false;
      }

      const double next_timer =
          timers_.empty() ? std::numeric_limits<double>::infinity()
                          : timers_.top().time;
      double next_flow = std::numeric_limits<double>::infinity();
      for (const Flow& f : flows_) {
        OPTIMUS_CHECK_GT(f.rate, 0.0);
        next_flow = std::min(next_flow, now_ + f.bytes / f.rate);
      }

      const double t = std::min(next_timer, next_flow);
      OPTIMUS_CHECK(std::isfinite(t)) << "simulation stalled";
      AdvanceTo(t);

      if (next_flow <= next_timer) {
        // Fire all flows that completed (bytes drained to ~0).
        std::vector<Callback> done;
        for (size_t i = 0; i < flows_.size();) {
          if (flows_[i].bytes <= 1e-6) {
            done.push_back(std::move(flows_[i].on_done));
            flows_[i] = std::move(flows_.back());
            flows_.pop_back();
            rates_dirty_ = true;
          } else {
            ++i;
          }
        }
        for (Callback& cb : done) {
          cb();
        }
      } else {
        Timer timer = timers_.top();
        timers_.pop();
        timer.cb();
        // New flows may have been started by the callback.
      }
    }
  }

 private:
  struct Flow {
    int src_nic;
    int dst_nic;
    double bytes;
    double rate;
    Callback on_done;
  };
  struct Timer {
    double time;
    uint64_t seq;
    Callback cb;
    bool operator>(const Timer& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  void AdvanceTo(double t) {
    const double dt = t - now_;
    if (dt > 0.0) {
      for (Flow& f : flows_) {
        f.bytes = std::max(0.0, f.bytes - f.rate * dt);
      }
      now_ = t;
    }
  }

  // Max-min fair rates via progressive filling.
  void RecomputeRates() {
    const size_t n = flows_.size();
    std::vector<bool> frozen(n, false);
    std::vector<double> remaining = nic_capacity_;
    size_t unfrozen = 0;

    for (size_t i = 0; i < n; ++i) {
      if (flows_[i].src_nic < 0 && flows_[i].dst_nic < 0) {
        flows_[i].rate = local_bps_;  // memory-local transfer
        frozen[i] = true;
      } else {
        ++unfrozen;
      }
    }

    while (unfrozen > 0) {
      // Fair share per NIC among its unfrozen flows.
      std::vector<int> count(nic_capacity_.size(), 0);
      for (size_t i = 0; i < n; ++i) {
        if (frozen[i]) {
          continue;
        }
        if (flows_[i].src_nic >= 0) {
          ++count[flows_[i].src_nic];
        }
        if (flows_[i].dst_nic >= 0) {
          ++count[flows_[i].dst_nic];
        }
      }
      double best_share = std::numeric_limits<double>::infinity();
      int bottleneck = -1;
      for (size_t nic = 0; nic < nic_capacity_.size(); ++nic) {
        if (count[nic] > 0) {
          const double share = remaining[nic] / count[nic];
          if (share < best_share) {
            best_share = share;
            bottleneck = static_cast<int>(nic);
          }
        }
      }
      OPTIMUS_CHECK_GE(bottleneck, 0);
      best_share = std::max(best_share, min_rate_bps_);

      // Freeze every unfrozen flow incident to the bottleneck NIC.
      for (size_t i = 0; i < n; ++i) {
        if (frozen[i]) {
          continue;
        }
        if (flows_[i].src_nic == bottleneck || flows_[i].dst_nic == bottleneck) {
          flows_[i].rate = best_share;
          frozen[i] = true;
          --unfrozen;
          if (flows_[i].src_nic >= 0) {
            remaining[flows_[i].src_nic] =
                std::max(0.0, remaining[flows_[i].src_nic] - best_share);
          }
          if (flows_[i].dst_nic >= 0) {
            remaining[flows_[i].dst_nic] =
                std::max(0.0, remaining[flows_[i].dst_nic] - best_share);
          }
        }
      }
    }
  }

  double now_ = 0.0;
  std::vector<double> nic_capacity_;
  double local_bps_;
  double min_rate_bps_;
  std::vector<Flow> flows_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  uint64_t next_timer_seq_ = 0;
  bool rates_dirty_ = false;
};

// Task -> server mapping derived from a JobPlacement (workers first, then PS,
// filling servers in index order); server -1 when no placement is given
// (every pair is then treated as cross-server).
struct TaskLayout {
  std::vector<int> worker_server;
  std::vector<int> ps_server;
};

TaskLayout BuildLayout(const StepTimeInputs& in) {
  TaskLayout layout;
  layout.worker_server.assign(in.num_workers, -1);
  layout.ps_server.assign(in.num_ps, -2);  // distinct from workers by default
  const JobPlacement& placement = EffectivePlacement(in);
  if (placement.empty()) {
    return layout;
  }
  int w = 0;
  int p = 0;
  // ForEachUsed visits servers in ascending order filling workers then PS per
  // server — the same task ordering the dense scan produced — and also covers
  // the compact (used_servers-only) representation.
  placement.ForEachUsed([&](size_t s, int w_k, int p_k) {
    for (int i = 0; i < w_k; ++i) {
      layout.worker_server[w++] = static_cast<int>(s);
    }
    for (int i = 0; i < p_k; ++i) {
      layout.ps_server[p++] = static_cast<int>(s);
    }
  });
  OPTIMUS_CHECK_EQ(w, in.num_workers);
  OPTIMUS_CHECK_EQ(p, in.num_ps);
  return layout;
}

// Per-PS shard fractions: one "hot" PS holds the max fraction from the load
// shape; the rest split the remainder evenly (mirrors comm_model's view).
std::vector<double> ShardFractions(const StepTimeInputs& in) {
  const int p = in.num_ps;
  std::vector<double> frac(p, 1.0 / p);
  if (in.load_valid && p > 1) {
    const double hot = std::clamp(in.load.max_param_fraction, 1.0 / p, 1.0);
    frac.assign(p, (1.0 - hot) / (p - 1));
    frac[0] = hot;
  }
  return frac;
}

struct StepParams {
  double compute_s = 0.0;           // fwd + bwd for a healthy worker
  double overhead_s = 0.0;          // delta*w + delta'*p*request_factor
  double update_full_s = 0.0;       // T_update for the whole model
  std::vector<double> frac;         // shard fraction per PS
  std::vector<double> shard_bytes;  // bytes per PS shard
};

StepParams BuildParams(const StepTimeInputs& in) {
  const ModelSpec& model = *in.model;
  StepParams params;
  double m = 0.0;
  if (in.mode == TrainingMode::kSync) {
    const int global = in.global_batch > 0 ? in.global_batch : model.default_sync_batch;
    m = static_cast<double>(global) / in.num_workers;
  } else {
    m = static_cast<double>(in.async_minibatch > 0 ? in.async_minibatch
                                                   : model.default_async_minibatch);
  }
  const double m_eff = std::max(m, model.compute.min_effective_batch);
  params.compute_s = m_eff * model.compute.fwd_time_per_example_s +
                     model.compute.back_time_s;

  const double base_requests = std::max(1, model.num_param_blocks);
  const double request_factor =
      in.load_valid
          ? std::max(1.0, static_cast<double>(in.load.total_requests) / base_requests)
          : 1.0;
  params.overhead_s = model.compute.overhead_per_worker_s * in.num_workers +
                      model.compute.overhead_per_ps_s * in.num_ps * request_factor;
  params.update_full_s = model.compute.update_time_full_s;
  params.frac = ShardFractions(in);
  params.shard_bytes.resize(params.frac.size());
  for (size_t j = 0; j < params.frac.size(); ++j) {
    params.shard_bytes[j] = static_cast<double>(model.ParamBytes()) * params.frac[j];
  }
  return params;
}

// NIC ids: workers 0..w-1, PS w..w+p-1. Local (same-server) pairs bypass NICs.
struct NicIds {
  int w;
  int worker(int i) const { return i; }
  int ps(int j) const { return w + j; }
};

bool Colocated(const TaskLayout& layout, int worker, int ps) {
  return layout.worker_server[worker] >= 0 &&
         layout.worker_server[worker] == layout.ps_server[ps];
}

EventSimResult RunSync(const StepTimeInputs& in, const CommConfig& config,
                       const EventSimOptions& options) {
  const int w = in.num_workers;
  const int p = in.num_ps;
  const StepParams params = BuildParams(in);
  const TaskLayout layout = BuildLayout(in);
  const NicIds nic{w};

  FluidSimulator sim(w + p, config.container_bandwidth_bps,
                     /*local_bps=*/12.5e9, options.min_rate_bps);

  std::vector<int> ps_arrivals(p, 0);
  std::vector<int> worker_pulls(w, 0);
  std::vector<double> worker_done(w, 0.0);
  std::vector<double> worker_transfer_start(w, 0.0);
  double slowest_done = 0.0;

  // Phase wiring, innermost first.
  auto on_pull_done = [&](int i) {
    if (++worker_pulls[i] == p) {
      worker_done[i] = sim.now();
      slowest_done = std::max(slowest_done, sim.now());
    }
  };
  auto start_pulls = [&](int j) {
    for (int i = 0; i < w; ++i) {
      const bool local = Colocated(layout, i, j);
      sim.StartFlow(local ? -1 : nic.ps(j), local ? -1 : nic.worker(i),
                    params.shard_bytes[j], [&, i] { on_pull_done(i); });
    }
  };
  auto on_push_arrived = [&](int j) {
    if (++ps_arrivals[j] == w) {
      // All gradients collected: apply the shard update for all workers.
      const double update_s = params.update_full_s * params.frac[j] * w;
      sim.After(update_s, [&, j] { start_pulls(j); });
    }
  };
  auto start_pushes = [&](int i) {
    worker_transfer_start[i] = sim.now();
    for (int j = 0; j < p; ++j) {
      const bool local = Colocated(layout, i, j);
      sim.StartFlow(local ? -1 : nic.worker(i), local ? -1 : nic.ps(j),
                    params.shard_bytes[j], [&, j] { on_push_arrived(j); });
    }
  };

  for (int i = 0; i < w; ++i) {
    // The slowest worker computes slower (straggler factor); others are
    // healthy.
    const double factor = i == 0 ? in.slowest_worker_factor : 1.0;
    sim.After(params.compute_s / factor, [&, i] { start_pushes(i); });
  }
  sim.Run();

  EventSimResult result;
  result.step_time_s = slowest_done + params.overhead_s;
  result.speed = result.step_time_s > 0.0 ? 1.0 / result.step_time_s : 0.0;
  // Transfer time of the slowest worker: wall time from its push start to its
  // completion, minus the hot shard's update it waited on.
  double max_transfer = 0.0;
  for (int i = 0; i < w; ++i) {
    const double update_hot = params.update_full_s * params.frac[0] * w;
    max_transfer = std::max(
        max_transfer, worker_done[i] - worker_transfer_start[i] - update_hot);
  }
  result.transfer_time_s = std::max(0.0, max_transfer);
  return result;
}

EventSimResult RunAsync(const StepTimeInputs& in, const CommConfig& config,
                        const EventSimOptions& options) {
  const int w = in.num_workers;
  const int p = in.num_ps;
  const StepParams params = BuildParams(in);
  const TaskLayout layout = BuildLayout(in);
  const NicIds nic{w};

  FluidSimulator sim(w + p, config.container_bandwidth_bps,
                     /*local_bps=*/12.5e9, options.min_rate_bps);

  const int steps = std::max(1, options.async_steps_per_worker);
  std::vector<int> steps_left(w, steps);
  std::vector<int> pulls_pending(w, 0);
  std::vector<double> ps_busy_until(p, 0.0);
  double last_completion = 0.0;

  // Forward declaration via std::function for the per-worker loop.
  std::function<void(int)> begin_step;

  auto on_pull_done = [&](int i) {
    if (--pulls_pending[i] == 0) {
      last_completion = std::max(last_completion, sim.now());
      if (--steps_left[i] > 0) {
        begin_step(i);
      }
    }
  };
  auto on_push_arrived = [&](int i, int j) {
    // FIFO update service at the PS, then send fresh parameters back.
    const double start = std::max(sim.now(), ps_busy_until[j]);
    const double done = start + params.update_full_s * params.frac[j];
    ps_busy_until[j] = done;
    sim.At(done, [&, i, j] {
      const bool local = Colocated(layout, i, j);
      sim.StartFlow(local ? -1 : nic.ps(j), local ? -1 : nic.worker(i),
                    params.shard_bytes[j], [&, i] { on_pull_done(i); });
    });
  };
  begin_step = [&](int i) {
    const double factor = i == 0 ? in.slowest_worker_factor : 1.0;
    sim.After((params.compute_s + params.overhead_s) / factor, [&, i] {
      pulls_pending[i] = p;
      for (int j = 0; j < p; ++j) {
        const bool local = Colocated(layout, i, j);
        sim.StartFlow(local ? -1 : nic.worker(i), local ? -1 : nic.ps(j),
                      params.shard_bytes[j], [&, i, j] { on_push_arrived(i, j); });
      }
    });
  };

  for (int i = 0; i < w; ++i) {
    begin_step(i);
  }
  sim.Run();

  EventSimResult result;
  const double total_worker_steps = static_cast<double>(w) * steps;
  result.step_time_s = last_completion / steps;  // per-worker average
  result.speed = last_completion > 0.0 ? total_worker_steps / last_completion : 0.0;
  result.transfer_time_s = 0.0;  // not tracked for async
  return result;
}

}  // namespace

EventSimResult SimulateStep(const StepTimeInputs& in, const CommConfig& config,
                            const EventSimOptions& options) {
  OPTIMUS_CHECK(in.model != nullptr);
  OPTIMUS_CHECK_GE(in.num_workers, 1);
  OPTIMUS_CHECK_GE(in.num_ps, 1);
  const JobPlacement& placement = EffectivePlacement(in);
  if (!placement.empty()) {
    OPTIMUS_CHECK_EQ(placement.TotalWorkers(), in.num_workers);
    OPTIMUS_CHECK_EQ(placement.TotalPs(), in.num_ps);
  }
  return in.mode == TrainingMode::kSync ? RunSync(in, config, options)
                                        : RunAsync(in, config, options);
}

}  // namespace optimus
