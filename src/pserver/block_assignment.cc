#include "src/pserver/block_assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/logging.h"

namespace optimus {

PsLoadMetrics ComputeLoadMetrics(const BlockAssignment& assignment) {
  OPTIMUS_CHECK_GT(assignment.num_ps, 0);
  std::vector<int64_t> params(assignment.num_ps, 0);
  std::vector<int64_t> requests(assignment.num_ps, 0);
  int64_t total_params = 0;
  for (const BlockSlice& slice : assignment.slices) {
    OPTIMUS_CHECK_GE(slice.ps, 0);
    OPTIMUS_CHECK_LT(slice.ps, assignment.num_ps);
    params[slice.ps] += slice.size;
    requests[slice.ps] += 1;
    total_params += slice.size;
  }

  PsLoadMetrics metrics;
  metrics.total_requests = static_cast<int64_t>(assignment.slices.size());
  metrics.param_size_diff = *std::max_element(params.begin(), params.end()) -
                            *std::min_element(params.begin(), params.end());
  metrics.request_count_diff = *std::max_element(requests.begin(), requests.end()) -
                               *std::min_element(requests.begin(), requests.end());
  metrics.max_ps_params = *std::max_element(params.begin(), params.end());
  metrics.max_param_fraction =
      total_params > 0
          ? static_cast<double>(metrics.max_ps_params) / static_cast<double>(total_params)
          : 0.0;
  return metrics;
}

BlockAssignment MxnetAssigner::Assign(const ParamBlockSizes& blocks, int num_ps,
                                      Rng* rng) const {
  OPTIMUS_CHECK_GT(num_ps, 0);
  OPTIMUS_CHECK(rng != nullptr);
  BlockAssignment assignment;
  assignment.num_ps = num_ps;
  for (size_t i = 0; i < blocks.size(); ++i) {
    const int64_t size = blocks[i];
    if (size < slice_threshold_ || num_ps == 1) {
      const int ps = static_cast<int>(rng->UniformInt(0, num_ps - 1));
      assignment.slices.push_back({static_cast<int>(i), size, ps});
    } else {
      // Slice evenly among all parameter servers; remainder parameters are
      // spread one-per-PS over the first slices.
      const int64_t base = size / num_ps;
      int64_t remainder = size % num_ps;
      for (int ps = 0; ps < num_ps; ++ps) {
        int64_t part = base + (ps < remainder ? 1 : 0);
        if (part > 0) {
          assignment.slices.push_back({static_cast<int>(i), part, ps});
        }
      }
    }
  }
  return assignment;
}

BlockAssignment PaaAssigner::Assign(const ParamBlockSizes& blocks, int num_ps,
                                    const std::vector<double>* ps_weights) const {
  OPTIMUS_CHECK_GT(num_ps, 0);
  if (ps_weights != nullptr) {
    OPTIMUS_CHECK_EQ(static_cast<int>(ps_weights->size()), num_ps);
    for (double w : *ps_weights) {
      OPTIMUS_CHECK_GT(w, 0.0);
    }
  }
  BlockAssignment assignment;
  assignment.num_ps = num_ps;

  const int64_t total = std::accumulate(blocks.begin(), blocks.end(), int64_t{0});
  const double avg_size = static_cast<double>(total) / num_ps;
  const double tiny_cutoff = tiny_fraction_ * avg_size;

  // Process blocks in decreasing order of size (stable on block id so the
  // assignment is deterministic).
  std::vector<int> order(blocks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return blocks[a] > blocks[b]; });

  std::vector<int64_t> assigned(num_ps, 0);
  std::vector<int64_t> requests(num_ps, 0);

  auto place = [&](int block_id, int64_t size, int ps) {
    assignment.slices.push_back({block_id, size, ps});
    assigned[ps] += size;
    requests[ps] += 1;
  };

  // Weighted load of a PS: raw parameter count when no weights are given
  // (historical path, integer compare), assigned/weight otherwise.
  auto least_loaded_ps = [&]() {
    int best = 0;
    if (ps_weights == nullptr) {
      for (int ps = 1; ps < num_ps; ++ps) {
        if (assigned[ps] < assigned[best]) {
          best = ps;
        }
      }
      return best;
    }
    double best_load =
        static_cast<double>(assigned[0]) / (*ps_weights)[0];
    for (int ps = 1; ps < num_ps; ++ps) {
      const double load = static_cast<double>(assigned[ps]) / (*ps_weights)[ps];
      if (load < best_load) {
        best_load = load;
        best = ps;
      }
    }
    return best;
  };

  for (int block_id : order) {
    const int64_t size = blocks[block_id];
    const double dsize = static_cast<double>(size);
    if (dsize < tiny_cutoff) {
      // Tiny block: balance request counts.
      int best = 0;
      for (int ps = 1; ps < num_ps; ++ps) {
        if (requests[ps] < requests[best]) {
          best = ps;
        }
      }
      place(block_id, size, best);
    } else if (dsize <= avg_size) {
      // Mid-size block: best fit into the smallest remaining capacity that
      // still accommodates it; fall back to the least-loaded PS.
      int best = -1;
      double best_remaining = std::numeric_limits<double>::infinity();
      for (int ps = 0; ps < num_ps; ++ps) {
        const double remaining = avg_size - static_cast<double>(assigned[ps]);
        if (remaining >= dsize && remaining < best_remaining) {
          best_remaining = remaining;
          best = ps;
        }
      }
      if (best < 0) {
        best = least_loaded_ps();
      }
      place(block_id, size, best);
    } else {
      // Oversized block: slice into avg_size partitions (last one smaller),
      // each placed on the PS with the least assigned parameters.
      int64_t remaining = size;
      const int64_t part_size = std::max<int64_t>(1, static_cast<int64_t>(avg_size));
      while (remaining > 0) {
        const int64_t part = std::min(remaining, part_size);
        place(block_id, part, least_loaded_ps());
        remaining -= part;
      }
    }
  }
  return assignment;
}

PsLoadMetrics BalancedLoadMetrics(int64_t total_params, int num_ps, int num_blocks) {
  OPTIMUS_CHECK_GT(num_ps, 0);
  PsLoadMetrics metrics;
  metrics.param_size_diff = 0;
  metrics.request_count_diff = 0;
  metrics.total_requests = num_blocks;
  metrics.max_ps_params = (total_params + num_ps - 1) / num_ps;
  metrics.max_param_fraction = 1.0 / static_cast<double>(num_ps);
  return metrics;
}

}  // namespace optimus
