// Two-phase sharded scheduling round.
//
// Phase 1 (parallel, per shard): jobs are partitioned over the plan's shards
// (same-signature jobs stay together so a shared speed surface is warmed
// once) and each shard runs the configured allocator locally against its
// proportional slice of the cluster capacity, memoizing every speed probe in
// a shard-private SpeedSurfaceSet. Shards run on the PR-1 ThreadPool with
// index-owned result slots, so phase 1 is deterministic for any thread
// count. Its allocations are PROVISIONAL — they warm the memo tables and
// feed the migration accounting, nothing else.
//
// Phase 2 (serial fixup): the shard surfaces are handed to the round's
// global SpeedSurfaceSet as warm donors (SpeedSurfaceSet::WarmFrom) and the
// canonical allocator runs once over all jobs and the full capacity. This is
// the cross-shard fixup pass: starting from the per-shard provisional state,
// it migrates grants across shard boundaries until no marginal gain — local
// or cross-shard — remains above the allocator's threshold (the greedy's
// stop condition). Because speed surfaces memoize a pure function, a warm
// value is bitwise the value a cold evaluation would produce, so the fixup's
// decisions, its round stats, and the surface probe/eval counters are all
// bitwise identical to an unsharded round. The delta tracker (modeled on the
// PR-3 auditor's placement delta tracker) diffs provisional vs. final grants
// to report how much allocation actually crossed shard boundaries.
//
// The net effect: the expensive part of a round — speed-function evaluation
// against the comm/step-time model — fans out over shards/threads, while the
// serial fixup runs almost entirely on memoized values.

#ifndef SRC_SCHED_SHARDED_ROUND_H_
#define SRC_SCHED_SHARDED_ROUND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/shard_plan.h"
#include "src/common/threadpool.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/scheduler.h"
#include "src/sched/speed_surface.h"

namespace optimus {

// Profiling counters for the sharded round. These describe HOW the round
// computed its (bitwise-invariant) answer, so they vary with the shard
// count and belong with the wall-clock gauges in the nondeterministic tail
// of the metrics catalog, never in the deterministic prefix.
struct ShardedRoundStats {
  int64_t rounds = 0;             // sharded rounds executed
  int64_t local_grants = 0;       // phase-1 provisional grants, all shards
  int64_t local_pops = 0;         // phase-1 heap pops, all shards
  int64_t local_probes = 0;       // phase-1 surface probes, all shards
  int64_t local_evals = 0;        // phase-1 speed-function evaluations
  int64_t warmed_points = 0;      // memo points served to phase 2 by donors
  int64_t migrated_jobs = 0;      // jobs whose final grant != provisional
  int64_t migrated_tasks = 0;     // task-count delta, provisional vs final
};

// Builds a fresh allocator of the configured policy whose round counters
// land in `stats` (phase 1 must not advance the live allocator's stats: the
// live counters are part of the deterministic metrics contract and must
// match the unsharded round exactly).
using LocalAllocatorFactory =
    std::function<std::unique_ptr<Allocator>(OptimusAllocRoundStats* stats)>;

// Runs the two-phase round described above. Decisions are bitwise identical
// to `fixup.Allocate(jobs, capacity, surfaces)` for every (plan, pool)
// combination; with a single-shard plan it IS that call. `pool` may be null
// (phase 1 then runs inline). `stats` may be null.
AllocationMap ShardedAllocate(const ShardPlan& plan,
                              const std::vector<SchedJob>& jobs,
                              const Resources& capacity, const Allocator& fixup,
                              const LocalAllocatorFactory& local_factory,
                              SpeedSurfaceSet* surfaces, ThreadPool* pool,
                              ShardedRoundStats* stats);

}  // namespace optimus

#endif  // SRC_SCHED_SHARDED_ROUND_H_
