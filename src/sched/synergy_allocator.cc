#include "src/sched/synergy_allocator.h"

#include <algorithm>

namespace optimus {

SynergyAllocator::SynergyAllocator(SynergyAllocatorOptions options)
    : options_(options) {
  OptimusAllocatorOptions inner;
  inner.min_gain = options_.min_gain;
  inner.stats = options_.stats;
  inner_ = OptimusAllocator(inner);
}

Resources SynergyAllocator::DeflateDemand(const Resources& demand,
                                          double cpu_sensitivity,
                                          double mem_sensitivity,
                                          double min_provision) {
  const auto scale = [min_provision](double sensitivity) {
    sensitivity = std::clamp(sensitivity, 0.0, 1.0);
    return min_provision + (1.0 - min_provision) * sensitivity;
  };
  Resources out = demand;
  out.Set(ResourceType::kCpu, demand.cpu() * scale(cpu_sensitivity));
  out.Set(ResourceType::kMemoryGb, demand.memory_gb() * scale(mem_sensitivity));
  return out;
}

AllocationMap SynergyAllocator::Allocate(const std::vector<SchedJob>& jobs,
                                         const Resources& capacity,
                                         SpeedSurfaceSet* surfaces) const {
  std::vector<SchedJob> deflated = jobs;
  for (SchedJob& sj : deflated) {
    if (sj.cpu_sensitivity >= 1.0 && sj.mem_sensitivity >= 1.0) {
      continue;  // fully sensitive: demands unchanged
    }
    sj.worker_demand = DeflateDemand(sj.worker_demand, sj.cpu_sensitivity,
                                     sj.mem_sensitivity, options_.min_provision);
    sj.ps_demand = DeflateDemand(sj.ps_demand, sj.cpu_sensitivity,
                                 sj.mem_sensitivity, options_.min_provision);
  }
  // Speed functions, signatures, and job ids are untouched, so the surfaces
  // memoize exactly as in a plain Optimus round.
  return inner_.Allocate(deflated, capacity, surfaces);
}

}  // namespace optimus
