// SchedulerRegistry: the single catalog of scheduling policies.
//
// Every place that used to hard-code a policy switch — the optimus_sim CLI,
// the experiment presets, the comparison benches — resolves a policy *name*
// here instead. A policy bundles everything a SimulatorConfig needs to run
// it: the allocator factory (over the common Allocator interface in
// scheduler.h), the placement scheme, and the Optimus-specific feature
// toggles (PAA block assignment, straggler handling, young-job damping) that
// the paper's §6.1 comparisons switch off for the baselines.
//
// Built-in policies (registered in scheduler_registry.cc):
//   optimus  marginal-gain allocation (§4.1), packed placement, PAA,
//            straggler handling, 0.95 young-job damping
//   drf      Dominant Resource Fairness, load-balanced placement
//   tetris   SRTF + packing score, best-fit placement
//   fifo     strict arrival order (§2.3's head-of-line baseline)
//   srtf     pure shortest-remaining-time-first (Tetris score with the
//            packing term zeroed), load-balanced placement
//
// New policies register with SchedulerRegistry::Global().Register(...); the
// CLI's `--policy list`, the scenario DSL's policy validation, and the sweep
// tool pick them up with no further wiring.

#ifndef SRC_SCHED_SCHEDULER_REGISTRY_H_
#define SRC_SCHED_SCHEDULER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/sched/scheduler.h"

namespace optimus {

// Allocator families the simulator branches on for baseline-faithful
// behavior (e.g. DRF stays work-conserving and skips scaling hysteresis).
// Policies map onto the nearest family; the factory below decides the actual
// allocator instance.
enum class AllocatorPolicy {
  kOptimus,
  kDrf,
  kTetris,
  kFifo,
};

const char* AllocatorPolicyName(AllocatorPolicy policy);

struct SchedulerPolicyInfo {
  // Registry key, as accepted by --policy and the scenario DSL.
  std::string name;
  // Row label for comparison tables ("Optimus", "DRF", ...).
  std::string display_name;
  // One-line summary for `--policy list` / --help.
  std::string description;
  // Family for the simulator's behavioral branches.
  AllocatorPolicy allocator_family = AllocatorPolicy::kOptimus;
  PlacementPolicy placement = PlacementPolicy::kLoadBalance;
  bool use_paa = false;
  bool straggler_handling = false;
  double young_job_priority_factor = 1.0;
  // Constructs the allocator. `stats` carries the greedy-round counters the
  // metrics registry harvests; factories that do not use them ignore it.
  std::function<std::unique_ptr<Allocator>(OptimusAllocRoundStats* stats)> factory;
};

class SchedulerRegistry {
 public:
  // The process-wide registry, with the built-in policies pre-registered in
  // canonical order (optimus, drf, tetris, fifo, srtf).
  static SchedulerRegistry& Global();

  // Registers a policy; returns false (and changes nothing) when the name is
  // already taken or the info is incomplete (empty name / null factory).
  bool Register(SchedulerPolicyInfo info);

  // Looks up a policy; null when unknown.
  const SchedulerPolicyInfo* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  // Policy names in registration order (built-ins first).
  std::vector<std::string> Names() const;

  // Constructs the named policy's allocator; null on an unknown name.
  std::unique_ptr<Allocator> Create(const std::string& name,
                                    OptimusAllocRoundStats* stats) const;

  // "unknown policy 'x' (registered: optimus, drf, ...)" — the canonical
  // error message, so every frontend names the available set.
  std::string UnknownPolicyMessage(const std::string& name) const;

 private:
  SchedulerRegistry() = default;

  std::vector<SchedulerPolicyInfo> policies_;  // registration order
};

}  // namespace optimus

#endif  // SRC_SCHED_SCHEDULER_REGISTRY_H_
