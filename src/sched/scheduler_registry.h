// SchedulerRegistry: the single catalog of scheduling policies.
//
// Every place that used to hard-code a policy switch — the optimus_sim CLI,
// the experiment presets, the comparison benches — resolves a policy *name*
// here instead. A policy bundles everything a SimulatorConfig needs to run
// it: the allocator factory (over the common Allocator interface in
// scheduler.h), the placement scheme, and a PolicyTraits block with the
// behavioral toggles (PAA block assignment, straggler handling, young-job
// damping, batch adaptivity, sensitivity awareness) that the paper's §6.1
// comparisons switch off for the baselines. One path —
// ApplySchedulerPolicy in src/sim/experiment.h — copies the traits onto a
// SimulatorConfig; nothing else reads the toggles field by field.
//
// Built-in policies (registered in scheduler_registry.cc):
//   optimus       marginal-gain allocation (§4.1), packed placement, PAA,
//                 straggler handling, 0.95 young-job damping
//   optimus_rack  same allocation with rack-aware Theorem-1 placement
//   drf           Dominant Resource Fairness, load-balanced placement
//   tetris        SRTF + packing score, best-fit placement
//   fifo          strict arrival order (§2.3's head-of-line baseline)
//   srtf          pure shortest-remaining-time-first
//   goodput       Pollux-style goodput ascent: co-adapts global batch with
//                 (p, w) using statistical efficiency (docs/POLICIES.md)
//   synergy       Synergy-style resource-sensitive packing: under-provisions
//                 CPU/mem where the job's sensitivity slope is flat
//   dl2           DL2-style learned policy: linear scorer over job features,
//                 weights trained offline by tools/optimus_train_policy
//
// New policies register with SchedulerRegistry::Global().Register(...); the
// CLI's `--policy list`, the scenario DSL's policy validation, and the sweep
// tool pick them up with no further wiring. Register validates trait
// combinations (e.g. PAA requires a packed placement) and reports rejects
// through its error out-parameter.

#ifndef SRC_SCHED_SCHEDULER_REGISTRY_H_
#define SRC_SCHED_SCHEDULER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/sched/scheduler.h"

namespace optimus {

// Allocator families the simulator branches on for baseline-faithful
// behavior (e.g. DRF stays work-conserving and skips scaling hysteresis).
// Policies map onto the nearest family; the factory below decides the actual
// allocator instance.
enum class AllocatorPolicy {
  kOptimus,
  kDrf,
  kTetris,
  kFifo,
  kGoodput,
  kSynergy,
  kLearned,
};

const char* AllocatorPolicyName(AllocatorPolicy policy);

// The behavioral toggles a policy carries beyond its allocator + placement.
// ApplySchedulerPolicy copies these onto the SimulatorConfig in one place.
struct PolicyTraits {
  // Parameter-assignment-aware block placement (§5.2). Only meaningful — and
  // only valid — with a packed placement (kOptimusPack / kRackPack).
  bool use_paa = false;
  // Straggler detection + speculative relaunch (§5.3).
  bool straggler_handling = false;
  // Marginal-gain damping for jobs whose predictions are still unreliable
  // (§4.1 suggests 0.95). Must lie in (0, 1].
  double young_job_priority_factor = 1.0;
  // Policy may return Allocation::global_batch != 0 (Pollux-style).
  bool adapts_batch = false;
  // Policy reads SchedJob::{cpu,mem}_sensitivity (Synergy-style).
  bool uses_sensitivity = false;
};

// Constructs a policy's allocator instances. An interface (not a raw
// std::function) so stateful policies — e.g. DL2 carrying trained weights —
// can hold their state in the factory object instead of globals.
class PolicyFactory {
 public:
  virtual ~PolicyFactory() = default;

  // `stats` carries the greedy-round counters the metrics registry harvests;
  // factories that do not use them ignore it (it may be null).
  virtual std::unique_ptr<Allocator> Create(
      OptimusAllocRoundStats* stats) const = 0;
};

// Adapter for stateless policies expressed as a plain callable.
class FunctionPolicyFactory : public PolicyFactory {
 public:
  using Fn = std::function<std::unique_ptr<Allocator>(OptimusAllocRoundStats*)>;
  explicit FunctionPolicyFactory(Fn fn) : fn_(std::move(fn)) {}

  std::unique_ptr<Allocator> Create(OptimusAllocRoundStats* stats) const override {
    return fn_(stats);
  }

 private:
  Fn fn_;
};

struct SchedulerPolicyInfo {
  // Registry key, as accepted by --policy and the scenario DSL.
  std::string name;
  // Row label for comparison tables ("Optimus", "DRF", ...).
  std::string display_name;
  // One-line summary for `--policy list` / --help.
  std::string description;
  // Family for the simulator's behavioral branches.
  AllocatorPolicy allocator_family = AllocatorPolicy::kOptimus;
  PlacementPolicy placement = PlacementPolicy::kLoadBalance;
  PolicyTraits traits;
  // Shared so SchedulerPolicyInfo stays copyable; the factory itself is
  // immutable after registration.
  std::shared_ptr<const PolicyFactory> factory;

  // Convenience for stateless registrations.
  void SetFactory(FunctionPolicyFactory::Fn fn) {
    factory = std::make_shared<FunctionPolicyFactory>(std::move(fn));
  }
};

class SchedulerRegistry {
 public:
  // The process-wide registry, with the built-in policies pre-registered in
  // canonical order (optimus, optimus_rack, drf, tetris, fifo, srtf,
  // goodput, synergy, dl2).
  static SchedulerRegistry& Global();

  // Registers a policy. Returns false (and changes nothing) when the info is
  // invalid: empty name, null factory, duplicate name, or a trait-invalid
  // combination (PAA without a packed placement; young-job factor outside
  // (0, 1]). On rejection `error` (when non-null) receives a message naming
  // the offending policy and field.
  bool Register(SchedulerPolicyInfo info, std::string* error = nullptr);

  // Looks up a policy; null when unknown.
  const SchedulerPolicyInfo* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  // Policy names in registration order (built-ins first).
  std::vector<std::string> Names() const;

  // Policy infos in registration order, for catalog emitters.
  const std::vector<SchedulerPolicyInfo>& Policies() const { return policies_; }

  // Constructs the named policy's allocator; null on an unknown name.
  std::unique_ptr<Allocator> Create(const std::string& name,
                                    OptimusAllocRoundStats* stats) const;

  // "unknown policy 'x' (registered: optimus, drf, ...)" — the canonical
  // error message, so every frontend names the available set.
  std::string UnknownPolicyMessage(const std::string& name) const;

 private:
  SchedulerRegistry() = default;

  std::vector<SchedulerPolicyInfo> policies_;  // registration order
};

}  // namespace optimus

#endif  // SRC_SCHED_SCHEDULER_REGISTRY_H_
