#include "src/sched/what_if.h"

#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/sched/speed_surface.h"

namespace optimus {

namespace {

// Estimated completion times for every job under an allocation, probing
// through the round's shared speed surfaces.
std::map<int, double> CompletionTimes(const std::vector<SchedJob>& jobs,
                                      const AllocationMap& alloc,
                                      SpeedSurfaceSet* surfaces) {
  std::map<int, double> out;
  for (const SchedJob& job : jobs) {
    double t = std::numeric_limits<double>::infinity();
    if (auto it = alloc.find(job.job_id);
        it != alloc.end() && ActiveAllocation(it->second, job.comm)) {
      const double f =
          surfaces->Surface(job)->Speed(it->second.num_ps, it->second.num_workers);
      if (f > 0.0) {
        t = job.remaining_epochs / f;
      }
    }
    out[job.job_id] = t;
  }
  return out;
}

}  // namespace

WhatIfResult EvaluateAdmission(const Allocator& allocator,
                               const std::vector<SchedJob>& existing,
                               const SchedJob& candidate, const Resources& capacity) {
  for (const SchedJob& job : existing) {
    OPTIMUS_CHECK_NE(job.job_id, candidate.job_id)
        << "candidate job id collides with an existing job";
  }

  WhatIfResult result;

  // One memoized surface per job serves the whole analysis: the baseline
  // round, the admitted round, and the completion-time readouts re-probe the
  // same (p, w) points, so each is evaluated at most once.
  SpeedSurfaceSet surfaces;

  // Baseline: the cluster without the candidate.
  const AllocationMap baseline = allocator.Allocate(existing, capacity, &surfaces);
  result.baseline_completion_s = CompletionTimes(existing, baseline, &surfaces);

  // Scenario: the candidate competes with everyone else.
  std::vector<SchedJob> with_job = existing;
  with_job.push_back(candidate);
  const AllocationMap admitted = allocator.Allocate(with_job, capacity, &surfaces);
  result.with_job_completion_s = CompletionTimes(existing, admitted, &surfaces);

  if (auto it = admitted.find(candidate.job_id);
      it != admitted.end() && ActiveAllocation(it->second, candidate.comm)) {
    result.admitted = true;
    result.new_job_alloc = it->second;
    const double f =
        surfaces.Surface(candidate)->Speed(it->second.num_ps, it->second.num_workers);
    result.new_job_completion_s =
        f > 0.0 ? candidate.remaining_epochs / f
                : std::numeric_limits<double>::infinity();
  }

  for (const SchedJob& job : existing) {
    const double before = result.baseline_completion_s.at(job.job_id);
    const double after = result.with_job_completion_s.at(job.job_id);
    if (std::isfinite(before) && std::isfinite(after)) {
      result.total_slowdown_s += std::max(0.0, after - before);
    }
  }
  return result;
}

}  // namespace optimus
