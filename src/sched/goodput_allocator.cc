#include "src/sched/goodput_allocator.h"

#include <algorithm>
#include <cstring>

namespace optimus {

namespace {

// Boost-style hash mixing for deriving the composite surface signature.
uint64_t MixBits(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

bool BatchAdaptive(const SchedJob& job) {
  return job.mode == TrainingMode::kSync && job.batch_speed != nullptr &&
         job.batch_ref > 0 && job.batch_min > 0 && job.batch_max > job.batch_min;
}

}  // namespace

GoodputAllocator::GoodputAllocator(GoodputAllocatorOptions options)
    : options_(options) {
  OptimusAllocatorOptions inner;
  inner.min_gain = options_.min_gain;
  inner.stats = options_.stats;
  inner_ = OptimusAllocator(inner);
}

std::vector<int> GoodputAllocator::BatchRungs(const SchedJob& job, int max_rungs) {
  if (!BatchAdaptive(job) || max_rungs < 2) {
    return {};
  }
  std::vector<int> rungs;
  for (int64_t b = job.batch_min;
       b < job.batch_max && static_cast<int>(rungs.size()) < max_rungs - 1;
       b *= 2) {
    rungs.push_back(static_cast<int>(b));
  }
  rungs.push_back(job.batch_max);
  if (job.batch_ref >= job.batch_min && job.batch_ref <= job.batch_max) {
    rungs.push_back(job.batch_ref);
  }
  std::sort(rungs.begin(), rungs.end());
  rungs.erase(std::unique(rungs.begin(), rungs.end()), rungs.end());
  return rungs;
}

AllocationMap GoodputAllocator::Allocate(const std::vector<SchedJob>& jobs,
                                         const Resources& capacity,
                                         SpeedSurfaceSet* surfaces) const {
  std::vector<SchedJob> inner_jobs = jobs;
  std::vector<std::vector<int>> rungs_by(jobs.size());
  bool any_adaptive = false;
  for (size_t i = 0; i < jobs.size(); ++i) {
    std::vector<int> rungs = BatchRungs(jobs[i], options_.max_rungs);
    if (rungs.size() < 2) {
      continue;
    }
    any_adaptive = true;
    SchedJob& sj = inner_jobs[i];
    // Composite jobs get a *distinct* identity: a derived negative job id and
    // a mixed signature. The derived id keeps the composite surface out of
    // the per-job memo slot of the real job, so the sharded round's warm
    // donors never mix composite values into a plain surface (which would
    // break the shards-invariance contract); the mixed signature still lets
    // jobs with identical models and batch ranges share one composite grid.
    sj.job_id = -jobs[i].job_id - 1;
    if (sj.speed_signature != 0) {
      uint64_t h = MixBits(sj.speed_signature, 0x600dbadceULL);
      h = MixBits(h, static_cast<uint64_t>(sj.batch_min));
      h = MixBits(h, static_cast<uint64_t>(sj.batch_max));
      h = MixBits(h, static_cast<uint64_t>(sj.batch_ref));
      h = MixBits(h, DoubleBits(sj.grad_noise_scale));
      sj.speed_signature = h;
    }
    const BatchSpeedEstimate batch_speed = jobs[i].batch_speed;
    const double phi = jobs[i].grad_noise_scale;
    const double ref = jobs[i].batch_ref;
    sj.speed = [batch_speed, phi, ref, rungs](int p, int w) {
      double best = 0.0;
      for (int b : rungs) {
        const double s = batch_speed(p, w, b) * BatchProgressFactor(phi, ref, b);
        if (s > best) {
          best = s;
        }
      }
      return best;
    };
    rungs_by[i] = std::move(rungs);
  }

  AllocationMap raw = inner_.Allocate(inner_jobs, capacity, surfaces);
  if (!any_adaptive) {
    return raw;
  }

  // Map derived ids back to the real ones.
  AllocationMap result;
  for (const auto& [id, alloc] : raw) {
    result[id < 0 ? -id - 1 : id] = alloc;
  }

  // Pick each adaptive job's batch: the argmax rung at its final (p, w),
  // ties to the smallest batch. A handful of direct batch_speed evaluations
  // per job — pure functions of (p, w, b), so thread-count independent.
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (rungs_by[i].empty()) {
      continue;
    }
    auto it = result.find(jobs[i].job_id);
    if (it == result.end() || !ActiveAllocation(it->second, jobs[i].comm)) {
      continue;
    }
    const int p = it->second.num_ps;
    const int w = it->second.num_workers;
    int best_b = jobs[i].batch_ref;
    double best_s = 0.0;
    for (int b : rungs_by[i]) {
      const double s = jobs[i].batch_speed(p, w, b) *
                       BatchProgressFactor(jobs[i].grad_noise_scale,
                                           jobs[i].batch_ref, b);
      if (s > best_s) {
        best_s = s;
        best_b = b;
      }
    }
    it->second.global_batch = best_b;
  }
  return result;
}

}  // namespace optimus
