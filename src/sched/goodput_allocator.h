// Pollux-style goodput allocation: co-adapting global batch with (p, w).
//
// Goodput (Pollux, OSDI '20) is system throughput times statistical
// efficiency. Each batch-adaptive job exposes a physical speed estimate
// f(p, w, b) (SchedJob::batch_speed) over an admissible batch range
// [batch_min, batch_max] plus a gradient-noise-scale parameter; the
// allocator ranks (p, w) points by the *best* effective progress over a
// small geometric ladder of candidate batches ("rungs"):
//
//   g(p, w) = max_b  f(p, w, b) * BatchProgressFactor(phi, M0, b)
//
// and then runs Optimus's marginal-gain greedy (§4.1) over g. The composite
// surfaces memoize like any other speed surface (one shared grid per
// signature group), so the round cost matches plain Optimus times the rung
// count. After the greedy settles, each adaptive job's batch is the argmax
// rung at its final (p, w) (ties break to the smallest batch), returned as
// the advisory Allocation::global_batch.
//
// Jobs without batch adaptivity (async jobs, batch_min >= batch_max, or no
// batch_speed estimate) pass through untouched, so on a workload with fixed
// batches this allocator's decisions are identical to OptimusAllocator's.

#ifndef SRC_SCHED_GOODPUT_ALLOCATOR_H_
#define SRC_SCHED_GOODPUT_ALLOCATOR_H_

#include <vector>

#include "src/sched/optimus_allocator.h"
#include "src/sched/scheduler.h"

namespace optimus {

struct GoodputAllocatorOptions {
  // Forwarded to the inner Optimus greedy.
  double min_gain = 0.0;
  // Cap on the batch ladder size (geometric doubling from batch_min, always
  // including batch_max and the reference batch).
  int max_rungs = 8;
  // When non-null, the inner greedy accumulates per-round counters here.
  OptimusAllocRoundStats* stats = nullptr;
};

class GoodputAllocator : public Allocator {
 public:
  explicit GoodputAllocator(GoodputAllocatorOptions options = {});

  using Allocator::Allocate;
  AllocationMap Allocate(const std::vector<SchedJob>& jobs, const Resources& capacity,
                         SpeedSurfaceSet* surfaces) const override;

  const char* name() const override { return "goodput"; }

  // The candidate-batch ladder for `job`: geometric doubling from batch_min,
  // always including batch_max and the in-range reference batch, ascending
  // and deduplicated. Empty when the job is not batch-adaptive. Exposed for
  // tests.
  static std::vector<int> BatchRungs(const SchedJob& job, int max_rungs = 8);

 private:
  GoodputAllocatorOptions options_;
  OptimusAllocator inner_;
};

}  // namespace optimus

#endif  // SRC_SCHED_GOODPUT_ALLOCATOR_H_
