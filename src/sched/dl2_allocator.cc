#include "src/sched/dl2_allocator.h"

#include <algorithm>

#include "src/sched/speed_surface.h"

namespace optimus {

namespace {

constexpr double kSpeedEps = 1e-9;
constexpr double kShareEps = 1e-6;

double CompletionTime(double remaining_epochs, double speed) {
  return remaining_epochs / std::max(speed, kSpeedEps);
}

}  // namespace

Dl2Weights DefaultDl2Weights() {
  // optimus_train_policy --seed=42 --states=4000 (docs/POLICIES.md). The
  // trained policy leans on the completion-time reduction and the raw speed
  // gain; the NNLS fit zeroes the features that do not help it imitate the
  // Eqn-9 target.
  return Dl2Weights{0.452491452328211, 2.14627275400322, 45.0334267156831,
                    4.62754100153494e-05, 0.00472925292120949, 0};
}

std::array<double, kDl2NumFeatures> Dl2Features(double remaining_epochs,
                                                double f0, double f1,
                                                const Resources& unit_demand,
                                                const Resources& capacity,
                                                int num_ps, int num_workers) {
  const double t0 = CompletionTime(remaining_epochs, f0);
  const double t1 = CompletionTime(remaining_epochs, f1);
  std::array<double, kDl2NumFeatures> x = {};
  x[0] = 1.0;
  x[1] = std::max(0.0, t0 - t1) / (1.0 + t0);
  x[2] = std::max(0.0, f1 - f0);
  x[3] = 1.0 / (kShareEps + unit_demand.DominantShare(capacity));
  x[4] = 1.0 / (1.0 + remaining_epochs);
  x[5] = 1.0 / (1.0 + num_ps + num_workers);
  return x;
}

Dl2Allocator::Dl2Allocator(Dl2AllocatorOptions options) : options_(options) {}

AllocationMap Dl2Allocator::Allocate(const std::vector<SchedJob>& jobs,
                                     const Resources& capacity,
                                     SpeedSurfaceSet* surfaces) const {
  AllocationMap result;
  Resources used;

  // Anti-starvation seed, in input (arrival) order: one worker, plus one
  // parameter server for PS-mode jobs.
  for (const SchedJob& job : jobs) {
    Allocation seed;
    seed.num_workers = 1;
    seed.num_ps = (job.comm == CommMode::kAllReduce || job.max_ps <= 0) ? 0 : 1;
    const Resources d = AllocationDemand(job, seed);
    if (!capacity.Fits(used + d)) {
      continue;
    }
    used += d;
    result[job.job_id] = seed;
  }

  const Dl2Weights& w = options_.weights;
  while (true) {
    double best_score = 0.0;
    size_t best_index = jobs.size();
    bool best_is_worker = true;
    Allocation best_next;
    for (size_t i = 0; i < jobs.size(); ++i) {
      const SchedJob& job = jobs[i];
      auto it = result.find(job.job_id);
      if (it == result.end()) {
        continue;  // seed never fit; the job sits this round out
      }
      const Allocation cur = it->second;
      SpeedSurface* surface = surfaces->Surface(job);
      const double f0 = surface->Speed(cur.num_ps, cur.num_workers);
      // Candidate kinds in fixed order: worker first, then parameter server.
      for (int kind = 0; kind < 2; ++kind) {
        const bool is_worker = kind == 0;
        if (is_worker) {
          if (cur.num_workers >= job.max_workers) {
            continue;
          }
        } else {
          if (job.comm == CommMode::kAllReduce || job.max_ps <= 0 ||
              cur.num_ps >= job.max_ps) {
            continue;
          }
        }
        const Resources& unit = is_worker ? job.worker_demand : job.ps_demand;
        if (!capacity.Fits(used + unit)) {
          continue;
        }
        Allocation next = cur;
        (is_worker ? next.num_workers : next.num_ps) += 1;
        const double f1 = surface->Speed(next.num_ps, next.num_workers);
        const std::array<double, kDl2NumFeatures> x =
            Dl2Features(job.remaining_epochs, f0, f1, unit, capacity,
                        cur.num_ps, cur.num_workers);
        double score = 0.0;
        for (size_t k = 0; k < kDl2NumFeatures; ++k) {
          score += w[k] * x[k];
        }
        if (options_.stats != nullptr) {
          ++options_.stats->pops;
        }
        // Strict > makes ties deterministic: earliest job wins, and within a
        // job the worker candidate beats the PS candidate.
        if (score > best_score) {
          best_score = score;
          best_index = i;
          best_is_worker = is_worker;
          best_next = next;
        }
      }
    }
    if (best_index >= jobs.size()) {
      break;
    }
    const SchedJob& job = jobs[best_index];
    used += best_is_worker ? job.worker_demand : job.ps_demand;
    result[job.job_id] = best_next;
    if (options_.stats != nullptr) {
      ++options_.stats->grants;
    }
  }
  return result;
}

}  // namespace optimus
