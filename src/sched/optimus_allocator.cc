#include "src/sched/optimus_allocator.h"

#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/common/min_heap.h"
#include "src/sched/speed_surface.h"

namespace optimus {

Resources AllocationDemand(const SchedJob& job, const Allocation& alloc) {
  return job.worker_demand * alloc.num_workers + job.ps_demand * alloc.num_ps;
}

namespace {

// Estimated completion time at an allocation; infinity when speed is zero.
// All-reduce jobs (max_ps == 0) live on the p == 0 row.
double CompletionTime(const SchedJob& job, SpeedSurface* surface, int p, int w) {
  const int min_ps = job.max_ps > 0 ? 1 : 0;
  if (p < min_ps || w < 1) {
    return std::numeric_limits<double>::infinity();
  }
  const double f = surface->Speed(p, w);
  if (f <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return job.remaining_epochs / f;
}

enum class AddKind { kWorker, kPs };

struct Candidate {
  double gain = 0.0;
  int job_index = 0;
  AddKind kind = AddKind::kWorker;
  // Allocation snapshot the gain was computed at; entries whose snapshot no
  // longer matches are stale and get recomputed when popped.
  int at_ps = 0;
  int at_workers = 0;

  bool operator<(const Candidate& other) const {
    if (gain != other.gain) {
      return gain < other.gain;
    }
    // Deterministic tie-breaking: earlier-arrived jobs first, workers before
    // parameter servers.
    if (job_index != other.job_index) {
      return job_index > other.job_index;
    }
    return kind == AddKind::kPs && other.kind == AddKind::kWorker;
  }
};

// Max-first order for the shared MinHeap: a comes out before b when b ranks
// below a under the Candidate priority above.
struct CandidateBefore {
  bool operator()(const Candidate& a, const Candidate& b) const { return b < a; }
};

// Marginal gain of adding one task of `kind` to the job per Eqn 9, normalized
// by the dominant-resource footprint of the added task. Returns false when
// the addition is impossible (cap reached) or the gain is not above min_gain.
bool KindCandidate(const SchedJob& job, SpeedSurface* surface, const Allocation& alloc,
                   const Resources& capacity, AddKind kind, double min_gain,
                   Candidate* out) {
  if (job.remaining_epochs <= 0.0) {
    return false;
  }
  const double t_now = CompletionTime(job, surface, alloc.num_ps, alloc.num_workers);
  if (!std::isfinite(t_now)) {
    return false;
  }

  double t_next = std::numeric_limits<double>::infinity();
  double dom = 0.0;
  if (kind == AddKind::kWorker) {
    if (alloc.num_workers >= job.max_workers) {
      return false;
    }
    t_next = CompletionTime(job, surface, alloc.num_ps, alloc.num_workers + 1);
    dom = job.worker_demand.Get(job.worker_demand.DominantResource(capacity));
  } else {
    if (alloc.num_ps >= job.max_ps) {
      return false;
    }
    t_next = CompletionTime(job, surface, alloc.num_ps + 1, alloc.num_workers);
    dom = job.ps_demand.Get(job.ps_demand.DominantResource(capacity));
  }
  if (dom <= 0.0 || !std::isfinite(t_next)) {
    return false;
  }
  const double gain = (t_now - t_next) / dom * job.priority_factor;
  if (gain <= min_gain) {
    return false;
  }
  out->gain = gain;
  out->kind = kind;
  out->at_ps = alloc.num_ps;
  out->at_workers = alloc.num_workers;
  return true;
}

}  // namespace

AllocationMap OptimusAllocator::Allocate(const std::vector<SchedJob>& jobs,
                                         const Resources& capacity,
                                         SpeedSurfaceSet* surfaces) const {
  OPTIMUS_CHECK(surfaces != nullptr);
  AllocationMap result;
  std::vector<Allocation> alloc(jobs.size());
  Resources used;

  OptimusAllocRoundStats local_stats;
  OptimusAllocRoundStats* stats =
      options_.stats != nullptr ? options_.stats : &local_stats;

  // Seed every job with (1 PS, 1 worker) — or a single worker for all-reduce
  // jobs, which run no PS tasks — while capacity lasts, in input (arrival)
  // order; jobs that do not fit stay pending this interval.
  std::vector<bool> active(jobs.size(), false);
  std::vector<SpeedSurface*> surf(jobs.size(), nullptr);
  for (size_t i = 0; i < jobs.size(); ++i) {
    const int seed_ps = jobs[i].max_ps > 0 ? 1 : 0;
    const Resources seed =
        jobs[i].worker_demand + jobs[i].ps_demand * seed_ps;
    if (capacity.Fits(used + seed)) {
      used += seed;
      alloc[i] = {seed_ps, 1};
      active[i] = true;
      surf[i] = surfaces->Surface(jobs[i]);
    }
  }

  // Greedy marginal-gain filling with a lazily-validated max-heap holding one
  // fresh candidate per (job, kind). Whenever a job's allocation moves, both
  // of its kinds are re-pushed with gains recomputed at the new allocation;
  // the superseded entries are detected by their snapshot and discarded when
  // popped, so the heap top is always an exact maximum over current gains. A
  // kind is dropped once its task no longer fits the remaining capacity
  // (capacity only shrinks within a round).
  MinHeap<Candidate, CandidateBefore> heap;
  auto push_kind = [&](size_t i, AddKind kind) {
    Candidate c;
    c.job_index = static_cast<int>(i);
    if (KindCandidate(jobs[i], surf[i], alloc[i], capacity, kind, options_.min_gain,
                      &c)) {
      heap.push(c);
    }
  };
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!active[i]) {
      continue;
    }
    push_kind(i, AddKind::kWorker);
    push_kind(i, AddKind::kPs);
  }

  while (!heap.empty()) {
    const Candidate c = heap.top();
    heap.pop();
    ++stats->pops;
    const size_t i = static_cast<size_t>(c.job_index);
    // Stale: the job's allocation moved since this entry was pushed. Both
    // kinds were re-pushed with fresh gains at grant time, so this superseded
    // snapshot is simply discarded.
    if (c.at_ps != alloc[i].num_ps || c.at_workers != alloc[i].num_workers) {
      ++stats->stale_drops;
      continue;
    }

    const Resources demand =
        c.kind == AddKind::kWorker ? jobs[i].worker_demand : jobs[i].ps_demand;
    if (!capacity.Fits(used + demand)) {
      // Capacity only shrinks within a round and the per-task demand is
      // fixed, so this kind can never fit again: drop it. The job's other
      // kind keeps its own heap entry.
      ++stats->unfittable_drops;
      continue;
    }

    used += demand;
    if (c.kind == AddKind::kWorker) {
      ++alloc[i].num_workers;
    } else {
      ++alloc[i].num_ps;
    }
    ++stats->grants;
    // The allocation moved: re-push BOTH kinds with fresh gains (any older
    // entries of this job are now stale and will be discarded on pop). Note a
    // kind dropped as unfittable can re-enter here; it pops and drops again.
    push_kind(i, AddKind::kWorker);
    push_kind(i, AddKind::kPs);
  }

  for (size_t i = 0; i < jobs.size(); ++i) {
    if (active[i]) {
      result[jobs[i].job_id] = alloc[i];
    }
  }
  return result;
}

}  // namespace optimus
