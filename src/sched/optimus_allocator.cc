#include "src/sched/optimus_allocator.h"

#include <cmath>
#include <limits>
#include <queue>

#include "src/common/logging.h"

namespace optimus {

Resources AllocationDemand(const SchedJob& job, const Allocation& alloc) {
  return job.worker_demand * alloc.num_workers + job.ps_demand * alloc.num_ps;
}

namespace {

// Estimated completion time at an allocation; infinity when speed is zero.
double CompletionTime(const SchedJob& job, int p, int w) {
  if (p < 1 || w < 1) {
    return std::numeric_limits<double>::infinity();
  }
  const double f = job.speed(p, w);
  if (f <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return job.remaining_epochs / f;
}

enum class AddKind { kWorker, kPs };

struct Candidate {
  double gain = 0.0;
  int job_index = 0;
  AddKind kind = AddKind::kWorker;
  // Allocation snapshot the gain was computed at; stale entries are skipped.
  int at_ps = 0;
  int at_workers = 0;

  bool operator<(const Candidate& other) const { return gain < other.gain; }
};

// Computes the better of (add one worker, add one PS) for a job per Eqn 9,
// normalized by the dominant-resource footprint of the added task. Returns
// false when neither addition is possible (caps) or both gains are
// non-positive.
bool BestCandidate(const SchedJob& job, const Allocation& alloc,
                   const Resources& capacity, double min_gain, Candidate* out) {
  const double t_now = CompletionTime(job, alloc.num_ps, alloc.num_workers);
  if (!std::isfinite(t_now) || job.remaining_epochs <= 0.0) {
    return false;
  }

  double best_gain = min_gain;
  bool found = false;

  if (alloc.num_workers < job.max_workers) {
    const double t_next = CompletionTime(job, alloc.num_ps, alloc.num_workers + 1);
    const double dom = job.worker_demand.Get(job.worker_demand.DominantResource(capacity));
    if (dom > 0.0 && std::isfinite(t_next)) {
      const double gain = (t_now - t_next) / dom * job.priority_factor;
      if (gain > best_gain) {
        best_gain = gain;
        out->kind = AddKind::kWorker;
        found = true;
      }
    }
  }
  if (alloc.num_ps < job.max_ps) {
    const double t_next = CompletionTime(job, alloc.num_ps + 1, alloc.num_workers);
    const double dom = job.ps_demand.Get(job.ps_demand.DominantResource(capacity));
    if (dom > 0.0 && std::isfinite(t_next)) {
      const double gain = (t_now - t_next) / dom * job.priority_factor;
      if (gain > best_gain) {
        best_gain = gain;
        out->kind = AddKind::kPs;
        found = true;
      }
    }
  }
  if (found) {
    out->gain = best_gain;
    out->at_ps = alloc.num_ps;
    out->at_workers = alloc.num_workers;
  }
  return found;
}

}  // namespace

AllocationMap OptimusAllocator::Allocate(const std::vector<SchedJob>& jobs,
                                         const Resources& capacity) const {
  AllocationMap result;
  std::vector<Allocation> alloc(jobs.size());
  Resources used;

  // Seed every job with (1 PS, 1 worker) while capacity lasts, in input
  // (arrival) order; jobs that do not fit stay pending this interval.
  std::vector<bool> active(jobs.size(), false);
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Resources seed = jobs[i].worker_demand + jobs[i].ps_demand;
    if (capacity.Fits(used + seed)) {
      used += seed;
      alloc[i] = {1, 1};
      active[i] = true;
    }
  }

  // Greedy marginal-gain filling with a lazily-validated max-heap.
  std::priority_queue<Candidate> heap;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!active[i]) {
      continue;
    }
    Candidate c;
    c.job_index = static_cast<int>(i);
    if (BestCandidate(jobs[i], alloc[i], capacity, options_.min_gain, &c)) {
      heap.push(c);
    }
  }

  while (!heap.empty()) {
    Candidate c = heap.top();
    heap.pop();
    const size_t i = static_cast<size_t>(c.job_index);
    // Skip stale entries (the job's allocation moved since this was pushed).
    if (c.at_ps != alloc[i].num_ps || c.at_workers != alloc[i].num_workers) {
      Candidate fresh;
      fresh.job_index = c.job_index;
      if (BestCandidate(jobs[i], alloc[i], capacity, options_.min_gain, &fresh)) {
        heap.push(fresh);
      }
      continue;
    }

    const Resources demand =
        c.kind == AddKind::kWorker ? jobs[i].worker_demand : jobs[i].ps_demand;
    if (!capacity.Fits(used + demand)) {
      // This particular addition does not fit; the other kind (or other
      // jobs') might. Recompute restricted to what still fits by simply not
      // re-pushing this job for this kind — re-evaluate with the current
      // state; if its best candidate is the same unfittable kind, drop it.
      Candidate fresh;
      fresh.job_index = c.job_index;
      if (BestCandidate(jobs[i], alloc[i], capacity, options_.min_gain, &fresh)) {
        const Resources fresh_demand = fresh.kind == AddKind::kWorker
                                           ? jobs[i].worker_demand
                                           : jobs[i].ps_demand;
        if (fresh.kind != c.kind && capacity.Fits(used + fresh_demand)) {
          heap.push(fresh);
        }
      }
      continue;
    }

    used += demand;
    if (c.kind == AddKind::kWorker) {
      ++alloc[i].num_workers;
    } else {
      ++alloc[i].num_ps;
    }

    Candidate next;
    next.job_index = c.job_index;
    if (BestCandidate(jobs[i], alloc[i], capacity, options_.min_gain, &next)) {
      heap.push(next);
    }
  }

  for (size_t i = 0; i < jobs.size(); ++i) {
    if (active[i]) {
      result[jobs[i].job_id] = alloc[i];
    }
  }
  return result;
}

}  // namespace optimus
