#include "src/sched/scheduler_registry.h"

#include "src/sched/baseline_allocators.h"

namespace optimus {

const char* AllocatorPolicyName(AllocatorPolicy policy) {
  switch (policy) {
    case AllocatorPolicy::kOptimus:
      return "optimus";
    case AllocatorPolicy::kDrf:
      return "drf";
    case AllocatorPolicy::kTetris:
      return "tetris";
    case AllocatorPolicy::kFifo:
      return "fifo";
  }
  return "unknown";
}

namespace {

void RegisterBuiltins(SchedulerRegistry* registry) {
  {
    SchedulerPolicyInfo info;
    info.name = "optimus";
    info.display_name = "Optimus";
    info.description =
        "marginal-gain allocation (Sec 4.1), packed placement, PAA, "
        "straggler handling, 0.95 young-job damping";
    info.allocator_family = AllocatorPolicy::kOptimus;
    info.placement = PlacementPolicy::kOptimusPack;
    info.use_paa = true;
    info.straggler_handling = true;
    info.young_job_priority_factor = 0.95;
    info.factory = [](OptimusAllocRoundStats* stats) -> std::unique_ptr<Allocator> {
      OptimusAllocatorOptions options;
      options.stats = stats;  // greedy-round counters for the metrics registry
      return std::make_unique<OptimusAllocator>(options);
    };
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "optimus_rack";
    info.display_name = "Optimus (rack-aware)";
    info.description =
        "Optimus allocation with rack-aware Theorem-1 placement: each job is "
        "packed under one edge switch when any rack fits it, so its traffic "
        "avoids oversubscribed uplinks";
    info.allocator_family = AllocatorPolicy::kOptimus;
    info.placement = PlacementPolicy::kRackPack;
    info.use_paa = true;
    info.straggler_handling = true;
    info.young_job_priority_factor = 0.95;
    info.factory = [](OptimusAllocRoundStats* stats) -> std::unique_ptr<Allocator> {
      OptimusAllocatorOptions options;
      options.stats = stats;
      return std::make_unique<OptimusAllocator>(options);
    };
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "drf";
    info.display_name = "DRF";
    info.description =
        "Dominant Resource Fairness (Mesos/YARN-style progressive filling), "
        "load-balanced placement, stock MXNet block assignment";
    info.allocator_family = AllocatorPolicy::kDrf;
    info.placement = PlacementPolicy::kLoadBalance;
    info.factory = [](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
      return std::make_unique<DrfAllocator>();
    };
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "tetris";
    info.display_name = "Tetris";
    info.description =
        "Tetris-like: SRTF + packing-friendliness score, best-fit placement";
    info.allocator_family = AllocatorPolicy::kTetris;
    info.placement = PlacementPolicy::kTetrisPack;
    info.factory = [](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
      return std::make_unique<TetrisAllocator>();
    };
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "fifo";
    info.display_name = "FIFO";
    info.description =
        "strict arrival order, each job filled to its speed knee before the "
        "next (Sec 2.3's head-of-line baseline), load-balanced placement";
    info.allocator_family = AllocatorPolicy::kFifo;
    info.placement = PlacementPolicy::kLoadBalance;
    info.factory = [](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
      return std::make_unique<FifoAllocator>();
    };
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "srtf";
    info.display_name = "SRTF";
    info.description =
        "pure shortest-remaining-time-first (Tetris score with the packing "
        "term zeroed), load-balanced placement";
    info.allocator_family = AllocatorPolicy::kTetris;
    info.placement = PlacementPolicy::kLoadBalance;
    info.factory = [](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
      TetrisAllocatorOptions options;
      options.srtf_weight = 1.0;
      return std::make_unique<TetrisAllocator>(options);
    };
    registry->Register(std::move(info));
  }
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::Global() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

bool SchedulerRegistry::Register(SchedulerPolicyInfo info) {
  if (info.name.empty() || info.factory == nullptr || Find(info.name) != nullptr) {
    return false;
  }
  if (info.display_name.empty()) {
    info.display_name = info.name;
  }
  policies_.push_back(std::move(info));
  return true;
}

const SchedulerPolicyInfo* SchedulerRegistry::Find(const std::string& name) const {
  for (const SchedulerPolicyInfo& info : policies_) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

std::vector<std::string> SchedulerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(policies_.size());
  for (const SchedulerPolicyInfo& info : policies_) {
    names.push_back(info.name);
  }
  return names;
}

std::unique_ptr<Allocator> SchedulerRegistry::Create(
    const std::string& name, OptimusAllocRoundStats* stats) const {
  const SchedulerPolicyInfo* info = Find(name);
  if (info == nullptr) {
    return nullptr;
  }
  return info->factory(stats);
}

std::string SchedulerRegistry::UnknownPolicyMessage(const std::string& name) const {
  std::string msg = "unknown policy '" + name + "' (registered:";
  for (const SchedulerPolicyInfo& info : policies_) {
    msg += " " + info.name;
  }
  msg += ")";
  return msg;
}

}  // namespace optimus
