#include "src/sched/scheduler_registry.h"

#include "src/sched/baseline_allocators.h"
#include "src/sched/dl2_allocator.h"
#include "src/sched/goodput_allocator.h"
#include "src/sched/synergy_allocator.h"

namespace optimus {

const char* AllocatorPolicyName(AllocatorPolicy policy) {
  switch (policy) {
    case AllocatorPolicy::kOptimus:
      return "optimus";
    case AllocatorPolicy::kDrf:
      return "drf";
    case AllocatorPolicy::kTetris:
      return "tetris";
    case AllocatorPolicy::kFifo:
      return "fifo";
    case AllocatorPolicy::kGoodput:
      return "goodput";
    case AllocatorPolicy::kSynergy:
      return "synergy";
    case AllocatorPolicy::kLearned:
      return "dl2";
  }
  return "unknown";
}

namespace {

PolicyTraits OptimusTraits() {
  PolicyTraits traits;
  traits.use_paa = true;
  traits.straggler_handling = true;
  traits.young_job_priority_factor = 0.95;
  return traits;
}

void RegisterBuiltins(SchedulerRegistry* registry) {
  {
    SchedulerPolicyInfo info;
    info.name = "optimus";
    info.display_name = "Optimus";
    info.description =
        "marginal-gain allocation (Sec 4.1), packed placement, PAA, "
        "straggler handling, 0.95 young-job damping";
    info.allocator_family = AllocatorPolicy::kOptimus;
    info.placement = PlacementPolicy::kOptimusPack;
    info.traits = OptimusTraits();
    info.SetFactory([](OptimusAllocRoundStats* stats) -> std::unique_ptr<Allocator> {
      OptimusAllocatorOptions options;
      options.stats = stats;  // greedy-round counters for the metrics registry
      return std::make_unique<OptimusAllocator>(options);
    });
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "optimus_rack";
    info.display_name = "Optimus (rack-aware)";
    info.description =
        "Optimus allocation with rack-aware Theorem-1 placement: each job is "
        "packed under one edge switch when any rack fits it, so its traffic "
        "avoids oversubscribed uplinks";
    info.allocator_family = AllocatorPolicy::kOptimus;
    info.placement = PlacementPolicy::kRackPack;
    info.traits = OptimusTraits();
    info.SetFactory([](OptimusAllocRoundStats* stats) -> std::unique_ptr<Allocator> {
      OptimusAllocatorOptions options;
      options.stats = stats;
      return std::make_unique<OptimusAllocator>(options);
    });
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "drf";
    info.display_name = "DRF";
    info.description =
        "Dominant Resource Fairness (Mesos/YARN-style progressive filling), "
        "load-balanced placement, stock MXNet block assignment";
    info.allocator_family = AllocatorPolicy::kDrf;
    info.placement = PlacementPolicy::kLoadBalance;
    info.SetFactory([](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
      return std::make_unique<DrfAllocator>();
    });
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "tetris";
    info.display_name = "Tetris";
    info.description =
        "Tetris-like: SRTF + packing-friendliness score, best-fit placement";
    info.allocator_family = AllocatorPolicy::kTetris;
    info.placement = PlacementPolicy::kTetrisPack;
    info.SetFactory([](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
      return std::make_unique<TetrisAllocator>();
    });
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "fifo";
    info.display_name = "FIFO";
    info.description =
        "strict arrival order, each job filled to its speed knee before the "
        "next (Sec 2.3's head-of-line baseline), load-balanced placement";
    info.allocator_family = AllocatorPolicy::kFifo;
    info.placement = PlacementPolicy::kLoadBalance;
    info.SetFactory([](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
      return std::make_unique<FifoAllocator>();
    });
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "srtf";
    info.display_name = "SRTF";
    info.description =
        "pure shortest-remaining-time-first (Tetris score with the packing "
        "term zeroed), load-balanced placement";
    info.allocator_family = AllocatorPolicy::kTetris;
    info.placement = PlacementPolicy::kLoadBalance;
    info.SetFactory([](OptimusAllocRoundStats*) -> std::unique_ptr<Allocator> {
      TetrisAllocatorOptions options;
      options.srtf_weight = 1.0;
      return std::make_unique<TetrisAllocator>(options);
    });
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "goodput";
    info.display_name = "Goodput";
    info.description =
        "Pollux-style goodput ascent: co-adapts global batch with (p, w) "
        "using the statistical-efficiency model, Optimus greedy over the "
        "composite surfaces (docs/POLICIES.md)";
    info.allocator_family = AllocatorPolicy::kGoodput;
    info.placement = PlacementPolicy::kOptimusPack;
    info.traits = OptimusTraits();
    info.traits.adapts_batch = true;
    info.SetFactory([](OptimusAllocRoundStats* stats) -> std::unique_ptr<Allocator> {
      GoodputAllocatorOptions options;
      options.stats = stats;
      return std::make_unique<GoodputAllocator>(options);
    });
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "synergy";
    info.display_name = "Synergy";
    info.description =
        "Synergy-style resource-sensitive packing: CPU/mem demands are "
        "deflated where the job's sensitivity slope is flat, Optimus greedy "
        "on the deflated vectors (docs/POLICIES.md)";
    info.allocator_family = AllocatorPolicy::kSynergy;
    info.placement = PlacementPolicy::kOptimusPack;
    info.traits = OptimusTraits();
    info.traits.uses_sensitivity = true;
    info.SetFactory([](OptimusAllocRoundStats* stats) -> std::unique_ptr<Allocator> {
      SynergyAllocatorOptions options;
      options.stats = stats;
      return std::make_unique<SynergyAllocator>(options);
    });
    registry->Register(std::move(info));
  }
  {
    SchedulerPolicyInfo info;
    info.name = "dl2";
    info.display_name = "DL2";
    info.description =
        "DL2-style learned policy: linear scorer over per-job features, "
        "weights trained offline by tools/optimus_train_policy "
        "(docs/POLICIES.md)";
    info.allocator_family = AllocatorPolicy::kLearned;
    info.placement = PlacementPolicy::kOptimusPack;
    info.traits = OptimusTraits();
    // The learned scorer replaces Eqn 9 outright; the young-job damping is an
    // Eqn-9 input, so it does not apply here.
    info.traits.young_job_priority_factor = 1.0;
    info.factory = std::make_shared<Dl2PolicyFactory>(DefaultDl2Weights());
    registry->Register(std::move(info));
  }
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::Global() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

bool SchedulerRegistry::Register(SchedulerPolicyInfo info, std::string* error) {
  const auto reject = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "policy '" + info.name + "': " + message;
    }
    return false;
  };
  if (info.name.empty()) {
    return reject("name must be non-empty");
  }
  if (info.factory == nullptr) {
    return reject("factory must be non-null");
  }
  if (Find(info.name) != nullptr) {
    return reject("name is already registered");
  }
  if (info.traits.use_paa && info.placement != PlacementPolicy::kOptimusPack &&
      info.placement != PlacementPolicy::kRackPack) {
    return reject(
        "traits.use_paa requires a packed placement (optimus_pack or "
        "rack_pack); got placement '" +
        std::string(PlacementPolicyName(info.placement)) + "'");
  }
  if (!(info.traits.young_job_priority_factor > 0.0) ||
      info.traits.young_job_priority_factor > 1.0) {
    return reject("traits.young_job_priority_factor must lie in (0, 1]");
  }
  if (info.display_name.empty()) {
    info.display_name = info.name;
  }
  policies_.push_back(std::move(info));
  return true;
}

const SchedulerPolicyInfo* SchedulerRegistry::Find(const std::string& name) const {
  for (const SchedulerPolicyInfo& info : policies_) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

std::vector<std::string> SchedulerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(policies_.size());
  for (const SchedulerPolicyInfo& info : policies_) {
    names.push_back(info.name);
  }
  return names;
}

std::unique_ptr<Allocator> SchedulerRegistry::Create(
    const std::string& name, OptimusAllocRoundStats* stats) const {
  const SchedulerPolicyInfo* info = Find(name);
  if (info == nullptr) {
    return nullptr;
  }
  return info->factory->Create(stats);
}

std::string SchedulerRegistry::UnknownPolicyMessage(const std::string& name) const {
  std::string msg = "unknown policy '" + name + "' (registered:";
  for (const SchedulerPolicyInfo& info : policies_) {
    msg += " " + info.name;
  }
  msg += ")";
  return msg;
}

}  // namespace optimus
