// Task placement onto physical servers (§4.2).
//
// Three policies:
//  - kOptimusPack: the paper's scheme. Servers are sorted by available
//    capacity (descending), jobs by resource demand (ascending, smallest job
//    first to avoid starvation). Each job is packed onto the smallest number
//    of servers that can host it, with parameter servers and workers spread
//    evenly over those servers (Theorem 1).
//  - kLoadBalance: the Kubernetes-default behaviour used by the DRF baseline:
//    every task goes to the currently least-loaded server that fits it.
//  - kTetrisPack: fragmentation-minimizing packing used by the Tetris
//    baseline: every task goes to the *tightest* fitting server (best fit).
//  - kRackPack: the rack-aware Theorem-1 variant. When the cluster has a
//    rack layout (`rack_size` > 0), each job is first packed entirely under
//    one edge switch — racks tried in descending free-capacity order — so
//    its traffic never crosses an oversubscribed uplink; jobs no single rack
//    can hold fall back to the global kOptimusPack scheme.
//
// Jobs that cannot be placed under a policy are reported back; the simulator
// pauses them until the next interval (§4.2).

#ifndef SRC_SCHED_PLACEMENT_H_
#define SRC_SCHED_PLACEMENT_H_

#include <map>
#include <vector>

#include "src/cluster/server.h"
#include "src/cluster/shard_plan.h"
#include "src/pserver/comm_model.h"
#include "src/sched/scheduler.h"

namespace optimus {

enum class PlacementPolicy {
  kOptimusPack,
  kLoadBalance,
  kTetrisPack,
  kRackPack,
};

const char* PlacementPolicyName(PlacementPolicy policy);

struct PlacementJobInput {
  int job_id = 0;
  Allocation alloc;
  Resources worker_demand;
  Resources ps_demand;
  // Optional donor for the result's dense per-server vectors: when set (and
  // sized to the server list), PlaceJobs moves the buffers out of the pointee
  // and sparsely re-zeroes them via used_servers instead of allocating and
  // zero-filling two server-sized vectors per job — the dominant placement
  // cost on large clusters. The pointee is left moved-from; callers must not
  // read it again before reassigning it. Placement decisions are unaffected.
  JobPlacement* recycle = nullptr;
  // All-reduce jobs (num_ps == 0) are placeable with workers alone.
  CommMode comm = CommMode::kParameterServer;
};

struct PlacementResult {
  // job_id -> per-server task counts (vectors sized to the server list).
  std::map<int, JobPlacement> placements;
  // job_id -> the allocation actually placed. Differs from the requested
  // allocation only when shrink-to-fit reduced an unplaceable job.
  std::map<int, Allocation> effective_alloc;
  // Jobs that could not be placed at all (to be paused this interval).
  std::vector<int> unplaced;
};

// Places all jobs onto `servers` (consumed by value: placement starts from
// the servers' current free state and mutates the copies).
//
// The cluster-level capacity check of the allocators (Eqn 7) ignores
// per-server fragmentation, so an allocation can be infeasible to place. With
// `shrink_to_fit` (the default), such a job is retried at repeatedly halved
// (p, w) down to (1, 1) before being declared unplaced — without it, a
// deterministic allocator can pause the same job forever.
// `rack_size` feeds the kRackPack policy's rack layout (0 = no racks: the
// policy degrades to kOptimusPack); other policies ignore it.
PlacementResult PlaceJobs(PlacementPolicy policy,
                          const std::vector<PlacementJobInput>& jobs,
                          std::vector<Server> servers, bool shrink_to_fit = true,
                          int rack_size = 0);

// In-place variant: mutates `*servers` directly instead of consuming a copy.
// Lets a caller that reschedules every round keep one scratch server vector
// (refreshed by element-wise assignment, which reuses its capacity) instead
// of copy-constructing a fresh one per call. Decisions are identical to the
// by-value overload.
PlacementResult PlaceJobs(PlacementPolicy policy,
                          const std::vector<PlacementJobInput>& jobs,
                          std::vector<Server>* servers, bool shrink_to_fit = true,
                          int rack_size = 0);

// Sharded fast path for the Optimus packing policy. Placement DECISIONS are
// identical to PlaceJobs(kOptimusPack, ...) — it differs only in how they
// are computed and represented:
//  - one lazy max-heap per shard of the plan instead of a global heap; pops
//    run a deterministic tournament over the shard tops that reproduces the
//    global (free_cpu, server index) order exactly,
//  - a sound capacity lower bound skips k values whose first-k candidate
//    prefix provably cannot hold the job's total demand (failed
//    TryEvenPlacement attempts have no side effects, so skipping them cannot
//    change any decision),
//  - per-candidate free vectors are computed once per job instead of once
//    per (task, candidate) probe, and the tentative buffers are reused
//    across jobs,
//  - result placements use the compact JobPlacement form (used_servers /
//    used_workers / used_ps), so a round's placements cost O(tasks) memory
//    instead of O(n_servers) per job — the dominant cost at 100k servers.
// A donor in PlacementJobInput::recycle is adopted for its vector capacity
// whatever its shape (dense donors are dropped to the compact form).
PlacementResult PlaceJobsSharded(const ShardPlan& plan,
                                 const std::vector<PlacementJobInput>& jobs,
                                 std::vector<Server>* servers,
                                 bool shrink_to_fit = true);

}  // namespace optimus

#endif  // SRC_SCHED_PLACEMENT_H_
