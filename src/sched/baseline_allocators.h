// Baseline resource-allocation policies (§6.1).
//
// DrfAllocator — Dominant Resource Fairness (as in Mesos / YARN): progressive
// filling; the job with the smallest dominant share receives the next unit.
// It is work-conserving: it keeps handing out resources while any job can
// take more, regardless of whether the extra resources speed the job up.
//
// TetrisAllocator — Tetris-style: jobs with shorter estimated remaining time
// and smaller resource footprints are served first (a weighted combination of
// SRTF and packing-friendliness); allocation then fills each chosen job with
// units until its marginal benefit vanishes or a per-job cap is hit.
//
// Both baselines allocate in units of (1 parameter server + 1 worker): the
// paper fixes the PS:worker ratio at 1:1 for them.

#ifndef SRC_SCHED_BASELINE_ALLOCATORS_H_
#define SRC_SCHED_BASELINE_ALLOCATORS_H_

#include "src/sched/scheduler.h"

namespace optimus {

class DrfAllocator : public Allocator {
 public:
  using Allocator::Allocate;
  // DRF never consults job speeds; `surfaces` is accepted for interface
  // uniformity and left untouched.
  AllocationMap Allocate(const std::vector<SchedJob>& jobs, const Resources& capacity,
                         SpeedSurfaceSet* surfaces) const override;
  const char* name() const override { return "drf"; }
};

struct TetrisAllocatorOptions {
  // Weight of the SRTF term vs the packing term in the job score (both are
  // normalized to [0, 1] before mixing).
  double srtf_weight = 0.5;
  // Units given to the selected job per round.
  int units_per_round = 1;
  // A job stops receiving units once an extra unit improves its estimated
  // speed by less than this fraction (the speed-efficiency knee); keeps the
  // SRTF winner from hogging the whole cluster for negligible gain.
  double min_speedup = 0.04;
};

class TetrisAllocator : public Allocator {
 public:
  explicit TetrisAllocator(TetrisAllocatorOptions options = {}) : options_(options) {}
  using Allocator::Allocate;
  AllocationMap Allocate(const std::vector<SchedJob>& jobs, const Resources& capacity,
                         SpeedSurfaceSet* surfaces) const override;
  const char* name() const override { return "tetris"; }

 private:
  TetrisAllocatorOptions options_;
};

// FifoAllocator — the size-oblivious strategy §2.3 calls out (as in Spark):
// jobs are served strictly in arrival order; each job is filled to its
// speed-efficiency knee before the next job sees any resources, so a long
// job at the head of the queue blocks every short job behind it.
class FifoAllocator : public Allocator {
 public:
  // `min_speedup` is the same knee criterion Tetris uses.
  explicit FifoAllocator(double min_speedup = 0.04) : min_speedup_(min_speedup) {}
  using Allocator::Allocate;
  AllocationMap Allocate(const std::vector<SchedJob>& jobs, const Resources& capacity,
                         SpeedSurfaceSet* surfaces) const override;
  const char* name() const override { return "fifo"; }

 private:
  double min_speedup_;
};

}  // namespace optimus

#endif  // SRC_SCHED_BASELINE_ALLOCATORS_H_
