// What-if analysis for admission control and capacity planning.
//
// Cluster operators routinely ask "if this job arrived now, when would it
// finish, and how much would it slow everyone else down?". This module
// answers that question using the same machinery the scheduler itself uses:
// it re-runs the marginal-gain allocation with and without the hypothetical
// job against the current capacity and compares the estimated completion
// times.

#ifndef SRC_SCHED_WHAT_IF_H_
#define SRC_SCHED_WHAT_IF_H_

#include <map>
#include <vector>

#include "src/sched/scheduler.h"

namespace optimus {

struct WhatIfResult {
  // Whether the new job would receive any resources at all this interval.
  bool admitted = false;
  // Allocation and estimated completion time of the hypothetical job.
  Allocation new_job_alloc;
  double new_job_completion_s = 0.0;
  // Estimated completion time of each existing job before and after
  // admission (keyed by job_id; infinity when a job holds no resources).
  std::map<int, double> baseline_completion_s;
  std::map<int, double> with_job_completion_s;
  // Aggregate slowdown of the existing jobs: sum of completion-time deltas
  // over jobs with finite estimates in both scenarios.
  double total_slowdown_s = 0.0;
};

// Evaluates admitting `candidate` alongside `existing` jobs under `capacity`,
// using `allocator` for both scenarios. The candidate's job_id must not
// collide with an existing id.
WhatIfResult EvaluateAdmission(const Allocator& allocator,
                               const std::vector<SchedJob>& existing,
                               const SchedJob& candidate, const Resources& capacity);

}  // namespace optimus

#endif  // SRC_SCHED_WHAT_IF_H_
