// Memoized speed surfaces: the scheduling-round fast path.
//
// Every probe of `SchedJob::speed` is a std::function call that, in oracle
// mode, re-runs the full comm/step-time model. One scheduling round probes
// the same (p, w) points many times over: the greedy heap re-evaluates the
// completion time at the current allocation for every candidate, the
// exhaustive allocator revisits each configuration across branches, and
// what-if admission runs two full allocations over the same jobs. A
// SpeedSurface lazily caches f(p, w) over the job's feasible
// [1..max_ps] x [1..max_workers] grid (the single p == 0 row for all-reduce
// jobs, whose max_ps is 0) in a flat array so each point is
// evaluated at most once per round; a SpeedSurfaceSet owns the surfaces of
// one round and can share a single surface between jobs that declare
// identical speed functions (SchedJob::speed_signature).
//
// Thread-safety: a SpeedSurface / SpeedSurfaceSet is NOT thread-safe; each
// scheduling round (each allocator call chain) must own its own set. The
// parallel experiment runner satisfies this by construction: every simulator
// instance builds its rounds' surfaces privately.

#ifndef SRC_SCHED_SPEED_SURFACE_H_
#define SRC_SCHED_SPEED_SURFACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/sched/scheduler.h"

namespace optimus {

// Lazy memo table over one speed function. Probes inside the grid are cached;
// probes outside fall through to the underlying function every time.
class SpeedSurface {
 public:
  // `cache_enabled = false` turns the surface into a counting pass-through
  // (every probe re-evaluates); used to benchmark cached vs uncached rounds.
  SpeedSurface(SpeedEstimate speed, int max_ps, int max_workers,
               bool cache_enabled = true);

  // Memoized job.speed(p, w).
  double Speed(int p, int w);

  int max_ps() const { return max_ps_; }
  int max_workers() const { return max_workers_; }

  // Copies every point `other` has evaluated (and this surface has not) into
  // a warm side-cache; returns how many points were copied. The caller
  // guarantees the two surfaces memoize pointwise-identical functions (same
  // signature contract as SpeedSurfaceSet sharing), so a warm value is
  // bitwise what evaluating here would produce. Warm points do NOT touch the
  // probe/eval counters at absorb time: the first Speed() probe of a warm
  // point counts as one eval (served from the cache, no function call), so
  // the counters a round reports are identical whether its surfaces were
  // pre-warmed by shard-local passes or evaluated cold.
  int64_t AbsorbFrom(const SpeedSurface& other);

  // Total Speed() calls vs underlying speed-function evaluations.
  int64_t probes() const { return probes_; }
  int64_t evals() const { return evals_; }

 private:
  // Grid rows: [1..max_ps] for PS jobs, the single p == 0 row for all-reduce
  // jobs (max_ps == 0).
  size_t GridSize() const {
    return static_cast<size_t>(max_ps_ == 0 ? 1 : max_ps_) * max_workers_;
  }

  SpeedEstimate speed_;
  int max_ps_;
  int max_workers_;
  bool cache_enabled_;
  // NaN = not yet evaluated. Allocated lazily on the first in-grid probe so
  // jobs that are never probed (e.g. DRF rounds) cost nothing.
  std::vector<double> grid_;
  // Nonzero marks a grid cell filled by AbsorbFrom but not yet probed; the
  // first probe charges the eval the canonical (unwarmed) round would have
  // paid. Allocated only when AbsorbFrom copies at least one point.
  std::vector<uint8_t> warm_unprobed_;
  int64_t probes_ = 0;
  int64_t evals_ = 0;
};

// The surfaces of one scheduling round, keyed by job id. Jobs carrying the
// same nonzero `speed_signature` (and identical caps) share one surface: the
// caller guarantees their speed functions are identical, so a point evaluated
// for one job is valid for all of them.
class SpeedSurfaceSet {
 public:
  explicit SpeedSurfaceSet(bool cache_enabled = true)
      : cache_enabled_(cache_enabled) {}

  // Returns the surface for `job`, creating (or signature-sharing) it on
  // first use. The returned pointer stays valid for the set's lifetime.
  SpeedSurface* Surface(const SchedJob& job);

  // Shared handle to `job`'s surface, or null when none exists yet. Never
  // creates a surface (so it cannot perturb num_surfaces()).
  std::shared_ptr<SpeedSurface> Find(int job_id) const;

  // Registers `donor` as a warm source for `job`'s surface: when (and only
  // when) a later Surface() call creates that surface, it absorbs the
  // donor's already-evaluated points first (see SpeedSurface::AbsorbFrom).
  // Surfaces are still created purely on demand, so a warmed round reports
  // the same surface count, probe count, and eval count as a cold one. Used
  // by the sharded round to hand shard-local phase-1 surfaces to the serial
  // fixup pass.
  void WarmFrom(const SchedJob& job, std::shared_ptr<SpeedSurface> donor);

  // Points served from warm donors so far (profiling only).
  int64_t warmed_points() const { return warmed_points_; }

  bool cache_enabled() const { return cache_enabled_; }
  size_t num_surfaces() const { return surfaces_.size(); }

  // Aggregate counters over all distinct surfaces (shared surfaces counted
  // once).
  int64_t probes() const;
  int64_t evals() const;
  // Fraction of probes served from the memo table; 0 when nothing was probed.
  double hit_rate() const;

 private:
  bool cache_enabled_;
  std::vector<std::shared_ptr<SpeedSurface>> surfaces_;
  std::map<int, std::shared_ptr<SpeedSurface>> by_job_;
  std::map<std::tuple<uint64_t, int, int>, std::shared_ptr<SpeedSurface>>
      by_signature_;
  // Pending warm donors, applied when the matching surface is created.
  // Signature-carrying jobs key by (signature, caps) so one absorption
  // covers every job sharing the surface; signature-0 jobs key by job id.
  std::map<std::tuple<uint64_t, int, int>, std::vector<std::shared_ptr<SpeedSurface>>>
      warm_by_signature_;
  std::map<int, std::vector<std::shared_ptr<SpeedSurface>>> warm_by_job_;
  int64_t warmed_points_ = 0;
};

}  // namespace optimus

#endif  // SRC_SCHED_SPEED_SURFACE_H_
