// Synergy-style resource-sensitive allocation.
//
// Synergy (OSDI '22) observes that DL jobs are not uniformly sensitive to
// every resource: many models barely slow down when given less CPU or memory
// than the GPU-proportional default. Each job carries a per-resource
// sensitivity profile (SchedJob::{cpu,mem}_sensitivity in [0, 1]); this
// allocator deflates the CPU and memory components of the job's per-task
// demands toward a provisioning floor where the profile says the slope is
// flat:
//
//   effective_demand = demand * (floor + (1 - floor) * sensitivity)
//
// and then runs Optimus's marginal-gain greedy on the deflated demands. Both
// the capacity accounting and the Eqn-9 dominant-share denominator see the
// deflated vectors, so insensitive jobs look cheaper and the cluster packs
// more aggressively where it is safe. Placement still arbitrates with the
// *true* demands (shrink-to-fit), so the deflation can never produce an
// infeasible placement — it only reorders who gets capacity first.
//
// Jobs with the default fully-sensitive profile (1.0 / 1.0) are untouched;
// on such a workload this allocator's decisions are identical to
// OptimusAllocator's.

#ifndef SRC_SCHED_SYNERGY_ALLOCATOR_H_
#define SRC_SCHED_SYNERGY_ALLOCATOR_H_

#include <vector>

#include "src/sched/optimus_allocator.h"
#include "src/sched/scheduler.h"

namespace optimus {

struct SynergyAllocatorOptions {
  // Provisioning floor: even a fully insensitive job keeps this fraction of
  // its CPU/memory demand (it still needs to feed its GPUs eventually).
  double min_provision = 0.25;
  // Forwarded to the inner Optimus greedy.
  double min_gain = 0.0;
  // When non-null, the inner greedy accumulates per-round counters here.
  OptimusAllocRoundStats* stats = nullptr;
};

class SynergyAllocator : public Allocator {
 public:
  explicit SynergyAllocator(SynergyAllocatorOptions options = {});

  using Allocator::Allocate;
  AllocationMap Allocate(const std::vector<SchedJob>& jobs, const Resources& capacity,
                         SpeedSurfaceSet* surfaces) const override;

  const char* name() const override { return "synergy"; }

  // The deflated demand vector for one task. Exposed for tests.
  static Resources DeflateDemand(const Resources& demand, double cpu_sensitivity,
                                 double mem_sensitivity, double min_provision);

 private:
  SynergyAllocatorOptions options_;
  OptimusAllocator inner_;
};

}  // namespace optimus

#endif  // SRC_SCHED_SYNERGY_ALLOCATOR_H_
