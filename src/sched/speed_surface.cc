#include "src/sched/speed_surface.h"

#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace optimus {

SpeedSurface::SpeedSurface(SpeedEstimate speed, int max_ps, int max_workers,
                           bool cache_enabled)
    : speed_(std::move(speed)),
      max_ps_(max_ps),
      max_workers_(max_workers),
      cache_enabled_(cache_enabled) {
  OPTIMUS_CHECK_GE(max_ps_, 1);
  OPTIMUS_CHECK_GE(max_workers_, 1);
  OPTIMUS_CHECK(speed_ != nullptr);
}

double SpeedSurface::Speed(int p, int w) {
  ++probes_;
  if (!cache_enabled_ || p < 1 || p > max_ps_ || w < 1 || w > max_workers_) {
    ++evals_;
    return speed_(p, w);
  }
  if (grid_.empty()) {
    grid_.assign(static_cast<size_t>(max_ps_) * max_workers_,
                 std::numeric_limits<double>::quiet_NaN());
  }
  double& cell = grid_[static_cast<size_t>(p - 1) * max_workers_ + (w - 1)];
  if (std::isnan(cell)) {
    ++evals_;
    cell = speed_(p, w);
  }
  return cell;
}

SpeedSurface* SpeedSurfaceSet::Surface(const SchedJob& job) {
  if (auto it = by_job_.find(job.job_id); it != by_job_.end()) {
    return it->second.get();
  }
  std::shared_ptr<SpeedSurface> surface;
  if (job.speed_signature != 0) {
    const auto key =
        std::make_tuple(job.speed_signature, job.max_ps, job.max_workers);
    if (auto it = by_signature_.find(key); it != by_signature_.end()) {
      surface = it->second;
    } else {
      surface = std::make_shared<SpeedSurface>(job.speed, job.max_ps,
                                               job.max_workers, cache_enabled_);
      by_signature_[key] = surface;
      surfaces_.push_back(surface);
    }
  } else {
    surface = std::make_shared<SpeedSurface>(job.speed, job.max_ps,
                                             job.max_workers, cache_enabled_);
    surfaces_.push_back(surface);
  }
  by_job_[job.job_id] = surface;
  return surface.get();
}

int64_t SpeedSurfaceSet::probes() const {
  int64_t total = 0;
  for (const auto& s : surfaces_) {
    total += s->probes();
  }
  return total;
}

int64_t SpeedSurfaceSet::evals() const {
  int64_t total = 0;
  for (const auto& s : surfaces_) {
    total += s->evals();
  }
  return total;
}

double SpeedSurfaceSet::hit_rate() const {
  const int64_t p = probes();
  if (p == 0) {
    return 0.0;
  }
  return static_cast<double>(p - evals()) / static_cast<double>(p);
}

AllocationMap Allocator::Allocate(const std::vector<SchedJob>& jobs,
                                  const Resources& capacity) const {
  SpeedSurfaceSet surfaces;
  return Allocate(jobs, capacity, &surfaces);
}

}  // namespace optimus
