#include "src/sched/speed_surface.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace optimus {

SpeedSurface::SpeedSurface(SpeedEstimate speed, int max_ps, int max_workers,
                           bool cache_enabled)
    : speed_(std::move(speed)),
      max_ps_(max_ps),
      max_workers_(max_workers),
      cache_enabled_(cache_enabled) {
  // max_ps == 0 is the all-reduce grid: the single p == 0 row.
  OPTIMUS_CHECK_GE(max_ps_, 0);
  OPTIMUS_CHECK_GE(max_workers_, 1);
  OPTIMUS_CHECK(speed_ != nullptr);
}

double SpeedSurface::Speed(int p, int w) {
  ++probes_;
  const int min_p = max_ps_ == 0 ? 0 : 1;
  if (!cache_enabled_ || p < min_p || p > std::max(max_ps_, min_p) || w < 1 ||
      w > max_workers_) {
    ++evals_;
    return speed_(p, w);
  }
  if (grid_.empty()) {
    grid_.assign(GridSize(), std::numeric_limits<double>::quiet_NaN());
  }
  const size_t idx = static_cast<size_t>(p - min_p) * max_workers_ + (w - 1);
  double& cell = grid_[idx];
  if (std::isnan(cell)) {
    ++evals_;
    cell = speed_(p, w);
  } else if (!warm_unprobed_.empty() && warm_unprobed_[idx] != 0) {
    // First probe of a pre-warmed point: charge the eval the canonical
    // (cold) round would have paid here, so counters match bitwise.
    warm_unprobed_[idx] = 0;
    ++evals_;
  }
  return cell;
}

int64_t SpeedSurface::AbsorbFrom(const SpeedSurface& other) {
  if (!cache_enabled_ || other.grid_.empty() || max_ps_ != other.max_ps_ ||
      max_workers_ != other.max_workers_) {
    return 0;
  }
  if (grid_.empty()) {
    grid_.assign(GridSize(), std::numeric_limits<double>::quiet_NaN());
  }
  int64_t copied = 0;
  for (size_t i = 0; i < grid_.size(); ++i) {
    if (!std::isnan(grid_[i]) || std::isnan(other.grid_[i])) {
      continue;
    }
    if (warm_unprobed_.empty()) {
      warm_unprobed_.assign(grid_.size(), 0);
    }
    grid_[i] = other.grid_[i];
    warm_unprobed_[i] = 1;
    ++copied;
  }
  return copied;
}

SpeedSurface* SpeedSurfaceSet::Surface(const SchedJob& job) {
  if (auto it = by_job_.find(job.job_id); it != by_job_.end()) {
    return it->second.get();
  }
  std::shared_ptr<SpeedSurface> surface;
  if (job.speed_signature != 0) {
    const auto key =
        std::make_tuple(job.speed_signature, job.max_ps, job.max_workers);
    if (auto it = by_signature_.find(key); it != by_signature_.end()) {
      surface = it->second;
    } else {
      surface = std::make_shared<SpeedSurface>(job.speed, job.max_ps,
                                               job.max_workers, cache_enabled_);
      by_signature_[key] = surface;
      surfaces_.push_back(surface);
      if (auto warm = warm_by_signature_.find(key);
          warm != warm_by_signature_.end()) {
        for (const auto& donor : warm->second) {
          warmed_points_ += surface->AbsorbFrom(*donor);
        }
        warm_by_signature_.erase(warm);
      }
    }
  } else {
    surface = std::make_shared<SpeedSurface>(job.speed, job.max_ps,
                                             job.max_workers, cache_enabled_);
    surfaces_.push_back(surface);
    if (auto warm = warm_by_job_.find(job.job_id); warm != warm_by_job_.end()) {
      for (const auto& donor : warm->second) {
        warmed_points_ += surface->AbsorbFrom(*donor);
      }
      warm_by_job_.erase(warm);
    }
  }
  by_job_[job.job_id] = surface;
  return surface.get();
}

std::shared_ptr<SpeedSurface> SpeedSurfaceSet::Find(int job_id) const {
  if (auto it = by_job_.find(job_id); it != by_job_.end()) {
    return it->second;
  }
  return nullptr;
}

void SpeedSurfaceSet::WarmFrom(const SchedJob& job,
                               std::shared_ptr<SpeedSurface> donor) {
  if (donor == nullptr || !cache_enabled_) {
    return;
  }
  if (auto it = by_job_.find(job.job_id); it != by_job_.end()) {
    // The surface already exists (registration raced creation): absorb now.
    warmed_points_ += it->second->AbsorbFrom(*donor);
    return;
  }
  if (job.speed_signature != 0) {
    const auto key =
        std::make_tuple(job.speed_signature, job.max_ps, job.max_workers);
    if (auto it = by_signature_.find(key); it != by_signature_.end()) {
      warmed_points_ += it->second->AbsorbFrom(*donor);
      return;
    }
    warm_by_signature_[key].push_back(std::move(donor));
    return;
  }
  warm_by_job_[job.job_id].push_back(std::move(donor));
}

int64_t SpeedSurfaceSet::probes() const {
  int64_t total = 0;
  for (const auto& s : surfaces_) {
    total += s->probes();
  }
  return total;
}

int64_t SpeedSurfaceSet::evals() const {
  int64_t total = 0;
  for (const auto& s : surfaces_) {
    total += s->evals();
  }
  return total;
}

double SpeedSurfaceSet::hit_rate() const {
  const int64_t p = probes();
  if (p == 0) {
    return 0.0;
  }
  return static_cast<double>(p - evals()) / static_cast<double>(p);
}

AllocationMap Allocator::Allocate(const std::vector<SchedJob>& jobs,
                                  const Resources& capacity) const {
  SpeedSurfaceSet surfaces;
  return Allocate(jobs, capacity, &surfaces);
}

}  // namespace optimus
