#include "src/sched/sharded_round.h"

#include <cstdlib>
#include <utility>

#include "src/common/logging.h"

namespace optimus {

AllocationMap ShardedAllocate(const ShardPlan& plan,
                              const std::vector<SchedJob>& jobs,
                              const Resources& capacity, const Allocator& fixup,
                              const LocalAllocatorFactory& local_factory,
                              SpeedSurfaceSet* surfaces, ThreadPool* pool,
                              ShardedRoundStats* stats) {
  OPTIMUS_CHECK(surfaces != nullptr);
  const int num_shards = plan.num_shards();
  if (num_shards <= 1 || jobs.size() < 2) {
    return fixup.Allocate(jobs, capacity, surfaces);
  }
  if (stats != nullptr) {
    ++stats->rounds;
  }

  // Partition jobs over shards. Keying by signature keeps every job sharing
  // a speed surface in one shard, so the shared surface is warmed exactly
  // once; signature-free jobs spread round-robin by input index. The
  // partition is a pure function of the job list, independent of threads.
  std::vector<std::vector<size_t>> members(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < jobs.size(); ++i) {
    const uint64_t key = jobs[i].speed_signature != 0
                             ? jobs[i].speed_signature
                             : static_cast<uint64_t>(i);
    members[key % static_cast<uint64_t>(num_shards)].push_back(i);
  }

  // Phase 1: local rounds, one result slot per shard (index-owned, so the
  // outcome is independent of the thread count).
  struct ShardSlot {
    std::vector<SchedJob> local;
    SpeedSurfaceSet set;
    AllocationMap provisional;
    OptimusAllocRoundStats local_stats;
  };
  std::vector<ShardSlot> slots(static_cast<size_t>(num_shards));
  const double n_total = static_cast<double>(plan.n_servers());
  for (int s = 0; s < num_shards; ++s) {
    auto& slot = slots[static_cast<size_t>(s)];
    slot.local.reserve(members[static_cast<size_t>(s)].size());
    for (size_t i : members[static_cast<size_t>(s)]) {
      slot.local.push_back(jobs[i]);
    }
  }
  auto run_shard = [&](int64_t s) {
    ShardSlot& slot = slots[static_cast<size_t>(s)];
    if (slot.local.empty()) {
      return;
    }
    const auto [begin, end] = plan.range(static_cast<int>(s));
    const double frac =
        n_total > 0.0 ? static_cast<double>(end - begin) / n_total : 0.0;
    const Resources local_capacity = capacity * frac;
    std::unique_ptr<Allocator> local = local_factory(&slot.local_stats);
    slot.provisional = local->Allocate(slot.local, local_capacity, &slot.set);
  };
  if (pool != nullptr && num_shards > 1) {
    pool->ParallelFor(static_cast<int64_t>(num_shards), run_shard);
  } else {
    for (int64_t s = 0; s < num_shards; ++s) {
      run_shard(s);
    }
  }

  // Serial surface hand-off, in shard order. Donor registration creates no
  // surface in the round set — phase 2 still creates them on demand — so the
  // deterministic surface/probe/eval counters match the unsharded round.
  for (int s = 0; s < num_shards; ++s) {
    ShardSlot& slot = slots[static_cast<size_t>(s)];
    if (stats != nullptr) {
      stats->local_grants += slot.local_stats.grants;
      stats->local_pops += slot.local_stats.pops;
      stats->local_probes += slot.set.probes();
      stats->local_evals += slot.set.evals();
    }
    for (const SchedJob& job : slot.local) {
      if (std::shared_ptr<SpeedSurface> donor = slot.set.Find(job.job_id)) {
        surfaces->WarmFrom(job, std::move(donor));
      }
    }
  }

  // Phase 2: the serial cross-shard fixup — the canonical allocator over all
  // jobs and the full capacity, running on warmed memo tables.
  AllocationMap result = fixup.Allocate(jobs, capacity, surfaces);

  // Delta tracker: how much of the provisional (shard-local) allocation the
  // fixup migrated. Pure accounting; the result is untouched.
  if (stats != nullptr) {
    stats->warmed_points += surfaces->warmed_points();
    for (int s = 0; s < num_shards; ++s) {
      const ShardSlot& slot = slots[static_cast<size_t>(s)];
      for (const SchedJob& job : slot.local) {
        Allocation provisional;
        if (auto it = slot.provisional.find(job.job_id);
            it != slot.provisional.end()) {
          provisional = it->second;
        }
        Allocation final_alloc;
        if (auto it = result.find(job.job_id); it != result.end()) {
          final_alloc = it->second;
        }
        const int moved = std::abs(final_alloc.num_ps - provisional.num_ps) +
                          std::abs(final_alloc.num_workers - provisional.num_workers);
        if (moved > 0) {
          ++stats->migrated_jobs;
          stats->migrated_tasks += moved;
        }
      }
    }
  }
  return result;
}

}  // namespace optimus
