// Exhaustive reference allocator.
//
// The allocation problem (Eqns 5-8) is a non-convex integer program; Optimus
// solves it with the marginal-gain greedy of §4.1. For small instances the
// optimum can be found by enumeration, which gives us a yardstick: how far
// from optimal does the greedy land? Used by tests and by
// bench_ext_optimality_gap; exponential in the number of jobs, so it guards
// against instances beyond a configurable search budget.

#ifndef SRC_SCHED_EXHAUSTIVE_ALLOCATOR_H_
#define SRC_SCHED_EXHAUSTIVE_ALLOCATOR_H_

#include "src/sched/scheduler.h"

namespace optimus {

struct ExhaustiveAllocatorOptions {
  // Abort (fatally) if the search space exceeds this many states — the
  // enumerator exists for validation, not production.
  int64_t max_states = 200000000;
};

class ExhaustiveAllocator : public Allocator {
 public:
  explicit ExhaustiveAllocator(ExhaustiveAllocatorOptions options = {})
      : options_(options) {}

  // Minimizes sum_j Q_j / f_j(p_j, w_j) over all feasible integer allocations
  // (including giving a job nothing, treated as contributing no term, to keep
  // the objective finite when capacity cannot seat everyone).
  using Allocator::Allocate;
  AllocationMap Allocate(const std::vector<SchedJob>& jobs, const Resources& capacity,
                         SpeedSurfaceSet* surfaces) const override;

  const char* name() const override { return "exhaustive"; }

  // Objective value of an allocation under the jobs' own estimates: total
  // estimated completion time, counting only active jobs.
  static double Objective(const std::vector<SchedJob>& jobs, const AllocationMap& alloc);

 private:
  ExhaustiveAllocatorOptions options_;
};

}  // namespace optimus

#endif  // SRC_SCHED_EXHAUSTIVE_ALLOCATOR_H_
