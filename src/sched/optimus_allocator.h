// Optimus's marginal-gain resource allocation (§4.1).
//
// Each active job first receives one worker and one parameter server (to
// avoid starvation). Then, repeatedly, the job offering the largest reduction
// in estimated completion time per unit of dominant resource — Eqn 9 —
// receives one more worker or parameter server (whichever gain is larger),
// until the cluster is full or every job's marginal gain is non-positive.
//
// The estimated completion time of job j is t_j = Q_j / f(p_j, w_j), where
// Q_j comes from the convergence model and f from the speed model.

#ifndef SRC_SCHED_OPTIMUS_ALLOCATOR_H_
#define SRC_SCHED_OPTIMUS_ALLOCATOR_H_

#include "src/sched/scheduler.h"

namespace optimus {

struct OptimusAllocatorOptions {
  // Stop adding tasks once marginal gains fall below this (0 reproduces the
  // paper; a small positive value trades speed for allocation quality).
  double min_gain = 0.0;
};

class OptimusAllocator : public Allocator {
 public:
  explicit OptimusAllocator(OptimusAllocatorOptions options = {}) : options_(options) {}

  AllocationMap Allocate(const std::vector<SchedJob>& jobs,
                         const Resources& capacity) const override;

  const char* name() const override { return "optimus"; }

 private:
  OptimusAllocatorOptions options_;
};

}  // namespace optimus

#endif  // SRC_SCHED_OPTIMUS_ALLOCATOR_H_
