// Optimus's marginal-gain resource allocation (§4.1).
//
// Each active job first receives one worker and one parameter server (to
// avoid starvation). Then, repeatedly, the job offering the largest reduction
// in estimated completion time per unit of dominant resource — Eqn 9 —
// receives one more worker or parameter server (whichever gain is larger),
// until the cluster is full or every job's marginal gain is non-positive.
//
// The estimated completion time of job j is t_j = Q_j / f(p_j, w_j), where
// Q_j comes from the convergence model and f from the speed model.

#ifndef SRC_SCHED_OPTIMUS_ALLOCATOR_H_
#define SRC_SCHED_OPTIMUS_ALLOCATOR_H_

#include "src/sched/scheduler.h"

namespace optimus {

// Observable counters for one greedy round; useful for tests (the lazy-heap
// stale/unfittable paths) and for the scalability benches.
struct OptimusAllocRoundStats {
  int64_t pops = 0;
  int64_t grants = 0;
  // Candidates whose snapshot no longer matched the job's allocation when
  // popped: the job moved since the push, and both kinds were already
  // re-pushed with fresh gains at grant time, so the entry is discarded.
  int64_t stale_drops = 0;
  // Candidates whose task kind no longer fits the remaining capacity;
  // dropped for good (capacity only shrinks within a round).
  int64_t unfittable_drops = 0;
};

struct OptimusAllocatorOptions {
  // Stop adding tasks once marginal gains fall below this (0 reproduces the
  // paper; a small positive value trades speed for allocation quality).
  double min_gain = 0.0;
  // When non-null, the allocator accumulates per-round counters here.
  OptimusAllocRoundStats* stats = nullptr;
};

class OptimusAllocator : public Allocator {
 public:
  explicit OptimusAllocator(OptimusAllocatorOptions options = {}) : options_(options) {}

  using Allocator::Allocate;
  AllocationMap Allocate(const std::vector<SchedJob>& jobs, const Resources& capacity,
                         SpeedSurfaceSet* surfaces) const override;

  const char* name() const override { return "optimus"; }

 private:
  OptimusAllocatorOptions options_;
};

}  // namespace optimus

#endif  // SRC_SCHED_OPTIMUS_ALLOCATOR_H_
