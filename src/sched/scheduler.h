// Scheduler-facing job summaries and the allocator interface.
//
// Schedulers are deliberately decoupled from the simulator: they see, per
// active job, only what the real Optimus controller sees — per-task resource
// demands, an estimate of the remaining work (epochs), and an estimated
// speed function f(p, w) — and they produce worker / parameter-server counts
// per job subject to the cluster capacity (Eqn 5-8).

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/cluster/resources.h"
#include "src/models/model_zoo.h"

namespace optimus {

// Estimated job-level training speed in epochs per second at (p, w).
using SpeedEstimate = std::function<double(int num_ps, int num_workers)>;

// Estimated *physical* training speed in epochs per second at (p, w) when the
// job runs with the given global batch size, before any statistical-efficiency
// discount. Batch-adaptive policies combine this with BatchProgressFactor to
// rank (batch, p, w) points by effective progress.
using BatchSpeedEstimate =
    std::function<double(int num_ps, int num_workers, int global_batch)>;

struct SchedJob {
  int job_id = 0;
  TrainingMode mode = TrainingMode::kSync;
  // Communication architecture. All-reduce jobs carry max_ps == 0 and a
  // zero ps_demand: they are scheduled (and their speed surfaces probed)
  // along the p == 0 row only.
  CommMode comm = CommMode::kParameterServer;
  Resources worker_demand;
  Resources ps_demand;
  int max_ps = 32;
  int max_workers = 32;
  // Q_j: estimated epochs still needed to converge.
  double remaining_epochs = 0.0;
  // f(p, w) in epochs/s; must be callable for p, w >= 1.
  SpeedEstimate speed;
  // Memoization hint: jobs carrying the same nonzero signature (and the same
  // caps) promise that their `speed` functions are pointwise identical, so a
  // scheduling round may evaluate one shared speed surface for all of them.
  // 0 (the default) disables sharing. See src/sched/speed_surface.h.
  uint64_t speed_signature = 0;
  // Multiplier on the job's marginal gain (§4.1 suggests 0.95 for jobs whose
  // predictions are still unreliable).
  double priority_factor = 1.0;

  // --- Batch-size decision surface (Pollux-style policies) ---------------
  // Reference global batch M0 the epoch bookkeeping is denominated in (the
  // job's configured batch). 0 when not applicable (async jobs).
  int batch_ref = 0;
  // Admissible global-batch range for batch-adaptive policies. A job is
  // batch-adaptive only when batch_min < batch_max and batch_speed is set;
  // otherwise the batch dimension is fixed at batch_ref.
  int batch_min = 0;
  int batch_max = 0;
  // Gradient-noise-scale parameter phi of the statistical-efficiency model
  // E(b) = (phi + M0) / (phi + b), derived from the convergence model. Larger
  // phi means the job tolerates larger batches before efficiency decays.
  double grad_noise_scale = 0.0;
  // Physical steps-per-second estimate as a function of (p, w, batch); null
  // when the speed model cannot vary the batch dimension.
  BatchSpeedEstimate batch_speed;

  // --- Per-resource sensitivity profile (Synergy-style policies) ---------
  // How strongly the job's speed depends on its CPU / memory grant, in
  // [0, 1]. 1.0 = fully sensitive (provision the full demand); 0.0 = flat
  // slope (the job barely notices under-provisioning). Policies that ignore
  // the profile treat every job as fully sensitive.
  double cpu_sensitivity = 1.0;
  double mem_sensitivity = 1.0;
};

// Statistical efficiency E(b) of training at global batch b relative to the
// reference batch ref_b, under the gradient-noise-scale model
// E(b) = (phi + ref_b) / (phi + b). E(ref_b) == 1 exactly.
inline double StatisticalEfficiency(double grad_noise_scale, double ref_batch,
                                    double batch) {
  if (ref_batch <= 0.0 || batch <= 0.0) {
    return 1.0;
  }
  return (grad_noise_scale + ref_batch) / (grad_noise_scale + batch);
}

// Converts physical steps/s at batch b into reference-batch steps/s:
// one step at batch b makes b * E(b) / ref_b reference steps of progress.
// Equals 1 exactly at b == ref_b, saturates at (phi + ref_b) / ref_b as
// b grows — so goodput peaks at a finite batch once step time grows with b.
inline double BatchProgressFactor(double grad_noise_scale, double ref_batch,
                                  double batch) {
  if (ref_batch <= 0.0 || batch <= 0.0) {
    return 1.0;
  }
  return (batch * (grad_noise_scale + ref_batch)) /
         (ref_batch * (grad_noise_scale + batch));
}

struct Allocation {
  int num_ps = 0;
  int num_workers = 0;
  // Advisory global batch chosen by a batch-adaptive policy; 0 (the default)
  // keeps the job's configured batch. Deliberately excluded from operator==:
  // identity is (p, w) only, so a batch-only adjustment never looks like a
  // scaling event (no checkpoint stall, no trace record).
  int global_batch = 0;

  // Prefer ActiveAllocation(alloc, comm) at call sites: this PS-shaped check
  // mis-classifies all-reduce allocations, which never have parameter servers.
  bool IsActive() const { return num_ps > 0 && num_workers > 0; }
  bool operator==(const Allocation& other) const {
    return num_ps == other.num_ps && num_workers == other.num_workers;
  }
};

// job_id -> allocation. Jobs absent from the map received nothing.
using AllocationMap = std::map<int, Allocation>;

// Whether `alloc` actually runs a job of the given communication mode:
// parameter-server jobs need at least one PS and one worker; all-reduce jobs
// need only workers (their num_ps is always 0).
inline bool ActiveAllocation(const Allocation& alloc, CommMode comm) {
  if (comm == CommMode::kAllReduce) {
    return alloc.num_workers > 0;
  }
  return alloc.IsActive();
}

// Sum of the resources an allocation consumes for one job.
Resources AllocationDemand(const SchedJob& job, const Allocation& alloc);

class SpeedSurfaceSet;

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Decides (p_j, w_j) for every job within `capacity`. Implementations must
  // be deterministic given identical inputs. Builds a fresh set of memoized
  // speed surfaces for the round (defined in speed_surface.cc).
  AllocationMap Allocate(const std::vector<SchedJob>& jobs,
                         const Resources& capacity) const;

  // Same decision, but every speed probe goes through `surfaces` (never
  // null). Callers that run several allocations over the same jobs — what-if
  // admission, ablations — pass one set so each (p, w) point is evaluated at
  // most once across all of them.
  virtual AllocationMap Allocate(const std::vector<SchedJob>& jobs,
                                 const Resources& capacity,
                                 SpeedSurfaceSet* surfaces) const = 0;

  virtual const char* name() const = 0;
};

}  // namespace optimus

#endif  // SRC_SCHED_SCHEDULER_H_
