#include "src/sched/baseline_allocators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "src/common/logging.h"
#include "src/sched/speed_surface.h"

namespace optimus {

namespace {

// One DRF/Tetris allocation unit for a job: 1 PS + 1 worker for
// parameter-server jobs, a single worker for all-reduce jobs (max_ps == 0:
// no PS tasks exist, so a unit is just a worker).
Resources UnitDemand(const SchedJob& job) {
  return job.max_ps > 0 ? job.worker_demand + job.ps_demand : job.worker_demand;
}

int MaxUnits(const SchedJob& job) {
  return job.max_ps > 0 ? std::min(job.max_ps, job.max_workers) : job.max_workers;
}

// u units, shaped for the job's communication mode.
Allocation UnitsAllocation(const SchedJob& job, int u) {
  return {job.max_ps > 0 ? u : 0, u};
}

// Estimated speed at u units (the p == 0 row for all-reduce jobs).
double UnitSpeed(SpeedSurface* surface, const SchedJob& job, int u) {
  return surface->Speed(job.max_ps > 0 ? u : 0, u);
}

}  // namespace

AllocationMap DrfAllocator::Allocate(const std::vector<SchedJob>& jobs,
                                     const Resources& capacity,
                                     SpeedSurfaceSet* /*surfaces*/) const {
  AllocationMap result;
  std::vector<int> units(jobs.size(), 0);
  std::vector<bool> saturated(jobs.size(), false);
  Resources used;

  // Progressive filling on dominant share. Each entry is (share, job index);
  // the smallest share is served next.
  using Entry = std::pair<double, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (size_t i = 0; i < jobs.size(); ++i) {
    heap.push({0.0, i});
  }

  while (!heap.empty()) {
    const auto [share, i] = heap.top();
    heap.pop();
    if (saturated[i]) {
      continue;
    }
    if (units[i] >= MaxUnits(jobs[i])) {
      saturated[i] = true;
      continue;
    }
    const Resources unit = UnitDemand(jobs[i]);
    if (!capacity.Fits(used + unit)) {
      saturated[i] = true;  // this job's unit no longer fits; others may
      continue;
    }
    used += unit;
    ++units[i];
    const Resources total = unit * units[i];
    heap.push({total.DominantShare(capacity), i});
  }

  for (size_t i = 0; i < jobs.size(); ++i) {
    if (units[i] > 0) {
      result[jobs[i].job_id] = UnitsAllocation(jobs[i], units[i]);
    }
  }
  return result;
}

AllocationMap TetrisAllocator::Allocate(const std::vector<SchedJob>& jobs,
                                        const Resources& capacity,
                                        SpeedSurfaceSet* surfaces) const {
  OPTIMUS_CHECK(surfaces != nullptr);
  AllocationMap result;
  if (jobs.empty()) {
    return result;
  }
  std::vector<SpeedSurface*> surf;
  surf.reserve(jobs.size());
  for (const SchedJob& job : jobs) {
    surf.push_back(surfaces->Surface(job));
  }

  // Score jobs once: shorter remaining time and smaller unit footprint first.
  std::vector<double> duration(jobs.size());
  std::vector<double> footprint(jobs.size());
  double max_duration = 0.0;
  double max_footprint = 0.0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const double f = UnitSpeed(surf[i], jobs[i], 1);
    duration[i] = f > 0.0 ? jobs[i].remaining_epochs / f
                          : std::numeric_limits<double>::infinity();
    footprint[i] = UnitDemand(jobs[i]).DominantShare(capacity);
    if (std::isfinite(duration[i])) {
      max_duration = std::max(max_duration, duration[i]);
    }
    max_footprint = std::max(max_footprint, footprint[i]);
  }

  std::vector<size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  auto score = [&](size_t i) {
    // Higher is better: short jobs (SRTF) and packing-friendly (small) jobs.
    const double srtf =
        std::isfinite(duration[i]) && max_duration > 0.0
            ? 1.0 - duration[i] / max_duration
            : 0.0;
    const double packing =
        max_footprint > 0.0 ? 1.0 - footprint[i] / max_footprint : 0.0;
    return options_.srtf_weight * srtf + (1.0 - options_.srtf_weight) * packing;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return score(a) > score(b); });

  // Serve jobs strictly in score order (short / packable jobs first, as in
  // Tetris's SRTF-weighted heuristic): each job takes units until its
  // estimated speed stops improving meaningfully (Tetris is given Optimus's
  // estimator). Jobs at the back of the queue can receive nothing this
  // interval — Tetris offers no fairness floor.
  Resources used;
  std::vector<int> units(jobs.size(), 0);
  for (size_t i : order) {
    const SchedJob& job = jobs[i];
    const Resources unit = UnitDemand(job);
    while (units[i] < MaxUnits(job) && capacity.Fits(used + unit)) {
      const int u = units[i];
      if (u >= 1) {
        const double f_now = UnitSpeed(surf[i], job, u);
        const double f_next = UnitSpeed(surf[i], job, u + 1);
        if (f_next <= f_now * (1.0 + options_.min_speedup)) {
          break;  // past the speed-efficiency knee
        }
      }
      used += unit;
      ++units[i];
    }
  }

  // Any remaining capacity goes round-robin to jobs that can still benefit
  // (including jobs the SRTF pass left empty-handed), keeping the allocator
  // work-conserving like the deployed system.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i : order) {
      const SchedJob& job = jobs[i];
      const Resources unit = UnitDemand(job);
      if (units[i] < MaxUnits(job) && capacity.Fits(used + unit)) {
        if (units[i] >= 1) {
          const double f_now = UnitSpeed(surf[i], job, units[i]);
          const double f_next = UnitSpeed(surf[i], job, units[i] + 1);
          if (f_next <= f_now * (1.0 + options_.min_speedup)) {
            continue;
          }
        }
        used += unit;
        ++units[i];
        progress = true;
      }
    }
  }

  for (size_t i = 0; i < jobs.size(); ++i) {
    if (units[i] > 0) {
      result[jobs[i].job_id] = UnitsAllocation(jobs[i], units[i]);
    }
  }
  return result;
}

AllocationMap FifoAllocator::Allocate(const std::vector<SchedJob>& jobs,
                                      const Resources& capacity,
                                      SpeedSurfaceSet* surfaces) const {
  OPTIMUS_CHECK(surfaces != nullptr);
  AllocationMap result;
  Resources used;
  // Input order is arrival order; fill each job to its knee in turn.
  for (const SchedJob& job : jobs) {
    SpeedSurface* surface = surfaces->Surface(job);
    const Resources unit = UnitDemand(job);
    int units = 0;
    while (units < MaxUnits(job) && capacity.Fits(used + unit)) {
      if (units >= 1) {
        const double f_now = UnitSpeed(surface, job, units);
        const double f_next = UnitSpeed(surface, job, units + 1);
        if (f_next <= f_now * (1.0 + min_speedup_)) {
          break;
        }
      }
      used += unit;
      ++units;
    }
    if (units > 0) {
      result[job.job_id] = UnitsAllocation(job, units);
    }
  }
  return result;
}

}  // namespace optimus
