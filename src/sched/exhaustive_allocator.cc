#include "src/sched/exhaustive_allocator.h"

#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/sched/speed_surface.h"

namespace optimus {

namespace {

// A job left without resources is not free: its work remains queued. Charge
// it as if it will later run at its minimal configuration, scaled by this
// deferral penalty, so "give nothing" only wins when capacity truly cannot
// seat the job.
constexpr double kDeferralPenalty = 3.0;

struct SearchState {
  const std::vector<SchedJob>* jobs = nullptr;
  std::vector<SpeedSurface*> surfaces;
  Resources capacity;
  int64_t states_visited = 0;
  int64_t max_states = 0;
  double best_objective = std::numeric_limits<double>::infinity();
  std::vector<Allocation> current;
  std::vector<Allocation> best;
};

double OptionCost(const SchedJob& job, SpeedSurface* surface, const Allocation& alloc) {
  if (!ActiveAllocation(alloc, job.comm)) {
    const double f_min = surface->Speed(job.max_ps > 0 ? 1 : 0, 1);
    if (f_min <= 0.0 || job.remaining_epochs <= 0.0) {
      return 0.0;
    }
    return kDeferralPenalty * job.remaining_epochs / f_min;
  }
  const double f = surface->Speed(alloc.num_ps, alloc.num_workers);
  if (f <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return job.remaining_epochs / f;
}

void Search(SearchState* state, size_t index, const Resources& used, double cost) {
  if (cost >= state->best_objective) {
    return;  // objective only grows along a branch
  }
  if (index == state->jobs->size()) {
    state->best_objective = cost;
    state->best = state->current;
    return;
  }
  ++state->states_visited;
  OPTIMUS_CHECK_LE(state->states_visited, state->max_states)
      << "instance too large for exhaustive search";

  const SchedJob& job = (*state->jobs)[index];
  // Enumerate all feasible allocations for this job, plus "nothing". An
  // all-reduce job (max_ps == 0) enumerates worker counts along its single
  // p == 0 row.
  const bool wants_ps = job.max_ps > 0;
  for (int p = 0; p <= job.max_ps; ++p) {
    const int w_limit = (p == 0 && wants_ps) ? 0 : job.max_workers;
    for (int w = ((p == 0 && wants_ps) ? 0 : 1); w <= w_limit; ++w) {
      const Allocation alloc{p, w};
      const Resources next_used = used + AllocationDemand(job, alloc);
      if (!state->capacity.Fits(next_used)) {
        continue;
      }
      state->current[index] = alloc;
      Search(state, index + 1, next_used,
             cost + OptionCost(job, state->surfaces[index], alloc));
    }
    if (p == 0) {
      // The "nothing" option (w loop did not run).
      state->current[index] = Allocation{};
      Search(state, index + 1, used,
             cost + OptionCost(job, state->surfaces[index], Allocation{}));
    }
  }
}

}  // namespace

double ExhaustiveAllocator::Objective(const std::vector<SchedJob>& jobs,
                                      const AllocationMap& alloc) {
  SpeedSurfaceSet surfaces;
  double total = 0.0;
  for (const SchedJob& job : jobs) {
    Allocation a;
    if (auto it = alloc.find(job.job_id); it != alloc.end()) {
      a = it->second;
    }
    total += OptionCost(job, surfaces.Surface(job), a);
  }
  return total;
}

AllocationMap ExhaustiveAllocator::Allocate(const std::vector<SchedJob>& jobs,
                                            const Resources& capacity,
                                            SpeedSurfaceSet* surfaces) const {
  OPTIMUS_CHECK(surfaces != nullptr);
  SearchState state;
  state.jobs = &jobs;
  state.surfaces.reserve(jobs.size());
  for (const SchedJob& job : jobs) {
    state.surfaces.push_back(surfaces->Surface(job));
  }
  state.capacity = capacity;
  state.max_states = options_.max_states;
  state.current.assign(jobs.size(), Allocation{});
  state.best.assign(jobs.size(), Allocation{});

  Search(&state, 0, Resources(), 0.0);

  AllocationMap result;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (ActiveAllocation(state.best[i], jobs[i].comm)) {
      result[jobs[i].job_id] = state.best[i];
    }
  }
  return result;
}

}  // namespace optimus
