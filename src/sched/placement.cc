#include "src/sched/placement.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/logging.h"

namespace optimus {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kOptimusPack:
      return "optimus-pack";
    case PlacementPolicy::kLoadBalance:
      return "load-balance";
    case PlacementPolicy::kTetrisPack:
      return "tetris-pack";
    case PlacementPolicy::kRackPack:
      return "rack-pack";
  }
  return "unknown";
}

namespace {

// Attempts to place a job across the first k entries of `server_order`,
// spreading parameter servers and workers as evenly as the servers' free
// capacities allow (Theorem 1 wants equal counts per server; on heterogeneous
// servers we approximate it by always extending the least-loaded server that
// still fits). PS and worker assignments are interleaved proportionally so
// both types end up spread. Commits resources and fills `placement` on
// success; servers are untouched on failure.
bool TryEvenPlacement(const PlacementJobInput& job, const std::vector<size_t>& server_order,
                      int k, std::vector<Server>* servers, JobPlacement* placement) {
  const int w = job.alloc.num_workers;
  const int p = job.alloc.num_ps;
  const int total = w + p;

  std::vector<Resources> tentative_used(k);
  std::vector<int> tentative_w(k, 0);
  std::vector<int> tentative_p(k, 0);

  int assigned_ps = 0;
  for (int t = 0; t < total; ++t) {
    // Bresenham-style interleaving keeps the PS:worker mix even as we go.
    const bool is_ps = (t + 1) * p / total > assigned_ps;
    const Resources& demand = is_ps ? job.ps_demand : job.worker_demand;

    // Pick, among the k servers that can still fit this task, the one with
    // the fewest tasks of this *type* (Theorem 1 balances PS and worker
    // counts independently), breaking ties by total tasks, then by most free
    // capacity.
    int best = -1;
    for (int i = 0; i < k; ++i) {
      const Server& server = (*servers)[server_order[i]];
      if (!server.available() ||
          !(server.Free() - tentative_used[i]).Fits(demand)) {
        continue;
      }
      if (best < 0) {
        best = i;
        continue;
      }
      const int type_i = is_ps ? tentative_p[i] : tentative_w[i];
      const int type_b = is_ps ? tentative_p[best] : tentative_w[best];
      const int tasks_i = tentative_w[i] + tentative_p[i];
      const int tasks_b = tentative_w[best] + tentative_p[best];
      const double free_i =
          ((*servers)[server_order[i]].Free() - tentative_used[i]).cpu();
      const double free_b =
          ((*servers)[server_order[best]].Free() - tentative_used[best]).cpu();
      if (type_i < type_b ||
          (type_i == type_b &&
           (tasks_i < tasks_b || (tasks_i == tasks_b && free_i > free_b)))) {
        best = i;
      }
    }
    if (best < 0) {
      return false;  // this task fits on none of the k servers
    }
    tentative_used[best] += demand;
    if (is_ps) {
      ++tentative_p[best];
      ++assigned_ps;
    } else {
      ++tentative_w[best];
    }
  }

  for (int i = 0; i < k; ++i) {
    if (tentative_w[i] == 0 && tentative_p[i] == 0) {
      continue;
    }
    Server& server = (*servers)[server_order[i]];
    server.Allocate(tentative_used[i]);
    placement->workers_per_server[server_order[i]] += tentative_w[i];
    placement->ps_per_server[server_order[i]] += tentative_p[i];
    placement->used_servers.push_back(static_cast<int>(server_order[i]));
  }
  std::sort(placement->used_servers.begin(), placement->used_servers.end());
  return true;
}

// Keeps servers ordered by free CPU (descending) across many job placements
// with a lazily-invalidated max-heap, so placing J jobs on N servers costs
// O((J * k + updates) log N) instead of re-sorting N servers per job. This is
// what lets the scheduler handle the paper's Fig-12 scale (thousands of jobs
// on 16k nodes in seconds).
class ServerPool {
 public:
  explicit ServerPool(std::vector<Server>* servers) : servers_(servers) {
    // Bulk make_heap is O(n) versus O(n log n) for element-wise pushes; the
    // keys (free_cpu, server index) form a strict total order, so the pop
    // sequence — and therefore every placement decision — is identical either
    // way.
    heap_.reserve(servers_->size());
    for (size_t s = 0; s < servers_->size(); ++s) {
      // Crashed servers never enter the pool; availability does not change
      // within one PlaceJobs call.
      if ((*servers_)[s].available()) {
        heap_.push_back({(*servers_)[s].Free().cpu(), s});
      }
    }
    std::make_heap(heap_.begin(), heap_.end());
  }

  // Pops up to `count` distinct servers in descending free-CPU order.
  std::vector<size_t> PopMostFree(size_t count) {
    std::vector<size_t> out;
    while (out.size() < count && !heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end());
      const auto [free_cpu, s] = heap_.back();
      heap_.pop_back();
      if (free_cpu != (*servers_)[s].Free().cpu()) {
        // Stale; reinsert fresh.
        heap_.push_back({(*servers_)[s].Free().cpu(), s});
        std::push_heap(heap_.begin(), heap_.end());
        continue;
      }
      out.push_back(s);
    }
    return out;
  }

  // Returns servers to the pool (with their current free values).
  void Push(const std::vector<size_t>& servers) {
    for (size_t s : servers) {
      heap_.push_back({(*servers_)[s].Free().cpu(), s});
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

 private:
  std::vector<Server>* servers_;
  std::vector<std::pair<double, size_t>> heap_;
};

// Places one job under the Optimus scheme; returns false when no k works.
bool PlaceOptimus(const PlacementJobInput& job, std::vector<Server>* servers,
                  ServerPool* pool, JobPlacement* placement) {
  const int max_k =
      std::min<int>(static_cast<int>(servers->size()),
                    job.alloc.num_workers + job.alloc.num_ps);

  // Draw candidates in descending-availability order (the paper's sort) and
  // try packing onto the first k of them for growing k.
  std::vector<size_t> candidates = pool->PopMostFree(static_cast<size_t>(max_k));
  bool placed = false;
  for (int k = 1; k <= static_cast<int>(candidates.size()); ++k) {
    if (TryEvenPlacement(job, candidates, k, servers, placement)) {
      placed = true;
      break;
    }
  }
  pool->Push(candidates);
  return placed;
}

// Rack-aware Theorem-1 variant: tries to pack the whole job under one edge
// switch so its traffic never crosses a rack uplink. Racks are tried in
// descending free-CPU order (ties: lower rack id first); within a rack,
// candidates are its available servers in descending (free_cpu, lower index
// first) order, packed onto the smallest k that fits. When no single rack
// can hold the job, falls back to the global Optimus scheme.
bool PlaceRackAware(const PlacementJobInput& job, int rack_size,
                    std::vector<Server>* servers, ServerPool* pool,
                    JobPlacement* placement) {
  if (rack_size <= 0) {
    return PlaceOptimus(job, servers, pool, placement);
  }
  const int n = static_cast<int>(servers->size());
  const int num_racks = (n + rack_size - 1) / rack_size;

  std::vector<std::pair<double, int>> rack_order;  // (free cpu sum, rack)
  rack_order.reserve(static_cast<size_t>(num_racks));
  for (int r = 0; r < num_racks; ++r) {
    double free_sum = 0.0;
    const int begin = r * rack_size;
    const int end = std::min(n, begin + rack_size);
    for (int s = begin; s < end; ++s) {
      if ((*servers)[static_cast<size_t>(s)].available()) {
        free_sum += (*servers)[static_cast<size_t>(s)].Free().cpu();
      }
    }
    rack_order.push_back({free_sum, r});
  }
  std::stable_sort(rack_order.begin(), rack_order.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });

  const int tasks = job.alloc.num_workers + job.alloc.num_ps;
  std::vector<size_t> candidates;
  for (const auto& [free_sum, r] : rack_order) {
    candidates.clear();
    const int begin = r * rack_size;
    const int end = std::min(n, begin + rack_size);
    for (int s = begin; s < end; ++s) {
      if ((*servers)[static_cast<size_t>(s)].available()) {
        candidates.push_back(static_cast<size_t>(s));
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
      return (*servers)[a].Free().cpu() > (*servers)[b].Free().cpu();
    });
    const int max_k = std::min<int>(static_cast<int>(candidates.size()), tasks);
    for (int k = 1; k <= max_k; ++k) {
      if (TryEvenPlacement(job, candidates, k, servers, placement)) {
        return true;
      }
    }
  }
  // No rack can hold the job alone: spill across racks the Theorem-1 way.
  return PlaceOptimus(job, servers, pool, placement);
}

enum class PickRule { kMostFree, kTightestFit };

// Places a job one task at a time using a server-picking rule; rolls back on
// failure so the servers are unchanged when false is returned.
bool PlacePerTask(const PlacementJobInput& job, PickRule rule,
                  std::vector<Server>* servers, JobPlacement* placement) {
  struct Step {
    size_t server;
    Resources demand;
  };
  std::vector<Step> committed;

  auto pick = [&](const Resources& demand) -> int {
    int best = -1;
    double best_key = rule == PickRule::kMostFree
                          ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < servers->size(); ++s) {
      const Server& server = (*servers)[s];
      if (!server.CanFit(demand)) {
        continue;
      }
      // Key on free CPU: most-free spreads load (Kubernetes default);
      // tightest-fit packs to minimize fragmentation (Tetris).
      const double key = server.Free().cpu();
      const bool better =
          rule == PickRule::kMostFree ? key > best_key : key < best_key;
      if (better) {
        best_key = key;
        best = static_cast<int>(s);
      }
    }
    return best;
  };

  auto place_tasks = [&](int count, const Resources& demand,
                         std::vector<int>* per_server) {
    for (int t = 0; t < count; ++t) {
      const int s = pick(demand);
      if (s < 0) {
        return false;
      }
      (*servers)[static_cast<size_t>(s)].Allocate(demand);
      committed.push_back({static_cast<size_t>(s), demand});
      ++(*per_server)[static_cast<size_t>(s)];
    }
    return true;
  };

  // Interleave PS and worker placement so colocations arise naturally.
  if (place_tasks(job.alloc.num_ps, job.ps_demand, &placement->ps_per_server) &&
      place_tasks(job.alloc.num_workers, job.worker_demand,
                  &placement->workers_per_server)) {
    for (const Step& step : committed) {
      placement->used_servers.push_back(static_cast<int>(step.server));
    }
    std::sort(placement->used_servers.begin(), placement->used_servers.end());
    placement->used_servers.erase(
        std::unique(placement->used_servers.begin(), placement->used_servers.end()),
        placement->used_servers.end());
    return true;
  }
  // Roll back — only the entries this attempt touched, so the vectors stay
  // all-zero without an O(servers) sweep.
  for (const Step& step : committed) {
    (*servers)[step.server].Release(step.demand);
    placement->ps_per_server[step.server] = 0;
    placement->workers_per_server[step.server] = 0;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Sharded fast path (see placement.h). Every decision point below mirrors the
// legacy kOptimusPack code exactly; only the data layout and the amount of
// redundant work differ.

// One lazy max-heap of (free_cpu, server index) per shard. The pop sequence
// is identical to the single global heap's: the candidate set is the same,
// the key order is the same strict total order, and the tournament below
// always pops the globally largest valid key.
class ShardedServerPool {
 public:
  ShardedServerPool(std::vector<Server>* servers, const ShardPlan& plan)
      : servers_(servers), plan_(&plan) {
    heaps_.resize(static_cast<size_t>(plan.num_shards()));
    for (int sh = 0; sh < plan.num_shards(); ++sh) {
      const auto [begin, end] = plan.range(sh);
      auto& heap = heaps_[static_cast<size_t>(sh)];
      heap.reserve(static_cast<size_t>(end - begin));
      for (int s = begin; s < end; ++s) {
        if ((*servers_)[static_cast<size_t>(s)].available()) {
          heap.push_back(
              {(*servers_)[static_cast<size_t>(s)].Free().cpu(), static_cast<size_t>(s)});
        }
      }
      std::make_heap(heap.begin(), heap.end());
    }
  }

  // Pops up to `count` distinct servers in globally descending
  // (free_cpu, index) order, appending to *out.
  void PopMostFree(size_t count, std::vector<size_t>* out) {
    while (out->size() < count) {
      int best = -1;
      std::pair<double, size_t> best_key{0.0, 0};
      for (size_t sh = 0; sh < heaps_.size(); ++sh) {
        if (!EnsureValidTop(sh)) {
          continue;
        }
        const std::pair<double, size_t>& key = heaps_[sh].front();
        if (best < 0 || best_key < key) {
          best = static_cast<int>(sh);
          best_key = key;
        }
      }
      if (best < 0) {
        return;  // every shard drained
      }
      auto& heap = heaps_[static_cast<size_t>(best)];
      std::pop_heap(heap.begin(), heap.end());
      heap.pop_back();
      out->push_back(best_key.second);
    }
  }

  // Returns servers to their shards' pools (with their current free values).
  void Push(const std::vector<size_t>& servers) {
    for (size_t s : servers) {
      auto& heap = heaps_[static_cast<size_t>(plan_->ShardOf(static_cast<int>(s)))];
      heap.push_back({(*servers_)[s].Free().cpu(), s});
      std::push_heap(heap.begin(), heap.end());
    }
  }

 private:
  // Refreshes stale entries until the shard's top is valid; false when the
  // shard is drained. Mirrors the legacy pop-stale-reinsert loop.
  bool EnsureValidTop(size_t sh) {
    auto& heap = heaps_[sh];
    while (!heap.empty()) {
      const auto [free_cpu, s] = heap.front();
      if (free_cpu == (*servers_)[s].Free().cpu()) {
        return true;
      }
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {(*servers_)[s].Free().cpu(), s};
      std::push_heap(heap.begin(), heap.end());
    }
    return false;
  }

  std::vector<Server>* servers_;
  const ShardPlan* plan_;
  std::vector<std::vector<std::pair<double, size_t>>> heaps_;
};

// Reusable per-job working buffers so steady-state placement allocates
// nothing per job.
struct PackScratch {
  std::vector<size_t> candidates;
  std::vector<Resources> free;            // cached Free() per candidate
  std::vector<Resources> prefix_free;     // prefix sums of `free`
  std::vector<Resources> tentative_used;  // per-candidate committed demand
  std::vector<int> tentative_w;
  std::vector<int> tentative_p;
};

// TryEvenPlacement with cached per-candidate free vectors and a compact
// result. The pick loop, tie-breaks, and commit arithmetic are the legacy
// code's, so decisions and server mutations are bitwise identical.
bool TryEvenPlacementFast(const PlacementJobInput& job, int k,
                          std::vector<Server>* servers, PackScratch* scratch,
                          JobPlacement* placement) {
  const int w = job.alloc.num_workers;
  const int p = job.alloc.num_ps;
  const int total = w + p;
  const std::vector<size_t>& order = scratch->candidates;

  scratch->tentative_used.assign(static_cast<size_t>(k), Resources());
  scratch->tentative_w.assign(static_cast<size_t>(k), 0);
  scratch->tentative_p.assign(static_cast<size_t>(k), 0);
  std::vector<Resources>& tentative_used = scratch->tentative_used;
  std::vector<int>& tentative_w = scratch->tentative_w;
  std::vector<int>& tentative_p = scratch->tentative_p;

  int assigned_ps = 0;
  for (int t = 0; t < total; ++t) {
    const bool is_ps = (t + 1) * p / total > assigned_ps;
    const Resources& demand = is_ps ? job.ps_demand : job.worker_demand;

    int best = -1;
    for (int i = 0; i < k; ++i) {
      // scratch->free[i] is the same value the legacy code recomputes as
      // servers[order[i]].Free(): servers are not mutated between candidate
      // draw and commit, so caching it cannot change any comparison.
      if (!(scratch->free[static_cast<size_t>(i)] - tentative_used[static_cast<size_t>(i)])
               .Fits(demand)) {
        continue;
      }
      if (best < 0) {
        best = i;
        continue;
      }
      const int type_i = is_ps ? tentative_p[static_cast<size_t>(i)]
                               : tentative_w[static_cast<size_t>(i)];
      const int type_b = is_ps ? tentative_p[static_cast<size_t>(best)]
                               : tentative_w[static_cast<size_t>(best)];
      const int tasks_i =
          tentative_w[static_cast<size_t>(i)] + tentative_p[static_cast<size_t>(i)];
      const int tasks_b =
          tentative_w[static_cast<size_t>(best)] + tentative_p[static_cast<size_t>(best)];
      const double free_i = (scratch->free[static_cast<size_t>(i)] -
                             tentative_used[static_cast<size_t>(i)])
                                .cpu();
      const double free_b = (scratch->free[static_cast<size_t>(best)] -
                             tentative_used[static_cast<size_t>(best)])
                                .cpu();
      if (type_i < type_b ||
          (type_i == type_b &&
           (tasks_i < tasks_b || (tasks_i == tasks_b && free_i > free_b)))) {
        best = i;
      }
    }
    if (best < 0) {
      return false;
    }
    tentative_used[static_cast<size_t>(best)] += demand;
    if (is_ps) {
      ++tentative_p[static_cast<size_t>(best)];
      ++assigned_ps;
    } else {
      ++tentative_w[static_cast<size_t>(best)];
    }
  }

  // Commit (same Allocate sequence as the legacy code) and emit the compact
  // triples sorted by server id — the order ForEachUsed promises.
  struct Used {
    int server;
    int w;
    int p;
  };
  std::vector<Used> used;
  used.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    if (tentative_w[static_cast<size_t>(i)] == 0 && tentative_p[static_cast<size_t>(i)] == 0) {
      continue;
    }
    Server& server = (*servers)[order[static_cast<size_t>(i)]];
    server.Allocate(tentative_used[static_cast<size_t>(i)]);
    used.push_back({static_cast<int>(order[static_cast<size_t>(i)]),
                    tentative_w[static_cast<size_t>(i)], tentative_p[static_cast<size_t>(i)]});
  }
  std::sort(used.begin(), used.end(),
            [](const Used& a, const Used& b) { return a.server < b.server; });
  for (const Used& u : used) {
    placement->used_servers.push_back(u.server);
    placement->used_workers.push_back(u.w);
    placement->used_ps.push_back(u.p);
  }
  return true;
}

// PlaceOptimus over the sharded pool with the capacity lower-bound jump.
bool PlaceOptimusSharded(const PlacementJobInput& job, std::vector<Server>* servers,
                         ShardedServerPool* pool, PackScratch* scratch,
                         JobPlacement* placement) {
  const int max_k =
      std::min<int>(static_cast<int>(servers->size()),
                    job.alloc.num_workers + job.alloc.num_ps);
  scratch->candidates.clear();
  pool->PopMostFree(static_cast<size_t>(max_k), &scratch->candidates);
  const int n_cand = static_cast<int>(scratch->candidates.size());

  scratch->free.resize(static_cast<size_t>(n_cand));
  scratch->prefix_free.resize(static_cast<size_t>(n_cand));
  Resources running;
  for (int i = 0; i < n_cand; ++i) {
    scratch->free[static_cast<size_t>(i)] =
        (*servers)[scratch->candidates[static_cast<size_t>(i)]].Free();
    running += scratch->free[static_cast<size_t>(i)];
    scratch->prefix_free[static_cast<size_t>(i)] = running;
  }

  // Sound lower bound: if the total free capacity of the first k candidates
  // cannot hold the job's whole demand (with a generous slack for the
  // floating-point accumulation), TryEvenPlacement must fail at k — every
  // task reserves its full demand on some candidate — so the attempt can be
  // skipped without changing the first k that succeeds. The 1e-6 relative
  // slack dwarfs both the Fits() epsilon and any summation error, so a k
  // that could succeed is never skipped.
  const Resources total_demand =
      job.worker_demand * job.alloc.num_workers + job.ps_demand * job.alloc.num_ps;
  const Resources demand_floor = total_demand * (1.0 - 1e-6);

  bool placed = false;
  for (int k = 1; k <= n_cand; ++k) {
    if (!scratch->prefix_free[static_cast<size_t>(k - 1)].Fits(demand_floor)) {
      continue;
    }
    if (TryEvenPlacementFast(job, k, servers, scratch, placement)) {
      placed = true;
      break;
    }
  }
  pool->Push(scratch->candidates);
  return placed;
}

}  // namespace

PlacementResult PlaceJobs(PlacementPolicy policy,
                          const std::vector<PlacementJobInput>& jobs,
                          std::vector<Server> servers, bool shrink_to_fit,
                          int rack_size) {
  return PlaceJobs(policy, jobs, &servers, shrink_to_fit, rack_size);
}

PlacementResult PlaceJobsSharded(const ShardPlan& plan,
                                 const std::vector<PlacementJobInput>& jobs,
                                 std::vector<Server>* servers_in,
                                 bool shrink_to_fit) {
  PlacementResult result;
  std::vector<Server>& servers = *servers_in;

  // Identical job order to the legacy path: smallest dominant footprint
  // first, stable within ties.
  const Resources capacity = TotalCapacity(servers);
  std::vector<size_t> job_order(jobs.size());
  std::iota(job_order.begin(), job_order.end(), 0);
  auto footprint = [&](const PlacementJobInput& job) {
    const Resources total = job.worker_demand * job.alloc.num_workers +
                            job.ps_demand * job.alloc.num_ps;
    return total.DominantShare(capacity);
  };
  std::stable_sort(job_order.begin(), job_order.end(), [&](size_t a, size_t b) {
    return footprint(jobs[a]) < footprint(jobs[b]);
  });

  ShardedServerPool pool(&servers, plan);
  PackScratch scratch;
  for (size_t idx : job_order) {
    PlacementJobInput job = jobs[idx];
    if (!ActiveAllocation(job.alloc, job.comm)) {
      continue;
    }

    JobPlacement placement;
    if (job.recycle != nullptr) {
      // Adopt the donor's buffers for their capacity. Dense vectors (from a
      // legacy-shaped donor) are dropped to size 0 so the result is
      // unambiguously compact; the triple vectors are cleared in place.
      placement = std::move(*job.recycle);
      placement.workers_per_server.clear();
      placement.ps_per_server.clear();
      placement.used_servers.clear();
      placement.used_workers.clear();
      placement.used_ps.clear();
    }
    bool placed = false;
    while (true) {
      placed = PlaceOptimusSharded(job, &servers, &pool, &scratch, &placement);
      if (placed || !shrink_to_fit ||
          (job.alloc.num_ps <= 1 && job.alloc.num_workers == 1)) {
        break;
      }
      job.alloc.num_ps =
          job.alloc.num_ps > 0 ? std::max(1, job.alloc.num_ps / 2) : 0;
      job.alloc.num_workers = std::max(1, job.alloc.num_workers / 2);
    }

    if (placed) {
      result.placements[job.job_id] = std::move(placement);
      result.effective_alloc[job.job_id] = job.alloc;
    } else {
      result.unplaced.push_back(job.job_id);
    }
  }
  std::sort(result.unplaced.begin(), result.unplaced.end());
  return result;
}

PlacementResult PlaceJobs(PlacementPolicy policy,
                          const std::vector<PlacementJobInput>& jobs,
                          std::vector<Server>* servers_in, bool shrink_to_fit,
                          int rack_size) {
  PlacementResult result;
  std::vector<Server>& servers = *servers_in;
  const size_t n_servers = servers.size();

  // Smallest jobs first (total dominant footprint) to avoid starving them.
  const Resources capacity = TotalCapacity(servers);
  std::vector<size_t> job_order(jobs.size());
  std::iota(job_order.begin(), job_order.end(), 0);
  auto footprint = [&](const PlacementJobInput& job) {
    const Resources total = job.worker_demand * job.alloc.num_workers +
                            job.ps_demand * job.alloc.num_ps;
    return total.DominantShare(capacity);
  };
  std::stable_sort(job_order.begin(), job_order.end(), [&](size_t a, size_t b) {
    return footprint(jobs[a]) < footprint(jobs[b]);
  });

  ServerPool pool(&servers);
  for (size_t idx : job_order) {
    PlacementJobInput job = jobs[idx];
    if (!ActiveAllocation(job.alloc, job.comm)) {
      continue;  // job got no resources this interval; nothing to place
    }

    bool placed = false;
    JobPlacement placement;
    // Failed attempts leave the dense vectors all-zero (TryEvenPlacement only
    // commits on success; PlacePerTask rolls back), so one allocation serves
    // every shrink retry.
    if (job.recycle != nullptr &&
        job.recycle->workers_per_server.size() == n_servers &&
        job.recycle->ps_per_server.size() == n_servers) {
      // Adopt the donor's buffers and re-zero only its occupied entries
      // (used_servers covers every nonzero slot by contract). A donor without
      // the sparse index still saves the allocation: zero it in place.
      placement = std::move(*job.recycle);
      if (placement.used_servers.empty()) {
        std::fill(placement.workers_per_server.begin(),
                  placement.workers_per_server.end(), 0);
        std::fill(placement.ps_per_server.begin(), placement.ps_per_server.end(),
                  0);
      } else {
        for (int s : placement.used_servers) {
          placement.workers_per_server[static_cast<size_t>(s)] = 0;
          placement.ps_per_server[static_cast<size_t>(s)] = 0;
        }
        placement.used_servers.clear();
      }
    } else {
      placement.workers_per_server.assign(n_servers, 0);
      placement.ps_per_server.assign(n_servers, 0);
    }
    while (true) {
      switch (policy) {
        case PlacementPolicy::kOptimusPack:
          placed = PlaceOptimus(job, &servers, &pool, &placement);
          break;
        case PlacementPolicy::kLoadBalance:
          placed = PlacePerTask(job, PickRule::kMostFree, &servers, &placement);
          break;
        case PlacementPolicy::kTetrisPack:
          placed = PlacePerTask(job, PickRule::kTightestFit, &servers, &placement);
          break;
        case PlacementPolicy::kRackPack:
          placed = PlaceRackAware(job, rack_size, &servers, &pool, &placement);
          break;
      }
      if (placed || !shrink_to_fit ||
          (job.alloc.num_ps <= 1 && job.alloc.num_workers == 1)) {
        break;
      }
      job.alloc.num_ps =
          job.alloc.num_ps > 0 ? std::max(1, job.alloc.num_ps / 2) : 0;
      job.alloc.num_workers = std::max(1, job.alloc.num_workers / 2);
    }

    if (placed) {
      result.placements[job.job_id] = std::move(placement);
      result.effective_alloc[job.job_id] = job.alloc;
    } else {
      result.unplaced.push_back(job.job_id);
    }
  }
  std::sort(result.unplaced.begin(), result.unplaced.end());
  return result;
}

}  // namespace optimus
